package adskip

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentExecAndAppend hammers one shared DB from many goroutines
// mixing reads (ExecContext) with appends, the same interleaving a
// server session pool produces. Run under -race in CI. Afterwards the
// skipping metadata must still verify and counts must be exact.
func TestConcurrentExecAndAppend(t *testing.T) {
	db := Open(Options{Policy: Adaptive, MaxConcurrentQueries: 8})
	defer db.Close()
	tbl, err := db.CreateTable("data", Col("v", Int64), Col("seq", Int64))
	if err != nil {
		t.Fatal(err)
	}
	const seedRows = 10000
	for i := 0; i < seedRows; i++ {
		if err := tbl.Append((i/1000)*1000+i%7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}

	const (
		readers        = 8
		appenders      = 2
		readsEach      = 150
		appendsEach    = 1500
		appendSentinel = 1 << 40 // appended v values, outside the seed domain
	)
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < readsEach; i++ {
				lo := ((r*readsEach + i) % 10) * 1000
				q := fmt.Sprintf("SELECT COUNT(*) FROM data WHERE v BETWEEN %d AND %d", lo, lo+6)
				res, err := db.ExecContext(ctx, q)
				if err != nil {
					fail("reader %d: %v", r, err)
					return
				}
				// Readers only touch the seeded domain, whose contents
				// never change: every count must be exact despite the
				// concurrent appends.
				if res.Count != 1000 {
					fail("reader %d: count %d, want 1000", r, res.Count)
					return
				}
			}
		}(r)
	}
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < appendsEach; i++ {
				if err := tbl.Append(int64(appendSentinel+i), seedRows+a*appendsEach+i); err != nil {
					fail("appender %d: %v", a, err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}

	if got, want := tbl.NumRows(), seedRows+appenders*appendsEach; got != want {
		t.Fatalf("rows after stress: %d, want %d", got, want)
	}
	// Appended rows are queryable and the metadata survived the churn.
	res, err := db.Exec(fmt.Sprintf("SELECT COUNT(*) FROM data WHERE v BETWEEN %d AND %d",
		int64(appendSentinel), int64(appendSentinel)+appendsEach))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != appenders*appendsEach {
		t.Fatalf("appended-row count %d, want %d", res.Count, appenders*appendsEach)
	}
	if err := tbl.VerifySkipping("v"); err != nil {
		t.Fatalf("skipping metadata unsound after concurrent churn: %v", err)
	}
}

// TestTableNamesSorted registers tables in scrambled order and checks
// the catalog listing is deterministic (sorted), which the server's
// catalog op relies on.
func TestTableNamesSorted(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	for _, name := range []string{"orders", "alpha", "zeta", "metrics_a", "metrics"} {
		if _, err := db.CreateTable(name, Col("v", Int64)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "metrics", "metrics_a", "orders", "zeta"}
	for run := 0; run < 3; run++ {
		got := db.TableNames()
		if len(got) != len(want) {
			t.Fatalf("TableNames() = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("TableNames() = %v, want %v", got, want)
			}
		}
	}
}
