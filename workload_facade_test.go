package adskip

import (
	"strings"
	"testing"
)

// TestWorkloadThroughFacade: queries executed through the public API are
// fingerprinted and aggregated per template — parameterized variants of
// the same shape collapse into one row, distinct shapes stay apart.
func TestWorkloadThroughFacade(t *testing.T) {
	db, _ := demoDB(t, Adaptive)

	// Three literal variants of one template, plus one distinct shape.
	for _, q := range []string{
		"SELECT COUNT(*) FROM sales WHERE price < 16",
		"select count(*) from sales where price < 50",
		"SELECT  COUNT(*)  FROM sales WHERE price < 8.5",
		"SELECT COUNT(*) FROM sales WHERE city = 'oslo'",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	snap := db.Workload(SortCalls, 0)
	if snap.TotalTemplates != 2 {
		t.Fatalf("templates = %d, want 2 (variants must collapse):\n%+v", snap.TotalTemplates, snap)
	}
	if snap.Recorded != 4 {
		t.Fatalf("recorded calls = %d, want 4", snap.Recorded)
	}
	top := snap.Templates[0]
	if top.Fingerprint != "SELECT COUNT(*) FROM sales WHERE price < ?" || top.Calls != 3 {
		t.Fatalf("top template = %q with %d calls, want the price template with 3", top.Fingerprint, top.Calls)
	}
	if top.Table != "sales" {
		t.Fatalf("template table = %q, want sales", top.Table)
	}
	if top.RowsReturned != 3+4+1 { // matches per variant: <16, <50, <8.5
		t.Fatalf("rows returned = %d, want 8", top.RowsReturned)
	}
	if top.TotalSeconds <= 0 || top.MeanUS <= 0 {
		t.Fatalf("latency not aggregated: %+v", top)
	}

	// Single-template lookup mirrors the facade snapshot.
	one, ok := db.stats.Template(top.Fingerprint)
	if !ok || one.Calls != 3 {
		t.Fatalf("Template lookup: ok=%v calls=%d", ok, one.Calls)
	}

	// The stats metrics registered on the DB registry.
	var prom strings.Builder
	if err := db.Metrics().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"adskip_stats_templates 2", "adskip_stats_recorded_total 4"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestWorkloadExplainAnalyzeFooter: an attributed EXPLAIN ANALYZE gains
// the per-template workload footer.
func TestWorkloadExplainAnalyzeFooter(t *testing.T) {
	db, _ := demoDB(t, Adaptive)
	if _, err := db.Exec("SELECT COUNT(*) FROM sales WHERE price < 16"); err != nil {
		t.Fatal(err)
	}
	lines, _, err := db.ExplainAnalyze("SELECT COUNT(*) FROM sales WHERE price < 99")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, `workload: template "SELECT COUNT(*) FROM sales WHERE price < ?" — 2 calls`) {
		t.Fatalf("missing workload footer:\n%s", joined)
	}
}

// TestWorkloadDisabled: StatsMaxTemplates < 0 switches analytics off —
// queries run unattributed and the snapshot stays empty.
func TestWorkloadDisabled(t *testing.T) {
	db := Open(Options{Policy: Adaptive, StatsMaxTemplates: -1})
	tab, err := db.CreateTable("t", Col("v", Int64))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT COUNT(*) FROM t WHERE v < 5"); err != nil {
		t.Fatal(err)
	}
	snap := db.Workload("", 0)
	if snap.TotalTemplates != 0 || snap.Recorded != 0 {
		t.Fatalf("disabled stats recorded: %+v", snap)
	}
}
