package adskip

// One benchmark per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Each bench runs the corresponding harness experiment
// at a reduced scale so `go test -bench=.` completes quickly; use
// cmd/adskip-bench for paper-scale runs. Per-query microbenchmarks at the
// bottom give the raw policy comparison behind the figures.

import (
	"fmt"
	"testing"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/harness"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

// benchConfig is the reduced scale for bench runs.
func benchConfig() harness.Config {
	return harness.Config{Rows: 1 << 17, Queries: 64, Seed: 42, StaticZoneRows: 2048}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	ex, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1DistributionSweep(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig2Convergence(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3Selectivity(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4Granularity(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5Drift(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFig6Adversarial(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7Appends(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkTab1Metadata(b *testing.B)          { benchExperiment(b, "tab1") }
func BenchmarkTab2Summary(b *testing.B)           { benchExperiment(b, "tab2") }
func BenchmarkTab3MultiColumn(b *testing.B)       { benchExperiment(b, "tab3") }
func BenchmarkAbl1Ablation(b *testing.B)          { benchExperiment(b, "abl1") }
func BenchmarkAbl2SplitCost(b *testing.B)         { benchExperiment(b, "abl2") }

// benchPolicyStream measures steady-state per-query latency of a 1% range
// count over the given distribution, one sub-benchmark per policy. The
// engine is warmed with 256 queries before measurement so adaptive
// structures (and arbitration, on hostile data) have converged.
func benchPolicyStream(b *testing.B, dist workload.Distribution) {
	const rows = 1 << 20
	vals := workload.Generate(workload.DataSpec{
		N: rows, Dist: dist, Domain: rows, Seed: 42,
	})
	for _, policy := range []engine.Policy{engine.PolicyNone, engine.PolicyStatic, engine.PolicyAdaptive} {
		b.Run(policy.String(), func(b *testing.B) {
			tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
			col, _ := tbl.Column("v")
			for _, v := range vals {
				if err := col.AppendInt(v); err != nil {
					b.Fatal(err)
				}
			}
			e := engine.New(tbl, engine.Options{Policy: policy, StaticZoneSize: 4096})
			if err := e.EnableSkipping("v"); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGen(workload.QuerySpec{
				Kind: workload.UniformRange, Domain: rows, Selectivity: 0.01, Seed: 43,
			})
			mkQuery := func() engine.Query {
				r := gen.Next()
				return engine.Query{
					Where: expr.And(expr.MustPred("v", expr.Between,
						storage.IntValue(r.Lo), storage.IntValue(r.Hi))),
					Aggs: []engine.Agg{{Kind: engine.CountStar}},
				}
			}
			// Warm adaptation outside the measured loop.
			for i := 0; i < 256; i++ {
				if _, err := e.Query(mkQuery()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(mkQuery()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryPerPolicy measures steady-state per-query latency of a 1%
// range count on clustered data — the raw numbers behind fig1/tab2.
func BenchmarkQueryPerPolicy(b *testing.B) {
	benchPolicyStream(b, workload.Clustered)
}

// BenchmarkUniformOverheadPerPolicy measures the adversarial bound: the
// same query stream over uniform random data, where skipping cannot help
// and must not durably hurt (fig6's raw numbers).
func BenchmarkUniformOverheadPerPolicy(b *testing.B) {
	benchPolicyStream(b, workload.Uniform)
}

// BenchmarkScan is the canonical scan-path benchmark family for overhead
// tracking: the always-on observability layer (per-query trace + atomic
// metric updates) must keep these within 2% of an uninstrumented build.
// Sub-benchmarks cover the skipping-friendly and skipping-hostile ends.
func BenchmarkScan(b *testing.B) {
	b.Run("clustered", func(b *testing.B) { benchPolicyStream(b, workload.Clustered) })
	b.Run("uniform", func(b *testing.B) { benchPolicyStream(b, workload.Uniform) })
}

// BenchmarkIngest measures bulk row ingest through the public API.
func BenchmarkIngest(b *testing.B) {
	db := Open(Options{Policy: Adaptive})
	tab, err := db.CreateTable("bench",
		Col("a", Int64), Col("f", Float64), Col("s", String))
	if err != nil {
		b.Fatal(err)
	}
	words := []string{"x", "y", "z"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tab.Append(i, float64(i)*0.5, words[i%3]); err != nil {
			b.Fatal(err)
		}
	}
	_ = fmt.Sprint(tab.NumRows())
}

// BenchmarkExt1Parallel regenerates the parallel-scaling extension table.
func BenchmarkExt1Parallel(b *testing.B) { benchExperiment(b, "ext1") }

// BenchmarkExt2Imprints regenerates the imprints-vs-zonemaps table.
func BenchmarkExt2Imprints(b *testing.B) { benchExperiment(b, "ext2") }
