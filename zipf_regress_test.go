package adskip

import (
	"testing"
	"time"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

func TestZipfRegression(t *testing.T) {
	const rows = 1 << 21
	vals := workload.Generate(workload.DataSpec{N: rows, Dist: workload.Zipf, Domain: rows, Seed: 42})
	run := func(policy engine.Policy) time.Duration {
		tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
		col, _ := tbl.Column("v")
		for _, v := range vals {
			col.AppendInt(v)
		}
		e := engine.New(tbl, engine.Options{Policy: policy, StaticZoneSize: 4096})
		e.EnableSkipping("v")
		gen := workload.NewGen(workload.QuerySpec{Kind: workload.UniformRange, Domain: rows, Selectivity: 0.01, Seed: 43})
		var steady time.Duration
		for q := 0; q < 256; q++ {
			r := gen.Next()
			qr := engine.Query{
				Where: expr.And(expr.MustPred("v", expr.Between, storage.IntValue(r.Lo), storage.IntValue(r.Hi))),
				Aggs:  []engine.Agg{{Kind: engine.CountStar}},
			}
			start := time.Now()
			if _, err := e.Query(qr); err != nil {
				t.Fatal(err)
			}
			if q >= 128 {
				steady += time.Since(start)
			}
		}
		return steady / 128
	}
	none := run(engine.PolicyNone)
	adp := run(engine.PolicyAdaptive)
	t.Logf("zipf: none=%v adaptive=%v ratio=%.2f", none, adp, float64(none)/float64(adp))
	if float64(adp) > 1.25*float64(none) {
		t.Fatalf("adaptive regresses on zipf: none=%v adaptive=%v", none, adp)
	}
}
