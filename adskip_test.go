package adskip

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func demoDB(t *testing.T, policy Policy) (*DB, *Table) {
	t.Helper()
	db := Open(Options{Policy: policy})
	tab, err := db.CreateTable("sales",
		Col("id", Int64), Col("price", Float64), Col("city", String))
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id    int
		price float64
		city  string
	}{
		{1, 10.5, "oslo"}, {2, 20.0, "rome"}, {3, 5.25, "oslo"},
		{4, 99.0, "cairo"}, {5, 15.0, "rome"},
	}
	for _, r := range rows {
		if err := tab.Append(r.id, r.price, r.city); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	return db, tab
}

func TestQuickstartFlow(t *testing.T) {
	db, tab := demoDB(t, Adaptive)
	if tab.Name() != "sales" || tab.NumRows() != 5 {
		t.Fatalf("name=%s rows=%d", tab.Name(), tab.NumRows())
	}
	res, err := db.Exec("SELECT COUNT(*) FROM sales WHERE price < 16")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(IntValue(3)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	res, err = db.Exec("SELECT id, city FROM sales WHERE city = 'rome'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Str() != "rome" {
		t.Fatalf("rows=%v", res.Rows)
	}
	info := tab.SkipperInfo()
	if info["price"].Kind != "adaptive" {
		t.Fatalf("info=%v", info)
	}
}

func TestAppendConversions(t *testing.T) {
	db := Open(Options{})
	tab, err := db.CreateTable("t", Col("a", Int64), Col("f", Float64), Col("s", String))
	if err != nil {
		t.Fatal(err)
	}
	// int into float column coerces; nil is NULL; Value passes through.
	if err := tab.Append(int32(1), 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(int64(2), 3.5, StringValue("x")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append("wrong", 1.0, "x"); err == nil {
		t.Fatal("string into int column accepted")
	}
	if err := tab.Append(1, "wrong", "x"); err == nil {
		t.Fatal("string into float column accepted")
	}
	if err := tab.Append(1, 1.0, 3); err == nil {
		t.Fatal("int into string column accepted")
	}
	if err := tab.Append(1, 1.0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tab.Append(struct{}{}, 1.0, "x"); err == nil {
		t.Fatal("unsupported Go type accepted")
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows=%d", tab.NumRows())
	}
}

func TestUpdateThroughFacade(t *testing.T) {
	db, tab := demoDB(t, Static)
	if err := tab.Update("id", 0, 100); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM sales WHERE id = 100")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(IntValue(1)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	if err := tab.Update("missing", 0, 1); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestCatalogErrors(t *testing.T) {
	db, _ := demoDB(t, None)
	if _, err := db.CreateTable("sales", Col("x", Int64)); !errors.Is(err, ErrTableExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := db.Table("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing: %v", err)
	}
	if _, err := db.Exec("SELECT COUNT(*) FROM missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("exec missing: %v", err)
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "sales" {
		t.Fatalf("names=%v", got)
	}
	if _, err := db.Table("sales"); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, _ := demoDB(t, Adaptive)
	var buf bytes.Buffer
	if err := db.SaveTable("sales", &buf); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveTable("missing", &buf); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("save missing: %v", err)
	}
	db2 := Open(Options{Policy: Static})
	tab, err := db2.LoadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Fatalf("rows=%d", tab.NumRows())
	}
	if err := tab.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Exec("SELECT SUM(price) FROM sales WHERE city = 'oslo'")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(FloatValue(15.75)) {
		t.Fatalf("sum=%v", res.Aggs[0])
	}
	// Loading into a catalog that already has the name fails.
	if _, err := db.LoadTable(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrTableExists) {
		t.Fatalf("load dup: %v", err)
	}
}

func TestLoadCSVThroughFacade(t *testing.T) {
	db := Open(Options{Policy: Adaptive})
	csvData := "id,price,city\n1,10.5,oslo\n2,,rome\n"
	tab, err := db.LoadCSV("sales", strings.NewReader(csvData), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows=%d", tab.NumRows())
	}
	if err := tab.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM sales WHERE price IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggs[0].Equal(IntValue(1)) {
		t.Fatalf("count=%v", res.Aggs[0])
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "id,price,city") {
		t.Fatalf("csv=%q", buf.String())
	}
	if _, err := db.LoadCSV("sales", strings.NewReader(csvData), CSVOptions{}); !errors.Is(err, ErrTableExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := db.LoadCSV("bad", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("empty csv accepted")
	}
}

func TestExplainThroughFacade(t *testing.T) {
	db, _ := demoDB(t, Adaptive)
	res, err := db.Exec("EXPLAIN SELECT COUNT(*) FROM sales WHERE price < 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Columns[0] != "plan" {
		t.Fatalf("plan rows=%v", res.Rows)
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row[0].Str(), "adaptive skipper") {
			found = true
		}
	}
	if !found {
		t.Fatalf("plan missing skipper line: %v", res.Rows)
	}
}
