package adskip

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"adskip/internal/faultinject"
)

// adaptationDB opens an adaptive DB over 16k rows with two skipping
// columns of opposite character: "v" is sorted (a hot range converges
// and splits pay off) while "noise" is uniform pseudo-random (every
// zone's hull spans the domain, so its metadata never prunes — dead
// zones by construction).
func adaptationDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{
		Policy:   Adaptive,
		Adaptive: AdaptiveConfig{InitialZoneRows: 4096, MinZoneRows: 64},
	})
	tab, err := db.CreateTable("data", Col("v", Int64), Col("noise", Int64))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 14
	rows := make([][]Value, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []Value{
			IntValue(int64(i)),
			IntValue(int64(i) * 2654435761 % 1000),
		})
	}
	if err := tab.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := tab.EnableSkipping("v", "noise"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAdaptationThroughFacade is the end-to-end acceptance check: a hot
// SQL template drives splits that land in the ledger with the template's
// fingerprint as cause, ROI accounting credits the pruning against its
// maintenance, and useless metadata surfaces as a dead-zone report.
func TestAdaptationThroughFacade(t *testing.T) {
	db := adaptationDB(t)
	defer db.Close()

	for i := 0; i < 12; i++ {
		lo := 5000 + i // literal variants collapse into one template
		if _, err := db.Exec(fmt.Sprintf(
			"SELECT COUNT(*) FROM data WHERE v BETWEEN %d AND %d", lo, lo+200)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM data WHERE noise BETWEEN 400 AND 420"); err != nil {
			t.Fatal(err)
		}
	}

	snap := db.Adaptation(16)
	if snap.Total == 0 || len(snap.Events) == 0 {
		t.Fatalf("empty adaptation snapshot: total=%d events=%d", snap.Total, len(snap.Events))
	}

	// Splits happened, and each carries the SQL template that caused it.
	const wantFP = "SELECT COUNT(*) FROM data WHERE v BETWEEN ? AND ?"
	var splits int
	for _, e := range snap.Events {
		if e.Kind.String() != "split" {
			continue
		}
		splits++
		if e.Table != "data" || e.Column != "v" {
			t.Fatalf("split on unexpected column: %+v", e)
		}
		if e.Cause != "split-gain" || e.Fingerprint != wantFP {
			t.Fatalf("split provenance = cause %q fp %q, want split-gain / the SQL template", e.Cause, e.Fingerprint)
		}
	}
	if splits == 0 {
		t.Fatalf("no split events in %d records", len(snap.Events))
	}

	// ROI rows are sorted (table, column, shard) and tell the two columns
	// apart: v earns, noise is pure overhead.
	if len(snap.ROI) != 2 {
		t.Fatalf("ROI rows = %d, want 2", len(snap.ROI))
	}
	noise, v := snap.ROI[0], snap.ROI[1]
	if noise.Column != "noise" || v.Column != "v" {
		t.Fatalf("ROI rows out of order: %q then %q", noise.Column, v.Column)
	}
	if v.RowsSkipped == 0 || v.NetRows <= 0 {
		t.Fatalf("hot column earned nothing: %+v", v)
	}
	if noise.RowsSkipped != 0 || noise.NetRows >= 0 {
		t.Fatalf("noise column should be pure debit: %+v", noise)
	}
	if noise.DeadZones == 0 || len(noise.DeadZoneDetail) == 0 {
		t.Fatalf("dead-zone report missing: %+v", noise)
	}
	if noise.DeadZones != noise.Zones {
		t.Fatalf("dead zones = %d of %d, want every noise zone dead", noise.DeadZones, noise.Zones)
	}

	// The EXPLAIN ANALYZE footer reports the same ledger totals.
	lines, _, err := db.ExplainAnalyze("SELECT COUNT(*) FROM data WHERE v BETWEEN 5000 AND 5200")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "ledger: ") || !strings.Contains(joined, "splits)") {
		t.Fatalf("EXPLAIN ANALYZE ledger footer missing:\n%s", joined)
	}
	if !strings.Contains(joined, wantFP) {
		t.Fatalf("footer lost the splitting template:\n%s", joined)
	}

	// No health monitor: shed status reports ok rather than guessing.
	if db.ShedStatus() != HealthOK {
		t.Fatalf("ShedStatus without monitor = %v, want ok", db.ShedStatus())
	}
}

// TestSkipRegressionFlipThroughFacade induces a real skip regression —
// metadata corruption quarantines the hot column, so a template that
// skipped ~90% of its rows abruptly skips none — and watches the
// skip_regression objective flip to firing and release again after the
// rebuild, with the load-shed exemption holding throughout.
func TestSkipRegressionFlipThroughFacade(t *testing.T) {
	db := Open(Options{
		Policy:          Adaptive,
		Adaptive:        AdaptiveConfig{InitialZoneRows: 1024, MinZoneRows: 256},
		HistoryInterval: 2 * time.Millisecond,
		Health: HealthConfig{
			Short: 20 * time.Millisecond, Mid: 60 * time.Millisecond,
			Long: 120 * time.Millisecond, ClearTicks: 3,
		},
		Objectives: []Objective{
			{Name: "skip-reg", Signal: SignalSkipRegression, Threshold: 0.3},
		},
	})
	defer db.Close()
	tab, err := db.CreateTable("data", Col("v", Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8192; i++ {
		if err := tab.Append(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}

	const hot = "SELECT COUNT(*) FROM data WHERE v BETWEEN 4000 AND 4100"
	regState := func() HealthSeverity {
		snap, ok := db.Health()
		if !ok {
			t.Fatal("health monitor missing")
		}
		for _, o := range snap.Objectives {
			if o.Signal == SignalSkipRegression {
				return o.State
			}
		}
		t.Fatal("skip_regression objective missing")
		return HealthOK
	}

	// Learn the baseline: the sorted column prunes ~7 of 8 zones.
	for i := 0; i < 40; i++ {
		if _, err := db.Exec(hot); err != nil {
			t.Fatal(err)
		}
	}
	if st := regState(); st != HealthOK {
		t.Fatalf("regression objective fired during healthy learning: %v", st)
	}

	// Induce: one injected invariant flip corrupts the zonemap; the next
	// probe detects it and quarantines the column — skipping collapses.
	restore := faultinject.Activate(faultinject.New(5).
		Set(faultinject.InvariantFlip, faultinject.Rule{Every: 1, Limit: 1}))
	if _, err := db.Exec(hot); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()

	deadline := time.Now().Add(10 * time.Second)
	for regState() == HealthOK {
		if _, err := db.Exec(hot); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("skip_regression never fired after quarantine collapsed skipping")
		}
		time.Sleep(time.Millisecond)
	}
	if len(tab.Quarantined()) == 0 {
		t.Fatal("regression fired but the column was never quarantined")
	}
	// Shed exemption: the regression is burning, yet admission stays open.
	if db.ShedStatus() != HealthOK {
		t.Fatalf("ShedStatus = %v during a skip regression; the signal must be shed-exempt", db.ShedStatus())
	}

	// Recover: rebuild the metadata and keep the template hot; the fast
	// EWMA climbs back and hysteresis releases the alert.
	if err := tab.RebuildSkipping(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for regState() != HealthOK {
		if _, err := db.Exec(hot); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("skip_regression never cleared after the rebuild")
		}
		time.Sleep(time.Millisecond)
	}

	// The alert history tells the whole round trip.
	var fired, cleared bool
	for _, tr := range db.Alerts().History {
		if tr.Objective != "skip-reg" {
			continue
		}
		if tr.To != HealthOK {
			fired = true
		}
		if fired && tr.To == HealthOK {
			cleared = true
		}
	}
	if !fired || !cleared {
		t.Fatalf("alert history missing the fire/clear round trip: %+v", db.Alerts().History)
	}
}

// TestAdaptationSharded: the one shared ledger serves a sharded catalog
// — per-shard engines stamp their records, ROI fans out across shards,
// and the /adaptation endpoint serves it all with shard filtering.
func TestAdaptationSharded(t *testing.T) {
	db, _ := shardedDB(t, "range")
	defer db.Close()
	for i := 0; i < 4; i++ {
		if _, err := db.Exec("SELECT COUNT(*) FROM sales WHERE id BETWEEN 10 AND 40"); err != nil {
			t.Fatal(err)
		}
	}

	snap := db.Adaptation(8)
	shardsSeen := map[int]bool{}
	for _, e := range snap.Events {
		shardsSeen[e.Shard] = true
	}
	for sh := 1; sh <= 4; sh++ {
		if !shardsSeen[sh] {
			t.Fatalf("no ledger records from shard %d (saw %v)", sh, shardsSeen)
		}
	}
	if len(snap.ROI) == 0 {
		t.Fatal("no ROI rows from sharded catalog")
	}
	roiShards := map[int]bool{}
	for _, r := range snap.ROI {
		if r.Table != "sales" {
			t.Fatalf("ROI table = %q", r.Table)
		}
		roiShards[r.Shard] = true
	}
	for sh := 1; sh <= 4; sh++ {
		if !roiShards[sh] {
			t.Fatalf("no ROI row from shard %d (saw %v)", sh, roiShards)
		}
	}

	url, err := db.StartTelemetry("")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/adaptation?shard=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/adaptation?shard=2 = %d", resp.StatusCode)
	}
	var served AdaptationSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if len(served.Events) == 0 && len(served.ROI) == 0 {
		t.Fatal("shard=2 served nothing")
	}
	for _, e := range served.Events {
		if e.Shard != 2 {
			t.Fatalf("shard filter leaked: %+v", e)
		}
	}
	for _, r := range served.ROI {
		if r.Shard != 2 {
			t.Fatalf("shard filter leaked ROI: %+v", r)
		}
	}
}
