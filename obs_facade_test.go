package adskip

import (
	"strings"
	"testing"
)

// TestMetricsThroughFacade checks the public observability surface: every
// query is traced, the shared registry accumulates across tables, and both
// exposition formats render.
func TestMetricsThroughFacade(t *testing.T) {
	db, _ := demoDB(t, Adaptive)
	res, err := db.Exec("SELECT COUNT(*) FROM sales WHERE price < 16")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace on facade result")
	}
	if res.Trace.Table != "sales" || res.Trace.RowsTotal != 5 {
		t.Fatalf("trace identity: %+v", res.Trace)
	}

	var prom strings.Builder
	if err := db.Metrics().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`adskip_queries_total{table="sales"} 1`,
		`# TYPE adskip_query_seconds histogram`,
		`adskip_adapt_events_total{column="price",kind="skipper-built",table="sales"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, prom.String())
		}
	}

	var js strings.Builder
	if err := db.Metrics().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters"`, `"histograms"`, `adskip_queries_total{table=\"sales\"}`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json exposition missing %q:\n%s", want, js.String())
		}
	}

	// Enabling skipping emitted lifecycle events for all three columns.
	evs := db.AdaptationEvents()
	if len(evs) < 3 {
		t.Fatalf("adaptation events = %d, want >= 3 (skipper-built per column)", len(evs))
	}
	seen := map[string]bool{}
	for _, ev := range evs {
		if ev.Table != "sales" {
			t.Fatalf("event with wrong table: %+v", ev)
		}
		seen[ev.Column] = true
	}
	for _, col := range []string{"id", "price", "city"} {
		if !seen[col] {
			t.Errorf("no lifecycle event for column %q: %v", col, evs)
		}
	}
}

// TestExplainAnalyzeThroughFacade runs the one-call convenience path.
func TestExplainAnalyzeThroughFacade(t *testing.T) {
	db, _ := demoDB(t, Adaptive)
	lines, res, err := db.ExplainAnalyze("SELECT COUNT(*) FROM sales WHERE price < 16")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Aggs[0].Equal(IntValue(3)) {
		t.Fatalf("result: %+v", res)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"EXPLAIN ANALYZE", "3 rows matched", "pruning:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q:\n%s", want, joined)
		}
	}
	// The SQL route produces the same rendering as rows.
	sres, err := db.Exec("EXPLAIN ANALYZE SELECT COUNT(*) FROM sales WHERE price < 16")
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Rows) != len(lines) {
		t.Fatalf("SQL route rows = %d, direct lines = %d", len(sres.Rows), len(lines))
	}
	// Unknown table errors cleanly.
	if _, _, err := db.ExplainAnalyze("SELECT COUNT(*) FROM nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
}
