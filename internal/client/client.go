// Package client is the Go client library for the adskip query server.
// A Client wraps one TCP connection speaking the internal/proto frame
// protocol. The protocol is strict request/response, so a Client
// serializes calls with a mutex; open several Clients for concurrency
// (that is what the load generator does).
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"adskip/internal/proto"
)

// ServerError is a failure reported by the server, carrying the stable
// machine-readable kind (see proto.ErrKind*) alongside the message.
type ServerError struct {
	Kind string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("server: %s (%s)", e.Msg, e.Kind) }

// Options configures a Client.
type Options struct {
	// Timeout bounds each request round-trip (dial, write, read).
	// Zero means no deadline.
	Timeout time.Duration
	// MaxFrameBytes caps response frames (default proto.MaxFrameDefault).
	MaxFrameBytes int
	// Timing asks the server for a latency breakdown on every request;
	// results carry it in their Timing field. Servers that predate the
	// field ignore the ask and Timing stays nil — callers must tolerate
	// absence.
	Timing bool
}

// Client is one connection to an adskip server. Methods are safe for
// concurrent use; they serialize on the connection.
type Client struct {
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to an adskip server.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = proto.MaxFrameDefault
	}
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection. A request in flight on another goroutine
// fails (and is canceled server-side by the disconnect).
func (c *Client) Close() error {
	c.conn.SetDeadline(time.Now()) // unblock a concurrent round-trip
	return c.conn.Close()
}

// roundTrip sends one request and reads its response under the mutex.
func (c *Client) roundTrip(req proto.Request) (proto.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := proto.WriteMessage(c.bw, req); err != nil {
		return proto.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return proto.Response{}, err
	}
	resp, err := proto.ReadResponse(c.br, c.opts.MaxFrameBytes)
	if err != nil {
		return proto.Response{}, err
	}
	if !resp.OK {
		return resp, &ServerError{Kind: resp.ErrKind, Msg: resp.Error}
	}
	return resp, nil
}

// decodeResult parses a wire result with UseNumber, so BIGINT cells stay
// lossless json.Number values rather than float64.
func decodeResult(raw json.RawMessage) (*proto.Result, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var res proto.Result
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("client: bad result payload: %w", err)
	}
	return &res, nil
}

// Query executes SQL text and returns the decoded result.
func (c *Client) Query(sqlText string) (*proto.Result, error) {
	return c.QueryTraced(sqlText, "")
}

// QueryTraced executes SQL text tagged with a client-generated trace ID.
// The server stamps the query's span tree with it, so the caller can
// find this exact execution in the server's /traces endpoint. An empty
// traceID degrades to a plain Query.
func (c *Client) QueryTraced(sqlText, traceID string) (*proto.Result, error) {
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpQuery, SQL: sqlText,
		TraceID: traceID, WantTiming: c.opts.Timing,
	})
	if err != nil {
		return nil, err
	}
	return decodeTimedResult(resp)
}

// Prepare parses and plans a statement server-side, returning its ID.
func (c *Client) Prepare(sqlText string) (uint64, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpPrepare, SQL: sqlText})
	if err != nil {
		return 0, err
	}
	return resp.Stmt, nil
}

// Exec executes a prepared statement by ID. A ServerError with kind
// proto.ErrKindNoStmt means the statement was evicted: Prepare again.
func (c *Client) Exec(stmt uint64) (*proto.Result, error) {
	return c.ExecTraced(stmt, "")
}

// ExecTraced executes a prepared statement tagged with a trace ID (see
// QueryTraced).
func (c *Client) ExecTraced(stmt uint64, traceID string) (*proto.Result, error) {
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpExec, Stmt: stmt,
		TraceID: traceID, WantTiming: c.opts.Timing,
	})
	if err != nil {
		return nil, err
	}
	return decodeTimedResult(resp)
}

// decodeTimedResult decodes the result payload and attaches the server's
// timing breakdown (nil when not requested or the server predates it).
func decodeTimedResult(resp proto.Response) (*proto.Result, error) {
	res, err := decodeResult(resp.Result)
	if err != nil {
		return nil, err
	}
	res.Timing = resp.Timing
	return res, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(proto.Request{Op: proto.OpPing})
	return err
}

// Tables lists the server's tables (sorted).
func (c *Client) Tables() ([]string, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpCatalog})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}
