// Package client is the Go client library for the adskip query server.
// A Client wraps one TCP connection speaking the internal/proto frame
// protocol. The protocol is strict request/response, so a Client
// serializes calls with a mutex; open several Clients for concurrency
// (that is what the load generator does).
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adskip/internal/proto"
)

// ServerError is a failure reported by the server, carrying the stable
// machine-readable kind (see proto.ErrKind*) alongside the message.
type ServerError struct {
	Kind string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("server: %s (%s)", e.Msg, e.Kind) }

// Retryable reports whether err is a server refusal that a later attempt
// can reasonably expect to succeed: the load-shedding gate
// (ErrKindUnavailable) and the WAL-replay gate (ErrKindRecovering). Both
// are pre-execution refusals — the server rejected the request before
// touching any data — so retrying a mutation cannot double-apply it.
// Transport errors are deliberately NOT retryable: a connection that
// died mid-request leaves the outcome unknown, and retrying an insert
// over a fresh connection could append the rows twice.
func Retryable(err error) bool {
	var se *ServerError
	if !errors.As(err, &se) {
		return false
	}
	return se.Kind == proto.ErrKindUnavailable || se.Kind == proto.ErrKindRecovering
}

// RetryPolicy configures automatic retry of retryable server refusals
// (see Retryable). The backoff is capped exponential with full jitter:
// attempt n sleeps uniform(0, min(Cap, Base<<n)), which spreads a
// thundering herd of clients waiting out the same recovery over the
// whole window instead of synchronizing their retries.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt. Zero
	// disables retry entirely (the default).
	Max int
	// Base is the backoff base (default 10ms when Max > 0).
	Base time.Duration
	// Cap bounds a single backoff sleep (default 1s).
	Cap time.Duration
}

// Options configures a Client.
type Options struct {
	// Timeout bounds each request round-trip (dial, write, read).
	// Zero means no deadline.
	Timeout time.Duration
	// MaxFrameBytes caps response frames (default proto.MaxFrameDefault).
	MaxFrameBytes int
	// Timing asks the server for a latency breakdown on every request;
	// results carry it in their Timing field. Servers that predate the
	// field ignore the ask and Timing stays nil — callers must tolerate
	// absence.
	Timing bool
	// Retry enables automatic retry of retryable refusals (load
	// shedding, WAL recovery) with jittered exponential backoff. The
	// zero policy never retries.
	Retry RetryPolicy
}

// Client is one connection to an adskip server. Methods are safe for
// concurrent use; they serialize on the connection.
type Client struct {
	opts Options

	retries atomic.Int64
	closed  atomic.Bool

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to an adskip server.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = proto.MaxFrameDefault
	}
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection. A request in flight on another goroutine
// fails (and is canceled server-side by the disconnect). A backoff sleep
// in a retry loop is abandoned at its next attempt.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.conn.SetDeadline(time.Now()) // unblock a concurrent round-trip
	return c.conn.Close()
}

// Retries reports the cumulative number of automatic retries this client
// has performed (attempts beyond the first, successful or not). Load
// generators report this separately from errors: a request that was
// refused during recovery and then succeeded is a success, not a
// failure, but the retry volume is still worth watching.
func (c *Client) Retries() int64 { return c.retries.Load() }

// roundTrip sends one request, retrying retryable refusals per the
// client's RetryPolicy with full-jitter capped exponential backoff.
func (c *Client) roundTrip(req proto.Request) (proto.Response, error) {
	resp, err := c.roundTripOnce(req)
	if err == nil || c.opts.Retry.Max <= 0 || !Retryable(err) {
		return resp, err
	}
	pol := c.opts.Retry
	if pol.Base <= 0 {
		pol.Base = 10 * time.Millisecond
	}
	if pol.Cap <= 0 {
		pol.Cap = time.Second
	}
	for attempt := 0; attempt < pol.Max; attempt++ {
		ceil := pol.Base << uint(attempt)
		if ceil > pol.Cap || ceil <= 0 {
			ceil = pol.Cap
		}
		time.Sleep(time.Duration(rand.Int63n(int64(ceil) + 1)))
		if c.closed.Load() {
			return resp, err
		}
		c.retries.Add(1)
		resp, err = c.roundTripOnce(req)
		if err == nil || !Retryable(err) {
			return resp, err
		}
	}
	return resp, err
}

// roundTripOnce sends one request and reads its response under the mutex.
func (c *Client) roundTripOnce(req proto.Request) (proto.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := proto.WriteMessage(c.bw, req); err != nil {
		return proto.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return proto.Response{}, err
	}
	resp, err := proto.ReadResponse(c.br, c.opts.MaxFrameBytes)
	if err != nil {
		return proto.Response{}, err
	}
	if !resp.OK {
		return resp, &ServerError{Kind: resp.ErrKind, Msg: resp.Error}
	}
	return resp, nil
}

// decodeResult parses a wire result with UseNumber, so BIGINT cells stay
// lossless json.Number values rather than float64.
func decodeResult(raw json.RawMessage) (*proto.Result, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var res proto.Result
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("client: bad result payload: %w", err)
	}
	return &res, nil
}

// Query executes SQL text and returns the decoded result.
func (c *Client) Query(sqlText string) (*proto.Result, error) {
	return c.QueryTraced(sqlText, "")
}

// QueryTraced executes SQL text tagged with a client-generated trace ID.
// The server stamps the query's span tree with it, so the caller can
// find this exact execution in the server's /traces endpoint. An empty
// traceID degrades to a plain Query.
func (c *Client) QueryTraced(sqlText, traceID string) (*proto.Result, error) {
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpQuery, SQL: sqlText,
		TraceID: traceID, WantTiming: c.opts.Timing,
	})
	if err != nil {
		return nil, err
	}
	return decodeTimedResult(resp)
}

// Prepare parses and plans a statement server-side, returning its ID.
func (c *Client) Prepare(sqlText string) (uint64, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpPrepare, SQL: sqlText})
	if err != nil {
		return 0, err
	}
	return resp.Stmt, nil
}

// Exec executes a prepared statement by ID. A ServerError with kind
// proto.ErrKindNoStmt means the statement was evicted: Prepare again.
func (c *Client) Exec(stmt uint64) (*proto.Result, error) {
	return c.ExecTraced(stmt, "")
}

// ExecTraced executes a prepared statement tagged with a trace ID (see
// QueryTraced).
func (c *Client) ExecTraced(stmt uint64, traceID string) (*proto.Result, error) {
	resp, err := c.roundTrip(proto.Request{
		Op: proto.OpExec, Stmt: stmt,
		TraceID: traceID, WantTiming: c.opts.Timing,
	})
	if err != nil {
		return nil, err
	}
	return decodeTimedResult(resp)
}

// decodeTimedResult decodes the result payload and attaches the server's
// timing breakdown (nil when not requested or the server predates it).
func decodeTimedResult(resp proto.Response) (*proto.Result, error) {
	res, err := decodeResult(resp.Result)
	if err != nil {
		return nil, err
	}
	res.Timing = resp.Timing
	return res, nil
}

// Insert appends rows to a table and returns the number of rows the
// server acknowledged. Cells may be int/int64, float64, string, or nil
// for NULL, matched positionally to the table schema. On a durable
// server a non-error return means the rows are fsynced to the WAL.
// With a RetryPolicy configured, refusals during WAL replay or load
// shedding are retried automatically — those gates reject before any
// append, so the retry cannot double-insert. A transport error leaves
// the outcome unknown and is never retried.
func (c *Client) Insert(table string, rows [][]any) (int, error) {
	wire := make([][]json.RawMessage, len(rows))
	for i, row := range rows {
		wire[i] = make([]json.RawMessage, len(row))
		for j, cell := range row {
			raw, err := json.Marshal(cell)
			if err != nil {
				return 0, fmt.Errorf("client: row %d cell %d: %w", i, j, err)
			}
			wire[i][j] = raw
		}
	}
	resp, err := c.roundTrip(proto.Request{Op: proto.OpInsert, Table: table, Rows: wire})
	if err != nil {
		return 0, err
	}
	return resp.Inserted, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(proto.Request{Op: proto.OpPing})
	return err
}

// Tables lists the server's tables (sorted).
func (c *Client) Tables() ([]string, error) {
	resp, err := c.roundTrip(proto.Request{Op: proto.OpCatalog})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}
