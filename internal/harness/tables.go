package harness

import (
	"fmt"
	"time"

	"adskip/internal/adaptive"
	"adskip/internal/core"
	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

// Tab1Metadata reproduces the metadata-cost table: structure size and
// build time for static zonemaps across zone sizes, and for adaptive
// zonemaps before and after converging on a 1%-selectivity stream.
func Tab1Metadata(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "tab1",
		Title:  fmt.Sprintf("metadata footprint, clustered, N=%d", cfg.Rows),
		Header: []string{"structure", "zones", "metadata bytes", "bytes/row", "build time"},
	}
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	for zs := 256; zs <= cfg.Rows; zs *= 16 {
		start := time.Now()
		s := core.NewStaticSkipper(vals, nil, zs)
		build := time.Since(start)
		md := s.Metadata()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("static/%d", zs),
			fmt.Sprintf("%d", md.Zones),
			fmtBytes(md.Bytes),
			fmt.Sprintf("%.4f", float64(md.Bytes)/float64(cfg.Rows)),
			fmtNs(float64(build.Nanoseconds())),
		})
	}
	acfg := cfg.adaptiveConfig()
	start := time.Now()
	az := adaptive.New(vals, nil, acfg)
	build := time.Since(start)
	md := az.Metadata()
	e := buildEngineFromValues(cfg, vals, engine.PolicyAdaptive)
	t.Rows = append(t.Rows, []string{
		"adaptive (initial)",
		fmt.Sprintf("%d", md.Zones),
		fmtBytes(md.Bytes),
		fmt.Sprintf("%.4f", float64(md.Bytes)/float64(cfg.Rows)),
		fmtNs(float64(build.Nanoseconds())),
	})
	gen := workload.NewGen(workload.QuerySpec{
		Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 8,
	})
	if _, err := runStream(e, gen, cfg.Queries); err != nil {
		return nil, err
	}
	md = e.Skipper("v").Metadata()
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("adaptive (after %d queries)", cfg.Queries),
		fmt.Sprintf("%d", md.Zones),
		fmtBytes(md.Bytes),
		fmt.Sprintf("%.4f", float64(md.Bytes)/float64(cfg.Rows)),
		"-",
	})
	t.Notes = append(t.Notes, "adaptive build cost is a coarse initial pass; refinement is paid inside queries")
	return t, nil
}

// Tab2Summary reproduces the headline summary: per-distribution speedup of
// adaptive skipping over no skipping and over static zonemaps, at steady
// state. The abstract's claim is ≈1.4X potential on skippable data and no
// durable loss on arbitrary data.
func Tab2Summary(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "tab2",
		Title:  fmt.Sprintf("steady-state speedups, N=%d, sel=1%%", cfg.Rows),
		Header: []string{"distribution", "adaptive vs none", "adaptive vs static", "static vs none"},
	}
	dists := []workload.Distribution{workload.Sorted, workload.SemiSorted, workload.Clustered, workload.Zipf, workload.Uniform}
	for _, dist := range dists {
		steady := map[engine.Policy]float64{}
		for _, policy := range policies {
			e, domain := buildEngine(cfg, dist, policy)
			gen := workload.NewGen(workload.QuerySpec{
				Kind: workload.UniformRange, Domain: domain, Selectivity: 0.01, Seed: cfg.Seed + 9,
			})
			sr, err := runStream(e, gen, cfg.Queries)
			if err != nil {
				return nil, err
			}
			steady[policy] = sr.avgNs(cfg.Queries/2, cfg.Queries)
		}
		t.Rows = append(t.Rows, []string{
			dist.String(),
			fmt.Sprintf("%.2fx", steady[engine.PolicyNone]/steady[engine.PolicyAdaptive]),
			fmt.Sprintf("%.2fx", steady[engine.PolicyStatic]/steady[engine.PolicyAdaptive]),
			fmt.Sprintf("%.2fx", steady[engine.PolicyNone]/steady[engine.PolicyStatic]),
		})
	}
	t.Notes = append(t.Notes,
		"≥1.00x everywhere for adaptive-vs-none is the robustness claim; >1.4x on clustered/sorted is the speedup claim")
	return t, nil
}

// Tab3MultiColumn reproduces intersection pruning: conjunctions over 1–4
// clustered columns, each predicate at 10% selectivity. Candidate windows
// intersect across columns, so pruning compounds.
func Tab3MultiColumn(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "tab3",
		Title:  fmt.Sprintf("multi-column conjunctions, clustered, N=%d, per-column sel=10%%", cfg.Rows),
		Header: []string{"predicate columns", "none", "static", "rows scanned (static)", "scan reduction"},
	}
	const k = 4
	domain := int64(cfg.Rows)
	// Build a k-column table per policy; columns use different seeds so
	// their cluster layouts are independent and intersection compounds.
	build := func(policy engine.Policy) *engine.Engine {
		schema := make(table.Schema, k)
		for c := 0; c < k; c++ {
			schema[c] = table.ColumnSpec{Name: fmt.Sprintf("c%d", c), Type: storage.Int64}
		}
		tbl := table.MustNew("t", schema)
		for c := 0; c < k; c++ {
			col, _ := tbl.Column(fmt.Sprintf("c%d", c))
			for _, v := range workload.Generate(workload.DataSpec{
				N: cfg.Rows, Dist: workload.Clustered, Domain: domain, Seed: cfg.Seed + int64(c),
			}) {
				if err := col.AppendInt(v); err != nil {
					panic(err)
				}
			}
		}
		e := engine.New(tbl, engine.Options{
			Policy: policy, StaticZoneSize: cfg.StaticZoneRows, Adaptive: cfg.adaptiveConfig(),
			Metrics: cfg.Metrics, Traces: cfg.Traces,
		})
		if err := e.EnableSkipping(); err != nil {
			panic(err)
		}
		return e
	}
	engines := map[engine.Policy]*engine.Engine{}
	for _, p := range []engine.Policy{engine.PolicyNone, engine.PolicyStatic} {
		engines[p] = build(p)
	}
	gens := make([]*workload.Gen, k)
	for c := 0; c < k; c++ {
		gens[c] = workload.NewGen(workload.QuerySpec{
			Kind: workload.UniformRange, Domain: domain, Selectivity: 0.10, Seed: cfg.Seed + 20 + int64(c),
		})
	}
	for m := 1; m <= k; m++ {
		// Build a fresh stream of conjunctions over the first m columns.
		queries := make([]engine.Query, cfg.Queries/4)
		for qi := range queries {
			var conj expr.Conj
			for c := 0; c < m; c++ {
				r := gens[c].Next()
				conj.Preds = append(conj.Preds, expr.MustPred(fmt.Sprintf("c%d", c),
					expr.Between, storage.IntValue(r.Lo), storage.IntValue(r.Hi)))
			}
			queries[qi] = engine.Query{Where: conj, Aggs: []engine.Agg{{Kind: engine.CountStar}}}
		}
		times := map[engine.Policy]float64{}
		var staticScanned, noneScanned int64
		for _, p := range []engine.Policy{engine.PolicyNone, engine.PolicyStatic} {
			e := engines[p]
			var total int64
			var scanned int64
			for _, q := range queries {
				start := time.Now()
				res, err := e.Query(q)
				if err != nil {
					return nil, err
				}
				total += time.Since(start).Nanoseconds()
				scanned += int64(res.Stats.RowsScanned)
			}
			times[p] = float64(total) / float64(len(queries))
			if p == engine.PolicyStatic {
				staticScanned = scanned / int64(len(queries))
			} else {
				noneScanned = scanned / int64(len(queries))
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmtNs(times[engine.PolicyNone]),
			fmtNs(times[engine.PolicyStatic]),
			fmt.Sprintf("%d", staticScanned),
			fmt.Sprintf("%.1f%%", (1-float64(staticScanned)/float64(noneScanned))*100),
		})
	}
	t.Notes = append(t.Notes, "scan reduction compounds as candidate windows intersect across columns")
	return t, nil
}

// Abl1Mechanisms reproduces the mechanism ablation: adaptive zonemaps with
// split, merge, or arbitration disabled, on the distribution each
// mechanism exists for.
func Abl1Mechanisms(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "abl1",
		Title:  fmt.Sprintf("adaptive mechanism ablation, N=%d, sel=1%%", cfg.Rows),
		Header: []string{"variant", "clustered steady", "uniform steady", "uniform probes/query", "zones (clustered)"},
	}
	variants := []struct {
		name string
		mod  func(*adaptive.Config)
	}{
		{"full adaptive", func(*adaptive.Config) {}},
		{"no split", func(c *adaptive.Config) { c.DisableSplit = true }},
		{"no merge", func(c *adaptive.Config) { c.DisableMerge = true }},
		{"no arbitration", func(c *adaptive.Config) { c.DisableArbitration = true }},
		// Merge and arbitration are redundant safety nets on hopeless
		// data; disabling both isolates what either buys.
		{"split only", func(c *adaptive.Config) { c.DisableMerge = true; c.DisableArbitration = true }},
	}
	clustered := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: int64(cfg.Rows),
		Clusters: 4096, Seed: cfg.Seed,
	})
	uniform := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Uniform, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	// Baseline for overhead.
	noneEng := buildEngineFromValues(cfg, uniform, engine.PolicyNone)
	genSpec := workload.QuerySpec{
		Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 10,
	}
	srNone, err := runStream(noneEng, workload.NewGen(genSpec), cfg.Queries)
	if err != nil {
		return nil, err
	}
	noneSteady := srNone.avgNs(cfg.Queries/2, cfg.Queries)
	for _, v := range variants {
		acfg := cfg.adaptiveConfig()
		v.mod(&acfg)
		mk := func(vals []int64) *engine.Engine {
			tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
			col, _ := tbl.Column("v")
			for _, x := range vals {
				if err := col.AppendInt(x); err != nil {
					panic(err)
				}
			}
			e := engine.New(tbl, engine.Options{Policy: engine.PolicyAdaptive, Adaptive: acfg, Metrics: cfg.Metrics, Traces: cfg.Traces})
			if err := e.EnableSkipping("v"); err != nil {
				panic(err)
			}
			return e
		}
		eClu := mk(clustered)
		srClu, err := runStream(eClu, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		eUni := mk(uniform)
		srUni, err := runStream(eUni, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		uniSteady := srUni.medianNs(cfg.Queries/2, cfg.Queries)
		t.Rows = append(t.Rows, []string{
			v.name,
			fmtNs(srClu.medianNs(cfg.Queries/2, cfg.Queries)),
			fmtNs(uniSteady),
			fmt.Sprintf("%.0f", float64(srUni.zonesProbed)/float64(cfg.Queries)),
			fmt.Sprintf("%d", eClu.Skipper("v").Metadata().Zones),
		})
	}
	_ = noneSteady
	t.Notes = append(t.Notes,
		"no-split loses the clustered speedup; no-arbitration keeps probing uniform data every query (probes/query stays high)")
	return t, nil
}

// Abl2SplitFanout reproduces the split-fanout ablation: how many sub-zones
// each split produces trades convergence speed against metadata growth.
func Abl2SplitFanout(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "abl2",
		Title:  fmt.Sprintf("split fanout sweep, clustered, N=%d, sel=1%%", cfg.Rows),
		Header: []string{"fanout", "first-quarter avg", "steady avg", "zones", "metadata"},
	}
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: int64(cfg.Rows),
		Clusters: 4096, Seed: cfg.Seed,
	})
	genSpec := workload.QuerySpec{
		Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 11,
	}
	for _, fanout := range []int{2, 4, 8, 16, 32} {
		acfg := cfg.adaptiveConfig()
		acfg.SplitParts = fanout
		tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
		col, _ := tbl.Column("v")
		for _, x := range vals {
			if err := col.AppendInt(x); err != nil {
				panic(err)
			}
		}
		e := engine.New(tbl, engine.Options{Policy: engine.PolicyAdaptive, Adaptive: acfg, Metrics: cfg.Metrics, Traces: cfg.Traces})
		if err := e.EnableSkipping("v"); err != nil {
			panic(err)
		}
		sr, err := runStream(e, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		md := e.Skipper("v").Metadata()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", fanout),
			fmtNs(sr.avgNs(0, cfg.Queries/4)),
			fmtNs(sr.avgNs(cfg.Queries/2, cfg.Queries)),
			fmt.Sprintf("%d", md.Zones),
			fmtBytes(md.Bytes),
		})
	}
	t.Notes = append(t.Notes, "higher fanout converges faster but holds more zones")
	return t, nil
}
