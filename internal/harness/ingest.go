package harness

import (
	"fmt"
	"os"
	"sync"
	"time"

	"adskip/internal/engine"
	"adskip/internal/obs"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/wal"
	"adskip/internal/workload"
)

// The ingest benchmark: the same concurrent batch-append workload run
// against the volatile in-memory path, the durable WAL path (group
// commit, real fsyncs), and the WAL-without-fsync path, so the cost of
// durability is one number.
//
// The durable path is measured two ways, because they answer different
// questions. Closed-loop ("acked"): each writer waits for its batch to
// be durable before issuing the next — per-batch commit latency,
// dominated by the group-commit window, is the ceiling. Pipelined
// ("sustained"): writers stream batches through AppendRowsAsync and wait
// only at the end, keeping the commit pipeline full — one fsync absorbs
// everything that arrived while the previous one was in flight, which is
// the amortization group commit exists to provide. The acceptance claim
// (DurableSlowdown ≤ 2 vs the volatile path) is about sustained ingest.

// IngestConfig sizes one ingest measurement.
type IngestConfig struct {
	Dir     string        // scratch directory for WAL legs ("" = temp dir)
	Rows    int           // total rows appended per leg (default 1<<16)
	Batch   int           // rows per AppendRows call (default 64)
	Writers int           // concurrent appenders (default 4)
	Window  time.Duration // group-commit window (0 = WAL default)
	Seed    int64
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Rows <= 0 {
		// Big enough that steady-state pipelining, not startup (first
		// flush, file creation), dominates the sustained measurement.
		c.Rows = 1 << 18
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	// Whole batches only, so throughput divides rows actually appended.
	c.Rows = (c.Rows / c.Batch) * c.Batch
	if c.Rows == 0 {
		c.Rows = c.Batch
	}
	return c
}

// IngestStats is the machine-comparable result of RunIngest.
type IngestStats struct {
	Rows    int `json:"rows"`
	Batch   int `json:"batch"`
	Writers int `json:"writers"`
	// Sustained (pipelined) ingest throughput per leg.
	MemRowsPerSec       float64 `json:"mem_rows_per_sec"`
	WALRowsPerSec       float64 `json:"wal_rows_per_sec"`
	WALNoSyncRowsPerSec float64 `json:"wal_nosync_rows_per_sec"`
	// WALAckedRowsPerSec is the closed-loop durable number: every batch
	// individually waited before the next. It is group-window-bound by
	// design (latency floor ≈ the window), so it is reported for context,
	// not gated on.
	WALAckedRowsPerSec float64 `json:"wal_acked_rows_per_sec"`
	// Syncs is how many fsync batches the sustained durable leg took;
	// RowsPerSync is the amortization (without group commit it would be
	// at most Batch).
	Syncs       int64   `json:"syncs"`
	RowsPerSync float64 `json:"rows_per_sync"`
	// DurableSlowdown is MemRowsPerSec / WALRowsPerSec on the sustained
	// legs: 1.0 = free durability, 2.0 = the acceptance ceiling.
	DurableSlowdown float64 `json:"durable_slowdown"`
}

func (s IngestStats) String() string {
	return fmt.Sprintf(
		"ingest %d rows, batch %d, %d writers: mem %.2gM rows/s; wal sustained %.2gM rows/s (%.2fx slowdown, %d syncs, %.0f rows/sync), acked %.3gM rows/s; wal-nosync %.2gM rows/s",
		s.Rows, s.Batch, s.Writers, s.MemRowsPerSec/1e6, s.WALRowsPerSec/1e6,
		s.DurableSlowdown, s.Syncs, s.RowsPerSync, s.WALAckedRowsPerSec/1e6,
		s.WALNoSyncRowsPerSec/1e6)
}

// RunIngest measures the ingest legs and returns their stats.
func RunIngest(cfg IngestConfig) (IngestStats, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "adskip-ingest-")
		if err != nil {
			return IngestStats{}, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	st := IngestStats{Rows: cfg.Rows, Batch: cfg.Batch, Writers: cfg.Writers}

	// Volatile leg (pipelined and closed-loop are identical with no WAL).
	memSec, err := ingestLeg(cfg, nil, false)
	if err != nil {
		return st, fmt.Errorf("mem leg: %w", err)
	}
	st.MemRowsPerSec = float64(cfg.Rows) / memSec

	// Durable sustained leg: group commit with real fsyncs, full pipeline.
	reg := obs.NewRegistry()
	walSec, err := ingestLegWAL(cfg, wal.Options{
		Dir: cfg.Dir + "/durable", GroupWindow: cfg.Window, Metrics: reg,
	}, false)
	if err != nil {
		return st, fmt.Errorf("wal leg: %w", err)
	}
	st.WALRowsPerSec = float64(cfg.Rows) / walSec
	st.Syncs = reg.Counter("adskip_wal_syncs_total", "").Load()
	if st.Syncs > 0 {
		st.RowsPerSync = float64(cfg.Rows) / float64(st.Syncs)
	}
	if st.WALRowsPerSec > 0 {
		st.DurableSlowdown = st.MemRowsPerSec / st.WALRowsPerSec
	}

	// Durable closed-loop leg: every batch waited individually.
	ackedSec, err := ingestLegWAL(cfg, wal.Options{
		Dir: cfg.Dir + "/acked", GroupWindow: cfg.Window,
	}, true)
	if err != nil {
		return st, fmt.Errorf("wal acked leg: %w", err)
	}
	st.WALAckedRowsPerSec = float64(cfg.Rows) / ackedSec

	// No-sync leg: same logging and group-commit machinery, fsync skipped —
	// isolates how much of the slowdown is the disk versus the framing.
	noSyncSec, err := ingestLegWAL(cfg, wal.Options{
		Dir: cfg.Dir + "/nosync", GroupWindow: cfg.Window, NoSync: true,
	}, false)
	if err != nil {
		return st, fmt.Errorf("wal-nosync leg: %w", err)
	}
	st.WALNoSyncRowsPerSec = float64(cfg.Rows) / noSyncSec
	return st, nil
}

// ingestLegWAL opens a fresh log, arms it, and times the workload.
func ingestLegWAL(cfg IngestConfig, opts wal.Options, acked bool) (float64, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return 0, err
	}
	l, _, err := wal.Open(opts, nil)
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return ingestLeg(cfg, l, acked)
}

// ingestLeg appends cfg.Rows rows from cfg.Writers concurrent goroutines
// in cfg.Batch-row batches and returns the elapsed seconds. With acked
// each append is waited before the next; otherwise writers stream
// batches and durability is settled once at the end (every row is still
// durable before the clock stops).
func ingestLeg(cfg IngestConfig, l *wal.Log, acked bool) (float64, error) {
	tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	e := engine.New(tbl, engine.Options{Policy: engine.PolicyAdaptive})
	if err := e.EnableSkipping("v"); err != nil {
		return 0, err
	}
	if l != nil {
		e.SetWAL(l)
	}
	batches := cfg.Rows / cfg.Batch
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Batch, Dist: workload.Uniform, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	batch := make([][]storage.Value, cfg.Batch)
	for i := range batch {
		batch[i] = []storage.Value{storage.IntValue(vals[i])}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Writers)
	start := time.Now()
	for w := 0; w < cfg.Writers; w++ {
		n := batches / cfg.Writers
		if w < batches%cfg.Writers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			var last wal.Commit
			for i := 0; i < n; i++ {
				c, err := e.AppendRowsAsync(batch)
				if err != nil {
					errCh <- err
					return
				}
				if acked {
					if err := c.Wait(); err != nil {
						errCh <- err
						return
					}
				}
				last = c
			}
			// Waiting the writer's final commit covers all its earlier ones:
			// a batch is durable only with everything enqueued before it.
			if err := last.Wait(); err != nil {
				errCh <- err
			}
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return elapsed, nil
}
