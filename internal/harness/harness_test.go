package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment runtime in milliseconds for unit tests.
func tinyConfig() Config {
	return Config{Rows: 20000, Queries: 48, Seed: 7, StaticZoneRows: 512}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	for _, ex := range Experiments() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			tbl, err := ex.Run(tinyConfig())
			if err != nil {
				t.Fatalf("%s: %v", ex.ID, err)
			}
			if tbl.ID != ex.ID {
				t.Fatalf("table id %q want %q", tbl.ID, ex.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Header) == 0 {
				t.Fatalf("%s: empty table", ex.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s row %d: %d cells for %d headers", ex.ID, i, len(row), len(tbl.Header))
				}
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			if !strings.Contains(buf.String(), ex.ID) {
				t.Fatalf("%s: Fprint missing id", ex.ID)
			}
			buf.Reset()
			tbl.CSV(&buf)
			lines := strings.Count(buf.String(), "\n")
			if lines != len(tbl.Rows)+1 {
				t.Fatalf("%s: CSV has %d lines want %d", ex.ID, lines, len(tbl.Rows)+1)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig1"); !ok {
		t.Fatal("fig1 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Rows != 1<<21 || c.Queries != 512 || c.Seed != 42 || c.StaticZoneRows != 4096 {
		t.Fatalf("defaults: %+v", c)
	}
	a := c.adaptiveConfig()
	if a.InitialZoneRows != (1<<21)/256 || a.MinZoneRows < 256 {
		t.Fatalf("adaptive scaling: %+v", a)
	}
}

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(100)
	if pts[0] != 0 || pts[len(pts)-1] != 99 {
		t.Fatalf("pts=%v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("not increasing: %v", pts)
		}
	}
	if got := samplePoints(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("n=1: %v", got)
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtNs(500) != "0.5µs" || fmtNs(2.5e6) != "2.500ms" || fmtNs(3e9) != "3.000s" {
		t.Fatalf("fmtNs: %s %s %s", fmtNs(500), fmtNs(2.5e6), fmtNs(3e9))
	}
	if fmtBytes(100) != "100B" || fmtBytes(2048) != "2.0KiB" || fmtBytes(3<<20) != "3.0MiB" {
		t.Fatal("fmtBytes wrong")
	}
}

func TestStreamResultWindows(t *testing.T) {
	sr := streamResult{perQueryNs: []int64{10, 20, 30, 40}}
	if sr.avgNs(0, 4) != 25 || sr.avgNs(2, 4) != 35 {
		t.Fatalf("avg: %f %f", sr.avgNs(0, 4), sr.avgNs(2, 4))
	}
	if sr.avgNs(3, 3) != 0 || sr.avgNs(0, 100) != 25 {
		t.Fatal("avg edge cases")
	}
	if sr.medianNs(0, 4) != 30 { // upper median
		t.Fatalf("median: %f", sr.medianNs(0, 4))
	}
	if sr.medianNs(2, 2) != 0 {
		t.Fatal("empty median")
	}
}
