// Package harness reproduces the paper's evaluation: every figure and
// table has a function that generates its workload, runs the policies,
// and emits the series/rows the paper reports. The cmd/adskip-bench CLI
// and the repository's bench_test.go both drive this package.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"adskip/internal/adaptive"
	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

// Config scales the experiment suite. The defaults target an interactive
// laptop run; the CLI raises Rows for paper-scale runs.
type Config struct {
	Rows    int   // column length (default 1<<21)
	Queries int   // queries per measured stream (default 512)
	Seed    int64 // base RNG seed (default 42)
	// StaticZoneRows is the static baseline's zone size (default 4096).
	StaticZoneRows int
	// Metrics, when set, is shared by every engine the experiments build,
	// so a run's cumulative counters can be dumped afterwards (bench CLI
	// -metrics flag). Nil keeps each engine's registry private.
	Metrics *obs.Registry
	// Traces, when set, collects every experiment query's trace into one
	// shared ring, so the bench CLI's -serve telemetry endpoint can show
	// live traces mid-run. Nil keeps traces per-engine.
	Traces *obs.TraceRing
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 1 << 21
	}
	if c.Queries <= 0 {
		c.Queries = 512
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.StaticZoneRows <= 0 {
		c.StaticZoneRows = 4096
	}
	return c
}

// adaptiveConfig scales adaptive zonemap parameters to the column size so
// experiments behave consistently across Rows settings.
func (c Config) adaptiveConfig() adaptive.Config {
	initial := c.Rows / 256
	if initial < 1024 {
		initial = 1024
	}
	minZone := c.Rows / 65536
	if minZone < 256 {
		minZone = 256
	}
	return adaptive.Config{
		InitialZoneRows: initial,
		MinZoneRows:     minZone,
		MaxZones:        1 << 16,
	}
}

// Table is one reproduced figure/table: a titled grid of cells. Figures
// are emitted as their underlying data series (one row per x-value).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	for i := range widths {
		for j := 0; j < widths[i]; j++ {
			fmt.Fprint(w, "-")
		}
		if i < len(widths)-1 {
			fmt.Fprint(w, "  ")
		}
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as CSV (header + rows).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered experiment function.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// Experiments returns the full registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Scan time by data distribution and skipping policy", Fig1Distributions},
		{"fig2", "Per-query adaptation curve (clustered data)", Fig2Convergence},
		{"fig3", "Speedup vs selectivity (semi-sorted data)", Fig3Selectivity},
		{"fig4", "Static zone-size sweep vs adaptive (clustered data)", Fig4Granularity},
		{"fig5", "Workload drift: hot range relocates mid-stream", Fig5Drift},
		{"fig6", "Adversarial uniform data: arbitration overhead bound", Fig6Adversarial},
		{"fig7", "Appends during the workload", Fig7Appends},
		{"tab1", "Metadata footprint and build time", Tab1Metadata},
		{"tab2", "Headline speedup summary", Tab2Summary},
		{"tab3", "Multi-column predicate intersection", Tab3MultiColumn},
		{"abl1", "Ablation: adaptive mechanisms", Abl1Mechanisms},
		{"abl2", "Ablation: split fanout", Abl2SplitFanout},
		{"ext1", "Extension: parallel scan scaling", Ext1Parallel},
		{"ext2", "Extension: column imprints vs zonemaps on bimodal data", Ext2Imprints},
		{"ext3", "Extension: sharded scatter-gather with shard pruning", Ext3Sharded},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared machinery.

// buildEngine creates a one-column table ("v" BIGINT) filled with the
// given distribution and an engine with the policy's skipping enabled.
func buildEngine(cfg Config, dist workload.Distribution, policy engine.Policy) (*engine.Engine, int64) {
	domain := int64(cfg.Rows)
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: dist, Domain: domain, Seed: cfg.Seed,
	})
	return buildEngineFromValues(cfg, vals, policy), domain
}

// buildEngineFromValues wraps pre-generated values.
func buildEngineFromValues(cfg Config, vals []int64, policy engine.Policy) *engine.Engine {
	tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	col, err := tbl.Column("v")
	if err != nil {
		panic(err)
	}
	for _, v := range vals {
		if err := col.AppendInt(v); err != nil {
			panic(err)
		}
	}
	e := engine.New(tbl, engine.Options{
		Policy:         policy,
		StaticZoneSize: cfg.StaticZoneRows,
		Adaptive:       cfg.adaptiveConfig(),
		Metrics:        cfg.Metrics,
		Traces:         cfg.Traces,
	})
	if err := e.EnableSkipping("v"); err != nil {
		panic(err)
	}
	return e
}

// countQuery builds the COUNT(*) range query the streams use.
func countQuery(r workload.Range) engine.Query {
	return engine.Query{
		Where: expr.And(expr.MustPred("v", expr.Between,
			storage.IntValue(r.Lo), storage.IntValue(r.Hi))),
		Aggs: []engine.Agg{{Kind: engine.CountStar}},
	}
}

// streamResult aggregates one measured query stream.
type streamResult struct {
	perQueryNs  []int64
	totalNs     int64
	rowsScanned int64
	rowsSkipped int64
	rowsCovered int64
	zonesProbed int64
	matched     int64
}

// runStreamAgg executes q queries from gen computing SUM(v) instead of
// COUNT(*): covered windows still avoid predicate evaluation but must read
// data to aggregate, so this stream isolates pure skipping benefit from
// the covered-count short-circuit.
func runStreamAgg(e *engine.Engine, gen *workload.Gen, q int) (streamResult, error) {
	var sr streamResult
	sr.perQueryNs = make([]int64, 0, q)
	for i := 0; i < q; i++ {
		r := gen.Next()
		query := engine.Query{
			Where: expr.And(expr.MustPred("v", expr.Between,
				storage.IntValue(r.Lo), storage.IntValue(r.Hi))),
			Aggs: []engine.Agg{{Kind: engine.Sum, Col: "v"}},
		}
		start := time.Now()
		res, err := e.Query(query)
		if err != nil {
			return sr, err
		}
		ns := time.Since(start).Nanoseconds()
		sr.perQueryNs = append(sr.perQueryNs, ns)
		sr.totalNs += ns
		sr.rowsScanned += int64(res.Stats.RowsScanned)
		sr.rowsSkipped += int64(res.Stats.RowsSkipped)
		sr.rowsCovered += int64(res.Stats.RowsCovered)
		sr.zonesProbed += int64(res.Stats.ZonesProbed)
		sr.matched += int64(res.Count)
	}
	return sr, nil
}

// runStream executes q queries from gen against e, timing each.
func runStream(e *engine.Engine, gen *workload.Gen, q int) (streamResult, error) {
	var sr streamResult
	sr.perQueryNs = make([]int64, 0, q)
	for i := 0; i < q; i++ {
		r := gen.Next()
		start := time.Now()
		res, err := e.Query(countQuery(r))
		if err != nil {
			return sr, err
		}
		ns := time.Since(start).Nanoseconds()
		sr.perQueryNs = append(sr.perQueryNs, ns)
		sr.totalNs += ns
		sr.rowsScanned += int64(res.Stats.RowsScanned)
		sr.rowsSkipped += int64(res.Stats.RowsSkipped)
		sr.rowsCovered += int64(res.Stats.RowsCovered)
		sr.zonesProbed += int64(res.Stats.ZonesProbed)
		sr.matched += int64(res.Count)
	}
	return sr, nil
}

// avgNs returns the mean per-query nanoseconds over the window [from, to).
func (s streamResult) avgNs(from, to int) float64 {
	if to > len(s.perQueryNs) {
		to = len(s.perQueryNs)
	}
	if from >= to {
		return 0
	}
	var sum int64
	for _, ns := range s.perQueryNs[from:to] {
		sum += ns
	}
	return float64(sum) / float64(to-from)
}

// medianNs returns the median per-query nanoseconds over [from, to).
func (s streamResult) medianNs(from, to int) float64 {
	if to > len(s.perQueryNs) {
		to = len(s.perQueryNs)
	}
	if from >= to {
		return 0
	}
	w := append([]int64(nil), s.perQueryNs[from:to]...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	return float64(w[len(w)/2])
}

// fmtNs renders nanoseconds as a human-readable duration with fixed
// precision (µs granularity keeps columns stable across runs).
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", ns/1e6)
	default:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	}
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// policies are the three policies compared throughout.
var policies = []engine.Policy{engine.PolicyNone, engine.PolicyStatic, engine.PolicyAdaptive}
