package harness

import (
	"fmt"
	"sort"

	"adskip/internal/engine"
	"adskip/internal/workload"
)

// The CI perf-regression gate: one deterministic measured stream (the
// fig1 headline configuration — clustered data, adaptive policy, 1%
// uniform range queries) distilled into three numbers that are compared
// against a committed baseline. Structured stats, not parsed table
// cells: the gate survives cosmetic changes to the report format.

// GateStats is the machine-comparable result of one gate stream. The
// run configuration is embedded so the comparison side can re-run at
// exactly the baseline's scale and seed, and refuse to compare
// mismatched runs.
type GateStats struct {
	Rows       int   `json:"rows"`
	Queries    int   `json:"queries"`
	Seed       int64 `json:"seed"`
	StaticZone int   `json:"static_zone_rows"`
	// P50NS and P95NS are steady-state per-query latency quantiles
	// (second half of the stream, after pay-as-you-go refinement).
	P50NS float64 `json:"p50_ns"`
	P95NS float64 `json:"p95_ns"`
	// ThroughputQPS is steady-state queries per wall-clock second.
	ThroughputQPS float64 `json:"throughput_qps"`
	// SkipRatio is rows skipped / rows considered over the whole stream —
	// the data-skipping effectiveness the paper's claims rest on. Unlike
	// the latency numbers it is (seed-)deterministic, so a drop means a
	// real behavior change, not machine noise.
	SkipRatio float64 `json:"skip_ratio"`
	// Samples is how many steady-state queries the latency quantiles were
	// computed from. Below MinGateSamples the quantiles are noise (a
	// 2-sample p95 is just the max of two warmup-adjacent queries) and
	// CompareGate refuses to gate on them. Zero in summaries written
	// before this field existed; the comparison falls back to deriving it
	// from Queries.
	Samples int `json:"steady_samples,omitempty"`
}

// MinGateSamples is the smallest steady-state sample count the gate will
// draw latency conclusions from. Runs shorter than this produce a skip,
// never a vacuous pass.
const MinGateSamples = 8

// GateRun executes the gate stream and returns its stats.
func GateRun(cfg Config) (GateStats, error) {
	cfg = cfg.WithDefaults()
	e, domain := buildEngine(cfg, workload.Clustered, engine.PolicyAdaptive)
	gen := workload.NewGen(workload.QuerySpec{
		Kind: workload.UniformRange, Domain: domain, Selectivity: 0.01, Seed: cfg.Seed + 1,
	})
	sr, err := runStream(e, gen, cfg.Queries)
	if err != nil {
		return GateStats{}, err
	}
	steady := sr.perQueryNs[len(sr.perQueryNs)/2:]
	var steadyNs int64
	for _, ns := range steady {
		steadyNs += ns
	}
	g := GateStats{
		Rows: cfg.Rows, Queries: cfg.Queries, Seed: cfg.Seed, StaticZone: cfg.StaticZoneRows,
		P50NS:   quantileNs(steady, 0.50),
		P95NS:   quantileNs(steady, 0.95),
		Samples: len(steady),
	}
	if steadyNs > 0 {
		g.ThroughputQPS = float64(len(steady)) / (float64(steadyNs) / 1e9)
	}
	if denom := sr.rowsSkipped + sr.rowsScanned; denom > 0 {
		g.SkipRatio = float64(sr.rowsSkipped) / float64(denom)
	}
	return g, nil
}

// quantileNs returns the q-quantile of ns (nearest-rank, not mutated).
func quantileNs(ns []int64, q float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	w := append([]int64(nil), ns...)
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	i := int(q * float64(len(w)))
	if i >= len(w) {
		i = len(w) - 1
	}
	return float64(w[i])
}

// CompareGate checks current against baseline with a relative tolerance
// (0.15 = fail beyond 15% worse) and returns one human-readable
// violation per breached metric — empty means the gate passes. Pure and
// deterministic, so the policy is unit-testable apart from any actual
// benchmark run. Improvements never violate; only regressions do.
//
// A non-empty skip means the comparison is statistically meaningless —
// either side has fewer than MinGateSamples steady-state samples — and
// no verdict was reached. Callers must surface a skip as "not gated",
// distinct from a pass: before this existed, a 4-query run produced
// zero/NaN quantiles that slipped through the `baseline > 0` guards and
// the gate passed vacuously.
func CompareGate(baseline, current GateStats, tolerance float64) (violations []string, skip string) {
	var v []string
	if baseline.Rows != current.Rows || baseline.Queries != current.Queries || baseline.Seed != current.Seed {
		return []string{fmt.Sprintf(
			"config mismatch: baseline rows=%d queries=%d seed=%d vs current rows=%d queries=%d seed=%d — not comparable",
			baseline.Rows, baseline.Queries, baseline.Seed, current.Rows, current.Queries, current.Seed)}, ""
	}
	if bs, cs := effSamples(baseline), effSamples(current); bs < MinGateSamples || cs < MinGateSamples {
		return nil, fmt.Sprintf(
			"insufficient steady-state samples (baseline %d, current %d, need %d) — quantiles at this scale are noise, not a verdict",
			bs, cs, MinGateSamples)
	}
	if baseline.P95NS > 0 && current.P95NS > baseline.P95NS*(1+tolerance) {
		v = append(v, fmt.Sprintf("p95 latency regressed %.1f%%: %s -> %s (tolerance %.0f%%)",
			100*(current.P95NS/baseline.P95NS-1), fmtNs(baseline.P95NS), fmtNs(current.P95NS), 100*tolerance))
	}
	if baseline.ThroughputQPS > 0 && current.ThroughputQPS < baseline.ThroughputQPS*(1-tolerance) {
		v = append(v, fmt.Sprintf("throughput regressed %.1f%%: %.0f -> %.0f qps (tolerance %.0f%%)",
			100*(1-current.ThroughputQPS/baseline.ThroughputQPS),
			baseline.ThroughputQPS, current.ThroughputQPS, 100*tolerance))
	}
	if baseline.SkipRatio > 0 && current.SkipRatio < baseline.SkipRatio*(1-tolerance) {
		v = append(v, fmt.Sprintf("skip ratio regressed: %.3f -> %.3f (tolerance %.0f%%)",
			baseline.SkipRatio, current.SkipRatio, 100*tolerance))
	}
	return v, ""
}

// effSamples is the steady-state sample count to judge a run by. Stats
// recorded before the Samples field existed (it reads as zero) derive it
// from the run length: GateRun's steady window is the second half of the
// stream.
func effSamples(g GateStats) int {
	if g.Samples > 0 {
		return g.Samples
	}
	return g.Queries - g.Queries/2
}
