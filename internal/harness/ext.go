package harness

import (
	"fmt"
	"runtime"
	"time"

	"adskip/internal/engine"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

// Ext1Parallel is an extension beyond the paper: intra-query parallel
// scans. The paper's prototype is single-threaded; modern main-memory
// systems partition scans across cores, and data skipping composes with
// that (candidate windows partition across workers). This experiment
// sweeps worker counts on unskippable data (pure scan scaling) and on
// clustered data with adaptive skipping (skipping + parallelism compose).
func Ext1Parallel(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "ext1",
		Title:  fmt.Sprintf("parallel scan scaling, N=%d, sel=1%% (GOMAXPROCS=%d)", cfg.Rows, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "uniform full-scan", "scaling", "clustered adaptive", "combined speedup vs serial none"},
	}
	uniform := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Uniform, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	clustered := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: int64(cfg.Rows),
		Clusters: 4096, Seed: cfg.Seed,
	})
	genSpec := workload.QuerySpec{
		Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 12,
	}
	build := func(vals []int64, policy engine.Policy, workers int) *engine.Engine {
		tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
		col, _ := tbl.Column("v")
		for _, x := range vals {
			if err := col.AppendInt(x); err != nil {
				panic(err)
			}
		}
		e := engine.New(tbl, engine.Options{
			Policy: policy, Adaptive: cfg.adaptiveConfig(), Parallelism: workers,
			Metrics: cfg.Metrics, Traces: cfg.Traces,
		})
		if err := e.EnableSkipping("v"); err != nil {
			panic(err)
		}
		return e
	}
	var serialFull, serialNone float64
	for _, workers := range []int{1, 2, 4, 8} {
		eUni := build(uniform, engine.PolicyNone, workers)
		srUni, err := runStream(eUni, workload.NewGen(genSpec), cfg.Queries/4)
		if err != nil {
			return nil, err
		}
		uni := srUni.medianNs(0, cfg.Queries/4)
		if workers == 1 {
			serialFull = uni
			serialNone = uni
		}
		eClu := build(clustered, engine.PolicyAdaptive, workers)
		srClu, err := runStream(eClu, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		clu := srClu.medianNs(cfg.Queries/2, cfg.Queries)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmtNs(uni),
			fmt.Sprintf("%.2fx", serialFull/uni),
			fmtNs(clu),
			fmt.Sprintf("%.0fx", serialNone/clu),
		})
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: skipping and intra-query parallelism compose (candidate windows partition across workers)",
		"on a single-core host (GOMAXPROCS=1) scaling is necessarily flat; the table then demonstrates that the parallel path adds no overhead and preserves results")
	return t, nil
}

// Ext2Imprints compares the framework's skipping structures — min/max
// zonemaps (static and adaptive) versus column imprints — on bimodal data
// whose zones are multi-modal: every zone's value hull spans the domain
// gap, so hull-based pruning fails structurally while occurrence-based
// imprints prune mid-gap queries almost entirely. This is the abstract's
// "framework for structures and techniques" made concrete: three
// structures, one Skipper contract, different distribution niches.
func Ext2Imprints(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "ext2",
		Title: fmt.Sprintf("skipping structures on bimodal data, N=%d", cfg.Rows),
		Header: []string{"structure", "gap-query time", "gap rows skipped",
			"mode-query time", "mode rows skipped", "metadata"},
	}
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Bimodal, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	domain := int64(cfg.Rows)
	// Gap queries live in the empty middle 40%; mode queries in the lower
	// mode (bottom 30%).
	gapGen := func() *workload.Gen {
		return workload.NewGen(workload.QuerySpec{
			Kind: workload.HotRange, Domain: domain, Selectivity: 0.01,
			HotFrac: 0.999, Seed: cfg.Seed + 30,
		})
	}
	_ = gapGen
	runFixed := func(e *engine.Engine, lo0, width int64, n int) (streamResult, error) {
		var sr streamResult
		g := workload.NewGen(workload.QuerySpec{
			Kind: workload.UniformRange, Domain: width, Selectivity: 0.02, Seed: cfg.Seed + 31,
		})
		for i := 0; i < n; i++ {
			r := g.Next()
			r.Lo += lo0
			r.Hi += lo0
			start := time.Now()
			res, err := e.Query(countQuery(r))
			if err != nil {
				return sr, err
			}
			sr.perQueryNs = append(sr.perQueryNs, time.Since(start).Nanoseconds())
			sr.rowsSkipped += int64(res.Stats.RowsSkipped)
		}
		return sr, nil
	}
	for _, policy := range []engine.Policy{engine.PolicyNone, engine.PolicyStatic, engine.PolicyImprint, engine.PolicyAdaptive} {
		e := buildEngineFromValues(cfg, vals, policy)
		gapLo := domain * 35 / 100
		gapW := domain * 30 / 100
		srGap, err := runFixed(e, gapLo, gapW, cfg.Queries/2)
		if err != nil {
			return nil, err
		}
		modeW := domain * 25 / 100
		srMode, err := runFixed(e, 0, modeW, cfg.Queries/2)
		if err != nil {
			return nil, err
		}
		md := e.Skipper("v").Metadata()
		total := int64(cfg.Rows) * int64(cfg.Queries/2)
		t.Rows = append(t.Rows, []string{
			policy.String(),
			fmtNs(srGap.medianNs(len(srGap.perQueryNs)/2, len(srGap.perQueryNs))),
			fmt.Sprintf("%.1f%%", float64(srGap.rowsSkipped)/float64(total)*100),
			fmtNs(srMode.medianNs(len(srMode.perQueryNs)/2, len(srMode.perQueryNs))),
			fmt.Sprintf("%.1f%%", float64(srMode.rowsSkipped)/float64(total)*100),
			fmtBytes(md.Bytes),
		})
	}
	t.Notes = append(t.Notes,
		"hull metadata (static/adaptive zonemaps) cannot prune gap queries on multi-modal zones; imprints can",
		"extension: column imprints (Sidirourgos & Kersten 2013) as a second structure under the same Skipper contract")
	return t, nil
}
