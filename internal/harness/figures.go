package harness

import (
	"fmt"

	"adskip/internal/adaptive"
	"adskip/internal/engine"
	"adskip/internal/storage"
	"adskip/internal/workload"
)

// Fig1Distributions reproduces the headline figure: average per-query scan
// time across data distributions for each skipping policy. The paper's
// claim: skipping wins big on sorted/semi-sorted/clustered data, and
// adaptive avoids the static zonemap's losses on arbitrary (uniform)
// data. Adaptive is reported at steady state (second half of the stream)
// alongside its whole-stream average, since adaptation is pay-as-you-go.
func Fig1Distributions(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "fig1",
		Title: fmt.Sprintf("avg per-query time, N=%d, %d queries, sel=1%%", cfg.Rows, cfg.Queries),
		Header: []string{"distribution", "none", "static", "adaptive(all)", "adaptive(steady)",
			"adp rows skipped", "adp speedup vs none"},
	}
	dists := []workload.Distribution{workload.Sorted, workload.SemiSorted, workload.Clustered, workload.Uniform}
	for _, dist := range dists {
		row := []string{dist.String()}
		var noneAvg, adpSteady float64
		var adpSkipFrac float64
		for _, policy := range policies {
			e, domain := buildEngine(cfg, dist, policy)
			gen := workload.NewGen(workload.QuerySpec{
				Kind: workload.UniformRange, Domain: domain, Selectivity: 0.01, Seed: cfg.Seed + 1,
			})
			sr, err := runStream(e, gen, cfg.Queries)
			if err != nil {
				return nil, err
			}
			avg := sr.avgNs(0, cfg.Queries)
			row = append(row, fmtNs(avg))
			switch policy {
			case engine.PolicyNone:
				noneAvg = avg
			case engine.PolicyAdaptive:
				adpSteady = sr.avgNs(cfg.Queries/2, cfg.Queries)
				row = append(row, fmtNs(adpSteady))
				total := int64(cfg.Rows) * int64(cfg.Queries)
				adpSkipFrac = float64(sr.rowsSkipped) / float64(total)
			}
		}
		row = append(row, fmt.Sprintf("%.1f%%", adpSkipFrac*100))
		if adpSteady > 0 {
			row = append(row, fmt.Sprintf("%.2fx", noneAvg/adpSteady))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"adaptive(steady) averages the second half of the stream, after pay-as-you-go refinement",
		"paper claim: ~1.4X potential on skippable distributions, no durable loss on uniform")
	return t, nil
}

// Fig2Convergence reproduces the cracking-style adaptation curve: response
// time by query sequence number on clustered data. Static is flat; the
// adaptive curve starts near static (coarse zones), dips as splits refine
// hot regions, and settles below it.
func Fig2Convergence(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "fig2",
		Title:  fmt.Sprintf("per-query time by sequence number, clustered, N=%d", cfg.Rows),
		Header: []string{"query#", "none", "static", "adaptive", "adaptive zones"},
	}
	// Fine clusters (many per initial zone) so coarse initial bounds are
	// wide and the split mechanism has real work to do.
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: int64(cfg.Rows),
		Clusters: 4096, Seed: cfg.Seed,
	})
	var srs []streamResult
	var zonesAt map[int]int
	for _, policy := range policies {
		e := buildEngineFromValues(cfg, vals, policy)
		gen := workload.NewGen(workload.QuerySpec{
			Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 2,
		})
		if policy == engine.PolicyAdaptive {
			// Sample zone counts alongside the timed stream.
			zonesAt = make(map[int]int)
			var sr streamResult
			for i := 0; i < cfg.Queries; i++ {
				one, err := runStream(e, gen, 1)
				if err != nil {
					return nil, err
				}
				sr.perQueryNs = append(sr.perQueryNs, one.perQueryNs[0])
				zonesAt[i] = e.Skipper("v").Metadata().Zones
			}
			srs = append(srs, sr)
			continue
		}
		sr, err := runStream(e, gen, cfg.Queries)
		if err != nil {
			return nil, err
		}
		srs = append(srs, sr)
	}
	for _, q := range samplePoints(cfg.Queries) {
		row := []string{fmt.Sprintf("%d", q+1)}
		// A windowed median around each sample point smooths the high
		// per-query variance of position-dependent range queries.
		lo, hi := q-4, q+5
		if lo < 0 {
			lo = 0
		}
		for _, sr := range srs {
			row = append(row, fmtNs(sr.medianNs(lo, hi)))
		}
		row = append(row, fmt.Sprintf("%d", zonesAt[q]))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "expected shape: adaptive converges below static within tens of queries")
	return t, nil
}

// samplePoints picks logarithmically spaced query indices for time-series
// tables.
func samplePoints(n int) []int {
	var pts []int
	for _, p := range []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		if p < n {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 || pts[len(pts)-1] != n-1 {
		pts = append(pts, n-1)
	}
	return pts
}

// Fig3Selectivity reproduces speedup vs selectivity on semi-sorted data:
// skipping pays most at low selectivity (few zones qualify) and fades as
// predicates widen to cover everything.
func Fig3Selectivity(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "fig3",
		Title: fmt.Sprintf("adaptive speedup vs selectivity, semi-sorted, N=%d", cfg.Rows),
		Header: []string{"selectivity", "none COUNT", "adaptive COUNT", "COUNT speedup",
			"none SUM", "adaptive SUM", "SUM speedup", "rows skipped"},
	}
	sels := []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5}
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.SemiSorted, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	for _, sel := range sels {
		none := buildEngineFromValues(cfg, vals, engine.PolicyNone)
		adp := buildEngineFromValues(cfg, vals, engine.PolicyAdaptive)
		genSpec := workload.QuerySpec{
			Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: sel, Seed: cfg.Seed + 3,
		}
		srNone, err := runStream(none, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		srAdp, err := runStream(adp, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		srNoneSum, err := runStreamAgg(none, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		srAdpSum, err := runStreamAgg(adp, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		noneCnt := srNone.medianNs(0, cfg.Queries)
		adpCnt := srAdp.medianNs(cfg.Queries/2, cfg.Queries)
		noneSum := srNoneSum.medianNs(0, cfg.Queries)
		adpSum := srAdpSum.medianNs(cfg.Queries/2, cfg.Queries)
		skipFrac := float64(srAdp.rowsSkipped) / (float64(cfg.Rows) * float64(cfg.Queries))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f%%", sel*100),
			fmtNs(noneCnt),
			fmtNs(adpCnt),
			fmt.Sprintf("%.2fx", noneCnt/adpCnt),
			fmtNs(noneSum),
			fmtNs(adpSum),
			fmt.Sprintf("%.2fx", noneSum/adpSum),
			fmt.Sprintf("%.1f%%", skipFrac*100),
		})
	}
	t.Notes = append(t.Notes,
		"COUNT speedup persists at high selectivity: covered zones short-circuit counting without data access",
		"SUM speedup fades as selectivity grows (the paper's classic shape): aggregation must read every qualifying row")
	return t, nil
}

// Fig4Granularity reproduces the tuning argument for adaptivity: static
// zonemaps sweep their one knob (zone size) while adaptive, untuned,
// matches or beats the best static configuration.
func Fig4Granularity(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("static zone-size sweep vs adaptive, clustered, N=%d", cfg.Rows),
		Header: []string{"configuration", "zones", "metadata", "avg time", "rows skipped"},
	}
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	genSpec := workload.QuerySpec{
		Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 4,
	}
	for zs := 64; zs <= cfg.Rows; zs *= 4 {
		c := cfg
		c.StaticZoneRows = zs
		e := buildEngineFromValues(c, vals, engine.PolicyStatic)
		sr, err := runStream(e, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		md := e.Skipper("v").Metadata()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("static/%d", zs),
			fmt.Sprintf("%d", md.Zones),
			fmtBytes(md.Bytes),
			fmtNs(sr.avgNs(0, cfg.Queries)),
			fmt.Sprintf("%.1f%%", float64(sr.rowsSkipped)/(float64(cfg.Rows)*float64(cfg.Queries))*100),
		})
	}
	adp := buildEngineFromValues(cfg, vals, engine.PolicyAdaptive)
	sr, err := runStream(adp, workload.NewGen(genSpec), cfg.Queries)
	if err != nil {
		return nil, err
	}
	md := adp.Skipper("v").Metadata()
	t.Rows = append(t.Rows, []string{
		"adaptive",
		fmt.Sprintf("%d", md.Zones),
		fmtBytes(md.Bytes),
		fmtNs(sr.avgNs(cfg.Queries/2, cfg.Queries)),
		fmt.Sprintf("%.1f%%", float64(sr.rowsSkipped)/(float64(cfg.Rows)*float64(cfg.Queries))*100),
	})
	t.Notes = append(t.Notes, "adaptive row reports steady-state time; static rows are flat across the stream")
	return t, nil
}

// Fig5Drift reproduces the workload-drift experiment: a hot range
// workload whose hot region relocates halfway through. Adaptive metadata
// refined for the old region must re-converge on the new one.
func Fig5Drift(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	shift := cfg.Queries / 2
	t := &Table{
		ID:     "fig5",
		Title:  fmt.Sprintf("hot range relocates at query %d, semi-sorted, N=%d", shift, cfg.Rows),
		Header: []string{"window", "none", "static", "adaptive"},
	}
	windows := []struct {
		name     string
		from, to int
	}{
		{"cold start (first 4)", 0, 4},
		{"before drift (warm)", shift / 2, shift},
		{"right after drift (4)", shift, shift + 4},
		{"after re-convergence", cfg.Queries - shift/4, cfg.Queries},
	}
	// Semi-sorted data: value locality follows row position, so adaptive
	// refinement is local to the queried value region — when the hot
	// region jumps, the structure must re-adapt there. (On scattered-
	// cluster data refinement generalizes across the whole domain and
	// drift costs nothing; this experiment isolates the re-adaptation
	// path.)
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.SemiSorted, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	var srs []streamResult
	var splitsAt []int // cumulative adaptive splits per query index
	for _, policy := range policies {
		e := buildEngineFromValues(cfg, vals, policy)
		gen := workload.NewGen(workload.QuerySpec{
			Kind: workload.DriftingHot, Domain: int64(cfg.Rows), Selectivity: 0.005,
			HotFrac: 0.05, ShiftEvery: shift, Seed: cfg.Seed + 5,
		})
		if policy == engine.PolicyAdaptive {
			var sr streamResult
			splitsAt = make([]int, cfg.Queries)
			az := e.Skipper("v").(*adaptive.Zonemap)
			for i := 0; i < cfg.Queries; i++ {
				one, err := runStream(e, gen, 1)
				if err != nil {
					return nil, err
				}
				sr.perQueryNs = append(sr.perQueryNs, one.perQueryNs[0])
				splitsAt[i] = az.Stats().Splits
			}
			srs = append(srs, sr)
			continue
		}
		sr, err := runStream(e, gen, cfg.Queries)
		if err != nil {
			return nil, err
		}
		srs = append(srs, sr)
	}
	t.Header = append(t.Header, "adaptive splits in window")
	for _, w := range windows {
		row := []string{w.name}
		for _, sr := range srs {
			row = append(row, fmtNs(sr.medianNs(w.from, w.to)))
		}
		from, to := w.from, w.to-1
		if to >= len(splitsAt) {
			to = len(splitsAt) - 1
		}
		prev := 0
		if from > 0 {
			prev = splitsAt[from-1]
		}
		row = append(row, fmt.Sprintf("%d", splitsAt[to]-prev))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"re-adaptation is nearly free by design: splits piggyback on the scans the first post-drift queries must do anyway,",
		"so the latency spike is small and the split column shows the structural response directly")
	return t, nil
}

// Fig6Adversarial reproduces the robustness bound on arbitrary data:
// static zonemaps pay probe overhead forever with no skipping; adaptive
// arbitration disables itself and tracks the no-skipping baseline.
func Fig6Adversarial(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "fig6",
		Title:  fmt.Sprintf("uniform random data, N=%d, sel=1%%", cfg.Rows),
		Header: []string{"configuration", "avg time", "steady time", "overhead vs none", "zones probed/query", "arbitration"},
	}
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Uniform, Domain: int64(cfg.Rows), Seed: cfg.Seed,
	})
	genSpec := workload.QuerySpec{
		Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 6,
	}
	// Configurations: the baseline, a fine-grained static zonemap (where
	// probe overhead is largest), the default static, and adaptive.
	type conf struct {
		name     string
		policy   engine.Policy
		zoneRows int
	}
	confs := []conf{
		{"none", engine.PolicyNone, 0},
		{"static/64", engine.PolicyStatic, 64},
		{fmt.Sprintf("static/%d", cfg.StaticZoneRows), engine.PolicyStatic, cfg.StaticZoneRows},
		{"adaptive", engine.PolicyAdaptive, 0},
	}
	var noneSteady float64
	for _, c := range confs {
		runCfg := cfg
		if c.zoneRows > 0 {
			runCfg.StaticZoneRows = c.zoneRows
		}
		e := buildEngineFromValues(runCfg, vals, c.policy)
		sr, err := runStream(e, workload.NewGen(genSpec), cfg.Queries)
		if err != nil {
			return nil, err
		}
		steady := sr.avgNs(cfg.Queries/2, cfg.Queries)
		if c.policy == engine.PolicyNone {
			noneSteady = steady
		}
		arb := "-"
		if c.policy == engine.PolicyAdaptive {
			if z, ok := e.Skipper("v").(*adaptive.Zonemap); ok {
				st := z.Stats()
				arb = fmt.Sprintf("disabled=%d re-enabled=%d", st.Disables, st.Enables)
			}
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmtNs(sr.avgNs(0, cfg.Queries)),
			fmtNs(steady),
			fmt.Sprintf("%+.1f%%", (steady/noneSteady-1)*100),
			fmt.Sprintf("%.0f", float64(sr.zonesProbed)/float64(cfg.Queries)),
			arb,
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: static overhead grows as zones shrink; adaptive disables skipping and tracks none",
		"overhead magnitudes are compressed vs the paper: Go scans cost more per row than SIMD scans, making probes relatively cheaper (see DESIGN.md §3)")
	return t, nil
}

// Fig7Appends reproduces behavior under growth: the table doubles through
// periodic appends while the query stream runs. Appended rows land in an
// unindexed tail that folds into zones, so correctness and skipping both
// persist.
func Fig7Appends(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:     "fig7",
		Title:  fmt.Sprintf("append stream: N=%d growing to %d, sorted-by-ingest data", cfg.Rows/2, cfg.Rows),
		Header: []string{"phase", "none", "static", "adaptive", "adaptive zones"},
	}
	n0 := cfg.Rows / 2
	batch := cfg.Rows / 2 / 8 // 8 append batches
	phases := []struct {
		name     string
		from, to int
	}{
		{"first quarter", 0, cfg.Queries / 4},
		{"mid (appends ongoing)", cfg.Queries / 4, 3 * cfg.Queries / 4},
		{"final quarter", 3 * cfg.Queries / 4, cfg.Queries},
	}
	var srs []streamResult
	var adpZones int
	for _, policy := range policies {
		vals := workload.Generate(workload.DataSpec{
			N: n0, Dist: workload.Sorted, Domain: int64(cfg.Rows), Seed: cfg.Seed,
		})
		e := buildEngineFromValues(cfg, vals, policy)
		gen := workload.NewGen(workload.QuerySpec{
			Kind: workload.UniformRange, Domain: int64(cfg.Rows), Selectivity: 0.01, Seed: cfg.Seed + 7,
		})
		var sr streamResult
		appended := 0
		next := int64(n0)
		for i := 0; i < cfg.Queries; i++ {
			// Interleave appends across the middle half of the stream.
			if i >= cfg.Queries/4 && i < 3*cfg.Queries/4 && appended < 8 &&
				(i-cfg.Queries/4)%(cfg.Queries/2/8) == 0 {
				for k := 0; k < batch; k++ {
					// Appends are value-clustered (timestamp-like ingest),
					// so folded tail zones have tight bounds.
					if err := e.AppendRow(storage.IntValue(next)); err != nil {
						return nil, err
					}
					next++
				}
				appended++
			}
			one, err := runStream(e, gen, 1)
			if err != nil {
				return nil, err
			}
			sr.perQueryNs = append(sr.perQueryNs, one.perQueryNs[0])
		}
		srs = append(srs, sr)
		if policy == engine.PolicyAdaptive {
			adpZones = e.Skipper("v").Metadata().Zones
		}
	}
	for _, ph := range phases {
		row := []string{ph.name}
		for _, sr := range srs {
			row = append(row, fmtNs(sr.medianNs(ph.from, ph.to)))
		}
		row = append(row, fmt.Sprintf("%d", adpZones))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "appended rows enter an unindexed tail folded into zones at threshold size")
	return t, nil
}
