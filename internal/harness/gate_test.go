package harness

import (
	"strings"
	"testing"
)

// gateBase is a plausible baseline the comparison tests perturb.
func gateBase() GateStats {
	return GateStats{
		Rows: 1 << 18, Queries: 128, Seed: 42, StaticZone: 4096,
		P50NS: 100_000, P95NS: 400_000, ThroughputQPS: 8000, SkipRatio: 0.85,
	}
}

func TestCompareGate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*GateStats)
		tol     float64
		violate []string // substrings expected in violations, in order; empty = pass
	}{
		{name: "identical passes", mutate: func(*GateStats) {}, tol: 0.15},
		{name: "p95 at tolerance edge passes",
			mutate: func(g *GateStats) { g.P95NS *= 1.15 }, tol: 0.15},
		{name: "p95 beyond tolerance fails",
			mutate:  func(g *GateStats) { g.P95NS *= 1.30 },
			tol:     0.15,
			violate: []string{"p95 latency regressed"}},
		{name: "throughput drop fails",
			mutate:  func(g *GateStats) { g.ThroughputQPS *= 0.5 },
			tol:     0.15,
			violate: []string{"throughput regressed"}},
		{name: "skip ratio drop fails",
			mutate:  func(g *GateStats) { g.SkipRatio = 0.2 },
			tol:     0.15,
			violate: []string{"skip ratio regressed"}},
		{name: "improvements never violate",
			mutate: func(g *GateStats) {
				g.P50NS /= 2
				g.P95NS /= 2
				g.ThroughputQPS *= 2
				g.SkipRatio = 0.99
			}, tol: 0.15},
		{name: "everything regressed reports each metric",
			mutate: func(g *GateStats) {
				g.P95NS *= 2
				g.ThroughputQPS *= 0.5
				g.SkipRatio = 0.1
			},
			tol:     0.15,
			violate: []string{"p95 latency regressed", "throughput regressed", "skip ratio regressed"}},
		{name: "tighter tolerance catches smaller drift",
			mutate:  func(g *GateStats) { g.P95NS *= 1.10 },
			tol:     0.05,
			violate: []string{"p95 latency regressed"}},
		{name: "mismatched config refuses to compare",
			mutate:  func(g *GateStats) { g.Rows = 1 << 10 },
			tol:     0.15,
			violate: []string{"config mismatch"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			base, cur := gateBase(), gateBase()
			tt.mutate(&cur)
			got, skip := CompareGate(base, cur, tt.tol)
			if skip != "" {
				t.Fatalf("CompareGate skipped a full-size run: %q", skip)
			}
			if len(got) != len(tt.violate) {
				t.Fatalf("CompareGate returned %d violations %q, want %d", len(got), got, len(tt.violate))
			}
			for i, want := range tt.violate {
				if !strings.Contains(got[i], want) {
					t.Errorf("violation %d = %q, want substring %q", i, got[i], want)
				}
			}
		})
	}
}

// TestCompareGateInsufficientSamples: short runs must produce an
// explicit skip, never a verdict. The old behavior was worse than a
// false failure — a 4-query run yielded zero/NaN quantiles that slipped
// through the `baseline > 0` guards and the gate "passed".
func TestCompareGateInsufficientSamples(t *testing.T) {
	short := func() GateStats {
		g := gateBase()
		g.Queries = 4
		g.Samples = 2
		g.P95NS = 0 // degenerate quantile from a 2-sample window
		return g
	}
	t.Run("short current skips even with regressed metrics", func(t *testing.T) {
		base := gateBase()
		base.Samples = 64
		cur := short()
		cur.Queries = base.Queries // same config, too few samples
		cur.ThroughputQPS = 1      // would be a flagrant regression if judged
		v, skip := CompareGate(base, cur, 0.15)
		if skip == "" || !strings.Contains(skip, "insufficient steady-state samples") {
			t.Fatalf("skip = %q, want insufficient-samples marker", skip)
		}
		if len(v) != 0 {
			t.Fatalf("skipped comparison still produced violations: %q", v)
		}
	})
	t.Run("short baseline skips", func(t *testing.T) {
		base, cur := short(), short()
		cur.P95NS = 400_000
		if _, skip := CompareGate(base, cur, 0.15); skip == "" {
			t.Fatal("short baseline was judged, want skip")
		}
	})
	t.Run("legacy stats without Samples derive from Queries", func(t *testing.T) {
		base, cur := gateBase(), gateBase() // Samples zero, Queries 128
		v, skip := CompareGate(base, cur, 0.15)
		if skip != "" || len(v) != 0 {
			t.Fatalf("legacy full-size run should compare cleanly: skip=%q v=%q", skip, v)
		}
		base.Queries, cur.Queries = 6, 6 // legacy AND short
		if _, skip := CompareGate(base, cur, 0.15); skip == "" {
			t.Fatal("legacy short run was judged, want skip")
		}
	})
}

func TestQuantileNs(t *testing.T) {
	ns := []int64{50, 10, 40, 20, 30} // unsorted on purpose; must not mutate
	if got := quantileNs(ns, 0.50); got != 30 {
		t.Errorf("p50 = %v, want 30", got)
	}
	if got := quantileNs(ns, 0.95); got != 50 {
		t.Errorf("p95 = %v, want 50 (nearest rank)", got)
	}
	if ns[0] != 50 {
		t.Error("quantileNs mutated its input")
	}
	if got := quantileNs(nil, 0.5); got != 0 {
		t.Errorf("empty input: got %v, want 0", got)
	}
}

// TestGateRunSmoke runs a tiny gate stream end to end: the stats must be
// internally consistent and deterministic across runs of the same seed
// (timings aside — only the seed-deterministic skip ratio is compared).
func TestGateRunSmoke(t *testing.T) {
	cfg := Config{Rows: 1 << 14, Queries: 32, Seed: 7}
	g1, err := GateRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Rows != 1<<14 || g1.Queries != 32 || g1.Seed != 7 {
		t.Errorf("config not echoed: %+v", g1)
	}
	if g1.P95NS < g1.P50NS {
		t.Errorf("p95 (%v) < p50 (%v)", g1.P95NS, g1.P50NS)
	}
	if g1.ThroughputQPS <= 0 {
		t.Errorf("throughput = %v, want > 0", g1.ThroughputQPS)
	}
	if g1.SkipRatio <= 0 || g1.SkipRatio > 1 {
		t.Errorf("skip ratio = %v, want (0,1]", g1.SkipRatio)
	}
	g2, err := GateRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.SkipRatio != g2.SkipRatio {
		t.Errorf("skip ratio not deterministic: %v vs %v", g1.SkipRatio, g2.SkipRatio)
	}
	if g1.Samples != 16 {
		t.Errorf("steady samples = %d, want 16 (half of 32 queries)", g1.Samples)
	}
	if v, skip := CompareGate(g1, g2, 10); skip != "" || len(v) != 0 {
		// Enormous tolerance: only a config echo bug could trip this.
		t.Errorf("self-comparison: skip=%q violations=%q", skip, v)
	}
}
