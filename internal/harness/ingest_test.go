package harness

import "testing"

// TestRunIngestSmoke runs a small ingest measurement end to end: every
// leg must complete, produce positive throughput, and the durable leg
// must actually amortize fsyncs (rows per sync well above the batch
// size — otherwise group commit is not grouping).
func TestRunIngestSmoke(t *testing.T) {
	st, err := RunIngest(IngestConfig{Rows: 1 << 14, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 1<<14 || st.Batch != 64 || st.Writers != 4 {
		t.Errorf("config not echoed: %+v", st)
	}
	for name, v := range map[string]float64{
		"mem":        st.MemRowsPerSec,
		"wal":        st.WALRowsPerSec,
		"wal-acked":  st.WALAckedRowsPerSec,
		"wal-nosync": st.WALNoSyncRowsPerSec,
	} {
		if v <= 0 {
			t.Errorf("%s throughput = %v, want > 0", name, v)
		}
	}
	if st.Syncs <= 0 {
		t.Fatalf("durable leg recorded no fsyncs: %+v", st)
	}
	if st.RowsPerSync < float64(st.Batch) {
		t.Errorf("rows/sync %.0f below batch size %d: group commit is not grouping", st.RowsPerSync, st.Batch)
	}
	if st.DurableSlowdown <= 0 {
		t.Errorf("durable slowdown = %v, want > 0", st.DurableSlowdown)
	}
}
