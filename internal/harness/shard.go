package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"adskip/internal/engine"
	"adskip/internal/shard"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

// querier is the surface Ext3Sharded measures: a single engine or a
// shard manager, both of which execute engine.Query values.
type querier interface {
	Query(q engine.Query) (*engine.Result, error)
}

// Ext3Sharded is an extension beyond the paper: sharded scatter-gather
// execution with shard-level pruning. Each shard owns an adaptive
// zonemap over its key range, and the manager prunes whole shards by
// key bounds before any zone is probed — data skipping one level up.
// The experiment runs a hot-range COUNT(*) stream (skew concentrates
// queries on few shards, so shard pruning bites) and a concurrent
// batched-append stream (per-shard append locks let writers
// parallelize) across shard counts.
func Ext3Sharded(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID: "ext3",
		Title: fmt.Sprintf("sharded scatter-gather with shard pruning, N=%d, hot-range 1%% (GOMAXPROCS=%d)",
			cfg.Rows, runtime.GOMAXPROCS(0)),
		Header: []string{"shards", "query median", "speedup", "shards scanned/query",
			"shards pruned/query", "append rows/s (4 writers)", "append speedup"},
	}
	domain := int64(cfg.Rows)
	vals := workload.Generate(workload.DataSpec{
		N: cfg.Rows, Dist: workload.Clustered, Domain: domain,
		Clusters: 4096, Seed: cfg.Seed,
	})
	genSpec := workload.QuerySpec{
		Kind: workload.HotRange, Domain: domain, Selectivity: 0.01,
		HotFrac: 0.9, Seed: cfg.Seed + 40,
	}
	eo := engine.Options{
		Policy: engine.PolicyAdaptive, Adaptive: cfg.adaptiveConfig(),
		Metrics: cfg.Metrics, Traces: cfg.Traces,
	}
	build := func(shards int) (querier, error) {
		tbl := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
		col, _ := tbl.Column("v")
		for _, x := range vals {
			if err := col.AppendInt(x); err != nil {
				return nil, err
			}
		}
		if shards <= 1 {
			e := engine.New(tbl, eo)
			return e, e.EnableSkipping("v")
		}
		m, err := shard.NewFromTable(tbl, shard.Options{
			Shards: shards, Key: "v", Mode: shard.ModeRange, Engine: eo,
		})
		if err != nil {
			return nil, err
		}
		return m, m.EnableSkipping("v")
	}

	var base, baseAppend float64
	for _, shards := range []int{1, 2, 4, 8} {
		q, err := build(shards)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGen(genSpec)
		var sr streamResult
		var scanned, pruned int64
		for i := 0; i < cfg.Queries; i++ {
			r := gen.Next()
			start := time.Now()
			res, err := q.Query(countQuery(r))
			if err != nil {
				return nil, err
			}
			sr.perQueryNs = append(sr.perQueryNs, time.Since(start).Nanoseconds())
			scanned += int64(res.Stats.ShardsScanned)
			pruned += int64(res.Stats.ShardsPruned)
		}
		if shards <= 1 {
			// The unsharded engine reports no shard stats; one "shard" is
			// always scanned.
			scanned, pruned = int64(cfg.Queries), 0
		}
		med := sr.medianNs(cfg.Queries/2, cfg.Queries)
		rps, err := appendThroughput(shards, eo, cfg)
		if err != nil {
			return nil, err
		}
		if shards <= 1 {
			base, baseAppend = med, rps
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmtNs(med),
			fmt.Sprintf("%.2fx", base/med),
			fmt.Sprintf("%.2f", float64(scanned)/float64(cfg.Queries)),
			fmt.Sprintf("%.2f", float64(pruned)/float64(cfg.Queries)),
			fmt.Sprintf("%.0f", rps),
			fmt.Sprintf("%.2fx", rps/baseAppend),
		})
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: shard pruning is zone pruning one level up — per-shard key bounds eliminate whole shards before any zone is probed",
		"shards pruned/query > 0 demonstrates shard pruning is active on the skewed stream",
		"appends route by shard key and take per-shard locks, so concurrent writers parallelize; on a single-core host append scaling is necessarily flat")
	return t, nil
}

// appendThroughput measures batched concurrent ingest: 4 writers append
// disjoint batches as fast as they can; returns rows per second.
func appendThroughput(shards int, eo engine.Options, cfg Config) (float64, error) {
	const writers = 4
	rows := cfg.Rows / 4
	if rows > 1<<18 {
		rows = 1 << 18
	}
	perWriter := rows / writers
	tbl := table.MustNew("a", table.Schema{{Name: "v", Type: storage.Int64}})
	var dst interface {
		AppendRows(rows [][]storage.Value) error
	}
	if shards <= 1 {
		dst = engine.New(tbl, eo)
	} else {
		m, err := shard.NewFromTable(tbl, shard.Options{
			Shards: shards, Key: "v", Mode: shard.ModeRange, Engine: eo,
		})
		if err != nil {
			return 0, err
		}
		dst = m
	}
	const batch = 8192
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([][]storage.Value, 0, batch)
			for i := 0; i < perWriter; i++ {
				// Writer-interleaved keys spread every batch across shards.
				buf = append(buf, []storage.Value{storage.IntValue(int64(w + i*writers))})
				if len(buf) == batch || i == perWriter-1 {
					if err := dst.AppendRows(buf); err != nil {
						errs[w] = err
						return
					}
					buf = buf[:0]
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(writers*perWriter) / elapsed, nil
}
