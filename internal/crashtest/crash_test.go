// Package crashtest is the kill-9 torture suite for durable ingest: it
// builds the real adskip-server binary, runs it as a child with a WAL
// directory, drives concurrent insert + query load at it, SIGKILLs it at
// injected points in the commit pipeline (or from outside at a random
// moment), restarts it on the same WAL, and asserts the recovered row
// count is exact: every acknowledged row present, no row invented.
//
// The matrix is deterministic — crash points and triggers derive from a
// fixed seed — so a failure reproduces. The default matrix covers every
// injected crash point once; ADSKIP_CRASH_FULL=1 widens it to several
// triggers per point (the crash-torture CI job sets it).
package crashtest

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"adskip/internal/client"
)

const baseRows = 8192

var (
	buildOnce sync.Once
	serverBin string
	buildErr  error
)

// buildServer compiles cmd/adskip-server once per test binary run.
func buildServer(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "adskip-crashtest-")
		if err != nil {
			buildErr = err
			return
		}
		serverBin = filepath.Join(dir, "adskip-server")
		cmd := exec.Command("go", "build", "-o", serverBin, "adskip/cmd/adskip-server")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build adskip-server: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return serverBin
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			return wd
		}
	}
}

// child is one adskip-server process under harness control.
type child struct {
	cmd       *exec.Cmd
	addr      string
	recovered string // the "wal recovered: ..." line, if printed
	stderr    *bytes.Buffer

	ready chan struct{} // closed when the server prints "ready"
	dead  chan struct{} // closed when the process exits
	drain []string      // lines printed after ready (drained etc.)
	mu    sync.Mutex
}

// startChild launches the server on a free port with the given WAL dir
// and extra flags, and parses its stdout for the address, the recovery
// line, and readiness.
func startChild(t *testing.T, walDir string, extra ...string) *child {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-rows", fmt.Sprint(baseRows),
		"-dist", "clustered",
		"-seed", "42",
		"-wal-dir", walDir,
	}
	args = append(args, extra...)
	c := &child{
		cmd:    exec.Command(buildServer(t), args...),
		stderr: &bytes.Buffer{},
		ready:  make(chan struct{}),
		dead:   make(chan struct{}),
	}
	c.cmd.Stderr = c.stderr
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		readyClosed := false
		for sc.Scan() {
			line := sc.Text()
			c.mu.Lock()
			switch {
			case strings.HasPrefix(line, "listening on "):
				c.addr = strings.TrimPrefix(line, "listening on ")
			case strings.HasPrefix(line, "wal recovered:"):
				c.recovered = line
			case line == "ready":
				if !readyClosed {
					close(c.ready)
					readyClosed = true
				}
			default:
				if readyClosed {
					c.drain = append(c.drain, line)
				}
			}
			c.mu.Unlock()
		}
		c.cmd.Wait()
		close(c.dead)
		if !readyClosed {
			// Unblock waiters; they check liveness after the wait.
		}
	}()
	t.Cleanup(func() {
		select {
		case <-c.dead:
		default:
			c.cmd.Process.Kill()
			<-c.dead
		}
	})
	return c
}

// waitReady blocks until the child prints "ready" or dies.
func (c *child) waitReady(t *testing.T, timeout time.Duration) bool {
	t.Helper()
	select {
	case <-c.ready:
		return true
	case <-c.dead:
		return false
	case <-time.After(timeout):
		t.Fatalf("server not ready after %v\nstderr: %s", timeout, c.stderr.String())
		return false
	}
}

func (c *child) address() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

func (c *child) recoveryLine() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovered
}

// terminate sends SIGTERM and waits for a clean drain.
func (c *child) terminate(t *testing.T) {
	t.Helper()
	c.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-c.dead:
	case <-time.After(20 * time.Second):
		t.Fatalf("server did not drain after SIGTERM\nstderr: %s", c.stderr.String())
	}
	if !c.cmd.ProcessState.Success() {
		t.Fatalf("server exited %v on SIGTERM\nstderr: %s", c.cmd.ProcessState, c.stderr.String())
	}
}

// loadResult is what the phase-A workload learned before the crash.
type loadResult struct {
	sentRows  int64 // rows in insert requests issued (outcome known or not)
	ackedRows int64 // rows positively acknowledged by the server
	queries   int64
}

// driveUntilDead runs insert + Zipf query workers against the child until
// the process dies (the injected crash) or the deadline passes (then the
// harness SIGKILLs it — still a kill-9, just externally timed).
func driveUntilDead(t *testing.T, c *child, seed int64, deadline time.Duration) loadResult {
	t.Helper()
	addr := c.address()
	const workers = 4
	const batch = 8
	var sent, acked, queries atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			zipf := rand.NewZipf(rng, 1.2, 1, 63)
			var cl *client.Client
			defer func() {
				if cl != nil {
					cl.Close()
				}
			}()
			seq := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if cl == nil {
					var err error
					cl, err = client.Dial(addr, client.Options{
						Timeout: 5 * time.Second,
						Retry:   client.RetryPolicy{Max: 3, Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond},
					})
					if err != nil {
						select {
						case <-c.dead:
							return
						case <-time.After(10 * time.Millisecond):
						}
						continue
					}
				}
				// Mostly inserts, with a Zipf-skewed COUNT query mixed in so
				// the crash lands under genuine mixed load.
				if rng.Intn(4) == 0 {
					lo := int64(zipf.Uint64()) * 100
					if _, err := cl.Query(fmt.Sprintf(
						"SELECT COUNT(*) FROM data WHERE v BETWEEN %d AND %d", lo, lo+99)); err != nil {
						if !isServerErr(err) {
							cl.Close()
							cl = nil
						}
					} else {
						queries.Add(1)
					}
					continue
				}
				rows := make([][]any, batch)
				for i := range rows {
					seq++
					rows[i] = []any{rng.Int63n(baseRows), int64(w)<<40 | seq, rng.Float64() * 1000}
				}
				sent.Add(batch)
				n, err := cl.Insert("data", rows)
				if err != nil {
					if !isServerErr(err) {
						cl.Close()
						cl = nil
					}
					continue
				}
				acked.Add(int64(n))
			}
		}(w)
	}
	select {
	case <-c.dead:
	case <-time.After(deadline):
		// The injected point never fired (or load was too light): kill from
		// outside. Rows in flight at this instant have unknown outcomes,
		// which the [acked, sent] bound already tolerates.
		c.cmd.Process.Kill()
		<-c.dead
	}
	close(stop)
	wg.Wait()
	return loadResult{sentRows: sent.Load(), ackedRows: acked.Load(), queries: queries.Load()}
}

func isServerErr(err error) bool {
	var se *client.ServerError
	return errors.As(err, &se)
}

// countRows asks the recovered server for the exact table size.
func countRows(t *testing.T, addr string) int64 {
	t.Helper()
	cl, err := client.Dial(addr, client.Options{
		Timeout: 10 * time.Second,
		Retry:   client.RetryPolicy{Max: 20, Base: 5 * time.Millisecond, Cap: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query("SELECT COUNT(*) FROM data")
	if err != nil {
		t.Fatal(err)
	}
	return int64(res.Count)
}

// crashCase is one matrix entry: SIGKILL at the trigger-th firing of an
// injected WAL crash point ("" = external kill after a random delay).
type crashCase struct {
	point   string
	trigger int
}

func matrix() []crashCase {
	// Fixed seed so the "randomized" triggers are reproducible run to run.
	rng := rand.New(rand.NewSource(7))
	points := []string{
		"wal-crash-before-write",
		"wal-crash-torn-write",
		"wal-crash-after-write",
		"wal-crash-after-sync",
		"wal-crash-after-apply",
	}
	perPoint := 1
	if os.Getenv("ADSKIP_CRASH_FULL") != "" {
		perPoint = 3
	}
	var cases []crashCase
	for _, p := range points {
		for i := 0; i < perPoint; i++ {
			cases = append(cases, crashCase{point: p, trigger: 2 + rng.Intn(40)})
		}
	}
	cases = append(cases, crashCase{point: "", trigger: 0}) // external kill -9
	return cases
}

// TestCrashTorture is the acceptance suite: for each matrix entry it
// crashes a loaded server, restarts it on the same WAL, and checks
//
//	base + acked <= COUNT(*) <= base + sent
//
// (every acknowledged row recovered; nothing invented beyond rows whose
// insert was in flight at the kill), that replay reported no corruption
// beyond the expected torn tail, that skipping metadata verifies clean
// (the server refuses to start otherwise), and that a third cold start
// is deterministic: same count, clean tail.
func TestCrashTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("crash torture spawns child servers; skipped in -short")
	}
	buildServer(t)
	for _, tc := range matrix() {
		name := tc.point
		if name == "" {
			name = "external-kill"
		} else {
			name = fmt.Sprintf("%s-t%d", tc.point, tc.trigger)
		}
		t.Run(name, func(t *testing.T) {
			walDir := filepath.Join(t.TempDir(), "wal")

			// Phase A: load until the crash.
			var extra []string
			deadline := 15 * time.Second
			if tc.point != "" {
				extra = []string{"-fault-crash", fmt.Sprintf("%s:%d", tc.point, tc.trigger)}
			} else {
				deadline = time.Duration(500+rand.New(rand.NewSource(11)).Intn(1000)) * time.Millisecond
			}
			c1 := startChild(t, walDir, extra...)
			if !c1.waitReady(t, 60*time.Second) {
				t.Fatalf("server died before ready\nstderr: %s", c1.stderr.String())
			}
			load := driveUntilDead(t, c1, 1000+int64(tc.trigger), deadline)
			if load.sentRows == 0 {
				t.Fatal("workload issued no inserts before the crash")
			}

			// Phase B: restart on the same WAL; recovery must land in
			// [acked, sent].
			c2 := startChild(t, walDir)
			if !c2.waitReady(t, 60*time.Second) {
				t.Fatalf("server died during recovery\nstderr: %s", c2.stderr.String())
			}
			rec := c2.recoveryLine()
			if rec == "" {
				t.Fatal("no 'wal recovered:' line on restart")
			}
			if tc.point == "wal-crash-torn-write" && !strings.Contains(rec, "torn=true") {
				t.Fatalf("torn-write crash did not leave a torn tail: %s", rec)
			}
			count := countRows(t, c2.address())
			lo, hi := baseRows+load.ackedRows, baseRows+load.sentRows
			if count < lo || count > hi {
				t.Fatalf("recovered %d rows, want in [%d, %d] (acked %d, sent %d)\nrecovery: %s",
					count, lo, hi, load.ackedRows, load.sentRows, rec)
			}
			t.Logf("recovered %d rows in [%d, %d]; %s", count, lo, hi, rec)
			c2.terminate(t)

			// Phase C: a third start is deterministic — same count, clean
			// tail (the torn record, if any, was truncated in phase B).
			c3 := startChild(t, walDir)
			if !c3.waitReady(t, 60*time.Second) {
				t.Fatalf("server died on third start\nstderr: %s", c3.stderr.String())
			}
			rec3 := c3.recoveryLine()
			if !strings.Contains(rec3, "torn=false") {
				t.Fatalf("third start saw a torn tail after a clean shutdown: %s", rec3)
			}
			if again := countRows(t, c3.address()); again != count {
				t.Fatalf("row count drifted across restarts: %d then %d", count, again)
			}
			c3.terminate(t)
		})
	}
}
