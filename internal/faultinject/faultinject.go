// Package faultinject provides deterministic, seed-driven fault injection
// for chaos testing the engine's resilience layer. Production code calls
// the package-level hooks (Fire, Sleep, Corrupt) at named injection
// points; by default no injector is active and every hook collapses to a
// single atomic pointer load returning immediately, so the points cost
// nothing in normal operation.
//
// Chaos tests activate an Injector with per-point rules:
//
//	defer faultinject.Activate(faultinject.New(42).
//		Set(faultinject.WorkerPanic, faultinject.Rule{After: 3, Limit: 1}),
//	)()
//
// Rules are counter- or probability-based; both are deterministic for a
// given seed and trigger sequence, so a failing chaos run reproduces.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site.
type Point uint8

// Injection points wired into the engine.
const (
	// WorkerPanic makes a parallel scan worker panic mid-scan. The
	// engine must recover it into an error, quarantine the skipper, and
	// still answer the query correctly.
	WorkerPanic Point = iota
	// ScanDelay sleeps at a scan checkpoint, simulating a slow scan so
	// deadline and cancellation handling can be tested deterministically.
	ScanDelay
	// CodecCorrupt flips one byte of a snapshot payload as it is
	// written, so loads see a checksum mismatch and must stay
	// failure-atomic.
	CodecCorrupt
	// InvariantFlip corrupts an adaptive zonemap's zone layout during
	// feedback, violating the tiling invariant. The next probe must
	// detect it, decline soundly, and let the engine quarantine.
	InvariantFlip
	// WALSyncErr makes a WAL fsync report an injected I/O error. The log
	// must fail the waiting commits and go sticky-failed, never ack.
	WALSyncErr
	// CrashWALBeforeWrite SIGKILLs the process before a group-commit
	// batch reaches the segment file: nothing of the batch survives.
	CrashWALBeforeWrite
	// CrashWALTornWrite writes only a prefix of the batch, syncs it, then
	// SIGKILLs: recovery must truncate the torn tail.
	CrashWALTornWrite
	// CrashWALAfterWrite SIGKILLs after the batch is written but before
	// fsync: the bytes may or may not survive; either way no ack was sent.
	CrashWALAfterWrite
	// CrashWALAfterSync SIGKILLs after fsync but before waiters are
	// notified: the records are durable yet unacknowledged.
	CrashWALAfterSync
	// CrashWALAfterApply SIGKILLs after a logged mutation was applied to
	// the in-memory table but (typically) before its fsync completed.
	CrashWALAfterApply
	numPoints
)

// String names the point.
func (p Point) String() string {
	switch p {
	case WorkerPanic:
		return "worker-panic"
	case ScanDelay:
		return "scan-delay"
	case CodecCorrupt:
		return "codec-corrupt"
	case InvariantFlip:
		return "invariant-flip"
	case WALSyncErr:
		return "wal-sync-err"
	case CrashWALBeforeWrite:
		return "wal-crash-before-write"
	case CrashWALTornWrite:
		return "wal-crash-torn-write"
	case CrashWALAfterWrite:
		return "wal-crash-after-write"
	case CrashWALAfterSync:
		return "wal-crash-after-sync"
	case CrashWALAfterApply:
		return "wal-crash-after-apply"
	default:
		return fmt.Sprintf("Point(%d)", uint8(p))
	}
}

// ParsePoint resolves a point by its String name, for CLI flags like
// adskip-server's -fault-crash.
func ParsePoint(name string) (Point, error) {
	for p := Point(0); p < numPoints; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown point %q", name)
}

// Points lists every point name, for CLI usage strings.
func Points() []string {
	out := make([]string, numPoints)
	for p := Point(0); p < numPoints; p++ {
		out[p] = p.String()
	}
	return out
}

// Rule decides when a point fires. The zero Rule fires on every trigger.
type Rule struct {
	// After skips the first After triggers.
	After int
	// Every fires on every Every-th trigger past After (default 1).
	Every int
	// Limit stops firing after Limit fires (0 = unlimited).
	Limit int
	// Prob, when > 0, replaces the Every schedule with a seeded
	// Bernoulli draw per trigger (still deterministic per seed).
	Prob float64
	// Delay is how long ScanDelay sleeps when it fires.
	Delay time.Duration
}

// ruleState tracks one point's trigger history.
type ruleState struct {
	rule     Rule
	triggers int
	fires    int
}

// Injector is a configured set of injection rules. Points without a rule
// never fire.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules [numPoints]*ruleState
}

// New returns an injector whose probability draws derive from seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Set installs a rule for point p, returning the injector for chaining.
func (in *Injector) Set(p Point, r Rule) *Injector {
	if r.Every <= 0 {
		r.Every = 1
	}
	in.mu.Lock()
	in.rules[p] = &ruleState{rule: r}
	in.mu.Unlock()
	return in
}

// fire decides whether point p fires on this trigger.
func (in *Injector) fire(p Point) (bool, Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.rules[p]
	if st == nil {
		return false, Rule{}
	}
	st.triggers++
	if st.rule.Limit > 0 && st.fires >= st.rule.Limit {
		return false, st.rule
	}
	if st.triggers <= st.rule.After {
		return false, st.rule
	}
	if st.rule.Prob > 0 {
		if in.rng.Float64() >= st.rule.Prob {
			return false, st.rule
		}
	} else if (st.triggers-st.rule.After-1)%st.rule.Every != 0 {
		return false, st.rule
	}
	st.fires++
	return true, st.rule
}

// Fires reports how many times point p has fired on this injector.
func (in *Injector) Fires(p Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.rules[p]; st != nil {
		return st.fires
	}
	return 0
}

// active is the globally installed injector; nil means all hooks no-op.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector and returns a restore
// function (usually deferred) that removes it. Chaos tests that share a
// process must not overlap activations.
func Activate(in *Injector) func() {
	active.Store(in)
	return func() { active.CompareAndSwap(in, nil) }
}

// Deactivate removes any installed injector.
func Deactivate() { active.Store(nil) }

// Enabled reports whether any injector is active. Hot paths may use it to
// skip trigger bookkeeping entirely.
func Enabled() bool { return active.Load() != nil }

// Fire reports whether point p should inject a fault now. It is safe for
// concurrent use and costs one atomic load when no injector is active.
func Fire(p Point) bool {
	in := active.Load()
	if in == nil {
		return false
	}
	fired, _ := in.fire(p)
	return fired
}

// Sleep blocks for the point's configured delay when p fires (ScanDelay).
func Sleep(p Point) {
	in := active.Load()
	if in == nil {
		return
	}
	if fired, rule := in.fire(p); fired && rule.Delay > 0 {
		time.Sleep(rule.Delay)
	}
}

// Corrupt flips one deterministic byte of b when p fires, returning
// whether it did. The flipped offset depends only on the payload length,
// so a given corruption reproduces.
func Corrupt(p Point, b []byte) bool {
	in := active.Load()
	if in == nil || len(b) == 0 {
		return false
	}
	fired, _ := in.fire(p)
	if !fired {
		return false
	}
	b[len(b)/2] ^= 0x40
	return true
}

// PanicValue is the value injected worker panics carry, so recovery paths
// can assert provenance in tests.
const PanicValue = "faultinject: injected panic"

// ErrInjected is the error injected I/O failures (WALSyncErr) surface, so
// tests can assert provenance with errors.Is.
var ErrInjected = errors.New("faultinject: injected error")

// Crash SIGKILLs the process when point p fires — the hard kill the
// crash-torture suite drives: no deferred functions, no flushes, exactly
// what a kernel OOM kill or power cut looks like to the WAL. It returns
// normally when the point does not fire.
func Crash(p Point) {
	in := active.Load()
	if in == nil {
		return
	}
	if fired, _ := in.fire(p); fired {
		Kill()
	}
}

// Kill SIGKILLs the current process immediately. Split from Crash so
// sites that need work between the fire decision and the kill (torn
// writes) can sequence it themselves.
func Kill() {
	proc, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = proc.Kill() // SIGKILL on unix: not catchable, not graceful
	}
	select {} // never resume past a kill, even if signal delivery lags
}
