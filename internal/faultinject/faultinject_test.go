package faultinject

import (
	"bytes"
	"testing"
	"time"
)

func TestDisabledByDefault(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("injector active with none installed")
	}
	if Fire(WorkerPanic) || Fire(InvariantFlip) {
		t.Fatal("fired with no injector")
	}
	b := []byte{1, 2, 3}
	if Corrupt(CodecCorrupt, b) || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatal("corrupted with no injector")
	}
}

func TestCounterSchedule(t *testing.T) {
	in := New(1).Set(WorkerPanic, Rule{After: 2, Every: 3, Limit: 2})
	restore := Activate(in)
	defer restore()
	var fired []bool
	for i := 0; i < 12; i++ {
		fired = append(fired, Fire(WorkerPanic))
	}
	// Triggers 1,2 skipped (After); then every 3rd: 3, 6 fire; Limit 2
	// stops 9 and beyond.
	want := []bool{false, false, true, false, false, true, false, false, false, false, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("trigger %d: fired=%v want %v (%v)", i+1, fired[i], want[i], fired)
		}
	}
	if in.Fires(WorkerPanic) != 2 {
		t.Fatalf("fires=%d want 2", in.Fires(WorkerPanic))
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed).Set(ScanDelay, Rule{Prob: 0.5})
		restore := Activate(in)
		defer restore()
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Fire(ScanDelay))
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at trigger %d", i)
		}
	}
	anyFired, anySkipped := false, false
	for _, f := range a {
		anyFired = anyFired || f
		anySkipped = anySkipped || !f
	}
	if !anyFired || !anySkipped {
		t.Fatalf("p=0.5 over 64 draws should mix fires and skips: %v", a)
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	restore := Activate(New(3).Set(CodecCorrupt, Rule{Limit: 1}))
	defer restore()
	orig := []byte("0123456789abcdef")
	b := append([]byte(nil), orig...)
	if !Corrupt(CodecCorrupt, b) {
		t.Fatal("expected corruption on first trigger")
	}
	diff := 0
	for i := range b {
		if b[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt changed %d bytes, want 1", diff)
	}
	b2 := append([]byte(nil), orig...)
	if Corrupt(CodecCorrupt, b2) {
		t.Fatal("limit 1 exceeded")
	}
}

func TestSleepHonorsDelay(t *testing.T) {
	restore := Activate(New(1).Set(ScanDelay, Rule{Delay: 10 * time.Millisecond, Limit: 1}))
	defer restore()
	start := time.Now()
	Sleep(ScanDelay)
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("sleep returned after %v, want >= 10ms", d)
	}
	start = time.Now()
	Sleep(ScanDelay) // limit reached: no delay
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("limited sleep still slept %v", d)
	}
}

func TestActivateRestoreIsScoped(t *testing.T) {
	in := New(1).Set(WorkerPanic, Rule{})
	restore := Activate(in)
	if !Fire(WorkerPanic) {
		t.Fatal("zero rule should fire every trigger")
	}
	restore()
	if Enabled() || Fire(WorkerPanic) {
		t.Fatal("restore did not deactivate")
	}
}
