package zonemap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
)

func seq(n int, f func(i int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func oneRange(lo, hi int64) expr.Ranges {
	return expr.Ranges{Lo: []int64{lo}, Hi: []int64{hi}}
}

func TestBuildBasics(t *testing.T) {
	codes := seq(100, func(i int) int64 { return int64(i) })
	m := Build(codes, nil, 10)
	if m.NumZones() != 10 || m.Rows() != 100 || m.ZoneSize() != 10 {
		t.Fatalf("zones=%d rows=%d", m.NumZones(), m.Rows())
	}
	for zi := 0; zi < 10; zi++ {
		z := m.Zone(zi)
		if z.Min != int64(zi*10) || z.Max != int64(zi*10+9) || z.NonNull != 10 {
			t.Fatalf("zone %d = %+v", zi, z)
		}
	}
	if m.MemoryBytes() != 10*24 {
		t.Fatalf("MemoryBytes=%d", m.MemoryBytes())
	}
}

func TestBuildPartialLastZone(t *testing.T) {
	codes := seq(25, func(i int) int64 { return int64(i) })
	m := Build(codes, nil, 10)
	if m.NumZones() != 3 {
		t.Fatalf("zones=%d want 3", m.NumZones())
	}
	z := m.Zone(2)
	if z.Min != 20 || z.Max != 24 || z.NonNull != 5 {
		t.Fatalf("partial zone = %+v", z)
	}
}

func TestBuildZeroZoneSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(nil, nil, 0)
}

func TestBuildWithNulls(t *testing.T) {
	codes := seq(20, func(i int) int64 { return int64(i) })
	nulls := bitvec.New(20)
	for i := 10; i < 20; i++ {
		nulls.Set(i) // second zone all null
	}
	nulls.Set(3)
	m := Build(codes, nulls, 10)
	z0 := m.Zone(0)
	if z0.NonNull != 9 || z0.Min != 0 || z0.Max != 9 {
		t.Fatalf("zone0 = %+v", z0)
	}
	z1 := m.Zone(1)
	if z1.NonNull != 0 {
		t.Fatalf("zone1 = %+v", z1)
	}
	// All-null zone is always skipped.
	cands, st := m.Prune(oneRange(-1000, 1000), nil)
	if len(cands) != 1 || cands[0].Lo != 0 || cands[0].Hi != 10 {
		t.Fatalf("cands=%v", cands)
	}
	if st.ZonesSkipped != 1 || st.RowsSkipped != 10 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestExtendIncremental(t *testing.T) {
	codes := seq(25, func(i int) int64 { return int64(i) })
	m := Build(codes[:7], nil, 10)
	if m.NumZones() != 1 || m.Zone(0).NonNull != 7 {
		t.Fatalf("initial: zones=%d", m.NumZones())
	}
	m.Extend(codes, nil)
	if m.NumZones() != 3 || m.Rows() != 25 {
		t.Fatalf("extended: zones=%d rows=%d", m.NumZones(), m.Rows())
	}
	// Must be identical to a fresh build.
	fresh := Build(codes, nil, 10)
	for zi := 0; zi < 3; zi++ {
		if m.Zone(zi) != fresh.Zone(zi) {
			t.Fatalf("zone %d: extend %+v vs fresh %+v", zi, m.Zone(zi), fresh.Zone(zi))
		}
	}
	// Extending with no new rows is a no-op.
	m.Extend(codes, nil)
	if m.NumZones() != 3 {
		t.Fatal("no-op extend changed zones")
	}
}

func TestPruneSkipAndCover(t *testing.T) {
	// 10 zones of 10; values = zone index (constant within a zone).
	codes := seq(100, func(i int) int64 { return int64(i / 10) })
	m := Build(codes, nil, 10)
	// Predicate [3,5]: zones 3,4,5 covered, others skipped.
	cands, st := m.Prune(oneRange(3, 5), nil)
	if len(cands) != 1 || cands[0].Lo != 30 || cands[0].Hi != 60 || !cands[0].Covered {
		t.Fatalf("cands=%v", cands)
	}
	if st.ZonesProbed != 10 || st.ZonesSkipped != 7 || st.ZonesCovered != 3 || st.RowsSkipped != 70 {
		t.Fatalf("stats=%+v", st)
	}
	// Empty predicate skips everything.
	cands, st = m.Prune(expr.Ranges{}, nil)
	if len(cands) != 0 || st.ZonesSkipped != 10 {
		t.Fatalf("empty pred: %v %+v", cands, st)
	}
}

func TestPruneMergesOnlySameCoverage(t *testing.T) {
	// Zone 0: values 0..9 (partial overlap with [5,15]); zone 1: constant 10
	// (covered); zone 2: values 20..29 (skipped).
	codes := append(append(seq(10, func(i int) int64 { return int64(i) }),
		seq(10, func(i int) int64 { return 10 })...),
		seq(10, func(i int) int64 { return int64(20 + i) })...)
	m := Build(codes, nil, 10)
	cands, _ := m.Prune(oneRange(5, 15), nil)
	if len(cands) != 2 {
		t.Fatalf("cands=%v", cands)
	}
	if cands[0].Covered || !cands[1].Covered {
		t.Fatalf("coverage flags wrong: %v", cands)
	}
	if cands[0].Lo != 0 || cands[0].Hi != 10 || cands[1].Lo != 10 || cands[1].Hi != 20 {
		t.Fatalf("windows wrong: %v", cands)
	}
}

func TestPruneAppendsToDst(t *testing.T) {
	codes := seq(20, func(i int) int64 { return int64(i) })
	m := Build(codes, nil, 10)
	dst := []Candidate{{Lo: 777, Hi: 778}}
	cands, _ := m.Prune(oneRange(0, 100), dst)
	if len(cands) != 2 || cands[0].Lo != 777 {
		t.Fatalf("dst not preserved: %v", cands)
	}
}

func TestWidenAndNoteNonNull(t *testing.T) {
	codes := seq(20, func(i int) int64 { return int64(i) })
	m := Build(codes, nil, 10)
	m.Widen(5, 1000)
	z := m.Zone(0)
	if z.Min != 0 || z.Max != 1000 {
		t.Fatalf("widened zone = %+v", z)
	}
	// Widening an all-null zone initializes bounds.
	nulls := bitvec.New(10)
	nulls.SetAll()
	m2 := Build(codes[:10], nulls, 10)
	m2.Widen(3, 42)
	m2.NoteNonNull(3)
	z = m2.Zone(0)
	if z.Min != 42 || z.Max != 42 || z.NonNull != 1 {
		t.Fatalf("null-zone widen = %+v", z)
	}
	cands, _ := m2.Prune(oneRange(42, 42), nil)
	if len(cands) != 1 {
		t.Fatalf("widened null zone should now be a candidate: %v", cands)
	}
}

// Property: pruning is sound — every row whose code matches the predicate
// lies inside some emitted candidate window — and candidates are disjoint,
// ordered, and covered candidates contain only matching non-null rows.
func TestQuickPruneSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		zoneSize := 1 + rng.Intn(40)
		codes := make([]int64, n)
		for i := range codes {
			codes[i] = rng.Int63n(100)
		}
		var nulls *bitvec.BitVec
		if rng.Intn(2) == 0 {
			nulls = bitvec.New(n)
			for k := 0; k < n/8; k++ {
				nulls.Set(rng.Intn(n))
			}
		}
		m := Build(codes, nulls, zoneSize)
		lo := rng.Int63n(120) - 10
		r := oneRange(lo, lo+rng.Int63n(50))
		cands, st := m.Prune(r, nil)

		inCand := make([]bool, n)
		covered := make([]bool, n)
		prevHi := -1
		for _, c := range cands {
			if c.Lo >= c.Hi || c.Lo < prevHi {
				return false // unordered or empty window
			}
			prevHi = c.Hi
			for i := c.Lo; i < c.Hi; i++ {
				inCand[i] = true
				covered[i] = c.Covered
			}
		}
		skipped := 0
		for i := 0; i < n; i++ {
			isNull := nulls != nil && nulls.Get(i)
			matches := !isNull && r.Contains(codes[i])
			if matches && !inCand[i] {
				return false // unsound skip
			}
			if covered[i] && !matches {
				return false // covered implies every row (incl. non-null) matches
			}
			if !inCand[i] {
				skipped++
			}
		}
		return skipped == st.RowsSkipped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend in random increments matches a fresh Build.
func TestQuickExtendMatchesBuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		zoneSize := 1 + rng.Intn(30)
		codes := make([]int64, n)
		for i := range codes {
			codes[i] = rng.Int63n(1000)
		}
		m := Build(codes[:1+rng.Intn(n)], nil, zoneSize)
		for m.Rows() < n {
			next := m.Rows() + 1 + rng.Intn(n-m.Rows())
			m.Extend(codes[:next], nil)
		}
		fresh := Build(codes, nil, zoneSize)
		if m.NumZones() != fresh.NumZones() {
			return false
		}
		for zi := 0; zi < m.NumZones(); zi++ {
			if m.Zone(zi) != fresh.Zone(zi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: PruneNulls is sound — every NULL row lies inside an emitted
// candidate window, covered windows contain only NULL rows, and null-free
// zones are skipped.
func TestQuickPruneNullsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		zoneSize := 1 + rng.Intn(30)
		codes := make([]int64, n)
		nulls := bitvec.New(n)
		for i := range codes {
			codes[i] = rng.Int63n(50)
			if rng.Intn(4) == 0 {
				nulls.Set(i)
			}
		}
		m := Build(codes, nulls, zoneSize)
		cands, st := m.PruneNulls(nil)
		inCand := make([]bool, n)
		covered := make([]bool, n)
		prevHi := -1
		for _, c := range cands {
			if c.Lo >= c.Hi || c.Lo < prevHi {
				return false
			}
			prevHi = c.Hi
			for i := c.Lo; i < c.Hi; i++ {
				inCand[i] = true
				covered[i] = c.Covered
			}
		}
		skipped := 0
		for i := 0; i < n; i++ {
			isNull := nulls.Get(i)
			if isNull && !inCand[i] {
				return false // a NULL row was wrongly skipped
			}
			if covered[i] && !isNull {
				return false // covered window with a non-NULL row
			}
			if !inCand[i] {
				skipped++
			}
		}
		return skipped == st.RowsSkipped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
