// Package zonemap implements classic fixed-granularity zonemaps, the
// static baseline that adaptive zonemaps are measured against.
//
// A zonemap divides a column into fixed-size zones of consecutive rows and
// records (min, max, non-null count) per zone. A range predicate skips a
// zone whose [min, max] does not overlap the predicate's code intervals.
// Probing metadata costs one interval test per zone on every query — the
// overhead the paper shows is unrecoverable on arbitrary data
// distributions, motivating adaptivity.
package zonemap

import (
	"fmt"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
	"adskip/internal/scan"
)

// Zone is the metadata of one fixed-size zone.
type Zone struct {
	Min, Max int64 // bounds over non-null rows; meaningless when NonNull==0
	NonNull  int   // number of rows carrying a value
}

// Map is a fixed-granularity zonemap over a column prefix of n rows.
type Map struct {
	zoneSize int
	n        int
	zones    []Zone
}

// Build constructs a zonemap over the first len(codes) rows of a column.
// zoneSize must be positive. nulls may be nil.
func Build(codes []int64, nulls *bitvec.BitVec, zoneSize int) *Map {
	if zoneSize <= 0 {
		panic(fmt.Sprintf("zonemap: zoneSize %d must be positive", zoneSize))
	}
	m := &Map{zoneSize: zoneSize}
	m.Extend(codes, nulls)
	return m
}

// ZoneSize returns the configured rows-per-zone.
func (m *Map) ZoneSize() int { return m.zoneSize }

// Rows returns the number of rows covered by metadata.
func (m *Map) Rows() int { return m.n }

// NumZones returns the number of zones.
func (m *Map) NumZones() int { return len(m.zones) }

// Zone returns a copy of zone i's metadata.
func (m *Map) Zone(i int) Zone { return m.zones[i] }

// MemoryBytes estimates the metadata footprint (two bounds plus a count
// per zone).
func (m *Map) MemoryBytes() int { return len(m.zones) * (8 + 8 + 8) }

// Extend grows the zonemap to cover codes, which must be the column's full
// code slice (the map remembers how many rows it has already summarized
// and only processes the suffix). The final, possibly partial, zone is
// rebuilt when new rows land in it.
func (m *Map) Extend(codes []int64, nulls *bitvec.BitVec) {
	total := len(codes)
	if total <= m.n {
		return
	}
	// Drop a trailing partial zone so it is rebuilt with the new rows.
	if rem := m.n % m.zoneSize; rem != 0 {
		m.zones = m.zones[:len(m.zones)-1]
		m.n -= rem
	}
	for lo := m.n; lo < total; lo += m.zoneSize {
		hi := lo + m.zoneSize
		if hi > total {
			hi = total
		}
		min, max, ok := scan.MinMaxRange(codes, lo, hi, nulls, 0)
		z := Zone{}
		if ok {
			z.Min, z.Max = min, max
			z.NonNull = hi - lo
			if nulls != nil {
				z.NonNull = hi - lo - nulls.CountRange(lo, hi)
			}
		}
		m.zones = append(m.zones, z)
	}
	m.n = total
}

// Widen grows zone bounds to admit an updated value at the given row. Used
// by in-place updates: widening keeps pruning sound at the cost of looser
// bounds (re-tightening requires a rebuild).
func (m *Map) Widen(row int, code int64) {
	zi := row / m.zoneSize
	z := &m.zones[zi]
	if z.NonNull == 0 {
		z.Min, z.Max = code, code
	} else {
		if code < z.Min {
			z.Min = code
		}
		if code > z.Max {
			z.Max = code
		}
	}
	// A previously-null row gaining a value increases NonNull; callers that
	// only overwrite values may pass through NoteNonNull separately. We
	// conservatively leave NonNull unchanged here — Prune uses it only to
	// skip all-null zones and for covered short-circuits, and callers of
	// Widen must call NoteNonNull when a NULL was overwritten.
}

// NoteNonNull records that a formerly NULL row in zone row/zoneSize now
// holds a value.
func (m *Map) NoteNonNull(row int) {
	m.zones[row/m.zoneSize].NonNull++
}

// Candidate is one contiguous row range the scan must visit.
type Candidate struct {
	Lo, Hi  int  // row window [Lo, Hi)
	Covered bool // every non-null row in the window is known to match
}

// PruneStats reports the work the probe did, for the experiment harness
// and the adaptive cost model.
type PruneStats struct {
	ZonesProbed  int
	ZonesSkipped int
	ZonesCovered int
	RowsSkipped  int
}

// PruneNulls emits candidates for IS NULL scans: zones with no NULL rows
// are skipped; all-NULL zones are covered (every row matches). Adjacent
// candidates with the same coverage state merge.
func (m *Map) PruneNulls(dst []Candidate) ([]Candidate, PruneStats) {
	var st PruneStats
	st.ZonesProbed = len(m.zones)
	for zi, z := range m.zones {
		lo := zi * m.zoneSize
		hi := lo + m.zoneSize
		if hi > m.n {
			hi = m.n
		}
		if z.NonNull == hi-lo {
			st.ZonesSkipped++
			st.RowsSkipped += hi - lo
			continue
		}
		covered := z.NonNull == 0
		if covered {
			st.ZonesCovered++
		}
		if k := len(dst); k > 0 && dst[k-1].Hi == lo && dst[k-1].Covered == covered {
			dst[k-1].Hi = hi
		} else {
			dst = append(dst, Candidate{Lo: lo, Hi: hi, Covered: covered})
		}
	}
	return dst, st
}

// Prune probes every zone against r and appends the row ranges that must
// be scanned to dst, merging adjacent candidates with the same coverage
// state. Zones whose metadata proves emptiness (no overlap, or all-null)
// are skipped; zones whose bounds are fully inside one predicate interval
// are emitted as Covered so the executor can short-circuit counting.
func (m *Map) Prune(r expr.Ranges, dst []Candidate) ([]Candidate, PruneStats) {
	var st PruneStats
	st.ZonesProbed = len(m.zones)
	for zi, z := range m.zones {
		lo := zi * m.zoneSize
		hi := lo + m.zoneSize
		if hi > m.n {
			hi = m.n
		}
		if z.NonNull == 0 || !r.Overlaps(z.Min, z.Max) {
			st.ZonesSkipped++
			st.RowsSkipped += hi - lo
			continue
		}
		// Covered requires a null-free zone so that "covered" means every
		// row matches — the property multi-column intersection relies on.
		covered := z.NonNull == hi-lo && r.Covers(z.Min, z.Max)
		if covered {
			st.ZonesCovered++
		}
		if k := len(dst); k > 0 && dst[k-1].Hi == lo && dst[k-1].Covered == covered {
			dst[k-1].Hi = hi
		} else {
			dst = append(dst, Candidate{Lo: lo, Hi: hi, Covered: covered})
		}
	}
	return dst, st
}
