// Package wal implements a write-ahead log for the engine's mutation
// path: append batches and in-place updates are logged as length-prefixed
// CRC32C-checksummed records before they touch the in-memory columns, so
// a process killed at any instant can replay its way back to exactly the
// acknowledged state.
//
// Records use the store's native columnar block layout (one type-tagged
// vector per column, nulls as a bitmap) so recovery replays blocks, not
// rows. Concurrent writers coalesce into one fsync via group commit; see
// Log. Segments rotate at a size threshold and sealed segments are
// recycled instead of deleted once Compact declares them obsolete.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"adskip/internal/storage"
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindRows is a columnar block of appended rows.
	KindRows Kind = 1
	// KindUpdate is one in-place cell overwrite.
	KindUpdate Kind = 2
	// KindShardRows and KindShardUpdate are the sharded wire forms of
	// KindRows/KindUpdate: a u32 shard number (1-based, never 0) precedes
	// the legacy body. They exist only on disk — DecodePayload normalizes
	// them back to KindRows/KindUpdate with Record.Shard set, and the
	// encoder picks the wire kind from Record.Shard — so replay logic is
	// shard-agnostic and unsharded logs stay byte-identical to earlier
	// releases.
	KindShardRows   Kind = 3
	KindShardUpdate Kind = 4
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRows:
		return "rows"
	case KindUpdate:
		return "update"
	case KindShardRows:
		return "shard-rows"
	case KindShardUpdate:
		return "shard-update"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logical WAL entry. KindRows carries an append batch in
// columnar form; KindUpdate carries a single cell overwrite. BaseRow (the
// table's row count when the mutation was logged) makes replay
// idempotent: a record whose rows are already present is skipped, and a
// record that would leave a gap is an error.
type Record struct {
	Kind  Kind
	Table string

	// Shard is the 1-based shard number of the engine that logged the
	// record, or 0 for an unsharded table. Shard > 0 selects the sharded
	// wire kinds; recovery routes the record to the same shard. BaseRow
	// and Row are shard-local on a sharded record.
	Shard uint32

	// KindRows fields.
	BaseRow uint64
	Types   []storage.Type
	Rows    [][]storage.Value

	// KindUpdate fields.
	Col   string
	Row   uint64
	Value storage.Value
}

// On-disk framing: each record is
//
//	u32le payload length | u32le CRC32C(payload) | payload
//
// and each segment file starts with segMagic + u64le segment index +
// u64le base LSN (the LSN of the last record before the segment), which
// keeps LSN numbering stable across restarts and compactions.
// Strings are logged as raw bytes, not dictionary codes: dict codes are
// remapped when a dictionary seals, so only the value itself is stable
// across restarts. Int64 and Float64 cells are fixed 8-byte slots (floats
// as IEEE bits), null slots zeroed, with a leading null bitmap per column.

const (
	frameLen = 8 // u32 length + u32 crc

	// DefaultMaxRecordBytes bounds a single record's payload. Decode
	// refuses larger claims before allocating, so a corrupt length prefix
	// cannot OOM recovery.
	DefaultMaxRecordBytes = 16 << 20

	// maxCols and maxRecordRows bound decoded claims independently of the
	// payload length check.
	maxCols       = 1 << 12
	maxRecordRows = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C of a record payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// appendFrame appends the framed record (header + payload) to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, Checksum(payload))
	return append(dst, payload...)
}

// EncodePayload renders rec as a payload (no frame header).
func EncodePayload(rec *Record) ([]byte, error) {
	switch rec.Kind {
	case KindRows, KindShardRows:
		return encodeRows(rec)
	case KindUpdate, KindShardUpdate:
		return encodeUpdate(rec)
	default:
		return nil, fmt.Errorf("wal: cannot encode record kind %d", rec.Kind)
	}
}

// appendKind writes the record's wire kind — the shard variant with its
// u32 shard prefix when Shard > 0, the legacy kind otherwise.
func appendKind(dst []byte, rec *Record, legacy, sharded Kind) []byte {
	if rec.Shard > 0 {
		dst = append(dst, byte(sharded))
		return binary.LittleEndian.AppendUint32(dst, rec.Shard)
	}
	return append(dst, byte(legacy))
}

func appendString16(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func encodeRows(rec *Record) ([]byte, error) {
	ncols, nrows := len(rec.Types), len(rec.Rows)
	if ncols == 0 || ncols > maxCols {
		return nil, fmt.Errorf("wal: rows record with %d columns", ncols)
	}
	if nrows == 0 || nrows > maxRecordRows {
		return nil, fmt.Errorf("wal: rows record with %d rows", nrows)
	}
	if len(rec.Table) > math.MaxUint16 {
		return nil, fmt.Errorf("wal: table name too long (%d bytes)", len(rec.Table))
	}
	b := make([]byte, 0, 32+nrows*ncols*9)
	b = appendKind(b, rec, KindRows, KindShardRows)
	b = appendString16(b, rec.Table)
	b = binary.LittleEndian.AppendUint64(b, rec.BaseRow)
	b = binary.LittleEndian.AppendUint16(b, uint16(ncols))
	b = binary.LittleEndian.AppendUint32(b, uint32(nrows))
	bitmapLen := (nrows + 7) / 8
	for ci, typ := range rec.Types {
		b = append(b, byte(typ))
		// Null bitmap: bit i set means row i's cell is NULL.
		off := len(b)
		for i := 0; i < bitmapLen; i++ {
			b = append(b, 0)
		}
		for ri, row := range rec.Rows {
			if len(row) != ncols {
				return nil, fmt.Errorf("wal: row %d has %d cells, record has %d columns", ri, len(row), ncols)
			}
			if row[ci].IsNull() {
				b[off+ri/8] |= 1 << (ri % 8)
			}
		}
		switch typ {
		case storage.Int64:
			for _, row := range rec.Rows {
				var u uint64
				if !row[ci].IsNull() {
					u = uint64(row[ci].Int())
				}
				b = binary.LittleEndian.AppendUint64(b, u)
			}
		case storage.Float64:
			for _, row := range rec.Rows {
				var u uint64
				if !row[ci].IsNull() {
					u = math.Float64bits(row[ci].Float())
				}
				b = binary.LittleEndian.AppendUint64(b, u)
			}
		case storage.String:
			for _, row := range rec.Rows {
				if row[ci].IsNull() {
					continue
				}
				s := row[ci].Str()
				b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
				b = append(b, s...)
			}
		default:
			return nil, fmt.Errorf("wal: cannot encode column type %d", typ)
		}
	}
	return b, nil
}

func encodeUpdate(rec *Record) ([]byte, error) {
	if len(rec.Table) > math.MaxUint16 || len(rec.Col) > math.MaxUint16 {
		return nil, fmt.Errorf("wal: name too long")
	}
	if rec.Value.IsNull() {
		return nil, fmt.Errorf("wal: update record with NULL value")
	}
	b := make([]byte, 0, 64)
	b = appendKind(b, rec, KindUpdate, KindShardUpdate)
	b = appendString16(b, rec.Table)
	b = appendString16(b, rec.Col)
	b = binary.LittleEndian.AppendUint64(b, rec.Row)
	b = append(b, byte(rec.Value.Type()))
	switch rec.Value.Type() {
	case storage.Int64:
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.Value.Int()))
	case storage.Float64:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.Value.Float()))
	case storage.String:
		s := rec.Value.Str()
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	default:
		return nil, fmt.Errorf("wal: cannot encode value type %d", rec.Value.Type())
	}
	return b, nil
}

// reader is a bounds-checked cursor over a payload; every take reports
// truncation instead of panicking, so DecodePayload is total over
// arbitrary bytes.
type reader struct {
	b   []byte
	off int
}

var errShort = fmt.Errorf("wal: truncated payload")

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, errShort
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) string16() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodePayload parses a record payload. It never panics: any structural
// problem (truncation, absurd counts, unknown tags) returns an error, so
// recovery can treat a failed decode exactly like a failed checksum.
func DecodePayload(payload []byte) (*Record, error) {
	r := &reader{b: payload}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch Kind(kind) {
	case KindRows:
		return decodeRows(r)
	case KindUpdate:
		return decodeUpdate(r)
	case KindShardRows, KindShardUpdate:
		shard, err := r.u32()
		if err != nil {
			return nil, err
		}
		if shard == 0 {
			// Shard 0 must use the legacy kinds; rejecting it keeps the
			// encoding canonical (one byte form per logical record).
			return nil, fmt.Errorf("wal: sharded record with shard 0")
		}
		var rec *Record
		if Kind(kind) == KindShardRows {
			rec, err = decodeRows(r)
		} else {
			rec, err = decodeUpdate(r)
		}
		if err != nil {
			return nil, err
		}
		rec.Shard = shard
		return rec, nil
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", kind)
	}
}

func decodeRows(r *reader) (*Record, error) {
	rec := &Record{Kind: KindRows}
	var err error
	if rec.Table, err = r.string16(); err != nil {
		return nil, err
	}
	if rec.BaseRow, err = r.u64(); err != nil {
		return nil, err
	}
	ncols16, err := r.u16()
	if err != nil {
		return nil, err
	}
	nrows32, err := r.u32()
	if err != nil {
		return nil, err
	}
	ncols, nrows := int(ncols16), int(nrows32)
	if ncols == 0 || ncols > maxCols {
		return nil, fmt.Errorf("wal: rows record claims %d columns", ncols)
	}
	if nrows == 0 || nrows > maxRecordRows {
		return nil, fmt.Errorf("wal: rows record claims %d rows", nrows)
	}
	// A row needs at least one byte per column in the payload; reject
	// claims the payload cannot possibly back before allocating.
	if nrows > len(r.b) {
		return nil, errShort
	}
	rec.Types = make([]storage.Type, ncols)
	rec.Rows = make([][]storage.Value, nrows)
	cells := make([]storage.Value, nrows*ncols)
	for i := range rec.Rows {
		rec.Rows[i] = cells[i*ncols : (i+1)*ncols]
	}
	bitmapLen := (nrows + 7) / 8
	for ci := 0; ci < ncols; ci++ {
		tb, err := r.u8()
		if err != nil {
			return nil, err
		}
		typ := storage.Type(tb)
		if typ != storage.Int64 && typ != storage.Float64 && typ != storage.String {
			return nil, fmt.Errorf("wal: unknown column type %d", tb)
		}
		rec.Types[ci] = typ
		bitmap, err := r.take(bitmapLen)
		if err != nil {
			return nil, err
		}
		isNull := func(i int) bool { return bitmap[i/8]&(1<<(i%8)) != 0 }
		switch typ {
		case storage.Int64:
			body, err := r.take(nrows * 8)
			if err != nil {
				return nil, err
			}
			for i := 0; i < nrows; i++ {
				if isNull(i) {
					rec.Rows[i][ci] = storage.NullValue(typ)
				} else {
					rec.Rows[i][ci] = storage.IntValue(int64(binary.LittleEndian.Uint64(body[i*8:])))
				}
			}
		case storage.Float64:
			body, err := r.take(nrows * 8)
			if err != nil {
				return nil, err
			}
			for i := 0; i < nrows; i++ {
				if isNull(i) {
					rec.Rows[i][ci] = storage.NullValue(typ)
				} else {
					f := math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
					if math.IsNaN(f) {
						return nil, fmt.Errorf("wal: NaN in float column block")
					}
					rec.Rows[i][ci] = storage.FloatValue(f)
				}
			}
		case storage.String:
			for i := 0; i < nrows; i++ {
				if isNull(i) {
					rec.Rows[i][ci] = storage.NullValue(typ)
					continue
				}
				n, err := r.u32()
				if err != nil {
					return nil, err
				}
				b, err := r.take(int(n))
				if err != nil {
					return nil, err
				}
				rec.Rows[i][ci] = storage.StringValue(string(b))
			}
		}
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after rows record", len(r.b)-r.off)
	}
	return rec, nil
}

func decodeUpdate(r *reader) (*Record, error) {
	rec := &Record{Kind: KindUpdate}
	var err error
	if rec.Table, err = r.string16(); err != nil {
		return nil, err
	}
	if rec.Col, err = r.string16(); err != nil {
		return nil, err
	}
	if rec.Row, err = r.u64(); err != nil {
		return nil, err
	}
	tb, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch storage.Type(tb) {
	case storage.Int64:
		u, err := r.u64()
		if err != nil {
			return nil, err
		}
		rec.Value = storage.IntValue(int64(u))
	case storage.Float64:
		u, err := r.u64()
		if err != nil {
			return nil, err
		}
		f := math.Float64frombits(u)
		if math.IsNaN(f) {
			return nil, fmt.Errorf("wal: NaN in update record")
		}
		rec.Value = storage.FloatValue(f)
	case storage.String:
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		rec.Value = storage.StringValue(string(b))
	default:
		return nil, fmt.Errorf("wal: unknown value type %d", tb)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after update record", len(r.b)-r.off)
	}
	return rec, nil
}

// NumRows returns how many rows the record adds on replay (0 for updates).
func (rec *Record) NumRows() int {
	if rec.Kind == KindRows {
		return len(rec.Rows)
	}
	return 0
}
