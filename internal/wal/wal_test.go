package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adskip/internal/faultinject"
	"adskip/internal/storage"
)

// rowsRecord builds a KindRows record with the mixed-type test schema.
func rowsRecord(table string, base uint64, n int) *Record {
	rec := &Record{
		Kind: KindRows, Table: table, BaseRow: base,
		Types: []storage.Type{storage.Int64, storage.Float64, storage.String},
	}
	for i := 0; i < n; i++ {
		rec.Rows = append(rec.Rows, []storage.Value{
			storage.IntValue(int64(base) + int64(i)),
			storage.FloatValue(float64(i) * 1.5),
			storage.StringValue(fmt.Sprintf("s-%d-%d", base, i)),
		})
	}
	return rec
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		rowsRecord("data", 0, 1),
		rowsRecord("data", 17, 64),
		{
			Kind: KindRows, Table: "t", BaseRow: 3,
			Types: []storage.Type{storage.Int64, storage.String},
			Rows: [][]storage.Value{
				{storage.NullValue(storage.Int64), storage.NullValue(storage.String)},
				{storage.IntValue(-9e15), storage.StringValue("")},
			},
		},
		{Kind: KindUpdate, Table: "data", Col: "v", Row: 42, Value: storage.IntValue(7)},
		{Kind: KindUpdate, Table: "data", Col: "noise", Row: 0, Value: storage.FloatValue(-0.25)},
		{Kind: KindUpdate, Table: "d", Col: "s", Row: 1 << 40, Value: storage.StringValue("x")},
	}
	for i, rec := range recs {
		payload, err := EncodePayload(rec)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := DecodePayload(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		assertRecordEqual(t, i, got, rec)
	}
}

func assertRecordEqual(t *testing.T, i int, got, want *Record) {
	t.Helper()
	if got.Kind != want.Kind || got.Table != want.Table || got.BaseRow != want.BaseRow ||
		got.Col != want.Col || got.Row != want.Row {
		t.Fatalf("record %d: header mismatch: got %+v want %+v", i, got, want)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("record %d: %d rows, want %d", i, len(got.Rows), len(want.Rows))
	}
	for ri := range want.Rows {
		for ci := range want.Rows[ri] {
			g, w := got.Rows[ri][ci], want.Rows[ri][ci]
			if g.IsNull() != w.IsNull() || (!w.IsNull() && g != w) {
				t.Fatalf("record %d row %d col %d: got %v want %v", i, ri, ci, g, w)
			}
		}
	}
	if want.Kind == KindUpdate && got.Value != want.Value {
		t.Fatalf("record %d: value %v, want %v", i, got.Value, want.Value)
	}
}

func TestEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		rec  *Record
	}{
		{"unknown kind", &Record{Kind: 99}},
		{"no columns", &Record{Kind: KindRows, Rows: [][]storage.Value{{}}}},
		{"no rows", &Record{Kind: KindRows, Types: []storage.Type{storage.Int64}}},
		{"ragged row", &Record{Kind: KindRows, Types: []storage.Type{storage.Int64, storage.Int64},
			Rows: [][]storage.Value{{storage.IntValue(1)}}}},
		{"null update", &Record{Kind: KindUpdate, Table: "t", Col: "c",
			Value: storage.NullValue(storage.Int64)}},
	}
	for _, tc := range cases {
		if _, err := EncodePayload(tc.rec); err == nil {
			t.Errorf("%s: encode accepted", tc.name)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	valid, err := EncodePayload(rowsRecord("data", 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func([]byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown kind", mutate(func(b []byte) []byte { b[0] = 99; return b })},
		{"truncated", mutate(func(b []byte) []byte { return b[:len(b)/2] })},
		{"trailing bytes", mutate(func(b []byte) []byte { return append(b, 0xFF) })},
	}
	for _, tc := range cases {
		if _, err := DecodePayload(tc.payload); err == nil {
			t.Errorf("%s: decode accepted", tc.name)
		}
	}
}

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options, replay func(*Record) error) (*Log, RecoveryStats) {
	t.Helper()
	opts.Dir = dir
	l, stats, err := Open(opts, replay)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, stats := openT(t, dir, Options{}, nil)
	if stats.Records != 0 || stats.Segments != 0 {
		t.Fatalf("fresh dir recovered %+v", stats)
	}
	var want []*Record
	base := uint64(0)
	for i := 0; i < 10; i++ {
		rec := rowsRecord("data", base, 4)
		base += 4
		want = append(want, rec)
		c, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.LSN(); got != uint64(i+1) {
			t.Fatalf("append %d got LSN %d", i, got)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	upd := &Record{Kind: KindUpdate, Table: "data", Col: "v", Row: 3, Value: storage.IntValue(-1)}
	want = append(want, upd)
	if c, err := l.Append(upd); err != nil || c.Wait() != nil {
		t.Fatalf("append update: %v", err)
	}
	if got := l.SyncedLSN(); got != 11 {
		t.Fatalf("SyncedLSN = %d, want 11", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Record
	l2, stats := openT(t, dir, Options{}, func(rec *Record) error {
		got = append(got, rec)
		return nil
	})
	defer l2.Close()
	if stats.Records != 11 || stats.Rows != 40 || stats.Updates != 1 || stats.TornTail {
		t.Fatalf("recovery stats %+v", stats)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		assertRecordEqual(t, i, got[i], want[i])
	}
	// The reopened log continues the LSN sequence.
	c, err := l2.Append(rowsRecord("data", base, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.LSN() != 12 {
		t.Fatalf("post-recovery LSN = %d, want 12", c.LSN())
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitConcurrent hammers the log from many goroutines (run
// under -race in CI) and checks every commit becomes durable, LSNs are
// dense, and the committer actually grouped: far fewer fsyncs than
// appends.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{}, nil)
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	seen := make([]bool, writers*perWriter+1)
	var mu sync.Mutex
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c, err := l.Append(rowsRecord("data", uint64(w*perWriter+i), 2))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := c.Wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				mu.Lock()
				if c.LSN() == 0 || int(c.LSN()) >= len(seen) || seen[c.LSN()] {
					t.Errorf("bad or duplicate LSN %d", c.LSN())
				} else {
					seen[c.LSN()] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if got := l.SyncedLSN(); got != writers*perWriter {
		t.Fatalf("SyncedLSN = %d, want %d", got, writers*perWriter)
	}
	st := l.Status()
	if st.PendingRecords != 0 || st.Failed {
		t.Fatalf("status after drain: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything survives a replay.
	var n int
	l2, stats := openT(t, dir, Options{}, func(*Record) error { n++; return nil })
	defer l2.Close()
	if uint64(n) != stats.Records || n != writers*perWriter {
		t.Fatalf("replayed %d records (stats %d), want %d", n, stats.Records, writers*perWriter)
	}
}

// TestSyncErrorSticky: an injected fsync failure must fail the waiting
// commit and poison the log — no later append may succeed, because rows
// already applied in memory are no longer covered by the disk state.
func TestSyncErrorSticky(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{}, nil)
	defer l.Close()
	defer faultinject.Activate(faultinject.New(1).
		Set(faultinject.WALSyncErr, faultinject.Rule{Limit: 1}))()
	c, err := l.Append(rowsRecord("data", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("commit error = %v, want injected", err)
	}
	if _, err := l.Append(rowsRecord("data", 1, 1)); err == nil {
		t.Fatal("append succeeded on a failed log")
	}
	if st := l.Status(); !st.Failed {
		t.Fatalf("status not failed: %+v", st)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded on a failed log")
	}
}

// TestRotationRecycleCompact drives the log across many tiny segments,
// compacts, and verifies recycled files are reused by later rotations
// instead of growing the directory without bound.
func TestRotationRecycleCompact(t *testing.T) {
	dir := t.TempDir()
	// Minimum segment size (4 KiB) with ~1 KiB records forces rotation
	// every few appends.
	l, _ := openT(t, dir, Options{SegmentBytes: 1, GroupWindow: -1}, nil)
	var lastLSN uint64
	for i := 0; i < 40; i++ {
		c, err := l.Append(rowsRecord("data", uint64(i*8), 8))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
		lastLSN = c.LSN()
	}
	st := l.Status()
	if st.Segments < 3 {
		t.Fatalf("expected several segments, got %+v", st)
	}
	n, err := l.Compact(lastLSN)
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Segments-1 {
		t.Fatalf("Compact recycled %d of %d segments", n, st.Segments)
	}
	st = l.Status()
	if st.Segments != 1 || st.Spares != n {
		t.Fatalf("post-compact status %+v", st)
	}
	// New appends rotate onto the spares: the spare pool shrinks.
	for i := 0; i < 40; i++ {
		c, err := l.Append(rowsRecord("data", uint64(320+i*8), 8))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st2 := l.Status()
	if st2.Spares >= st.Spares {
		t.Fatalf("rotation did not consume spares: %+v -> %+v", st, st2)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay sees only the uncompacted suffix (the second 40 appends plus
	// whatever shared the active segment at compact time) — never the
	// recycled records, never duplicates.
	var rows int64
	l2, stats := openT(t, dir, Options{SegmentBytes: 1}, func(rec *Record) error {
		rows += int64(len(rec.Rows))
		return nil
	})
	defer l2.Close()
	if stats.Records < 40 || stats.Records >= 80 {
		t.Fatalf("replay after compact: %+v, want the uncompacted suffix of 80 records", stats)
	}
	if rows != int64(stats.Records)*8 {
		t.Fatalf("replayed %d rows across %d records, want 8 per record", rows, stats.Records)
	}
}

// TestLSNStableAcrossRestartAndCompact: segment headers record a base
// LSN, so numbering survives compaction plus restart — a throughLSN
// captured before the restart still names the same records after, and
// the reopened log continues the absolute sequence instead of
// renumbering the surviving suffix from 1.
func TestLSNStableAcrossRestartAndCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 1, GroupWindow: -1}, nil)
	var lastLSN uint64
	for i := 0; i < 40; i++ {
		c, err := l.Append(rowsRecord("data", uint64(i*8), 8))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
		lastLSN = c.LSN()
	}
	if lastLSN != 40 {
		t.Fatalf("last LSN = %d, want 40", lastLSN)
	}
	if n, err := l.Compact(20); err != nil || n == 0 {
		t.Fatalf("Compact recycled %d segments (err %v)", n, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed uint64
	l2, stats := openT(t, dir, Options{SegmentBytes: 1}, func(*Record) error { replayed++; return nil })
	defer l2.Close()
	if stats.Records != replayed {
		t.Fatalf("stats.Records = %d, callback saw %d", stats.Records, replayed)
	}
	if got := l2.SyncedLSN(); got != 40 {
		t.Fatalf("SyncedLSN after restart = %d, want 40 (stable numbering)", got)
	}
	c, err := l2.Append(rowsRecord("data", 320, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.LSN() != 41 {
		t.Fatalf("post-restart LSN = %d, want 41", c.LSN())
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestBaseLSNMismatchStopsReplay: a hole in the segment chain (here a
// deleted middle segment) must stop replay at the hole — the next
// segment's base LSN disagrees with the running count — rather than
// silently renumbering the records after it.
func TestBaseLSNMismatchStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 1, GroupWindow: -1}, nil)
	for i := 0; i < 40; i++ {
		c, err := l.Append(rowsRecord("data", uint64(i*8), 8))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	nsegs := l.Status().Segments
	if nsegs < 3 {
		t.Fatalf("need >=3 segments, got %d", nsegs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segPath(dir, 2)); err != nil {
		t.Fatal(err)
	}

	var n uint64
	l2, stats := openT(t, dir, Options{SegmentBytes: 1}, func(*Record) error { n++; return nil })
	defer l2.Close()
	if n == 0 || n >= 40 {
		t.Fatalf("replayed %d records, want only the prefix before the hole", n)
	}
	if !strings.Contains(stats.Truncated, "base LSN") {
		t.Fatalf("Truncated = %q, want base LSN mismatch", stats.Truncated)
	}
	// Everything at and past the hole is dropped, and the log continues
	// the absolute LSN sequence from the intact prefix.
	c, err := l2.Append(rowsRecord("data", uint64(n*8), 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.LSN() != n+1 {
		t.Fatalf("post-recovery LSN = %d, want %d", c.LSN(), n+1)
	}
}

// TestSyncBarrier: Sync must not return until records enqueued before it
// are durable, even when the group window would otherwise keep them
// pending (and even if the committer has already claimed the batch).
func TestSyncBarrier(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{GroupWindow: time.Second}, nil)
	defer l.Close()
	for round := uint64(1); round <= 3; round++ {
		for j := 0; j < 4; j++ {
			if _, err := l.Append(rowsRecord("data", (round-1)*4+uint64(j), 1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if got := l.SyncedLSN(); got != round*4 {
			t.Fatalf("round %d: SyncedLSN = %d, want %d", round, got, round*4)
		}
	}
}

// TestCloseFlushes: appends not yet waited on still reach disk when Close
// drains the committer.
func TestCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{GroupWindow: time.Second}, nil)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rowsRecord("data", uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var n int
	l2, _ := openT(t, dir, Options{}, func(*Record) error { n++; return nil })
	defer l2.Close()
	if n != 5 {
		t.Fatalf("replayed %d records after Close, want 5", n)
	}
}

// TestReplayCallbackErrorAborts: a replay error must abort Open — the
// caller's state is unknown, so the log must not accept appends.
func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{}, nil)
	c, err := l.Append(rowsRecord("data", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, _, err := Open(Options{Dir: dir}, func(*Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Open error = %v, want wrapped boom", err)
	}
}

// TestSpareFilesIgnoredByReplay: spare files, whatever bytes they held
// before truncation, never contribute records — they are reused as blank
// segments (the first rotation here consumes the spare immediately).
func TestSpareFilesIgnoredByReplay(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "spare-00000009.wal"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, stats := openT(t, dir, Options{}, func(*Record) error {
		t.Fatal("replayed a record from a spare")
		return nil
	})
	defer l.Close()
	if stats.Records != 0 {
		t.Fatalf("stats %+v", stats)
	}
	st := l.Status()
	if st.Segments != 1 || st.Spares != 0 {
		t.Fatalf("spare not recycled into the active segment: %+v", st)
	}
	// The junk the spare held must be gone: appends land on a clean header.
	c, err := l.Append(rowsRecord("data", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}
