package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"adskip/internal/obs"
)

// Segment layout: a fixed header (magic + index + base LSN) followed by
// framed records. Filenames encode the index too, so a directory listing
// orders segments without opening them; the header is still verified.
// The base LSN — the LSN of the last record *before* this segment — makes
// numbering stable across restarts: replay resumes absolute LSNs from the
// first surviving segment's base instead of recounting from 1, so a
// throughLSN captured before a restart still names the same records after
// recovery (even once Compact has recycled the early segments).
const segHeaderLen = 24

var segMagic = [8]byte{'A', 'D', 'S', 'K', 'W', 'A', 'L', 2}

func segPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.wal", index))
}

// createSegment creates (or truncates a recycled) segment file and writes
// its header. The header is synced immediately so a crash right after
// rotation cannot leave a headerless active segment.
func createSegment(path string, index, baseLSN uint64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, index)
	hdr = binary.LittleEndian.AppendUint64(hdr, baseLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so created/renamed segment files survive a
// crash of the directory entry itself.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// RecoveryStats summarizes one replay pass.
type RecoveryStats struct {
	Segments int    `json:"segments"`
	Records  uint64 `json:"records"`
	Rows     int64  `json:"rows"`
	Updates  int64  `json:"updates"`
	Bytes    int64  `json:"bytes"`
	// TornTail reports that the final records were cut mid-write (the
	// expected signature of a crash) and truncated away.
	TornTail bool `json:"torn_tail"`
	// Truncated describes where and why replay stopped early, empty on a
	// clean tail.
	Truncated string `json:"truncated,omitempty"`
	// DroppedBytes counts bytes discarded at the truncation point,
	// including any segments past it.
	DroppedBytes int64 `json:"dropped_bytes"`
	// DroppedSegments counts whole segments discarded past a mid-log
	// truncation point (0 for an ordinary torn tail).
	DroppedSegments int           `json:"dropped_segments"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// Open replays the log at opts.Dir through the replay callback (which may
// be nil to skip replay) and returns an append-ready Log positioned after
// the last durable record.
//
// Replay stops — and the file is truncated — at the first record that is
// cut short, fails its checksum, or fails to decode. In the last segment
// that is the torn tail a kill mid-write leaves and is routine; anywhere
// earlier it orphans the segments after it, which are recycled. A replay
// callback error aborts Open: the caller's state is unknown and the log
// must not accept appends on top of it.
func Open(opts Options, replay func(*Record) error) (*Log, RecoveryStats, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, RecoveryStats{}, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoveryStats{}, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := &Log{
		opts: opts,
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		m:    newLogMetrics(reg),
	}

	segs, spares, err := listSegments(opts.Dir)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	l.spares = spares

	start := time.Now()
	var stats RecoveryStats
	stats.Segments = len(segs)
	var lsn, replayed uint64
	truncated := false
	renamed := false
	expectBase := int64(-1) // first surviving segment's base is adopted
	for si := range segs {
		s := &segs[si]
		if truncated {
			// Records after a truncation point are unreachable: without
			// the dropped suffix their BaseRow chain has a hole. Recycle
			// the whole segment. Rename before truncating — rename is
			// atomic, so no crash point leaves an empty file under a
			// numbered segment name (which a later replay would read as
			// fresh mid-log corruption).
			stats.DroppedBytes += s.bytes
			stats.DroppedSegments++
			spare := filepath.Join(opts.Dir, fmt.Sprintf("spare-%08d.wal", s.index))
			if err := os.Rename(s.path, spare); err != nil {
				return nil, stats, err
			}
			renamed = true
			if err := os.Truncate(spare, 0); err != nil {
				return nil, stats, err
			}
			l.spares = append(l.spares, spare)
			continue
		}
		base, n, off, reason, err := replaySegment(s, opts.MaxRecordBytes, expectBase, replay, &stats)
		if err != nil {
			return nil, stats, err
		}
		replayed += n
		if off >= segHeaderLen {
			// The header parsed, so this segment's LSNs start at its base.
			lsn = base + n
			expectBase = int64(lsn)
		}
		s.lastLSN = lsn
		if reason != "" {
			// Torn or corrupt record: truncate the file right before it.
			stats.Truncated = fmt.Sprintf("segment %d at offset %d: %s", s.index, off, reason)
			stats.TornTail = si == len(segs)-1
			stats.DroppedBytes += s.bytes - off
			if err := os.Truncate(s.path, off); err != nil {
				return nil, stats, err
			}
			s.bytes = off
			truncated = true
		}
	}
	if renamed {
		if err := syncDir(opts.Dir); err != nil {
			return nil, stats, err
		}
	}
	// Keep only segments still on disk (ones past a truncation point were
	// renamed to spares above).
	for _, s := range segs {
		if fileExists(s.path) {
			l.segs = append(l.segs, s)
		}
	}

	stats.Records = replayed
	stats.Elapsed = time.Since(start)
	l.nextLSN = lsn + 1
	l.written = lsn
	l.synced.Store(lsn)

	// Position the active segment (create the first one if none exist).
	if len(l.segs) == 0 {
		l.mu.Lock()
		err := l.rotateLocked()
		l.mu.Unlock()
		if err != nil {
			return nil, stats, err
		}
	} else if tail := l.segs[len(l.segs)-1]; tail.bytes < segHeaderLen {
		// The tail lost even its header (crash during rotation, or a
		// corrupt header truncated to zero): rewrite it in place. Its
		// records (if any) were unreadable, so its base is the last
		// recovered LSN.
		f, err := createSegment(tail.path, tail.index, lsn)
		if err != nil {
			return nil, stats, err
		}
		l.f = f
		l.segOff = segHeaderLen
		l.segs[len(l.segs)-1].bytes = segHeaderLen
	} else {
		f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, stats, err
		}
		off, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, stats, err
		}
		l.f = f
		l.segOff = off
	}

	if stats.Truncated != "" && opts.Logger != nil {
		opts.Logger.Warn("wal recovery truncated log",
			"at", stats.Truncated, "torn_tail", stats.TornTail,
			"dropped_bytes", stats.DroppedBytes, "dropped_segments", stats.DroppedSegments)
	}
	if opts.Logger != nil {
		opts.Logger.Info("wal recovered",
			"segments", stats.Segments, "records", stats.Records,
			"rows", stats.Rows, "updates", stats.Updates,
			"torn_tail", stats.TornTail, "elapsed", stats.Elapsed)
	}

	reg.Counter("adskip_wal_recoveries_total", "WAL replay passes completed.").Inc()
	reg.Counter("adskip_wal_recovered_records_total", "Records replayed across recoveries.").Add(int64(stats.Records))
	if stats.TornTail {
		reg.Counter("adskip_wal_torn_tails_total", "Recoveries that truncated a torn tail.").Inc()
	}

	l.wg.Add(1)
	go l.run()
	return l, stats, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// listSegments scans dir for data segments (ordered by index, header
// verified) and spare files.
func listSegments(dir string) ([]segInfo, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs []segInfo
	var spares []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		full := filepath.Join(dir, name)
		var idx uint64
		switch {
		case len(name) == 12 && name[8:] == ".wal" && parseIndex(name[:8], &idx):
			info, err := e.Info()
			if err != nil {
				return nil, nil, err
			}
			segs = append(segs, segInfo{index: idx, path: full, bytes: info.Size()})
		case len(name) > 6 && name[:6] == "spare-":
			spares = append(spares, full)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, spares, nil
}

func parseIndex(s string, out *uint64) bool {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	*out = v
	return true
}

// replaySegment reads one segment's records through the replay callback.
// It returns the segment's base LSN (valid only when the returned offset
// is past the header), the number of records replayed, the offset of the
// first bad byte and a human-readable reason when the segment ends in a
// torn or corrupt record ("" for a clean tail), and a hard error only for
// I/O or replay-callback failures. expectBase is the LSN the caller has
// recovered so far; a header whose base disagrees means the log skips or
// repeats records and is treated as corruption at offset 0. expectBase < 0
// (first surviving segment) accepts any base.
func replaySegment(s *segInfo, maxRecord int, expectBase int64, replay func(*Record) error, stats *RecoveryStats) (uint64, uint64, int64, string, error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return 0, 0, 0, "", err
	}
	if len(data) < segHeaderLen {
		return 0, 0, 0, fmt.Sprintf("short header (%d bytes)", len(data)), nil
	}
	if [8]byte(data[:8]) != segMagic {
		return 0, 0, 0, "bad segment magic", nil
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != s.index {
		return 0, 0, 0, fmt.Sprintf("header index %d, filename says %d", got, s.index), nil
	}
	base := binary.LittleEndian.Uint64(data[16:24])
	if expectBase >= 0 && base != uint64(expectBase) {
		return 0, 0, 0, fmt.Sprintf("header base LSN %d, want %d", base, expectBase), nil
	}
	var n uint64
	off := int64(segHeaderLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return base, n, off, "", nil // clean tail
		}
		if len(rest) < frameLen {
			return base, n, off, fmt.Sprintf("torn frame header (%d bytes)", len(rest)), nil
		}
		plen := int(binary.LittleEndian.Uint32(rest[:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen == 0 || plen > maxRecord {
			return base, n, off, fmt.Sprintf("implausible record length %d", plen), nil
		}
		if len(rest)-frameLen < plen {
			return base, n, off, fmt.Sprintf("torn record body (%d of %d bytes)", len(rest)-frameLen, plen), nil
		}
		payload := rest[frameLen : frameLen+plen]
		if Checksum(payload) != crc {
			return base, n, off, "checksum mismatch", nil
		}
		rec, err := DecodePayload(payload)
		if err != nil {
			return base, n, off, fmt.Sprintf("undecodable record: %v", err), nil
		}
		if replay != nil {
			if err := replay(rec); err != nil {
				return base, n, off, "", fmt.Errorf("wal: replay record %d of segment %d: %w", n+1, s.index, err)
			}
		}
		switch rec.Kind {
		case KindRows:
			stats.Rows += int64(len(rec.Rows))
		case KindUpdate:
			stats.Updates++
		}
		n++
		off += int64(frameLen + plen)
		stats.Bytes += int64(frameLen + plen)
	}
}
