package wal

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"adskip/internal/faultinject"
	"adskip/internal/obs"
)

// Options configures a Log.
type Options struct {
	// Dir is the segment directory (created if missing). Required.
	Dir string
	// GroupWindow bounds how long an append may linger unsynced waiting
	// for companions to share its fsync. Larger windows amortize fsync
	// over more writers at the cost of commit latency. Default 2ms;
	// negative means sync each batch immediately (no linger).
	GroupWindow time.Duration
	// SegmentBytes is the rotation threshold (soft: a batch never splits
	// across segments). Default 64 MiB, minimum 4 KiB.
	SegmentBytes int64
	// FlushBytes flushes a pending batch early once it exceeds this many
	// bytes, without waiting out the group window. Default 1 MiB.
	FlushBytes int64
	// NoSync skips fsync (group commit still batches writes). For
	// benchmarks isolating fsync cost; provides no crash durability.
	NoSync bool
	// MaxRecordBytes bounds one record payload on both encode and replay.
	// Default DefaultMaxRecordBytes.
	MaxRecordBytes int
	// Metrics receives adskip_wal_* series; nil uses a private registry.
	Metrics *obs.Registry
	// Logger receives recovery and failure events; nil disables logging.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.GroupWindow == 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentBytes < 4<<10 {
		o.SegmentBytes = 4 << 10
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 1 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	return o
}

// segInfo tracks one on-disk segment: its index, path, and the LSN of the
// last record written to it (0 while it has none). Sealed segments whose
// lastLSN falls at or below a Compact horizon become spares.
type segInfo struct {
	index   uint64
	path    string
	lastLSN uint64
	bytes   int64
}

// Commit is a group-commit ticket: Wait blocks until the record it was
// issued for (and everything enqueued before it) is durable, or the log
// has failed.
type Commit struct {
	b   *batch
	lsn uint64
}

// LSN returns the record's log sequence number (1-based).
func (c Commit) LSN() uint64 { return c.lsn }

// Wait blocks until the commit is durable and returns the sync error, if
// any. A zero Commit (no WAL armed) returns nil immediately.
func (c Commit) Wait() error {
	if c.b == nil {
		return nil
	}
	<-c.b.done
	return c.b.err
}

// batch is one group of records that will share an fsync.
type batch struct {
	done chan struct{}
	err  error
}

// Log is a group-commit write-ahead log over rotating segment files.
//
// Appenders encode under their own lock domain, enqueue under a short
// mutex hold, and block on the returned Commit outside any lock; a single
// background committer drains the queue, so any number of concurrent
// writers cost one fsync per group window.
type Log struct {
	opts Options

	mu        sync.Mutex
	f         *os.File
	segs      []segInfo // index order; last is the active segment
	spares    []string  // recycled segment files awaiting reuse
	segOff    int64     // bytes in the active segment (including header)
	pending   []byte    // framed records awaiting write+sync
	pendRecs  int
	pendRows  int64
	firstPend time.Time // when the oldest pending record was enqueued
	cur       *batch
	inflight  *batch // last batch claimed by flush; may not be durable yet
	nextLSN   uint64 // LSN the next append receives
	written   uint64 // last LSN written to the file
	failed    error  // sticky: a sync failure poisons the log
	closed    bool

	synced atomic.Uint64 // last durable LSN

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	m logMetrics
}

type logMetrics struct {
	appends    *obs.Counter
	rows       *obs.Counter
	bytes      *obs.Counter
	syncs      *obs.Counter
	syncErrors *obs.Counter
	rotations  *obs.Counter
	recycled   *obs.Counter
	pendBytes  *obs.Gauge
	lagUS      *obs.Gauge
	commitSec  *obs.Histogram
}

func newLogMetrics(reg *obs.Registry) logMetrics {
	return logMetrics{
		appends:    reg.Counter("adskip_wal_appends_total", "WAL records appended."),
		rows:       reg.Counter("adskip_wal_rows_total", "Rows carried by appended WAL records."),
		bytes:      reg.Counter("adskip_wal_bytes_total", "Framed bytes appended to the WAL."),
		syncs:      reg.Counter("adskip_wal_syncs_total", "Group-commit fsync batches."),
		syncErrors: reg.Counter("adskip_wal_sync_errors_total", "Failed WAL write/fsync batches."),
		rotations:  reg.Counter("adskip_wal_rotations_total", "Segment rotations."),
		recycled:   reg.Counter("adskip_wal_recycled_total", "Sealed segments recycled for reuse."),
		pendBytes:  reg.Gauge("adskip_wal_pending_bytes", "Framed bytes enqueued but not yet durable."),
		lagUS:      reg.Gauge("adskip_wal_lag_us", "Age of the oldest unsynced record, microseconds."),
		commitSec: reg.Histogram("adskip_wal_commit_seconds", "Group-commit batch durability latency.",
			[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}),
	}
}

// Append encodes rec, assigns it the next LSN, and hands it to the group
// committer. The returned Commit's Wait blocks until the record is
// durable; callers that mutate in-memory state after logging must wait
// before acknowledging. Safe for concurrent use.
func (l *Log) Append(rec *Record) (Commit, error) {
	payload, err := EncodePayload(rec)
	if err != nil {
		return Commit{}, err
	}
	if len(payload) > l.opts.MaxRecordBytes {
		return Commit{}, fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), l.opts.MaxRecordBytes)
	}
	rows := rec.NumRows()

	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return Commit{}, fmt.Errorf("wal: log failed: %w", err)
	}
	if l.closed {
		l.mu.Unlock()
		return Commit{}, fmt.Errorf("wal: log closed")
	}
	lsn := l.nextLSN
	l.nextLSN++
	before := len(l.pending)
	l.pending = appendFrame(l.pending, payload)
	framed := len(l.pending) - before
	if l.pendRecs == 0 {
		l.firstPend = time.Now()
	}
	l.pendRecs++
	l.pendRows += int64(rows)
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	c := Commit{b: l.cur, lsn: lsn}
	pendBytes := len(l.pending)
	l.mu.Unlock()

	l.m.appends.Inc()
	l.m.rows.Add(int64(rows))
	l.m.bytes.Add(int64(framed))
	l.m.pendBytes.Set(int64(pendBytes))
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return c, nil
}

// Sync forces everything enqueued so far to disk and waits. It is a true
// durability barrier: a batch the committer has already claimed but not
// yet fsynced (flush clears l.cur before writing) is waited on too.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	cur, inflight := l.cur, l.inflight
	l.mu.Unlock()
	if cur != nil {
		// The committer is single-threaded, so the open batch completing
		// implies every earlier claimed batch completed first.
		select {
		case l.kick <- struct{}{}:
		default:
		}
		return Commit{b: cur}.Wait()
	}
	if inflight != nil {
		return Commit{b: inflight}.Wait()
	}
	return nil
}

// SyncedLSN returns the last durable LSN.
func (l *Log) SyncedLSN() uint64 { return l.synced.Load() }

// Lag returns how long the oldest unsynced record has been waiting
// (zero when everything enqueued is durable).
func (l *Log) Lag() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pendRecs == 0 {
		return 0
	}
	return time.Since(l.firstPend)
}

// Status is a point-in-time view of the log, for health and tests.
type Status struct {
	NextLSN        uint64        `json:"next_lsn"`
	SyncedLSN      uint64        `json:"synced_lsn"`
	Segments       int           `json:"segments"`
	SegmentIndex   uint64        `json:"segment_index"`
	SegmentBytes   int64         `json:"segment_bytes"`
	PendingBytes   int           `json:"pending_bytes"`
	PendingRecords int           `json:"pending_records"`
	Spares         int           `json:"spares"`
	Lag            time.Duration `json:"lag_ns"`
	Failed         bool          `json:"failed"`
}

// Status reports the log's current state.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		NextLSN:        l.nextLSN,
		SyncedLSN:      l.synced.Load(),
		Segments:       len(l.segs),
		SegmentBytes:   l.segOff,
		PendingBytes:   len(l.pending),
		PendingRecords: l.pendRecs,
		Spares:         len(l.spares),
		Failed:         l.failed != nil,
	}
	if len(l.segs) > 0 {
		st.SegmentIndex = l.segs[len(l.segs)-1].index
	}
	if l.pendRecs > 0 {
		st.Lag = time.Since(l.firstPend)
	}
	return st
}

// Compact recycles sealed segments whose every record has LSN <=
// throughLSN: the caller asserts those records are captured elsewhere
// (e.g. a table snapshot), so replay no longer needs them. Recycled files
// are truncated and parked on a spare list that rotation reuses, keeping
// steady-state disk usage and file churn bounded. LSNs are stable across
// restarts (each segment header records its base LSN), so a horizon
// captured before a crash still names the same records after recovery.
// Returns how many segments were recycled.
func (l *Log) Compact(throughLSN uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	var ferr error
	for len(l.segs) > 1 { // never recycle the active segment
		s := l.segs[0]
		if s.lastLSN == 0 || s.lastLSN > throughLSN {
			break
		}
		// Rename before truncating: rename is atomic, so no crash point
		// leaves an empty file under a numbered segment name — which the
		// next Open would read as mid-log corruption and discard every
		// record after it. Stale bytes in the spare are harmless; rotation
		// O_TRUNCs spares on reuse, and the truncate here just returns the
		// disk space early.
		spare := filepath.Join(l.opts.Dir, fmt.Sprintf("spare-%08d.wal", s.index))
		if ferr = os.Rename(s.path, spare); ferr != nil {
			break
		}
		l.segs = l.segs[1:]
		l.spares = append(l.spares, spare)
		n++
		if ferr = os.Truncate(spare, 0); ferr != nil {
			break
		}
	}
	if n > 0 {
		// Make the renames durable before reporting the segments recycled;
		// a throughLSN horizon implies the caller may now drop whatever
		// else covered these records.
		if serr := syncDir(l.opts.Dir); serr != nil && ferr == nil {
			ferr = serr
		}
		l.m.recycled.Add(int64(n))
		if l.opts.Logger != nil {
			l.opts.Logger.Info("wal segments recycled", "count", n, "through_lsn", throughLSN)
		}
	}
	return n, ferr
}

// Close flushes pending records, fsyncs, and releases the committer
// goroutine and file handle. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.f != nil {
		err = l.f.Close()
		l.f = nil
	}
	if l.failed != nil {
		return l.failed
	}
	return err
}

// run is the group committer: it wakes on the first append of a batch,
// lingers up to GroupWindow so concurrent writers pile on, then writes
// and fsyncs the whole batch at once.
func (l *Log) run() {
	defer l.wg.Done()
	for {
		select {
		case <-l.quit:
			l.flush() // final drain so Close loses nothing
			return
		case <-l.kick:
		}
		if w := l.opts.GroupWindow; w > 0 {
			l.mu.Lock()
			first, n := l.firstPend, len(l.pending)
			l.mu.Unlock()
			if n > 0 && int64(n) < l.opts.FlushBytes {
				if d := w - time.Since(first); d > 0 {
					select {
					case <-time.After(d):
					case <-l.quit:
						l.flush()
						return
					}
				}
			}
		}
		l.flush()
	}
}

// flush writes and fsyncs the current pending batch, rotating segments
// first when the active one is over threshold. Only the committer
// goroutine calls it (plus the final drain), so file writes are
// single-threaded by construction.
func (l *Log) flush() {
	l.mu.Lock()
	buf, c := l.pending, l.cur
	recs, rows := l.pendRecs, l.pendRows
	batchLSN := l.written + uint64(recs)
	first := l.firstPend
	l.pending = nil
	l.cur = nil
	l.pendRecs = 0
	l.pendRows = 0
	if c != nil {
		l.inflight = c
	}
	if l.failed != nil {
		// A batch enqueued while a previous flush was failing must not be
		// written: bytes before it may be lost, and a later successful
		// fsync would acknowledge records sitting past the hole. Drain it
		// with the sticky error instead.
		err := l.failed
		l.mu.Unlock()
		l.m.pendBytes.Set(0)
		l.finish(c, err, first, recs, rows)
		return
	}
	if len(buf) > 0 && l.segOff > segHeaderLen && l.segOff+int64(len(buf)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failLocked(err)
			l.mu.Unlock()
			l.finish(c, err, first, recs, rows)
			return
		}
	}
	f := l.f
	l.mu.Unlock()
	if len(buf) == 0 {
		l.finish(c, nil, first, 0, 0)
		return
	}

	faultinject.Crash(faultinject.CrashWALBeforeWrite)
	if faultinject.Fire(faultinject.CrashWALTornWrite) {
		// Land all but the last few bytes of the batch on disk, then die.
		// A complete frame is at least frameLen bytes, so stopping 7 bytes
		// short always leaves the final record torn; recovery must truncate
		// it without losing the records before it.
		cut := len(buf) - 7
		if cut < 0 {
			cut = 0
		}
		_, _ = f.Write(buf[:cut])
		_ = f.Sync()
		faultinject.Kill()
	}
	_, err := f.Write(buf)
	faultinject.Crash(faultinject.CrashWALAfterWrite)
	if err == nil && !l.opts.NoSync {
		err = f.Sync()
	}
	if err == nil && faultinject.Fire(faultinject.WALSyncErr) {
		err = fmt.Errorf("wal: fsync: %w", faultinject.ErrInjected)
	}
	faultinject.Crash(faultinject.CrashWALAfterSync)

	l.mu.Lock()
	if err != nil {
		l.failLocked(err)
	} else {
		l.written = batchLSN
		l.segOff += int64(len(buf))
		if len(l.segs) > 0 {
			l.segs[len(l.segs)-1].lastLSN = batchLSN
			l.segs[len(l.segs)-1].bytes = l.segOff
		}
		l.synced.Store(batchLSN)
	}
	pendBytes := len(l.pending)
	l.mu.Unlock()
	l.m.pendBytes.Set(int64(pendBytes))
	l.finish(c, err, first, recs, rows)
}

// finish completes a batch's ticket and records commit metrics.
func (l *Log) finish(c *batch, err error, first time.Time, recs int, rows int64) {
	if recs > 0 {
		if err != nil {
			l.m.syncErrors.Inc()
		} else {
			l.m.syncs.Inc()
			l.m.commitSec.Observe(time.Since(first).Seconds())
		}
	}
	if c != nil {
		c.err = err
		close(c.done)
	}
}

// failLocked poisons the log. Caller holds l.mu.
func (l *Log) failLocked(err error) {
	if l.failed == nil {
		l.failed = err
		if l.opts.Logger != nil {
			l.opts.Logger.Error("wal failed; durability lost until restart", "err", err)
		}
	}
}

// rotateLocked seals the active segment and opens the next one, reusing a
// spare file when available. Caller holds l.mu; only the committer
// rotates, and always before writing a batch, so sealed segments end on
// record boundaries.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if !l.opts.NoSync {
			if err := l.f.Sync(); err != nil {
				return err
			}
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	next := uint64(1)
	if len(l.segs) > 0 {
		next = l.segs[len(l.segs)-1].index + 1
	}
	path := segPath(l.opts.Dir, next)
	recycled := false
	if n := len(l.spares); n > 0 {
		spare := l.spares[n-1]
		l.spares = l.spares[:n-1]
		if err := os.Rename(spare, path); err != nil {
			return err
		}
		recycled = true
	}
	// The new segment's base LSN is the last record written before it;
	// rotation happens before a batch's write, so that is l.written.
	f, err := createSegment(path, next, l.written)
	if err != nil {
		return err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segOff = segHeaderLen
	l.segs = append(l.segs, segInfo{index: next, path: path, bytes: segHeaderLen})
	l.m.rotations.Inc()
	if recycled {
		if l.opts.Logger != nil {
			l.opts.Logger.Debug("wal segment rotated onto recycled file", "index", next)
		}
	}
	return nil
}
