package wal

import (
	"encoding/binary"
	"os"
	"strings"
	"testing"
)

// writeLog builds a clean log of n single-row records in dir and returns
// the segment path and the byte offset of each record's frame, so tests
// can tear the file at precise places.
func writeLog(t *testing.T, dir string, n int) (string, []int64) {
	t.Helper()
	l, _ := openT(t, dir, Options{GroupWindow: -1}, nil)
	offs := make([]int64, 0, n)
	off := int64(segHeaderLen)
	for i := 0; i < n; i++ {
		rec := rowsRecord("data", uint64(i), 1)
		payload, err := EncodePayload(rec)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		off += int64(frameLen + len(payload))
		c, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return segPath(dir, 1), offs
}

// TestTornTailTruncation is the table-driven heart of the recovery
// contract: for every way a crash can mangle the tail of a segment,
// replay must keep exactly the intact prefix, truncate the damage, mark
// the tail torn, and leave the log appendable.
func TestTornTailTruncation(t *testing.T) {
	const records = 6
	cases := []struct {
		name string
		// mangle rewrites the segment given the per-record offsets and the
		// file size, returning the expected number of surviving records.
		mangle     func(t *testing.T, path string, offs []int64, size int64) uint64
		wantReason string
	}{
		{
			name: "truncated mid frame header",
			mangle: func(t *testing.T, path string, offs []int64, _ int64) uint64 {
				truncateTo(t, path, offs[4]+3)
				return 4
			},
			wantReason: "torn frame header",
		},
		{
			name: "truncated mid record body",
			mangle: func(t *testing.T, path string, offs []int64, _ int64) uint64 {
				truncateTo(t, path, offs[3]+frameLen+5)
				return 3
			},
			wantReason: "torn record body",
		},
		{
			name: "payload bit flip fails checksum",
			mangle: func(t *testing.T, path string, offs []int64, _ int64) uint64 {
				flipByte(t, path, offs[5]+frameLen+2)
				return 5
			},
			wantReason: "checksum mismatch",
		},
		{
			name: "length prefix zeroed",
			mangle: func(t *testing.T, path string, offs []int64, _ int64) uint64 {
				patchU32(t, path, offs[2], 0)
				return 2
			},
			wantReason: "implausible record length",
		},
		{
			name: "length prefix absurd",
			mangle: func(t *testing.T, path string, offs []int64, _ int64) uint64 {
				patchU32(t, path, offs[2], 1<<31)
				return 2
			},
			wantReason: "implausible record length",
		},
		{
			name: "length stretched past EOF",
			mangle: func(t *testing.T, path string, offs []int64, size int64) uint64 {
				// Claims more bytes than the file holds but under the record
				// cap: must read as a torn body, not an allocation.
				patchU32(t, path, offs[5], uint32(size))
				return 5
			},
			wantReason: "torn record body",
		},
		{
			name: "checksum field flipped",
			mangle: func(t *testing.T, path string, offs []int64, _ int64) uint64 {
				flipByte(t, path, offs[0]+5)
				return 0
			},
			wantReason: "checksum mismatch",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path, offs := writeLog(t, dir, records)
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.mangle(t, path, offs, info.Size())

			var n uint64
			l, stats := openT(t, dir, Options{}, func(*Record) error { n++; return nil })
			if n != want || stats.Records != want {
				t.Fatalf("replayed %d records (stats %d), want %d", n, stats.Records, want)
			}
			if !stats.TornTail || stats.Truncated == "" {
				t.Fatalf("damage not reported: %+v", stats)
			}
			if !strings.Contains(stats.Truncated, tc.wantReason) {
				t.Fatalf("Truncated = %q, want reason %q", stats.Truncated, tc.wantReason)
			}
			if stats.DroppedBytes <= 0 {
				t.Fatalf("no bytes dropped: %+v", stats)
			}
			// The file is physically truncated at the damage point: a second
			// replay is clean. offs[want] is the first bad record's frame
			// offset — exactly where the good prefix ends.
			wantOff := offs[want]
			if info, err := os.Stat(path); err != nil || info.Size() != wantOff {
				t.Fatalf("file size %d after truncation, want %d (err %v)", info.Size(), wantOff, err)
			}
			// The log stays appendable and the append survives reopen.
			c, err := l.Append(rowsRecord("data", uint64(want), 1))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Wait(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			var n2 uint64
			l2, stats2 := openT(t, dir, Options{}, func(*Record) error { n2++; return nil })
			defer l2.Close()
			if stats2.TornTail || n2 != want+1 {
				t.Fatalf("second replay: %+v (%d records), want clean %d", stats2, n2, want+1)
			}
		})
	}
}

// TestMidLogCorruptionDropsLaterSegments: damage in a non-final segment
// orphans everything after it — the later segments are recycled, not
// replayed, because their BaseRow chain has a hole.
func TestMidLogCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 1, GroupWindow: -1}, nil)
	for i := 0; i < 40; i++ {
		c, err := l.Append(rowsRecord("data", uint64(i*8), 8))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	nsegs := l.Status().Segments
	if nsegs < 3 {
		t.Fatalf("need >=3 segments, got %d", nsegs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in segment 2's first record payload.
	flipByte(t, segPath(dir, 2), segHeaderLen+frameLen+3)

	var n uint64
	l2, stats := openT(t, dir, Options{SegmentBytes: 1}, func(*Record) error { n++; return nil })
	defer l2.Close()
	if stats.TornTail {
		t.Fatalf("mid-log damage misreported as torn tail: %+v", stats)
	}
	if stats.DroppedSegments != nsegs-2 {
		t.Fatalf("dropped %d segments, want %d: %+v", stats.DroppedSegments, nsegs-2, stats)
	}
	if n != stats.Records || n == 0 || n >= 40 {
		t.Fatalf("replayed %d records, want the intact prefix only", n)
	}
	// Dropped segments became spares; the log keeps the surviving prefix
	// plus the reopened tail and stays appendable.
	st := l2.Status()
	if st.Spares != nsegs-2 {
		t.Fatalf("orphaned segments not recycled: %+v", st)
	}
	c, err := l2.Append(rowsRecord("data", uint64(n*8), 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestBadSegmentHeader: a segment whose header is mangled contributes
// nothing and is rewritten in place when it is the tail.
func TestBadSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeLog(t, dir, 3)
	flipByte(t, path, 2) // magic byte

	var n uint64
	l, stats := openT(t, dir, Options{}, func(*Record) error { n++; return nil })
	defer l.Close()
	if n != 0 || stats.Records != 0 {
		t.Fatalf("replayed %d records from a bad-magic segment", n)
	}
	if !strings.Contains(stats.Truncated, "bad segment magic") {
		t.Fatalf("Truncated = %q", stats.Truncated)
	}
	// The rewritten tail must accept appends.
	c, err := l.Append(rowsRecord("data", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func truncateTo(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func patchU32(t *testing.T, path string, off int64, v uint32) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
