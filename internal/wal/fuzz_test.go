package wal

import (
	"encoding/binary"
	"os"
	"testing"

	"adskip/internal/storage"
)

// fuzzSeedSegment renders a small valid segment image (header + a few
// framed records) the fuzzer mutates from.
func fuzzSeedSegment() []byte {
	b := append([]byte(nil), segMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, 1) // segment index
	b = binary.LittleEndian.AppendUint64(b, 0) // base LSN
	for i := 0; i < 3; i++ {
		rec := &Record{
			Kind: KindRows, Table: "data", BaseRow: uint64(i * 2),
			Types: []storage.Type{storage.Int64, storage.String},
			Rows: [][]storage.Value{
				{storage.IntValue(int64(i)), storage.StringValue("ab")},
				{storage.NullValue(storage.Int64), storage.NullValue(storage.String)},
			},
		}
		payload, err := EncodePayload(rec)
		if err != nil {
			panic(err)
		}
		b = appendFrame(b, payload)
	}
	upd, err := EncodePayload(&Record{
		Kind: KindUpdate, Table: "data", Col: "v", Row: 1, Value: storage.IntValue(9),
	})
	if err != nil {
		panic(err)
	}
	return appendFrame(b, upd)
}

// FuzzReplay feeds arbitrary bytes to segment replay. The contract under
// fuzz: never panic, never replay a record whose checksum or structure is
// bad (every record that reaches the callback re-encodes to a payload
// matching its claimed checksum), and always leave an appendable log.
func FuzzReplay(f *testing.F) {
	seed := fuzzSeedSegment()
	f.Add(seed)
	f.Add(seed[:segHeaderLen])
	f.Add([]byte{})
	f.Add(seed[:len(seed)-3])
	// A few deterministic mutations as extra seeds.
	for _, off := range []int{0, 9, segHeaderLen, segHeaderLen + 4, len(seed) / 2} {
		m := append([]byte(nil), seed...)
		m[off] ^= 0xFF
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // keep per-case replay cost bounded
		}
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var replayed int
		l, stats, err := Open(Options{Dir: dir, MaxRecordBytes: 1 << 20}, func(rec *Record) error {
			replayed++
			// Anything replayed must be internally consistent: it re-encodes.
			if _, err := EncodePayload(rec); err != nil {
				t.Fatalf("replayed record does not re-encode: %v", err)
			}
			return nil
		})
		if err != nil {
			// Open fails hard only on real I/O errors, which a byte-slice
			// input cannot cause here.
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		if uint64(replayed) != stats.Records {
			t.Fatalf("callback saw %d records, stats say %d", replayed, stats.Records)
		}
		// Whatever the damage, the recovered log accepts a durable append.
		c, err := l.Append(&Record{
			Kind: KindRows, Table: "data", BaseRow: 0,
			Types: []storage.Type{storage.Int64},
			Rows:  [][]storage.Value{{storage.IntValue(1)}},
		})
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("commit after recovery: %v", err)
		}
	})
}
