// Package dict implements order-preserving dictionary encoding for string
// columns.
//
// A main-memory column store stores string columns as fixed-width integer
// codes plus a dictionary. For data skipping to work on string predicates,
// the encoding must be order-preserving: code(a) < code(b) iff a < b. This
// package provides both a mutable builder (codes assigned in insertion
// order, not order-preserving) and a sealed, order-preserving dictionary
// produced by Seal, which remaps codes so that zonemap min/max pruning on
// codes is sound for string range predicates.
package dict

import (
	"errors"
	"sort"
)

// ErrSealed is returned when inserting into a sealed dictionary.
var ErrSealed = errors.New("dict: dictionary is sealed")

// Dict maps strings to dense int64 codes and back.
type Dict struct {
	byStr  map[string]int64
	byCode []string
	sealed bool
	sorted bool // codes are in lexicographic order of values
}

// New returns an empty, unsealed dictionary.
func New() *Dict {
	return &Dict{byStr: make(map[string]int64)}
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.byCode) }

// Sealed reports whether the dictionary is sealed (immutable,
// order-preserving).
func (d *Dict) Sealed() bool { return d.sealed }

// Insert returns the code for s, adding it if absent. Insertion-order codes
// are NOT order-preserving until Seal is called.
func (d *Dict) Insert(s string) (int64, error) {
	if c, ok := d.byStr[s]; ok {
		return c, nil
	}
	if d.sealed {
		return 0, ErrSealed
	}
	c := int64(len(d.byCode))
	d.byStr[s] = c
	d.byCode = append(d.byCode, s)
	d.sorted = false
	return c, nil
}

// Code returns the code for s and whether it is present.
func (d *Dict) Code(s string) (int64, bool) {
	c, ok := d.byStr[s]
	return c, ok
}

// Value returns the string for code c. Panics on out-of-range codes, which
// indicate a corrupted column.
func (d *Dict) Value(c int64) string { return d.byCode[c] }

// Seal sorts the dictionary lexicographically, reassigns codes in sorted
// order, and returns a remap slice such that remap[oldCode] = newCode.
// After Seal the dictionary is immutable and order-preserving; callers must
// rewrite existing column codes through the remap. Sealing a sealed
// dictionary returns an identity remap.
func (d *Dict) Seal() []int64 {
	remap := make([]int64, len(d.byCode))
	if d.sealed || d.sorted {
		for i := range remap {
			remap[i] = int64(i)
		}
		d.sealed = true
		d.sorted = true
		return remap
	}
	type pair struct {
		s   string
		old int64
	}
	pairs := make([]pair, len(d.byCode))
	for i, s := range d.byCode {
		pairs[i] = pair{s, int64(i)}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s < pairs[j].s })
	for newCode, p := range pairs {
		remap[p.old] = int64(newCode)
		d.byCode[newCode] = p.s
		d.byStr[p.s] = int64(newCode)
	}
	d.sealed = true
	d.sorted = true
	return remap
}

// LowerBound returns the smallest code whose value is >= s, i.e. the
// position s would occupy. Valid only on sealed (sorted) dictionaries;
// returns Len() if every value is < s. This converts string range
// predicates into code range predicates.
func (d *Dict) LowerBound(s string) int64 {
	if !d.sorted {
		panic("dict: LowerBound on unsealed dictionary")
	}
	return int64(sort.SearchStrings(d.byCode, s))
}

// UpperBound returns the smallest code whose value is > s. Valid only on
// sealed dictionaries.
func (d *Dict) UpperBound(s string) int64 {
	if !d.sorted {
		panic("dict: UpperBound on unsealed dictionary")
	}
	return int64(sort.Search(len(d.byCode), func(i int) bool { return d.byCode[i] > s }))
}

// Values returns the dictionary values in code order. The slice aliases
// internal storage; callers must not mutate it.
func (d *Dict) Values() []string { return d.byCode }
