package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAndLookup(t *testing.T) {
	d := New()
	c1, err := d.Insert("banana")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.Insert("apple")
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("distinct values share a code")
	}
	again, err := d.Insert("banana")
	if err != nil || again != c1 {
		t.Fatalf("re-insert gave %d want %d", again, c1)
	}
	if d.Len() != 2 {
		t.Fatalf("Len=%d want 2", d.Len())
	}
	if got := d.Value(c2); got != "apple" {
		t.Fatalf("Value(%d)=%q want apple", c2, got)
	}
	if _, ok := d.Code("cherry"); ok {
		t.Fatal("Code found absent value")
	}
}

func TestSealOrderPreserving(t *testing.T) {
	d := New()
	words := []string{"pear", "apple", "zebra", "mango", "apple", "banana"}
	oldCodes := make(map[string]int64)
	for _, w := range words {
		c, err := d.Insert(w)
		if err != nil {
			t.Fatal(err)
		}
		oldCodes[w] = c
	}
	remap := d.Seal()
	if !d.Sealed() {
		t.Fatal("not sealed after Seal")
	}
	// Order preservation: for any two values, code order == string order.
	uniq := []string{"apple", "banana", "mango", "pear", "zebra"}
	for i := 0; i < len(uniq); i++ {
		for j := 0; j < len(uniq); j++ {
			ci, _ := d.Code(uniq[i])
			cj, _ := d.Code(uniq[j])
			if (uniq[i] < uniq[j]) != (ci < cj) {
				t.Fatalf("order not preserved: %q=%d %q=%d", uniq[i], ci, uniq[j], cj)
			}
		}
	}
	// Remap consistency: remap[old] must be the new code of the same value.
	for w, old := range oldCodes {
		newC, _ := d.Code(w)
		if remap[old] != newC {
			t.Fatalf("remap[%d]=%d but Code(%q)=%d", old, remap[old], w, newC)
		}
		if d.Value(newC) != w {
			t.Fatalf("Value(remap) = %q want %q", d.Value(newC), w)
		}
	}
}

func TestInsertAfterSeal(t *testing.T) {
	d := New()
	if _, err := d.Insert("a"); err != nil {
		t.Fatal(err)
	}
	d.Seal()
	if _, err := d.Insert("b"); err != ErrSealed {
		t.Fatalf("insert after seal: err=%v want ErrSealed", err)
	}
	// Re-inserting an existing value is still fine (lookup path).
	if c, err := d.Insert("a"); err != nil || c != 0 {
		t.Fatalf("lookup-insert after seal: c=%d err=%v", c, err)
	}
}

func TestSealIdempotent(t *testing.T) {
	d := New()
	d.Insert("b")
	d.Insert("a")
	d.Seal()
	remap := d.Seal()
	for i, m := range remap {
		if m != int64(i) {
			t.Fatalf("second Seal remap not identity: %v", remap)
		}
	}
}

func TestBounds(t *testing.T) {
	d := New()
	for _, w := range []string{"d", "b", "f"} {
		d.Insert(w)
	}
	d.Seal() // codes: b=0 d=1 f=2
	cases := []struct {
		s     string
		lower int64
		upper int64
	}{
		{"a", 0, 0},
		{"b", 0, 1},
		{"c", 1, 1},
		{"d", 1, 2},
		{"e", 2, 2},
		{"f", 2, 3},
		{"g", 3, 3},
	}
	for _, c := range cases {
		if got := d.LowerBound(c.s); got != c.lower {
			t.Fatalf("LowerBound(%q)=%d want %d", c.s, got, c.lower)
		}
		if got := d.UpperBound(c.s); got != c.upper {
			t.Fatalf("UpperBound(%q)=%d want %d", c.s, got, c.upper)
		}
	}
}

func TestBoundsUnsealedPanics(t *testing.T) {
	d := New()
	d.Insert("x")
	defer func() {
		if recover() == nil {
			t.Fatal("LowerBound on unsealed dict did not panic")
		}
	}()
	d.LowerBound("x")
}

// Property: after sealing a random dictionary, codes sort exactly like
// values, and remapped codes round-trip through Value.
func TestQuickSealProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		n := 1 + rng.Intn(200)
		vals := make([]string, n)
		olds := make([]int64, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("w%04d", rng.Intn(100))
			c, err := d.Insert(vals[i])
			if err != nil {
				return false
			}
			olds[i] = c
		}
		remap := d.Seal()
		for i := range vals {
			if d.Value(remap[olds[i]]) != vals[i] {
				return false
			}
		}
		codes := d.Values()
		return sort.StringsAreSorted(codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
