// Package storage implements the in-memory columnar storage engine.
//
// Every column, regardless of logical type, is physically a vector of int64
// "codes" with an order-preserving encoding:
//
//   - Int64 columns store values directly.
//   - Float64 columns store a monotone bijection of the float's bit pattern
//     (sign-magnitude flip), so numeric order equals code order.
//   - String columns store dictionary codes from an order-preserving
//     (sealed) dictionary.
//
// Because code order always equals value order, a single integer scan
// kernel and a single zonemap implementation serve all types, mirroring how
// main-memory column stores normalize storage for fast scans.
package storage

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Type is the logical type of a column.
type Type uint8

const (
	// Int64 is a signed 64-bit integer column.
	Int64 Type = iota
	// Float64 is a 64-bit floating-point column.
	Float64
	// String is a dictionary-encoded string column.
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// EncodeFloat64 maps f to an int64 such that for all a, b:
// a < b  <=>  EncodeFloat64(a) < EncodeFloat64(b)  (with -0 == +0 collapsing
// to the same code and NaN excluded — callers must reject NaN).
func EncodeFloat64(f float64) int64 {
	if f == 0 {
		f = 0 // collapse -0 to +0
	}
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u // negative: flip all bits
	} else {
		u |= 1 << 63 // positive: flip sign bit
	}
	return int64(u - (1 << 63)) // recentre so code order == signed int64 order
}

// DecodeFloat64 inverts EncodeFloat64.
func DecodeFloat64(c int64) float64 {
	u := uint64(c) + (1 << 63)
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// Value is a dynamically typed cell value used at API boundaries (ingest,
// result materialization, SQL literals). Scans never allocate Values.
type Value struct {
	typ  Type
	null bool
	i    int64
	f    float64
	s    string
}

// NullValue returns a NULL of the given type.
func NullValue(t Type) Value { return Value{typ: t, null: true} }

// IntValue returns an Int64 value.
func IntValue(v int64) Value { return Value{typ: Int64, i: v} }

// FloatValue returns a Float64 value.
func FloatValue(v float64) Value { return Value{typ: Float64, f: v} }

// StringValue returns a String value.
func StringValue(v string) Value { return Value{typ: String, s: v} }

// Type returns the value's logical type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.null }

// Int returns the int64 payload; valid only when Type()==Int64 and not null.
func (v Value) Int() int64 { return v.i }

// Float returns the float64 payload; valid only when Type()==Float64.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only when Type()==String.
func (v Value) Str() string { return v.s }

// String renders the value for display.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.typ {
	case Int64:
		return fmt.Sprintf("%d", v.i)
	case Float64:
		return fmt.Sprintf("%g", v.f)
	case String:
		return v.s
	default:
		return "?"
	}
}

// MarshalJSON renders the value as its natural JSON form: NULL as null,
// Int64 as an integer, Float64 as a number (non-finite floats, which SQL
// cannot produce but defensive callers may, collapse to null), String as
// a JSON string. This is the cell encoding of the engine's wire format,
// so it must stay stable.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.null {
		return []byte("null"), nil
	}
	switch v.typ {
	case Int64:
		return strconv.AppendInt(nil, v.i, 10), nil
	case Float64:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return []byte("null"), nil
		}
		return json.Marshal(v.f)
	case String:
		return json.Marshal(v.s)
	default:
		return nil, fmt.Errorf("storage: cannot marshal value of type %d", v.typ)
	}
}

// Equal reports deep equality of two values (NULL equals NULL here; SQL
// three-valued logic lives in the predicate layer, not in Value).
func (v Value) Equal(o Value) bool {
	if v.typ != o.typ || v.null != o.null {
		return false
	}
	if v.null {
		return true
	}
	switch v.typ {
	case Int64:
		return v.i == o.i
	case Float64:
		return v.f == o.f
	case String:
		return v.s == o.s
	}
	return false
}
