package storage

import (
	"errors"
	"fmt"
	"math"

	"adskip/internal/bitvec"
	"adskip/internal/dict"
)

// Common column errors.
var (
	ErrTypeMismatch = errors.New("storage: value type does not match column type")
	ErrNaN          = errors.New("storage: NaN is not storable (no total order)")
)

// Column is a typed, append-only column vector. The physical representation
// is always []int64 codes in value order (see package doc); logical type
// only affects encode/decode at the boundary.
//
// A Column is not safe for concurrent mutation; concurrent reads are safe.
type Column struct {
	name  string
	typ   Type
	codes []int64
	nulls *bitvec.BitVec // lazily allocated; set bit = NULL at that row
	nNull int
	dict  *dict.Dict // non-nil iff typ == String
}

// NewColumn returns an empty column of the given logical type.
func NewColumn(name string, typ Type) *Column {
	c := &Column{name: name, typ: typ}
	if typ == String {
		c.dict = dict.New()
	}
	return c
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Type returns the column's logical type.
func (c *Column) Type() Type { return c.typ }

// Len returns the number of rows.
func (c *Column) Len() int { return len(c.codes) }

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int { return c.nNull }

// Codes exposes the physical code vector for scan kernels and metadata
// builders. The slice aliases column storage: callers must treat it as
// read-only and must not retain it across appends.
func (c *Column) Codes() []int64 { return c.codes }

// Dict returns the string dictionary, or nil for non-string columns.
func (c *Column) Dict() *dict.Dict { return c.dict }

// HasNulls reports whether any row is NULL.
func (c *Column) HasNulls() bool { return c.nNull > 0 }

// Nulls returns the null bitmap (set bit = NULL), or nil when the column
// has no NULLs. Read-only.
func (c *Column) Nulls() *bitvec.BitVec {
	if c.nNull == 0 {
		return nil
	}
	return c.nulls
}

// IsNull reports whether row i is NULL.
func (c *Column) IsNull(i int) bool {
	return c.nulls != nil && i < c.nulls.Len() && c.nulls.Get(i)
}

// AppendInt appends an int64; the column must be Int64.
func (c *Column) AppendInt(v int64) error {
	if c.typ != Int64 {
		return fmt.Errorf("%w: AppendInt on %s column %q", ErrTypeMismatch, c.typ, c.name)
	}
	c.codes = append(c.codes, v)
	c.growNulls(len(c.codes))
	return nil
}

// AppendFloat appends a float64; the column must be Float64. NaN is
// rejected because it has no position in the total order that data
// skipping relies on.
func (c *Column) AppendFloat(v float64) error {
	if c.typ != Float64 {
		return fmt.Errorf("%w: AppendFloat on %s column %q", ErrTypeMismatch, c.typ, c.name)
	}
	if math.IsNaN(v) {
		return ErrNaN
	}
	c.codes = append(c.codes, EncodeFloat64(v))
	c.growNulls(len(c.codes))
	return nil
}

// AppendString appends a string; the column must be String. If the
// dictionary has been sealed and v is unknown, the append fails with
// dict.ErrSealed — callers should Seal only after bulk load, or use
// table-level load paths that seal at snapshot time.
func (c *Column) AppendString(v string) error {
	if c.typ != String {
		return fmt.Errorf("%w: AppendString on %s column %q", ErrTypeMismatch, c.typ, c.name)
	}
	code, err := c.dict.Insert(v)
	if err != nil {
		return err
	}
	c.codes = append(c.codes, code)
	c.growNulls(len(c.codes))
	return nil
}

// AppendNull appends a NULL row. The physical code slot holds the minimum
// int64 so that metadata builders which consult the null bitmap can skip it
// and kernels that forget would at worst over-select (they don't: kernels
// mask nulls).
func (c *Column) AppendNull() {
	row := len(c.codes)
	c.codes = append(c.codes, math.MinInt64)
	if c.nulls == nil {
		c.nulls = bitvec.New(0)
	}
	c.growNulls(row + 1)
	c.nulls.Set(row)
	c.nNull++
}

// AppendValue appends a dynamically typed value.
func (c *Column) AppendValue(v Value) error {
	if v.IsNull() {
		c.AppendNull()
		return nil
	}
	if v.Type() != c.typ {
		return fmt.Errorf("%w: %s value into %s column %q", ErrTypeMismatch, v.Type(), c.typ, c.name)
	}
	switch c.typ {
	case Int64:
		return c.AppendInt(v.Int())
	case Float64:
		return c.AppendFloat(v.Float())
	case String:
		return c.AppendString(v.Str())
	}
	return fmt.Errorf("storage: unknown column type %v", c.typ)
}

// SetInt overwrites row i with v (Int64 columns). Used by the update path;
// the caller (engine) is responsible for informing skippers so zone bounds
// stay sound.
func (c *Column) SetInt(i int, v int64) error {
	if c.typ != Int64 {
		return fmt.Errorf("%w: SetInt on %s column %q", ErrTypeMismatch, c.typ, c.name)
	}
	c.clearNull(i)
	c.codes[i] = v
	return nil
}

// SetFloat overwrites row i with v (Float64 columns).
func (c *Column) SetFloat(i int, v float64) error {
	if c.typ != Float64 {
		return fmt.Errorf("%w: SetFloat on %s column %q", ErrTypeMismatch, c.typ, c.name)
	}
	if math.IsNaN(v) {
		return ErrNaN
	}
	c.clearNull(i)
	c.codes[i] = EncodeFloat64(v)
	return nil
}

// Value materializes row i as a dynamic Value.
func (c *Column) Value(i int) Value {
	if c.IsNull(i) {
		return NullValue(c.typ)
	}
	code := c.codes[i]
	switch c.typ {
	case Int64:
		return IntValue(code)
	case Float64:
		return FloatValue(DecodeFloat64(code))
	case String:
		return StringValue(c.dict.Value(code))
	}
	panic("storage: unknown column type")
}

// EncodeValue converts a non-null dynamic value of the column's type into
// its physical code, without appending. For strings it requires the value
// to already exist in the dictionary (comma-ok semantics): absent strings
// return ok=false, which predicate planners use to recognize trivially
// empty EQ predicates and to clamp range bounds.
func (c *Column) EncodeValue(v Value) (code int64, ok bool, err error) {
	if v.IsNull() {
		return 0, false, errors.New("storage: cannot encode NULL")
	}
	if v.Type() != c.typ {
		return 0, false, fmt.Errorf("%w: %s vs column %s", ErrTypeMismatch, v.Type(), c.typ)
	}
	switch c.typ {
	case Int64:
		return v.Int(), true, nil
	case Float64:
		if math.IsNaN(v.Float()) {
			return 0, false, ErrNaN
		}
		return EncodeFloat64(v.Float()), true, nil
	case String:
		code, ok := c.dict.Code(v.Str())
		return code, ok, nil
	}
	return 0, false, fmt.Errorf("storage: unknown column type %v", c.typ)
}

// Truncate removes rows from the end, keeping the first n. Dictionary
// entries of removed strings are retained (harmless: unused codes). Used
// for rolling back partially applied multi-column appends.
func (c *Column) Truncate(n int) {
	if n < 0 || n > len(c.codes) {
		panic(fmt.Sprintf("storage: Truncate(%d) out of range for %d rows", n, len(c.codes)))
	}
	if c.nulls != nil && c.nulls.Len() > n {
		c.nNull -= c.nulls.CountRange(n, c.nulls.Len())
		trimmed := bitvec.New(n)
		for i := 0; i < n; i++ {
			if c.nulls.Get(i) {
				trimmed.Set(i)
			}
		}
		c.nulls = trimmed
	}
	c.codes = c.codes[:n]
}

// SealDict seals a string column's dictionary into order-preserving form,
// rewriting all stored codes through the remap. Returns the remap (or nil
// for non-string columns). After sealing, code order equals string order
// and zonemap pruning on this column is sound for range predicates.
func (c *Column) SealDict() []int64 {
	if c.typ != String || c.dict.Sealed() {
		return nil
	}
	remap := c.dict.Seal()
	for i, code := range c.codes {
		if c.IsNull(i) {
			continue
		}
		c.codes[i] = remap[code]
	}
	return remap
}

// DictSorted reports whether string predicates can be planned as code
// ranges on this column (always true for non-string columns).
func (c *Column) DictSorted() bool {
	return c.typ != String || c.dict.Sealed()
}

// growNulls keeps the null bitmap exactly as long as the column so that
// range operations over the bitmap (zone builders, kernels) never index
// past its end.
func (c *Column) growNulls(n int) {
	if c.nulls == nil {
		return
	}
	c.nulls.Grow(n)
}

func (c *Column) clearNull(i int) {
	if c.nulls != nil && i < c.nulls.Len() && c.nulls.Get(i) {
		c.nulls.Clear(i)
		c.nNull--
	}
}
