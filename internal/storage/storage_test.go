package storage

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"adskip/internal/dict"
)

func TestTypeString(t *testing.T) {
	if Int64.String() != "BIGINT" || Float64.String() != "DOUBLE" || String.String() != "VARCHAR" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type renders empty")
	}
}

func TestEncodeFloat64Order(t *testing.T) {
	vals := []float64{
		math.Inf(-1), -1e308, -42.5, -1, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 0.5, 1, 42.5, 1e308, math.Inf(1),
	}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			ci, cj := EncodeFloat64(vals[i]), EncodeFloat64(vals[j])
			if (vals[i] < vals[j]) != (ci < cj) {
				t.Fatalf("order broken: %g->%d vs %g->%d", vals[i], ci, vals[j], cj)
			}
		}
	}
	if EncodeFloat64(math.Copysign(0, -1)) != EncodeFloat64(0) {
		t.Fatal("-0 and +0 should share a code")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		got := DecodeFloat64(EncodeFloat64(v))
		if v == 0 {
			return got == 0
		}
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatOrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ca, cb := EncodeFloat64(a), EncodeFloat64(b)
		switch {
		case a < b:
			return ca < cb
		case a > b:
			return ca > cb
		default:
			return ca == cb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueBasics(t *testing.T) {
	v := IntValue(7)
	if v.Type() != Int64 || v.Int() != 7 || v.IsNull() || v.String() != "7" {
		t.Fatalf("IntValue wrong: %+v", v)
	}
	n := NullValue(Float64)
	if !n.IsNull() || n.String() != "NULL" {
		t.Fatalf("NullValue wrong: %+v", n)
	}
	if !FloatValue(1.5).Equal(FloatValue(1.5)) || FloatValue(1.5).Equal(FloatValue(2)) {
		t.Fatal("Float Equal wrong")
	}
	if StringValue("a").Equal(IntValue(0)) {
		t.Fatal("cross-type Equal should be false")
	}
	if !NullValue(Int64).Equal(NullValue(Int64)) {
		t.Fatal("NULL should Equal NULL at the Value layer")
	}
	if NullValue(Int64).Equal(IntValue(0)) {
		t.Fatal("NULL should not Equal 0")
	}
	if StringValue("x").String() != "x" || FloatValue(2.5).String() != "2.5" {
		t.Fatal("String rendering wrong")
	}
}

func TestIntColumnAppendAndRead(t *testing.T) {
	c := NewColumn("a", Int64)
	for i := int64(0); i < 10; i++ {
		if err := c.AppendInt(i * 3); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 10 || c.NullCount() != 0 || c.HasNulls() {
		t.Fatalf("Len=%d nulls=%d", c.Len(), c.NullCount())
	}
	if got := c.Value(4); !got.Equal(IntValue(12)) {
		t.Fatalf("Value(4)=%v want 12", got)
	}
	if c.Name() != "a" || c.Type() != Int64 {
		t.Fatal("metadata wrong")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	c := NewColumn("a", Int64)
	if err := c.AppendFloat(1); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("AppendFloat on int col: %v", err)
	}
	if err := c.AppendString("x"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("AppendString on int col: %v", err)
	}
	if err := c.AppendValue(FloatValue(1)); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("AppendValue float on int col: %v", err)
	}
	f := NewColumn("f", Float64)
	if err := f.AppendFloat(math.NaN()); !errors.Is(err, ErrNaN) {
		t.Fatalf("NaN append: %v", err)
	}
	if err := f.SetFloat(0, math.NaN()); !errors.Is(err, ErrNaN) {
		t.Fatalf("NaN set: %v", err)
	}
}

func TestFloatColumnOrderedCodes(t *testing.T) {
	c := NewColumn("f", Float64)
	vals := []float64{3.5, -2, 0, 100, -1e9}
	for _, v := range vals {
		if err := c.AppendFloat(v); err != nil {
			t.Fatal(err)
		}
	}
	codes := c.Codes()
	idx := []int{0, 1, 2, 3, 4}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	for k := 1; k < len(idx); k++ {
		if codes[idx[k-1]] >= codes[idx[k]] {
			t.Fatalf("codes not value-ordered: %v", codes)
		}
	}
	for i, v := range vals {
		if got := c.Value(i); got.Float() != v {
			t.Fatalf("Value(%d)=%v want %g", i, got, v)
		}
	}
}

func TestStringColumnSealRewritesCodes(t *testing.T) {
	c := NewColumn("s", String)
	words := []string{"pear", "apple", "mango", "apple", "zebra"}
	for _, w := range words {
		if err := c.AppendString(w); err != nil {
			t.Fatal(err)
		}
	}
	if c.DictSorted() {
		t.Fatal("unsealed dict reported sorted")
	}
	remap := c.SealDict()
	if remap == nil || !c.DictSorted() {
		t.Fatal("SealDict did not seal")
	}
	for i, w := range words {
		if got := c.Value(i); got.Str() != w {
			t.Fatalf("after seal Value(%d)=%q want %q", i, got.Str(), w)
		}
	}
	// Codes must now be in lexicographic order of the words.
	codes := c.Codes()
	for i := 0; i < len(words); i++ {
		for j := 0; j < len(words); j++ {
			if (words[i] < words[j]) != (codes[i] < codes[j]) {
				t.Fatalf("codes not order-preserving after seal")
			}
		}
	}
	if c.SealDict() != nil {
		t.Fatal("second SealDict should be a no-op returning nil")
	}
	if err := c.AppendString("new-word"); !errors.Is(err, dict.ErrSealed) {
		t.Fatalf("append unknown string after seal: %v", err)
	}
	if err := c.AppendString("apple"); err != nil {
		t.Fatalf("append known string after seal: %v", err)
	}
}

func TestNulls(t *testing.T) {
	c := NewColumn("a", Int64)
	c.AppendInt(1)
	c.AppendNull()
	c.AppendInt(3)
	c.AppendNull()
	if c.Len() != 4 || c.NullCount() != 2 || !c.HasNulls() {
		t.Fatalf("Len=%d NullCount=%d", c.Len(), c.NullCount())
	}
	if c.IsNull(0) || !c.IsNull(1) || c.IsNull(2) || !c.IsNull(3) {
		t.Fatal("null positions wrong")
	}
	if !c.Value(1).IsNull() {
		t.Fatal("Value at null row not NULL")
	}
	nulls := c.Nulls()
	if nulls == nil || nulls.Count() != 2 {
		t.Fatal("Nulls bitmap wrong")
	}
	// Overwriting a null row clears the flag.
	if err := c.SetInt(1, 42); err != nil {
		t.Fatal(err)
	}
	if c.IsNull(1) || c.NullCount() != 1 {
		t.Fatal("SetInt did not clear null")
	}
	if got := c.Value(1); got.Int() != 42 {
		t.Fatalf("Value(1)=%v", got)
	}
}

func TestNullsOnlyColumnBitmapNilWhenNone(t *testing.T) {
	c := NewColumn("a", Int64)
	c.AppendInt(1)
	if c.Nulls() != nil {
		t.Fatal("Nulls should be nil with no NULL rows")
	}
}

func TestAppendValue(t *testing.T) {
	ci := NewColumn("i", Int64)
	cf := NewColumn("f", Float64)
	cs := NewColumn("s", String)
	if err := ci.AppendValue(IntValue(5)); err != nil {
		t.Fatal(err)
	}
	if err := cf.AppendValue(FloatValue(2.5)); err != nil {
		t.Fatal(err)
	}
	if err := cs.AppendValue(StringValue("hi")); err != nil {
		t.Fatal(err)
	}
	if err := ci.AppendValue(NullValue(Int64)); err != nil {
		t.Fatal(err)
	}
	if ci.Len() != 2 || !ci.IsNull(1) {
		t.Fatal("AppendValue null wrong")
	}
	if cs.Value(0).Str() != "hi" {
		t.Fatal("AppendValue string wrong")
	}
}

func TestEncodeValue(t *testing.T) {
	ci := NewColumn("i", Int64)
	code, ok, err := ci.EncodeValue(IntValue(9))
	if err != nil || !ok || code != 9 {
		t.Fatalf("int encode: %d %v %v", code, ok, err)
	}
	if _, _, err := ci.EncodeValue(NullValue(Int64)); err == nil {
		t.Fatal("encoding NULL should error")
	}
	if _, _, err := ci.EncodeValue(StringValue("x")); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("cross-type encode: %v", err)
	}
	cf := NewColumn("f", Float64)
	if _, _, err := cf.EncodeValue(FloatValue(math.NaN())); !errors.Is(err, ErrNaN) {
		t.Fatalf("NaN encode: %v", err)
	}
	cs := NewColumn("s", String)
	cs.AppendString("a")
	if _, ok, err := cs.EncodeValue(StringValue("zzz")); err != nil || ok {
		t.Fatalf("absent string should be ok=false: %v %v", ok, err)
	}
	if code, ok, _ := cs.EncodeValue(StringValue("a")); !ok || code != 0 {
		t.Fatalf("present string: code=%d ok=%v", code, ok)
	}
}

// Property: a column round-trips arbitrary int sequences with interspersed
// nulls.
func TestQuickColumnRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewColumn("x", Int64)
		n := rng.Intn(300)
		ref := make([]*int64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(10) == 0 {
				c.AppendNull()
			} else {
				v := rng.Int63n(1000) - 500
				ref[i] = &v
				if err := c.AppendInt(v); err != nil {
					return false
				}
			}
		}
		if c.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			got := c.Value(i)
			if ref[i] == nil {
				if !got.IsNull() {
					return false
				}
			} else if got.IsNull() || got.Int() != *ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
