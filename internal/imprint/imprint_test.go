package imprint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
	"adskip/internal/zonemap"
)

func seq(n int, f func(i int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func oneRange(lo, hi int64) expr.Ranges {
	return expr.Ranges{Lo: []int64{lo}, Hi: []int64{hi}}
}

func TestBuildBasics(t *testing.T) {
	codes := seq(1000, func(i int) int64 { return int64(i) })
	m := Build(codes, nil, 100)
	if m.NumZones() != 10 || m.Rows() != 1000 || m.ZoneSize() != 100 {
		t.Fatalf("zones=%d rows=%d", m.NumZones(), m.Rows())
	}
	if m.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes")
	}
}

func TestBuildZeroZoneSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(nil, nil, 0)
}

func TestPruneSortedData(t *testing.T) {
	codes := seq(6400, func(i int) int64 { return int64(i) })
	m := Build(codes, nil, 100)
	cands, st := m.Prune(oneRange(1000, 1099), nil)
	if st.RowsSkipped < 6000 {
		t.Fatalf("sorted data should prune hard: %+v", st)
	}
	// All matching rows are inside candidates.
	for _, c := range cands {
		_ = c
	}
	covered := false
	for _, c := range cands {
		if c.Lo <= 1000 && 1100 <= c.Hi {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("candidates %v do not cover matching rows", cands)
	}
}

// The imprint headline: multi-modal zones prune where min/max hulls fail.
func TestPruneMultiModalBeatsHull(t *testing.T) {
	// Rows interleave two modes (values near i and values near 1e6+i), so
	// every zone's min/max hull spans the whole domain — a zonemap prunes
	// nothing for a mid-gap query. The imprint sees each zone occupy two
	// narrow bins and skips almost everything (up to bin-edge
	// quantization at the gap boundary).
	const n = 6400
	codes := seq(n, func(i int) int64 {
		v := int64((i / 2) % 100_000)
		if i%2 == 1 {
			v += 1_000_000
		}
		return v
	})
	gap := oneRange(300_000, 800_000)

	zm := zonemap.Build(codes, nil, 64)
	_, zst := zm.Prune(gap, nil)
	if zst.RowsSkipped != 0 {
		t.Fatalf("hull zonemap unexpectedly pruned the bimodal data: %+v", zst)
	}

	m := Build(codes, nil, 64)
	_, st := m.Prune(gap, nil)
	if st.RowsSkipped < n*9/10 {
		t.Fatalf("imprint should skip >=90%% on mid-gap query: %+v", st)
	}
	// Queries at a mode still scan the zones holding it.
	_, st = m.Prune(oneRange(0, 50), nil)
	if st.RowsSkipped == n {
		t.Fatalf("mode query should scan something: %+v", st)
	}
}

func TestCoveredDetection(t *testing.T) {
	// Constant zones inside a wide predicate are covered.
	codes := seq(1000, func(i int) int64 { return int64(i / 100 * 1000) })
	m := Build(codes, nil, 100)
	cands, st := m.Prune(oneRange(-1, 9001), nil)
	// All but the top zone are provably covered; the last histogram bin
	// extends to +inf, so the top zone stays a conservative scan
	// candidate under any finite upper bound.
	if st.ZonesCovered < 9 {
		t.Fatalf("covered=%d want >=9: %v", st.ZonesCovered, cands)
	}
	if !cands[0].Covered || cands[0].Hi < 900 {
		t.Fatalf("covered run wrong: %v", cands)
	}
}

func TestNullsAndPruneNulls(t *testing.T) {
	codes := make([]int64, 200)
	nulls := bitvec.New(200)
	for i := 0; i < 100; i++ {
		nulls.Set(i)
	}
	for i := 100; i < 200; i++ {
		codes[i] = int64(i)
	}
	m := Build(codes, nulls, 100)
	// All-null zone is skipped for value predicates.
	cands, _ := m.Prune(oneRange(-1<<40, 1<<40), nil)
	if len(cands) != 1 || cands[0].Lo != 100 {
		t.Fatalf("cands=%v", cands)
	}
	// IS NULL: first zone covered, second skipped.
	cands, st := m.PruneNulls(nil)
	if len(cands) != 1 || !cands[0].Covered || cands[0].Hi != 100 {
		t.Fatalf("null cands=%v", cands)
	}
	if st.RowsSkipped != 100 {
		t.Fatalf("st=%+v", st)
	}
}

func TestExtendAndWiden(t *testing.T) {
	codes := seq(150, func(i int) int64 { return int64(i) })
	m := Build(codes[:75], nil, 50)
	m.Extend(codes, nil)
	if m.Rows() != 150 || m.NumZones() != 3 {
		t.Fatalf("rows=%d zones=%d", m.Rows(), m.NumZones())
	}
	// Update row 10 to a huge value: its bin bit must admit it.
	codes[10] = 1 << 40
	m.Widen(10, 1<<40)
	_, st := m.Prune(oneRange(1<<39, 1<<41), nil)
	// Zone 0 must be a candidate now.
	if st.ZonesSkipped == m.NumZones() {
		t.Fatal("widened zone wrongly skipped")
	}
	// NoteNonNull does not panic and bumps the counter.
	m.NoteNonNull(10)
}

func TestAllNullColumn(t *testing.T) {
	codes := make([]int64, 50)
	nulls := bitvec.New(50)
	nulls.SetAll()
	m := Build(codes, nulls, 10)
	cands, st := m.Prune(oneRange(-1, 1), nil)
	if len(cands) != 0 || st.RowsSkipped != 50 {
		t.Fatalf("all-null column: %v %+v", cands, st)
	}
}

// Property: imprint pruning is sound on arbitrary data — every matching
// row lies inside a candidate, and covered windows contain only matching
// rows.
func TestQuickImprintSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		zoneSize := 1 + rng.Intn(40)
		codes := make([]int64, n)
		for i := range codes {
			// Heavy-tailed values exercise uneven bins.
			codes[i] = rng.Int63n(1000)
			if rng.Intn(10) == 0 {
				codes[i] *= 1_000_000
			}
		}
		var nulls *bitvec.BitVec
		if rng.Intn(2) == 0 {
			nulls = bitvec.New(n)
			for k := 0; k < n/8; k++ {
				nulls.Set(rng.Intn(n))
			}
		}
		m := Build(codes, nulls, zoneSize)
		lo := rng.Int63n(2_000_000) - 1000
		r := oneRange(lo, lo+rng.Int63n(500_000))
		cands, st := m.Prune(r, nil)
		inCand := make([]bool, n)
		covered := make([]bool, n)
		prevHi := -1
		for _, c := range cands {
			if c.Lo >= c.Hi || c.Lo < prevHi {
				return false
			}
			prevHi = c.Hi
			for i := c.Lo; i < c.Hi; i++ {
				inCand[i] = true
				covered[i] = c.Covered
			}
		}
		skipped := 0
		for i := 0; i < n; i++ {
			isNull := nulls != nil && nulls.Get(i)
			matches := !isNull && r.Contains(codes[i])
			if matches && !inCand[i] {
				return false
			}
			if covered[i] && !matches {
				return false
			}
			if !inCand[i] {
				skipped++
			}
		}
		return skipped == st.RowsSkipped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend in increments matches a fresh build's pruning behavior
// (bin edges are learned from the initial sample, so masks must agree for
// the same edges; we compare prune outcomes on shared-edge maps).
func TestQuickExtendSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(300)
		zoneSize := 1 + rng.Intn(30)
		codes := make([]int64, n)
		for i := range codes {
			codes[i] = rng.Int63n(10_000)
		}
		m := Build(codes[:n/2], nil, zoneSize)
		m.Extend(codes, nil)
		lo := rng.Int63n(10_000)
		r := oneRange(lo, lo+rng.Int63n(2000))
		cands, _ := m.Prune(r, nil)
		inCand := make([]bool, n)
		for _, c := range cands {
			for i := c.Lo; i < c.Hi; i++ {
				inCand[i] = true
			}
		}
		for i := 0; i < n; i++ {
			if r.Contains(codes[i]) && !inCand[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
