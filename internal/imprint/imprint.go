// Package imprint implements column imprints (Sidirourgos & Kersten,
// SIGMOD 2013) as a second data-skipping structure under the same Skipper
// contract as zonemaps — demonstrating the abstract's framing of adaptive
// data skipping as "a framework for structures and techniques" rather
// than one index.
//
// An imprint summarizes each zone with a 64-bit mask of which value bins
// (equi-depth histogram buckets, learned from a sample) occur in the
// zone. Pruning intersects the zone's mask with the predicate's bin mask.
// Where a min/max zonemap summarizes a zone by its value hull, an imprint
// preserves multi-modality: a zone holding values {1, 10^6} has a hull
// that overlaps every predicate but an imprint with only two bits set —
// queries between the modes still skip.
package imprint

import (
	"fmt"
	"math"
	"sort"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
	"adskip/internal/zonemap"
)

// bins is the number of histogram buckets (one bit each).
const bins = 64

// Map is a column imprint over a fixed zone size.
type Map struct {
	zoneSize int
	n        int
	// edges[i] is the inclusive lower bound of bin i; bin i covers
	// [edges[i], edges[i+1]) except the last, which extends to +inf.
	// Monotonically non-decreasing; equal edges make empty bins.
	edges   [bins]int64
	masks   []uint64
	nonNull []int32
}

// sampleTarget is how many values Build samples to place bin edges.
const sampleTarget = 4096

// Build constructs an imprint over the first len(codes) rows. Bin edges
// are equi-depth quantiles of a deterministic sample, so skewed domains
// get resolution where the data lives.
func Build(codes []int64, nulls *bitvec.BitVec, zoneSize int) *Map {
	if zoneSize <= 0 {
		panic(fmt.Sprintf("imprint: zoneSize %d must be positive", zoneSize))
	}
	m := &Map{zoneSize: zoneSize}
	m.edges = learnEdges(codes, nulls)
	m.Extend(codes, nulls)
	return m
}

// learnEdges picks equi-depth bin edges from a deterministic
// pseudo-random sample. Positions come from a multiplicative hash rather
// than a fixed stride: strided sampling aliases with periodic data (e.g.
// rows alternating between two value modes would be sampled from one mode
// only, collapsing the histogram).
func learnEdges(codes []int64, nulls *bitvec.BitVec) [bins]int64 {
	var edges [bins]int64
	sample := make([]int64, 0, sampleTarget)
	n := uint64(len(codes))
	draws := uint64(sampleTarget)
	if n > 0 && n < draws {
		draws = n
	}
	for k := uint64(0); k < draws; k++ {
		i := int((k * 0x9E3779B97F4A7C15) % n) // golden-ratio hash: full-period, aperiodic
		if nulls != nil && i < nulls.Len() && nulls.Get(i) {
			continue
		}
		sample = append(sample, codes[i])
	}
	if len(sample) == 0 {
		// Degenerate all-null/empty column: one giant bin.
		edges[0] = math.MinInt64
		for i := 1; i < bins; i++ {
			edges[i] = math.MaxInt64
		}
		return edges
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	edges[0] = math.MinInt64 // bin 0 catches everything below the sample
	for i := 1; i < bins; i++ {
		edges[i] = sample[(i*len(sample))/bins]
	}
	return edges
}

// binOf returns the bin index of a code.
func (m *Map) binOf(c int64) int {
	// First edge strictly greater than c, minus one.
	i := sort.Search(bins, func(i int) bool { return m.edges[i] > c })
	return i - 1
}

// ZoneSize returns the configured rows-per-zone.
func (m *Map) ZoneSize() int { return m.zoneSize }

// Rows returns the rows covered by metadata.
func (m *Map) Rows() int { return m.n }

// NumZones returns the number of zones.
func (m *Map) NumZones() int { return len(m.masks) }

// MemoryBytes estimates the metadata footprint.
func (m *Map) MemoryBytes() int { return len(m.masks)*(8+4) + bins*8 }

// Extend grows the imprint to cover codes (the column's full code slice);
// a trailing partial zone is rebuilt when new rows land in it.
func (m *Map) Extend(codes []int64, nulls *bitvec.BitVec) {
	total := len(codes)
	if total <= m.n {
		return
	}
	if rem := m.n % m.zoneSize; rem != 0 {
		m.masks = m.masks[:len(m.masks)-1]
		m.nonNull = m.nonNull[:len(m.nonNull)-1]
		m.n -= rem
	}
	for lo := m.n; lo < total; lo += m.zoneSize {
		hi := lo + m.zoneSize
		if hi > total {
			hi = total
		}
		var mask uint64
		nn := int32(0)
		for i := lo; i < hi; i++ {
			if nulls != nil && i < nulls.Len() && nulls.Get(i) {
				continue
			}
			mask |= 1 << uint(m.binOf(codes[i]))
			nn++
		}
		m.masks = append(m.masks, mask)
		m.nonNull = append(m.nonNull, nn)
	}
	m.n = total
}

// Widen admits an updated value at row (sets its bin bit), keeping
// pruning sound.
func (m *Map) Widen(row int, code int64) {
	m.masks[row/m.zoneSize] |= 1 << uint(m.binOf(code))
}

// NoteNonNull records a formerly NULL row gaining a value.
func (m *Map) NoteNonNull(row int) {
	m.nonNull[row/m.zoneSize]++
}

// QueryMasks lowers a predicate's code intervals to two bin masks:
// touched (bins any interval overlaps) and covered (bins lying entirely
// inside one interval). A zone skips when its mask ∩ touched = ∅ and is
// covered when its mask ⊆ covered.
func (m *Map) QueryMasks(r expr.Ranges) (touched, coveredBins uint64) {
	for k := range r.Lo {
		lo, hi := r.Lo[k], r.Hi[k]
		bLo, bHi := m.binOf(lo), m.binOf(hi)
		for b := bLo; b <= bHi; b++ {
			touched |= 1 << uint(b)
			// Bin b spans [edges[b], next); it is covered when fully
			// inside [lo, hi].
			binLo := m.edges[b]
			binHi := int64(math.MaxInt64)
			if b+1 < bins {
				if m.edges[b+1] == math.MinInt64 {
					continue
				}
				binHi = m.edges[b+1] - 1
			}
			if lo <= binLo && binHi <= hi {
				coveredBins |= 1 << uint(b)
			}
		}
	}
	return touched, coveredBins
}

// Prune probes every zone and appends candidate row windows to dst,
// merging adjacent candidates with equal coverage state (the same
// contract as zonemap.Map.Prune).
func (m *Map) Prune(r expr.Ranges, dst []zonemap.Candidate) ([]zonemap.Candidate, zonemap.PruneStats) {
	var st zonemap.PruneStats
	st.ZonesProbed = len(m.masks)
	touched, coveredBins := m.QueryMasks(r)
	for zi, mask := range m.masks {
		lo := zi * m.zoneSize
		hi := lo + m.zoneSize
		if hi > m.n {
			hi = m.n
		}
		if m.nonNull[zi] == 0 || mask&touched == 0 {
			st.ZonesSkipped++
			st.RowsSkipped += hi - lo
			continue
		}
		covered := int(m.nonNull[zi]) == hi-lo && mask&^coveredBins == 0
		if covered {
			st.ZonesCovered++
		}
		if k := len(dst); k > 0 && dst[k-1].Hi == lo && dst[k-1].Covered == covered {
			dst[k-1].Hi = hi
		} else {
			dst = append(dst, zonemap.Candidate{Lo: lo, Hi: hi, Covered: covered})
		}
	}
	return dst, st
}

// PruneNulls emits candidates for IS NULL scans, mirroring zonemap
// semantics: null-free zones skip, all-null zones are covered.
func (m *Map) PruneNulls(dst []zonemap.Candidate) ([]zonemap.Candidate, zonemap.PruneStats) {
	var st zonemap.PruneStats
	st.ZonesProbed = len(m.masks)
	for zi := range m.masks {
		lo := zi * m.zoneSize
		hi := lo + m.zoneSize
		if hi > m.n {
			hi = m.n
		}
		if int(m.nonNull[zi]) == hi-lo {
			st.ZonesSkipped++
			st.RowsSkipped += hi - lo
			continue
		}
		covered := m.nonNull[zi] == 0
		if covered {
			st.ZonesCovered++
		}
		if k := len(dst); k > 0 && dst[k-1].Hi == lo && dst[k-1].Covered == covered {
			dst[k-1].Hi = hi
		} else {
			dst = append(dst, zonemap.Candidate{Lo: lo, Hi: hi, Covered: covered})
		}
	}
	return dst, st
}
