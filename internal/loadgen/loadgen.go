// Package loadgen is a closed-loop load generator for the adskip query
// server: N connections, each a worker that issues one request, waits
// for the response, and immediately issues the next until the deadline.
// Closed-loop means offered load adapts to server latency — the
// generator measures sustainable throughput rather than piling up an
// unbounded backlog.
//
// Workers draw from a fixed pool of query templates with a Zipf-skewed
// pick, mimicking the hot-template traffic a prepared-statement cache
// exists for: a handful of templates dominate, so the server's cache
// should show a high hit rate under this load.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"adskip/internal/client"
	"adskip/internal/proto"
)

// Options configures a run. Zero values select the defaults noted.
type Options struct {
	Addr        string
	Conns       int           // concurrent connections (default 8)
	Duration    time.Duration // run length (default 5s)
	Table       string        // target table (default "data")
	Col         string        // predicate column (default "v")
	Domain      int64         // predicate value domain [0,Domain) (default 1<<20)
	Templates   int           // distinct query templates (default 64)
	ZipfS       float64       // Zipf skew across templates, >1 (default 1.2)
	Selectivity float64       // fraction of the domain per range (default 0.01)
	Point       bool          // equality predicates instead of ranges
	Prepared    bool          // prepare once per template, then exec by ID
	Seed        int64         // RNG seed for templates and picks (default 1)
	Timeout     time.Duration // per-request timeout (default 10s)
	// Timing tags every request with a trace ID and asks the server for
	// its latency breakdown, so the report can attribute client-observed
	// latency to server execution, server-side queueing, and the network.
	Timing bool
	// InsertFraction makes that fraction of requests inserts instead of
	// queries (0 = read-only). Inserted rows follow the adskip-gen shape
	// (v BIGINT, seq BIGINT, noise DOUBLE): v uniform over the domain,
	// seq a worker-unique counter, so the target table must have that
	// schema. A mixed read/write load is what the crash-torture harness
	// runs while it kill -9s the server.
	InsertFraction float64
	// InsertBatch is rows per insert request (default 16).
	InsertBatch int
	// Retries enables client-side retry of retryable refusals (load
	// shedding, WAL recovery) with that many attempts beyond the first.
	// Retried-then-succeeded requests count as successes; the retry
	// volume is reported separately in Report.Retries.
	Retries int
}

func (o *Options) defaults() {
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Table == "" {
		o.Table = "data"
	}
	if o.Col == "" {
		o.Col = "v"
	}
	if o.Domain <= 0 {
		o.Domain = 1 << 20
	}
	if o.Templates <= 0 {
		o.Templates = 64
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.Selectivity <= 0 || o.Selectivity > 1 {
		o.Selectivity = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.InsertFraction < 0 {
		o.InsertFraction = 0
	}
	if o.InsertFraction > 1 {
		o.InsertFraction = 1
	}
	if o.InsertBatch <= 0 {
		o.InsertBatch = 16
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
}

// Report is the outcome of one run.
type Report struct {
	Requests int64 // completed requests
	Errors   int64 // failed requests (transport or server error)
	Rows     int64 // sum of result counts (sanity signal, not a metric)
	// Inserts is the number of rows the server acknowledged as appended;
	// Retries the automatic retry volume (refused-then-retried attempts,
	// NOT errors — a request that eventually succeeded is a success).
	Inserts int64
	Retries int64
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration

	// Latency attribution, populated when Options.Timing is set and the
	// server returns breakdowns. Server is the server-side total (frame
	// read to response ready), Queue its read-to-dispatch component, and
	// Network the per-request remainder (client RTT minus server total:
	// wire time plus client-side encode/decode).
	TimedRequests    int64 // requests that carried a server breakdown
	TimingViolations int64 // breakdowns that failed a sanity invariant
	ServerP50        time.Duration
	ServerP95        time.Duration
	ServerP99        time.Duration
	QueueP50         time.Duration
	QueueP95         time.Duration
	QueueP99         time.Duration
	NetworkP50       time.Duration
	NetworkP95       time.Duration
	NetworkP99       time.Duration
}

// String renders the report as the one-line-per-fact summary the CLI
// prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests  %d\n", r.Requests)
	fmt.Fprintf(&b, "errors    %d\n", r.Errors)
	if r.Inserts > 0 || r.Retries > 0 {
		fmt.Fprintf(&b, "inserts   %d\n", r.Inserts)
		fmt.Fprintf(&b, "retries   %d\n", r.Retries)
	}
	fmt.Fprintf(&b, "elapsed   %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "qps       %.0f\n", r.QPS)
	fmt.Fprintf(&b, "p50       %v\n", r.P50)
	fmt.Fprintf(&b, "p95       %v\n", r.P95)
	fmt.Fprintf(&b, "p99       %v\n", r.P99)
	fmt.Fprintf(&b, "max       %v", r.Max)
	if r.TimedRequests > 0 {
		fmt.Fprintf(&b, "\n\nlatency attribution (%d timed requests, %d violations)\n",
			r.TimedRequests, r.TimingViolations)
		fmt.Fprintf(&b, "%-9s %10s %10s %10s\n", "phase", "p50", "p95", "p99")
		fmt.Fprintf(&b, "%-9s %10v %10v %10v\n", "server", r.ServerP50, r.ServerP95, r.ServerP99)
		fmt.Fprintf(&b, "%-9s %10v %10v %10v\n", "queue", r.QueueP50, r.QueueP95, r.QueueP99)
		fmt.Fprintf(&b, "%-9s %10v %10v %10v", "network", r.NetworkP50, r.NetworkP95, r.NetworkP99)
	}
	return b.String()
}

// Run drives the server at opts.Addr and blocks until the duration
// elapses and every worker has drained.
func Run(opts Options) Report {
	opts.defaults()
	templates := makeTemplates(opts)
	deadline := time.Now().Add(opts.Duration)
	t0 := time.Now()

	stats := make([]workerStats, opts.Conns)
	var wg sync.WaitGroup
	for w := 0; w < opts.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats[w] = runWorker(opts, templates, deadline, w)
		}(w)
	}
	wg.Wait()

	merged := newHist()
	server, queue, network := newHist(), newHist(), newHist()
	rep := Report{Elapsed: time.Since(t0)}
	for i := range stats {
		rep.Requests += stats[i].requests
		rep.Errors += stats[i].errors
		rep.Rows += stats[i].rows
		rep.Inserts += stats[i].inserts
		rep.Retries += stats[i].retries
		rep.TimedRequests += stats[i].timed
		rep.TimingViolations += stats[i].violations
		merged.merge(stats[i].h)
		server.merge(stats[i].server)
		queue.merge(stats[i].queue)
		network.merge(stats[i].network)
		if stats[i].max > rep.Max {
			rep.Max = stats[i].max
		}
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(rep.Requests) / secs
	}
	rep.P50 = merged.quantile(0.50)
	rep.P95 = merged.quantile(0.95)
	rep.P99 = merged.quantile(0.99)
	if rep.TimedRequests > 0 {
		rep.ServerP50 = server.quantile(0.50)
		rep.ServerP95 = server.quantile(0.95)
		rep.ServerP99 = server.quantile(0.99)
		rep.QueueP50 = queue.quantile(0.50)
		rep.QueueP95 = queue.quantile(0.95)
		rep.QueueP99 = queue.quantile(0.99)
		rep.NetworkP50 = network.quantile(0.50)
		rep.NetworkP95 = network.quantile(0.95)
		rep.NetworkP99 = network.quantile(0.99)
	}
	return rep
}

// makeTemplates builds the fixed query pool: COUNT(*) range (or point)
// predicates over the configured column, each covering Selectivity of
// the domain.
func makeTemplates(opts Options) []string {
	rng := rand.New(rand.NewSource(opts.Seed))
	width := int64(float64(opts.Domain) * opts.Selectivity)
	if width < 1 {
		width = 1
	}
	span := opts.Domain - width
	if span < 1 {
		span = 1
	}
	ts := make([]string, opts.Templates)
	for i := range ts {
		if opts.Point {
			ts[i] = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = %d",
				opts.Table, opts.Col, rng.Int63n(opts.Domain))
			continue
		}
		lo := rng.Int63n(span)
		ts[i] = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s BETWEEN %d AND %d",
			opts.Table, opts.Col, lo, lo+width-1)
	}
	return ts
}

type workerStats struct {
	requests   int64
	errors     int64
	rows       int64
	inserts    int64
	retries    int64
	max        time.Duration
	h          *hist
	timed      int64 // responses carrying a server breakdown
	violations int64 // breakdowns failing a sanity invariant
	server     *hist // server-side total (Timing.TotalUS)
	queue      *hist // server-side queueing (Timing.QueueUS)
	network    *hist // client RTT minus server total
}

// runWorker is one closed-loop connection. Transport errors trigger a
// reconnect (and count as errors); an evicted prepared statement is
// normal protocol flow and is retried with a fresh prepare.
func runWorker(opts Options, templates []string, deadline time.Time, id int) workerStats {
	rng := rand.New(rand.NewSource(opts.Seed + int64(id)*7919 + 1))
	var zipf *rand.Zipf
	if len(templates) > 1 {
		zipf = rand.NewZipf(rng, opts.ZipfS, 1, uint64(len(templates)-1))
	}
	st := workerStats{h: newHist(), server: newHist(), queue: newHist(), network: newHist()}
	var c *client.Client
	stmts := make(map[int]uint64) // template index -> prepared stmt ID
	var insertSeq int64           // worker-unique seq values for inserted rows

	// closeClient retires the connection, folding its retry counter into
	// the worker's total first (the counter lives on the Client).
	closeClient := func() {
		if c != nil {
			st.retries += c.Retries()
			c.Close()
			c = nil
		}
	}
	defer closeClient()
	for time.Now().Before(deadline) {
		if c == nil {
			cc, err := client.Dial(opts.Addr, client.Options{
				Timeout: opts.Timeout, Timing: opts.Timing,
				Retry: client.RetryPolicy{Max: opts.Retries},
			})
			if err != nil {
				st.errors++
				time.Sleep(50 * time.Millisecond)
				continue
			}
			c = cc
			stmts = make(map[int]uint64)
		}
		if opts.InsertFraction > 0 && rng.Float64() < opts.InsertFraction {
			rows := make([][]any, opts.InsertBatch)
			for r := range rows {
				insertSeq++
				rows[r] = []any{rng.Int63n(opts.Domain), int64(id)<<40 | insertSeq, rng.Float64() * 1000}
			}
			start := time.Now()
			n, err := c.Insert(opts.Table, rows)
			if err != nil {
				st.errors++
				var se *client.ServerError
				if !errors.As(err, &se) {
					closeClient()
				}
				continue
			}
			lat := time.Since(start)
			st.requests++
			st.inserts += int64(n)
			st.h.observe(lat)
			if lat > st.max {
				st.max = lat
			}
			continue
		}
		i := 0
		if zipf != nil {
			i = int(zipf.Uint64())
		}
		// Each timed request carries a distinct trace ID, so its span tree
		// is findable in the server's /traces afterwards.
		var traceID string
		if opts.Timing {
			traceID = fmt.Sprintf("load-w%d-%d", id, st.requests)
		}
		start := time.Now()
		var res *proto.Result
		var err error
		if opts.Prepared {
			sid, ok := stmts[i]
			if !ok {
				if sid, err = c.Prepare(templates[i]); err == nil {
					stmts[i] = sid
				}
			}
			if err == nil {
				res, err = c.ExecTraced(sid, traceID)
			}
			var se *client.ServerError
			if errors.As(err, &se) && se.Kind == proto.ErrKindNoStmt {
				delete(stmts, i) // evicted under LRU pressure: re-prepare
				continue
			}
		} else {
			res, err = c.QueryTraced(templates[i], traceID)
		}
		if err != nil {
			st.errors++
			var se *client.ServerError
			if !errors.As(err, &se) {
				// Transport-level failure: the connection is suspect.
				closeClient()
			}
			continue
		}
		lat := time.Since(start)
		st.requests++
		st.rows += int64(res.Count)
		st.h.observe(lat)
		if lat > st.max {
			st.max = lat
		}
		if tm := res.Timing; tm != nil {
			st.timed++
			serverTotal := time.Duration(tm.TotalUS) * time.Microsecond
			// Two invariants every honest breakdown satisfies: the phases
			// sum to at most the server total, and the server total fits
			// inside the client-observed round trip (the server interval
			// is strictly contained in it).
			if tm.PhaseSumUS() > tm.TotalUS || serverTotal > lat {
				st.violations++
			}
			st.server.observe(serverTotal)
			st.queue.observe(time.Duration(tm.QueueUS) * time.Microsecond)
			net := lat - serverTotal
			if net < 0 {
				net = 0
			}
			st.network.observe(net)
		}
	}
	return st
}
