package loadgen_test

import (
	"testing"
	"time"

	"adskip"
	"adskip/internal/loadgen"
	"adskip/internal/server"
)

func serveData(t *testing.T, rows int, opts server.Options) (*adskip.DB, *server.Server) {
	t.Helper()
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
	tbl, err := db.CreateTable("data", adskip.Col("v", adskip.Int64), adskip.Col("seq", adskip.Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Append((i/1000)*1000+i%7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	opts.Addr = "127.0.0.1:0"
	srv, err := server.Start(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv
}

// TestSustains50ConnectionsCleanly is the tentpole acceptance scenario
// run in-process (the CI race job covers ./internal/..., so this same
// load runs under the race detector): more than 50 concurrent closed-
// loop connections, zero errors.
func TestSustains50ConnectionsCleanly(t *testing.T) {
	const rows = 20000
	db, srv := serveData(t, rows, server.Options{})

	rep := loadgen.Run(loadgen.Options{
		Addr:     srv.Addr().String(),
		Conns:    56,
		Duration: 1200 * time.Millisecond,
		Domain:   rows,
		Seed:     7,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors under load: %d of %d requests", rep.Errors, rep.Requests+rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible latency report: %+v", rep)
	}
	// The Zipf-skewed template mix must drive statement-cache hits.
	hits := db.Metrics().Counter("adskip_server_stmt_cache_hits_total",
		"Requests served from the prepared-statement cache.")
	if hits.Load() == 0 {
		t.Fatal("no statement-cache hits under a skewed template mix")
	}
}

// TestPreparedModeUnderEviction runs the prepared-statement path with a
// cache smaller than the template pool, so workers keep hitting
// evictions and must re-prepare — still with zero user-visible errors.
func TestPreparedModeUnderEviction(t *testing.T) {
	const rows = 5000
	_, srv := serveData(t, rows, server.Options{StmtCacheSize: 8})

	rep := loadgen.Run(loadgen.Options{
		Addr:      srv.Addr().String(),
		Conns:     12,
		Duration:  600 * time.Millisecond,
		Domain:    rows,
		Templates: 32, // 4x the cache capacity
		Prepared:  true,
		Seed:      11,
	})
	if rep.Errors != 0 {
		t.Fatalf("errors under prepared load: %d of %d", rep.Errors, rep.Requests+rep.Errors)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
}
