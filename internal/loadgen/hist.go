package loadgen

import (
	"sort"
	"time"
)

// hist is a fixed-size log-bucketed latency histogram: geometric bucket
// bounds from 10µs up by ×1.25 per bucket (~12 buckets per decade, ~2%
// worst-case quantile error within a bucket's decade), with the last
// bucket absorbing everything slower. Each worker owns one, so no
// synchronization is needed; results are merged after the run.
type hist struct {
	counts [histBuckets]int64
	total  int64
}

const histBuckets = 72 // 10µs × 1.25^71 ≈ 77s at the top

var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	f := float64(10 * time.Microsecond)
	for i := range b {
		b[i] = time.Duration(f)
		f *= 1.25
	}
	return b
}()

func newHist() *hist { return &hist{} }

func (h *hist) observe(d time.Duration) {
	i := sort.Search(histBuckets-1, func(i int) bool { return histBounds[i] >= d })
	h.counts[i]++
	h.total++
}

func (h *hist) merge(o *hist) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// quantile returns the upper bound of the bucket holding the q-th
// sample — an over-estimate by at most one bucket ratio.
func (h *hist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return histBounds[i]
		}
	}
	return histBounds[histBuckets-1]
}
