// Package core defines the data-skipping framework of the paper: the
// Skipper contract between metadata structures and the scan executor, and
// the non-adaptive policies (no skipping; static zonemaps). The adaptive
// policy — the paper's contribution — lives in package adaptive and
// implements the same contract.
//
// The framework's shape follows the abstract: data skipping is a *policy*
// layered on fast scans, fed by per-query observations, so that structures
// can "respond to a vast array of data distributions and query workloads".
package core

import (
	"adskip/internal/bitvec"
	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/scan"
	"adskip/internal/zonemap"
)

// CandidateZone is one contiguous row window the executor must scan, as
// emitted by a Skipper's Prune.
type CandidateZone struct {
	ID        int  // skipper-private zone identity for feedback; NoZoneID if unattributed
	Lo, Hi    int  // row window [Lo, Hi)
	Covered   bool // metadata proves every row in the window matches
	WantStats bool // skipper asks for piggybacked partition stats if scanned
	StatParts int  // requested sub-partitions for those stats
}

// NoZoneID marks candidate windows with no feedback identity (tails, or
// skippers that do not learn).
const NoZoneID = -1

// PruneResult is the outcome of probing a skipper's metadata with a
// predicate's code intervals.
type PruneResult struct {
	// Enabled is false when the skipper declines to participate (no
	// skipping policy, or adaptive arbitration has turned skipping off);
	// the executor then scans the full row range with zero probe cost.
	Enabled bool
	// Zones are the ordered, disjoint row windows to scan.
	Zones []CandidateZone
	// ZonesProbed and RowsSkipped report probe work and pruning benefit
	// for instrumentation and for the adaptive cost model.
	ZonesProbed int
	RowsSkipped int
}

// ZoneObservation is per-zone execution feedback the engine hands back to
// the skipper after running the scan.
type ZoneObservation struct {
	ID      int  // zone identity from the CandidateZone
	Lo, Hi  int  // the window that was actually visited
	Covered bool // executor honored the covered short-circuit
	Partial bool // only part of the zone was scanned (multi-column intersection)
	Matched int  // predicate matches within the visited window (0 if Partial)
	// Stats carries piggybacked sub-partition statistics when the
	// candidate requested them and the zone was fully scanned.
	Stats []scan.PartStat
}

// Metadata summarizes a skipper's current state for introspection and the
// experiment harness.
type Metadata struct {
	Kind    string // "none", "static", "adaptive"
	Zones   int
	Bytes   int
	Enabled bool
}

// Skipper is the data-skipping contract. One Skipper instance serves one
// column of one table. Implementations need not be safe for concurrent
// mutation; the engine serializes Prune/Observe/Extend per column.
type Skipper interface {
	// Prune probes metadata with the predicate's code intervals and emits
	// the candidate row windows over the rows it covers.
	Prune(r expr.Ranges) PruneResult
	// PruneNulls emits candidate windows for IS NULL predicates: zones
	// known null-free skip, all-NULL zones are covered. Implementations
	// that track no null counts may decline (Enabled=false).
	PruneNulls() PruneResult
	// Observe feeds execution results back. Non-learning skippers ignore it.
	Observe(res PruneResult, obs []ZoneObservation)
	// Extend informs the skipper that the column grew; codes/nulls are the
	// column's full physical state.
	Extend(codes []int64, nulls *bitvec.BitVec)
	// Widen informs the skipper of an in-place update at row with the new
	// code, so zone bounds stay sound (they may become loose, never wrong).
	Widen(row int, code int64)
	// NoteNonNull informs the skipper that a NULL row gained a value.
	NoteNonNull(row int)
	// Rows returns the number of rows covered by the skipper's metadata.
	Rows() int
	// Metadata reports current structure state.
	Metadata() Metadata
}

// HealthChecker is implemented by skippers that can detect their own
// metadata corruption (e.g. a violated tiling invariant noticed during a
// probe or a bounds-maintenance call). A non-nil Health means the
// skipper's metadata can no longer be trusted: it must already have
// stopped pruning (fail open to full scans), and the engine quarantines
// it on the next interaction.
type HealthChecker interface {
	Health() error
}

// InvariantChecker is implemented by skippers whose full invariants can
// be re-verified against the column's physical state (an O(rows) pass).
// The engine uses it for on-demand verification sweeps; failures
// quarantine the skipper.
type InvariantChecker interface {
	CheckInvariants(codes []int64, nulls *bitvec.BitVec, exact bool) error
}

// ZoneIntrospector is implemented by skippers that can expose their
// per-zone state — bounds plus lifetime prune hit/miss counters — for the
// skipping-effectiveness heatmap (/skipmap). Snapshotting is a cold-path
// copy; implementations may cap the returned slice at max entries
// (max <= 0 means all zones).
type ZoneIntrospector interface {
	SnapshotZones(max int) []obs.SkipmapZone
}

// EventEmitter is implemented by skippers whose metadata changes over time
// (splits, merges, arbitration flips, tail folds). The engine installs a
// sink at registration so adaptation events reach the observability
// layer's event log; the sink fills in table/column identity, which the
// skipper itself does not know. Emitting is optional: non-adaptive
// skippers simply do not implement the interface.
type EventEmitter interface {
	SetEventSink(sink func(obs.Event))
}

// LedgerEmitter is implemented by skippers that journal their zone
// lifecycle with provenance: each record carries the change's cause and
// the before/after shape of the affected metadata. The engine installs
// the sink at registration and stamps table/shard identity plus the
// triggering query fingerprint, none of which the skipper knows.
// Records are emitted only on structural change — never per probe — so
// the sink stays off the scan hot path.
type LedgerEmitter interface {
	SetLedgerSink(sink func(obs.LedgerRecord))
}

// PruneReasoner is implemented by skippers that classify why candidate
// zones failed to prune on the most recent Prune call: genuine value
// overlap, bounds widened by appends/updates since the zone was last
// rebuilt, or a coverage proof blocked by NULLs. The engine reads the
// counts right after Prune (probes are serialized per column) and
// stamps them into the query's predicate trace.
type PruneReasoner interface {
	// LastPruneReasons returns the miss classification of the most recent
	// Prune: zones left as candidates because of genuine bounds overlap,
	// because their hull was widened since last rebuild, and because NULL
	// rows blocked an otherwise-complete coverage proof.
	LastPruneReasons() (overlap, widened, nullStraddle int)
}

// ROIReporter is implemented by skippers that can account for their own
// return on investment: pruning credit versus probe and maintenance
// debit under the structure's cost model, plus the dead zones whose
// metadata never pruned. The engine stamps table/shard/column identity.
// maxDead caps the per-zone dead-zone detail (<= 0 omits detail).
type ROIReporter interface {
	SnapshotROI(maxDead int) obs.ColumnROI
}

// ---------------------------------------------------------------------------
// Policy: no skipping.

// NoSkipper is the null policy: every query scans everything. It is the
// baseline the paper measures against on arbitrary data.
type NoSkipper struct {
	rows int
}

// NewNoSkipper returns a NoSkipper over rows rows.
func NewNoSkipper(rows int) *NoSkipper { return &NoSkipper{rows: rows} }

// Prune declines: the executor performs a full scan.
func (s *NoSkipper) Prune(expr.Ranges) PruneResult { return PruneResult{Enabled: false} }

// PruneNulls declines likewise.
func (s *NoSkipper) PruneNulls() PruneResult { return PruneResult{Enabled: false} }

// Observe is a no-op.
func (s *NoSkipper) Observe(PruneResult, []ZoneObservation) {}

// Extend tracks the row count.
func (s *NoSkipper) Extend(codes []int64, _ *bitvec.BitVec) { s.rows = len(codes) }

// Widen is a no-op.
func (s *NoSkipper) Widen(int, int64) {}

// NoteNonNull is a no-op.
func (s *NoSkipper) NoteNonNull(int) {}

// Rows returns the tracked row count.
func (s *NoSkipper) Rows() int { return s.rows }

// Metadata reports zero structure.
func (s *NoSkipper) Metadata() Metadata { return Metadata{Kind: "none"} }

// ---------------------------------------------------------------------------
// Policy: static zonemaps.

// StaticSkipper wraps a fixed-granularity zonemap. It probes every zone on
// every query and never adapts — the classic design whose overhead on
// unordered data motivates the paper.
type StaticSkipper struct {
	m *zonemap.Map
}

// NewStaticSkipper builds a static zonemap skipper over the column's
// current physical state with the given zone size.
func NewStaticSkipper(codes []int64, nulls *bitvec.BitVec, zoneSize int) *StaticSkipper {
	return &StaticSkipper{m: zonemap.Build(codes, nulls, zoneSize)}
}

// Prune probes all zones.
func (s *StaticSkipper) Prune(r expr.Ranges) PruneResult {
	cands, st := s.m.Prune(r, nil)
	return convertCandidates(cands, st)
}

// PruneNulls probes the per-zone non-null counts: zones with no NULL rows
// skip, all-NULL zones are covered.
func (s *StaticSkipper) PruneNulls() PruneResult {
	cands, st := s.m.PruneNulls(nil)
	return convertCandidates(cands, st)
}

// Observe is a no-op: static zonemaps do not learn.
func (s *StaticSkipper) Observe(PruneResult, []ZoneObservation) {}

// Extend grows the zonemap over appended rows.
func (s *StaticSkipper) Extend(codes []int64, nulls *bitvec.BitVec) { s.m.Extend(codes, nulls) }

// Widen loosens the enclosing zone's bounds for an updated value.
func (s *StaticSkipper) Widen(row int, code int64) { s.m.Widen(row, code) }

// NoteNonNull records a NULL row gaining a value.
func (s *StaticSkipper) NoteNonNull(row int) { s.m.NoteNonNull(row) }

// Rows returns the rows covered by metadata.
func (s *StaticSkipper) Rows() int { return s.m.Rows() }

// Metadata reports the zonemap's footprint.
func (s *StaticSkipper) Metadata() Metadata {
	return Metadata{Kind: "static", Zones: s.m.NumZones(), Bytes: s.m.MemoryBytes(), Enabled: true}
}

// ---------------------------------------------------------------------------
// Policy: column imprints.

// ImprintSkipper wraps a column imprint (bin-occurrence masks per zone):
// a second static skipping structure under the same contract,
// demonstrating the framework framing. Imprints prune multi-modal zones
// that min/max hulls cannot, at the cost of a histogram learned at build
// time.
type ImprintSkipper struct {
	m interface {
		Prune(expr.Ranges, []zonemap.Candidate) ([]zonemap.Candidate, zonemap.PruneStats)
		PruneNulls([]zonemap.Candidate) ([]zonemap.Candidate, zonemap.PruneStats)
		Extend([]int64, *bitvec.BitVec)
		Widen(int, int64)
		NoteNonNull(int)
		Rows() int
		NumZones() int
		MemoryBytes() int
	}
}

// NewImprintSkipper wraps an imprint-like map. (The concrete type lives in
// package imprint; the indirection keeps core free of that dependency.)
func NewImprintSkipper(m interface {
	Prune(expr.Ranges, []zonemap.Candidate) ([]zonemap.Candidate, zonemap.PruneStats)
	PruneNulls([]zonemap.Candidate) ([]zonemap.Candidate, zonemap.PruneStats)
	Extend([]int64, *bitvec.BitVec)
	Widen(int, int64)
	NoteNonNull(int)
	Rows() int
	NumZones() int
	MemoryBytes() int
}) *ImprintSkipper {
	return &ImprintSkipper{m: m}
}

// Prune probes all zone masks.
func (s *ImprintSkipper) Prune(r expr.Ranges) PruneResult {
	cands, st := s.m.Prune(r, nil)
	return convertCandidates(cands, st)
}

// PruneNulls probes per-zone null counts.
func (s *ImprintSkipper) PruneNulls() PruneResult {
	cands, st := s.m.PruneNulls(nil)
	return convertCandidates(cands, st)
}

// Observe is a no-op: imprints do not learn.
func (s *ImprintSkipper) Observe(PruneResult, []ZoneObservation) {}

// Extend grows the imprint over appended rows.
func (s *ImprintSkipper) Extend(codes []int64, nulls *bitvec.BitVec) { s.m.Extend(codes, nulls) }

// Widen admits an updated value's bin.
func (s *ImprintSkipper) Widen(row int, code int64) { s.m.Widen(row, code) }

// NoteNonNull records a NULL row gaining a value.
func (s *ImprintSkipper) NoteNonNull(row int) { s.m.NoteNonNull(row) }

// Rows returns the rows covered by metadata.
func (s *ImprintSkipper) Rows() int { return s.m.Rows() }

// Metadata reports the imprint's footprint.
func (s *ImprintSkipper) Metadata() Metadata {
	return Metadata{Kind: "imprint", Zones: s.m.NumZones(), Bytes: s.m.MemoryBytes(), Enabled: true}
}

// convertCandidates adapts zonemap-style candidates to a PruneResult.
func convertCandidates(cands []zonemap.Candidate, st zonemap.PruneStats) PruneResult {
	res := PruneResult{
		Enabled:     true,
		ZonesProbed: st.ZonesProbed,
		RowsSkipped: st.RowsSkipped,
		Zones:       make([]CandidateZone, len(cands)),
	}
	for i, c := range cands {
		res.Zones[i] = CandidateZone{ID: NoZoneID, Lo: c.Lo, Hi: c.Hi, Covered: c.Covered}
	}
	return res
}

var (
	_ Skipper = (*NoSkipper)(nil)
	_ Skipper = (*StaticSkipper)(nil)
	_ Skipper = (*ImprintSkipper)(nil)
)
