package core

import (
	"testing"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
)

func oneRange(lo, hi int64) expr.Ranges {
	return expr.Ranges{Lo: []int64{lo}, Hi: []int64{hi}}
}

func TestNoSkipper(t *testing.T) {
	s := NewNoSkipper(100)
	res := s.Prune(oneRange(0, 10))
	if res.Enabled || res.ZonesProbed != 0 || len(res.Zones) != 0 {
		t.Fatalf("res=%+v", res)
	}
	if s.Rows() != 100 {
		t.Fatalf("Rows=%d", s.Rows())
	}
	s.Extend(make([]int64, 150), nil)
	if s.Rows() != 150 {
		t.Fatalf("Rows after extend=%d", s.Rows())
	}
	md := s.Metadata()
	if md.Kind != "none" || md.Zones != 0 || md.Bytes != 0 {
		t.Fatalf("metadata=%+v", md)
	}
	// No-ops must not panic.
	s.Observe(res, nil)
	s.Widen(3, 9)
	s.NoteNonNull(3)
}

func TestStaticSkipper(t *testing.T) {
	codes := make([]int64, 100)
	for i := range codes {
		codes[i] = int64(i)
	}
	s := NewStaticSkipper(codes, nil, 10)
	if s.Rows() != 100 {
		t.Fatalf("Rows=%d", s.Rows())
	}
	res := s.Prune(oneRange(25, 44))
	if !res.Enabled || res.ZonesProbed != 10 || res.RowsSkipped != 70 {
		t.Fatalf("res=%+v", res)
	}
	// Zones [20,30) partial, [30,40) covered, [40,50) partial: coverage
	// boundaries prevent merging into one window.
	if len(res.Zones) != 3 || res.Zones[0].Lo != 20 || res.Zones[2].Hi != 50 || !res.Zones[1].Covered {
		t.Fatalf("zones=%v", res.Zones)
	}
	if res.Zones[0].ID != NoZoneID || res.Zones[0].WantStats {
		t.Fatal("static zones should carry no identity and want no stats")
	}
	md := s.Metadata()
	if md.Kind != "static" || md.Zones != 10 || !md.Enabled {
		t.Fatalf("metadata=%+v", md)
	}

	// Extend then prune the new region.
	codes = append(codes, 1000, 1001, 1002)
	s.Extend(codes, nil)
	if s.Rows() != 103 {
		t.Fatalf("Rows after extend=%d", s.Rows())
	}
	res = s.Prune(oneRange(1000, 2000))
	if len(res.Zones) != 1 || res.Zones[0].Lo != 100 {
		t.Fatalf("extended prune: %v", res.Zones)
	}

	// Widen keeps updated rows scannable.
	codes[5] = 5555
	s.Widen(5, 5555)
	res = s.Prune(oneRange(5555, 5555))
	found := false
	for _, z := range res.Zones {
		if z.Lo <= 5 && 5 < z.Hi {
			found = true
		}
	}
	if !found {
		t.Fatal("widened zone not a candidate")
	}
	s.Observe(res, nil) // no-op
}

func TestStaticSkipperNulls(t *testing.T) {
	codes := make([]int64, 20)
	nulls := bitvec.New(20)
	for i := 0; i < 10; i++ {
		nulls.Set(i)
	}
	for i := 10; i < 20; i++ {
		codes[i] = int64(i)
	}
	s := NewStaticSkipper(codes, nulls, 10)
	res := s.Prune(oneRange(-1000, 1000))
	if len(res.Zones) != 1 || res.Zones[0].Lo != 10 {
		t.Fatalf("all-null zone not skipped: %v", res.Zones)
	}
	s.NoteNonNull(3) // exercise pass-through
}
