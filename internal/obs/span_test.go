package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	plan := root.StartChild("plan")
	plan.FinishRows(100, 10, 0)
	scan := root.StartChild("scan")
	scan.StartChild("segment [0,50)").Finish()
	scan.Finish()
	root.AttachFirst(&Span{Name: "parse", Start: root.Start.Add(-time.Millisecond), Duration: time.Millisecond})
	root.Finish()

	kids := root.Children()
	if len(kids) != 3 {
		t.Fatalf("root has %d children, want 3", len(kids))
	}
	if kids[0].Name != "parse" || kids[1].Name != "plan" || kids[2].Name != "scan" {
		t.Fatalf("child order = %s/%s/%s, want parse/plan/scan", kids[0].Name, kids[1].Name, kids[2].Name)
	}
	if plan.RowsIn != 100 || plan.RowsOut != 10 {
		t.Fatalf("plan rows = in %d out %d, want 100/10", plan.RowsIn, plan.RowsOut)
	}

	// First duration stamp wins: a second Finish must not overwrite.
	d := plan.Duration
	plan.FinishDuration(42 * time.Hour)
	if plan.Duration != d {
		t.Fatalf("second Finish overwrote duration: %s -> %s", d, plan.Duration)
	}

	lines := root.TreeLines()
	if len(lines) != 5 {
		t.Fatalf("TreeLines = %d lines, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.HasPrefix(lines[0], "span query") {
		t.Errorf("first line %q does not start with root span", lines[0])
	}
	if !strings.HasPrefix(lines[4], "    span segment") {
		t.Errorf("grandchild not doubly indented: %q", lines[4])
	}

	// The JSON shape round-trips through the spanJSON mirror.
	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name    string `json:"name"`
			RowsIn  int    `json:"rows_in"`
			RowsOut int    `json:"rows_out"`
		} `json:"children"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "query" || len(decoded.Children) != 3 {
		t.Fatalf("JSON tree = %q with %d children, want query with 3", decoded.Name, len(decoded.Children))
	}
	if decoded.Children[1].RowsIn != 100 || decoded.Children[1].RowsOut != 10 {
		t.Fatalf("JSON plan rows = %+v, want in 100 out 10", decoded.Children[1])
	}
}

// TestSpanConcurrent hammers one parent span from many goroutines — child
// creation, finishing, tree reads, and JSON encoding all interleave. Run
// under -race this proves the span's locking discipline (the parallel scan
// path does exactly this: workers attach and finish children while the
// coordinator renders).
func TestSpanConcurrent(t *testing.T) {
	root := NewSpan("query")
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.StartChild(fmt.Sprintf("worker %d.%d", w, i))
				c.FinishRows(i, i/2, i/4)
			}
		}(w)
	}
	// Concurrent readers: Children, TreeLines, MarshalJSON.
	var rg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = root.Children()
					_ = root.TreeLines()
					if _, err := json.Marshal(root); err != nil {
						t.Errorf("marshal during churn: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	root.Finish()
	if got := len(root.Children()); got != workers*perWorker {
		t.Fatalf("children = %d, want %d", got, workers*perWorker)
	}
}

func TestTraceRingWrap(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 7; i++ {
		r.Append(&QueryTrace{Table: fmt.Sprintf("t%d", i)})
	}
	r.Append(nil) // ignored
	if got := r.Total(); got != 7 {
		t.Fatalf("total = %d, want 7", got)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	snap := r.Snapshot()
	for i, tr := range snap {
		if want := fmt.Sprintf("t%d", i+3); tr.Table != want {
			t.Fatalf("snapshot[%d] = %q, want %q (oldest-first order broken)", i, tr.Table, want)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	root := &Span{Name: "query", Start: base, Duration: 3 * time.Millisecond}
	root.Attach(&Span{Name: "scan", Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond,
		RowsIn: 1000, RowsOut: 10, RowsSkipped: 900})
	// The parse span predates the root (the SQL layer stamps it before the
	// engine trace exists); the exporter must shift the epoch so no event
	// has a negative timestamp.
	root.AttachFirst(&Span{Name: "parse", Start: base.Add(-time.Millisecond), Duration: time.Millisecond})
	traces := []*QueryTrace{
		{Table: "t", Start: base, Root: root},
		nil, // tolerated
		{Table: "old", Start: base.Add(time.Second), Plan: time.Millisecond, Scan: time.Millisecond},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, traces); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, sb.String())
	}
	if out.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayUnit)
	}
	// 3 span events for the first trace + 4 phase events for the legacy one.
	if len(out.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			t.Errorf("event %q has negative ts %v", ev.Name, ev.TS)
		}
	}
	// Events flatten parent-first; the epoch shifts to the parse span's
	// start, putting the root 1ms in.
	if out.TraceEvents[0].Name != "query" || out.TraceEvents[0].TS != 1000 {
		t.Errorf("first event = %q ts=%v, want query at ts 1000", out.TraceEvents[0].Name, out.TraceEvents[0].TS)
	}
	if out.TraceEvents[1].Name != "parse" || out.TraceEvents[1].TS != 0 {
		t.Errorf("second event = %q ts=%v, want parse at ts 0", out.TraceEvents[1].Name, out.TraceEvents[1].TS)
	}
	if args := out.TraceEvents[2].Args; args["rows_skipped"] != float64(900) {
		t.Errorf("scan args = %v, want rows_skipped 900", args)
	}
	// Distinct queries get distinct tids.
	if out.TraceEvents[0].TID == out.TraceEvents[len(out.TraceEvents)-1].TID {
		t.Error("both queries share a tid")
	}
}

// TestPrometheusLabelDeterminism locks the exposition rule the telemetry
// endpoint depends on: label keys render sorted within every series line,
// including the synthetic "le" key merged into histogram bucket lines at
// its sorted position (between "aa" and "zz" here).
func TestPrometheusLabelDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register with deliberately unsorted label order.
	h := r.Histogram("det_seconds", "help", []float64{1, 2}, L("zz", "b"), L("aa", "a"))
	h.Observe(0.5)
	h.Observe(1.5)
	r.Counter("det_total", "help", L("b", "2"), L("a", "1")).Inc()
	const want = `# HELP det_seconds help
# TYPE det_seconds histogram
det_seconds_bucket{aa="a",le="1",zz="b"} 1
det_seconds_bucket{aa="a",le="2",zz="b"} 2
det_seconds_bucket{aa="a",le="+Inf",zz="b"} 2
det_seconds_sum{aa="a",zz="b"} 2
det_seconds_count{aa="a",zz="b"} 2
# HELP det_total help
# TYPE det_total counter
det_total{a="1",b="2"} 1
`
	for i := 0; i < 3; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != want {
			t.Fatalf("exposition (pass %d):\n--- got ---\n%s--- want ---\n%s", i, sb.String(), want)
		}
	}
}

// BenchmarkSpanTreeBuild documents the per-query cost of the span tree
// the engine now builds: root + plan/prune/scan children + one segment
// child, all finished. This is the entire tracing overhead added to a
// query beyond the flat QueryTrace.
func BenchmarkSpanTreeBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := NewSpan("query")
		root.StartChild("plan").FinishRows(1000, 10, 0)
		root.StartChild("prune").FinishRows(1000, 0, 900)
		scan := root.StartChild("scan")
		scan.StartChild("segment [0,100)").FinishRows(100, 10, 0)
		scan.FinishRows(100, 10, 0)
		root.FinishRows(1000, 10, 900)
		sink = root
	}
}

func TestDefaultBucketsCloned(t *testing.T) {
	a := LatencyBuckets()
	a[0] = -1
	if b := LatencyBuckets(); b[0] == -1 {
		t.Fatal("LatencyBuckets returned a shared slice; callers can corrupt the defaults")
	}
	for _, bs := range [][]float64{LatencyBuckets(), RowCountBuckets(), RatioBuckets()} {
		if len(bs) == 0 {
			t.Fatal("empty default bucket set")
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("bucket bounds not strictly increasing: %v", bs)
			}
		}
	}
}
