// Package obs is the engine-wide observability layer: an atomic metrics
// registry (counters, gauges, fixed-bucket histograms), per-query traces
// with phase timings, and a bounded adaptation-event log.
//
// The package is zero-dependency (standard library only) and built for an
// always-on deployment: reading or bumping a metric on the scan path is a
// single atomic operation on a pointer the caller resolved once at setup
// time — no map lookups, no locks, no per-row allocation. Registration
// (Counter/Gauge/Histogram lookups by name) takes a mutex and is meant for
// cold paths only.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic;
// this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic bucket counters and a
// lock-free running sum. Bucket i counts observations v <= Bounds[i]; one
// implicit overflow bucket catches the rest (+Inf).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the "le" bucket
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns per-bucket counts aligned with Bounds, plus one
// final overflow (+Inf) entry.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// AccumulateBuckets adds the histogram's per-bucket counts into dst,
// which must have len(Bounds())+1 entries. Allocation-free, so periodic
// samplers can merge histograms across tables without garbage.
func (h *Histogram) AccumulateBuckets(dst []int64) {
	for i := range h.buckets {
		dst[i] += h.buckets[i].Load()
	}
}

// QuantileFromBuckets estimates the q-th quantile (q in [0,1]) from
// fixed-bucket counts (len(bounds)+1 entries, last = overflow), linearly
// interpolating within the winning bucket. Estimates are bounded by one
// bucket width; the overflow bucket reports the top finite bound.
func QuantileFromBuckets(bounds []float64, buckets []int64, q float64) float64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range buckets {
		prev := cum
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(bounds) { // overflow bucket: no finite upper bound
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		frac := (target - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// Label is one name=value dimension of a metric series (e.g. the table or
// column a counter is scoped to).
type Label struct {
	Key, Value string
}

// L is a convenience constructor for Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates registry families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels    string  // rendered {k="v",...} or ""
	labelList []Label // sorted by key; retained so exposition can merge
	// extra labels (a histogram's "le") in sorted key order.
	c *Counter
	g *Gauge
	h *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; Counter/Gauge/Histogram get-or-create their series under
// a mutex, so callers should resolve pointers once and cache them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// sortLabels returns a copy of labels sorted by key.
func sortLabels(labels []Label) []Label {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// renderSorted produces the canonical {k="v",...} form from an
// already-sorted label list, or "".
func renderSorted(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// getFamily returns the family for name, creating it with the given kind
// and help text. Registering the same name with a different kind panics:
// that is a programming error the process should not limp past.
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// Counter returns (creating if needed) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	ls := sortLabels(labels)
	key := renderSorted(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, labelList: ls, c: &Counter{}}
		f.series[key] = s
	}
	return s.c
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	ls := sortLabels(labels)
	key := renderSorted(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, labelList: ls, g: &Gauge{}}
		f.series[key] = s
	}
	return s.g
}

// Histogram returns (creating if needed) the histogram series name{labels}
// with the given bucket upper bounds. Bounds are fixed by the first
// registration; later calls reuse the existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	ls := sortLabels(labels)
	key := renderSorted(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, labelList: ls, h: newHistogram(bounds)}
		f.series[key] = s
	}
	return s.h
}

// familySnapshot is a point-in-time view of one family for exposition:
// the series list is copied under the registry mutex (series maps mutate
// on registration), while the metric values themselves are read atomically
// afterwards.
type familySnapshot struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// snapshot copies the registry structure in deterministic (name, label)
// order.
func (r *Registry) snapshot() []familySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familySnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := familySnapshot{name: f.name, help: f.help, kind: f.kind}
		fs.series = make([]*series, 0, len(f.series))
		for _, s := range f.series {
			fs.series = append(fs.series, s)
		}
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].labels < fs.series[j].labels })
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
