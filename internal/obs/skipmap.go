package obs

// Skipmap types: the JSON shape of the telemetry server's /skipmap
// endpoint — a per-table, per-column view of which zones actually prune.
// The engine assembles these snapshots from live skipper state and the
// per-column counters; the types live here so the telemetry server (and
// any external consumer) depends only on obs.

// SkipmapZone is one zone of an introspectable skipper: its row window,
// value bounds, adaptation heat, and lifetime prune hit/miss counters.
// A "hit" is a probe where the zone's metadata was useful (the zone was
// skipped outright or proven covered); a "miss" left the zone as a
// candidate the scan had to read.
type SkipmapZone struct {
	Lo      int     `json:"lo"`
	Hi      int     `json:"hi"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	NonNull int     `json:"non_null"`
	Heat    float64 `json:"heat"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
}

// SkipmapColumn is the per-column skipping state: structure, adaptation
// state, lifetime counters, and (for introspectable skippers) per-zone
// detail. SkipRatio is the cumulative fraction of probed rows the
// column's metadata pruned: skipped / (skipped + candidate).
type SkipmapColumn struct {
	Column      string `json:"column"`
	Kind        string `json:"kind"` // "adaptive", "static", "imprint", "none"
	Zones       int    `json:"zones"`
	Bytes       int    `json:"bytes"`
	Enabled     bool   `json:"enabled"`
	Quarantined bool   `json:"quarantined"`
	Quarantine  string `json:"quarantine_cause,omitempty"`

	Probes        int64   `json:"probes"`
	Declined      int64   `json:"declined"`
	ZoneProbes    int64   `json:"zone_probes"`
	RowsSkipped   int64   `json:"rows_skipped"`
	CandidateRows int64   `json:"candidate_rows"`
	CoveredRows   int64   `json:"covered_rows"`
	SkipRatio     float64 `json:"skip_ratio"`

	// ZoneDetail is present for skippers that expose per-zone counters
	// (adaptive zonemaps), truncated to the request's zone cap.
	ZoneDetail     []SkipmapZone `json:"zone_detail,omitempty"`
	ZonesTruncated int           `json:"zones_truncated,omitempty"` // zones beyond the cap
}

// SkipmapTable is one table's skipmap: row count plus per-column state,
// columns sorted by name. A sharded table reports one SkipmapTable per
// shard (Shard 1..Shards); unsharded tables leave both fields zero.
type SkipmapTable struct {
	Table string `json:"table"`
	// Shard is this entry's 1-based shard number on a sharded table
	// (0 = unsharded); Shards is the table's total shard count.
	Shard   int             `json:"shard,omitempty"`
	Shards  int             `json:"shards,omitempty"`
	Rows    int             `json:"rows"`
	Columns []SkipmapColumn `json:"columns"`
}
