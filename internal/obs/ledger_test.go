package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLedgerAppendStampsAndRetains(t *testing.T) {
	l := NewLedger(8)
	l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventSplit,
		Cause: "split-gain", Fingerprint: "select count(*) from data where v between ? and ?",
		ZonesBefore: 4, ZonesAfter: 5, RowLo: 0, RowHi: 1024})
	l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventWiden,
		Cause: "update-widen", ZonesBefore: 5, ZonesAfter: 5,
		MinBefore: 10, MaxBefore: 20, MinAfter: 10, MaxAfter: 99})

	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("Records() = %d records, want 2", len(recs))
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("seq stamps = %d, %d, want 1, 2", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].Time.IsZero() || recs[1].Time.IsZero() {
		t.Fatal("append did not stamp times")
	}
	if recs[1].Time.Before(recs[0].Time) {
		t.Fatal("records not in chronological order")
	}
	if l.Dropped() != 0 {
		t.Fatalf("Dropped() = %d with a non-full ring", l.Dropped())
	}
}

func TestLedgerRingEvictsOldestAndCounts(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventSplit, Cause: "split-gain"})
	}
	recs := l.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want capacity 4", len(recs))
	}
	// Oldest-first: the survivors are the last four appends.
	for i, r := range recs {
		if want := uint64(7 + i); r.Seq != want {
			t.Fatalf("recs[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
	if l.Seq() != 10 {
		t.Fatalf("Seq() = %d, want 10", l.Seq())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", l.Dropped())
	}
}

func TestLedgerTotalsFoldAtAppend(t *testing.T) {
	l := NewLedger(0)
	l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventSplit, Cause: "split-gain",
		Fingerprint: "q-template-1"})
	l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventWiden, Cause: "append-fold"})
	l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventSplit, Cause: "split-gain"})
	l.Append(LedgerRecord{Table: "other", Column: "w", Kind: EventRebuild, Cause: "manual"})

	tot := l.Totals("data")
	if tot.Events != 3 || tot.Splits != 2 {
		t.Fatalf("data totals = %d events / %d splits, want 3 / 2", tot.Events, tot.Splits)
	}
	// The second split had no fingerprint, so its cause wins.
	if tot.LastSplitCause != "split-gain" {
		t.Fatalf("LastSplitCause = %q, want cause fallback %q", tot.LastSplitCause, "split-gain")
	}
	if tot.LastSplit.IsZero() {
		t.Fatal("LastSplit not stamped")
	}
	if ot := l.Totals("other"); ot.Events != 1 || ot.Splits != 0 {
		t.Fatalf("other totals = %+v, want 1 event, 0 splits", ot)
	}
	if none := l.Totals("absent"); none.Events != 0 {
		t.Fatalf("absent table totals = %+v, want zero value", none)
	}
}

func TestLedgerTotalsPreferFingerprint(t *testing.T) {
	l := NewLedger(0)
	l.Append(LedgerRecord{Table: "data", Column: "v", Kind: EventSplit, Cause: "split-gain",
		Fingerprint: "select * from data where v = ?"})
	if got := l.Totals("data").LastSplitCause; got != "select * from data where v = ?" {
		t.Fatalf("LastSplitCause = %q, want the triggering fingerprint", got)
	}
}

// TestLedgerRecordGoldenJSON locks the wire schema of one ledger record
// — the /adaptation events array is built from these. Additions are
// fine; renames and removals break dashboards.
func TestLedgerRecordGoldenJSON(t *testing.T) {
	r := LedgerRecord{Seq: 7, Table: "data", Column: "v", Shard: 2,
		Kind: EventSplit, Cause: "split-gain", Fingerprint: "fp",
		ZonesBefore: 4, ZonesAfter: 5, RowLo: 0, RowHi: 1024,
		MinBefore: 1, MaxBefore: 9, MinAfter: 1, MaxAfter: 9}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"seq":7,"time":"0001-01-01T00:00:00Z","table":"data","column":"v",` +
		`"shard":2,"kind":"split","cause":"split-gain","fingerprint":"fp",` +
		`"zones_before":4,"zones_after":5,"row_lo":0,"row_hi":1024,` +
		`"min_before":1,"max_before":9,"min_after":1,"max_after":9}`
	if string(b) != want {
		t.Fatalf("ledger record JSON drifted:\n got %s\nwant %s", b, want)
	}
}

func TestLedgerRecordString(t *testing.T) {
	r := LedgerRecord{Seq: 3, Table: "data", Column: "v", Kind: EventSplit,
		Cause: "split-gain", ZonesBefore: 4, ZonesAfter: 5}
	s := r.String()
	for _, frag := range []string{"#3", "data.v", "split", "cause=split-gain", "4->5"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q, missing %q", s, frag)
		}
	}
}

// TestLedgerChurnRace hammers one ledger from concurrent writers and
// readers. Run under -race in CI it proves the mutex discipline; run
// plain it still checks drop accounting under contention.
func TestLedgerChurnRace(t *testing.T) {
	l := NewLedger(64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append(LedgerRecord{Table: "data", Column: "v",
					Kind: EventSplit, Cause: "split-gain", Shard: w + 1})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = l.Records()
					_ = l.Totals("data")
					_ = l.Dropped()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const appended = writers * perWriter
	if l.Seq() != appended {
		t.Fatalf("Seq() = %d, want %d", l.Seq(), appended)
	}
	if got := l.Dropped(); got != appended-64 {
		t.Fatalf("Dropped() = %d, want %d", got, appended-64)
	}
	if tot := l.Totals("data"); tot.Events != appended || tot.Splits != appended {
		t.Fatalf("totals = %d events / %d splits, want %d / %d", tot.Events, tot.Splits, appended, appended)
	}
	recs := l.Records()
	if len(recs) != 64 {
		t.Fatalf("retained %d, want 64", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("retained records out of order at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}
