package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// EventKind classifies one adaptation event.
type EventKind uint8

// Adaptation event kinds. Structural events (split, merge, tail fold) come
// from the adaptive zonemaps; arbitration events (disable, enable) from
// their cost model; lifecycle events from the engine.
const (
	EventSplit        EventKind = iota // zones refined from scan statistics
	EventMerge                         // cold adjacent zones coalesced
	EventDisable                       // arbitration turned skipping off
	EventEnable                        // shadow probe turned skipping back on
	EventTailFold                      // append tail folded into zones
	EventSkipperBuilt                  // skipping metadata built on a column
	EventSkipperLoad                   // learned metadata restored from snapshot
	EventQuarantine                    // skipper failed (panic/corruption); column falls back to full scans
	EventRebuild                       // quarantined metadata rebuilt from base data
	EventWiden                         // a zone's value hull loosened in place by an append/update
)

// MarshalJSON renders the kind by name so event JSON is self-describing.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the name form, so clients of /events and
// /adaptation can decode records back into the exported types.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for c := EventSplit; c <= EventWiden; c++ {
		if c.String() == name {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("unknown event kind %q", name)
}

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSplit:
		return "split"
	case EventMerge:
		return "merge"
	case EventDisable:
		return "disable"
	case EventEnable:
		return "enable"
	case EventTailFold:
		return "tail-fold"
	case EventSkipperBuilt:
		return "skipper-built"
	case EventSkipperLoad:
		return "skipper-load"
	case EventQuarantine:
		return "quarantine"
	case EventRebuild:
		return "rebuild"
	case EventWiden:
		return "widen"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one adaptation event: a structural or arbitration change to a
// column's skipping metadata.
type Event struct {
	Seq    uint64    // monotonically increasing per log
	Time   time.Time // stamped at append
	Table  string
	Column string
	Kind   EventKind
	Zones  int // zone count after the event
	Delta  int // zones added (split/fold) or removed (merge); 0 otherwise
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s.%s %s zones=%d delta=%d", e.Seq, e.Table, e.Column, e.Kind, e.Zones, e.Delta)
}

// EventLog is a bounded, concurrency-safe ring buffer of adaptation
// events. Appends are O(1); when full, the oldest events are dropped (and
// counted). Structural adaptation is rare relative to queries, so a small
// mutex here is far off the scan path.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	next    int // ring write position
	full    bool
	seq     uint64
	dropped uint64
}

// DefaultEventLogSize is the ring capacity used when none is given.
const DefaultEventLogSize = 1024

// NewEventLog returns a log holding the last capacity events
// (DefaultEventLogSize when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Append records one event, stamping its sequence number and time.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	e.Time = time.Now()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
		l.full = true
		l.dropped++
	}
	l.mu.Unlock()
}

// Events returns a chronological copy of the retained events.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if l.full {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Seq returns the total number of events ever appended.
func (l *EventLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many events the ring has evicted.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}
