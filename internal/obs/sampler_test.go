package obs

import (
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSamplerRingWrap drives the sampler well past its capacity and
// proves the ring keeps exactly the newest samples, oldest-first, with
// per-sample columns sorted by (table, column).
func TestSamplerRingWrap(t *testing.T) {
	var n atomic.Int64
	s := NewSampler(time.Millisecond, 4, func(h *HistorySample) {
		h.Queries = n.Add(1)
		// Deliberately unsorted: the sampler must sort.
		h.Columns = append(h.Columns,
			HistoryColumn{Table: "t", Column: "z"},
			HistoryColumn{Table: "a", Column: "b"},
			HistoryColumn{Table: "t", Column: "a"},
		)
	})
	defer s.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for s.Total() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler took only %d samples in 5s", s.Total())
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()

	total := s.Total()
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d after %d samples, want capacity 4", got, total)
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d samples, want 4", len(snap))
	}
	// Oldest-first and contiguous: the newest sample is the total'th fill.
	for i, h := range snap {
		want := int64(total) - int64(len(snap)-1-i)
		if h.Queries != want {
			t.Fatalf("sample %d carries fill #%d, want #%d (ring order broken)", i, h.Queries, want)
		}
		if len(h.Columns) != 3 {
			t.Fatalf("sample %d has %d columns, want 3", i, len(h.Columns))
		}
		for j := 1; j < len(h.Columns); j++ {
			if !columnLess(&h.Columns[j-1], &h.Columns[j]) {
				t.Fatalf("sample %d columns unsorted: %+v", i, h.Columns)
			}
		}
	}

	// Snapshot must be a deep copy: mutating it cannot reach the ring.
	snap[0].Columns[0].Table = "mutated"
	if s.Snapshot()[0].Columns[0].Table == "mutated" {
		t.Fatal("Snapshot shares column backing arrays with the ring")
	}
}

// TestSamplerFirstSampleImmediate: History is never empty, even before
// the first tick.
func TestSamplerFirstSampleImmediate(t *testing.T) {
	s := NewSampler(time.Hour, 8, func(h *HistorySample) { h.Queries = 42 })
	defer s.Stop()
	if s.Len() != 1 || s.Total() != 1 {
		t.Fatalf("Len=%d Total=%d right after NewSampler, want 1/1", s.Len(), s.Total())
	}
	if got := s.Snapshot()[0].Queries; got != 42 {
		t.Fatalf("first sample not filled: Queries=%d", got)
	}
}

// TestSamplerStopIdempotent: Stop joins the goroutine and is safe to
// call repeatedly and concurrently.
func TestSamplerStopIdempotent(t *testing.T) {
	s := NewSampler(time.Millisecond, 4, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Stop() }()
	}
	wg.Wait()
	s.Stop()
	if s.Len() < 1 {
		t.Fatal("nil fill should still record empty samples")
	}
}

// TestHistorySampleGoldenJSON locks the serialized shape of one timeline
// sample — key names and order — so /history consumers (the dashboard,
// scripts scraping the endpoint) can't be broken by a silent rename.
func TestHistorySampleGoldenJSON(t *testing.T) {
	const want = `{
  "time": "2026-01-02T03:04:05Z",
  "queries": 100,
  "rows_scanned": 2000,
  "rows_skipped": 8000,
  "rows_covered": 50,
  "slow_queries": 1,
  "errors": 2,
  "queue_depth": 3,
  "skip_ratio": 0.8,
  "latency_p50_seconds": 0.0001,
  "latency_p95_seconds": 0.002,
  "adapt_events": 17,
  "wal_lag_seconds": 0.004,
  "skip_regression": 0,
  "columns": [
    {
      "table": "data",
      "column": "v",
      "skip_ratio": 0.9,
      "zones": 64,
      "enabled": true
    }
  ]
}`
	h := HistorySample{
		Time:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Queries: 100, RowsScanned: 2000, RowsSkipped: 8000, RowsCovered: 50,
		SlowQueries: 1, Errors: 2, QueueDepth: 3, SkipRatio: 0.8,
		// LatencyBuckets is json:"-": raw histogram state stays off the
		// wire; consumers get the derived quantiles.
		LatencyBuckets: []int64{1, 2, 3},
		LatencyP50: 0.0001, LatencyP95: 0.002, AdaptEvents: 17, WALLagSeconds: 0.004,
		Columns: []HistoryColumn{{Table: "data", Column: "v", SkipRatio: 0.9, Zones: 64, Enabled: true}},
	}
	got, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("history sample JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSamplerSubscribe: subscribers see every tick exactly once, on the
// sampler goroutine, and unsubscribe takes effect for later ticks.
func TestSamplerSubscribe(t *testing.T) {
	var fills atomic.Int64
	s := NewSampler(time.Millisecond, 8, func(h *HistorySample) {
		h.Queries = fills.Add(1)
	})
	defer s.Stop()

	var seen atomic.Int64
	var last atomic.Int64
	unsub := s.Subscribe(func(h *HistorySample) {
		seen.Add(1)
		// Ticks arrive in order; the fill sequence must be monotonic.
		if prev := last.Swap(h.Queries); h.Queries <= prev {
			t.Errorf("tick out of order: %d after %d", h.Queries, prev)
		}
	})

	deadline := time.Now().Add(5 * time.Second)
	for seen.Load() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber saw only %d ticks in 5s", seen.Load())
		}
		time.Sleep(time.Millisecond)
	}

	unsub()
	frozen := seen.Load()
	// The sampler keeps ticking, but the unsubscribed callback must not
	// run again. (One in-flight dispatch may still land; allow it.)
	start := s.Total()
	for s.Total() < start+5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := seen.Load(); got > frozen+1 {
		t.Fatalf("unsubscribed callback kept firing: %d ticks after unsubscribe", got-frozen)
	}
}

// TestSamplerStopUnsubscribes: Stop halts the sampling goroutine — and
// with it all subscriber dispatch — without leaking the goroutine.
func TestSamplerStopUnsubscribes(t *testing.T) {
	before := runtime.NumGoroutine()
	var ticks atomic.Int64
	s := NewSampler(time.Millisecond, 8, nil)
	s.Subscribe(func(*HistorySample) { ticks.Add(1) })

	deadline := time.Now().Add(5 * time.Second)
	for ticks.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber never ran (%d ticks)", ticks.Load())
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	n := ticks.Load()
	time.Sleep(10 * time.Millisecond)
	if got := ticks.Load(); got != n {
		t.Fatalf("subscriber ran %d more times after Stop", got-n)
	}
	// The sampling goroutine is joined by Stop; the count must settle
	// back to (at most) where it started.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after Stop", before, runtime.NumGoroutine())
}

// BenchmarkSamplerTick measures one timeline sample end to end (slot
// reuse, fill, column sort). The steady state must not allocate: the
// ring recycles slots and their Columns backing arrays.
func BenchmarkSamplerTick(b *testing.B) {
	s := NewSampler(time.Hour, 64, func(h *HistorySample) {
		h.Queries = 1
		h.Columns = append(h.Columns,
			HistoryColumn{Table: "t", Column: "d"},
			HistoryColumn{Table: "t", Column: "c"},
			HistoryColumn{Table: "t", Column: "b"},
			HistoryColumn{Table: "t", Column: "a"},
		)
	})
	defer s.Stop()
	for i := 0; i < 70; i++ {
		s.sample() // warm the ring past capacity
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.sample()
	}
}
