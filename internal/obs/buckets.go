package obs

// Shared default histogram bucket sets. Every histogram in the engine
// draws from these so dashboards can aggregate across tables and metrics
// without per-site bucket drift; ad-hoc bounds at call sites are a bug.
var (
	// DefLatencyBuckets covers query/stage wall-clock latencies from 1µs
	// to 10s, one decade per bucket (values in seconds).
	DefLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

	// DefRowCountBuckets covers per-query row volumes (rows scanned,
	// returned, skipped) from 1 to 100M, one decade per bucket.
	DefRowCountBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

	// DefRatioBuckets covers fractions in [0, 1] (selectivity, skip
	// ratio), log-spaced at the low end where scan-heavy workloads live.
	DefRatioBuckets = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9, 1}
)

// cloned returns a private copy so callers cannot mutate the shared set.
func cloned(b []float64) []float64 {
	out := make([]float64, len(b))
	copy(out, b)
	return out
}

// LatencyBuckets returns a copy of the default latency bucket bounds.
func LatencyBuckets() []float64 { return cloned(DefLatencyBuckets) }

// RowCountBuckets returns a copy of the default row-count bucket bounds.
func RowCountBuckets() []float64 { return cloned(DefRowCountBuckets) }

// RatioBuckets returns a copy of the default ratio bucket bounds.
func RatioBuckets() []float64 { return cloned(DefRatioBuckets) }
