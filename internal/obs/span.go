package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Span is one node of a query's hierarchical execution trace: a named
// stage (parse, plan, prune, scan, a scan chunk, feedback, ...) with a
// wall-clock interval and row accounting. Spans form a tree rooted at
// QueryTrace.Root; the same tree backs EXPLAIN ANALYZE's rendering and
// the telemetry server's /traces endpoint (including the Chrome
// trace_event export).
//
// Concurrency: StartChild and Finish are safe to call from multiple
// goroutines (parallel scan workers each finish their own child span
// while siblings are still running), and the renderers (TreeLines,
// MarshalJSON, the Chrome export) lock per node, so they may run while
// spans are still being created and finished. Direct field reads are
// safe once the query has completed; the engine never mutates a trace
// after attaching it to a result.
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// Duration is zero until Finish.
	Duration time.Duration `json:"duration_ns"`

	// Row accounting: how many rows entered the stage, how many it
	// produced (matches, candidates — stage-dependent), and how many it
	// proved skippable. Zero-valued fields simply were not applicable.
	RowsIn      int `json:"rows_in,omitempty"`
	RowsOut     int `json:"rows_out,omitempty"`
	RowsSkipped int `json:"rows_skipped,omitempty"`

	mu       sync.Mutex
	children []*Span
}

// NewSpan starts a root span now.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild starts and attaches a child span now. Safe for concurrent
// use by parallel workers sharing a parent.
func (s *Span) StartChild(name string) *Span {
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Attach adds an already-built span (e.g. a synthesized stage whose
// interval is known only after the fact) as a child.
func (s *Span) Attach(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// AttachFirst prepends an already-built span, used by the SQL layer to
// slot the parse stage in front of the engine's plan/prune/scan children.
func (s *Span) AttachFirst(c *Span) {
	s.mu.Lock()
	s.children = append([]*Span{c}, s.children...)
	s.mu.Unlock()
}

// Finish stamps the span's duration. Calling Finish twice keeps the
// first stamp.
func (s *Span) Finish() {
	s.mu.Lock()
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
	s.mu.Unlock()
}

// FinishDuration stamps an explicit duration, used when a stage's wall
// interval is known externally (e.g. scan time net of interleaved
// feedback). First stamp wins, like Finish.
func (s *Span) FinishDuration(d time.Duration) {
	s.mu.Lock()
	if s.Duration == 0 {
		s.Duration = d
	}
	s.mu.Unlock()
}

// FinishRows stamps the duration and row accounting in one call.
func (s *Span) FinishRows(in, out, skipped int) {
	s.mu.Lock()
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
	s.RowsIn, s.RowsOut, s.RowsSkipped = in, out, skipped
	s.mu.Unlock()
}

// Children returns a copy of the child list in attachment order.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// spanJSON mirrors Span for encoding (the mutex and unexported child
// slice make Span itself unmarshalable).
type spanJSON struct {
	Name        string        `json:"name"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"duration_ns"`
	RowsIn      int           `json:"rows_in,omitempty"`
	RowsOut     int           `json:"rows_out,omitempty"`
	RowsSkipped int           `json:"rows_skipped,omitempty"`
	Children    []*Span       `json:"children,omitempty"`
}

// MarshalJSON encodes the span tree.
func (s *Span) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	j := spanJSON{
		Name: s.Name, Start: s.Start, Duration: s.Duration,
		RowsIn: s.RowsIn, RowsOut: s.RowsOut, RowsSkipped: s.RowsSkipped,
		Children: append([]*Span(nil), s.children...),
	}
	s.mu.Unlock()
	return json.Marshal(j)
}

// treeLines renders the span tree as indented human-readable lines.
func (s *Span) treeLines(indent string, out []string) []string {
	s.mu.Lock()
	line := fmt.Sprintf("%sspan %-10s %s", indent, s.Name, s.Duration)
	if s.RowsIn > 0 || s.RowsOut > 0 || s.RowsSkipped > 0 {
		line += fmt.Sprintf(" (in %d, out %d, skipped %d rows)", s.RowsIn, s.RowsOut, s.RowsSkipped)
	}
	s.mu.Unlock()
	out = append(out, line)
	for _, c := range s.Children() {
		out = c.treeLines(indent+"  ", out)
	}
	return out
}

// TreeLines renders the span tree rooted here as indented lines.
func (s *Span) TreeLines() []string { return s.treeLines("", nil) }
