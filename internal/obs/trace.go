package obs

import (
	"fmt"
	"strings"
	"time"
)

// QueryTrace records one query execution: per-phase wall-clock timings
// (plan → metadata probe → scan → feedback) and the skipping decision each
// predicate column's skipper made. The engine allocates one trace per
// query (never per row) and attaches it to the result, so every query is
// traced with no opt-in switch.
type QueryTrace struct {
	Table string    `json:"table"`
	Start time.Time `json:"start"`

	// Session identifies the network session/connection the query arrived
	// on (see WithSession); "" for in-process queries.
	Session string `json:"session,omitempty"`

	// TraceID is the client-generated trace ID propagated over the wire
	// (see WithTrace); "" when the client sent none. It lets a remote
	// caller find this query's span tree in /traces.
	TraceID string `json:"trace_id,omitempty"`

	// Fingerprint is the literal-stripped query template (see
	// WithTemplate); "" for queries that bypassed a SQL frontend. The
	// slow-query log groups by it, and workload stats aggregate under it.
	Fingerprint string `json:"fingerprint,omitempty"`

	// PlanCached marks queries served from a prepared-statement/plan
	// cache (see WithPlanCached).
	PlanCached bool `json:"plan_cached,omitempty"`

	// Phase timings. Scan excludes the feedback time spent inside
	// skipper.Observe calls, which is accounted to Feedback. ShardPrune is
	// nonzero only on sharded tables: the time spent eliminating shards by
	// key bounds before any zone metadata was consulted (the shardprune
	// phase runs between plan and probe).
	Plan       time.Duration `json:"plan_ns"`                 // validation + aggregate/projection binding
	ShardPrune time.Duration `json:"shardprune_ns,omitempty"` // shard elimination by key bounds (sharded tables)
	Probe      time.Duration `json:"probe_ns"`                // predicate lowering + skipper metadata probes
	Scan       time.Duration `json:"scan_ns"`                 // kernel execution over candidate windows
	Feedback   time.Duration `json:"feedback_ns"`             // observations handed back to skippers
	Total      time.Duration `json:"total_ns"`

	// Execution totals (mirrors the result's ExecStats).
	RowsScanned int `json:"rows_scanned"`
	RowsSkipped int `json:"rows_skipped"`
	RowsCovered int `json:"rows_covered"`
	ZonesProbed int `json:"zones_probed"`
	RowsTotal   int `json:"rows_total"`
	Matched     int `json:"matched"` // qualifying rows (projection: rows returned)

	// Shard scatter-gather totals (sharded tables only; both zero and
	// omitted for unsharded engines).
	ShardsScanned int `json:"shards_scanned,omitempty"`
	ShardsPruned  int `json:"shards_pruned,omitempty"`

	// Shard is the 1-based shard whose engine executed this trace
	// (0 = unsharded, and for a sharded table's merged logical trace).
	// /slow?shard=N filters on it.
	Shard int `json:"shard,omitempty"`
	// Shards lists the 1-based shards a merged logical trace actually
	// scanned (empty elsewhere). /slow?shard=N also matches on it, so a
	// sharded table's slow queries are attributable to the shards that
	// served them.
	Shards []int `json:"shards,omitempty"`

	Predicates []PredicateTrace `json:"predicates,omitempty"`

	// Root is the hierarchical span tree covering parse → plan → prune →
	// scan(chunked) → feedback. EXPLAIN ANALYZE's timed rendering and the
	// telemetry server's /traces endpoint (including the Chrome
	// trace_event export) draw from the same tree.
	Root *Span `json:"spans,omitempty"`

	// Slow marks traces that exceeded the engine's slow-query threshold
	// and were captured in the slow-query log.
	Slow bool `json:"slow,omitempty"`
}

// PredicateTrace is the per-predicate-column skipping decision of one
// query: what the probe estimated (rows skippable, candidate windows) and
// what execution observed.
type PredicateTrace struct {
	Column    string `json:"column"`
	Predicate string `json:"predicate"` // lowered code intervals, or "IS NULL"
	Skipper   string `json:"skipper"`   // skipper kind; "" when the column has none
	Active    bool   `json:"active"`    // skipper participated (did not decline)

	ZonesProbed    int `json:"zones_probed"`
	Windows        int `json:"windows"`          // candidate windows emitted by the probe
	CoveredWindows int `json:"covered_windows"`  // windows proven fully matching by metadata
	CandidateRows  int `json:"candidate_rows"`   // rows inside candidate windows
	EstRowsSkipped int `json:"est_rows_skipped"` // rows the probe proved non-matching

	// Matched is the observed matching row count when execution can
	// attribute it to this predicate alone (single-predicate fast path);
	// -1 when unattributable (multi-column intersection).
	Matched int `json:"matched"`

	// Why-not-skipped reason counts: how the zones that stayed candidates
	// (neither skipped nor covered) failed to prune, classified by the
	// skipper during the probe. Only introspectable skippers (adaptive
	// zonemaps) report them; all zero otherwise.
	//
	// NotSkippedOverlap: the zone's value hull genuinely straddles the
	// predicate boundary — finer zones might help, wider ones won't.
	// NotSkippedWidened: the hull was loosened by appends/updates since
	// the zone was last rebuilt, so the miss may be stale metadata, not
	// data distribution — a fold or split would re-tighten it.
	// NotSkippedNullStraddle: the hull is fully covered by the predicate
	// but NULL rows inside the zone block the coverage proof.
	NotSkippedOverlap      int `json:"not_skipped_overlap,omitempty"`
	NotSkippedWidened      int `json:"not_skipped_widened,omitempty"`
	NotSkippedNullStraddle int `json:"not_skipped_null_straddle,omitempty"`
}

// Lines renders the trace as aligned human-readable lines. Durations are
// included only when withTimings is true, so tests can assert on the
// deterministic part.
func (t *QueryTrace) Lines(withTimings bool) []string {
	var out []string
	out = append(out, fmt.Sprintf("trace: table %q, %d rows", t.Table, t.RowsTotal))
	sharded := t.ShardsScanned+t.ShardsPruned > 0
	if withTimings {
		out = append(out, fmt.Sprintf("phase plan     %s", t.Plan))
		if sharded {
			out = append(out, fmt.Sprintf("phase shardprune %s (%d of %d shards pruned)",
				t.ShardPrune, t.ShardsPruned, t.ShardsScanned+t.ShardsPruned))
		}
		out = append(out,
			fmt.Sprintf("phase probe    %s (%d zone probes)", t.Probe, t.ZonesProbed),
			fmt.Sprintf("phase scan     %s (scanned %d, covered %d, skipped %d rows)",
				t.Scan, t.RowsScanned, t.RowsCovered, t.RowsSkipped),
			fmt.Sprintf("phase feedback %s", t.Feedback),
			fmt.Sprintf("total          %s", t.Total),
		)
	} else {
		if sharded {
			out = append(out, fmt.Sprintf("shardprune: %d of %d shards pruned",
				t.ShardsPruned, t.ShardsScanned+t.ShardsPruned))
		}
		out = append(out,
			fmt.Sprintf("probe: %d zone probes", t.ZonesProbed),
			fmt.Sprintf("scan: scanned %d, covered %d, skipped %d rows",
				t.RowsScanned, t.RowsCovered, t.RowsSkipped),
		)
	}
	if withTimings && t.Root != nil {
		out = append(out, t.Root.TreeLines()...)
	}
	for i := range t.Predicates {
		p := &t.Predicates[i]
		line := fmt.Sprintf("predicate on %q: %s", p.Column, p.Predicate)
		switch {
		case p.Skipper == "":
			line += " — no skipper, full evaluation"
		case !p.Active:
			line += fmt.Sprintf(" — %s skipper declined, full evaluation", p.Skipper)
		default:
			line += fmt.Sprintf(" — %s skipper: est. %d rows skippable (%.1f%%), %d windows (%d covered, %d candidate rows)",
				p.Skipper, p.EstRowsSkipped, pct(p.EstRowsSkipped, t.RowsTotal),
				p.Windows, p.CoveredWindows, p.CandidateRows)
			if p.Matched >= 0 {
				line += fmt.Sprintf("; actual matched %d", p.Matched)
			}
		}
		out = append(out, line)
		if n := p.NotSkippedOverlap + p.NotSkippedWidened + p.NotSkippedNullStraddle; n > 0 {
			out = append(out, fmt.Sprintf("  not skipped: %d zones — %d bounds-overlap, %d widened-by-recent-append, %d null-straddle",
				n, p.NotSkippedOverlap, p.NotSkippedWidened, p.NotSkippedNullStraddle))
		}
	}
	return out
}

// String renders the trace with timings.
func (t *QueryTrace) String() string { return strings.Join(t.Lines(true), "\n") }

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
