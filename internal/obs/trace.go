package obs

import (
	"fmt"
	"strings"
	"time"
)

// QueryTrace records one query execution: per-phase wall-clock timings
// (plan → metadata probe → scan → feedback) and the skipping decision each
// predicate column's skipper made. The engine allocates one trace per
// query (never per row) and attaches it to the result, so every query is
// traced with no opt-in switch.
type QueryTrace struct {
	Table string
	Start time.Time

	// Phase timings. Scan excludes the feedback time spent inside
	// skipper.Observe calls, which is accounted to Feedback.
	Plan     time.Duration // validation + aggregate/projection binding
	Probe    time.Duration // predicate lowering + skipper metadata probes
	Scan     time.Duration // kernel execution over candidate windows
	Feedback time.Duration // observations handed back to skippers
	Total    time.Duration

	// Execution totals (mirrors the result's ExecStats).
	RowsScanned int
	RowsSkipped int
	RowsCovered int
	ZonesProbed int
	RowsTotal   int
	Matched     int // qualifying rows (projection: rows returned)

	Predicates []PredicateTrace
}

// PredicateTrace is the per-predicate-column skipping decision of one
// query: what the probe estimated (rows skippable, candidate windows) and
// what execution observed.
type PredicateTrace struct {
	Column    string
	Predicate string // lowered code intervals, or "IS NULL"
	Skipper   string // skipper kind; "" when the column has none
	Active    bool   // skipper participated (did not decline)

	ZonesProbed    int
	Windows        int // candidate windows emitted by the probe
	CoveredWindows int // windows proven fully matching by metadata
	CandidateRows  int // rows inside candidate windows
	EstRowsSkipped int // rows the probe proved non-matching

	// Matched is the observed matching row count when execution can
	// attribute it to this predicate alone (single-predicate fast path);
	// -1 when unattributable (multi-column intersection).
	Matched int
}

// Lines renders the trace as aligned human-readable lines. Durations are
// included only when withTimings is true, so tests can assert on the
// deterministic part.
func (t *QueryTrace) Lines(withTimings bool) []string {
	var out []string
	out = append(out, fmt.Sprintf("trace: table %q, %d rows", t.Table, t.RowsTotal))
	if withTimings {
		out = append(out,
			fmt.Sprintf("phase plan     %s", t.Plan),
			fmt.Sprintf("phase probe    %s (%d zone probes)", t.Probe, t.ZonesProbed),
			fmt.Sprintf("phase scan     %s (scanned %d, covered %d, skipped %d rows)",
				t.Scan, t.RowsScanned, t.RowsCovered, t.RowsSkipped),
			fmt.Sprintf("phase feedback %s", t.Feedback),
			fmt.Sprintf("total          %s", t.Total),
		)
	} else {
		out = append(out,
			fmt.Sprintf("probe: %d zone probes", t.ZonesProbed),
			fmt.Sprintf("scan: scanned %d, covered %d, skipped %d rows",
				t.RowsScanned, t.RowsCovered, t.RowsSkipped),
		)
	}
	for i := range t.Predicates {
		p := &t.Predicates[i]
		line := fmt.Sprintf("predicate on %q: %s", p.Column, p.Predicate)
		switch {
		case p.Skipper == "":
			line += " — no skipper, full evaluation"
		case !p.Active:
			line += fmt.Sprintf(" — %s skipper declined, full evaluation", p.Skipper)
		default:
			line += fmt.Sprintf(" — %s skipper: est. %d rows skippable (%.1f%%), %d windows (%d covered, %d candidate rows)",
				p.Skipper, p.EstRowsSkipped, pct(p.EstRowsSkipped, t.RowsTotal),
				p.Windows, p.CoveredWindows, p.CandidateRows)
			if p.Matched >= 0 {
				line += fmt.Sprintf("; actual matched %d", p.Matched)
			}
		}
		out = append(out, line)
	}
	return out
}

// String renders the trace with timings.
func (t *QueryTrace) String() string { return strings.Join(t.Lines(true), "\n") }

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
