package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series, and the
// cumulative-bucket expansion for histograms. Output order is
// deterministic (families by name, series by label set).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Load())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.g.Load())
			case kindHistogram:
				writePromHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram expands one histogram series into cumulative _bucket
// lines plus _sum and _count.
func writePromHistogram(w io.Writer, name string, s *series) {
	counts := s.h.BucketCounts()
	bounds := s.h.Bounds()
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(s.labelList, "le", formatFloat(b)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(s.labelList, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(s.h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, s.h.Count())
}

// mergeLabel renders a series' label set with one extra pair inserted in
// sorted key position, so every series line — including histogram bucket
// expansions with their "le" label — keeps label keys sorted and the
// whole exposition stays byte-deterministic.
func mergeLabel(ls []Label, key, value string) string {
	merged := make([]Label, 0, len(ls)+1)
	inserted := false
	for _, l := range ls {
		if !inserted && key < l.Key {
			merged = append(merged, Label{Key: key, Value: value})
			inserted = true
		}
		merged = append(merged, l)
	}
	if !inserted {
		merged = append(merged, Label{Key: key, Value: value})
	}
	return renderSorted(merged)
}

// formatFloat renders a float compactly and deterministically.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonHistogram is the JSON exposition shape of one histogram series.
type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Buckets []jsonBucket `json:"buckets"`
}

// jsonBucket is one cumulative histogram bucket.
type jsonBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// WriteJSON renders every metric as one JSON object with "counters",
// "gauges", and "histograms" sections, keyed by name{labels}. Keys are
// emitted in sorted order (encoding/json sorts map keys), so output is
// deterministic and diffable.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]jsonHistogram{}
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			key := f.name + s.labels
			switch f.kind {
			case kindCounter:
				counters[key] = s.c.Load()
			case kindGauge:
				gauges[key] = s.g.Load()
			case kindHistogram:
				jh := jsonHistogram{Count: s.h.Count(), Sum: s.h.Sum()}
				counts := s.h.BucketCounts()
				cum := int64(0)
				for i, b := range s.h.Bounds() {
					cum += counts[i]
					jh.Buckets = append(jh.Buckets, jsonBucket{LE: formatFloat(b), Count: cum})
				}
				cum += counts[len(counts)-1]
				jh.Buckets = append(jh.Buckets, jsonBucket{LE: "+Inf", Count: cum})
				hists[key] = jh
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	})
}
