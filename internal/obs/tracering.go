package obs

import "sync"

// DefaultTraceRingSize is the trace ring capacity used when none is given.
const DefaultTraceRingSize = 256

// TraceRing is a bounded, concurrency-safe ring buffer of completed query
// traces. The engine appends one entry per query (a pointer copy); when
// full, the oldest traces are dropped and counted. Snapshot returns the
// retained traces oldest-first, so the telemetry server can serve "the
// last N queries" without stopping the engine.
type TraceRing struct {
	mu      sync.Mutex
	buf     []*QueryTrace
	next    int // ring write position once full
	full    bool
	total   uint64
	dropped uint64
}

// NewTraceRing returns a ring holding the last capacity traces
// (DefaultTraceRingSize when capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRingSize
	}
	return &TraceRing{buf: make([]*QueryTrace, 0, capacity)}
}

// Append records one completed trace. The ring takes ownership of the
// pointer; traces must not be mutated after appending.
func (r *TraceRing) Append(t *QueryTrace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
		r.full = true
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot returns a chronological (oldest-first) copy of the retained
// traces.
func (r *TraceRing) Snapshot() []*QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryTrace, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len returns the number of retained traces.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of traces ever appended.
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many traces the ring has evicted.
func (r *TraceRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
