package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one Chrome trace_event ("X" = complete event). Times are
// microseconds; chrome://tracing nests events on the same pid/tid by
// interval containment, which is exactly the span tree's shape.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // start, µs
	Dur   float64        `json:"dur"` // duration, µs
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the trace_event JSON object format (the array format
// loads too, but the object form carries metadata).
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the traces' span trees as Chrome trace_event
// JSON loadable in chrome://tracing (or ui.perfetto.dev). Each query gets
// its own tid so concurrent queries lay out side by side; timestamps are
// relative to the earliest trace so the viewport opens on the data.
func WriteChromeTrace(w io.Writer, traces []*QueryTrace) error {
	var epoch time.Time
	for _, t := range traces {
		if t == nil {
			continue
		}
		// A trace's earliest instant can precede t.Start: the parse span
		// is stamped before the engine trace exists.
		start := t.Start
		if t.Root != nil {
			start = spanMinStart(t.Root, start)
		}
		if epoch.IsZero() || start.Before(epoch) {
			epoch = start
		}
	}
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayUnit: "ms"}
	for i, t := range traces {
		if t == nil {
			continue
		}
		tid := i + 1
		if t.Root != nil {
			out.TraceEvents = appendChromeSpan(out.TraceEvents, t.Root, epoch, tid, t.Table)
			continue
		}
		// Traces predating span capture still export their phase timings.
		ts := t.Start
		for _, ph := range []struct {
			name string
			d    time.Duration
		}{{"plan", t.Plan}, {"probe", t.Probe}, {"scan", t.Scan}, {"feedback", t.Feedback}} {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: ph.name, Cat: t.Table, Phase: "X",
				TS: micros(ts.Sub(epoch)), Dur: micros(ph.d), PID: 1, TID: tid,
			})
			ts = ts.Add(ph.d)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// appendChromeSpan flattens one span subtree into events.
func appendChromeSpan(evs []chromeEvent, s *Span, epoch time.Time, tid int, cat string) []chromeEvent {
	s.mu.Lock()
	ev := chromeEvent{
		Name: s.Name, Cat: cat, Phase: "X",
		TS: micros(s.Start.Sub(epoch)), Dur: micros(s.Duration), PID: 1, TID: tid,
	}
	if s.RowsIn > 0 || s.RowsOut > 0 || s.RowsSkipped > 0 {
		ev.Args = map[string]any{
			"rows_in": s.RowsIn, "rows_out": s.RowsOut, "rows_skipped": s.RowsSkipped,
		}
	}
	s.mu.Unlock()
	evs = append(evs, ev)
	for _, c := range s.Children() {
		evs = appendChromeSpan(evs, c, epoch, tid, cat)
	}
	return evs
}

// spanMinStart returns the earliest start across a span subtree.
func spanMinStart(s *Span, min time.Time) time.Time {
	if s.Start.Before(min) {
		min = s.Start
	}
	for _, c := range s.Children() {
		min = spanMinStart(c, min)
	}
	return min
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
