package obs

import "context"

// Session identity flows from network frontends to query traces through
// the context: the server stamps each request's context with its
// session/connection ID, and the engine copies it onto the QueryTrace it
// allocates for that query. Keeping the plumbing in obs (rather than the
// engine) lets any frontend — TCP server, future HTTP SQL endpoint —
// tag traces without the engine knowing who called.

// sessionKey is the private context key for the session ID.
type sessionKey struct{}

// WithSession returns a context carrying the given session ID. IDs are
// free-form; the network server uses "conn-<n>".
func WithSession(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, sessionKey{}, id)
}

// SessionFromContext returns the session ID carried by ctx, or "".
func SessionFromContext(ctx context.Context) string {
	id, _ := ctx.Value(sessionKey{}).(string)
	return id
}

// traceKey is the private context key for the client trace ID.
type traceKey struct{}

// WithTrace returns a context carrying a client-generated trace ID. The
// network server stamps each request's context with the ID its client
// sent, and the engine copies it onto the QueryTrace — so a remote caller
// can correlate its own latency measurements with the server's /traces
// span tree for the same query.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFromContext returns the trace ID carried by ctx, or "".
func TraceFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// templateKey is the private context key for the query template
// (fingerprint).
type templateKey struct{}

// WithTemplate returns a context carrying the query's literal-stripped
// fingerprint. SQL frontends stamp it after parsing (or from their
// prepared-statement cache); the engine copies it onto the QueryTrace
// and uses it as the workload-stats and pprof-label identity. Queries
// without a template (direct engine API calls, benchmarks) skip the
// attribution path entirely.
func WithTemplate(ctx context.Context, fingerprint string) context.Context {
	if fingerprint == "" {
		return ctx
	}
	return context.WithValue(ctx, templateKey{}, fingerprint)
}

// TemplateFromContext returns the query fingerprint carried by ctx, or "".
func TemplateFromContext(ctx context.Context) string {
	fp, _ := ctx.Value(templateKey{}).(string)
	return fp
}

// planCachedKey is the private context key for the plan-cache marker.
type planCachedKey struct{}

// WithPlanCached marks ctx as executing a statement served from a
// prepared-statement/plan cache, so workload stats can report cache
// hit rates per template.
func WithPlanCached(ctx context.Context) context.Context {
	return context.WithValue(ctx, planCachedKey{}, true)
}

// PlanCachedFromContext reports whether ctx carries the plan-cache marker.
func PlanCachedFromContext(ctx context.Context) bool {
	hit, _ := ctx.Value(planCachedKey{}).(bool)
	return hit
}
