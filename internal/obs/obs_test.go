package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) resolves to the same series.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "help", L("a", "1"))
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Different labels are a different series.
	if r.Gauge("g", "help", L("a", "2")) == g {
		t.Fatal("distinct label sets shared a series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	// Buckets are "le": 1 catches {0.5, 1}, 10 catches {5}, 100 catches
	// {50}, overflow catches {500}.
	want := []int64{2, 1, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two kinds did not panic")
		}
	}()
	r.Gauge("m", "help")
}

// goldenRegistry builds the small fixture behind both exposition goldens.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests.", L("table", "t")).Add(3)
	r.Gauge("test_temp", "Temp.").Set(-2)
	h := r.Histogram("test_lat_seconds", "Latency.", []float64{0.5, 1, 2.5})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(7)
	return r
}

func TestGoldenPrometheus(t *testing.T) {
	const want = `# HELP test_lat_seconds Latency.
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.5"} 1
test_lat_seconds_bucket{le="1"} 2
test_lat_seconds_bucket{le="2.5"} 2
test_lat_seconds_bucket{le="+Inf"} 3
test_lat_seconds_sum 8
test_lat_seconds_count 3
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{table="t"} 3
# HELP test_temp Temp.
# TYPE test_temp gauge
test_temp -2
`
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestGoldenJSON(t *testing.T) {
	const want = `{
  "counters": {
    "test_requests_total{table=\"t\"}": 3
  },
  "gauges": {
    "test_temp": -2
  },
  "histograms": {
    "test_lat_seconds": {
      "count": 3,
      "sum": 8,
      "buckets": [
        {
          "le": "0.5",
          "count": 1
        },
        {
          "le": "1",
          "count": 2
        },
        {
          "le": "2.5",
          "count": 2
        },
        {
          "le": "+Inf",
          "count": 3
        }
      ]
    }
  }
}
`
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("json exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Table: "t", Column: "v", Kind: EventSplit, Zones: i})
	}
	if got := l.Seq(); got != 6 {
		t.Fatalf("seq = %d, want 6", got)
	}
	if got := l.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i + 3); ev.Seq != want {
			t.Fatalf("event[%d].Seq = %d, want %d (ring order broken)", i, ev.Seq, want)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event[%d] missing timestamp", i)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EventSplit: "split", EventMerge: "merge", EventDisable: "disable",
		EventEnable: "enable", EventTailFold: "tail-fold",
		EventSkipperBuilt: "skipper-built", EventSkipperLoad: "skipper-load",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTraceLines(t *testing.T) {
	tr := &QueryTrace{
		Table: "t", RowsTotal: 1000,
		RowsScanned: 100, RowsSkipped: 800, RowsCovered: 100, ZonesProbed: 16,
		Predicates: []PredicateTrace{{
			Column: "v", Predicate: "[10, 20]", Skipper: "adaptive-zonemap",
			Active: true, ZonesProbed: 16, Windows: 3, CoveredWindows: 1,
			CandidateRows: 200, EstRowsSkipped: 800, Matched: 42,
		}},
	}
	lines := tr.Lines(false)
	want := []string{
		`trace: table "t", 1000 rows`,
		`probe: 16 zone probes`,
		`scan: scanned 100, covered 100, skipped 800 rows`,
		`predicate on "v": [10, 20] — adaptive-zonemap skipper: est. 800 rows skippable (80.0%), 3 windows (1 covered, 200 candidate rows); actual matched 42`,
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d:\n got  %q\n want %q", i, lines[i], want[i])
		}
	}
	// With timings every phase appears, and String carries them too.
	timed := strings.Join(tr.Lines(true), "\n")
	for _, phase := range []string{"phase plan", "phase probe", "phase scan", "phase feedback", "total"} {
		if !strings.Contains(timed, phase) {
			t.Errorf("timed trace missing %q:\n%s", phase, timed)
		}
	}
	if tr.String() != timed {
		t.Error("String() differs from joined timed lines")
	}
}

// TestRegistryConcurrent hammers registration, updates, and exposition from
// many goroutines; run under -race this proves the registry's locking
// discipline (mutex on structure, atomics on values).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := []string{"a_total", "b_total"}[id%2]
			c := r.Counter(name, "help", L("w", string(rune('a'+id))))
			h := r.Histogram("h_seconds", "help", []float64{0.01, 0.1, 1})
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.05)
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkQueryTraceRecord documents the per-query cost of the trace the
// engine allocates for every query: one QueryTrace + a one-predicate
// slice, phase stamps, and the counter/histogram updates finishTrace
// performs. This is the entire per-query observability overhead; nothing
// is recorded per row.
func BenchmarkQueryTraceRecord(b *testing.B) {
	r := NewRegistry()
	queries := r.Counter("adskip_queries_total", "help", L("table", "t"))
	scanned := r.Counter("adskip_rows_scanned_total", "help", L("table", "t"))
	skipped := r.Counter("adskip_rows_skipped_total", "help", L("table", "t"))
	lat := r.Histogram("adskip_query_seconds", "help", []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}, L("table", "t"))
	sel := r.Histogram("adskip_query_selectivity", "help", []float64{1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1}, L("table", "t"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &QueryTrace{Table: "t", Start: time.Now()}
		tr.Plan = time.Since(tr.Start)
		tr.Predicates = make([]PredicateTrace, 1)
		tr.Predicates[0] = PredicateTrace{Column: "v", Skipper: "adaptive-zonemap", Active: true, Matched: -1}
		tr.RowsScanned, tr.RowsSkipped, tr.RowsTotal = 1024, 64512, 65536
		tr.Total = time.Since(tr.Start)
		queries.Inc()
		scanned.Add(int64(tr.RowsScanned))
		skipped.Add(int64(tr.RowsSkipped))
		lat.Observe(tr.Total.Seconds())
		sel.Observe(0.01)
		sink = tr
	}
}

// sink defeats dead-code elimination in benchmarks.
var sink interface{}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram([]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}
