package obs

import (
	"sync"
	"time"
)

// The adaptation timeline: a background sampler that snapshots the
// engine's cumulative counters plus per-column skipping state onto a
// bounded ring, so the convergence the paper plots as a *curve* (skip
// ratio and latency improving query-over-query as the adaptive zonemaps
// learn the workload) can be watched live instead of inferred from two
// point-in-time scrapes.
//
// The sampler is built for an always-on deployment: ring slots and their
// per-column slices are reused once the ring is warm, so the steady
// state allocates nothing on the sampling goroutine; the fill callback
// reads resolved atomic metric handles, never the registry maps.

// HistoryColumn is one column's skipping state at sample time.
type HistoryColumn struct {
	Table string `json:"table"`
	// Shard is the 1-based shard the column state came from (0 =
	// unsharded). /history?shard=N filters per-sample columns on it.
	Shard  int    `json:"shard,omitempty"`
	Column string `json:"column"`
	// SkipRatio is the cumulative fraction of probed rows the column's
	// metadata pruned: skipped / (skipped + candidate).
	SkipRatio float64 `json:"skip_ratio"`
	Zones     int64   `json:"zones"`
	Enabled   bool    `json:"enabled"`
}

// HistorySample is one point on the adaptation timeline: cumulative
// engine totals, estimated latency quantiles, and per-column skipping
// state (sorted by table then column, so serialized series are
// deterministic).
type HistorySample struct {
	Time        time.Time `json:"time"`
	Queries     int64     `json:"queries"`
	RowsScanned int64     `json:"rows_scanned"`
	RowsSkipped int64     `json:"rows_skipped"`
	RowsCovered int64     `json:"rows_covered"`
	SlowQueries int64     `json:"slow_queries"`
	// Errors is the cumulative count of failed queries (canceled, over
	// budget, or recovered panics).
	Errors int64 `json:"errors"`
	// QueueDepth is the number of queries waiting for admission at sample
	// time (instantaneous, not cumulative).
	QueueDepth int64 `json:"queue_depth"`
	// SkipRatio is the cumulative engine-wide skip ratio:
	// skipped / (skipped + scanned).
	SkipRatio float64 `json:"skip_ratio"`
	// LatencyP50/P95 are estimated from the engine's cumulative latency
	// histograms (merged across tables), in seconds.
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP95 float64 `json:"latency_p95_seconds"`
	// AdaptEvents is the cumulative adaptation-event count (splits,
	// merges, arbitration flips, quarantines).
	AdaptEvents int64 `json:"adapt_events"`
	// WALLagSeconds is the age of the oldest write-ahead-log record not
	// yet fsynced (0 when no WAL is configured or nothing is pending).
	// Instantaneous, like QueueDepth.
	WALLagSeconds float64 `json:"wal_lag_seconds"`
	// SkipRegression is the worst per-template skip-rate regression at
	// sample time: max over templates of (learned baseline − fast EWMA)
	// of the template's skip rate, clamped at 0. Instantaneous, like
	// QueueDepth; feeds the skip_regression health signal.
	SkipRegression float64 `json:"skip_regression"`

	Columns []HistoryColumn `json:"columns"`

	// LatencyBuckets holds the merged cumulative latency histogram counts
	// at sample time (len(LatencyBuckets bounds)+1, last = overflow). It
	// feeds windowed quantile estimation (per-tick bucket deltas) and is
	// excluded from JSON: /history consumers get the derived quantiles.
	// Like Columns, the slice's backing array is reused once the ring is
	// warm.
	LatencyBuckets []int64 `json:"-"`
}

// DefaultSampleInterval and DefaultSampleCapacity are the sampler's
// defaults: one sample per second, ~17 minutes of history.
const (
	DefaultSampleInterval = time.Second
	DefaultSampleCapacity = 1024
)

// Sampler periodically fills HistorySamples into a bounded ring via a
// caller-supplied callback. It owns one goroutine; Stop shuts it down
// and waits, so a stopped Sampler leaks nothing.
type Sampler struct {
	interval time.Duration
	fill     func(*HistorySample)

	mu    sync.Mutex
	buf   []HistorySample
	next  int
	full  bool
	total uint64

	// Subscribers are invoked synchronously on the sampler goroutine after
	// each tick, outside s.mu. subScratch is the reused dispatch list.
	subMu      sync.Mutex
	subs       map[int]func(*HistorySample)
	nextSub    int
	subScratch []func(*HistorySample)

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewSampler starts a sampler calling fill every interval into a ring of
// the given capacity (defaults apply when <= 0). The first sample is
// taken immediately so History is never empty. fill runs on the sampler
// goroutine with the slot's reused Columns slice (length zero, capacity
// retained); it must append columns in any order — the sampler sorts.
func NewSampler(interval time.Duration, capacity int, fill func(*HistorySample)) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	s := &Sampler{
		interval: interval,
		fill:     fill,
		buf:      make([]HistorySample, 0, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample()
	go s.run()
	return s
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Subscribe registers fn to be called with each new sample, and returns
// a function that unsubscribes it. fn runs synchronously on the sampler
// goroutine right after the tick (so subscribers see every sample without
// polling Snapshot); the *HistorySample is a ring slot valid only for the
// duration of the call — copy what outlives it. Stop implicitly silences
// all subscribers by stopping the goroutine that calls them.
func (s *Sampler) Subscribe(fn func(*HistorySample)) (unsubscribe func()) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subs == nil {
		s.subs = make(map[int]func(*HistorySample))
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	return func() {
		s.subMu.Lock()
		delete(s.subs, id)
		s.subMu.Unlock()
	}
}

// notify dispatches one filled slot to the subscribers. Called on the
// sampling goroutine with s.mu released; the dispatch list is copied out
// under subMu so callbacks may themselves subscribe or unsubscribe.
func (s *Sampler) notify(slot *HistorySample) {
	s.subMu.Lock()
	fns := s.subScratch[:0]
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	s.subScratch = fns
	s.subMu.Unlock()
	for _, fn := range fns {
		fn(slot)
	}
}

func (s *Sampler) run() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.sample()
		case <-s.stop:
			return
		}
	}
}

// sample fills one ring slot in place. Once the ring is full, the slot
// being overwritten donates its Columns backing array, so the steady
// state performs no allocation.
func (s *Sampler) sample() {
	s.mu.Lock()
	var slot *HistorySample
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, HistorySample{})
		slot = &s.buf[len(s.buf)-1]
	} else {
		slot = &s.buf[s.next]
		s.next = (s.next + 1) % cap(s.buf)
		s.full = true
	}
	cols := slot.Columns[:0]
	lat := slot.LatencyBuckets[:0]
	*slot = HistorySample{Time: time.Now(), Columns: cols, LatencyBuckets: lat}
	if s.fill != nil {
		s.fill(slot)
	}
	sortColumns(slot.Columns)
	s.total++
	s.mu.Unlock()
	// Subscribers run outside the ring lock: the slot is only rewritten by
	// this goroutine, at least a full ring revolution later, so handing
	// them the pointer for the duration of the call is safe.
	s.notify(slot)
}

// sortColumns orders per-column series by (table, column) with an
// in-place insertion sort: column counts are small and this keeps the
// sampling tick allocation-free (sort.Slice would box a closure).
func sortColumns(cols []HistoryColumn) {
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && columnLess(&cols[j], &cols[j-1]); j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
}

func columnLess(a, b *HistoryColumn) bool {
	if a.Table != b.Table {
		return a.Table < b.Table
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	return a.Shard < b.Shard
}

// Snapshot returns a deep copy of the retained samples oldest-first
// (cold path: the serving side pays the allocations, not the sampler).
func (s *Sampler) Snapshot() []HistorySample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HistorySample, 0, len(s.buf))
	if s.full {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	for i := range out {
		out[i].Columns = append([]HistoryColumn(nil), out[i].Columns...)
		out[i].LatencyBuckets = append([]int64(nil), out[i].LatencyBuckets...)
	}
	return out
}

// Len returns the number of retained samples.
func (s *Sampler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Total returns the number of samples ever taken.
func (s *Sampler) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Stop shuts the sampling goroutine down and waits for it to exit.
// Idempotent and safe to call concurrently.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
