package obs

import (
	"fmt"
	"sync"
	"time"
)

// The adaptation ledger: a bounded journal of zone-lifecycle events with
// full provenance — what changed, why, which query template triggered it,
// and the before/after shape of the affected metadata. Where the
// EventLog answers "how often does the structure change", the ledger
// answers "was a specific change worth it": every record carries enough
// context to credit or debit the adaptation that produced it, and the
// per-table running totals feed the EXPLAIN ANALYZE footer without a
// ring scan. Appends happen only on structural change (split, merge,
// fold, first widen, quarantine, rebuild, build/load), never per probe
// or per scanned row, so the journal costs the scan hot path nothing.

// LedgerRecord is one zone-lifecycle event with provenance. Row bounds
// ([RowLo,RowHi)) locate the affected region; Min/Max Before/After are
// the value-bound hulls of that region before and after the change (for
// a split the hull is unchanged and the zone counts carry the story;
// for a widen the loosened hull IS the story).
type LedgerRecord struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Table  string    `json:"table"`
	Column string    `json:"column"`
	// Shard is the 1-based shard that produced the record (0 = unsharded).
	Shard int       `json:"shard,omitempty"`
	Kind  EventKind `json:"kind"`
	// Cause is a short machine-readable reason: "split-gain",
	// "merge-cold", "net-benefit", "shadow-probe", "tail-fold",
	// "append-widen", "update-widen", "panic", "corruption", "manual",
	// "build", "snapshot".
	Cause string `json:"cause"`
	// Fingerprint is the literal-stripped template of the query whose
	// feedback triggered the change; "" for changes outside a query
	// (direct appends, administrative rebuilds).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Zone counts on the column before and after the event.
	ZonesBefore int `json:"zones_before"`
	ZonesAfter  int `json:"zones_after"`
	// Affected row window and its value-bound hull before/after.
	RowLo     int   `json:"row_lo"`
	RowHi     int   `json:"row_hi"`
	MinBefore int64 `json:"min_before"`
	MaxBefore int64 `json:"max_before"`
	MinAfter  int64 `json:"min_after"`
	MaxAfter  int64 `json:"max_after"`
}

// String renders the record on one line.
func (r LedgerRecord) String() string {
	return fmt.Sprintf("#%d %s.%s %s cause=%s zones %d->%d rows [%d,%d) bounds [%d,%d]->[%d,%d] fp=%q",
		r.Seq, r.Table, r.Column, r.Kind, r.Cause, r.ZonesBefore, r.ZonesAfter,
		r.RowLo, r.RowHi, r.MinBefore, r.MaxBefore, r.MinAfter, r.MaxAfter, r.Fingerprint)
}

// LedgerTotals is one table's running ledger aggregate, maintained at
// append time so the EXPLAIN ANALYZE footer never scans the ring.
type LedgerTotals struct {
	Events    uint64    `json:"events"`
	Splits    uint64    `json:"splits"`
	LastSplit time.Time `json:"last_split,omitempty"`
	// LastSplitCause is the fingerprint (or cause when no fingerprint)
	// behind the most recent split.
	LastSplitCause string `json:"last_split_cause,omitempty"`
}

// Ledger is a bounded, concurrency-safe ring of LedgerRecords plus
// per-table running totals. Appends are O(1); when full the oldest
// records drop (and are counted). One ledger is shared by every table
// (and every shard) of a DB; records carry their own table/shard stamps
// so "per-shard ledgers" are a filter, not separate structures.
type Ledger struct {
	mu      sync.Mutex
	buf     []LedgerRecord
	next    int
	full    bool
	seq     uint64
	dropped uint64
	totals  map[string]*LedgerTotals // keyed by table
}

// DefaultLedgerSize is the ring capacity used when none is given.
const DefaultLedgerSize = 2048

// NewLedger returns a ledger holding the last capacity records
// (DefaultLedgerSize when capacity <= 0).
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultLedgerSize
	}
	return &Ledger{
		buf:    make([]LedgerRecord, 0, capacity),
		totals: make(map[string]*LedgerTotals),
	}
}

// Append records one event, stamping its sequence number and time and
// folding it into the table's running totals.
func (l *Ledger) Append(r LedgerRecord) {
	l.mu.Lock()
	l.seq++
	r.Seq = l.seq
	r.Time = time.Now()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, r)
	} else {
		l.buf[l.next] = r
		l.next = (l.next + 1) % cap(l.buf)
		l.full = true
		l.dropped++
	}
	t := l.totals[r.Table]
	if t == nil {
		t = &LedgerTotals{}
		l.totals[r.Table] = t
	}
	t.Events++
	if r.Kind == EventSplit {
		t.Splits++
		t.LastSplit = r.Time
		if r.Fingerprint != "" {
			t.LastSplitCause = r.Fingerprint
		} else {
			t.LastSplitCause = r.Cause
		}
	}
	l.mu.Unlock()
}

// Records returns a chronological copy of the retained records.
func (l *Ledger) Records() []LedgerRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LedgerRecord, 0, len(l.buf))
	if l.full {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// Totals returns the running aggregate for one table (zero value when
// the table has no ledger activity).
func (l *Ledger) Totals(table string) LedgerTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	if t := l.totals[table]; t != nil {
		return *t
	}
	return LedgerTotals{}
}

// Seq returns the total number of records ever appended.
func (l *Ledger) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many records the ring has evicted.
func (l *Ledger) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// ROI types: the per-zone return-on-investment view behind /adaptation.

// ROIZone is one zone's ROI detail, reported for dead zones (metadata
// that never pruned anything) so an operator can see exactly which row
// ranges carry useless bounds.
type ROIZone struct {
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Min    int64  `json:"min"`
	Max    int64  `json:"max"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// ColumnROI is one column's adaptation return-on-investment: rows and
// bytes the metadata pruned (credit) against the probe and maintenance
// work it cost (debit), in row-equivalents under the adaptive cost
// model. DeadZones counts zones whose metadata was probed but never
// pruned — pure overhead the next layout decision should reclaim.
type ColumnROI struct {
	Table  string `json:"table"`
	Shard  int    `json:"shard,omitempty"`
	Column string `json:"column"`
	Kind   string `json:"kind"`
	Zones  int    `json:"zones"`
	Bytes  int    `json:"bytes"`

	RowsSkipped   int64 `json:"rows_skipped"`
	RowsCovered   int64 `json:"rows_covered"`
	BytesSkipped  int64 `json:"bytes_skipped"`
	CandidateRows int64 `json:"candidate_rows"`
	ZoneProbes    int64 `json:"zone_probes"`

	// Maintenance debits: structural events on the column and the zones
	// they touched, plus the arbitration model's own running verdict.
	MaintEvents int64 `json:"maintenance_events"`
	MaintZones  int64 `json:"maintenance_zones"`
	// NetRows is credit minus debit in row-equivalents:
	// row_cost·rows_skipped − probe_cost·zone_probes −
	// maint_cost·maintenance_zones (costs from the skipper's config).
	NetRows float64 `json:"net_benefit_rows"`

	DeadZones      int       `json:"dead_zones"`
	DeadZoneDetail []ROIZone `json:"dead_zone_detail,omitempty"`
}

// AdaptationSnapshot is the /adaptation payload: the retained ledger
// records (oldest-first), drop accounting, and per-column ROI rows.
type AdaptationSnapshot struct {
	Total   uint64         `json:"total"`
	Dropped uint64         `json:"dropped"`
	Events  []LedgerRecord `json:"events"`
	ROI     []ColumnROI    `json:"roi"`
}
