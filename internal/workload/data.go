// Package workload generates the synthetic data distributions and query
// streams of the evaluation. The abstract defines the paper's results by
// distribution class — sorted, semi-sorted, clustered, and arbitrary — so
// the generators are parameterized to produce exactly those classes, plus
// drifting variants for the adaptation experiments.
package workload

import (
	"fmt"
	"math/rand"
)

// Distribution classifies the physical value order of a generated column.
type Distribution int

const (
	// Sorted: values monotonically increase with row position — the best
	// case for data skipping.
	Sorted Distribution = iota
	// SemiSorted: globally sorted with local disorder (bounded-window
	// displacement), as produced by near-ordered ingest like timestamps
	// from multiple sources.
	SemiSorted
	// Clustered: the row space is divided into contiguous segments, each
	// holding values from a narrow band; band order is shuffled so the
	// column is not globally sorted but has strong local value locality.
	Clustered
	// Uniform: values drawn uniformly at random — the adversarial
	// "arbitrary distribution" where zonemaps cannot prune.
	Uniform
	// Zipf: values drawn from a Zipf distribution, randomly placed.
	// Heavy-hitter values appear everywhere, so min/max pruning is weak
	// but not hopeless at the domain tails.
	Zipf
	// Bimodal: rows interleave two value modes that each drift with row
	// position, leaving a wide empty gap between them. Every zone's
	// min/max hull spans the gap (hull pruning fails) while the zone's
	// actual values occupy two narrow bands — the distribution that
	// separates occurrence-based metadata (imprints) from hulls.
	Bimodal
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Sorted:
		return "sorted"
	case SemiSorted:
		return "semi-sorted"
	case Clustered:
		return "clustered"
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Bimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// DataSpec parameterizes a generated column.
type DataSpec struct {
	N      int          // rows
	Dist   Distribution // value order
	Domain int64        // values fall in [0, Domain)
	// Clusters is the number of contiguous segments for Clustered.
	// Default 64.
	Clusters int
	// Window is the displacement window for SemiSorted, in rows.
	// Default N/1000 (at least 2).
	Window int
	// NoiseFrac is the fraction of rows displaced for SemiSorted.
	// Default 0.1.
	NoiseFrac float64
	// ZipfS is the Zipf exponent (>1). Default 1.2.
	ZipfS float64
	Seed  int64
}

func (s DataSpec) withDefaults() DataSpec {
	if s.Domain <= 0 {
		s.Domain = int64(s.N)
	}
	if s.Clusters <= 0 {
		s.Clusters = 64
	}
	if s.Window <= 0 {
		s.Window = s.N / 1000
		if s.Window < 2 {
			s.Window = 2
		}
	}
	if s.NoiseFrac <= 0 {
		s.NoiseFrac = 0.1
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	return s
}

// Generate produces the column values for spec.
func Generate(spec DataSpec) []int64 {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	v := make([]int64, spec.N)
	switch spec.Dist {
	case Sorted:
		for i := range v {
			v[i] = int64(i) * spec.Domain / int64(spec.N)
		}
	case SemiSorted:
		for i := range v {
			v[i] = int64(i) * spec.Domain / int64(spec.N)
		}
		// Displace a fraction of rows within a bounded window.
		for i := range v {
			if rng.Float64() < spec.NoiseFrac {
				j := i + rng.Intn(2*spec.Window+1) - spec.Window
				if j < 0 {
					j = 0
				}
				if j >= spec.N {
					j = spec.N - 1
				}
				v[i], v[j] = v[j], v[i]
			}
		}
	case Clustered:
		k := spec.Clusters
		if k > spec.N {
			k = spec.N
		}
		// Shuffle band order so the column is not globally sorted.
		bands := rng.Perm(k)
		bandWidth := spec.Domain / int64(k)
		if bandWidth == 0 {
			bandWidth = 1
		}
		for i := range v {
			seg := i * k / spec.N
			base := int64(bands[seg]) * bandWidth
			v[i] = base + rng.Int63n(bandWidth)
		}
	case Uniform:
		for i := range v {
			v[i] = rng.Int63n(spec.Domain)
		}
	case Zipf:
		z := rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Domain-1))
		for i := range v {
			v[i] = int64(z.Uint64())
		}
	case Bimodal:
		// Modes occupy the bottom and top 30% of the domain; values within
		// a mode follow row position (locality), rows alternate modes.
		modeWidth := spec.Domain * 3 / 10
		if modeWidth < 1 {
			modeWidth = 1
		}
		for i := range v {
			pos := int64(i/2) * modeWidth / int64(spec.N/2+1)
			if i%2 == 1 {
				pos += spec.Domain - modeWidth
			}
			v[i] = pos
		}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %d", spec.Dist))
	}
	return v
}
