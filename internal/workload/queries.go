package workload

import (
	"fmt"
	"math/rand"
)

// QueryKind classifies the query stream's access pattern.
type QueryKind int

const (
	// UniformRange: range predicates with uniformly random position.
	UniformRange QueryKind = iota
	// HotRange: range predicates concentrated in a hot sub-domain.
	HotRange
	// DriftingHot: like HotRange, but the hot sub-domain jumps to a new
	// location every ShiftEvery queries — the workload-drift experiment.
	DriftingHot
	// Point: equality predicates at uniformly random values.
	Point
)

// String names the query kind.
func (k QueryKind) String() string {
	switch k {
	case UniformRange:
		return "uniform-range"
	case HotRange:
		return "hot-range"
	case DriftingHot:
		return "drifting-hot"
	case Point:
		return "point"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// QuerySpec parameterizes a query stream over a value domain.
type QuerySpec struct {
	Kind   QueryKind
	Domain int64
	// Selectivity is the fraction of the domain covered by each range
	// predicate. Default 0.01 (1%).
	Selectivity float64
	// HotFrac is the fraction of the domain occupied by the hot region
	// for HotRange/DriftingHot. Default 0.1.
	HotFrac float64
	// ShiftEvery relocates the hot region every this many queries for
	// DriftingHot. Default 1000.
	ShiftEvery int
	Seed       int64
}

func (s QuerySpec) withDefaults() QuerySpec {
	if s.Selectivity <= 0 {
		s.Selectivity = 0.01
	}
	if s.HotFrac <= 0 {
		s.HotFrac = 0.1
	}
	if s.ShiftEvery <= 0 {
		s.ShiftEvery = 1000
	}
	return s
}

// Range is one generated predicate interval [Lo, Hi] (inclusive).
type Range struct {
	Lo, Hi int64
}

// Gen is a deterministic query-stream generator.
type Gen struct {
	spec  QuerySpec
	rng   *rand.Rand
	i     int
	hotLo int64 // current hot region start (HotRange/DriftingHot)
}

// NewGen creates a generator for spec.
func NewGen(spec QuerySpec) *Gen {
	spec = spec.withDefaults()
	g := &Gen{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
	g.relocate()
	return g
}

// relocate picks a new hot region.
func (g *Gen) relocate() {
	hotWidth := int64(float64(g.spec.Domain) * g.spec.HotFrac)
	if hotWidth < 1 {
		hotWidth = 1
	}
	if g.spec.Domain > hotWidth {
		g.hotLo = g.rng.Int63n(g.spec.Domain - hotWidth)
	} else {
		g.hotLo = 0
	}
}

// Next returns the next predicate interval in the stream.
func (g *Gen) Next() Range {
	defer func() { g.i++ }()
	width := int64(float64(g.spec.Domain) * g.spec.Selectivity)
	if width < 1 {
		width = 1
	}
	switch g.spec.Kind {
	case Point:
		v := g.rng.Int63n(g.spec.Domain)
		return Range{Lo: v, Hi: v}
	case UniformRange:
		lo := g.pos(g.spec.Domain - width)
		return Range{Lo: lo, Hi: lo + width - 1}
	case HotRange, DriftingHot:
		if g.spec.Kind == DriftingHot && g.i > 0 && g.i%g.spec.ShiftEvery == 0 {
			g.relocate()
		}
		hotWidth := int64(float64(g.spec.Domain) * g.spec.HotFrac)
		if hotWidth < width {
			hotWidth = width
		}
		lo := g.hotLo + g.pos(hotWidth-width)
		if lo+width > g.spec.Domain {
			lo = g.spec.Domain - width
		}
		return Range{Lo: lo, Hi: lo + width - 1}
	default:
		panic(fmt.Sprintf("workload: unknown query kind %d", g.spec.Kind))
	}
}

// pos returns a uniform offset in [0, n] handling n<=0.
func (g *Gen) pos(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return g.rng.Int63n(n + 1)
}
