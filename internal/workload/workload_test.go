package workload

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDistributionNames(t *testing.T) {
	names := map[Distribution]string{
		Sorted: "sorted", SemiSorted: "semi-sorted", Clustered: "clustered",
		Uniform: "uniform", Zipf: "zipf",
	}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("%d: %q want %q", d, d.String(), want)
		}
	}
	if Distribution(99).String() == "" {
		t.Fatal("unknown distribution renders empty")
	}
}

func TestGenerateSorted(t *testing.T) {
	v := Generate(DataSpec{N: 10000, Dist: Sorted, Domain: 10000, Seed: 1})
	if !sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] }) {
		t.Fatal("sorted data not sorted")
	}
	if v[0] != 0 || v[len(v)-1] >= 10000 {
		t.Fatalf("range wrong: %d..%d", v[0], v[len(v)-1])
	}
}

func TestGenerateSemiSortedLocality(t *testing.T) {
	spec := DataSpec{N: 10000, Dist: SemiSorted, Domain: 10000, Window: 20, NoiseFrac: 0.2, Seed: 2}
	v := Generate(spec)
	// Values must stay near their sorted position: displacement bounded by
	// the window times domain step (each swap moves a value at most Window
	// rows; a row can be swapped multiple times but stays statistically
	// close — check a generous bound of 4 windows for 99% of rows).
	far := 0
	for i, x := range v {
		want := int64(i)
		if x-want > 4*20 || want-x > 4*20 {
			far++
		}
	}
	if far > len(v)/100 {
		t.Fatalf("%d rows displaced beyond bound", far)
	}
	// It must not be fully sorted.
	if sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] }) {
		t.Fatal("semi-sorted came out fully sorted")
	}
}

func TestGenerateClusteredLocality(t *testing.T) {
	spec := DataSpec{N: 6400, Dist: Clustered, Domain: 6400, Clusters: 64, Seed: 3}
	v := Generate(spec)
	// Each 100-row segment must span at most one band width (100 values).
	segLen := 100
	for s := 0; s < 64; s++ {
		lo, hi := v[s*segLen], v[s*segLen]
		for i := s * segLen; i < (s+1)*segLen; i++ {
			if v[i] < lo {
				lo = v[i]
			}
			if v[i] > hi {
				hi = v[i]
			}
		}
		if hi-lo >= 100 {
			t.Fatalf("segment %d spans %d values", s, hi-lo)
		}
	}
	// Not globally sorted (bands shuffled).
	if sort.SliceIsSorted(v, func(i, j int) bool { return v[i] < v[j] }) {
		t.Fatal("clustered data came out sorted")
	}
}

func TestGenerateUniformAndZipfInDomain(t *testing.T) {
	for _, d := range []Distribution{Uniform, Zipf} {
		v := Generate(DataSpec{N: 5000, Dist: d, Domain: 1000, Seed: 4})
		for i, x := range v {
			if x < 0 || x >= 1000 {
				t.Fatalf("%v: v[%d]=%d out of domain", d, i, x)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DataSpec{N: 1000, Dist: Uniform, Domain: 100, Seed: 7})
	b := Generate(DataSpec{N: 1000, Dist: Uniform, Domain: 100, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Generate(DataSpec{N: 1000, Dist: Uniform, Domain: 100, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateUnknownDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Generate(DataSpec{N: 10, Dist: Distribution(42)})
}

func TestQueryKindNames(t *testing.T) {
	if UniformRange.String() != "uniform-range" || DriftingHot.String() != "drifting-hot" ||
		HotRange.String() != "hot-range" || Point.String() != "point" {
		t.Fatal("names wrong")
	}
	if QueryKind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
}

func TestUniformRangeSelectivity(t *testing.T) {
	g := NewGen(QuerySpec{Kind: UniformRange, Domain: 1_000_000, Selectivity: 0.01, Seed: 1})
	for i := 0; i < 100; i++ {
		r := g.Next()
		width := r.Hi - r.Lo + 1
		if width != 10000 {
			t.Fatalf("width=%d want 10000", width)
		}
		if r.Lo < 0 || r.Hi >= 1_000_000 {
			t.Fatalf("range [%d,%d] out of domain", r.Lo, r.Hi)
		}
	}
}

func TestPointQueries(t *testing.T) {
	g := NewGen(QuerySpec{Kind: Point, Domain: 100, Seed: 2})
	for i := 0; i < 50; i++ {
		r := g.Next()
		if r.Lo != r.Hi || r.Lo < 0 || r.Lo >= 100 {
			t.Fatalf("point query [%d,%d]", r.Lo, r.Hi)
		}
	}
}

func TestHotRangeStaysHot(t *testing.T) {
	g := NewGen(QuerySpec{Kind: HotRange, Domain: 1_000_000, Selectivity: 0.001, HotFrac: 0.05, Seed: 3})
	first := g.Next()
	for i := 0; i < 200; i++ {
		r := g.Next()
		// All queries within ~one hot region width of the first.
		if r.Lo < first.Lo-60000 || r.Lo > first.Lo+60000 {
			t.Fatalf("query %d left the hot region: %d vs %d", i, r.Lo, first.Lo)
		}
	}
}

func TestDriftingHotMoves(t *testing.T) {
	g := NewGen(QuerySpec{Kind: DriftingHot, Domain: 10_000_000, Selectivity: 0.0001, HotFrac: 0.01, ShiftEvery: 50, Seed: 4})
	var phases []int64
	for p := 0; p < 4; p++ {
		lo := int64(-1)
		for i := 0; i < 50; i++ {
			r := g.Next()
			if lo == -1 {
				lo = r.Lo
			}
			// Stays within the current hot region width.
			if r.Lo < lo-200_000 || r.Lo > lo+200_000 {
				t.Fatalf("phase %d query %d strayed", p, i)
			}
		}
		phases = append(phases, lo)
	}
	moved := false
	for i := 1; i < len(phases); i++ {
		if phases[i]-phases[0] > 300_000 || phases[0]-phases[i] > 300_000 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("hot region never moved: %v", phases)
	}
}

// Property: generated ranges are always valid and inside the domain, for
// arbitrary spec parameters.
func TestQuickQueryRangesValid(t *testing.T) {
	f := func(seed int64, selMil uint16, kindRaw uint8) bool {
		kind := QueryKind(int(kindRaw) % 4)
		sel := float64(selMil%1000)/1000 + 0.0001
		g := NewGen(QuerySpec{Kind: kind, Domain: 100000, Selectivity: sel, Seed: seed, ShiftEvery: 7})
		for i := 0; i < 50; i++ {
			r := g.Next()
			if r.Lo > r.Hi || r.Lo < 0 || r.Hi >= 100000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBimodal(t *testing.T) {
	v := Generate(DataSpec{N: 10000, Dist: Bimodal, Domain: 1_000_000, Seed: 1})
	low, high, mid := 0, 0, 0
	for _, x := range v {
		switch {
		case x < 300_000:
			low++
		case x >= 700_000:
			high++
		default:
			mid++
		}
	}
	if mid != 0 {
		t.Fatalf("%d values in the gap", mid)
	}
	if low == 0 || high == 0 {
		t.Fatalf("modes unbalanced: low=%d high=%d", low, high)
	}
	if Bimodal.String() != "bimodal" {
		t.Fatal("name")
	}
}
