package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// evalPredRow evaluates one predicate on one row with SQL three-valued
// semantics collapsed to boolean (NULL comparisons are false; IS NULL /
// IS NOT NULL test the null flag).
func evalPredRow(t *testing.T, tb *table.Table, p expr.Pred, row int) bool {
	t.Helper()
	col, err := tb.Column(p.Col)
	if err != nil {
		t.Fatal(err)
	}
	isNull := col.IsNull(row)
	switch p.Op {
	case expr.IsNull:
		return isNull
	case expr.IsNotNull:
		return !isNull
	}
	if isNull {
		return false
	}
	v := col.Value(row)
	cmp := func(arg storage.Value) int {
		switch v.Type() {
		case storage.Int64:
			switch {
			case v.Int() < arg.Int():
				return -1
			case v.Int() > arg.Int():
				return 1
			}
			return 0
		case storage.Float64:
			switch {
			case v.Float() < arg.Float():
				return -1
			case v.Float() > arg.Float():
				return 1
			}
			return 0
		case storage.String:
			switch {
			case v.Str() < arg.Str():
				return -1
			case v.Str() > arg.Str():
				return 1
			}
			return 0
		}
		t.Fatalf("bad type %v", v.Type())
		return 0
	}
	switch p.Op {
	case expr.EQ:
		return cmp(p.Args[0]) == 0
	case expr.NE:
		return cmp(p.Args[0]) != 0
	case expr.LT:
		return cmp(p.Args[0]) < 0
	case expr.LE:
		return cmp(p.Args[0]) <= 0
	case expr.GT:
		return cmp(p.Args[0]) > 0
	case expr.GE:
		return cmp(p.Args[0]) >= 0
	case expr.Between:
		return cmp(p.Args[0]) >= 0 && cmp(p.Args[1]) <= 0
	case expr.In:
		for _, a := range p.Args {
			if cmp(a) == 0 {
				return true
			}
		}
		return false
	}
	t.Fatalf("bad op %v", p.Op)
	return false
}

// referenceEval computes the exact qualifying row set naively.
func referenceEval(t *testing.T, tb *table.Table, where expr.Conj) []int {
	t.Helper()
	var rows []int
	for r := 0; r < tb.NumRows(); r++ {
		ok := true
		for _, p := range where.Preds {
			if !evalPredRow(t, tb, p, r) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, r)
		}
	}
	return rows
}

// randomPred builds a random predicate over the test schema.
func randomPred(rng *rand.Rand) expr.Pred {
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox", "gnu"}
	iv := func() storage.Value { return storage.IntValue(rng.Int63n(1200) - 100) }
	switch rng.Intn(10) {
	case 0:
		return expr.MustPred("a", expr.Between, storage.IntValue(rng.Int63n(800)), storage.IntValue(rng.Int63n(800)+200))
	case 1:
		return expr.MustPred("b", expr.Op(rng.Intn(6)), iv()) // EQ..GE
	case 2:
		return expr.MustPred("b", expr.In, iv(), iv(), iv())
	case 3:
		return expr.MustPred("b", expr.IsNull)
	case 4:
		return expr.MustPred("b", expr.IsNotNull)
	case 5:
		return expr.MustPred("f", expr.Op(rng.Intn(6)), storage.FloatValue(rng.NormFloat64()*60))
	case 6:
		return expr.MustPred("s", expr.EQ, storage.StringValue(words[rng.Intn(len(words))]))
	case 7:
		return expr.MustPred("s", expr.Between,
			storage.StringValue(words[rng.Intn(len(words))]), storage.StringValue(words[rng.Intn(len(words))]))
	case 8:
		return expr.MustPred("a", expr.Op(rng.Intn(6)), iv())
	default:
		return expr.MustPred("s", expr.NE, storage.StringValue(words[rng.Intn(len(words))]))
	}
}

// TestQuickEngineMatchesReference is the randomized end-to-end oracle: for
// random conjunctions of every predicate shape, across all three policies,
// counts and projected row sets must match a naive per-row evaluation —
// while adaptive metadata keeps reshaping between queries.
func TestQuickEngineMatchesReference(t *testing.T) {
	tb := buildTable(t, 800, 60)
	engines := map[string]*Engine{
		"none":     newEngine(t, tb, PolicyNone),
		"static":   newEngine(t, tb, PolicyStatic),
		"adaptive": newEngine(t, tb, PolicyAdaptive),
		"imprint":  newEngine(t, tb, PolicyImprint),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var where expr.Conj
		for k := 0; k < 1+rng.Intn(3); k++ {
			where.Preds = append(where.Preds, randomPred(rng))
		}
		want := referenceEval(t, tb, where)
		for name, e := range engines {
			res, err := e.Query(Query{Where: where, Aggs: []Agg{{Kind: CountStar}}})
			if err != nil {
				t.Logf("%s: %v (where=%s)", name, err, where)
				return false
			}
			if res.Count != len(want) {
				t.Logf("%s: count=%d want %d (where=%s)", name, res.Count, len(want), where)
				return false
			}
			// Projection returns exactly the reference rows, in order.
			proj, err := e.Query(Query{Where: where, Select: []string{"a"}})
			if err != nil {
				t.Logf("%s proj: %v", name, err)
				return false
			}
			if len(proj.Rows) != len(want) {
				t.Logf("%s proj rows=%d want %d", name, len(proj.Rows), len(want))
				return false
			}
			colA, _ := tb.Column("a")
			for i, r := range want {
				wantV := colA.Value(r)
				if !proj.Rows[i][0].Equal(wantV) {
					t.Logf("%s proj row %d: %v want %v", name, i, proj.Rows[i][0], wantV)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGroupByMatchesReference checks GROUP BY output against naive
// group computation for random predicates.
func TestQuickGroupByMatchesReference(t *testing.T) {
	tb := buildTable(t, 600, 61)
	e := newEngine(t, tb, PolicyAdaptive)
	colS, _ := tb.Column("s")
	colB, _ := tb.Column("b")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		where := expr.And(randomPred(rng))
		want := referenceEval(t, tb, where)
		res, err := e.Query(Query{
			Where:   where,
			GroupBy: "s",
			Aggs:    []Agg{{Kind: CountStar}, {Kind: Sum, Col: "b"}},
		})
		if err != nil {
			t.Logf("err: %v", err)
			return false
		}
		// Naive groups.
		counts := map[string]int64{}
		sums := map[string]int64{}
		for _, r := range want {
			k := colS.Value(r).Str()
			counts[k]++
			if !colB.IsNull(r) {
				sums[k] += colB.Value(r).Int()
			}
		}
		if len(res.Rows) != len(counts) {
			t.Logf("groups=%d want %d", len(res.Rows), len(counts))
			return false
		}
		prev := ""
		for i, row := range res.Rows {
			k := row[0].Str()
			if i > 0 && k <= prev {
				t.Logf("keys not ascending")
				return false
			}
			prev = k
			if row[1].Int() != counts[k] {
				t.Logf("group %q count=%v want %d", k, row[1], counts[k])
				return false
			}
			wantSum := storage.Value(storage.IntValue(sums[k]))
			if _, hasSum := sums[k], true; !hasSum {
				wantSum = storage.NullValue(storage.Int64)
			}
			// A group whose every b is NULL yields SUM NULL.
			allNull := true
			for _, r := range want {
				if colS.Value(r).Str() == k && !colB.IsNull(r) {
					allNull = false
					break
				}
			}
			if allNull {
				if !row[2].IsNull() {
					t.Logf("group %q sum=%v want NULL", k, row[2])
					return false
				}
			} else if !row[2].Equal(wantSum) {
				t.Logf("group %q sum=%v want %v", k, row[2], wantSum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
