package engine

import (
	"testing"

	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func groupTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("t", testSchema())
	rows := []struct {
		a int64
		b interface{}
		f float64
		s string
	}{
		{1, int64(10), 1.0, "x"},
		{2, int64(20), 2.0, "y"},
		{3, nil, 3.0, "x"},
		{4, int64(40), 4.0, "y"},
		{5, int64(50), 5.0, "x"},
		{6, int64(60), 6.0, "z"},
	}
	for _, r := range rows {
		b := storage.NullValue(storage.Int64)
		if r.b != nil {
			b = storage.IntValue(r.b.(int64))
		}
		if err := tb.AppendRow(storage.IntValue(r.a), b, storage.FloatValue(r.f), storage.StringValue(r.s)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestGroupByString(t *testing.T) {
	tb := groupTable(t)
	for _, policy := range []Policy{PolicyNone, PolicyStatic, PolicyAdaptive} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			GroupBy: "s",
			Aggs:    []Agg{{Kind: CountStar}, {Kind: Sum, Col: "f"}},
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if len(res.Columns) != 3 || res.Columns[0] != "s" || res.Columns[1] != "COUNT(*)" {
			t.Fatalf("columns=%v", res.Columns)
		}
		// Groups in key order: x, y, z.
		if len(res.Rows) != 3 {
			t.Fatalf("%v: rows=%v", policy, res.Rows)
		}
		wantKeys := []string{"x", "y", "z"}
		wantCounts := []int64{3, 2, 1}
		wantSums := []float64{9, 6, 6}
		for i := range wantKeys {
			if res.Rows[i][0].Str() != wantKeys[i] {
				t.Fatalf("row %d key=%v", i, res.Rows[i][0])
			}
			if res.Rows[i][1].Int() != wantCounts[i] {
				t.Fatalf("row %d count=%v", i, res.Rows[i][1])
			}
			if res.Rows[i][2].Float() != wantSums[i] {
				t.Fatalf("row %d sum=%v", i, res.Rows[i][2])
			}
		}
	}
}

func TestGroupByWithWhere(t *testing.T) {
	tb := groupTable(t)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where:   expr.And(intPred("a", expr.GE, 3)),
		GroupBy: "s",
		Aggs:    []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rows 3..6: x(3,5) y(4) z(6).
	if len(res.Rows) != 3 || res.Rows[0][1].Int() != 2 || res.Rows[1][1].Int() != 1 || res.Rows[2][1].Int() != 1 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Count != 4 {
		t.Fatalf("count=%d", res.Count)
	}
}

func TestGroupByNullKeysLast(t *testing.T) {
	tb := groupTable(t)
	e := newEngine(t, tb, PolicyStatic)
	res, err := e.Query(Query{
		GroupBy: "b",
		Aggs:    []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	if !last[0].IsNull() || last[1].Int() != 1 {
		t.Fatalf("null group=%v", last)
	}
	// Non-null keys ascend.
	for i := 1; i < len(res.Rows)-1; i++ {
		if res.Rows[i-1][0].Int() >= res.Rows[i][0].Int() {
			t.Fatalf("keys not ascending: %v", res.Rows)
		}
	}
}

func TestGroupBySelectKeyOnlyIsDistinct(t *testing.T) {
	tb := groupTable(t)
	e := newEngine(t, tb, PolicyNone)
	res, err := e.Query(Query{Select: []string{"s"}, GroupBy: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Rows[0]) != 1 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestGroupByLimit(t *testing.T) {
	tb := groupTable(t)
	e := newEngine(t, tb, PolicyNone)
	res, err := e.Query(Query{GroupBy: "s", Aggs: []Agg{{Kind: CountStar}}, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "x" {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestGroupByErrors(t *testing.T) {
	tb := groupTable(t)
	e := newEngine(t, tb, PolicyNone)
	if _, err := e.Query(Query{GroupBy: "missing"}); err == nil {
		t.Fatal("missing group column accepted")
	}
	if _, err := e.Query(Query{GroupBy: "s", Select: []string{"a"}}); err == nil {
		t.Fatal("non-key select with group accepted")
	}
}

func TestGroupByUnsatisfiableWhere(t *testing.T) {
	tb := groupTable(t)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where:   expr.And(intPred("a", expr.GT, 100), intPred("a", expr.LT, 50)),
		GroupBy: "s",
		Aggs:    []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(res.Columns) != 2 {
		t.Fatalf("rows=%v cols=%v", res.Rows, res.Columns)
	}
}

func TestGroupByIntKeyLargeTable(t *testing.T) {
	tb := buildTable(t, 2000, 50)
	for _, policy := range []Policy{PolicyNone, PolicyAdaptive} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			Where:   expr.And(intPred("a", expr.LT, 1000)),
			GroupBy: "s",
			Aggs:    []Agg{{Kind: CountStar}, {Kind: Min, Col: "a"}, {Kind: Max, Col: "a"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check totals.
		total := int64(0)
		for _, row := range res.Rows {
			total += row[1].Int()
			if row[2].Int() > row[3].Int() {
				t.Fatalf("min>max in %v", row)
			}
		}
		if total != 1000 {
			t.Fatalf("%v: group counts sum to %d", policy, total)
		}
	}
}
