package engine

import (
	"context"
	"strings"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/expr"
	"adskip/internal/obs"
)

const ledgerFP = "SELECT COUNT(*) FROM t WHERE v BETWEEN ? AND ?"

// adaptiveLedgerEngine builds a clustered adaptive engine sharing the
// given ledger, sized so a hot range query forces splits quickly.
func adaptiveLedgerEngine(t *testing.T, ledger *obs.Ledger) *Engine {
	t.Helper()
	tb := sortedTable(t, 1<<14)
	e := New(tb, Options{
		Policy: PolicyAdaptive,
		Adaptive: adaptive.Config{
			InitialZoneRows: 4096, MinZoneRows: 64,
		},
		Ledger: ledger,
	})
	if err := e.EnableSkipping("a"); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLedgerSplitProvenance: a hot fingerprinted range query drives the
// adaptive zonemap to split, and every split lands in the ledger with
// full provenance — table, column, cause, and the triggering template.
func TestLedgerSplitProvenance(t *testing.T) {
	ledger := obs.NewLedger(0)
	e := adaptiveLedgerEngine(t, ledger)

	// The build itself is journaled before any query runs.
	recs := ledger.Records()
	if len(recs) != 1 || recs[0].Kind != obs.EventSkipperBuilt || recs[0].Cause != "build" {
		t.Fatalf("build record = %+v, want one skipper-built/build record", recs)
	}
	if recs[0].Table != "t" || recs[0].Column != "a" {
		t.Fatalf("build record provenance = %+v", recs[0])
	}

	ctx := obs.WithTemplate(context.Background(), ledgerFP)
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 5000, 5200)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	for i := 0; i < 12; i++ {
		if _, err := e.QueryContext(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	var splits []obs.LedgerRecord
	for _, r := range ledger.Records() {
		if r.Kind == obs.EventSplit {
			splits = append(splits, r)
		}
	}
	if len(splits) == 0 {
		t.Fatal("hot range query produced no split records")
	}
	for _, r := range splits {
		if r.Table != "t" || r.Column != "a" {
			t.Fatalf("split record misattributed: %+v", r)
		}
		if r.Cause != "split-gain" {
			t.Fatalf("split cause = %q, want split-gain (%+v)", r.Cause, r)
		}
		if r.Fingerprint != ledgerFP {
			t.Fatalf("split fingerprint = %q, want the triggering template (%+v)", r.Fingerprint, r)
		}
		if r.ZonesAfter <= r.ZonesBefore {
			t.Fatalf("split did not grow the zone count: %+v", r)
		}
		if r.RowHi <= r.RowLo {
			t.Fatalf("split row window empty: %+v", r)
		}
	}

	// The per-table totals fold at append time and remember the splitter.
	tot := ledger.Totals("t")
	if tot.Splits != uint64(len(splits)) {
		t.Fatalf("totals.Splits = %d, want %d", tot.Splits, len(splits))
	}
	if tot.LastSplitCause != ledgerFP {
		t.Fatalf("LastSplitCause = %q, want the fingerprint", tot.LastSplitCause)
	}

	// The ledger-records counter tracked every append.
	var counted int64
	for _, kind := range []string{"skipper-built", "split"} {
		counted += e.Metrics().Counter("adskip_adapt_ledger_records_total", "",
			obs.L("table", "t"), obs.L("column", "a"), obs.L("kind", kind)).Load()
	}
	if counted < int64(1+len(splits)) {
		t.Fatalf("adskip_adapt_ledger_records_total = %d, want >= %d", counted, 1+len(splits))
	}
}

// TestExplainAnalyzeLedgerFooter: once the table has ledger activity,
// EXPLAIN ANALYZE gains the ledger footer with totals and the template
// behind the last split.
func TestExplainAnalyzeLedgerFooter(t *testing.T) {
	e := adaptiveLedgerEngine(t, obs.NewLedger(0))
	ctx := obs.WithTemplate(context.Background(), ledgerFP)
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 5000, 5200)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	var lines []string
	for i := 0; i < 12; i++ {
		var err error
		lines, _, err = e.ExplainAnalyzeContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
	}
	var footer string
	for _, l := range lines {
		if strings.HasPrefix(l, "ledger: ") {
			footer = l
		}
	}
	if footer == "" {
		t.Fatalf("no ledger footer in:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(footer, "adaptation events") || !strings.Contains(footer, "splits)") {
		t.Fatalf("ledger footer malformed: %q", footer)
	}
	if !strings.Contains(footer, `last split`) || !strings.Contains(footer, ledgerFP) {
		t.Fatalf("ledger footer lost split provenance: %q", footer)
	}
}

// TestExplainAnalyzeWhyNotSkipped: a predicate that straddles a zone
// boundary leaves unpruned zones, and the trace classifies each miss —
// rendered as the "not skipped" reason line.
func TestExplainAnalyzeWhyNotSkipped(t *testing.T) {
	e := adaptiveLedgerEngine(t, obs.NewLedger(0))
	// Straddles the first 4096-row zone's upper bound mid-zone: the
	// touched zones genuinely overlap the predicate boundary.
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 3000, 5000)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	_, res, err := e.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Trace.Predicates[0]
	if p.NotSkippedOverlap == 0 {
		t.Fatalf("no overlap misses classified: %+v", p)
	}
	rendered := strings.Join(AnalyzeLines(res, false), "\n")
	if !strings.Contains(rendered, "not skipped:") || !strings.Contains(rendered, "bounds-overlap") {
		t.Fatalf("reason line missing from rendering:\n%s", rendered)
	}
}

// TestAdaptationROICreditsAndDebits: after convergence the ROI row
// credits the skipped rows, debits probes and maintenance, and nets out
// positive for a well-behaved hot range.
func TestAdaptationROICreditsAndDebits(t *testing.T) {
	e := adaptiveLedgerEngine(t, obs.NewLedger(0))
	ctx := obs.WithTemplate(context.Background(), ledgerFP)
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 5000, 5200)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	for i := 0; i < 12; i++ {
		if _, err := e.QueryContext(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	rois := e.AdaptationROI(16)
	if len(rois) != 1 {
		t.Fatalf("ROI rows = %d, want 1", len(rois))
	}
	r := rois[0]
	if r.Table != "t" || r.Column != "a" || r.Kind == "" {
		t.Fatalf("ROI identity: %+v", r)
	}
	if r.RowsSkipped == 0 || r.ZoneProbes == 0 {
		t.Fatalf("ROI has no activity: %+v", r)
	}
	if r.BytesSkipped != r.RowsSkipped*8 {
		t.Fatalf("BytesSkipped = %d, want rows*8 = %d", r.BytesSkipped, r.RowsSkipped*8)
	}
	if r.MaintEvents == 0 || r.MaintZones == 0 {
		t.Fatalf("splits happened but maintenance was never debited: %+v", r)
	}
	if r.NetRows <= 0 {
		t.Fatalf("hot range should net positive: %+v", r)
	}
	if r.CandidateRows == 0 {
		t.Fatalf("candidate-row join from engine counters missing: %+v", r)
	}
}

// TestAdaptationROIDeadZones: metadata that is probed but never prunes
// is pure overhead, and the ROI row must surface it — count plus
// bounded per-zone detail.
func TestAdaptationROIDeadZones(t *testing.T) {
	// Column "b" is uniform random, so every zone's hull spans nearly the
	// whole domain: a narrow predicate overlaps every zone (no prune) yet
	// covers none (no short-circuit) — all probes are misses.
	tb := buildTable(t, 4096, 1)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: adaptive.Config{
		InitialZoneRows: 1024, MinZoneRows: 1024,
	}, Ledger: obs.NewLedger(0)})
	if err := e.EnableSkipping("b"); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Where: expr.And(intPred("b", expr.Between, 400, 420)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	rois := e.AdaptationROI(2)
	if len(rois) != 1 {
		t.Fatalf("ROI rows = %d, want 1", len(rois))
	}
	r := rois[0]
	if r.DeadZones != r.Zones || r.DeadZones == 0 {
		t.Fatalf("dead zones = %d of %d, want every zone dead", r.DeadZones, r.Zones)
	}
	if len(r.DeadZoneDetail) != 2 {
		t.Fatalf("detail entries = %d, want the maxDead cap of 2", len(r.DeadZoneDetail))
	}
	for _, z := range r.DeadZoneDetail {
		if z.Hits != 0 || z.Misses == 0 || z.Hi <= z.Lo {
			t.Fatalf("dead-zone detail malformed: %+v", z)
		}
	}
	// With detail disabled the counts survive.
	r0 := e.AdaptationROI(0)[0]
	if r0.DeadZones != r.DeadZones || r0.DeadZoneDetail != nil {
		t.Fatalf("maxDead=0: %+v", r0)
	}
}
