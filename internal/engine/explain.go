package engine

import (
	"fmt"
)

// Explain plans q without executing its scans and renders one line per
// plan element: the query shape, each predicate column's lowered intervals,
// its skipper's pruning outcome, and the resulting candidate windows.
//
// Explain performs a real metadata probe (that is what makes the output
// truthful), so on adaptive columns it nudges the same probe-time
// bookkeeping a query would — it is EXPLAIN over live metadata, not a dry
// simulation.
func (e *Engine) Explain(q Query) ([]string, error) {
	if q.Limit < 0 {
		return nil, ErrBadLimit
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.syncSkippers()
	if err := q.Where.Validate(); err != nil {
		return nil, err
	}
	for _, a := range q.Aggs {
		if _, err := e.validateAgg(a); err != nil {
			return nil, err
		}
	}
	n := e.tbl.NumRows()
	var out []string
	out = append(out, fmt.Sprintf("scan table %q (%d rows)", e.tbl.Name(), n))

	shape := "count-only"
	switch {
	case q.GroupBy != "":
		shape = fmt.Sprintf("group by %q, %d aggregate(s)", q.GroupBy, len(q.Aggs))
	case len(q.Select) > 0:
		shape = fmt.Sprintf("project %d column(s)", len(q.Select))
	case len(q.Aggs) > 0:
		shape = fmt.Sprintf("%d aggregate(s)", len(q.Aggs))
	}
	out = append(out, "output: "+shape)

	plans, unsat, err := e.plan(q.Where)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		out = append(out, "no predicates: full scan")
		return out, nil
	}
	allCovered := len(plans) > 0
	for i := range plans {
		p := &plans[i]
		var predDesc string
		if p.pred.NullOnly {
			predDesc = "IS NULL"
		} else {
			predDesc = p.pred.R.String()
		}
		line := fmt.Sprintf("predicate on %q: %s", p.name, predDesc)
		if p.skipper == nil {
			out = append(out, line+" — no skipper, full evaluation")
			allCovered = false
			continue
		}
		// EXPLAIN pays for a real probe, so it counts toward the column's
		// cumulative probe/prune counters like any query — repeated
		// EXPLAINs therefore show adaptation progressing.
		e.colMetrics(p.name).recordProbe(p)
		md := p.skipper.Metadata()
		if !p.active {
			out = append(out, fmt.Sprintf("%s — %s skipper declined (disabled), full evaluation", line, md.Kind))
			allCovered = false
			continue
		}
		covered := 0
		candRows := 0
		for _, z := range p.res.Zones {
			candRows += z.Hi - z.Lo
			if z.Covered {
				covered += z.Hi - z.Lo
			} else {
				allCovered = false
			}
		}
		out = append(out, fmt.Sprintf(
			"%s — %s skipper: %d zones (%d probes), %d candidate windows (%d rows covered), %d rows skippable (%.1f%%)",
			line, md.Kind, md.Zones, p.res.ZonesProbed, len(p.res.Zones), covered,
			p.res.RowsSkipped, pct(p.res.RowsSkipped, n)))
		out = append(out, "  "+e.lifetimeLine(p.name))
	}
	if unsat {
		out = append(out, "predicates are unsatisfiable: no scan will run")
		return out, nil
	}
	if len(plans) > 1 {
		out = append(out, fmt.Sprintf("intersect candidate windows across %d columns", len(plans)))
	}
	if allCovered {
		out = append(out, "all candidate windows covered: no residual predicate evaluation needed")
	}
	return out, nil
}

// lifetimeLine renders a column's cumulative probe/prune counters from the
// metrics registry, so repeated EXPLAINs expose adaptation progressing.
func (e *Engine) lifetimeLine(col string) string {
	cm := e.colMetrics(col)
	skipped := cm.rowsSkipped.Load()
	cand := cm.candidateRows.Load()
	hitRate := 0.0
	if skipped+cand > 0 {
		hitRate = float64(skipped) / float64(skipped+cand) * 100
	}
	return fmt.Sprintf("lifetime: %d probes (%d declined), %d zone probes, %d rows skipped / %d candidate (prune hit rate %.1f%%)",
		cm.probeQueries.Load(), cm.declined.Load(), cm.zonesProbed.Load(), skipped, cand, hitRate)
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
