package engine

import (
	"sort"

	"adskip/internal/core"
	"adskip/internal/obs"
)

// Skipmap assembles the table's skipping-effectiveness snapshot for the
// telemetry server's /skipmap endpoint: per-column structure state,
// quarantine status, cumulative prune counters, and (for introspectable
// skippers) per-zone detail capped at maxZones entries per column
// (maxZones <= 0 returns every zone). The snapshot is taken under the
// engine mutex, so it is consistent with respect to in-flight queries.
func (e *Engine) Skipmap(maxZones int) obs.SkipmapTable {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := obs.SkipmapTable{Table: e.tbl.Name(), Rows: e.tbl.NumRows()}

	names := make([]string, 0, len(e.skippers)+len(e.quarantined))
	for name := range e.skippers {
		names = append(names, name)
	}
	for name := range e.quarantined {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		sc := obs.SkipmapColumn{Column: name}
		if rec, ok := e.quarantined[name]; ok {
			sc.Quarantined = true
			if rec.cause != nil {
				sc.Quarantine = rec.cause.Error()
			}
		}
		if s, ok := e.skippers[name]; ok {
			md := s.Metadata()
			sc.Kind, sc.Zones, sc.Bytes, sc.Enabled = md.Kind, md.Zones, md.Bytes, md.Enabled
			if zi, ok := s.(core.ZoneIntrospector); ok {
				sc.ZoneDetail = zi.SnapshotZones(maxZones)
				if md.Zones > len(sc.ZoneDetail) {
					sc.ZonesTruncated = md.Zones - len(sc.ZoneDetail)
				}
			}
		}
		cm := e.colMetrics(name)
		sc.Probes = cm.probeQueries.Load()
		sc.Declined = cm.declined.Load()
		sc.ZoneProbes = cm.zonesProbed.Load()
		sc.RowsSkipped = cm.rowsSkipped.Load()
		sc.CandidateRows = cm.candidateRows.Load()
		sc.CoveredRows = cm.coveredRows.Load()
		if probed := sc.RowsSkipped + sc.CandidateRows; probed > 0 {
			sc.SkipRatio = float64(sc.RowsSkipped) / float64(probed)
		}
		st.Columns = append(st.Columns, sc)
	}
	return st
}

// AdaptationROI assembles the table's per-column return-on-investment
// rows for /adaptation: each ROI-reporting skipper's lifetime credit
// (rows pruned) against its debit (probe and maintenance work), joined
// with the engine's per-column prune counters. Dead-zone detail is
// capped at maxDead entries per column. Taken under the engine mutex,
// like Skipmap, so the view is consistent with in-flight queries.
func (e *Engine) AdaptationROI(maxDead int) []obs.ColumnROI {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.skippers))
	for name := range e.skippers {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []obs.ColumnROI
	for _, name := range names {
		rr, ok := e.skippers[name].(core.ROIReporter)
		if !ok {
			continue
		}
		roi := rr.SnapshotROI(maxDead)
		roi.Table, roi.Shard, roi.Column = e.tbl.Name(), e.opts.Shard, name
		cm := e.colMetrics(name)
		roi.RowsCovered = cm.coveredRows.Load()
		roi.CandidateRows = cm.candidateRows.Load()
		// One int64 code per row: the bytes a pruned scan never touched.
		roi.BytesSkipped = roi.RowsSkipped * 8
		out = append(out, roi)
	}
	return out
}
