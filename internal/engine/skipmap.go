package engine

import (
	"sort"

	"adskip/internal/core"
	"adskip/internal/obs"
)

// Skipmap assembles the table's skipping-effectiveness snapshot for the
// telemetry server's /skipmap endpoint: per-column structure state,
// quarantine status, cumulative prune counters, and (for introspectable
// skippers) per-zone detail capped at maxZones entries per column
// (maxZones <= 0 returns every zone). The snapshot is taken under the
// engine mutex, so it is consistent with respect to in-flight queries.
func (e *Engine) Skipmap(maxZones int) obs.SkipmapTable {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := obs.SkipmapTable{Table: e.tbl.Name(), Rows: e.tbl.NumRows()}

	names := make([]string, 0, len(e.skippers)+len(e.quarantined))
	for name := range e.skippers {
		names = append(names, name)
	}
	for name := range e.quarantined {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		sc := obs.SkipmapColumn{Column: name}
		if rec, ok := e.quarantined[name]; ok {
			sc.Quarantined = true
			if rec.cause != nil {
				sc.Quarantine = rec.cause.Error()
			}
		}
		if s, ok := e.skippers[name]; ok {
			md := s.Metadata()
			sc.Kind, sc.Zones, sc.Bytes, sc.Enabled = md.Kind, md.Zones, md.Bytes, md.Enabled
			if zi, ok := s.(core.ZoneIntrospector); ok {
				sc.ZoneDetail = zi.SnapshotZones(maxZones)
				if md.Zones > len(sc.ZoneDetail) {
					sc.ZonesTruncated = md.Zones - len(sc.ZoneDetail)
				}
			}
		}
		cm := e.colMetrics(name)
		sc.Probes = cm.probeQueries.Load()
		sc.Declined = cm.declined.Load()
		sc.ZoneProbes = cm.zonesProbed.Load()
		sc.RowsSkipped = cm.rowsSkipped.Load()
		sc.CandidateRows = cm.candidateRows.Load()
		sc.CoveredRows = cm.coveredRows.Load()
		if probed := sc.RowsSkipped + sc.CandidateRows; probed > 0 {
			sc.SkipRatio = float64(sc.RowsSkipped) / float64(probed)
		}
		st.Columns = append(st.Columns, sc)
	}
	return st
}
