package engine

import (
	"math/rand"
	"testing"

	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/workload"
)

// bigTable builds a single-column table large enough to exceed the
// parallel threshold.
func bigTable(t testing.TB, n int, dist workload.Distribution) *table.Table {
	t.Helper()
	tb := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	col, _ := tb.Column("v")
	for _, v := range workload.Generate(workload.DataSpec{N: n, Dist: dist, Domain: int64(n), Seed: 5}) {
		if err := col.AppendInt(v); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestParallelCountMatchesSerial(t *testing.T) {
	const n = 1 << 18
	for _, policy := range []Policy{PolicyNone, PolicyStatic, PolicyAdaptive} {
		for _, dist := range []workload.Distribution{workload.Sorted, workload.Uniform, workload.Clustered} {
			serialEng := New(bigTable(t, n, dist), Options{Policy: policy, StaticZoneSize: 2048})
			parallelEng := New(bigTable(t, n, dist), Options{Policy: policy, StaticZoneSize: 2048, Parallelism: 8})
			if err := serialEng.EnableSkipping("v"); err != nil {
				t.Fatal(err)
			}
			if err := parallelEng.EnableSkipping("v"); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			for q := 0; q < 40; q++ {
				lo := rng.Int63n(n)
				where := expr.And(expr.MustPred("v", expr.Between,
					storage.IntValue(lo), storage.IntValue(lo+rng.Int63n(n/10))))
				query := Query{Where: where, Aggs: []Agg{{Kind: CountStar}}}
				a, err := serialEng.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				b, err := parallelEng.Query(query)
				if err != nil {
					t.Fatal(err)
				}
				if a.Count != b.Count {
					t.Fatalf("%v/%v q%d: serial %d parallel %d", policy, dist, q, a.Count, b.Count)
				}
			}
		}
	}
}

// Adaptive learning must behave identically under parallel execution:
// observations carry the same per-zone evidence regardless of worker
// partitioning.
func TestParallelAdaptiveStillLearns(t *testing.T) {
	const n = 1 << 18
	e := New(bigTable(t, n, workload.Clustered), Options{Policy: PolicyAdaptive, Parallelism: 4})
	if err := e.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	zonesBefore := e.Skipper("v").Metadata().Zones
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 60; q++ {
		lo := rng.Int63n(n - n/100)
		where := expr.And(expr.MustPred("v", expr.Between,
			storage.IntValue(lo), storage.IntValue(lo+int64(n/100))))
		if _, err := e.Query(Query{Where: where, Aggs: []Agg{{Kind: CountStar}}}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Skipper("v").Metadata().Zones <= zonesBefore {
		t.Fatalf("no refinement under parallel execution: %d -> %d",
			zonesBefore, e.Skipper("v").Metadata().Zones)
	}
}

func TestParallelSmallInputStaysSerial(t *testing.T) {
	// Below the threshold the partitioner must not fan out (observable
	// only through correctness here; the fast path is exercised).
	tb := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	col, _ := tb.Column("v")
	for i := int64(0); i < 100; i++ {
		col.AppendInt(i)
	}
	e := New(tb, Options{Policy: PolicyNone, Parallelism: 16})
	if err := e.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(Query{
		Where: expr.And(expr.MustPred("v", expr.LT, storage.IntValue(50))),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil || res.Count != 50 {
		t.Fatalf("count=%d err=%v", res.Count, err)
	}
}

func BenchmarkParallelCount(b *testing.B) {
	const n = 1 << 22
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "serial", 2: "2workers", 4: "4workers", 8: "8workers"}[workers], func(b *testing.B) {
			tb := bigTable(b, n, workload.Uniform)
			e := New(tb, Options{Policy: PolicyNone, Parallelism: workers})
			if err := e.EnableSkipping("v"); err != nil {
				b.Fatal(err)
			}
			q := Query{
				Where: expr.And(expr.MustPred("v", expr.Between,
					storage.IntValue(0), storage.IntValue(n/2))),
				Aggs: []Agg{{Kind: CountStar}},
			}
			b.SetBytes(8 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
