package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"adskip/internal/core"
	"adskip/internal/faultinject"
	"adskip/internal/obs"
)

// Resilience layer: cooperative cancellation, per-query resource budgets,
// panic isolation, and skipper quarantine. The design constraint is that
// the hot scan loop stays branch-free: kernels run in checkpointRows-sized
// chunks and all checking happens between chunks, so a 4M-row scan pays
// ~64 cheap checks rather than 4M.

// Errors returned by the resilience layer.
var (
	// ErrCanceled reports that the query's context was canceled or its
	// deadline expired before execution finished.
	ErrCanceled = errors.New("engine: query canceled")
	// ErrBudget reports that the query exceeded one of its resource
	// limits (rows scanned, result rows, or wall-clock duration).
	ErrBudget = errors.New("engine: query exceeded resource budget")
)

// Limits bounds one query's resource consumption. The zero value imposes
// no limits. Limits are enforced at cooperative checkpoints, so overshoot
// is bounded by one checkpoint interval (checkpointRows rows).
type Limits struct {
	// MaxRowsScanned caps rows whose codes a kernel reads. Rows pruned by
	// metadata are free — budgets reward skipping.
	MaxRowsScanned int64
	// MaxResultRows caps materialized result rows (projection rows, or
	// groups for GROUP BY).
	MaxResultRows int
	// MaxDuration caps wall-clock execution time, independent of any
	// context deadline.
	MaxDuration time.Duration
}

// checkpointRows is the cooperative checkpoint interval: scans check for
// cancellation and budget exhaustion at least once per this many rows.
const checkpointRows = 1 << 16

// qctx carries one query's cancellation and budget state. It is shared by
// every goroutine working on the query; the first failure latches so all
// peers abandon their slices promptly.
type qctx struct {
	ctx       context.Context
	done      <-chan struct{}
	deadline  time.Time // from Limits.MaxDuration; zero = none
	maxRows   int64     // from Limits.MaxRowsScanned; 0 = none
	maxResult int       // from Limits.MaxResultRows; 0 = none
	rows      atomic.Int64
	failure   atomic.Pointer[error]
	// span is the query's scan-stage span; executors attach per-segment
	// and per-worker child spans to it (StartChild is goroutine-safe).
	span *obs.Span
}

// newQctx builds the per-query checkpoint state from ctx and the engine's
// configured limits.
func (e *Engine) newQctx(ctx context.Context) *qctx {
	lim := e.opts.Limits
	qc := &qctx{
		ctx:       ctx,
		done:      ctx.Done(),
		maxRows:   lim.MaxRowsScanned,
		maxResult: lim.MaxResultRows,
	}
	if lim.MaxDuration > 0 {
		qc.deadline = time.Now().Add(lim.MaxDuration)
	}
	return qc
}

// fail latches the first failure and returns the winning error.
func (qc *qctx) fail(err error) error {
	qc.failure.CompareAndSwap(nil, &err)
	return *qc.failure.Load()
}

// failed returns the latched failure, if any.
func (qc *qctx) failed() error {
	if p := qc.failure.Load(); p != nil {
		return *p
	}
	return nil
}

// check performs one cooperative checkpoint, charging rows scanned since
// the previous one against the row budget.
func (qc *qctx) check(rows int64) error {
	if err := qc.failed(); err != nil {
		return err
	}
	faultinject.Sleep(faultinject.ScanDelay) // no-op unless chaos is active
	if qc.maxRows > 0 && qc.rows.Add(rows) > qc.maxRows {
		return qc.fail(fmt.Errorf("%w: more than %d rows scanned", ErrBudget, qc.maxRows))
	}
	select {
	case <-qc.done:
		return qc.fail(fmt.Errorf("%w: %v", ErrCanceled, context.Cause(qc.ctx)))
	default:
	}
	if !qc.deadline.IsZero() && time.Now().After(qc.deadline) {
		return qc.fail(fmt.Errorf("%w: ran longer than the configured MaxDuration", ErrBudget))
	}
	return nil
}

// checkResult enforces the result-row budget against the current
// materialized size.
func (qc *qctx) checkResult(rows int) error {
	if qc.maxResult > 0 && rows > qc.maxResult {
		return qc.fail(fmt.Errorf("%w: result exceeds %d rows", ErrBudget, qc.maxResult))
	}
	return nil
}

// ticker accumulates one goroutine's scan progress and runs the shared
// checkpoint every checkpointRows rows, keeping the per-chunk cost to one
// integer add and compare.
type ticker struct {
	qc  *qctx
	acc int
}

// tick charges rows of scan progress; at checkpoint granularity it runs
// the shared check and returns its verdict.
func (t *ticker) tick(rows int) error {
	t.acc += rows
	if t.acc < checkpointRows {
		return nil
	}
	n := t.acc
	t.acc = 0
	return t.qc.check(int64(n))
}

// countChunks runs a counting kernel over [lo, hi) in checkpoint-sized
// chunks, ticking between chunks.
func countChunks(tk *ticker, lo, hi int, kernel func(lo, hi int) int) (int, error) {
	total := 0
	for lo < hi {
		end := lo + checkpointRows
		if end > hi {
			end = hi
		}
		total += kernel(lo, end)
		if err := tk.tick(end - lo); err != nil {
			return total, err
		}
		lo = end
	}
	return total, nil
}

// panicError is a panic recovered into an error, carrying the stack for
// diagnostics. Panics attributable to skipper metadata quarantine the
// column and retry the query without it.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("recovered panic: %v", p.val) }

// recoverToError converts an in-flight panic into *errp. Use as
// `defer recoverToError(&err)` at goroutine or call-boundary scope —
// panics cannot cross goroutines, so every worker must carry its own.
func recoverToError(errp *error) {
	if r := recover(); r != nil {
		*errp = &panicError{val: r, stack: debug.Stack()}
	}
}

// errQuarantineRetry marks an error whose cause was quarantined; one
// retry — now falling back to full scans — can succeed.
var errQuarantineRetry = errors.New("engine: retrying after quarantine")

// firstWorkerError picks the error to surface from a fan-out: panics win
// (they trigger quarantine) over cooperative cancellation.
func firstWorkerError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var pe *panicError
		if errors.As(err, &pe) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Admission bounds the number of concurrently executing queries across
// the engines that share it. A nil *Admission admits everything.
type Admission struct {
	sem     chan struct{}
	waiting atomic.Int64
}

// NewAdmission returns an admission controller allowing n concurrent
// queries, or nil (unbounded) when n <= 0.
func NewAdmission(n int) *Admission {
	if n <= 0 {
		return nil
	}
	return &Admission{sem: make(chan struct{}, n)}
}

// acquire takes an execution slot, waiting until one frees or ctx is
// done.
func (a *Admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	// Only the blocked path maintains the queue-depth gauge: admitted
	// queries pay nothing beyond the channel send above.
	a.waiting.Add(1)
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w while waiting for admission: %v", ErrCanceled, context.Cause(ctx))
	}
}

// Acquire takes an execution slot, waiting until one frees or ctx is
// done. Exported for composite executors (the shard manager) that admit
// one logical query before fanning it out to per-shard engines.
func (a *Admission) Acquire(ctx context.Context) error { return a.acquire(ctx) }

// Release returns an execution slot taken with Acquire.
func (a *Admission) Release() { a.release() }

// Waiting reports how many queries are currently blocked waiting for an
// execution slot. Zero for a nil (unbounded) controller.
func (a *Admission) Waiting() int64 {
	if a == nil {
		return 0
	}
	return a.waiting.Load()
}

// release returns an execution slot.
func (a *Admission) release() {
	if a != nil {
		<-a.sem
	}
}

// quarantineRecord remembers why and when a column's skipper was pulled
// from service.
type quarantineRecord struct {
	cause error
	when  time.Time
}

// quarantineLocked removes a column's skipper from service, recording the
// cause. The column's queries fall back to full scans — skipping is
// strictly an optimization, so correctness is preserved — until
// RebuildSkipping (or EnableSkipping/LoadSkipper) reinstates metadata.
// Caller holds e.mu.
func (e *Engine) quarantineLocked(col string, cause error) {
	s, ok := e.skippers[col]
	if !ok {
		return
	}
	delete(e.skippers, col)
	e.quarantined[col] = quarantineRecord{cause: cause, when: time.Now()}
	e.m.quarantines.Inc()
	zones := 0
	func() {
		defer func() { recover() }() // metadata of a broken skipper may itself panic
		zones = s.Metadata().Zones
	}()
	e.eventSink(col)(obs.Event{Kind: obs.EventQuarantine, Zones: zones})
	qcause := "corruption"
	var pe *panicError
	if errors.As(cause, &pe) {
		qcause = "panic"
	}
	e.ledgerSink(col)(obs.LedgerRecord{Kind: obs.EventQuarantine, Cause: qcause, ZonesBefore: zones})
	if e.log != nil {
		e.log.Error("skipper quarantined: column falls back to full scans",
			"table", e.tbl.Name(), "column", col, "cause", cause.Error())
	}
	cm := e.colMetrics(col)
	cm.enabled.Set(0)
	cm.zones.Set(0)
	cm.bytes.Set(0)
}

// checkSkipperHealth quarantines col when its skipper self-reports
// corruption (core.HealthChecker); reports whether it did. Caller holds
// e.mu.
func (e *Engine) checkSkipperHealth(col string, s core.Skipper) bool {
	hc, ok := s.(core.HealthChecker)
	if !ok {
		return false
	}
	err := hc.Health()
	if err == nil {
		return false
	}
	e.quarantineLocked(col, err)
	return true
}

// Quarantined reports the currently quarantined columns and the error
// that benched each one.
func (e *Engine) Quarantined() map[string]error {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]error, len(e.quarantined))
	for col, rec := range e.quarantined {
		out[col] = rec.cause
	}
	return out
}

// RebuildSkipping reconstructs skipping metadata from base column data on
// the named columns (all quarantined columns when none are named),
// clearing their quarantine. Learned refinement is lost; soundness is
// restored.
func (e *Engine) RebuildSkipping(cols ...string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(cols) == 0 {
		for col := range e.quarantined {
			cols = append(cols, col)
		}
		sort.Strings(cols)
	}
	for _, name := range cols {
		if err := e.buildSkipperLocked(name, obs.EventRebuild); err != nil {
			return err
		}
	}
	return nil
}

// VerifySkipping revalidates each named column's metadata (all skipping
// columns when none are named) against the column's physical state — one
// O(rows) pass per column. Failing columns are quarantined; their
// failures are joined in the returned error.
func (e *Engine) VerifySkipping(cols ...string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(cols) == 0 {
		for col := range e.skippers {
			cols = append(cols, col)
		}
		sort.Strings(cols)
	}
	var errs []error
	for _, name := range cols {
		s, ok := e.skippers[name]
		if !ok {
			continue
		}
		ic, ok := s.(core.InvariantChecker)
		if !ok {
			continue
		}
		col, err := e.tbl.Column(name)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		checkErr := func() (err error) {
			defer recoverToError(&err)
			rows := s.Rows()
			if rows > col.Len() {
				return fmt.Errorf("metadata covers %d rows, column has %d", rows, col.Len())
			}
			return ic.CheckInvariants(col.Codes()[:rows], col.Nulls(), false)
		}()
		if checkErr != nil {
			e.quarantineLocked(name, checkErr)
			errs = append(errs, fmt.Errorf("column %q: %w", name, checkErr))
		}
	}
	return errors.Join(errs...)
}
