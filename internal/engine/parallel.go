package engine

import (
	"sync"

	"adskip/internal/core"
	"adskip/internal/scan"
)

// Parallel scan execution for the COUNT fast path. Candidate windows are
// partitioned into contiguous groups of roughly equal row volume, one per
// worker; each worker runs the same kernels over its group and the
// partial counts, statistics, and zone observations merge losslessly
// (counting is associative, observations are per-zone). Results are
// therefore bit-identical to the serial path.

// minRowsPerWorker keeps tiny scans serial: goroutine fan-out only pays
// off when each worker gets substantial contiguous work.
const minRowsPerWorker = 1 << 16

// parallelCountFull counts matches over [0, n) with p workers.
func (e *Engine) parallelCountFull(p *colPlan, n, workers int) int {
	codes := p.col.Codes()
	nulls := p.col.Nulls()
	count := func(lo, hi int) int {
		if p.pred.NullOnly {
			return scan.CountNulls(nulls, lo, hi)
		}
		return scan.CountRanges(codes, lo, hi, p.pred.R, nulls, 0)
	}
	if workers <= 1 || n < minRowsPerWorker*2 {
		return count(0, n)
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			counts[w] = count(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// zoneWork is one worker's slice of the candidate list.
type zoneWork struct {
	zones []core.CandidateZone
	count int
	obs   []core.ZoneObservation
	stats ExecStats
}

// parallelCountZones executes the candidate zones across workers and
// returns the merged count, observations (in candidate order), and stats.
func (e *Engine) parallelCountZones(p *colPlan, zones []core.CandidateZone, workers int) (int, []core.ZoneObservation, ExecStats) {
	totalRows := 0
	for _, z := range zones {
		totalRows += z.Hi - z.Lo
	}
	if workers <= 1 || totalRows < minRowsPerWorker*2 {
		w := zoneWork{zones: zones}
		e.scanZoneGroup(p, &w)
		return w.count, w.obs, w.stats
	}
	// Partition candidates into contiguous groups of ~equal row volume.
	groups := make([]zoneWork, 0, workers)
	target := (totalRows + workers - 1) / workers
	start, acc := 0, 0
	for i, z := range zones {
		acc += z.Hi - z.Lo
		if acc >= target || i == len(zones)-1 {
			groups = append(groups, zoneWork{zones: zones[start : i+1]})
			start, acc = i+1, 0
		}
	}
	var wg sync.WaitGroup
	for g := range groups {
		wg.Add(1)
		go func(w *zoneWork) {
			defer wg.Done()
			e.scanZoneGroup(p, w)
		}(&groups[g])
	}
	wg.Wait()
	count := 0
	var obs []core.ZoneObservation
	var stats ExecStats
	for _, g := range groups {
		count += g.count
		obs = append(obs, g.obs...)
		stats.RowsScanned += g.stats.RowsScanned
		stats.RowsCovered += g.stats.RowsCovered
	}
	return count, obs, stats
}

// scanZoneGroup runs the fast-count kernels over one group of candidate
// zones, accumulating into w.
func (e *Engine) scanZoneGroup(p *colPlan, w *zoneWork) {
	codes := p.col.Codes()
	nulls := p.col.Nulls()
	for _, c := range w.zones {
		ob := core.ZoneObservation{ID: c.ID, Lo: c.Lo, Hi: c.Hi, Covered: c.Covered}
		switch {
		case c.Covered:
			w.count += c.Hi - c.Lo
			w.stats.RowsCovered += c.Hi - c.Lo
		case p.pred.NullOnly:
			m := scan.CountNulls(nulls, c.Lo, c.Hi)
			w.count += m
			w.stats.RowsScanned += c.Hi - c.Lo
			ob.Matched = m
		case c.WantStats:
			m, stats := scan.CountWithStats(codes, c.Lo, c.Hi, p.pred.R, nulls, 0, c.StatParts)
			w.count += m
			w.stats.RowsScanned += c.Hi - c.Lo
			ob.Matched = m
			ob.Stats = stats
		default:
			m := scan.CountRanges(codes, c.Lo, c.Hi, p.pred.R, nulls, 0)
			w.count += m
			w.stats.RowsScanned += c.Hi - c.Lo
			ob.Matched = m
		}
		if c.ID != core.NoZoneID {
			w.obs = append(w.obs, ob)
		}
	}
}
