package engine

import (
	"fmt"
	"sync"

	"adskip/internal/core"
	"adskip/internal/faultinject"
	obs2 "adskip/internal/obs"
	"adskip/internal/scan"
)

// Parallel scan execution for the COUNT fast path. Candidate windows are
// partitioned into contiguous groups of roughly equal row volume, one per
// worker; each worker runs the same kernels over its group and the
// partial counts, statistics, and zone observations merge losslessly
// (counting is associative, observations are per-zone). Results are
// therefore bit-identical to the serial path.
//
// Every worker goroutine recovers its own panics into an error — panics
// cannot cross goroutines, so an unrecovered worker panic would kill the
// process. Workers also share the query's qctx: kernels run in
// checkpoint-sized chunks, and the first cancellation or budget failure
// latches so sibling workers abandon their slices at their next tick.

// minRowsPerWorker keeps tiny scans serial: goroutine fan-out only pays
// off when each worker gets substantial contiguous work.
const minRowsPerWorker = 1 << 16

// parallelCountFull counts matches over [0, n) with p workers.
func (e *Engine) parallelCountFull(qc *qctx, p *colPlan, n, workers int) (int, error) {
	codes := p.col.Codes()
	nulls := p.col.Nulls()
	count := func(lo, hi int) int {
		if p.pred.NullOnly {
			return scan.CountNulls(nulls, lo, hi)
		}
		return scan.CountRanges(codes, lo, hi, p.pred.R, nulls, 0)
	}
	if workers <= 1 || n < minRowsPerWorker*2 {
		return countChunks(&ticker{qc: qc}, 0, n, count)
	}
	counts := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer recoverToError(&errs[w])
			if faultinject.Enabled() && faultinject.Fire(faultinject.WorkerPanic) {
				panic(faultinject.PanicValue)
			}
			counts[w], errs[w] = countChunks(&ticker{qc: qc}, lo, hi, count)
		}(w, lo, hi)
	}
	wg.Wait()
	if err := firstWorkerError(errs); err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// zoneWork is one worker's slice of the candidate list.
type zoneWork struct {
	zones []core.CandidateZone
	count int
	obs   []core.ZoneObservation
	stats ExecStats
	err   error
	span  *obs2.Span // per-worker trace span; nil when tracing is coarse
}

// parallelCountZones executes the candidate zones across workers and
// returns the merged count, observations (in candidate order), and stats.
func (e *Engine) parallelCountZones(qc *qctx, p *colPlan, zones []core.CandidateZone, workers int) (int, []core.ZoneObservation, ExecStats, error) {
	totalRows := 0
	for _, z := range zones {
		totalRows += z.Hi - z.Lo
	}
	if workers <= 1 || totalRows < minRowsPerWorker*2 {
		w := zoneWork{zones: zones}
		e.scanZoneGroup(qc, p, &w)
		return w.count, w.obs, w.stats, w.err
	}
	// Partition candidates into contiguous groups of ~equal row volume.
	groups := make([]zoneWork, 0, workers)
	target := (totalRows + workers - 1) / workers
	start, acc := 0, 0
	for i, z := range zones {
		acc += z.Hi - z.Lo
		if acc >= target || i == len(zones)-1 {
			groups = append(groups, zoneWork{zones: zones[start : i+1]})
			start, acc = i+1, 0
		}
	}
	// Pre-create one child span per worker from the coordinator; each
	// worker finishes only its own span, so no span is shared between
	// concurrent writers.
	if qc.span != nil {
		for g := range groups {
			groups[g].span = qc.span.StartChild(fmt.Sprintf("worker %d", g))
		}
	}
	var wg sync.WaitGroup
	for g := range groups {
		wg.Add(1)
		go func(w *zoneWork) {
			defer wg.Done()
			defer recoverToError(&w.err)
			if faultinject.Enabled() && faultinject.Fire(faultinject.WorkerPanic) {
				panic(faultinject.PanicValue)
			}
			e.scanZoneGroup(qc, p, w)
		}(&groups[g])
	}
	wg.Wait()
	errs := make([]error, len(groups))
	for g := range groups {
		errs[g] = groups[g].err
	}
	if err := firstWorkerError(errs); err != nil {
		return 0, nil, ExecStats{}, err
	}
	count := 0
	var obs []core.ZoneObservation
	var stats ExecStats
	for _, g := range groups {
		count += g.count
		obs = append(obs, g.obs...)
		stats.RowsScanned += g.stats.RowsScanned
		stats.RowsCovered += g.stats.RowsCovered
	}
	return count, obs, stats, nil
}

// scanZoneGroup runs the fast-count kernels over one group of candidate
// zones, accumulating into w. Counting kernels are chunked at checkpoint
// granularity; the statistics kernel runs whole-zone (its partitions must
// be exact) and ticks afterward — zones are bounded by MaxZoneRows, so
// the overshoot is bounded too.
func (e *Engine) scanZoneGroup(qc *qctx, p *colPlan, w *zoneWork) {
	codes := p.col.Codes()
	nulls := p.col.Nulls()
	tk := &ticker{qc: qc}
	if w.span != nil {
		defer func() {
			rowsIn := 0
			for _, c := range w.zones {
				rowsIn += c.Hi - c.Lo
			}
			w.span.FinishRows(rowsIn, w.count, 0)
		}()
	}
	for _, c := range w.zones {
		ob := core.ZoneObservation{ID: c.ID, Lo: c.Lo, Hi: c.Hi, Covered: c.Covered}
		switch {
		case c.Covered:
			w.count += c.Hi - c.Lo
			w.stats.RowsCovered += c.Hi - c.Lo
		case p.pred.NullOnly:
			m, err := countChunks(tk, c.Lo, c.Hi, func(lo, hi int) int {
				return scan.CountNulls(nulls, lo, hi)
			})
			if err != nil {
				w.err = err
				return
			}
			w.count += m
			w.stats.RowsScanned += c.Hi - c.Lo
			ob.Matched = m
		case c.WantStats:
			m, stats := scan.CountWithStats(codes, c.Lo, c.Hi, p.pred.R, nulls, 0, c.StatParts)
			if err := tk.tick(c.Hi - c.Lo); err != nil {
				w.err = err
				return
			}
			w.count += m
			w.stats.RowsScanned += c.Hi - c.Lo
			ob.Matched = m
			ob.Stats = stats
		default:
			m, err := countChunks(tk, c.Lo, c.Hi, func(lo, hi int) int {
				return scan.CountRanges(codes, lo, hi, p.pred.R, nulls, 0)
			})
			if err != nil {
				w.err = err
				return
			}
			w.count += m
			w.stats.RowsScanned += c.Hi - c.Lo
			ob.Matched = m
		}
		if c.ID != core.NoZoneID {
			w.obs = append(w.obs, ob)
		}
	}
}
