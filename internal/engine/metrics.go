package engine

import (
	"context"
	"log/slog"
	"strconv"
	"time"

	"adskip/internal/core"
	"adskip/internal/obs"
)

// Metric instrumentation is always on and built to be cheap: every handle
// below is resolved once (at engine construction or when skipping is
// enabled on a column) so the per-query cost is a handful of atomic adds —
// no registry lookups, no locks, and no allocation on the row-scan path.

// Histogram buckets come from the shared obs defaults (obs.LatencyBuckets,
// obs.RowCountBuckets, obs.RatioBuckets) so every latency, row-volume, and
// ratio histogram in the process lines up bucket-for-bucket.

// engMetrics holds the engine-level metric handles, one set per table.
type engMetrics struct {
	queries          *obs.Counter
	rowsScanned      *obs.Counter
	rowsSkipped      *obs.Counter
	rowsCovered      *obs.Counter
	zonesProbed      *obs.Counter
	skippersUsed     *obs.Counter
	skippersDeclined *obs.Counter
	latency          *obs.Histogram
	selectivity      *obs.Histogram
	scannedPerQuery  *obs.Histogram
	slowQueries      *obs.Counter

	// Resilience instrumentation.
	canceled    *obs.Counter // queries stopped by context cancellation
	overBudget  *obs.Counter // queries stopped by a resource limit
	panics      *obs.Counter // execution panics recovered
	retries     *obs.Counter // queries retried after quarantine
	quarantines *obs.Counter // skippers pulled from service
	inflight    *obs.Gauge   // queries currently executing
}

// metricLabels builds the identity label set for a table's series: the
// table label always, plus shard="N" when the engine is one shard of a
// sharded table (shard > 0). Keeping unsharded engines label-identical to
// earlier releases preserves every existing dashboard and smoke assertion.
func metricLabels(table string, shard int, more ...obs.Label) []obs.Label {
	labels := []obs.Label{obs.L("table", table)}
	if shard > 0 {
		labels = append(labels, obs.L("shard", strconv.Itoa(shard)))
	}
	return append(labels, more...)
}

// newEngMetrics resolves the per-table metric handles in reg.
func newEngMetrics(reg *obs.Registry, table string, shard int) engMetrics {
	ls := metricLabels(table, shard)
	return engMetrics{
		queries:          reg.Counter("adskip_queries_total", "Queries executed.", ls...),
		rowsScanned:      reg.Counter("adskip_rows_scanned_total", "Rows read by scan kernels.", ls...),
		rowsSkipped:      reg.Counter("adskip_rows_skipped_total", "Rows pruned by metadata probes.", ls...),
		rowsCovered:      reg.Counter("adskip_rows_covered_total", "Rows short-circuited by covered windows.", ls...),
		zonesProbed:      reg.Counter("adskip_zones_probed_total", "Zone metadata probes performed.", ls...),
		skippersUsed:     reg.Counter("adskip_skippers_used_total", "Predicate columns where skipping participated.", ls...),
		skippersDeclined: reg.Counter("adskip_skippers_declined_total", "Predicate columns where the skipper declined.", ls...),
		latency:          reg.Histogram("adskip_query_seconds", "Query wall-clock latency.", obs.LatencyBuckets(), ls...),
		selectivity:      reg.Histogram("adskip_query_selectivity", "Fraction of table rows matching per query.", obs.RatioBuckets(), ls...),
		scannedPerQuery:  reg.Histogram("adskip_query_rows_scanned", "Rows read by scan kernels per query.", obs.RowCountBuckets(), ls...),
		slowQueries:      reg.Counter("adskip_slow_queries_total", "Queries exceeding the slow-query threshold.", ls...),
		canceled:         reg.Counter("adskip_queries_canceled_total", "Queries stopped by context cancellation.", ls...),
		overBudget:       reg.Counter("adskip_queries_over_budget_total", "Queries stopped by a resource limit.", ls...),
		panics:           reg.Counter("adskip_panics_recovered_total", "Execution panics recovered into errors.", ls...),
		retries:          reg.Counter("adskip_query_retries_total", "Queries retried after skipper quarantine.", ls...),
		quarantines:      reg.Counter("adskip_skipper_quarantines_total", "Skippers pulled from service after a failure.", ls...),
		inflight:         reg.Gauge("adskip_inflight_queries", "Queries currently executing.", ls...),
	}
}

// colMetrics holds the per-column metric handles, resolved when skipping
// is enabled on the column.
type colMetrics struct {
	probeQueries  *obs.Counter // probes where the skipper participated
	declined      *obs.Counter // probes where the skipper declined
	zonesProbed   *obs.Counter
	rowsSkipped   *obs.Counter // prune hits: rows proven non-matching
	candidateRows *obs.Counter // rows left inside candidate windows
	coveredRows   *obs.Counter // candidate rows proven fully matching
	zones         *obs.Gauge
	bytes         *obs.Gauge
	enabled       *obs.Gauge // 1 while arbitration allows skipping
}

// colMetrics resolves (and caches) the handles for one column. The map
// is guarded by colMu (not the engine mutex) so the history sampler can
// read it while a query runs.
func (e *Engine) colMetrics(name string) *colMetrics {
	e.colMu.Lock()
	defer e.colMu.Unlock()
	if cm, ok := e.colM[name]; ok {
		return cm
	}
	ls := metricLabels(e.tbl.Name(), e.opts.Shard, obs.L("column", name))
	cm := &colMetrics{
		probeQueries:  e.reg.Counter("adskip_column_probe_queries_total", "Probes in which the column's skipper participated.", ls...),
		declined:      e.reg.Counter("adskip_column_probe_declined_total", "Probes in which the column's skipper declined.", ls...),
		zonesProbed:   e.reg.Counter("adskip_column_zones_probed_total", "Zone probes on the column.", ls...),
		rowsSkipped:   e.reg.Counter("adskip_column_rows_skipped_total", "Rows the column's metadata pruned.", ls...),
		candidateRows: e.reg.Counter("adskip_column_candidate_rows_total", "Rows left in candidate windows after pruning.", ls...),
		coveredRows:   e.reg.Counter("adskip_column_covered_rows_total", "Candidate rows proven fully matching by metadata.", ls...),
		zones:         e.reg.Gauge("adskip_skipper_zones", "Current zone count of the column's metadata.", ls...),
		bytes:         e.reg.Gauge("adskip_skipper_bytes", "Current metadata footprint of the column.", ls...),
		enabled:       e.reg.Gauge("adskip_skipper_enabled", "1 while arbitration allows skipping on the column.", ls...),
	}
	e.colM[name] = cm
	return cm
}

// recordProbe accounts one skipper probe outcome to the column's
// cumulative counters (queries and EXPLAINs alike — both pay the probe).
func (cm *colMetrics) recordProbe(p *colPlan) {
	if !p.active {
		cm.declined.Inc()
		return
	}
	cm.probeQueries.Inc()
	cm.zonesProbed.Add(int64(p.res.ZonesProbed))
	cm.rowsSkipped.Add(int64(p.res.RowsSkipped))
	cand, covered := 0, 0
	for _, z := range p.res.Zones {
		cand += z.Hi - z.Lo
		if z.Covered {
			covered += z.Hi - z.Lo
		}
	}
	cm.candidateRows.Add(int64(cand))
	cm.coveredRows.Add(int64(covered))
}

// refreshGauges re-reads the skipper's structural state into the gauges.
func (cm *colMetrics) refreshGauges(s core.Skipper) {
	md := s.Metadata()
	cm.zones.Set(int64(md.Zones))
	cm.bytes.Set(int64(md.Bytes))
	if md.Enabled {
		cm.enabled.Set(1)
	} else {
		cm.enabled.Set(0)
	}
}

// eventSink returns the adaptation-event sink installed on a column's
// skipper: it stamps table/column identity, bumps the per-kind event
// counter, appends to the shared event log, and (when a logger is
// configured) emits a structured log line — milestones at info, chatty
// per-zone structural churn at debug.
func (e *Engine) eventSink(col string) func(obs.Event) {
	table, shard := e.tbl.Name(), e.opts.Shard
	return func(ev obs.Event) {
		ev.Table, ev.Column = table, col
		e.reg.Counter("adskip_adapt_events_total", "Adaptation events by kind.",
			metricLabels(table, shard, obs.L("column", col), obs.L("kind", ev.Kind.String()))...).Inc()
		e.events.Append(ev)
		if e.log != nil {
			lvl := slog.LevelDebug
			switch ev.Kind {
			case obs.EventDisable, obs.EventEnable, obs.EventSkipperBuilt,
				obs.EventSkipperLoad, obs.EventRebuild:
				lvl = slog.LevelInfo
			case obs.EventQuarantine:
				lvl = slog.LevelWarn
			}
			e.log.Log(context.Background(), lvl, "adaptation event",
				"table", table, "column", col, "kind", ev.Kind.String(),
				"zones", ev.Zones, "delta", ev.Delta)
		}
	}
}

// ledgerSink returns the adaptation-ledger sink installed on a column's
// skipper: it stamps table/shard/column identity and — when the record
// arrives mid-query — the fingerprint of the query whose feedback
// triggered the change, bumps the per-kind record counter, and journals
// the record. Skippers emit only on structural change and are called
// under the engine mutex, so reading e.trace here is safe.
func (e *Engine) ledgerSink(col string) func(obs.LedgerRecord) {
	table, shard := e.tbl.Name(), e.opts.Shard
	return func(rec obs.LedgerRecord) {
		rec.Table, rec.Column, rec.Shard = table, col, shard
		if rec.Fingerprint == "" && e.trace != nil {
			rec.Fingerprint = e.trace.Fingerprint
		}
		e.reg.Counter("adskip_adapt_ledger_records_total", "Adaptation ledger records by kind.",
			metricLabels(table, shard, obs.L("column", col), obs.L("kind", rec.Kind.String()))...).Inc()
		e.ledger.Append(rec)
	}
}

// tracePredicates fills the trace's per-predicate section from the probed
// plans and charges the probe outcome to the per-column counters.
func (e *Engine) tracePredicates(tr *obs.QueryTrace, plans []colPlan) {
	tr.Predicates = make([]obs.PredicateTrace, len(plans))
	for i := range plans {
		p := &plans[i]
		pt := &tr.Predicates[i]
		pt.Column = p.name
		if p.pred.NullOnly {
			pt.Predicate = "IS NULL"
		} else {
			pt.Predicate = p.pred.R.String()
		}
		pt.Matched = -1
		if p.skipper == nil {
			continue
		}
		pt.Skipper = p.skipper.Metadata().Kind
		pt.Active = p.active
		pt.ZonesProbed = p.res.ZonesProbed
		pt.EstRowsSkipped = p.res.RowsSkipped
		if pr, ok := p.skipper.(core.PruneReasoner); ok && p.active {
			pt.NotSkippedOverlap, pt.NotSkippedWidened, pt.NotSkippedNullStraddle = pr.LastPruneReasons()
		}
		for _, z := range p.res.Zones {
			pt.Windows++
			pt.CandidateRows += z.Hi - z.Lo
			if z.Covered {
				pt.CoveredWindows++
			}
		}
		e.colMetrics(p.name).recordProbe(p)
	}
}

// finishTrace closes out the query's trace and charges the query-level
// metrics. Called with the engine mutex held, at the end of Query.
func (e *Engine) finishTrace(res *Result, tr *obs.QueryTrace, plans []colPlan, n, limit int) {
	tr.Total = time.Since(tr.Start)
	if tr.Root != nil {
		// The feedback phase interleaves with the scan (Observe calls run
		// inside the executors), so its span is synthesized after the fact
		// as a trailing interval of the measured feedback time.
		if tr.Feedback > 0 {
			tr.Root.Attach(&obs.Span{
				Name:     "feedback",
				Start:    tr.Start.Add(tr.Total - tr.Feedback),
				Duration: tr.Feedback,
			})
		}
		tr.Root.FinishDuration(tr.Total)
		tr.Root.FinishRows(n, res.Count, res.Stats.RowsSkipped)
	}
	tr.RowsScanned = res.Stats.RowsScanned
	tr.RowsSkipped = res.Stats.RowsSkipped
	tr.RowsCovered = res.Stats.RowsCovered
	tr.ZonesProbed = res.Stats.ZonesProbed
	tr.RowsTotal = n
	tr.Matched = res.Count
	// Attribute the observed match count to the predicate when it is
	// unambiguous: exactly one predicate column and no row-limit applied.
	if len(plans) == 1 && len(tr.Predicates) == 1 && limit == 0 {
		tr.Predicates[0].Matched = res.Count
	}
	res.Trace = tr
	if th := e.opts.SlowQueryThreshold; th > 0 && tr.Total >= th {
		tr.Slow = true
		e.m.slowQueries.Inc()
		e.slow.Append(tr)
		if e.log != nil {
			// The fingerprint, not the raw text, is the grouping key:
			// parameterized repeats of one template aggregate in the log
			// instead of flooding it with near-duplicates.
			e.log.Warn("slow query",
				"table", tr.Table, "total", tr.Total,
				"rows_scanned", tr.RowsScanned, "rows_skipped", tr.RowsSkipped,
				"session", tr.Session, "trace_id", tr.TraceID,
				"fingerprint", tr.Fingerprint)
		}
	}
	e.traces.Append(tr)
	if e.stats != nil && tr.Fingerprint != "" {
		e.recordWorkload(res, tr, plans)
	}

	e.m.queries.Inc()
	e.m.rowsScanned.Add(int64(res.Stats.RowsScanned))
	e.m.rowsSkipped.Add(int64(res.Stats.RowsSkipped))
	e.m.rowsCovered.Add(int64(res.Stats.RowsCovered))
	e.m.zonesProbed.Add(int64(res.Stats.ZonesProbed))
	e.m.skippersUsed.Add(int64(res.Stats.SkippersUsed))
	e.m.latency.Observe(tr.Total.Seconds())
	e.m.scannedPerQuery.Observe(float64(res.Stats.RowsScanned))
	if n > 0 {
		e.m.selectivity.Observe(float64(res.Count) / float64(n))
	}
	for i := range plans {
		p := &plans[i]
		if p.skipper == nil {
			continue
		}
		if !p.active {
			e.m.skippersDeclined.Inc()
		}
		e.colMetrics(p.name).refreshGauges(p.skipper)
	}
}
