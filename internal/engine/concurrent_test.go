package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"adskip/internal/expr"
	"adskip/internal/faultinject"
	"adskip/internal/storage"
)

// TestConcurrentQueriesAndMutations hammers one engine from many
// goroutines (run under -race in CI): queries, appends, and updates
// interleave while adaptive metadata reshapes. Correctness of counts is
// checked against a quiesced final state.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	tb := buildTable(t, 2000, 80)
	e := newEngine(t, tb, PolicyAdaptive)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				switch rng.Intn(10) {
				case 0:
					_ = e.AppendRow(storage.IntValue(rng.Int63n(5000)), storage.IntValue(1),
						storage.FloatValue(1), storage.StringValue("ant"))
				case 1:
					_ = e.Update("b", rng.Intn(2000), storage.IntValue(rng.Int63n(1000)))
				default:
					lo := rng.Int63n(2000)
					_, err := e.Query(Query{
						Where: expr.And(intPred("a", expr.Between, lo, lo+100)),
						Aggs:  []Agg{{Kind: CountStar}},
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Quiesced: engine result matches a naive count.
	res, err := e.Query(Query{Where: expr.And(intPred("a", expr.GE, 0)), Aggs: []Agg{{Kind: CountStar}}})
	if err != nil {
		t.Fatal(err)
	}
	colA, _ := tb.Column("a")
	want := 0
	for i := 0; i < colA.Len(); i++ {
		if !colA.IsNull(i) && colA.Value(i).Int() >= 0 {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
}

// TestConcurrentCancellationAndMutations adds the resilience layer to the
// concurrency hammer: appenders and updaters race against queries issued
// with very short deadlines. Queries may complete or report ErrCanceled /
// ErrBudget — any other error, any wrong quiesced count, or any race
// (under -race) fails the test.
func TestConcurrentCancellationAndMutations(t *testing.T) {
	tb := buildTable(t, 2000, 81)
	e := newEngine(t, tb, PolicyAdaptive)
	e.opts.Limits = Limits{MaxDuration: 20 * time.Millisecond}

	restore := faultinject.Activate(faultinject.New(6).
		Set(faultinject.ScanDelay, faultinject.Rule{Prob: 0.05, Delay: 200 * time.Microsecond}))
	defer restore()

	var wg sync.WaitGroup
	var canceled, completed int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				switch rng.Intn(10) {
				case 0:
					_ = e.AppendRow(storage.IntValue(rng.Int63n(5000)), storage.IntValue(1),
						storage.FloatValue(1), storage.StringValue("ant"))
				case 1:
					_ = e.Update("b", rng.Intn(2000), storage.IntValue(rng.Int63n(1000)))
				default:
					lo := rng.Int63n(2000)
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(rng.Intn(2000))*time.Microsecond)
					_, err := e.QueryContext(ctx, Query{
						Where: expr.And(intPred("a", expr.Between, lo, lo+100)),
						Aggs:  []Agg{{Kind: CountStar}},
					})
					cancel()
					mu.Lock()
					switch {
					case err == nil:
						completed++
					case errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudget):
						canceled++
					default:
						t.Errorf("unexpected error: %v", err)
					}
					mu.Unlock()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("cancellation hammer: %d completed, %d cut off", completed, canceled)

	// Quiesced correctness after all the interrupted scans.
	res, err := e.Query(Query{Where: expr.And(intPred("a", expr.GE, 0)), Aggs: []Agg{{Kind: CountStar}}})
	if err != nil {
		t.Fatal(err)
	}
	colA, _ := tb.Column("a")
	want := 0
	for i := 0; i < colA.Len(); i++ {
		if !colA.IsNull(i) && colA.Value(i).Int() >= 0 {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
}

// TestConcurrentQuarantineMidStream corrupts adaptive metadata while
// concurrent readers and writers are active: the quarantine transition
// must be atomic under -race, every completed query correct, and a
// rebuild at the end restores skipping.
func TestConcurrentQuarantineMidStream(t *testing.T) {
	tb := buildTable(t, 4000, 82)
	e := newEngine(t, tb, PolicyAdaptive)
	reference := New(tb, Options{Policy: PolicyNone})

	// InvariantFlip corrupts the zone layout inside Observe at a low rate;
	// racing goroutines then hit the quarantine path concurrently.
	restore := faultinject.Activate(faultinject.New(9).
		Set(faultinject.InvariantFlip, faultinject.Rule{Prob: 0.02}))
	defer restore()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 80; i++ {
				if rng.Intn(12) == 0 {
					_ = e.AppendRow(storage.IntValue(rng.Int63n(5000)), storage.IntValue(1),
						storage.FloatValue(1), storage.StringValue("ant"))
					continue
				}
				lo := rng.Int63n(2000)
				q := Query{
					Where: expr.And(intPred("a", expr.Between, lo, lo+150)),
					Aggs:  []Agg{{Kind: CountStar}},
				}
				if _, err := e.Query(q); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: compare against the no-skipping reference on the final
	// table state (reference shares the table, so counts must agree).
	for _, lo := range []int64{0, 500, 1500} {
		q := Query{
			Where: expr.And(intPred("a", expr.Between, lo, lo+400)),
			Aggs:  []Agg{{Kind: CountStar}},
		}
		got, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Fatalf("lo=%d: count=%d want %d", lo, got.Count, want.Count)
		}
	}

	if len(e.Quarantined()) > 0 {
		if err := e.RebuildSkipping(); err != nil {
			t.Fatal(err)
		}
		if len(e.Quarantined()) != 0 {
			t.Fatal("quarantine not cleared by rebuild")
		}
	}
	t.Logf("mid-stream quarantine events: %d", quarantineEvents(e))
}
