package engine

import (
	"math/rand"
	"sync"
	"testing"

	"adskip/internal/expr"
	"adskip/internal/storage"
)

// TestConcurrentQueriesAndMutations hammers one engine from many
// goroutines (run under -race in CI): queries, appends, and updates
// interleave while adaptive metadata reshapes. Correctness of counts is
// checked against a quiesced final state.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	tb := buildTable(t, 2000, 80)
	e := newEngine(t, tb, PolicyAdaptive)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				switch rng.Intn(10) {
				case 0:
					_ = e.AppendRow(storage.IntValue(rng.Int63n(5000)), storage.IntValue(1),
						storage.FloatValue(1), storage.StringValue("ant"))
				case 1:
					_ = e.Update("b", rng.Intn(2000), storage.IntValue(rng.Int63n(1000)))
				default:
					lo := rng.Int63n(2000)
					_, err := e.Query(Query{
						Where: expr.And(intPred("a", expr.Between, lo, lo+100)),
						Aggs:  []Agg{{Kind: CountStar}},
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Quiesced: engine result matches a naive count.
	res, err := e.Query(Query{Where: expr.And(intPred("a", expr.GE, 0)), Aggs: []Agg{{Kind: CountStar}}})
	if err != nil {
		t.Fatal(err)
	}
	colA, _ := tb.Column("a")
	want := 0
	for i := 0; i < colA.Len(); i++ {
		if !colA.IsNull(i) && colA.Value(i).Int() >= 0 {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
}
