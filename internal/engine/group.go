package engine

import (
	"fmt"
	"sort"

	"adskip/internal/storage"
)

// grouper implements single-column GROUP BY aggregation: it maintains one
// accumulator set per distinct group code (plus a NULL group), fed row by
// row or window by window from the executor's qualifying-row machinery.
// Group codes order-preserve values, so results sort by code and come back
// in value order.
type grouper struct {
	col     *storage.Column
	aggs    []Agg
	accCols []*storage.Column // resolved aggregate input columns
	groups  map[int64][]*aggAcc
	nullAcc []*aggAcc // group of NULL keys; nil until first NULL row
}

// newGrouper builds a grouper; accCols[i] is the resolved column for
// aggs[i] (nil for COUNT(*)).
func newGrouper(col *storage.Column, aggs []Agg, accCols []*storage.Column) *grouper {
	return &grouper{col: col, aggs: aggs, accCols: accCols, groups: make(map[int64][]*aggAcc)}
}

// accsFor returns (creating on demand) the accumulator set for row's group.
func (g *grouper) accsFor(row int) []*aggAcc {
	if g.col.IsNull(row) {
		if g.nullAcc == nil {
			g.nullAcc = g.newAccs()
		}
		return g.nullAcc
	}
	code := g.col.Codes()[row]
	accs, ok := g.groups[code]
	if !ok {
		accs = g.newAccs()
		g.groups[code] = accs
	}
	return accs
}

func (g *grouper) newAccs() []*aggAcc {
	accs := make([]*aggAcc, len(g.aggs))
	for i, a := range g.aggs {
		accs[i] = newAggAcc(a.Kind, g.accCols[i])
	}
	return accs
}

// addRow folds one qualifying row into its group.
func (g *grouper) addRow(row int) {
	for _, acc := range g.accsFor(row) {
		acc.addRow(row)
	}
}

// addWindow folds a window of rows that all qualify. Unlike the global
// accumulators, grouping always reads the key column, so the window
// short-circuit only saves predicate evaluation, not key access.
func (g *grouper) addWindow(lo, hi int) {
	for row := lo; row < hi; row++ {
		g.addRow(row)
	}
}

// result materializes the grouped rows in key order (NULL group last) and
// the result column names and types.
func (g *grouper) result() ([]string, []storage.Type, [][]storage.Value) {
	cols := make([]string, 1+len(g.aggs))
	types := make([]storage.Type, 1+len(g.aggs))
	cols[0] = g.col.Name()
	types[0] = g.col.Type()
	for i, a := range g.aggs {
		cols[i+1] = a.String()
		types[i+1] = aggResultType(a.Kind, g.accCols[i])
	}
	codes := make([]int64, 0, len(g.groups))
	for code := range g.groups {
		codes = append(codes, code)
	}
	if g.col.Type() == storage.String && !g.col.DictSorted() {
		// Unsealed dictionary: codes are insertion-ordered, so sort keys
		// by their string values instead.
		d := g.col.Dict()
		sort.Slice(codes, func(i, j int) bool { return d.Value(codes[i]) < d.Value(codes[j]) })
	} else {
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	}
	rows := make([][]storage.Value, 0, len(codes)+1)
	for _, code := range codes {
		row := make([]storage.Value, 1+len(g.aggs))
		row[0] = g.keyValue(code)
		for i, acc := range g.groups[code] {
			row[i+1] = acc.result()
		}
		rows = append(rows, row)
	}
	if g.nullAcc != nil {
		row := make([]storage.Value, 1+len(g.aggs))
		row[0] = storage.NullValue(g.col.Type())
		for i, acc := range g.nullAcc {
			row[i+1] = acc.result()
		}
		rows = append(rows, row)
	}
	return cols, types, rows
}

// aggResultType is the logical type an aggregate's result column carries:
// counts are BIGINT, AVG is always DOUBLE, and SUM/MIN/MAX follow the
// aggregated column.
func aggResultType(kind AggKind, col *storage.Column) storage.Type {
	switch kind {
	case CountStar, CountCol:
		return storage.Int64
	case Avg:
		return storage.Float64
	default:
		if col != nil {
			return col.Type()
		}
		return storage.Int64
	}
}

// keyValue decodes a group code back to a dynamic value.
func (g *grouper) keyValue(code int64) storage.Value {
	switch g.col.Type() {
	case storage.Int64:
		return storage.IntValue(code)
	case storage.Float64:
		return storage.FloatValue(storage.DecodeFloat64(code))
	case storage.String:
		return storage.StringValue(g.col.Dict().Value(code))
	}
	panic(fmt.Sprintf("engine: unknown group column type %v", g.col.Type()))
}
