package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"adskip/internal/bitvec"
	"adskip/internal/core"
	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/scan"
	"adskip/internal/storage"
)

// Query is the engine-level query form the SQL planner lowers to: a
// conjunctive filter plus either an aggregate list or a projection.
type Query struct {
	Where  expr.Conj
	Aggs   []Agg    // aggregate query when non-empty
	Select []string // projection query otherwise (empty = count only)
	// GroupBy names a single grouping column. When set, Aggs are computed
	// per group, Select may contain only the grouping column itself, and
	// result rows are one per group in key order (NULL group last).
	GroupBy string
	// OrderBy names a column to sort projected rows by (value order,
	// NULLs last; OrderDesc reverses). Projection queries only.
	OrderBy   string
	OrderDesc bool
	Limit     int // row cap (groups for GROUP BY); 0 = unlimited
}

// ExecStats instruments one query execution; the experiment harness reads
// these to report pruning behavior alongside wall-clock time.
type ExecStats struct {
	RowsScanned  int `json:"rows_scanned"` // rows whose codes were read by a kernel
	RowsSkipped  int `json:"rows_skipped"` // rows pruned by metadata probes
	RowsCovered  int `json:"rows_covered"` // rows short-circuited by covered windows
	ZonesProbed  int `json:"zones_probed"`
	SkippersUsed int `json:"skippers_used"` // predicate columns where skipping participated
	// Shard pruning (sharded tables only; see internal/shard). Shards
	// whose key bounds cannot intersect the predicate are eliminated
	// before any zone metadata is consulted. Zero (omitted on the wire)
	// for unsharded engines.
	ShardsScanned int `json:"shards_scanned,omitempty"`
	ShardsPruned  int `json:"shards_pruned,omitempty"`
}

// Result is a query result.
type Result struct {
	Count   int             // qualifying rows (projection: rows returned)
	Aggs    []storage.Value // one per Query.Aggs
	Columns []string        // projection column names
	// Types holds the logical type of each projected column, aligned with
	// Columns. It feeds the wire encoding (MarshalJSON), which needs
	// column types even for empty result sets.
	Types []storage.Type
	Rows  [][]storage.Value
	Stats ExecStats
	// Trace records the execution's phase timings and per-predicate
	// skipping decisions. Always populated (one allocation per query).
	Trace *obs.QueryTrace
}

// maxPredicateColumns bounds the per-segment evaluation bitmask.
const maxPredicateColumns = 64

// colPlan is the per-predicate-column execution state.
type colPlan struct {
	name    string
	col     *storage.Column
	pred    expr.ColPred
	skipper core.Skipper
	res     core.PruneResult
	active  bool // skipper participated (enabled)
}

// Query plans and executes q, returning the result and feeding
// observations back into any adaptive skippers involved. It is
// QueryContext with a background context: no cancellation, but the
// engine's configured Limits still apply.
func (e *Engine) Query(q Query) (*Result, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext executes q under ctx's cancellation and the engine's
// per-query resource limits. Cancellation is cooperative: scans check the
// context at least once per checkpointRows rows, so an expired context
// returns ErrCanceled within one checkpoint interval. A query whose
// skipper panics or self-reports corruption quarantines that skipper and
// retries once without it (full scan), preserving correctness.
func (e *Engine) QueryContext(ctx context.Context, q Query) (*Result, error) {
	if q.Limit < 0 {
		return nil, ErrBadLimit
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Workload attribution: only when stats are on AND the context
	// carries a template fingerprint. The common benchmark/harness path
	// (no fingerprint) pays one nil check and one context lookup at most.
	if e.stats != nil {
		if fp := obs.TemplateFromContext(ctx); fp != "" {
			start := time.Now()
			var (
				res *Result
				err error
			)
			pprof.Do(ctx, pprof.Labels(
				"query_template", fp,
				"session", obs.SessionFromContext(ctx),
			), func(ctx context.Context) {
				res, err = e.queryAdmitted(ctx, q)
			})
			if err != nil {
				e.recordWorkloadError(fp, obs.PlanCachedFromContext(ctx), start)
			}
			return res, err
		}
	}
	return e.queryAdmitted(ctx, q)
}

// queryAdmitted is QueryContext past validation and workload attribution:
// admission control, the quarantine-retry loop, and terminal error
// accounting.
func (e *Engine) queryAdmitted(ctx context.Context, q Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		e.m.canceled.Inc()
		return nil, fmt.Errorf("%w: %v", ErrCanceled, context.Cause(ctx))
	}
	if err := e.opts.Admission.acquire(ctx); err != nil {
		e.m.canceled.Inc()
		return nil, err
	}
	defer e.opts.Admission.release()
	e.m.inflight.Add(1)
	defer e.m.inflight.Add(-1)

	retried := false
	for {
		res, err := e.queryOnce(ctx, q)
		if err == nil {
			return res, nil
		}
		if !retried && errors.Is(err, errQuarantineRetry) {
			retried = true
			e.m.retries.Inc()
			continue
		}
		switch {
		case errors.Is(err, ErrCanceled):
			e.m.canceled.Inc()
		case errors.Is(err, ErrBudget):
			e.m.overBudget.Inc()
		}
		return nil, err
	}
}

// queryOnce runs one planning + execution attempt under the engine mutex.
// A panic anywhere in execution is recovered here: skippers that were
// actively pruning are quarantined (the metadata is the prime corruption
// suspect) and the error is marked retryable.
func (e *Engine) queryOnce(ctx context.Context, q Query) (out *Result, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var plans []colPlan
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, e.handleExecPanic(plans, &panicError{val: r, stack: debug.Stack()})
		}
	}()
	qc := e.newQctx(ctx)
	root := obs.NewSpan("query")
	tr := &obs.QueryTrace{Table: e.tbl.Name(), Start: root.Start, Root: root,
		Shard:       e.opts.Shard,
		Session:     obs.SessionFromContext(ctx),
		TraceID:     obs.TraceFromContext(ctx),
		Fingerprint: obs.TemplateFromContext(ctx),
		PlanCached:  obs.PlanCachedFromContext(ctx)}
	e.trace = tr
	defer func() { e.trace = nil }()
	spPlan := root.StartChild("plan")
	e.syncSkippers()
	if err := q.Where.Validate(); err != nil {
		return nil, err
	}

	n := e.tbl.NumRows()
	res := &Result{}

	// Validate aggregates and projections up front.
	accs := make([]*aggAcc, len(q.Aggs))
	aggCols := make([]*storage.Column, len(q.Aggs))
	for i, a := range q.Aggs {
		col, err := e.validateAgg(a)
		if err != nil {
			return nil, err
		}
		accs[i] = newAggAcc(a.Kind, col)
		aggCols[i] = col
	}
	var grp *grouper
	if q.GroupBy != "" {
		gcol, err := e.tbl.Column(q.GroupBy)
		if err != nil {
			return nil, err
		}
		for _, name := range q.Select {
			if name != q.GroupBy {
				return nil, fmt.Errorf("engine: column %q in select list is not the GROUP BY column", name)
			}
		}
		grp = newGrouper(gcol, q.Aggs, aggCols)
	}
	var projCols []*storage.Column
	if grp == nil {
		for _, name := range q.Select {
			col, err := e.tbl.Column(name)
			if err != nil {
				return nil, err
			}
			projCols = append(projCols, col)
			res.Columns = append(res.Columns, name)
			res.Types = append(res.Types, col.Type())
		}
	}
	var orderCol *storage.Column
	if q.OrderBy != "" {
		if grp != nil {
			return nil, fmt.Errorf("engine: ORDER BY with GROUP BY is unsupported (groups come back in key order)")
		}
		if len(projCols) == 0 {
			return nil, fmt.Errorf("engine: ORDER BY requires a projection")
		}
		var err error
		orderCol, err = e.tbl.Column(q.OrderBy)
		if err != nil {
			return nil, err
		}
	}

	tr.Plan = time.Since(tr.Start)
	spPlan.FinishRows(n, 0, 0)

	// A pre-scan checkpoint so planning-heavy queries still honor limits.
	if err := qc.check(0); err != nil {
		return nil, err
	}

	// Lower predicates per column and probe skippers.
	tProbe := time.Now()
	spProbe := root.StartChild("prune")
	var unsat bool
	plans, unsat, err = e.plan(q.Where)
	if err != nil {
		return nil, err
	}
	if len(plans) > maxPredicateColumns {
		return nil, fmt.Errorf("engine: more than %d predicate columns", maxPredicateColumns)
	}
	for i := range plans {
		p := &plans[i]
		res.Stats.ZonesProbed += p.res.ZonesProbed
		res.Stats.RowsSkipped += p.res.RowsSkipped
		if p.active {
			res.Stats.SkippersUsed++
		}
	}
	tr.Probe = time.Since(tProbe)
	spProbe.FinishRows(n, candidateRows(plans), res.Stats.RowsSkipped)
	e.tracePredicates(tr, plans)
	if unsat {
		// A contradiction (or empty interval) on some column: no rows can
		// match. Skippers still observe a zero-work query.
		for i := range plans {
			e.observeTimed(&plans[i], nil)
		}
		out := e.finish(res, accs, grp, q.Limit)
		e.finishTrace(out, tr, plans, n, q.Limit)
		return out, nil
	}

	tScan := time.Now()
	qc.span = root.StartChild("scan")
	switch {
	case grp == nil && len(plans) == 1 && len(projCols) == 0 && countOnly(accs):
		err = e.execFastCount(qc, &plans[0], res, accs, n)
	case orderCol != nil:
		err = e.execOrdered(qc, plans, res, accs, projCols, orderCol, q.OrderDesc, q.Limit, n)
	default:
		err = e.execGeneral(qc, plans, res, accs, projCols, grp, q.Limit, n)
	}
	if err != nil {
		// A worker panic surfaces here as an error (recovered in its own
		// goroutine — panics cannot cross goroutines); treat it like an
		// in-line panic: quarantine the active skippers and mark retryable.
		var pe *panicError
		if errors.As(err, &pe) {
			return nil, e.handleExecPanic(plans, pe)
		}
		return nil, err
	}
	// The executors call skipper.Observe inline; observeTimed charges that
	// time to the feedback phase, so scan time is the remainder.
	tr.Scan = time.Since(tScan) - tr.Feedback
	qc.span.FinishDuration(tr.Scan)
	qc.span.FinishRows(res.Stats.RowsScanned+res.Stats.RowsCovered, res.Count, 0)
	out = e.finish(res, accs, grp, q.Limit)
	e.finishTrace(out, tr, plans, n, q.Limit)
	return out, nil
}

// handleExecPanic records a recovered execution panic: every skipper that
// was actively pruning for the query is quarantined (corrupt metadata is
// the prime suspect for out-of-range candidate windows), and when at
// least one was, the error is marked retryable — the retry runs without
// them, as full scans. Caller holds e.mu.
func (e *Engine) handleExecPanic(plans []colPlan, pe *panicError) error {
	e.m.panics.Inc()
	quarantined := 0
	for i := range plans {
		if plans[i].active && plans[i].skipper != nil {
			e.quarantineLocked(plans[i].name, pe)
			quarantined++
		}
	}
	if quarantined > 0 {
		return fmt.Errorf("%w: %w (quarantined %d skipper(s))", errQuarantineRetry, pe, quarantined)
	}
	return fmt.Errorf("engine: execution panicked: %w", pe)
}

// safeProbe probes a plan's skipper for candidate windows, converting
// panics and self-reported corruption (core.HealthChecker) into
// quarantine + full-scan fallback. Caller holds e.mu.
func (e *Engine) safeProbe(p *colPlan) {
	if p.skipper == nil {
		return
	}
	if perr := func() (err error) {
		defer recoverToError(&err)
		if p.pred.NullOnly {
			p.res = p.skipper.PruneNulls()
		} else {
			p.res = p.skipper.Prune(p.pred.R)
		}
		return nil
	}(); perr != nil {
		e.quarantineLocked(p.name, perr)
		p.skipper, p.res, p.active = nil, core.PruneResult{}, false
		return
	}
	if e.checkSkipperHealth(p.name, p.skipper) {
		// The probe detected corruption and declined; the column now runs
		// as a plain full scan.
		p.skipper, p.res, p.active = nil, core.PruneResult{}, false
		return
	}
	p.active = p.res.Enabled
}

// observeTimed hands execution feedback to a plan's skipper, charging the
// time spent in Observe (split/merge/arbitration work) to the in-flight
// trace's feedback phase. A panicking Observe quarantines the skipper:
// the query's result is already computed, so only the metadata is at
// stake. Caller holds e.mu.
func (e *Engine) observeTimed(p *colPlan, zobs []core.ZoneObservation) {
	if p.skipper == nil {
		return
	}
	t := time.Now()
	perr := func() (err error) {
		defer recoverToError(&err)
		p.skipper.Observe(p.res, zobs)
		return nil
	}()
	if e.trace != nil {
		e.trace.Feedback += time.Since(t)
	}
	if perr != nil {
		e.quarantineLocked(p.name, perr)
		p.skipper = nil
	}
}

// finish materializes aggregate or grouped output onto the result.
func (e *Engine) finish(res *Result, accs []*aggAcc, grp *grouper, limit int) *Result {
	if grp != nil {
		res.Columns, res.Types, res.Rows = grp.result()
		if limit > 0 && len(res.Rows) > limit {
			res.Rows = res.Rows[:limit]
		}
		return res
	}
	e.finishAggs(res, accs)
	return res
}

// plan lowers the conjunction per referenced column and probes skippers.
// unsat is true when some column's intervals are empty (no row can match).
func (e *Engine) plan(where expr.Conj) ([]colPlan, bool, error) {
	var plans []colPlan
	unsat := false
	for _, name := range where.Columns() {
		col, err := e.tbl.Column(name)
		if err != nil {
			return nil, false, err
		}
		cp, err := expr.LowerColumn(where, col)
		if err != nil {
			return nil, false, err
		}
		p := colPlan{name: name, col: col, pred: cp, skipper: e.skippers[name]}
		if cp.Empty() {
			unsat = true
		}
		e.safeProbe(&p)
		plans = append(plans, p)
	}
	return plans, unsat, nil
}

// candidateRows sums the rows left inside candidate windows across plans
// whose skippers participated (the prune stage's "rows out").
func candidateRows(plans []colPlan) int {
	total := 0
	for i := range plans {
		if !plans[i].active {
			continue
		}
		for _, z := range plans[i].res.Zones {
			total += z.Hi - z.Lo
		}
	}
	return total
}

// countOnly reports whether every accumulator is COUNT(*) (data-free).
func countOnly(accs []*aggAcc) bool {
	for _, a := range accs {
		if a.kind != CountStar {
			return false
		}
	}
	return true
}

// finishAggs materializes aggregate results from the accumulated state
// plus the final count.
func (e *Engine) finishAggs(res *Result, accs []*aggAcc) {
	for _, a := range accs {
		// COUNT(*) accumulators may have been bypassed by the fast count
		// path, which tracks res.Count directly.
		if a.kind == CountStar && a.rows == 0 {
			a.rows = int64(res.Count)
		}
		res.Aggs = append(res.Aggs, a.result())
	}
}

// execFastCount is the hot path: one predicate column, COUNT(*)-only.
// It scans zone-aligned so adaptive skippers receive exact per-zone
// feedback with piggybacked statistics. On error (cancellation, budget,
// worker panic) no feedback is given: partially scanned zones would
// report misleading match counts and corrupt adaptation.
func (e *Engine) execFastCount(qc *qctx, p *colPlan, res *Result, accs []*aggAcc, n int) error {
	workers := e.opts.Parallelism
	if !p.active {
		// Full scan, no metadata.
		count, err := e.parallelCountFull(qc, p, n, workers)
		if err != nil {
			return err
		}
		res.Count = count
		res.Stats.RowsScanned = n
		e.observeTimed(p, nil)
		return nil
	}
	count, obs, stats, err := e.parallelCountZones(qc, p, p.res.Zones, workers)
	if err != nil {
		return err
	}
	res.Count = count
	res.Stats.RowsScanned += stats.RowsScanned
	res.Stats.RowsCovered += stats.RowsCovered
	e.observeTimed(p, obs)
	return nil
}

// seg is one contiguous row window of the intersected candidate set.
// needEval has bit i set when plans[i]'s predicate must still be evaluated
// over the window (its metadata did not prove coverage).
type seg struct {
	lo, hi   int
	needEval uint64
}

// maxSegmentSpans bounds per-segment child spans: queries whose candidate
// set fragments into many windows get stage-level timing only, so tracing
// cost stays independent of zone count.
const maxSegmentSpans = 16

// execGeneral handles every other query shape: multi-column conjunctions,
// aggregates over data, and projections. Kernel scans are chunked at
// checkpoint granularity; covered windows (no kernel work) get one
// free check per segment so even all-covered queries stay cancelable.
func (e *Engine) execGeneral(qc *qctx, plans []colPlan, res *Result, accs []*aggAcc, projCols []*storage.Column, grp *grouper, limit, n int) error {
	segs := []seg{{lo: 0, hi: n}}
	for i := range plans {
		segs = intersectPlan(segs, &plans[i], uint64(1)<<uint(i), n)
	}

	tk := &ticker{qc: qc}
	sel := bitvec.NewSelVec(1024)
	spanPerSeg := qc.span != nil && len(segs) <= maxSegmentSpans
	done := false
	for _, s := range segs {
		if done {
			break
		}
		if err := qc.check(0); err != nil {
			return err
		}
		var sp *obs.Span
		if spanPerSeg {
			sp = qc.span.StartChild(fmt.Sprintf("segment [%d,%d)", s.lo, s.hi))
		}
		before := res.Count
		err := e.execSegment(qc, plans, res, accs, projCols, grp, limit, s, tk, sel, &done)
		if sp != nil {
			sp.FinishRows(s.hi-s.lo, res.Count-before, 0)
		}
		if err != nil {
			return err
		}
	}

	e.feedbackGeneral(plans, segs)
	return nil
}

// execSegment runs one contiguous candidate window: covered fast paths
// when no predicate needs evaluation, otherwise filter + refine + consume.
func (e *Engine) execSegment(qc *qctx, plans []colPlan, res *Result, accs []*aggAcc, projCols []*storage.Column, grp *grouper, limit int, s seg, tk *ticker, sel *bitvec.SelVec, done *bool) error {
	if s.needEval == 0 {
		// Every row in the window qualifies. Count-only coverage reads
		// no data and stays checkpoint-free; grouping, aggregation, and
		// projection all read the covered rows, so they run in
		// checkpoint-sized chunks like any other scan.
		if grp != nil {
			res.Count += s.hi - s.lo
			res.Stats.RowsCovered += s.hi - s.lo
			for lo := s.lo; lo < s.hi; {
				end := lo + checkpointRows
				if end > s.hi {
					end = s.hi
				}
				grp.addWindow(lo, end)
				if err := tk.tick(end - lo); err != nil {
					return err
				}
				if err := qc.checkResult(len(grp.groups)); err != nil {
					return err
				}
				lo = end
			}
			return nil
		}
		if len(projCols) == 0 {
			res.Count += s.hi - s.lo
			res.Stats.RowsCovered += s.hi - s.lo
			for lo := s.lo; len(accs) > 0 && lo < s.hi; {
				end := lo + checkpointRows
				if end > s.hi {
					end = s.hi
				}
				for _, a := range accs {
					a.addWindow(lo, end)
				}
				if err := tk.tick(end - lo); err != nil {
					return err
				}
				lo = end
			}
			return nil
		}
		for row := s.lo; row < s.hi && !*done; row++ {
			if err := tk.tick(1); err != nil {
				return err
			}
			var err error
			if *done, err = e.emitRow(qc, res, accs, projCols, row, limit); err != nil {
				return err
			}
		}
		return nil
	}
	// Evaluate the first needed predicate into a selection, then
	// refine with the rest.
	sel.Reset()
	first := true
	matched := 0
	for i := range plans {
		if s.needEval&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		p := &plans[i]
		if first {
			if err := filterSegChunked(tk, p, s, sel); err != nil {
				return err
			}
			matched = sel.Len()
			res.Stats.RowsScanned += s.hi - s.lo
			first = false
			continue
		}
		res.Stats.RowsScanned += sel.Len()
		if err := tk.tick(sel.Len()); err != nil {
			return err
		}
		matched = refineSel(sel, p)
		if matched == 0 {
			break
		}
	}
	// The matched rows were already charged by the filter passes above;
	// the consumption loops below only need latency checkpoints
	// (qc.check(0)) so huge match sets stay cancelable.
	if grp != nil {
		res.Count += matched
		for rows := sel.Rows(); len(rows) > 0; {
			chunk := rows
			if len(chunk) > checkpointRows {
				chunk = chunk[:checkpointRows]
			}
			for _, row := range chunk {
				grp.addRow(int(row))
			}
			rows = rows[len(chunk):]
			if err := qc.check(0); err != nil {
				return err
			}
		}
		if err := qc.checkResult(len(grp.groups)); err != nil {
			return err
		}
		return nil
	}
	if len(projCols) == 0 {
		res.Count += matched
		for rows := sel.Rows(); len(rows) > 0; {
			chunk := rows
			if len(chunk) > checkpointRows {
				chunk = chunk[:checkpointRows]
			}
			for _, row := range chunk {
				for _, a := range accs {
					a.addRow(int(row))
				}
			}
			rows = rows[len(chunk):]
			if err := qc.check(0); err != nil {
				return err
			}
		}
		return nil
	}
	for i, row := range sel.Rows() {
		if i%checkpointRows == checkpointRows-1 {
			if err := qc.check(0); err != nil {
				return err
			}
		}
		var err error
		if *done, err = e.emitRow(qc, res, accs, projCols, int(row), limit); err != nil {
			return err
		}
		if *done {
			break
		}
	}
	return nil
}

// filterSegChunked runs the segment's first predicate filter in
// checkpoint-sized chunks, appending matches to sel.
func filterSegChunked(tk *ticker, p *colPlan, s seg, sel *bitvec.SelVec) error {
	for lo := s.lo; lo < s.hi; lo += checkpointRows {
		hi := lo + checkpointRows
		if hi > s.hi {
			hi = s.hi
		}
		if p.pred.NullOnly {
			scan.FilterNullSel(p.col.Nulls(), lo, hi, sel)
		} else {
			scan.FilterSel(p.col.Codes(), lo, hi, p.pred.R, p.col.Nulls(), 0, sel)
		}
		if err := tk.tick(hi - lo); err != nil {
			return err
		}
	}
	return nil
}

// emitRow appends one projected row; done reports the limit being hit,
// err a blown result budget.
func (e *Engine) emitRow(qc *qctx, res *Result, accs []*aggAcc, projCols []*storage.Column, row, limit int) (done bool, err error) {
	if err := qc.checkResult(len(res.Rows) + 1); err != nil {
		return true, err
	}
	vals := make([]storage.Value, len(projCols))
	for ci, col := range projCols {
		vals[ci] = col.Value(row)
	}
	res.Rows = append(res.Rows, vals)
	res.Count++
	for _, a := range accs {
		a.addRow(row)
	}
	return limit > 0 && len(res.Rows) >= limit, nil
}

// refineSel keeps only selected rows matching plan p's predicate; returns
// the surviving count.
func refineSel(sel *bitvec.SelVec, p *colPlan) int {
	rows := sel.Rows()
	codes := p.col.Codes()
	nulls := p.col.Nulls()
	kept := rows[:0]
	if p.pred.NullOnly {
		for _, row := range rows {
			if nulls != nil && int(row) < nulls.Len() && nulls.Get(int(row)) {
				kept = append(kept, row)
			}
		}
		sel.Truncate(len(kept))
		return len(kept)
	}
	single := p.pred.R.Len() == 1
	var rlo, rhi int64
	if single {
		rlo, rhi = p.pred.R.Lo[0], p.pred.R.Hi[0]
	}
	for _, row := range rows {
		if nulls != nil && nulls.Get(int(row)) {
			continue
		}
		c := codes[row]
		var ok bool
		if single {
			ok = c >= rlo && c <= rhi
		} else {
			ok = p.pred.R.Contains(c)
		}
		if ok {
			kept = append(kept, row)
		}
	}
	// kept aliases the selection's backing array (in-place filter); shrink
	// the selection to the surviving prefix.
	sel.Truncate(len(kept))
	return len(kept)
}

// intersectPlan intersects the current segment list with one plan's
// candidate windows, OR-ing the plan's eval bit into windows it does not
// cover. Plans whose skipper declined contribute the full range,
// uncovered.
func intersectPlan(segs []seg, p *colPlan, bit uint64, n int) []seg {
	if !p.active {
		out := make([]seg, len(segs))
		for i, s := range segs {
			s.needEval |= bit
			out[i] = s
		}
		return out
	}
	var out []seg
	zi := 0
	zones := p.res.Zones
	for _, s := range segs {
		for zi < len(zones) && zones[zi].Hi <= s.lo {
			zi++
		}
		for zj := zi; zj < len(zones) && zones[zj].Lo < s.hi; zj++ {
			z := zones[zj]
			lo, hi := z.Lo, z.Hi
			if lo < s.lo {
				lo = s.lo
			}
			if hi > s.hi {
				hi = s.hi
			}
			if lo >= hi {
				continue
			}
			ns := seg{lo: lo, hi: hi, needEval: s.needEval}
			if !z.Covered {
				ns.needEval |= bit
			}
			out = append(out, ns)
		}
	}
	return out
}

// feedbackGeneral sends coarse observations to skippers after a general
// execution. Multi-column intersections scan zones partially, so zones get
// heat-only feedback (Partial), never split statistics; covered candidates
// are acknowledged as useful. This keeps adaptation conservative and
// sound: structural refinement only happens on exact single-column
// evidence (the fast path).
func (e *Engine) feedbackGeneral(plans []colPlan, segs []seg) {
	for i := range plans {
		p := &plans[i]
		if p.skipper == nil {
			continue
		}
		if !p.active {
			e.observeTimed(p, nil)
			continue
		}
		var obs []core.ZoneObservation
		si := 0
		for _, z := range p.res.Zones {
			if z.ID == core.NoZoneID {
				continue
			}
			ob := core.ZoneObservation{ID: z.ID, Lo: z.Lo, Hi: z.Hi, Covered: z.Covered}
			if !z.Covered {
				// Was any part of this zone visited?
				for si < len(segs) && segs[si].hi <= z.Lo {
					si++
				}
				visited := si < len(segs) && segs[si].lo < z.Hi
				if !visited {
					continue // fully pruned by other columns; no signal
				}
				ob.Partial = true
			}
			obs = append(obs, ob)
		}
		e.observeTimed(p, obs)
	}
}
