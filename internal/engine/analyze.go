package engine

import (
	"context"
	"fmt"
	"time"

	"adskip/internal/obs"
)

// ExplainAnalyze executes q and renders the observed plan: per-phase wall
// clock timings (plan → metadata probe → scan → feedback) and, per
// predicate column, the probe's estimated pruning against what execution
// actually observed. Unlike Explain, the query really runs — the output
// reports actuals, and adaptive skippers receive their normal feedback,
// so repeating an EXPLAIN ANALYZE shows the structure converging.
//
// The returned result is the executed query's result (rows, aggregates,
// stats, trace), so callers pay for one execution, not two.
func (e *Engine) ExplainAnalyze(q Query) ([]string, *Result, error) {
	return e.ExplainAnalyzeContext(context.Background(), q)
}

// ExplainAnalyzeContext is ExplainAnalyze under a caller context. When
// the context carries a template fingerprint and workload stats are on,
// the execution is attributed like any other query and the rendering
// gains a workload footer: the template's cumulative call count and
// latency, so an analyzed query shows where it sits in the workload.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, q Query) ([]string, *Result, error) {
	res, err := e.QueryContext(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	lines := AnalyzeLines(res, true)
	if wl := e.workloadLine(res.Trace); wl != "" {
		lines = append(lines, wl)
	}
	if ll := e.ledgerLine(); ll != "" {
		lines = append(lines, ll)
	}
	return lines, res, nil
}

// workloadLine renders the per-template footer, or "" when the query was
// not attributed (no stats table, or no fingerprint on the context).
func (e *Engine) workloadLine(tr *obs.QueryTrace) string {
	if e.stats == nil || tr == nil || tr.Fingerprint == "" {
		return ""
	}
	ts, ok := e.stats.Template(tr.Fingerprint)
	if !ok {
		return ""
	}
	return fmt.Sprintf("workload: template %q — %d calls (%d errors, %d cache hits), mean %.0fµs, p95 %.0fµs, %.1f%% rows skipped",
		ts.Fingerprint, ts.Calls, ts.Errors, ts.CacheHits, ts.MeanUS, ts.P95US, 100*ts.SkipRatio)
}

// ledgerLine renders the adaptation-ledger footer: the table's lifetime
// ledger totals (events since the table was loaded, split count, and the
// template behind the most recent split), or "" before any ledger
// activity. Shown next to the workload footer so an analyzed query also
// reports how much structural churn its table has seen.
func (e *Engine) ledgerLine() string {
	lt := e.ledger.Totals(e.tbl.Name())
	if lt.Events == 0 {
		return ""
	}
	line := fmt.Sprintf("ledger: %d adaptation events (%d splits)", lt.Events, lt.Splits)
	if !lt.LastSplit.IsZero() {
		line += fmt.Sprintf(", last split %s ago by %q",
			time.Since(lt.LastSplit).Round(time.Millisecond), lt.LastSplitCause)
	}
	return line
}

// AnalyzeLines renders an executed query's trace in EXPLAIN ANALYZE form.
// Timings are omitted when withTimings is false (golden tests assert on
// the deterministic remainder).
func AnalyzeLines(res *Result, withTimings bool) []string {
	tr := res.Trace
	if tr == nil {
		return []string{"no trace recorded"}
	}
	out := []string{fmt.Sprintf("EXPLAIN ANALYZE: table %q (%d rows), %d rows matched", tr.Table, tr.RowsTotal, res.Count)}
	out = append(out, tr.Lines(withTimings)[1:]...)
	out = append(out, analyzeSummary(tr))
	return out
}

// analyzeSummary is the footer: how the table's rows divided into skipped
// vs covered vs scanned, i.e. how much work pruning actually saved.
func analyzeSummary(tr *obs.QueryTrace) string {
	avoided := tr.RowsSkipped + tr.RowsCovered
	return fmt.Sprintf("pruning: %d of %d rows avoided (%.1f%%): %d skipped, %d covered; %d scanned",
		avoided, tr.RowsTotal, summaryPct(avoided, tr.RowsTotal),
		tr.RowsSkipped, tr.RowsCovered, tr.RowsScanned)
}

func summaryPct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
