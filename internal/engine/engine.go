// Package engine executes queries over tables with pluggable data-skipping
// policies, closing the adaptive feedback loop: it probes skippers for
// candidate row windows, scans them with the fast kernels, and hands
// per-zone observations (with piggybacked statistics) back to the
// skippers.
package engine

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"adskip/internal/adaptive"
	"adskip/internal/core"
	"adskip/internal/faultinject"
	"adskip/internal/imprint"
	"adskip/internal/obs"
	"adskip/internal/stats"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/wal"
)

// Policy selects the data-skipping policy applied to indexed columns.
type Policy int

const (
	// PolicyNone scans everything (baseline).
	PolicyNone Policy = iota
	// PolicyStatic uses fixed-granularity zonemaps.
	PolicyStatic
	// PolicyAdaptive uses adaptive zonemaps (the paper's contribution).
	PolicyAdaptive
	// PolicyImprint uses static column imprints (bin-occurrence masks per
	// zone) — a second skipping structure under the same framework.
	PolicyImprint
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyStatic:
		return "static"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyImprint:
		return "imprint"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures an Engine.
type Options struct {
	// Policy is the skipping policy for columns registered with
	// EnableSkipping.
	Policy Policy
	// StaticZoneSize is the zone size for PolicyStatic. Default 65536.
	StaticZoneSize int
	// Adaptive configures PolicyAdaptive (zero value = defaults).
	Adaptive adaptive.Config
	// Parallelism is the number of goroutines used by the COUNT fast
	// path's scans. Default 1 (serial; the experiment harness measures
	// single-threaded behavior like the paper). Results are identical at
	// any setting — counting is associative and observations are
	// per-zone.
	Parallelism int
	// Metrics receives the engine's instrumentation. Instrumentation is
	// always on: when nil, the engine creates a private registry. Share
	// one registry across engines (the DB facade does) to aggregate
	// metrics catalog-wide.
	Metrics *obs.Registry
	// Events receives adaptation events (splits, merges, arbitration
	// flips). When nil, the engine creates a private log.
	Events *obs.EventLog
	// Ledger receives zone-lifecycle provenance records: every structural
	// change with its cause, the fingerprint of the query that triggered
	// it, and the before/after bounds. When nil, the engine creates a
	// private ledger. Share one ledger across engines (the DB facade does)
	// so /adaptation sees catalog-wide history; per-shard records stay
	// distinguishable by their shard stamp.
	Ledger *obs.Ledger
	// Limits bounds each query's resource consumption (zero value = no
	// limits). Enforced at cooperative checkpoints; see Limits.
	Limits Limits
	// Admission, when non-nil, bounds the number of concurrently
	// executing queries. Share one controller across engines (the DB
	// facade does) to bound catalog-wide concurrency.
	Admission *Admission
	// Traces receives every completed query trace. When nil, the engine
	// creates a private ring of obs.DefaultTraceRingSize entries. Share
	// one ring across engines (the DB facade does) so the telemetry
	// server sees catalog-wide history.
	Traces *obs.TraceRing
	// SlowTraces receives traces of queries exceeding SlowQueryThreshold.
	// When nil, the engine creates a private ring.
	SlowTraces *obs.TraceRing
	// SlowQueryThreshold marks queries whose total wall clock meets or
	// exceeds it as slow: the trace is flagged, copied to the slow-query
	// log, and counted. Zero disables the slow-query log.
	SlowQueryThreshold time.Duration
	// Logger receives structured log events: slow queries (warn),
	// quarantines (error), and adaptation milestones — skipper
	// built/loaded/rebuilt and arbitration flips at info, per-zone
	// splits/merges at debug. Nil disables logging entirely (the hot
	// path pays one nil check).
	Logger *slog.Logger
	// Stats, when non-nil, receives one workload sample per query that
	// arrived with a template fingerprint on its context (see
	// obs.WithTemplate). Share one table across engines (the DB facade
	// does) for a catalog-wide workload view. Queries without a
	// fingerprint — direct engine API callers, benchmarks — skip the
	// attribution path entirely.
	Stats *stats.Table
	// Shard is this engine's 1-based shard number when it is one shard of
	// a sharded table (see internal/shard). 0 (the default) means the
	// engine owns the whole table. A sharded engine labels every metric
	// series with shard="N" — per-shard series stay distinct in a shared
	// registry — and stamps N into the WAL records it writes so recovery
	// can route each record back to the shard that logged it.
	Shard int
}

func (o Options) withDefaults() Options {
	if o.StaticZoneSize <= 0 {
		o.StaticZoneSize = 65536
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	return o
}

// Engine executes queries over one table.
//
// All public methods are safe for concurrent use: queries are serialized
// with a mutex because even read-only SQL mutates adaptive metadata (the
// feedback loop is what makes the structure adaptive). The scan work
// inside one query can still fan out across goroutines via
// Options.Parallelism.
type Engine struct {
	mu       sync.Mutex
	tbl      *table.Table
	opts     Options
	skippers map[string]core.Skipper

	// quarantined names columns whose skippers failed (panic or detected
	// corruption) and now fall back to full scans; see quarantineLocked.
	quarantined map[string]quarantineRecord

	// Observability: the registry and event log may be shared across
	// engines; metric handles are resolved once so the per-query cost is
	// atomic adds only. trace is the in-flight query's trace (guarded by
	// mu, like all query state). colM has its own small mutex so the
	// history sampler can walk the per-column handles without waiting on
	// a running query's hold of mu.
	reg    *obs.Registry
	events *obs.EventLog
	ledger *obs.Ledger
	m      engMetrics
	colMu  sync.Mutex
	colM   map[string]*colMetrics
	trace  *obs.QueryTrace
	traces *obs.TraceRing
	slow   *obs.TraceRing
	log    *slog.Logger
	stats  *stats.Table

	// wal, when armed via SetWAL, makes appends and updates durable:
	// mutations are logged (group-committed) before they touch the
	// columns. Guarded by mu.
	wal *wal.Log
}

// Errors returned by the engine.
var (
	ErrUnsupportedAgg = errors.New("engine: unsupported aggregate")
	ErrBadLimit       = errors.New("engine: negative limit")
)

// New creates an engine over tbl. Skipping starts disabled on all columns;
// call EnableSkipping to build metadata.
func New(tbl *table.Table, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		tbl:         tbl,
		opts:        opts,
		skippers:    make(map[string]core.Skipper),
		quarantined: make(map[string]quarantineRecord),
	}
	e.reg = opts.Metrics
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.events = opts.Events
	if e.events == nil {
		e.events = obs.NewEventLog(0)
	}
	e.ledger = opts.Ledger
	if e.ledger == nil {
		e.ledger = obs.NewLedger(0)
	}
	e.traces = opts.Traces
	if e.traces == nil {
		e.traces = obs.NewTraceRing(0)
	}
	e.slow = opts.SlowTraces
	if e.slow == nil {
		e.slow = obs.NewTraceRing(0)
	}
	e.m = newEngMetrics(e.reg, tbl.Name(), opts.Shard)
	e.colM = make(map[string]*colMetrics)
	e.log = opts.Logger
	e.stats = opts.Stats
	return e
}

// Table returns the underlying table.
func (e *Engine) Table() *table.Table { return e.tbl }

// Metrics returns the engine's metrics registry.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Events returns a chronological copy of the retained adaptation events.
func (e *Engine) Events() []obs.Event { return e.events.Events() }

// Ledger returns the adaptation ledger this engine journals into.
func (e *Engine) Ledger() *obs.Ledger { return e.ledger }

// Traces returns the ring of recently completed query traces.
func (e *Engine) Traces() *obs.TraceRing { return e.traces }

// SlowTraces returns the slow-query log: traces that exceeded
// Options.SlowQueryThreshold.
func (e *Engine) SlowTraces() *obs.TraceRing { return e.slow }

// WorkloadStats returns the per-template workload table this engine
// records into, or nil when workload analytics is off.
func (e *Engine) WorkloadStats() *stats.Table { return e.stats }

// EnableSkipping builds skipping metadata for the named columns (all
// columns when none are named) according to the engine's policy. String
// columns get their dictionaries sealed first so code order is value
// order.
func (e *Engine) EnableSkipping(cols ...string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(cols) == 0 {
		for _, cs := range e.tbl.Schema() {
			cols = append(cols, cs.Name)
		}
	}
	for _, name := range cols {
		if err := e.buildSkipperLocked(name, obs.EventSkipperBuilt); err != nil {
			return err
		}
	}
	return nil
}

// buildSkipperLocked constructs fresh skipping metadata for one column
// from its base data, clearing any quarantine. Caller holds e.mu.
func (e *Engine) buildSkipperLocked(name string, kind obs.EventKind) error {
	col, err := e.tbl.Column(name)
	if err != nil {
		return err
	}
	if col.Type() == storage.String {
		col.SealDict()
	}
	switch e.opts.Policy {
	case PolicyNone:
		e.skippers[name] = core.NewNoSkipper(col.Len())
	case PolicyStatic:
		e.skippers[name] = core.NewStaticSkipper(col.Codes(), col.Nulls(), e.opts.StaticZoneSize)
	case PolicyAdaptive:
		e.skippers[name] = adaptive.New(col.Codes(), col.Nulls(), e.opts.Adaptive)
	case PolicyImprint:
		e.skippers[name] = core.NewImprintSkipper(imprint.Build(col.Codes(), col.Nulls(), e.opts.StaticZoneSize))
	default:
		return fmt.Errorf("engine: unknown policy %d", e.opts.Policy)
	}
	delete(e.quarantined, name)
	e.registerSkipper(name, kind)
	return nil
}

// registerSkipper hooks a freshly installed skipper into the
// observability layer: event sink, lifecycle event, and gauges.
func (e *Engine) registerSkipper(name string, kind obs.EventKind) {
	s := e.skippers[name]
	if em, ok := s.(core.EventEmitter); ok {
		em.SetEventSink(e.eventSink(name))
	}
	if le, ok := s.(core.LedgerEmitter); ok {
		le.SetLedgerSink(e.ledgerSink(name))
	}
	md := s.Metadata()
	e.eventSink(name)(obs.Event{Kind: kind, Zones: md.Zones})
	e.ledgerSink(name)(obs.LedgerRecord{
		Kind: kind, Cause: lifecycleCause(kind),
		ZonesAfter: md.Zones, RowHi: s.Rows(),
	})
	e.colMetrics(name).refreshGauges(s)
}

// lifecycleCause maps engine-level lifecycle kinds to ledger causes.
func lifecycleCause(kind obs.EventKind) string {
	switch kind {
	case obs.EventSkipperBuilt:
		return "build"
	case obs.EventSkipperLoad:
		return "snapshot"
	case obs.EventRebuild:
		return "manual"
	default:
		return kind.String()
	}
}

// Skipper returns the skipper for a column, or nil if none is registered.
func (e *Engine) Skipper(col string) core.Skipper { return e.skippers[col] }

// SkipperMetadata reports metadata for every registered skipper, keyed by
// column name.
func (e *Engine) SkipperMetadata() map[string]core.Metadata {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]core.Metadata, len(e.skippers))
	for name, s := range e.skippers {
		out[name] = s.Metadata()
	}
	return out
}

// NumRows returns the table's current row count under the engine mutex —
// safe against concurrent appends (Table().NumRows() is not).
func (e *Engine) NumRows() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tbl.NumRows()
}

// AppendRow appends one row, validating types first so a rejected row
// cannot skew column lengths. Skipper metadata is synchronized lazily at
// the next query, so bulk ingest pays no per-row metadata cost.
func (e *Engine) AppendRow(vals ...storage.Value) error {
	return e.AppendRows([][]storage.Value{vals})
}

// AppendRows appends a batch of rows atomically with respect to queries.
// With a WAL armed (SetWAL) the batch is logged as one columnar record
// before the tail mutates, the in-memory apply happens under the engine
// mutex, and the call then blocks OUTSIDE the mutex until the record is
// durable — so an acknowledged append is always recoverable, and
// concurrent appenders coalesce into shared fsyncs (group commit) instead
// of serializing on the disk.
func (e *Engine) AppendRows(rows [][]storage.Value) error {
	c, err := e.AppendRowsAsync(rows)
	if err != nil {
		return err
	}
	return c.Wait()
}

// AppendRowsAsync is AppendRows without the durability wait: the batch is
// logged and applied, and the returned Commit lets the caller overlap
// further appends with the group commit in flight — the pipelined shape
// sustained ingest needs, since a full commit pipeline is what lets one
// fsync absorb many batches. The caller MUST NOT acknowledge the rows to
// anyone until Wait returns nil; with no WAL armed the zero Commit waits
// instantly.
func (e *Engine) AppendRowsAsync(rows [][]storage.Value) (wal.Commit, error) {
	if len(rows) == 0 {
		return wal.Commit{}, nil
	}
	e.mu.Lock()
	for _, r := range rows {
		if err := e.validateDurableRow(r); err != nil {
			e.mu.Unlock()
			return wal.Commit{}, err
		}
	}
	var commit wal.Commit
	if e.wal != nil {
		rec := &wal.Record{
			Kind:    wal.KindRows,
			Table:   e.tbl.Name(),
			Shard:   uint32(e.opts.Shard),
			BaseRow: uint64(e.tbl.NumRows()),
			Types:   e.schemaTypes(),
			Rows:    rows,
		}
		c, err := e.wal.Append(rec)
		if err != nil {
			e.mu.Unlock()
			return wal.Commit{}, fmt.Errorf("engine: durable append: %w", err)
		}
		commit = c
	}
	base := e.tbl.NumRows()
	for i, r := range rows {
		if err := e.tbl.AppendRow(r...); err != nil {
			// validateDurableRow should make this unreachable; roll the
			// block back so the table never diverges from the log's
			// BaseRow chain (replay will fail this record the same way).
			for ci := 0; ci < e.tbl.NumColumns(); ci++ {
				e.tbl.ColumnAt(ci).Truncate(base)
			}
			e.mu.Unlock()
			return wal.Commit{}, fmt.Errorf("engine: append row %d: %w", i, err)
		}
	}
	faultinject.Crash(faultinject.CrashWALAfterApply)
	e.mu.Unlock()
	return commit, nil
}

// validateDurableRow rejects, before anything is logged or applied,
// every row the table could later refuse: arity or type mismatches, NaN
// floats, and strings absent from a sealed dictionary. Caller holds e.mu.
func (e *Engine) validateDurableRow(vals []storage.Value) error {
	if err := e.tbl.ValidateRow(vals...); err != nil {
		return err
	}
	for i, v := range vals {
		if v.IsNull() {
			continue
		}
		col := e.tbl.ColumnAt(i)
		switch col.Type() {
		case storage.Float64:
			if _, _, err := col.EncodeValue(v); err != nil {
				return fmt.Errorf("column %q: %w", col.Name(), err)
			}
		case storage.String:
			if !col.DictSorted() {
				continue // unsealed dictionary accepts any string
			}
			if _, ok, err := col.EncodeValue(v); err != nil {
				return fmt.Errorf("column %q: %w", col.Name(), err)
			} else if !ok {
				return fmt.Errorf("engine: column %q: string %q not in sealed dictionary", col.Name(), v.Str())
			}
		}
	}
	return nil
}

// schemaTypes returns the table's column types in schema order.
func (e *Engine) schemaTypes() []storage.Type {
	types := make([]storage.Type, e.tbl.NumColumns())
	for i := range types {
		types[i] = e.tbl.ColumnAt(i).Type()
	}
	return types
}

// SetWAL arms (or, with nil, disarms) write-ahead logging on the append
// and update paths. The facade arms engines only after recovery has
// replayed the existing log, so replayed mutations are never re-logged.
func (e *Engine) SetWAL(l *wal.Log) {
	e.mu.Lock()
	e.wal = l
	e.mu.Unlock()
}

// WAL returns the armed log, or nil.
func (e *Engine) WAL() *wal.Log {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.wal
}

// Update overwrites a cell in place and keeps skipping metadata sound by
// widening the enclosing zone's bounds. With a WAL armed the overwrite is
// logged first and the call blocks until it is durable.
func (e *Engine) Update(colName string, row int, v storage.Value) error {
	e.mu.Lock()
	col, err := e.tbl.Column(colName)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	if row < 0 || row >= col.Len() {
		e.mu.Unlock()
		return fmt.Errorf("%w: %d of %d", table.ErrOutOfRange, row, col.Len())
	}
	if v.IsNull() {
		e.mu.Unlock()
		return errors.New("engine: updating a cell to NULL is unsupported (zone null counts would drift)")
	}
	var commit wal.Commit
	if e.wal != nil && updatableType(col.Type()) {
		c, err := e.wal.Append(&wal.Record{
			Kind: wal.KindUpdate, Table: e.tbl.Name(), Shard: uint32(e.opts.Shard),
			Col: colName, Row: uint64(row), Value: v,
		})
		if err != nil {
			e.mu.Unlock()
			return fmt.Errorf("engine: durable update: %w", err)
		}
		commit = c
	}
	if err := e.applyUpdateLocked(col, colName, row, v); err != nil {
		e.mu.Unlock()
		return err
	}
	faultinject.Crash(faultinject.CrashWALAfterApply)
	e.mu.Unlock()
	return commit.Wait()
}

// updatableType reports whether Update supports the column type (the WAL
// only logs updates the apply path can perform).
func updatableType(t storage.Type) bool {
	return t == storage.Int64 || t == storage.Float64
}

// applyUpdateLocked performs the in-memory half of Update: the cell
// overwrite plus the skipper widen. Caller holds e.mu and has validated
// row bounds and non-NULL.
func (e *Engine) applyUpdateLocked(col *storage.Column, colName string, row int, v storage.Value) error {
	wasNull := col.IsNull(row)
	switch col.Type() {
	case storage.Int64:
		if err := col.SetInt(row, v.Int()); err != nil {
			return err
		}
	case storage.Float64:
		if err := col.SetFloat(row, v.Float()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("engine: updates on %s columns are unsupported", col.Type())
	}
	if s, ok := e.skippers[colName]; ok {
		code, _, err := col.EncodeValue(v)
		if err != nil {
			return err
		}
		if row < s.Rows() {
			if perr := func() (err error) {
				defer recoverToError(&err)
				s.Widen(row, code)
				if wasNull {
					s.NoteNonNull(row)
				}
				return nil
			}(); perr != nil {
				e.quarantineLocked(colName, perr)
			} else {
				e.checkSkipperHealth(colName, s)
			}
		}
	}
	return nil
}

// ReplayRecord applies one recovered WAL record, bypassing the log.
// Replay is idempotent over the BaseRow chain: a rows record whose rows
// are already present is skipped, a partially present record appends only
// the missing suffix, and a record that would leave a gap errors out.
func (e *Engine) ReplayRecord(rec *wal.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch rec.Kind {
	case wal.KindRows:
		cur := uint64(e.tbl.NumRows())
		if rec.BaseRow > cur {
			return fmt.Errorf("engine: replay gap on %q: record base row %d, table has %d",
				e.tbl.Name(), rec.BaseRow, cur)
		}
		if rec.BaseRow+uint64(len(rec.Rows)) <= cur {
			return nil // fully present already
		}
		for _, r := range rec.Rows[cur-rec.BaseRow:] {
			if err := e.tbl.AppendRow(r...); err != nil {
				return fmt.Errorf("engine: replay append on %q: %w", e.tbl.Name(), err)
			}
		}
		return nil
	case wal.KindUpdate:
		col, err := e.tbl.Column(rec.Col)
		if err != nil {
			return err
		}
		if rec.Row >= uint64(col.Len()) {
			return fmt.Errorf("engine: replay update on %q.%q: row %d of %d",
				e.tbl.Name(), rec.Col, rec.Row, col.Len())
		}
		return e.applyUpdateLocked(col, rec.Col, int(rec.Row), rec.Value)
	default:
		return fmt.Errorf("engine: replay: unknown record kind %d", rec.Kind)
	}
}

// SaveSkipper serializes a column's learned adaptive zonemap. Only the
// adaptive policy has state worth persisting; other policies error.
func (e *Engine) SaveSkipper(colName string, w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.skippers[colName]
	if !ok {
		return fmt.Errorf("engine: no skipper on column %q", colName)
	}
	z, ok := s.(*adaptive.Zonemap)
	if !ok {
		return fmt.Errorf("engine: skipper on %q is %q, only adaptive zonemaps snapshot", colName, s.Metadata().Kind)
	}
	_, err := z.WriteTo(w)
	return err
}

// LoadSkipper restores a column's adaptive zonemap from a snapshot,
// replacing any registered skipper. The snapshot is validated against the
// column's current physical state (one O(n) pass) so stale metadata can
// never prune unsoundly.
func (e *Engine) LoadSkipper(colName string, r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	col, err := e.tbl.Column(colName)
	if err != nil {
		return err
	}
	z, err := adaptive.Read(r, e.opts.Adaptive)
	if err != nil {
		return err
	}
	if z.Rows() > col.Len() {
		return fmt.Errorf("engine: snapshot covers %d rows, column %q has %d", z.Rows(), colName, col.Len())
	}
	if err := z.CheckInvariants(col.Codes()[:z.Rows()], col.Nulls(), false); err != nil {
		return fmt.Errorf("engine: snapshot does not match column %q: %w", colName, err)
	}
	if col.Type() == storage.String {
		col.SealDict()
	}
	e.skippers[colName] = z
	delete(e.quarantined, colName)
	e.registerSkipper(colName, obs.EventSkipperLoad)
	return nil
}

// syncSkippers brings every skipper up to date with appended rows. Called
// at the start of each query so bulk appends amortize metadata
// maintenance.
func (e *Engine) syncSkippers() {
	for name, s := range e.skippers {
		col, err := e.tbl.Column(name)
		if err != nil {
			continue
		}
		if s.Rows() == col.Len() {
			continue
		}
		if perr := func() (err error) {
			defer recoverToError(&err)
			s.Extend(col.Codes(), col.Nulls())
			return nil
		}(); perr != nil {
			e.quarantineLocked(name, perr)
			continue
		}
		e.checkSkipperHealth(name, s)
	}
}
