package engine

import (
	"encoding/json"
	"testing"

	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// jsonTable is a tiny fixed table (no RNG) so the golden strings below
// are fully deterministic.
func jsonTable(t *testing.T) *Engine {
	t.Helper()
	tb := table.MustNew("j", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "city", Type: storage.String},
	})
	rows := []struct {
		id    storage.Value
		price storage.Value
		city  storage.Value
	}{
		{storage.IntValue(1), storage.FloatValue(9.5), storage.StringValue("oslo")},
		{storage.IntValue(2), storage.NullValue(storage.Float64), storage.StringValue("bergen")},
		{storage.IntValue(3), storage.FloatValue(12.25), storage.NullValue(storage.String)},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r.id, r.price, r.city); err != nil {
			t.Fatal(err)
		}
	}
	return New(tb, Options{}) // no skippers: stats stay deterministic
}

// TestResultMarshalJSONGolden pins the wire encoding of Result: column
// names and types, Go-typed cells, null handling, aggregate values, and
// the stats block. internal/proto.Result decodes this shape — if one of
// these strings needs to change, the protocol changed.
func TestResultMarshalJSONGolden(t *testing.T) {
	e := jsonTable(t)
	cases := []struct {
		name string
		q    Query
		want string
	}{
		{
			name: "projection with nulls",
			q:    Query{Select: []string{"id", "price", "city"}},
			want: `{"count":3,"columns":[{"name":"id","type":"BIGINT"},{"name":"price","type":"DOUBLE"},{"name":"city","type":"VARCHAR"}],"rows":[[1,9.5,"oslo"],[2,null,"bergen"],[3,12.25,null]],"stats":{"rows_scanned":0,"rows_skipped":0,"rows_covered":0,"zones_probed":0,"skippers_used":0}}`,
		},
		{
			name: "empty projection keeps rows array",
			q: Query{Select: []string{"id"},
				Where: expr.Conj{Preds: []expr.Pred{{Col: "id", Op: expr.GT, Args: []storage.Value{storage.IntValue(99)}}}}},
			want: `{"count":0,"columns":[{"name":"id","type":"BIGINT"}],"rows":[],"stats":{"rows_scanned":3,"rows_skipped":0,"rows_covered":0,"zones_probed":0,"skippers_used":0}}`,
		},
		{
			name: "count only",
			q:    Query{Aggs: []Agg{{Kind: CountStar}}},
			want: `{"count":3,"aggs":[3],"stats":{"rows_scanned":0,"rows_skipped":0,"rows_covered":3,"zones_probed":0,"skippers_used":0}}`,
		},
		{
			name: "aggregates over data",
			q:    Query{Aggs: []Agg{{Kind: Sum, Col: "id"}, {Kind: Avg, Col: "id"}, {Kind: Min, Col: "price"}}},
			want: `{"count":3,"aggs":[6,2,9.5],"stats":{"rows_scanned":0,"rows_skipped":0,"rows_covered":3,"zones_probed":0,"skippers_used":0}}`,
		},
		{
			name: "group by carries key and agg types",
			q:    Query{GroupBy: "city", Aggs: []Agg{{Kind: CountStar}}},
			want: `{"count":3,"columns":[{"name":"city","type":"VARCHAR"},{"name":"COUNT(*)","type":"BIGINT"}],"rows":[["bergen",1],["oslo",1],[null,1]],"stats":{"rows_scanned":0,"rows_skipped":0,"rows_covered":3,"zones_probed":0,"skippers_used":0}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := e.Query(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.want {
				t.Errorf("wire encoding drifted\n got: %s\nwant: %s", got, tc.want)
			}
			// The encoding must round-trip as generic JSON (no NaN leaks).
			var v map[string]any
			if err := json.Unmarshal(got, &v); err != nil {
				t.Fatalf("round-trip: %v", err)
			}
		})
	}
}

// TestValueMarshalJSON pins the cell encoding, including the non-finite
// float guard.
func TestValueMarshalJSON(t *testing.T) {
	cases := []struct {
		v    storage.Value
		want string
	}{
		{storage.IntValue(-7), `-7`},
		{storage.IntValue(1 << 60), `1152921504606846976`},
		{storage.FloatValue(2.5), `2.5`},
		{storage.StringValue(`a"b`), `"a\"b"`},
		{storage.NullValue(storage.Int64), `null`},
		{storage.NullValue(storage.String), `null`},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("Value %v -> %s, want %s", tc.v, got, tc.want)
		}
	}
}
