package engine

import (
	"math/rand"
	"testing"

	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// nullTable builds a table whose "b" column has NULLs concentrated in one
// region (so null skipping has something to prune) plus scattered ones.
func nullTable(t testing.TB, n int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	tb := table.MustNew("t", table.Schema{
		{Name: "a", Type: storage.Int64},
		{Name: "b", Type: storage.Int64},
	})
	for i := 0; i < n; i++ {
		b := storage.Value(storage.IntValue(rng.Int63n(1000)))
		switch {
		case i >= n/2 && i < n/2+n/10: // dense NULL region
			b = storage.NullValue(storage.Int64)
		case rng.Intn(200) == 0: // scattered NULLs
			b = storage.NullValue(storage.Int64)
		}
		if err := tb.AppendRow(storage.IntValue(int64(i)), b); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func naiveNullCount(t *testing.T, tb *table.Table, col string) int {
	t.Helper()
	c, err := tb.Column(col)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) {
			n++
		}
	}
	return n
}

func TestIsNullAcrossPolicies(t *testing.T) {
	tb := nullTable(t, 2000)
	want := naiveNullCount(t, tb, "b")
	if want == 0 {
		t.Fatal("test table has no nulls")
	}
	for _, policy := range []Policy{PolicyNone, PolicyStatic, PolicyAdaptive, PolicyImprint} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			Where: expr.And(expr.MustPred("b", expr.IsNull)),
			Aggs:  []Agg{{Kind: CountStar}},
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Count != want {
			t.Fatalf("%v: IS NULL count=%d want %d", policy, res.Count, want)
		}
		// Metadata must have pruned something for skipping policies (most
		// zones are null-free).
		if policy != PolicyNone && res.Stats.RowsSkipped == 0 {
			t.Fatalf("%v: IS NULL pruned nothing: %+v", policy, res.Stats)
		}
	}
}

func TestIsNotNull(t *testing.T) {
	tb := nullTable(t, 2000)
	nulls := naiveNullCount(t, tb, "b")
	for _, policy := range []Policy{PolicyNone, PolicyStatic, PolicyAdaptive, PolicyImprint} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			Where: expr.And(expr.MustPred("b", expr.IsNotNull)),
			Aggs:  []Agg{{Kind: CountStar}},
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Count != 2000-nulls {
			t.Fatalf("%v: IS NOT NULL count=%d want %d", policy, res.Count, 2000-nulls)
		}
	}
}

func TestIsNullConjunctions(t *testing.T) {
	tb := nullTable(t, 2000)
	e := newEngine(t, tb, PolicyAdaptive)

	// b IS NULL AND a in the dense region: count nulls with a-range filter.
	res, err := e.Query(Query{
		Where: expr.And(
			expr.MustPred("b", expr.IsNull),
			intPred("a", expr.Between, 1000, 1099),
		),
		Aggs: []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	colB, _ := tb.Column("b")
	want := 0
	for i := 1000; i <= 1099; i++ {
		if colB.IsNull(i) {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("conj count=%d want %d", res.Count, want)
	}

	// b IS NULL AND b > 5 is unsatisfiable (comparison implies NOT NULL).
	res, err = e.Query(Query{
		Where: expr.And(expr.MustPred("b", expr.IsNull), intPred("b", expr.GT, 5)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil || res.Count != 0 || res.Stats.RowsScanned != 0 {
		t.Fatalf("IS NULL ∧ cmp: count=%d scanned=%d err=%v", res.Count, res.Stats.RowsScanned, err)
	}

	// b IS NULL AND b IS NOT NULL likewise.
	res, err = e.Query(Query{
		Where: expr.And(expr.MustPred("b", expr.IsNull), expr.MustPred("b", expr.IsNotNull)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil || res.Count != 0 {
		t.Fatalf("IS NULL ∧ IS NOT NULL: count=%d err=%v", res.Count, err)
	}

	// IS NOT NULL AND comparison behaves like the comparison alone.
	a, err := e.Query(Query{
		Where: expr.And(expr.MustPred("b", expr.IsNotNull), intPred("b", expr.LT, 500)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(Query{
		Where: expr.And(intPred("b", expr.LT, 500)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil || a.Count != b.Count {
		t.Fatalf("IS NOT NULL ∧ cmp: %d vs %d (err=%v)", a.Count, b.Count, err)
	}
}

func TestIsNullProjection(t *testing.T) {
	tb := nullTable(t, 500)
	e := newEngine(t, tb, PolicyStatic)
	res, err := e.Query(Query{
		Where:  expr.And(expr.MustPred("b", expr.IsNull)),
		Select: []string{"a", "b"},
		Limit:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if !row[1].IsNull() {
			t.Fatalf("projected non-null row: %v", row)
		}
	}
}

func TestIsNullOnNullFreeColumn(t *testing.T) {
	tb := nullTable(t, 500)
	for _, policy := range []Policy{PolicyNone, PolicyAdaptive} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			Where: expr.And(expr.MustPred("a", expr.IsNull)),
			Aggs:  []Agg{{Kind: CountStar}},
		})
		if err != nil || res.Count != 0 {
			t.Fatalf("%v: count=%d err=%v", policy, res.Count, err)
		}
	}
}

func TestIsNullAggregatesOverOtherColumn(t *testing.T) {
	tb := nullTable(t, 1000)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where: expr.And(expr.MustPred("b", expr.IsNull)),
		Aggs:  []Agg{{Kind: Sum, Col: "a"}, {Kind: CountCol, Col: "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	colB, _ := tb.Column("b")
	var wantSum int64
	for i := 0; i < 1000; i++ {
		if colB.IsNull(i) {
			wantSum += int64(i)
		}
	}
	if !res.Aggs[0].Equal(storage.IntValue(wantSum)) {
		t.Fatalf("SUM(a)=%v want %d", res.Aggs[0], wantSum)
	}
	// COUNT(b) over rows where b IS NULL is 0.
	if !res.Aggs[1].Equal(storage.IntValue(0)) {
		t.Fatalf("COUNT(b)=%v want 0", res.Aggs[1])
	}
}
