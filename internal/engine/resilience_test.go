package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"adskip/internal/bitvec"
	"adskip/internal/core"
	"adskip/internal/expr"
	"adskip/internal/faultinject"
	"adskip/internal/obs"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// buildIntTable builds an n-row single-int-column table fast (no RNG, no
// strings) for scan-scale cancellation tests.
func buildIntTable(t testing.TB, n int) *table.Table {
	t.Helper()
	tb := table.MustNew("big", table.Schema{{Name: "v", Type: storage.Int64}})
	col, err := tb.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := col.AppendInt(int64(i % 4096)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func countQuery(col string) Query {
	return Query{
		Where: expr.And(intPred(col, expr.Between, 10, 2000)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
}

func TestQueryContextPreCanceled(t *testing.T) {
	tb := buildTable(t, 500, 3)
	e := newEngine(t, tb, PolicyAdaptive)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryContext(ctx, countQuery("a"))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
}

// TestCancelMidScan4M verifies the tentpole acceptance: an expired context
// stops a 4M-row scan at a cooperative checkpoint instead of running to
// completion. ScanDelay stretches each checkpoint so the full scan would
// take ~60 checkpoints x 2ms; the 10ms deadline must cut it far short.
func TestCancelMidScan4M(t *testing.T) {
	n := 1 << 22
	tb := buildIntTable(t, n)
	e := New(tb, Options{Policy: PolicyNone})

	restore := faultinject.Activate(faultinject.New(7).
		Set(faultinject.ScanDelay, faultinject.Rule{Every: 1, Delay: 2 * time.Millisecond}))
	defer restore()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryContext(ctx, countQuery("v"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
	// 64 checkpoints x 2ms = 128ms uncancelled; generous CI margin still
	// proves it stopped at a checkpoint, not at scan end.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("cancellation took %v, want well under the full-scan time", elapsed)
	}
	// The checkpoint machinery must not have corrupted anything: the same
	// query without a deadline returns the exact count.
	res, err := e.Query(countQuery("v"))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		if v := int64(i % 4096); v >= 10 && v <= 2000 {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
}

// TestCancelCoveredAggregate regresses the covered-window gap: a SUM over
// fully covered zones reads every row even though the count is free, so
// it must still hit checkpoints and honor a mid-scan deadline.
func TestCancelCoveredAggregate(t *testing.T) {
	n := 1 << 21
	tb := buildIntTable(t, n)
	e := New(tb, Options{Policy: PolicyStatic, StaticZoneSize: 4096})
	if err := e.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Activate(faultinject.New(7).
		Set(faultinject.ScanDelay, faultinject.Rule{Every: 1, Delay: 2 * time.Millisecond}))
	defer restore()

	// v >= 0 covers every zone; SUM forces the covered windows to be read.
	q := Query{
		Where: expr.And(intPred("v", expr.GE, 0)),
		Aggs:  []Agg{{Kind: Sum, Col: "v"}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryContext(ctx, q)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("covered-aggregate cancellation took %v", elapsed)
	}

	// Covered aggregate rows also count against the row budget.
	lim := New(tb, Options{Policy: PolicyStatic, StaticZoneSize: 4096,
		Limits: Limits{MaxRowsScanned: 200_000}})
	if err := lim.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	restore2 := faultinject.Activate(faultinject.New(7)) // no delays
	defer restore2()
	if _, err := lim.Query(q); !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v, want ErrBudget for covered aggregate", err)
	}
}

func TestLimitsMaxRowsScanned(t *testing.T) {
	n := 1 << 20
	tb := buildIntTable(t, n)
	e := New(tb, Options{Policy: PolicyNone, Limits: Limits{MaxRowsScanned: 200_000}})
	_, err := e.Query(countQuery("v"))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v, want ErrBudget", err)
	}

	// A query whose scan fits the budget still runs.
	free := New(tb, Options{Policy: PolicyNone, Limits: Limits{MaxRowsScanned: int64(n) + checkpointRows}})
	if _, err := free.Query(countQuery("v")); err != nil {
		t.Fatalf("within-budget query failed: %v", err)
	}
}

func TestLimitsMaxDuration(t *testing.T) {
	tb := buildIntTable(t, 1<<20)
	e := New(tb, Options{Policy: PolicyNone, Limits: Limits{MaxDuration: time.Millisecond}})
	restore := faultinject.Activate(faultinject.New(7).
		Set(faultinject.ScanDelay, faultinject.Rule{Every: 1, Delay: 2 * time.Millisecond}))
	defer restore()
	_, err := e.Query(countQuery("v"))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v, want ErrBudget", err)
	}
}

func TestLimitsMaxResultRows(t *testing.T) {
	tb := buildTable(t, 2000, 5)
	e := New(tb, Options{Policy: PolicyNone, Limits: Limits{MaxResultRows: 50}})
	q := Query{Where: expr.And(intPred("a", expr.GE, 0)), Select: []string{"a", "b"}}
	_, err := e.Query(q)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v, want ErrBudget", err)
	}
	// An explicit LIMIT under the cap stays within budget.
	q.Limit = 50
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("limited query failed: %v", err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("rows=%d want 50", len(res.Rows))
	}
}

func TestAdmissionControl(t *testing.T) {
	tb := buildTable(t, 500, 9)
	adm := NewAdmission(1)
	e := New(tb, Options{Policy: PolicyNone, Admission: adm})

	// Occupy the only slot; a query with a short deadline must give up
	// while waiting for admission, not hang.
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := e.QueryContext(ctx, countQuery("a"))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err=%v, want ErrCanceled while awaiting admission", err)
	}

	adm.release()
	if _, err := e.QueryContext(context.Background(), countQuery("a")); err != nil {
		t.Fatalf("query after release failed: %v", err)
	}
}

// faultySkipper lets tests fail specific skipper entry points.
type faultySkipper struct {
	rows        int
	panicProbe  bool
	panicObs    bool
	badWindows  bool // emit candidate windows beyond the column end
	healthErr   error
	invariantOK bool
}

func (f *faultySkipper) Prune(expr.Ranges) core.PruneResult {
	if f.panicProbe {
		panic("faultySkipper: probe panic")
	}
	if f.badWindows {
		return core.PruneResult{Enabled: true, Zones: []core.CandidateZone{
			{ID: core.NoZoneID, Lo: 0, Hi: f.rows * 4}, // way out of range
		}}
	}
	return core.PruneResult{Enabled: true, Zones: []core.CandidateZone{
		{ID: core.NoZoneID, Lo: 0, Hi: f.rows},
	}}
}

func (f *faultySkipper) PruneNulls() core.PruneResult { return core.PruneResult{Enabled: false} }

func (f *faultySkipper) Observe(core.PruneResult, []core.ZoneObservation) {
	if f.panicObs {
		panic("faultySkipper: observe panic")
	}
}

func (f *faultySkipper) Extend(codes []int64, _ *bitvec.BitVec) { f.rows = len(codes) }
func (f *faultySkipper) Widen(int, int64)                       {}
func (f *faultySkipper) NoteNonNull(int)                        {}
func (f *faultySkipper) Rows() int                              { return f.rows }
func (f *faultySkipper) Metadata() core.Metadata {
	return core.Metadata{Kind: "faulty", Zones: 1, Enabled: true}
}
func (f *faultySkipper) Health() error { return f.healthErr }

// install registers a faulty skipper on column "a" behind the engine's
// back (tests only).
func installFaulty(e *Engine, f *faultySkipper) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.rows = e.tbl.NumRows()
	e.skippers["a"] = f
}

func quarantineEvents(e *Engine) int {
	count := 0
	for _, ev := range e.Events() {
		if ev.Kind == obs.EventQuarantine {
			count++
		}
	}
	return count
}

func naiveCountA(t *testing.T, tb *table.Table, lo, hi int64) int {
	t.Helper()
	col, err := tb.Column("a")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < col.Len(); i++ {
		if col.IsNull(i) {
			continue
		}
		if v := col.Value(i).Int(); v >= lo && v <= hi {
			want++
		}
	}
	return want
}

func TestProbePanicQuarantines(t *testing.T) {
	tb := buildTable(t, 1500, 11)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive()})
	installFaulty(e, &faultySkipper{panicProbe: true})

	res, err := e.Query(countQuery("a"))
	if err != nil {
		t.Fatalf("query should fall back to a full scan, got %v", err)
	}
	if want := naiveCountA(t, tb, 10, 2000); res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
	q := e.Quarantined()
	if _, ok := q["a"]; !ok {
		t.Fatalf("column a not quarantined: %v", q)
	}
	if !strings.Contains(q["a"].Error(), "probe panic") {
		t.Fatalf("quarantine cause %q does not name the panic", q["a"])
	}
	if quarantineEvents(e) == 0 {
		t.Fatal("no quarantine event emitted")
	}
}

func TestObservePanicQuarantines(t *testing.T) {
	tb := buildTable(t, 1500, 12)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive()})
	installFaulty(e, &faultySkipper{panicObs: true})

	res, err := e.Query(countQuery("a"))
	if err != nil {
		t.Fatalf("observe failures must not fail the query: %v", err)
	}
	if want := naiveCountA(t, tb, 10, 2000); res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
	if _, ok := e.Quarantined()["a"]; !ok {
		t.Fatal("column a not quarantined after Observe panic")
	}
}

// TestBadWindowsPanicRetries exercises the full quarantine-and-retry path:
// corrupt metadata emits candidate windows past the column end, the scan
// kernel panics on the out-of-range access, the engine recovers, benches
// the skipper, retries as a full scan, and returns the correct answer.
func TestBadWindowsPanicRetries(t *testing.T) {
	tb := buildTable(t, 1500, 13)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive()})
	installFaulty(e, &faultySkipper{badWindows: true})

	res, err := e.Query(countQuery("a"))
	if err != nil {
		t.Fatalf("query should retry after quarantine, got %v", err)
	}
	if want := naiveCountA(t, tb, 10, 2000); res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
	if _, ok := e.Quarantined()["a"]; !ok {
		t.Fatal("column a not quarantined after kernel panic")
	}
	if got := e.m.retries.Load(); got != 1 {
		t.Fatalf("retries=%d want 1", got)
	}
	if got := e.m.panics.Load(); got == 0 {
		t.Fatal("recovered panic not counted")
	}
}

func TestHealthCheckQuarantines(t *testing.T) {
	tb := buildTable(t, 1500, 14)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive()})
	installFaulty(e, &faultySkipper{healthErr: errors.New("self-reported corruption")})

	res, err := e.Query(countQuery("a"))
	if err != nil {
		t.Fatalf("health failures must degrade to full scan: %v", err)
	}
	if want := naiveCountA(t, tb, 10, 2000); res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
	if cause, ok := e.Quarantined()["a"]; !ok || !strings.Contains(cause.Error(), "self-reported") {
		t.Fatalf("quarantine cause=%v", cause)
	}
}

// TestWorkerPanicInjection injects panics into parallel scan workers: the
// query must recover them in-goroutine (a bare panic would kill the
// process), quarantine the active skipper, retry, and return the exact
// count — all with Parallelism > 1.
func TestWorkerPanicInjection(t *testing.T) {
	n := minRowsPerWorker * 6
	tb := buildIntTable(t, n)
	e := New(tb, Options{Policy: PolicyAdaptive, Parallelism: 4})
	if err := e.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Activate(faultinject.New(3).
		Set(faultinject.WorkerPanic, faultinject.Rule{Every: 1, Limit: 2}))
	defer restore()

	res, err := e.Query(countQuery("v"))
	if err != nil {
		t.Fatalf("query should survive worker panics, got %v", err)
	}
	want := 0
	for i := 0; i < n; i++ {
		if v := int64(i % 4096); v >= 10 && v <= 2000 {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
	if _, ok := e.Quarantined()["v"]; !ok {
		t.Fatal("skipper not quarantined after worker panic")
	}
	if quarantineEvents(e) == 0 {
		t.Fatal("no quarantine event emitted")
	}
}

func TestRebuildSkippingRestores(t *testing.T) {
	tb := buildTable(t, 1500, 15)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive()})
	installFaulty(e, &faultySkipper{panicProbe: true})
	if _, err := e.Query(countQuery("a")); err != nil {
		t.Fatal(err)
	}
	if len(e.Quarantined()) == 0 {
		t.Fatal("setup: nothing quarantined")
	}

	if err := e.RebuildSkipping(); err != nil {
		t.Fatal(err)
	}
	if q := e.Quarantined(); len(q) != 0 {
		t.Fatalf("still quarantined after rebuild: %v", q)
	}
	if e.Skipper("a") == nil {
		t.Fatal("no skipper after rebuild")
	}
	rebuilds := 0
	for _, ev := range e.Events() {
		if ev.Kind == obs.EventRebuild {
			rebuilds++
		}
	}
	if rebuilds == 0 {
		t.Fatal("no rebuild event emitted")
	}
	// The rebuilt skipper serves queries correctly.
	res, err := e.Query(countQuery("a"))
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveCountA(t, tb, 10, 2000); res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
}

// TestInvariantFlipChaos runs the full corruption lifecycle end to end
// against real adaptive metadata: fault injection corrupts the zone
// layout during Observe, the next probe's tiling check detects it and
// declines, the engine quarantines the column, every answer stays
// correct, and RebuildSkipping restores skipping service.
func TestInvariantFlipChaos(t *testing.T) {
	tb := buildTable(t, 4000, 16)
	e := newEngine(t, tb, PolicyAdaptive)

	// Warm up: let the zonemap learn on clean queries first.
	for q := 0; q < 30; q++ {
		lo := int64(q * 100 % 3000)
		if _, err := e.Query(Query{
			Where: expr.And(intPred("a", expr.Between, lo, lo+200)),
			Aggs:  []Agg{{Kind: CountStar}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// One injected invariant flip, then clean again.
	restore := faultinject.Activate(faultinject.New(5).
		Set(faultinject.InvariantFlip, faultinject.Rule{Every: 1, Limit: 1}))
	if _, err := e.Query(countQuery("a")); err != nil { // Observe corrupts here
		restore()
		t.Fatal(err)
	}
	restore()

	// Every subsequent query must stay correct; the first probe detects
	// the broken tiling and quarantines.
	for q := 0; q < 5; q++ {
		lo := int64(100 + q*50)
		res, err := e.Query(Query{
			Where: expr.And(intPred("a", expr.Between, lo, lo+500)),
			Aggs:  []Agg{{Kind: CountStar}},
		})
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		if want := naiveCountA(t, tb, lo, lo+500); res.Count != want {
			t.Fatalf("query %d: count=%d want %d", q, res.Count, want)
		}
	}
	if _, ok := e.Quarantined()["a"]; !ok {
		t.Fatal("corrupted zonemap not quarantined")
	}
	if quarantineEvents(e) == 0 {
		t.Fatal("no quarantine event emitted")
	}

	if err := e.RebuildSkipping(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(countQuery("a"))
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveCountA(t, tb, 10, 2000); res.Count != want {
		t.Fatalf("post-rebuild count=%d want %d", res.Count, want)
	}
}

// TestVerifySkippingDetectsCorruption corrupts real metadata via fault
// injection, then uses the explicit verification pass (not a query) to
// find and bench it.
func TestVerifySkippingDetectsCorruption(t *testing.T) {
	tb := buildTable(t, 4000, 17)
	e := newEngine(t, tb, PolicyAdaptive)
	for q := 0; q < 20; q++ {
		lo := int64(q * 150 % 3000)
		if _, err := e.Query(Query{
			Where: expr.And(intPred("a", expr.Between, lo, lo+200)),
			Aggs:  []Agg{{Kind: CountStar}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.VerifySkipping(); err != nil {
		t.Fatalf("clean metadata failed verification: %v", err)
	}

	restore := faultinject.Activate(faultinject.New(5).
		Set(faultinject.InvariantFlip, faultinject.Rule{Every: 1, Limit: 1}))
	if _, err := e.Query(countQuery("a")); err != nil {
		restore()
		t.Fatal(err)
	}
	restore()

	if err := e.VerifySkipping(); err == nil {
		t.Fatal("verification passed on corrupted metadata")
	}
	if _, ok := e.Quarantined()["a"]; !ok {
		t.Fatal("verification did not quarantine the corrupted column")
	}
}

func TestQctxCheckpointBounds(t *testing.T) {
	e := New(buildIntTable(t, 10), Options{Limits: Limits{MaxRowsScanned: 100_000}})
	qc := e.newQctx(context.Background())
	tk := &ticker{qc: qc}
	rows := 0
	for {
		if err := tk.tick(1000); err != nil {
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("err=%v, want ErrBudget", err)
			}
			break
		}
		rows += 1000
		if rows > 300_000 {
			t.Fatal("budget never enforced")
		}
	}
	// Enforcement lag is bounded by one checkpoint interval.
	if rows > 100_000+checkpointRows {
		t.Fatalf("budget overshoot: %d rows before error", rows)
	}
}
