package engine

import (
	"time"

	"adskip/internal/core"
	"adskip/internal/obs"
	"adskip/internal/stats"
)

// Workload attribution: queries whose context carries a template
// fingerprint (stamped by a SQL frontend via obs.WithTemplate) are
// recorded into the shared stats table and executed under pprof labels,
// so CPU profiles segment by template. Queries without a fingerprint —
// direct engine API callers, the benchmark harness — never reach this
// file's code beyond one nil/empty check.

// bytesPerCode is the storage cost the bytes-scanned estimate charges
// per row examined: every column is dictionary/int64-encoded into 8-byte
// codes, and the kernels read one code per row per filtered column.
const bytesPerCode = 8

// recordWorkload folds one successful query into the stats table.
// Called from finishTrace under e.mu; the stats table has its own lock,
// ordered strictly after e.mu (stats never calls back into the engine).
func (e *Engine) recordWorkload(res *Result, tr *obs.QueryTrace, plans []colPlan) {
	s := stats.Sample{
		Fingerprint:  tr.Fingerprint,
		Table:        tr.Table,
		CacheHit:     tr.PlanCached,
		Latency:      tr.Total,
		RowsRead:     int64(res.Stats.RowsScanned),
		RowsReturned: int64(res.Count),
		RowsSkipped:  int64(res.Stats.RowsSkipped),
		BytesScanned: int64(res.Stats.RowsScanned) * bytesPerCode,
	}
	var zoneIDs map[string][]int
	for i := range plans {
		p := &plans[i]
		if !p.active || len(p.res.Zones) == 0 {
			continue
		}
		var ids []int
		for _, z := range p.res.Zones {
			if z.ID == core.NoZoneID {
				continue
			}
			ids = append(ids, z.ID)
		}
		s.ZonesRead += int64(len(p.res.Zones))
		if len(ids) > 0 {
			if zoneIDs == nil {
				zoneIDs = make(map[string][]int, len(plans))
			}
			zoneIDs[p.name] = ids
		}
	}
	if pruned := int64(res.Stats.ZonesProbed) - s.ZonesRead; pruned > 0 {
		s.ZonesPruned = pruned
	}
	s.ZoneIDs = zoneIDs
	e.stats.Record(s)
}

// recordWorkloadError attributes a failed query (cancellation, budget,
// validation, panic) to its template: only the call, the error, and the
// latency aggregate — there are no execution totals to report.
func (e *Engine) recordWorkloadError(fp string, cached bool, start time.Time) {
	e.stats.Record(stats.Sample{
		Fingerprint: fp,
		Table:       e.tbl.Name(),
		Err:         true,
		CacheHit:    cached,
		Latency:     time.Since(start),
	})
}
