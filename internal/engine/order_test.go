package engine

import (
	"sort"
	"testing"

	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func TestOrderByAscDesc(t *testing.T) {
	tb := buildTable(t, 500, 70)
	for _, policy := range []Policy{PolicyNone, PolicyAdaptive} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			Where:   expr.And(intPred("a", expr.LT, 300)),
			Select:  []string{"b", "a"},
			OrderBy: "b",
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Count != 300 {
			t.Fatalf("count=%d", res.Count)
		}
		// Non-null b values ascend; NULLs trail.
		sawNull := false
		var prev int64
		havePrev := false
		for _, row := range res.Rows {
			if row[0].IsNull() {
				sawNull = true
				continue
			}
			if sawNull {
				t.Fatal("non-null after null")
			}
			if havePrev && row[0].Int() < prev {
				t.Fatalf("not ascending: %d after %d", row[0].Int(), prev)
			}
			prev, havePrev = row[0].Int(), true
		}

		res, err = e.Query(Query{
			Where:     expr.And(intPred("a", expr.LT, 300)),
			Select:    []string{"b"},
			OrderBy:   "b",
			OrderDesc: true,
			Limit:     10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 10 {
			t.Fatalf("limit rows=%d", len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].IsNull() || res.Rows[i][0].IsNull() {
				continue
			}
			if res.Rows[i-1][0].Int() < res.Rows[i][0].Int() {
				t.Fatalf("not descending: %v", res.Rows)
			}
		}
	}
}

func TestOrderByTopKMatchesFullSort(t *testing.T) {
	tb := buildTable(t, 400, 71)
	e := newEngine(t, tb, PolicyStatic)
	full, err := e.Query(Query{Select: []string{"a"}, OrderBy: "f"})
	if err != nil {
		t.Fatal(err)
	}
	top, err := e.Query(Query{Select: []string{"a"}, OrderBy: "f", Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Rows) != 7 {
		t.Fatalf("rows=%d", len(top.Rows))
	}
	for i := range top.Rows {
		if !top.Rows[i][0].Equal(full.Rows[i][0]) {
			t.Fatalf("row %d: %v vs %v", i, top.Rows[i][0], full.Rows[i][0])
		}
	}
	// Full sort matches a reference sort by f (stable on ties).
	colF, _ := tb.Column("f")
	want := make([]int, tb.NumRows())
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(i, j int) bool {
		return colF.Codes()[want[i]] < colF.Codes()[want[j]]
	})
	colA, _ := tb.Column("a")
	for i, r := range want {
		if !full.Rows[i][0].Equal(colA.Value(r)) {
			t.Fatalf("full sort row %d wrong", i)
		}
	}
}

func TestOrderByStringColumn(t *testing.T) {
	tb := buildTable(t, 300, 72)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{Select: []string{"s"}, OrderBy: "s", Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Str() > res.Rows[i][0].Str() {
			t.Fatalf("strings not sorted: %v", res.Rows)
		}
	}
}

func TestOrderByErrors(t *testing.T) {
	tb := buildTable(t, 50, 73)
	e := newEngine(t, tb, PolicyNone)
	if _, err := e.Query(Query{Select: []string{"a"}, OrderBy: "missing"}); err == nil {
		t.Fatal("missing order column accepted")
	}
	if _, err := e.Query(Query{OrderBy: "a"}); err == nil {
		t.Fatal("ORDER BY without projection accepted")
	}
	if _, err := e.Query(Query{GroupBy: "s", Select: []string{"s"}, OrderBy: "a"}); err == nil {
		t.Fatal("ORDER BY with GROUP BY accepted")
	}
	// Aggregates combine with ORDER BY projections... they do not (SQL
	// would require GROUP BY); the engine computes them over the full
	// match set, which is still well-defined. Just ensure no panic.
	if _, err := e.Query(Query{Select: []string{"a"}, OrderBy: "a", Aggs: []Agg{{Kind: CountStar}}}); err != nil {
		t.Fatalf("agg + order: %v", err)
	}
}

func TestOrderBySQLRoundTrip(t *testing.T) {
	tb := buildTable(t, 100, 74)
	e := newEngine(t, tb, PolicyAdaptive)
	_ = e
	res, err := e.Query(Query{
		Where:   expr.And(expr.MustPred("s", expr.EQ, storage.StringValue("cat"))),
		Select:  []string{"a"},
		OrderBy: "a", OrderDesc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Int() < res.Rows[i][0].Int() {
			t.Fatal("not descending")
		}
	}
}

func TestOrderByUnsealedStringDict(t *testing.T) {
	// Without EnableSkipping the dictionary stays insertion-ordered;
	// ordering must still be by string value.
	tb := table.MustNew("t", table.Schema{{Name: "s", Type: storage.String}})
	for _, w := range []string{"pear", "apple", "zebra", "mango"} {
		if err := tb.AppendRow(storage.StringValue(w)); err != nil {
			t.Fatal(err)
		}
	}
	e := New(tb, Options{Policy: PolicyNone})
	res, err := e.Query(Query{Select: []string{"s"}, OrderBy: "s"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"apple", "mango", "pear", "zebra"}
	for i, w := range want {
		if res.Rows[i][0].Str() != w {
			t.Fatalf("rows=%v", res.Rows)
		}
	}
}

func TestGroupByUnsealedStringDict(t *testing.T) {
	tb := table.MustNew("t", table.Schema{{Name: "s", Type: storage.String}})
	for _, w := range []string{"pear", "apple", "pear", "mango"} {
		if err := tb.AppendRow(storage.StringValue(w)); err != nil {
			t.Fatal(err)
		}
	}
	e := New(tb, Options{Policy: PolicyNone})
	res, err := e.Query(Query{GroupBy: "s", Aggs: []Agg{{Kind: CountStar}}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"apple", "mango", "pear"}
	for i, w := range want {
		if res.Rows[i][0].Str() != w {
			t.Fatalf("rows=%v", res.Rows)
		}
	}
}
