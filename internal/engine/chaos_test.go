package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"adskip/internal/expr"
	"adskip/internal/faultinject"
)

// TestChaosQueryStream drives a mixed query stream through an adaptive
// engine while every fault point fires probabilistically: worker panics,
// invariant flips in Observe, and injected scan delays. Every result is
// checked against a no-skipping reference engine on the same table. The
// process must not crash and no query may return a wrong answer — faults
// may only cost performance (quarantine → full scan) or, for the delay
// point, an ErrCanceled under a deadline.
func TestChaosQueryStream(t *testing.T) {
	tb := buildTable(t, 6000, 21)
	chaotic := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive(), Parallelism: 4})
	if err := chaotic.EnableSkipping("a", "b"); err != nil {
		t.Fatal(err)
	}
	reference := New(tb, Options{Policy: PolicyNone})

	restore := faultinject.Activate(faultinject.New(99).
		Set(faultinject.WorkerPanic, faultinject.Rule{Prob: 0.02}).
		Set(faultinject.InvariantFlip, faultinject.Rule{Prob: 0.05}).
		Set(faultinject.ScanDelay, faultinject.Rule{Prob: 0.01, Delay: 100 * time.Microsecond}))
	defer restore()

	rng := rand.New(rand.NewSource(77))
	rebuilds := 0
	for q := 0; q < 300; q++ {
		col := "a"
		if rng.Intn(2) == 1 {
			col = "b"
		}
		lo := rng.Int63n(900)
		query := Query{
			Where: expr.And(intPred(col, expr.Between, lo, lo+rng.Int63n(300))),
			Aggs:  []Agg{{Kind: CountStar}},
		}
		got, err := chaotic.Query(query)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		want, err := reference.Query(query)
		if err != nil {
			t.Fatalf("query %d reference: %v", q, err)
		}
		if got.Count != want.Count {
			t.Fatalf("query %d (%s in [%d,..]): count=%d want %d", q, col, lo, got.Count, want.Count)
		}
		// Periodically repair quarantined columns so the stream keeps
		// exercising the skipping path, not just full-scan fallback.
		if q%60 == 59 && len(chaotic.Quarantined()) > 0 {
			if err := chaotic.RebuildSkipping(); err != nil {
				t.Fatalf("query %d rebuild: %v", q, err)
			}
			rebuilds++
		}
	}
	t.Logf("chaos stream done: %d quarantine events, %d rebuild rounds, %d retries, %d recovered panics",
		quarantineEvents(chaotic), rebuilds, chaotic.m.retries.Load(), chaotic.m.panics.Load())
}

// TestChaosWithDeadlines mixes injected delays with tight deadlines:
// queries either succeed with the right answer or fail with ErrCanceled /
// ErrBudget — never a wrong answer, never a crash.
func TestChaosWithDeadlines(t *testing.T) {
	tb := buildTable(t, 6000, 22)
	e := New(tb, Options{
		Policy: PolicyAdaptive, Adaptive: smallAdaptive(), Parallelism: 2,
		Limits: Limits{MaxDuration: 50 * time.Millisecond},
	})
	if err := e.EnableSkipping("a"); err != nil {
		t.Fatal(err)
	}
	reference := New(tb, Options{Policy: PolicyNone})

	restore := faultinject.Activate(faultinject.New(4).
		Set(faultinject.ScanDelay, faultinject.Rule{Prob: 0.3, Delay: 300 * time.Microsecond}).
		Set(faultinject.WorkerPanic, faultinject.Rule{Prob: 0.01}))
	defer restore()

	rng := rand.New(rand.NewSource(8))
	ok, cut := 0, 0
	for q := 0; q < 200; q++ {
		lo := rng.Int63n(900)
		query := Query{
			Where: expr.And(intPred("a", expr.Between, lo, lo+200)),
			Aggs:  []Agg{{Kind: CountStar}},
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3000))*time.Microsecond)
		got, err := e.QueryContext(ctx, query)
		cancel()
		switch {
		case err == nil:
			want, rerr := reference.Query(query)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if got.Count != want.Count {
				t.Fatalf("query %d: count=%d want %d", q, got.Count, want.Count)
			}
			ok++
		case errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudget):
			cut++
		default:
			t.Fatalf("query %d: unexpected error %v", q, err)
		}
	}
	t.Logf("deadline chaos: %d completed, %d cut off", ok, cut)
}
