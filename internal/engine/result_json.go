package engine

import (
	"encoding/json"

	"adskip/internal/storage"
)

// Wire encoding of a Result. The JSON shape below is a stable contract:
// the network protocol (internal/proto), the client library, and the
// telemetry endpoints all consume it, and internal/proto.Result mirrors
// it field for field on the decode side. Change it only with a matching
// golden-test update.
//
//	{
//	  "count": 2,
//	  "columns": [{"name":"v","type":"BIGINT"}],   // projections only
//	  "rows": [[1],[null]],                         // projections only
//	  "aggs": [42, 1.5],                            // aggregate queries only
//	  "stats": {"rows_scanned":...,"rows_skipped":...,...}
//	}
//
// Cells use each value's natural JSON form (see storage.Value.MarshalJSON):
// NULL is null, BIGINT an integer, DOUBLE a number, VARCHAR a string.

// WireColumn is one projected column of the wire encoding: its name and
// SQL-ish type name (BIGINT, DOUBLE, VARCHAR).
type WireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// wireResult is the marshaling view of a Result.
type wireResult struct {
	Count   int          `json:"count"`
	Columns []WireColumn `json:"columns,omitempty"`
	// Rows is a pointer so a projection with zero matches still encodes
	// as "rows": [] (omitempty would swallow the empty slice), while
	// count/aggregate results omit the key entirely.
	Rows  *[][]storage.Value `json:"rows,omitempty"`
	Aggs  []storage.Value    `json:"aggs,omitempty"`
	Stats ExecStats          `json:"stats"`
}

// WireColumns pairs the result's column names with their type names. When
// Types was not populated (hand-built Results), types fall back to the
// first row's cell types; an empty projection with no type information
// reports "".
func (r *Result) WireColumns() []WireColumn {
	if len(r.Columns) == 0 {
		return nil
	}
	out := make([]WireColumn, len(r.Columns))
	for i, name := range r.Columns {
		out[i].Name = name
		switch {
		case i < len(r.Types):
			out[i].Type = r.Types[i].String()
		case len(r.Rows) > 0 && i < len(r.Rows[0]):
			out[i].Type = r.Rows[0][i].Type().String()
		}
	}
	return out
}

// MarshalJSON renders the result in the stable wire shape documented
// above. The execution trace is deliberately excluded: it is a local
// observability artifact (span pointers, monotonic clocks), not part of
// the query's answer.
func (r *Result) MarshalJSON() ([]byte, error) {
	w := wireResult{
		Count:   r.Count,
		Columns: r.WireColumns(),
		Aggs:    r.Aggs,
		Stats:   r.Stats,
	}
	if len(r.Columns) > 0 {
		// Projections always carry a rows array, even when empty, so
		// clients can distinguish "no matches" from "not a projection".
		rows := r.Rows
		if rows == nil {
			rows = [][]storage.Value{}
		}
		w.Rows = &rows
	}
	return json.Marshal(w)
}
