package engine

import (
	"fmt"

	"adskip/internal/storage"
)

// AggKind is an aggregate function.
type AggKind uint8

// Supported aggregates.
const (
	CountStar AggKind = iota // COUNT(*)
	CountCol                 // COUNT(col) — non-null rows
	Sum
	Min
	Max
	Avg
)

// String returns the SQL spelling.
func (k AggKind) String() string {
	switch k {
	case CountStar, CountCol:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// Agg is one aggregate in a query's select list.
type Agg struct {
	Kind AggKind
	Col  string // empty for CountStar
}

// String renders the aggregate in SQL syntax.
func (a Agg) String() string {
	if a.Kind == CountStar {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, a.Col)
}

// aggAcc accumulates one aggregate over qualifying rows.
type aggAcc struct {
	kind AggKind
	col  *storage.Column // nil for CountStar

	rows int64 // qualifying rows seen (CountStar)
	n    int64 // non-null rows of col among qualifying rows
	sumI int64
	sumF float64
	minC int64 // running bounds as codes
	maxC int64
	seen bool
}

func newAggAcc(kind AggKind, col *storage.Column) *aggAcc {
	return &aggAcc{kind: kind, col: col}
}

// addRow folds in one qualifying row.
func (a *aggAcc) addRow(row int) {
	a.rows++
	if a.col == nil {
		return
	}
	if a.col.IsNull(row) {
		return
	}
	a.n++
	c := a.col.Codes()[row]
	switch a.col.Type() {
	case storage.Int64:
		a.sumI += c
	case storage.Float64:
		a.sumF += storage.DecodeFloat64(c)
	}
	if !a.seen {
		a.minC, a.maxC = c, c
		a.seen = true
	} else {
		if c < a.minC {
			a.minC = c
		}
		if c > a.maxC {
			a.maxC = c
		}
	}
}

// addWindow folds in a window of rows known to all qualify (a covered
// candidate). CountStar needs no data read; other aggregates read the
// window.
func (a *aggAcc) addWindow(lo, hi int) {
	a.rows += int64(hi - lo)
	if a.col == nil {
		return
	}
	if a.kind == CountCol && !a.col.HasNulls() {
		a.n += int64(hi - lo)
		return
	}
	codes := a.col.Codes()
	nulls := a.col.Nulls()
	for i := lo; i < hi; i++ {
		if nulls != nil && nulls.Get(i) {
			continue
		}
		a.n++
		c := codes[i]
		switch a.col.Type() {
		case storage.Int64:
			a.sumI += c
		case storage.Float64:
			a.sumF += storage.DecodeFloat64(c)
		}
		if !a.seen {
			a.minC, a.maxC = c, c
			a.seen = true
		} else {
			if c < a.minC {
				a.minC = c
			}
			if c > a.maxC {
				a.maxC = c
			}
		}
	}
}

// result materializes the aggregate value. Empty inputs yield NULL for
// SUM/MIN/MAX/AVG and 0 for COUNT, following SQL.
func (a *aggAcc) result() storage.Value {
	switch a.kind {
	case CountStar:
		return storage.IntValue(a.rows)
	case CountCol:
		return storage.IntValue(a.n)
	}
	if a.n == 0 {
		t := storage.Int64
		if a.col != nil {
			t = a.col.Type()
		}
		return storage.NullValue(t)
	}
	switch a.kind {
	case Sum:
		if a.col.Type() == storage.Float64 {
			return storage.FloatValue(a.sumF)
		}
		return storage.IntValue(a.sumI)
	case Avg:
		if a.col.Type() == storage.Float64 {
			return storage.FloatValue(a.sumF / float64(a.n))
		}
		return storage.FloatValue(float64(a.sumI) / float64(a.n))
	case Min:
		return a.codeValue(a.minC)
	case Max:
		return a.codeValue(a.maxC)
	}
	return storage.NullValue(storage.Int64)
}

// codeValue decodes a running code bound back to a dynamic value.
func (a *aggAcc) codeValue(c int64) storage.Value {
	switch a.col.Type() {
	case storage.Int64:
		return storage.IntValue(c)
	case storage.Float64:
		return storage.FloatValue(storage.DecodeFloat64(c))
	case storage.String:
		return storage.StringValue(a.col.Dict().Value(c))
	}
	return storage.NullValue(a.col.Type())
}

// validateAgg checks an aggregate against the table schema.
func (e *Engine) validateAgg(a Agg) (*storage.Column, error) {
	if a.Kind == CountStar {
		if a.Col != "" {
			return nil, fmt.Errorf("%w: COUNT(*) with column %q", ErrUnsupportedAgg, a.Col)
		}
		return nil, nil
	}
	col, err := e.tbl.Column(a.Col)
	if err != nil {
		return nil, err
	}
	switch a.Kind {
	case CountCol, Min, Max:
		return col, nil
	case Sum, Avg:
		if col.Type() == storage.String {
			return nil, fmt.Errorf("%w: %s over string column %q", ErrUnsupportedAgg, a.Kind, a.Col)
		}
		return col, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnsupportedAgg, a.Kind)
}
