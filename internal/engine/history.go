package engine

import "adskip/internal/obs"

// History support: the engine contributes its cumulative totals and
// per-column skipping state to an adaptation-timeline sample. Everything
// read here is a resolved atomic handle — no registry lookups — and the
// only lock taken is colMu (never e.mu), so sampling proceeds even while
// a long query holds the engine mutex.

// FillHistory accumulates this engine's totals into s and appends one
// HistoryColumn per column with resolved metric handles. Counters are
// added (+=) so samples aggregate naturally across the engines of a
// catalog; SkipRatio and AdaptEvents are left for the caller, which sees
// the catalog-wide totals (ratios do not sum).
func (e *Engine) FillHistory(s *obs.HistorySample) {
	s.Queries += e.m.queries.Load()
	s.RowsScanned += e.m.rowsScanned.Load()
	s.RowsSkipped += e.m.rowsSkipped.Load()
	s.RowsCovered += e.m.rowsCovered.Load()
	s.SlowQueries += e.m.slowQueries.Load()
	s.Errors += e.m.canceled.Load() + e.m.overBudget.Load() + e.m.panics.Load()

	table := e.tbl.Name()
	e.colMu.Lock()
	defer e.colMu.Unlock()
	for name, cm := range e.colM {
		skipped := cm.rowsSkipped.Load()
		cand := cm.candidateRows.Load()
		ratio := 0.0
		if skipped+cand > 0 {
			ratio = float64(skipped) / float64(skipped+cand)
		}
		s.Columns = append(s.Columns, obs.HistoryColumn{
			Table:     table,
			Shard:     e.opts.Shard,
			Column:    name,
			SkipRatio: ratio,
			Zones:     cm.zones.Load(),
			Enabled:   cm.enabled.Load() != 0,
		})
	}
}

// LatencyBounds returns the engine latency histogram's bucket bounds
// (shared across all engines: obs.LatencyBuckets).
func (e *Engine) LatencyBounds() []float64 { return e.m.latency.Bounds() }

// AccumulateLatency adds the engine's latency bucket counts into dst
// (len(LatencyBounds())+1 entries), allocation-free, so a caller can
// merge latency distributions across tables and estimate quantiles with
// obs.QuantileFromBuckets.
func (e *Engine) AccumulateLatency(dst []int64) { e.m.latency.AccumulateBuckets(dst) }
