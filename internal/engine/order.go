package engine

import (
	"sort"

	"adskip/internal/bitvec"
	"adskip/internal/storage"
)

// execOrdered handles ORDER BY projections: it gathers every qualifying
// row id (no early exit — ordering needs the full match set), sorts ids by
// the order column's codes (code order equals value order; NULLs last),
// truncates to the limit, then materializes. Aggregates, if present, fold
// over the full match set before truncation.
func (e *Engine) execOrdered(qc *qctx, plans []colPlan, res *Result, accs []*aggAcc, projCols []*storage.Column, orderCol *storage.Column, desc bool, limit, n int) error {
	segs := []seg{{lo: 0, hi: n}}
	for i := range plans {
		segs = intersectPlan(segs, &plans[i], uint64(1)<<uint(i), n)
	}

	tk := &ticker{qc: qc}
	var rows []uint32
	sel := bitvec.NewSelVec(1024)
	for _, s := range segs {
		if err := qc.check(0); err != nil {
			return err
		}
		if s.needEval == 0 {
			// Covered gather still materializes row ids (and the rows are
			// read again for sort + projection), so chunk and charge it.
			for lo := s.lo; lo < s.hi; {
				end := lo + checkpointRows
				if end > s.hi {
					end = s.hi
				}
				for r := lo; r < end; r++ {
					rows = append(rows, uint32(r))
				}
				if err := tk.tick(end - lo); err != nil {
					return err
				}
				if err := qc.checkResult(len(rows)); err != nil {
					return err
				}
				lo = end
			}
			continue
		}
		sel.Reset()
		first := true
		for i := range plans {
			if s.needEval&(uint64(1)<<uint(i)) == 0 {
				continue
			}
			p := &plans[i]
			if first {
				if err := filterSegChunked(tk, p, s, sel); err != nil {
					return err
				}
				res.Stats.RowsScanned += s.hi - s.lo
				first = false
				continue
			}
			res.Stats.RowsScanned += sel.Len()
			if err := tk.tick(sel.Len()); err != nil {
				return err
			}
			if refineSel(sel, p) == 0 {
				break
			}
		}
		rows = append(rows, sel.Rows()...)
		if err := qc.checkResult(len(rows)); err != nil {
			return err
		}
	}

	for i, r := range rows {
		if i%checkpointRows == checkpointRows-1 {
			if err := qc.check(0); err != nil {
				return err
			}
		}
		for _, a := range accs {
			a.addRow(int(r))
		}
	}

	codes := orderCol.Codes()
	isNull := func(r uint32) bool { return orderCol.IsNull(int(r)) }
	// Code order equals value order except on unsealed string dictionaries,
	// whose codes are insertion-ordered; compare their values directly.
	less := func(ri, rj uint32) bool { return codes[ri] < codes[rj] }
	if orderCol.Type() == storage.String && !orderCol.DictSorted() {
		d := orderCol.Dict()
		less = func(ri, rj uint32) bool { return d.Value(codes[ri]) < d.Value(codes[rj]) }
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ri, rj := rows[i], rows[j]
		ni, nj := isNull(ri), isNull(rj)
		if ni || nj {
			return !ni && nj // NULLs sort last regardless of direction
		}
		if desc {
			return less(rj, ri)
		}
		return less(ri, rj)
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	for i, r := range rows {
		if i%checkpointRows == checkpointRows-1 {
			if err := qc.check(0); err != nil {
				return err
			}
		}
		vals := make([]storage.Value, len(projCols))
		for ci, col := range projCols {
			vals[ci] = col.Value(int(r))
		}
		res.Rows = append(res.Rows, vals)
	}
	res.Count = len(res.Rows)
	e.feedbackGeneral(plans, segs)
	return nil
}
