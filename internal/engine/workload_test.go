package engine

import (
	"context"
	"testing"

	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/stats"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func workloadEngine(tb testing.TB, n int64, opts Options) *Engine {
	tb.Helper()
	t := table.MustNew("t", table.Schema{{Name: "v", Type: storage.Int64}})
	col, _ := t.Column("v")
	for i := int64(0); i < n; i++ {
		col.AppendInt(i)
	}
	e := New(t, opts)
	if err := e.EnableSkipping("v"); err != nil {
		tb.Fatal(err)
	}
	return e
}

func rangeQuery(lo, hi int64) Query {
	return Query{
		Where: expr.And(expr.MustPred("v", expr.Between,
			storage.IntValue(lo), storage.IntValue(hi))),
		Aggs: []Agg{{Kind: CountStar}},
	}
}

// TestWorkloadAttribution: a query whose context carries a fingerprint
// is recorded against that template — latency, row accounting, zone
// reads vs prunes, and (under the adaptive policy, whose zones have
// feedback identities) the zone-touch sketch.
func TestWorkloadAttribution(t *testing.T) {
	st := stats.New(stats.Options{})
	e := workloadEngine(t, 4096, Options{Policy: PolicyAdaptive, Stats: st})

	// A partial-zone range: the matching zone cannot be covered, so rows
	// really scan (COUNT over a fully covered zone would short-circuit).
	ctx := obs.WithTemplate(context.Background(), "SELECT COUNT(*) FROM t WHERE v BETWEEN ? AND ?")
	res, err := e.QueryContext(ctx, rangeQuery(10, 300))
	if err != nil || res.Count != 291 {
		t.Fatalf("count=%d err=%v", res.Count, err)
	}
	ts, ok := st.Template("SELECT COUNT(*) FROM t WHERE v BETWEEN ? AND ?")
	if !ok || ts.Calls != 1 {
		t.Fatalf("template not recorded: ok=%v %+v", ok, ts)
	}
	if ts.ZonesRead == 0 {
		t.Fatalf("zone accounting: %+v", ts)
	}
	if ts.RowsRead == 0 || ts.BytesScanned != ts.RowsRead*bytesPerCode {
		t.Fatalf("row accounting: %+v", ts)
	}
	if len(ts.ZoneTouch["v"]) == 0 {
		t.Fatalf("no zone-touch sketch: %+v", ts.ZoneTouch)
	}
	if ts.Fingerprint != res.Trace.Fingerprint {
		t.Fatalf("trace fingerprint %q != template %q", res.Trace.Fingerprint, ts.Fingerprint)
	}

	// Without a fingerprint on the context nothing is recorded.
	if _, err := e.QueryContext(context.Background(), rangeQuery(10, 300)); err != nil {
		t.Fatal(err)
	}
	if snap := st.Snapshot("", 0); snap.Recorded != 1 {
		t.Fatalf("unattributed query was recorded: %+v", snap)
	}
}

// TestWorkloadErrorAttribution: failed executions count as errors on the
// template without polluting row/zone totals.
func TestWorkloadErrorAttribution(t *testing.T) {
	st := stats.New(stats.Options{})
	e := workloadEngine(t, 1024, Options{Policy: PolicyStatic, StaticZoneSize: 256, Stats: st})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctx = obs.WithTemplate(ctx, "SELECT COUNT(*) FROM t WHERE v < ?")
	if _, err := e.QueryContext(ctx, rangeQuery(0, 100)); err == nil {
		t.Fatal("want error from canceled context")
	}
	ts, ok := st.Template("SELECT COUNT(*) FROM t WHERE v < ?")
	if !ok || ts.Errors != 1 || ts.Calls != 1 {
		t.Fatalf("error attribution: ok=%v %+v", ok, ts)
	}
	if ts.RowsRead != 0 || ts.ZonesRead != 0 {
		t.Fatalf("error sample polluted scan totals: %+v", ts)
	}
}

// TestWorkloadCacheHitAttribution: the plan-cached context mark becomes
// the template's cache-hit counter.
func TestWorkloadCacheHitAttribution(t *testing.T) {
	st := stats.New(stats.Options{})
	e := workloadEngine(t, 1024, Options{Policy: PolicyStatic, StaticZoneSize: 256, Stats: st})

	fp := "SELECT COUNT(*) FROM t WHERE v < ?"
	ctx := obs.WithTemplate(context.Background(), fp)
	if _, err := e.QueryContext(ctx, rangeQuery(0, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.QueryContext(obs.WithPlanCached(ctx), rangeQuery(0, 200)); err != nil {
		t.Fatal(err)
	}
	ts, _ := st.Template(fp)
	if ts.Calls != 2 || ts.CacheHits != 1 {
		t.Fatalf("cache hits = %d of %d calls, want 1 of 2", ts.CacheHits, ts.Calls)
	}
}

// BenchmarkQueryAttribution measures the full hot-path cost of workload
// analytics: the same engine query unattributed (stats off), with a
// stats table but no fingerprint (the one-nil-check bench path), and
// fully attributed (pprof labels + Record). The attributed/off delta is
// the documented overhead — it must stay under 1% of query latency.
func BenchmarkQueryAttribution(b *testing.B) {
	const n = 1 << 18
	q := rangeQuery(0, n/16)
	run := func(b *testing.B, e *Engine, ctx context.Context) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.QueryContext(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		e := workloadEngine(b, n, Options{Policy: PolicyStatic, StaticZoneSize: 4096})
		run(b, e, context.Background())
	})
	b.Run("enabled-unattributed", func(b *testing.B) {
		e := workloadEngine(b, n, Options{Policy: PolicyStatic, StaticZoneSize: 4096, Stats: stats.New(stats.Options{})})
		run(b, e, context.Background())
	})
	b.Run("attributed", func(b *testing.B) {
		e := workloadEngine(b, n, Options{Policy: PolicyStatic, StaticZoneSize: 4096, Stats: stats.New(stats.Options{})})
		ctx := obs.WithTemplate(context.Background(), "SELECT COUNT(*) FROM t WHERE v BETWEEN ? AND ?")
		run(b, e, ctx)
	})
}
