package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func testSchema() table.Schema {
	return table.Schema{
		{Name: "a", Type: storage.Int64},
		{Name: "b", Type: storage.Int64},
		{Name: "f", Type: storage.Float64},
		{Name: "s", Type: storage.String},
	}
}

// buildTable creates a deterministic 4-column table with some nulls.
func buildTable(t testing.TB, n int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb := table.MustNew("t", testSchema())
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	for i := 0; i < n; i++ {
		a := storage.IntValue(int64(i)) // sorted
		b := storage.Value(storage.IntValue(rng.Int63n(1000)))
		if rng.Intn(20) == 0 {
			b = storage.NullValue(storage.Int64)
		}
		f := storage.FloatValue(rng.NormFloat64() * 50)
		s := storage.StringValue(words[rng.Intn(len(words))])
		if err := tb.AppendRow(a, b, f, s); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func smallAdaptive() adaptive.Config {
	return adaptive.Config{InitialZoneRows: 64, MinZoneRows: 8, SplitParts: 4, Window: 16, MergeSweepEvery: 4}
}

func newEngine(t testing.TB, tb *table.Table, policy Policy) *Engine {
	t.Helper()
	e := New(tb, Options{Policy: policy, StaticZoneSize: 64, Adaptive: smallAdaptive()})
	if err := e.EnableSkipping(); err != nil {
		t.Fatal(err)
	}
	return e
}

func intPred(col string, op expr.Op, vals ...int64) expr.Pred {
	args := make([]storage.Value, len(vals))
	for i, v := range vals {
		args[i] = storage.IntValue(v)
	}
	return expr.MustPred(col, op, args...)
}

func TestCountMatchesAcrossPolicies(t *testing.T) {
	tb := buildTable(t, 1000, 1)
	engines := map[string]*Engine{
		"none":     newEngine(t, tb, PolicyNone),
		"static":   newEngine(t, tb, PolicyStatic),
		"adaptive": newEngine(t, tb, PolicyAdaptive),
		"imprint":  newEngine(t, tb, PolicyImprint),
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 150; q++ {
		lo := rng.Int63n(1100) - 50
		where := expr.And(intPred("a", expr.Between, lo, lo+rng.Int63n(300)))
		var want *Result
		for name, e := range engines {
			got, err := e.Query(Query{Where: where, Aggs: []Agg{{Kind: CountStar}}})
			if err != nil {
				t.Fatalf("%s q%d: %v", name, q, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Count != want.Count {
				t.Fatalf("q%d policy %s: count %d, baseline %d", q, name, got.Count, want.Count)
			}
			if !got.Aggs[0].Equal(want.Aggs[0]) {
				t.Fatalf("q%d policy %s: agg %v vs %v", q, name, got.Aggs[0], want.Aggs[0])
			}
		}
	}
	// Adaptive should have skipped rows on this sorted column by now.
	meta := engines["adaptive"].SkipperMetadata()["a"]
	if meta.Kind != "adaptive" {
		t.Fatalf("meta=%+v", meta)
	}
}

func TestSkippingActuallySkips(t *testing.T) {
	tb := buildTable(t, 1000, 3)
	e := newEngine(t, tb, PolicyStatic)
	res, err := e.Query(Query{
		Where: expr.And(intPred("a", expr.Between, 100, 199)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 100 {
		t.Fatalf("count=%d", res.Count)
	}
	if res.Stats.RowsSkipped == 0 || res.Stats.ZonesProbed == 0 {
		t.Fatalf("no skipping: %+v", res.Stats)
	}
	if res.Stats.RowsScanned+res.Stats.RowsSkipped+res.Stats.RowsCovered != 1000 {
		t.Fatalf("rows don't add up: %+v", res.Stats)
	}
}

func TestAggregates(t *testing.T) {
	tb := table.MustNew("t", testSchema())
	rows := []struct {
		a int64
		b interface{} // int64 or nil
		f float64
		s string
	}{
		{1, int64(10), 1.5, "x"},
		{2, nil, 2.5, "y"},
		{3, int64(30), 3.5, "z"},
		{4, int64(20), -1.0, "x"},
		{5, int64(50), 0.0, "a"},
	}
	for _, r := range rows {
		b := storage.NullValue(storage.Int64)
		if r.b != nil {
			b = storage.IntValue(r.b.(int64))
		}
		if err := tb.AppendRow(storage.IntValue(r.a), b, storage.FloatValue(r.f), storage.StringValue(r.s)); err != nil {
			t.Fatal(err)
		}
	}
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where: expr.And(intPred("a", expr.GE, 2)),
		Aggs: []Agg{
			{Kind: CountStar},
			{Kind: CountCol, Col: "b"},
			{Kind: Sum, Col: "b"},
			{Kind: Avg, Col: "b"},
			{Kind: Min, Col: "f"},
			{Kind: Max, Col: "f"},
			{Kind: Min, Col: "s"},
			{Kind: Sum, Col: "f"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []storage.Value{
		storage.IntValue(4),                 // COUNT(*)
		storage.IntValue(3),                 // COUNT(b): null excluded
		storage.IntValue(100),               // SUM(b)=30+20+50
		storage.FloatValue(100.0 / 3.0),     // AVG(b)
		storage.FloatValue(-1.0),            // MIN(f)
		storage.FloatValue(3.5),             // MAX(f)
		storage.StringValue("a"),            // MIN(s)
		storage.FloatValue(2.5 + 3.5 - 1.0), // SUM(f)
	}
	for i, w := range want {
		if !res.Aggs[i].Equal(w) {
			t.Fatalf("agg %d: got %v want %v", i, res.Aggs[i], w)
		}
	}
}

func TestAggregatesEmptyResult(t *testing.T) {
	tb := buildTable(t, 100, 4)
	e := newEngine(t, tb, PolicyStatic)
	res, err := e.Query(Query{
		Where: expr.And(intPred("a", expr.GT, 10_000)),
		Aggs:  []Agg{{Kind: CountStar}, {Kind: Sum, Col: "b"}, {Kind: Min, Col: "f"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || !res.Aggs[0].Equal(storage.IntValue(0)) {
		t.Fatalf("count: %v", res.Aggs[0])
	}
	if !res.Aggs[1].IsNull() || !res.Aggs[2].IsNull() {
		t.Fatalf("empty SUM/MIN should be NULL: %v %v", res.Aggs[1], res.Aggs[2])
	}
}

func TestUnsatisfiablePredicate(t *testing.T) {
	tb := buildTable(t, 100, 5)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where: expr.And(intPred("a", expr.LT, 10), intPred("a", expr.GT, 50)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 || res.Stats.RowsScanned != 0 {
		t.Fatalf("contradiction scanned rows: %+v", res.Stats)
	}
}

func TestProjectionAndLimit(t *testing.T) {
	tb := buildTable(t, 200, 6)
	e := newEngine(t, tb, PolicyStatic)
	res, err := e.Query(Query{
		Where:  expr.And(intPred("a", expr.GE, 150)),
		Select: []string{"a", "s"},
		Limit:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || res.Count != 10 {
		t.Fatalf("rows=%d count=%d", len(res.Rows), res.Count)
	}
	if res.Columns[0] != "a" || res.Columns[1] != "s" {
		t.Fatalf("columns=%v", res.Columns)
	}
	// Rows come back in row order starting at the first match.
	if res.Rows[0][0].Int() != 150 || res.Rows[9][0].Int() != 159 {
		t.Fatalf("rows=%v..%v", res.Rows[0][0], res.Rows[9][0])
	}
	// No limit returns all matches.
	res, err = e.Query(Query{Where: expr.And(intPred("a", expr.GE, 150)), Select: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 50 {
		t.Fatalf("count=%d", res.Count)
	}
	if _, err := e.Query(Query{Limit: -1}); !errors.Is(err, ErrBadLimit) {
		t.Fatalf("negative limit: %v", err)
	}
}

func TestMultiColumnConjunction(t *testing.T) {
	tb := buildTable(t, 1000, 7)
	for _, policy := range []Policy{PolicyNone, PolicyStatic, PolicyAdaptive, PolicyImprint} {
		e := newEngine(t, tb, policy)
		res, err := e.Query(Query{
			Where: expr.And(
				intPred("a", expr.Between, 100, 600),
				intPred("b", expr.LT, 500),
				expr.MustPred("s", expr.EQ, storage.StringValue("cat")),
			),
			Aggs: []Agg{{Kind: CountStar}},
		})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		// Naive reference.
		want := 0
		colA, _ := tb.Column("a")
		colB, _ := tb.Column("b")
		colS, _ := tb.Column("s")
		for i := 0; i < tb.NumRows(); i++ {
			if colA.Value(i).Int() < 100 || colA.Value(i).Int() > 600 {
				continue
			}
			if colB.IsNull(i) || colB.Value(i).Int() >= 500 {
				continue
			}
			if colS.Value(i).Str() != "cat" {
				continue
			}
			want++
		}
		if res.Count != want {
			t.Fatalf("%v: count=%d want %d", policy, res.Count, want)
		}
	}
}

func TestStringAndFloatPredicates(t *testing.T) {
	tb := buildTable(t, 500, 8)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where: expr.And(
			expr.MustPred("s", expr.Between, storage.StringValue("bee"), storage.StringValue("dog")),
			expr.MustPred("f", expr.GT, storage.FloatValue(0)),
		),
		Aggs: []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	colS, _ := tb.Column("s")
	colF, _ := tb.Column("f")
	want := 0
	for i := 0; i < 500; i++ {
		s := colS.Value(i).Str()
		if s >= "bee" && s <= "dog" && colF.Value(i).Float() > 0 {
			want++
		}
	}
	if res.Count != want {
		t.Fatalf("count=%d want %d", res.Count, want)
	}
}

func TestAppendsVisibleAndMetadataSynced(t *testing.T) {
	tb := buildTable(t, 300, 9)
	for _, policy := range []Policy{PolicyStatic, PolicyAdaptive} {
		e := newEngine(t, tb, policy)
		before, err := e.Query(Query{Where: expr.And(intPred("a", expr.GE, 0)), Aggs: []Agg{{Kind: CountStar}}})
		if err != nil {
			t.Fatal(err)
		}
		n0 := before.Count
		for i := 0; i < 50; i++ {
			err := e.AppendRow(storage.IntValue(int64(100000+i)), storage.IntValue(1),
				storage.FloatValue(1), storage.StringValue("ant"))
			if err != nil {
				t.Fatal(err)
			}
		}
		after, err := e.Query(Query{Where: expr.And(intPred("a", expr.GE, 0)), Aggs: []Agg{{Kind: CountStar}}})
		if err != nil {
			t.Fatal(err)
		}
		if after.Count != n0+50 {
			t.Fatalf("%v: appended rows invisible: %d vs %d", policy, after.Count, n0+50)
		}
		// Narrow query on the appended range.
		res, err := e.Query(Query{Where: expr.And(intPred("a", expr.GE, 100000)), Aggs: []Agg{{Kind: CountStar}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 50 {
			t.Fatalf("%v: appended range count=%d", policy, res.Count)
		}
		tb = buildTable(t, 300, 9) // fresh copy for next policy
	}
}

func TestAppendRowTypeError(t *testing.T) {
	tb := buildTable(t, 10, 10)
	e := newEngine(t, tb, PolicyStatic)
	err := e.AppendRow(storage.StringValue("wrong"), storage.IntValue(1), storage.FloatValue(1), storage.StringValue("x"))
	if !errors.Is(err, storage.ErrTypeMismatch) {
		t.Fatalf("err=%v", err)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatalf("rejected row skewed the table: %v", err)
	}
	// Sealed dictionary: appending a new word must fail cleanly before any
	// column is written.
	err = e.AppendRow(storage.IntValue(1), storage.IntValue(1), storage.FloatValue(1), storage.StringValue("brand-new-word"))
	if err == nil {
		t.Fatal("new word after seal accepted")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatalf("failed append skewed the table: %v", err)
	}
}

func TestUpdateKeepsResultsCorrect(t *testing.T) {
	tb := buildTable(t, 200, 11)
	for _, policy := range []Policy{PolicyNone, PolicyStatic, PolicyAdaptive} {
		e := newEngine(t, tb, policy)
		// Warm adaptive metadata.
		for q := 0; q < 20; q++ {
			if _, err := e.Query(Query{Where: expr.And(intPred("a", expr.Between, int64(q*10), int64(q*10+5)))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Update("a", 50, storage.IntValue(999_999)); err != nil {
			t.Fatal(err)
		}
		res, err := e.Query(Query{Where: expr.And(intPred("a", expr.EQ, 999_999)), Aggs: []Agg{{Kind: CountStar}}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 1 {
			t.Fatalf("%v: updated row lost (count=%d)", policy, res.Count)
		}
		tb = buildTable(t, 200, 11)
	}
}

func TestUpdateErrors(t *testing.T) {
	tb := buildTable(t, 10, 12)
	e := newEngine(t, tb, PolicyStatic)
	if err := e.Update("nope", 0, storage.IntValue(1)); !errors.Is(err, table.ErrNoSuchColumn) {
		t.Fatalf("missing column: %v", err)
	}
	if err := e.Update("a", 99, storage.IntValue(1)); !errors.Is(err, table.ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := e.Update("a", 0, storage.NullValue(storage.Int64)); err == nil {
		t.Fatal("NULL update accepted")
	}
	if err := e.Update("s", 0, storage.StringValue("x")); err == nil {
		t.Fatal("string update accepted")
	}
}

func TestQueryValidationErrors(t *testing.T) {
	tb := buildTable(t, 10, 13)
	e := newEngine(t, tb, PolicyStatic)
	if _, err := e.Query(Query{Where: expr.And(intPred("missing", expr.EQ, 1))}); !errors.Is(err, table.ErrNoSuchColumn) {
		t.Fatalf("missing predicate column: %v", err)
	}
	if _, err := e.Query(Query{Select: []string{"missing"}}); !errors.Is(err, table.ErrNoSuchColumn) {
		t.Fatalf("missing projection column: %v", err)
	}
	if _, err := e.Query(Query{Aggs: []Agg{{Kind: Sum, Col: "s"}}}); !errors.Is(err, ErrUnsupportedAgg) {
		t.Fatalf("SUM over string: %v", err)
	}
	if _, err := e.Query(Query{Aggs: []Agg{{Kind: CountStar, Col: "a"}}}); !errors.Is(err, ErrUnsupportedAgg) {
		t.Fatalf("COUNT(*) with column: %v", err)
	}
	// Type mismatch in predicate.
	bad := expr.And(expr.MustPred("a", expr.EQ, storage.StringValue("x")))
	if _, err := e.Query(Query{Where: bad}); !errors.Is(err, expr.ErrTypeMismatch) {
		t.Fatalf("type mismatch: %v", err)
	}
}

func TestEmptyWhereMatchesAll(t *testing.T) {
	tb := buildTable(t, 77, 14)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{Aggs: []Agg{{Kind: CountStar}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 77 {
		t.Fatalf("count=%d", res.Count)
	}
}

func TestEnableSkippingErrors(t *testing.T) {
	tb := buildTable(t, 10, 15)
	e := New(tb, Options{Policy: PolicyStatic})
	if err := e.EnableSkipping("missing"); !errors.Is(err, table.ErrNoSuchColumn) {
		t.Fatalf("err=%v", err)
	}
	e2 := New(tb, Options{Policy: Policy(99)})
	if err := e2.EnableSkipping("a"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if e.Skipper("a") != nil {
		t.Fatal("skipper registered despite error path")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyNone.String() != "none" || PolicyStatic.String() != "static" || PolicyAdaptive.String() != "adaptive" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy renders empty")
	}
}

// The long-haul randomized equivalence test: across hundreds of random
// queries (mixed shapes), all three policies return identical results
// while appends and updates interleave.
func TestRandomizedPolicyEquivalence(t *testing.T) {
	tbs := []*table.Table{buildTable(t, 600, 21), buildTable(t, 600, 21), buildTable(t, 600, 21)}
	engines := []*Engine{
		newEngine(t, tbs[0], PolicyNone),
		newEngine(t, tbs[1], PolicyStatic),
		newEngine(t, tbs[2], PolicyAdaptive),
	}
	rng := rand.New(rand.NewSource(22))
	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	for step := 0; step < 300; step++ {
		switch rng.Intn(12) {
		case 0: // append the same row everywhere
			vals := []storage.Value{
				storage.IntValue(rng.Int63n(2000)),
				storage.IntValue(rng.Int63n(1000)),
				storage.FloatValue(rng.NormFloat64() * 10),
				storage.StringValue(words[rng.Intn(len(words))]),
			}
			for _, e := range engines {
				if err := e.AppendRow(vals...); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // update the same cell everywhere
			row := rng.Intn(tbs[0].NumRows())
			v := storage.IntValue(rng.Int63n(5000))
			col := []string{"a", "b"}[rng.Intn(2)]
			for _, e := range engines {
				// Updating a null b cell is fine; engine handles NoteNonNull.
				if err := e.Update(col, row, v); err != nil {
					t.Fatal(err)
				}
			}
		default: // query
			var where expr.Conj
			switch rng.Intn(4) {
			case 0:
				lo := rng.Int63n(2000)
				where = expr.And(intPred("a", expr.Between, lo, lo+rng.Int63n(400)))
			case 1:
				where = expr.And(intPred("b", expr.GE, rng.Int63n(1000)))
			case 2:
				where = expr.And(
					intPred("a", expr.LT, rng.Int63n(2000)),
					expr.MustPred("s", expr.EQ, storage.StringValue(words[rng.Intn(len(words))])),
				)
			case 3:
				where = expr.And(expr.MustPred("f", expr.GT, storage.FloatValue(rng.NormFloat64()*20)))
			}
			q := Query{Where: where, Aggs: []Agg{{Kind: CountStar}, {Kind: Sum, Col: "b"}}}
			var base *Result
			for ei, e := range engines {
				got, err := e.Query(q)
				if err != nil {
					t.Fatalf("step %d engine %d: %v", step, ei, err)
				}
				if base == nil {
					base = got
					continue
				}
				if got.Count != base.Count || !got.Aggs[0].Equal(base.Aggs[0]) || !got.Aggs[1].Equal(base.Aggs[1]) {
					t.Fatalf("step %d engine %d diverged: count %d vs %d, aggs %v vs %v",
						step, ei, got.Count, base.Count, got.Aggs, base.Aggs)
				}
			}
		}
	}
}

func TestSkipperSnapshotRoundTrip(t *testing.T) {
	tb := buildTable(t, 1000, 40)
	e := newEngine(t, tb, PolicyAdaptive)
	// Train.
	for q := 0; q < 50; q++ {
		if _, err := e.Query(Query{Where: expr.And(intPred("a", expr.Between, int64(q*15), int64(q*15+30)))}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.SaveSkipper("a", &buf); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveSkipper("missing", &bytes.Buffer{}); err == nil {
		t.Fatal("missing column accepted")
	}
	// A fresh engine over the same table restores the learned structure.
	e2 := New(tb, Options{Policy: PolicyAdaptive, Adaptive: smallAdaptive()})
	if err := e2.LoadSkipper("a", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if e2.Skipper("a").Metadata().Zones != e.Skipper("a").Metadata().Zones {
		t.Fatalf("zones differ: %d vs %d",
			e2.Skipper("a").Metadata().Zones, e.Skipper("a").Metadata().Zones)
	}
	res, err := e2.Query(Query{
		Where: expr.And(intPred("a", expr.Between, 100, 200)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil || res.Count != 101 {
		t.Fatalf("count=%d err=%v", res.Count, err)
	}
	if res.Stats.RowsSkipped == 0 {
		t.Fatal("restored skipper pruned nothing")
	}
}

func TestSkipperSnapshotRejectsStaleMetadata(t *testing.T) {
	tb := buildTable(t, 500, 41)
	e := newEngine(t, tb, PolicyAdaptive)
	for q := 0; q < 30; q++ {
		if _, err := e.Query(Query{Where: expr.And(intPred("a", expr.Between, int64(q*10), int64(q*10+20)))}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.SaveSkipper("a", &buf); err != nil {
		t.Fatal(err)
	}
	// Mutate the column so the snapshot's bounds become wrong.
	colA, _ := tb.Column("a")
	if err := colA.SetInt(10, 9_999_999); err != nil {
		t.Fatal(err)
	}
	e2 := New(tb, Options{Policy: PolicyAdaptive})
	if err := e2.LoadSkipper("a", bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("stale snapshot accepted")
	}
}

func TestSaveSkipperNonAdaptive(t *testing.T) {
	tb := buildTable(t, 100, 42)
	e := newEngine(t, tb, PolicyStatic)
	if err := e.SaveSkipper("a", &bytes.Buffer{}); err == nil {
		t.Fatal("static skipper snapshot accepted")
	}
}
