package engine

import (
	"strings"
	"sync"
	"testing"

	"adskip/internal/adaptive"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// sortedTable builds an n-row single-column table with a = row index.
func sortedTable(t testing.TB, n int) *table.Table {
	t.Helper()
	tb := table.MustNew("t", table.Schema{{Name: "a", Type: storage.Int64}})
	col, err := tb.Column("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := col.AppendInt(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestExplainAnalyzeGoldenStatic pins the deterministic (timing-free)
// EXPLAIN ANALYZE rendering on a static zonemap: sorted data, 64-row
// zones, a range that covers two zones exactly.
func TestExplainAnalyzeGoldenStatic(t *testing.T) {
	tb := sortedTable(t, 1000)
	e := New(tb, Options{Policy: PolicyStatic, StaticZoneSize: 64})
	if err := e.EnableSkipping("a"); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 128, 255)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	lines, res, err := e.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 128 {
		t.Fatalf("count = %d, want 128", res.Count)
	}
	// The returned lines include timings; the golden asserts the
	// deterministic rendering.
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "EXPLAIN ANALYZE") {
		t.Fatalf("unexpected header: %q", lines)
	}
	got := AnalyzeLines(res, false)
	want := []string{
		`EXPLAIN ANALYZE: table "t" (1000 rows), 128 rows matched`,
		`probe: 16 zone probes`,
		`scan: scanned 0, covered 128, skipped 872 rows`,
		`predicate on "a": [128,255] — static skipper: est. 872 rows skippable (87.2%), 1 windows (1 covered, 128 candidate rows); actual matched 128`,
		`pruning: 1000 of 1000 rows avoided (100.0%): 872 skipped, 128 covered; 0 scanned`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got  %q\n want %q", i, got[i], want[i])
		}
	}
}

// TestExplainAnalyzeIncreasingSkipped is the headline adaptive check: on
// clustered data, repeating the same EXPLAIN ANALYZE lets the zonemap
// refine itself, so the reported rows-skipped figure must climb through
// strictly increasing levels (the acceptance criterion for adaptation
// visibility).
func TestExplainAnalyzeIncreasingSkipped(t *testing.T) {
	tb := sortedTable(t, 1<<14)
	e := New(tb, Options{Policy: PolicyAdaptive, Adaptive: adaptive.Config{
		InitialZoneRows: 4096, MinZoneRows: 64,
	}})
	if err := e.EnableSkipping("a"); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 5000, 5200)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	var levels []int
	for i := 0; i < 12; i++ {
		_, res, err := e.ExplainAnalyze(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatal("no trace recorded")
		}
		skipped := res.Trace.RowsSkipped
		if len(levels) == 0 || skipped != levels[len(levels)-1] {
			levels = append(levels, skipped)
		}
	}
	if len(levels) < 3 {
		t.Fatalf("rows-skipped never progressed: levels %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("rows-skipped not strictly increasing across levels: %v", levels)
		}
	}
}

// TestResultTraceAttached checks every query carries a complete trace.
func TestResultTraceAttached(t *testing.T) {
	tb := buildTable(t, 1000, 1)
	e := newEngine(t, tb, PolicyAdaptive)
	res, err := e.Query(Query{
		Where: expr.And(intPred("a", expr.Between, 100, 300)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace on result")
	}
	if tr.Table != "t" || tr.RowsTotal != 1000 {
		t.Fatalf("trace identity wrong: %+v", tr)
	}
	if tr.Total <= 0 {
		t.Fatalf("total duration %v not positive", tr.Total)
	}
	if tr.Matched != res.Count {
		t.Fatalf("trace matched %d != count %d", tr.Matched, res.Count)
	}
	if len(tr.Predicates) != 1 || tr.Predicates[0].Column != "a" {
		t.Fatalf("predicate trace wrong: %+v", tr.Predicates)
	}
	if tr.Predicates[0].Matched != res.Count {
		t.Fatalf("single-predicate attribution missing: %+v", tr.Predicates[0])
	}
	if tr.RowsScanned != res.Stats.RowsScanned || tr.RowsSkipped != res.Stats.RowsSkipped {
		t.Fatalf("trace totals diverge from stats: %+v vs %+v", tr, res.Stats)
	}
}

// TestExplainLifetimeAndCoveredFooter checks the two Explain upgrades: the
// cumulative lifetime counters line (which must advance across repeated
// EXPLAINs) and the all-windows-covered footer.
func TestExplainLifetimeAndCoveredFooter(t *testing.T) {
	tb := sortedTable(t, 1000)
	e := New(tb, Options{Policy: PolicyStatic, StaticZoneSize: 64})
	if err := e.EnableSkipping("a"); err != nil {
		t.Fatal(err)
	}
	q := Query{
		Where: expr.And(intPred("a", expr.Between, 128, 255)),
		Aggs:  []Agg{{Kind: CountStar}},
	}
	first, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(first, "\n")
	if !strings.Contains(joined, "all candidate windows covered: no residual predicate evaluation needed") {
		t.Errorf("covered footer missing:\n%s", joined)
	}
	if !strings.Contains(joined, "lifetime: 1 probes (0 declined)") {
		t.Errorf("lifetime counters missing or wrong:\n%s", joined)
	}
	second, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(second, "\n"), "lifetime: 2 probes (0 declined)") {
		t.Errorf("repeated EXPLAIN did not advance lifetime counters:\n%s", strings.Join(second, "\n"))
	}

	// A partially-covered range must not claim the footer.
	part, err := e.Explain(Query{
		Where: expr.And(intPred("a", expr.Between, 100, 200)),
		Aggs:  []Agg{{Kind: CountStar}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(part, "\n"), "all candidate windows covered") {
		t.Errorf("covered footer wrongly emitted for partial range:\n%s", strings.Join(part, "\n"))
	}
}

// TestMetricsUnderConcurrentQueries hammers Query from several goroutines
// while concurrently reading the registry and rendering both exposition
// formats. Run with -race this is the locking-discipline proof for the
// whole observability plane (trace allocation, atomic counters, event
// sink, exposition snapshot).
func TestMetricsUnderConcurrentQueries(t *testing.T) {
	tb := buildTable(t, 2000, 3)
	e := newEngine(t, tb, PolicyAdaptive)
	const workers = 8
	const queriesEach = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				lo := int64((w*queriesEach + i*13) % 1900)
				_, err := e.Query(Query{
					Where: expr.And(intPred("a", expr.Between, lo, lo+100)),
					Aggs:  []Agg{{Kind: CountStar}},
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		if err := e.Metrics().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if err := e.Metrics().WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		_ = e.Events()
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-done:
			// Drain any straggler error, then verify the totals.
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			var sb strings.Builder
			if err := e.Metrics().WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			want := `adskip_queries_total{table="t"} 480`
			if !strings.Contains(sb.String(), want) {
				t.Fatalf("missing %q in exposition:\n%s", want, sb.String())
			}
			return
		default:
		}
	}
}
