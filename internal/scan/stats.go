package scan

import (
	"adskip/internal/bitvec"
	"adskip/internal/expr"
)

// PartStat describes one sub-partition of a scanned window: its bounds over
// non-null rows and how many rows matched the predicate. Adaptive zonemaps
// consume these to decide and execute splits without re-reading data — the
// statistics are piggybacked on a scan the query had to do anyway, which is
// the "pay-as-you-go" cost model of adaptive indexing.
type PartStat struct {
	Lo, Hi   int   // absolute row window [Lo, Hi)
	Min, Max int64 // code bounds over non-null rows (valid iff NonNull > 0)
	NonNull  int   // rows with a value
	Matched  int   // rows matching the predicate
}

// CountWithStats scans codes[lo:hi] against r, returning the total match
// count and per-sub-partition statistics for `parts` equal-width
// sub-windows. It makes a single pass: the marginal cost over CountRanges
// is the stat bookkeeping, not a second data read.
//
// parts is clamped to [1, hi-lo]. Row indices in the returned stats are
// absolute (base-adjusted).
func CountWithStats(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base, parts int) (int, []PartStat) {
	n := hi - lo
	if n <= 0 {
		return 0, nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	stats := make([]PartStat, parts)
	total := 0
	single := r.Len() == 1
	var rlo, rhi int64
	if single {
		rlo, rhi = r.Lo[0], r.Hi[0]
	}
	for p := 0; p < parts; p++ {
		s := &stats[p]
		pLo := lo + p*n/parts
		pHi := lo + (p+1)*n/parts
		s.Lo, s.Hi = base+pLo, base+pHi
		if nulls == nil && single && pHi > pLo {
			// Dense single-interval fast path: locals only, no branches
			// beyond the comparisons themselves.
			w := codes[pLo:pHi]
			cmin, cmax := w[0], w[0]
			matched := 0
			for _, c := range w {
				if c < cmin {
					cmin = c
				}
				if c > cmax {
					cmax = c
				}
				matched += b2i(c >= rlo && c <= rhi)
			}
			s.Min, s.Max, s.NonNull, s.Matched = cmin, cmax, len(w), matched
			total += matched
			continue
		}
		s.Min, s.Max = int64(1)<<62, -(int64(1) << 62) // sentinels; overwritten on first non-null
		first := true
		for i := pLo; i < pHi; i++ {
			if nullAt(nulls, base+i) {
				continue
			}
			c := codes[i]
			if first {
				s.Min, s.Max = c, c
				first = false
			} else {
				if c < s.Min {
					s.Min = c
				}
				if c > s.Max {
					s.Max = c
				}
			}
			s.NonNull++
			var match bool
			if single {
				match = c >= rlo && c <= rhi
			} else {
				match = r.Contains(c)
			}
			if match {
				s.Matched++
			}
		}
		total += s.Matched
	}
	return total, stats
}
