package scan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
)

func seq(n int, f func(i int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func oneRange(lo, hi int64) expr.Ranges {
	return expr.Ranges{Lo: []int64{lo}, Hi: []int64{hi}}
}

func naiveCount(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if nulls != nil && nulls.Get(base+i) {
			continue
		}
		if r.Contains(codes[i]) {
			n++
		}
	}
	return n
}

func TestCountRangeDense(t *testing.T) {
	codes := seq(103, func(i int) int64 { return int64(i) }) // 0..102
	got := CountRange(codes, 0, len(codes), 10, 20, nil, 0)
	if got != 11 {
		t.Fatalf("CountRange=%d want 11", got)
	}
	// Sub-window.
	got = CountRange(codes, 15, 30, 10, 20, nil, 0)
	if got != 6 { // 15..20
		t.Fatalf("sub-window CountRange=%d want 6", got)
	}
	// Empty predicate range.
	if CountRange(codes, 0, len(codes), 50, 40, nil, 0) != 0 {
		t.Fatal("inverted range should match nothing")
	}
	// Full range.
	if CountRange(codes, 0, len(codes), math.MinInt64, math.MaxInt64, nil, 0) != 103 {
		t.Fatal("full range should match all")
	}
}

func TestCountRangeWithNulls(t *testing.T) {
	codes := seq(10, func(i int) int64 { return int64(i) })
	nulls := bitvec.New(10)
	nulls.Set(3)
	nulls.Set(7)
	got := CountRange(codes, 0, 10, 0, 9, nulls, 0)
	if got != 8 {
		t.Fatalf("with nulls CountRange=%d want 8", got)
	}
	// Base offset: codes window is rows 100.. in the table.
	big := bitvec.New(110)
	big.Set(102)
	got = CountRange(codes, 0, 10, 0, 9, big, 100)
	if got != 9 {
		t.Fatalf("base-offset nulls CountRange=%d want 9", got)
	}
}

func TestCountRanges(t *testing.T) {
	codes := seq(100, func(i int) int64 { return int64(i) })
	r := expr.Ranges{Lo: []int64{5, 90}, Hi: []int64{9, 94}}
	if got := CountRanges(codes, 0, 100, r, nil, 0); got != 10 {
		t.Fatalf("CountRanges=%d want 10", got)
	}
	if got := CountRanges(codes, 0, 100, expr.Ranges{}, nil, 0); got != 0 {
		t.Fatalf("empty ranges=%d want 0", got)
	}
	if got := CountRanges(codes, 0, 100, oneRange(50, 59), nil, 0); got != 10 {
		t.Fatalf("single range=%d want 10", got)
	}
}

func TestFilterBitmap(t *testing.T) {
	codes := seq(64, func(i int) int64 { return int64(i % 8) })
	out := bitvec.New(64)
	n := FilterBitmap(codes, 0, 64, oneRange(2, 3), nil, 0, out)
	if n != 16 || out.Count() != 16 {
		t.Fatalf("FilterBitmap n=%d count=%d want 16", n, out.Count())
	}
	out.ForEachSet(func(i int) {
		if codes[i] < 2 || codes[i] > 3 {
			t.Fatalf("bit %d set for code %d", i, codes[i])
		}
	})
	// Multi-interval path.
	out2 := bitvec.New(64)
	r := expr.Ranges{Lo: []int64{0, 7}, Hi: []int64{0, 7}}
	n = FilterBitmap(codes, 0, 64, r, nil, 0, out2)
	if n != 16 {
		t.Fatalf("multi FilterBitmap n=%d want 16", n)
	}
}

func TestFilterSel(t *testing.T) {
	codes := []int64{5, 1, 9, 3, 7, 3}
	sel := bitvec.NewSelVec(0)
	n := FilterSel(codes, 0, len(codes), oneRange(3, 5), nil, 0, sel)
	if n != 3 {
		t.Fatalf("FilterSel n=%d want 3", n)
	}
	want := []uint32{0, 3, 5}
	for i, r := range sel.Rows() {
		if r != want[i] {
			t.Fatalf("sel rows=%v want %v", sel.Rows(), want)
		}
	}
	// Base offset shifts row ids; multi-interval path.
	sel.Reset()
	r := expr.Ranges{Lo: []int64{1, 9}, Hi: []int64{1, 9}}
	FilterSel(codes, 0, len(codes), r, nil, 100, sel)
	if rows := sel.Rows(); len(rows) != 2 || rows[0] != 101 || rows[1] != 102 {
		t.Fatalf("base-offset sel=%v", sel.Rows())
	}
}

func TestRefineBitmap(t *testing.T) {
	a := seq(32, func(i int) int64 { return int64(i) })     // col A: 0..31
	b := seq(32, func(i int) int64 { return int64(i % 4) }) // col B: 0..3 cycle
	out := bitvec.New(32)
	FilterBitmap(a, 0, 32, oneRange(8, 23), nil, 0, out) // rows 8..23
	n := RefineBitmap(b, 0, 32, oneRange(1, 1), nil, 0, out)
	if n != 4 || out.Count() != 4 { // rows 9,13,17,21
		t.Fatalf("RefineBitmap n=%d count=%d want 4", n, out.Count())
	}
	out.ForEachSet(func(i int) {
		if i < 8 || i > 23 || b[i] != 1 {
			t.Fatalf("row %d should not survive", i)
		}
	})
	// Refine over a sub-window only touches that window.
	out2 := bitvec.NewSet(32)
	RefineBitmap(b, 0, 16, expr.Ranges{}, nil, 0, out2)
	if out2.CountRange(0, 16) != 0 || out2.CountRange(16, 32) != 16 {
		t.Fatalf("window refine wrong: %s", out2)
	}
}

func TestRefineBitmapWithNulls(t *testing.T) {
	b := seq(8, func(i int) int64 { return 1 })
	nulls := bitvec.New(8)
	nulls.Set(2)
	out := bitvec.NewSet(8)
	n := RefineBitmap(b, 0, 8, oneRange(1, 1), nulls, 0, out)
	if n != 7 || out.Get(2) {
		t.Fatalf("null row survived refine: n=%d", n)
	}
}

func TestSumRange(t *testing.T) {
	codes := []int64{1, 2, 3, 4, 5}
	sum, n := SumRange(codes, 0, 5, oneRange(2, 4), nil, 0)
	if sum != 9 || n != 3 {
		t.Fatalf("SumRange=%d,%d want 9,3", sum, n)
	}
	r := expr.Ranges{Lo: []int64{1, 5}, Hi: []int64{1, 5}}
	sum, n = SumRange(codes, 0, 5, r, nil, 0)
	if sum != 6 || n != 2 {
		t.Fatalf("multi SumRange=%d,%d want 6,2", sum, n)
	}
	nulls := bitvec.New(5)
	nulls.Set(1)
	sum, n = SumRange(codes, 0, 5, oneRange(1, 5), nulls, 0)
	if sum != 13 || n != 4 {
		t.Fatalf("null SumRange=%d,%d want 13,4", sum, n)
	}
}

func TestMinMaxRange(t *testing.T) {
	codes := []int64{5, -2, 9, 0}
	min, max, ok := MinMaxRange(codes, 0, 4, nil, 0)
	if !ok || min != -2 || max != 9 {
		t.Fatalf("MinMax=%d,%d,%v", min, max, ok)
	}
	min, max, ok = MinMaxRange(codes, 1, 2, nil, 0)
	if !ok || min != -2 || max != -2 {
		t.Fatalf("single MinMax=%d,%d,%v", min, max, ok)
	}
	if _, _, ok := MinMaxRange(codes, 2, 2, nil, 0); ok {
		t.Fatal("empty window should be ok=false")
	}
	nulls := bitvec.New(4)
	nulls.Set(2) // mask the 9
	min, max, ok = MinMaxRange(codes, 0, 4, nulls, 0)
	if !ok || min != -2 || max != 5 {
		t.Fatalf("null MinMax=%d,%d,%v", min, max, ok)
	}
	nulls.SetAll()
	if _, _, ok := MinMaxRange(codes, 0, 4, nulls, 0); ok {
		t.Fatal("all-null window should be ok=false")
	}
}

func TestCountWithStats(t *testing.T) {
	codes := seq(100, func(i int) int64 { return int64(i) })
	total, stats := CountWithStats(codes, 0, 100, oneRange(25, 74), nil, 0, 4)
	if total != 50 {
		t.Fatalf("total=%d want 50", total)
	}
	if len(stats) != 4 {
		t.Fatalf("parts=%d want 4", len(stats))
	}
	wantMatch := []int{0, 25, 25, 0}
	for p, s := range stats {
		if s.Lo != p*25 || s.Hi != (p+1)*25 {
			t.Fatalf("part %d window [%d,%d)", p, s.Lo, s.Hi)
		}
		if s.Min != int64(p*25) || s.Max != int64(p*25+24) {
			t.Fatalf("part %d bounds [%d,%d]", p, s.Min, s.Max)
		}
		if s.NonNull != 25 || s.Matched != wantMatch[p] {
			t.Fatalf("part %d nonnull=%d matched=%d", p, s.NonNull, s.Matched)
		}
	}
}

func TestCountWithStatsEdges(t *testing.T) {
	codes := seq(5, func(i int) int64 { return int64(i) })
	// parts > n clamps to n.
	total, stats := CountWithStats(codes, 0, 5, oneRange(0, 4), nil, 0, 99)
	if total != 5 || len(stats) != 5 {
		t.Fatalf("clamp: total=%d parts=%d", total, len(stats))
	}
	// parts < 1 clamps to 1.
	_, stats = CountWithStats(codes, 0, 5, oneRange(0, 4), nil, 0, 0)
	if len(stats) != 1 {
		t.Fatalf("min clamp: parts=%d", len(stats))
	}
	// Empty window.
	total, stats = CountWithStats(codes, 3, 3, oneRange(0, 4), nil, 0, 2)
	if total != 0 || stats != nil {
		t.Fatalf("empty window: total=%d stats=%v", total, stats)
	}
	// Window offsets with base.
	_, stats = CountWithStats(codes, 2, 5, oneRange(0, 4), nil, 1000, 1)
	if stats[0].Lo != 1002 || stats[0].Hi != 1005 {
		t.Fatalf("base window [%d,%d)", stats[0].Lo, stats[0].Hi)
	}
}

func TestCountWithStatsNulls(t *testing.T) {
	codes := seq(10, func(i int) int64 { return int64(i) })
	nulls := bitvec.New(10)
	nulls.Set(0)
	nulls.Set(9)
	total, stats := CountWithStats(codes, 0, 10, oneRange(0, 100), nulls, 0, 2)
	if total != 8 {
		t.Fatalf("total=%d want 8", total)
	}
	if stats[0].Min != 1 || stats[0].NonNull != 4 {
		t.Fatalf("part0 min=%d nonnull=%d", stats[0].Min, stats[0].NonNull)
	}
	if stats[1].Max != 8 || stats[1].NonNull != 4 {
		t.Fatalf("part1 max=%d nonnull=%d", stats[1].Max, stats[1].NonNull)
	}
}

// Property: every kernel agrees with the naive reference on random data,
// random windows, random interval sets, random nulls.
func TestQuickKernelsAgreeWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		codes := seq(n, func(int) int64 { return rng.Int63n(200) - 100 })
		var nulls *bitvec.BitVec
		if rng.Intn(2) == 0 {
			nulls = bitvec.New(n)
			for i := 0; i < n/10; i++ {
				nulls.Set(rng.Intn(n))
			}
		}
		// Random normalized interval set.
		r := expr.Ranges{}
		for k := 0; k < 1+rng.Intn(3); k++ {
			lo := rng.Int63n(220) - 110
			r.Lo = append(r.Lo, lo)
			r.Hi = append(r.Hi, lo+rng.Int63n(60))
		}
		r = r.Normalize()
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)

		want := naiveCount(codes, lo, hi, r, nulls, 0)
		if CountRanges(codes, lo, hi, r, nulls, 0) != want {
			return false
		}
		out := bitvec.New(n)
		if FilterBitmap(codes, lo, hi, r, nulls, 0, out) != want || out.Count() != want {
			return false
		}
		sel := bitvec.NewSelVec(0)
		if FilterSel(codes, lo, hi, r, nulls, 0, sel) != want || sel.Len() != want {
			return false
		}
		all := bitvec.NewSet(n)
		if RefineBitmap(codes, lo, hi, r, nulls, 0, all) != want {
			return false
		}
		if all.CountRange(lo, hi) != want {
			return false
		}
		total, stats := CountWithStats(codes, lo, hi, r, nulls, 0, 1+rng.Intn(8))
		if total != want {
			return false
		}
		sumMatched, sumNonNull := 0, 0
		for _, s := range stats {
			sumMatched += s.Matched
			sumNonNull += s.NonNull
			// Bounds must enclose all non-null codes in the window.
			for i := s.Lo; i < s.Hi; i++ {
				if nulls != nil && nulls.Get(i) {
					continue
				}
				if codes[i] < s.Min || codes[i] > s.Max {
					return false
				}
			}
		}
		return sumMatched == want && (hi == lo || sumNonNull > 0 || nulls != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountRangeDense(b *testing.B) {
	codes := seq(1<<20, func(i int) int64 { return int64(i * 7 % 1000) })
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountRange(codes, 0, len(codes), 100, 300, nil, 0)
	}
}

func BenchmarkCountWithStats(b *testing.B) {
	codes := seq(1<<20, func(i int) int64 { return int64(i * 7 % 1000) })
	r := oneRange(100, 300)
	b.SetBytes(8 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountWithStats(codes, 0, len(codes), r, nil, 0, 16)
	}
}
