// Package scan implements the tight scan kernels of the column store.
//
// The paper's substrate is a main-memory column store whose scans are fast
// enough that any index must justify its metadata-read cost — that ratio is
// what makes adaptive data skipping interesting. These kernels are the Go
// stand-in for the paper's SIMD scans: word-at-a-time loops, unrolled by
// four, with comparison results converted to 0/1 without data-dependent
// branches in the hot path (the Go compiler lowers the b2i pattern to
// SETcc/CSEL). Absolute throughput differs from hand-written SIMD; the
// scan-vs-probe cost ratio that drives the paper's results is preserved.
//
// All kernels operate on a column's physical []int64 codes (see package
// storage) against inclusive code intervals, and optionally mask NULL rows.
package scan

import (
	"math"

	"adskip/internal/bitvec"
	"adskip/internal/expr"
)

// b2i converts a bool to 0/1; the compiler emits branch-free code for this
// pattern on amd64/arm64.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// CountRange returns how many codes in codes[lo:hi] fall inside the
// inclusive interval [rlo, rhi]. nulls, when non-nil, is the column's null
// bitmap (indexed by absolute row = base+i) and null rows never match.
// base is the absolute row index of codes[0].
func CountRange(codes []int64, lo, hi int, rlo, rhi int64, nulls *bitvec.BitVec, base int) int {
	if nulls == nil {
		return countRangeDense(codes[lo:hi], rlo, rhi)
	}
	n := 0
	for i := lo; i < hi; i++ {
		c := codes[i]
		if c >= rlo && c <= rhi && !nullAt(nulls, base+i) {
			n++
		}
	}
	return n
}

// countRangeDense is the null-free hot loop, unrolled by four.
func countRangeDense(codes []int64, rlo, rhi int64) int {
	n := 0
	i := 0
	for ; i+4 <= len(codes); i += 4 {
		c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
		n += b2i(c0 >= rlo && c0 <= rhi)
		n += b2i(c1 >= rlo && c1 <= rhi)
		n += b2i(c2 >= rlo && c2 <= rhi)
		n += b2i(c3 >= rlo && c3 <= rhi)
	}
	for ; i < len(codes); i++ {
		c := codes[i]
		n += b2i(c >= rlo && c <= rhi)
	}
	return n
}

// CountRanges counts codes in codes[lo:hi] matching any interval of r.
// Specializes the common one-interval case to the dense kernel.
func CountRanges(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base int) int {
	switch r.Len() {
	case 0:
		return 0
	case 1:
		return CountRange(codes, lo, hi, r.Lo[0], r.Hi[0], nulls, base)
	}
	n := 0
	for i := lo; i < hi; i++ {
		if r.Contains(codes[i]) && !nullAt(nulls, base+i) {
			n++
		}
	}
	return n
}

// FilterBitmap sets out's bit for every row in [lo, hi) whose code matches
// any interval of r (and is not NULL). out is indexed by absolute row;
// bits outside [lo, hi) are left untouched. Returns the match count.
func FilterBitmap(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base int, out *bitvec.BitVec) int {
	n := 0
	if r.Len() == 1 {
		rlo, rhi := r.Lo[0], r.Hi[0]
		for i := lo; i < hi; i++ {
			c := codes[i]
			if c >= rlo && c <= rhi && !nullAt(nulls, base+i) {
				out.Set(base + i)
				n++
			}
		}
		return n
	}
	for i := lo; i < hi; i++ {
		if r.Contains(codes[i]) && !nullAt(nulls, base+i) {
			out.Set(base + i)
			n++
		}
	}
	return n
}

// FilterSel appends the absolute row indices in [lo, hi) whose codes match
// r (and are not NULL) to sel, in ascending order. Returns the match count.
func FilterSel(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base int, sel *bitvec.SelVec) int {
	n := 0
	if r.Len() == 1 {
		rlo, rhi := r.Lo[0], r.Hi[0]
		for i := lo; i < hi; i++ {
			c := codes[i]
			if c >= rlo && c <= rhi && !nullAt(nulls, base+i) {
				sel.Append(uint32(base + i))
				n++
			}
		}
		return n
	}
	for i := lo; i < hi; i++ {
		if r.Contains(codes[i]) && !nullAt(nulls, base+i) {
			sel.Append(uint32(base + i))
			n++
		}
	}
	return n
}

// RefineBitmap clears bits of out in [lo, hi) whose codes do NOT match r
// (or are NULL). This is the conjunction step: after the first column
// produces a bitmap, each further column refines it. Only rows whose bit
// is currently set are examined. Returns the number of surviving rows in
// the window.
func RefineBitmap(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base int, out *bitvec.BitVec) int {
	n := 0
	single := r.Len() == 1
	var rlo, rhi int64
	if single {
		rlo, rhi = r.Lo[0], r.Hi[0]
	}
	for i := out.NextSet(base + lo); i >= 0 && i < base+hi; i = out.NextSet(i + 1) {
		c := codes[i-base]
		var match bool
		if single {
			match = c >= rlo && c <= rhi
		} else {
			match = r.Contains(c)
		}
		if !match || nullAt(nulls, i) {
			out.Clear(i)
		} else {
			n++
		}
	}
	return n
}

// SumRange returns the sum of codes in codes[lo:hi] whose code matches r,
// along with the match count. The caller interprets the sum (valid for
// Int64 columns; Float64 aggregation decodes per-row elsewhere).
func SumRange(codes []int64, lo, hi int, r expr.Ranges, nulls *bitvec.BitVec, base int) (sum int64, n int) {
	if r.Len() == 1 {
		rlo, rhi := r.Lo[0], r.Hi[0]
		for i := lo; i < hi; i++ {
			c := codes[i]
			if c >= rlo && c <= rhi && !nullAt(nulls, base+i) {
				sum += c
				n++
			}
		}
		return sum, n
	}
	for i := lo; i < hi; i++ {
		c := codes[i]
		if r.Contains(c) && !nullAt(nulls, base+i) {
			sum += c
			n++
		}
	}
	return sum, n
}

// MinMaxRange returns the min and max code among non-null rows of
// codes[lo:hi]. ok is false when every row in the window is NULL (or the
// window is empty). Used by metadata builders and by zone re-tightening.
func MinMaxRange(codes []int64, lo, hi int, nulls *bitvec.BitVec, base int) (min, max int64, ok bool) {
	min, max = math.MaxInt64, math.MinInt64
	if nulls == nil {
		for _, c := range codes[lo:hi] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return min, max, hi > lo
	}
	for i := lo; i < hi; i++ {
		if nullAt(nulls, base+i) {
			continue
		}
		c := codes[i]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		ok = true
	}
	return min, max, ok
}

func nullAt(nulls *bitvec.BitVec, row int) bool {
	return nulls != nil && row < nulls.Len() && nulls.Get(row)
}
