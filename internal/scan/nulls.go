package scan

import "adskip/internal/bitvec"

// Null-seeking kernels: IS NULL predicates scan the null bitmap instead of
// the code vector. nulls may be nil (a column with no NULLs), in which
// case nothing matches.

// CountNulls returns the number of NULL rows in [lo, hi).
func CountNulls(nulls *bitvec.BitVec, lo, hi int) int {
	if nulls == nil || lo >= hi {
		return 0
	}
	if hi > nulls.Len() {
		hi = nulls.Len()
	}
	if lo >= hi {
		return 0
	}
	return nulls.CountRange(lo, hi)
}

// FilterNullSel appends the NULL row indices in [lo, hi) to sel, in
// ascending order, returning the match count.
func FilterNullSel(nulls *bitvec.BitVec, lo, hi int, sel *bitvec.SelVec) int {
	if nulls == nil {
		return 0
	}
	if hi > nulls.Len() {
		hi = nulls.Len()
	}
	n := 0
	for i := nulls.NextSet(lo); i >= 0 && i < hi; i = nulls.NextSet(i + 1) {
		sel.Append(uint32(i))
		n++
	}
	return n
}
