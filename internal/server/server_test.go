package server_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"adskip"
	"adskip/internal/client"
	"adskip/internal/faultinject"
	"adskip/internal/obs"
	"adskip/internal/proto"
	"adskip/internal/server"
)

// testDB builds a DB with the adskip-gen "data" shape at small scale:
// v = (i/1000)*1000 + i%7 (clustered), seq = i.
func testDB(t *testing.T, rows int) *adskip.DB {
	t.Helper()
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive})
	tbl, err := db.CreateTable("data", adskip.Col("v", adskip.Int64), adskip.Col("seq", adskip.Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Append((i/1000)*1000+i%7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer runs a server on a loopback port and tears it down with
// the test.
func startServer(t *testing.T, db *adskip.DB, opts server.Options) *server.Server {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	srv, err := server.Start(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr().String(), client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestQueryMatchesLocal proves a query answered over the wire is the
// query answered in-process: counts, aggregates, and projected rows.
func TestQueryMatchesLocal(t *testing.T) {
	db := testDB(t, 20000)
	defer db.Close()
	srv := startServer(t, db, server.Options{})
	c := dial(t, srv)

	queries := []string{
		"SELECT COUNT(*) FROM data WHERE v BETWEEN 3000 AND 3006",
		"SELECT COUNT(*), SUM(seq) FROM data WHERE v BETWEEN 0 AND 999",
		"SELECT v, seq FROM data WHERE seq BETWEEN 5 AND 8",
	}
	for _, q := range queries {
		local, err := db.Exec(q)
		if err != nil {
			t.Fatalf("%s: local: %v", q, err)
		}
		remote, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: remote: %v", q, err)
		}
		if remote.Count != local.Count {
			t.Errorf("%s: count %d over the wire, %d locally", q, remote.Count, local.Count)
		}
		if len(remote.Aggs) != len(local.Aggs) {
			t.Errorf("%s: %d aggs over the wire, %d locally", q, len(remote.Aggs), len(local.Aggs))
		}
		if len(remote.Rows) != len(local.Rows) {
			t.Errorf("%s: %d rows over the wire, %d locally", q, len(remote.Rows), len(local.Rows))
		}
		for i, col := range local.Columns {
			if remote.Columns[i].Name != col {
				t.Errorf("%s: column %d is %q over the wire, %q locally", q, i, remote.Columns[i].Name, col)
			}
		}
	}
}

// TestPrepareExec covers the prepared-statement path end to end,
// including the transparent cache hit for identical query text and the
// hit/miss counters on the DB registry.
func TestPrepareExec(t *testing.T) {
	db := testDB(t, 20000)
	defer db.Close()
	srv := startServer(t, db, server.Options{})
	c := dial(t, srv)

	hits := db.Metrics().Counter("adskip_server_stmt_cache_hits_total", "Requests served from the prepared-statement cache.")
	misses := db.Metrics().Counter("adskip_server_stmt_cache_misses_total", "Requests that had to parse and plan.")

	const q = "SELECT COUNT(*) FROM data WHERE v BETWEEN 1000 AND 1006"
	id, err := c.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if misses.Load() == 0 {
		t.Fatal("prepare did not count a cache miss")
	}
	want, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := c.Exec(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want.Count {
			t.Fatalf("exec %d: count %d, want %d", i, res.Count, want.Count)
		}
	}
	// Same SQL text as plain query text: served from the cache.
	before := hits.Load()
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	if hits.Load() <= before {
		t.Fatal("identical query text did not hit the statement cache")
	}
	// Re-preparing the same text returns the same ID.
	id2, err := c.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("re-prepare issued a new ID: %d then %d", id, id2)
	}
}

// TestStmtCacheEviction bounds the cache and proves exec-after-evict
// fails with the stable no_stmt kind (the client's cue to re-prepare).
func TestStmtCacheEviction(t *testing.T) {
	db := testDB(t, 2000)
	defer db.Close()
	srv := startServer(t, db, server.Options{StmtCacheSize: 2})
	c := dial(t, srv)

	mk := func(lo int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM data WHERE v BETWEEN %d AND %d", lo, lo+6)
	}
	first, err := c.Prepare(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(mk(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prepare(mk(200)); err != nil { // evicts the first
		t.Fatal(err)
	}
	_, err = c.Exec(first)
	var se *client.ServerError
	if !errors.As(err, &se) || se.Kind != proto.ErrKindNoStmt {
		t.Fatalf("exec of evicted statement: err=%v, want ServerError kind %q", err, proto.ErrKindNoStmt)
	}
	ev := db.Metrics().Counter("adskip_server_stmt_cache_evictions_total", "Prepared statements evicted by the LRU.")
	if ev.Load() == 0 {
		t.Fatal("eviction not counted")
	}
	// The connection survives the error.
	if _, err := c.Query(mk(200)); err != nil {
		t.Fatalf("connection unusable after no_stmt error: %v", err)
	}
}

// TestCatalogSorted creates tables in non-alphabetical order and checks
// the wire catalog is deterministic.
func TestCatalogSorted(t *testing.T) {
	db := adskip.Open(adskip.Options{})
	defer db.Close()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := db.CreateTable(name, adskip.Col("v", adskip.Int64)); err != nil {
			t.Fatal(err)
		}
	}
	srv := startServer(t, db, server.Options{})
	c := dial(t, srv)
	got, err := c.Tables()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("catalog %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog %v, want %v", got, want)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestErrorKeepsConnectionUsable sends a stream of failing requests and
// checks each gets a typed error and the session keeps serving.
func TestErrorKeepsConnectionUsable(t *testing.T) {
	db := testDB(t, 2000)
	defer db.Close()
	srv := startServer(t, db, server.Options{})
	c := dial(t, srv)

	cases := []struct {
		run  func() error
		kind string
	}{
		{func() error { _, err := c.Query("SELEKT nope"); return err }, proto.ErrKindSyntax},
		{func() error { _, err := c.Query("SELECT COUNT(*) FROM missing"); return err }, proto.ErrKindNoTable},
		{func() error { _, err := c.Exec(99999); return err }, proto.ErrKindNoStmt},
		{func() error { _, err := c.Prepare("EXPLAIN SELECT COUNT(*) FROM data"); return err }, proto.ErrKindSyntax},
	}
	for _, tc := range cases {
		err := tc.run()
		var se *client.ServerError
		if !errors.As(err, &se) || se.Kind != tc.kind {
			t.Fatalf("err=%v, want ServerError kind %q", err, tc.kind)
		}
		if _, err := c.Query("SELECT COUNT(*) FROM data"); err != nil {
			t.Fatalf("connection dead after %q error: %v", tc.kind, err)
		}
	}
}

// TestFrameTooLargeRejected sends a hostile length prefix; the server
// must answer with a typed error, not allocate, and hang up.
func TestFrameTooLargeRejected(t *testing.T) {
	db := testDB(t, 2000)
	defer db.Close()
	srv := startServer(t, db, server.Options{MaxFrameBytes: 1 << 16})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := proto.ReadResponse(conn, proto.MaxFrameDefault)
	if err != nil {
		t.Fatalf("no error response before hangup: %v", err)
	}
	if resp.OK || resp.ErrKind != proto.ErrKindBadOp {
		t.Fatalf("response %+v, want error kind %q", resp, proto.ErrKindBadOp)
	}
	if _, err := proto.ReadResponse(conn, proto.MaxFrameDefault); err == nil {
		t.Fatal("connection still open after protocol violation")
	}
}

// TestDisconnectCancelsQuery closes the client mid-query and waits for
// the engine's canceled counter to tick: the reader goroutine noticed
// the dead peer and canceled the in-flight context.
func TestDisconnectCancelsQuery(t *testing.T) {
	db := testDB(t, 20000)
	defer db.Close()
	srv := startServer(t, db, server.Options{})

	// Stretch every scan checkpoint so the query comfortably outlives
	// the client.
	restore := faultinject.Activate(faultinject.New(3).
		Set(faultinject.ScanDelay, faultinject.Rule{Every: 1, Delay: 100 * time.Millisecond}))
	defer restore()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.WriteMessage(conn, proto.Request{Op: proto.OpQuery,
		SQL: "SELECT COUNT(*) FROM data WHERE v BETWEEN 0 AND 20000"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the query reach the scan
	conn.Close()

	canceled := db.Metrics().Counter("adskip_queries_canceled_total",
		"Queries stopped by context cancellation.", obs.L("table", "data"))
	deadline := time.Now().Add(5 * time.Second)
	for canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query not canceled after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseDrainsInFlight starts a slow query, closes the server during
// it, and requires the client to still receive its full response: drain
// means finish-and-answer, not abort.
func TestCloseDrainsInFlight(t *testing.T) {
	db := testDB(t, 20000)
	defer db.Close()
	srv, err := server.Start(db, server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Activate(faultinject.New(5).
		Set(faultinject.ScanDelay, faultinject.Rule{Every: 1, Delay: 50 * time.Millisecond}))
	defer restore()

	c, err := client.Dial(srv.Addr().String(), client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type outcome struct {
		count int
		err   error
	}
	got := make(chan outcome, 1)
	go func() {
		res, err := c.Query("SELECT COUNT(*) FROM data WHERE v BETWEEN 0 AND 20000")
		if err != nil {
			got <- outcome{err: err}
			return
		}
		got <- outcome{count: res.Count}
	}()
	time.Sleep(60 * time.Millisecond) // the query is mid-scan
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	o := <-got
	if o.err != nil {
		t.Fatalf("in-flight query aborted by drain: %v", o.err)
	}
	want, err := db.Exec("SELECT COUNT(*) FROM data WHERE v BETWEEN 0 AND 20000")
	if err != nil {
		t.Fatal(err)
	}
	if o.count != want.Count {
		t.Fatalf("drained query answered %d, want %d", o.count, want.Count)
	}
}

// TestCloseLeaksNothing is the leak check: open connections, run
// traffic, close the server, and require the goroutine count to return
// to its pre-server level.
func TestCloseLeaksNothing(t *testing.T) {
	db := testDB(t, 2000)
	defer db.Close()
	before := runtime.NumGoroutine()

	srv, err := server.Start(db, server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*client.Client, 8)
	for i := range clients {
		c, err := client.Dial(srv.Addr().String(), client.Options{Timeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		if _, err := c.Query("SELECT COUNT(*) FROM data"); err != nil {
			t.Fatal(err)
		}
	}
	// Half the clients disconnect themselves; the rest are still open
	// (some idle mid-connection) when Close drains.
	for i, c := range clients {
		if i%2 == 0 {
			c.Close()
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	for _, c := range clients {
		c.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A server can start again on the same DB afterwards.
	srv2, err := server.Start(db, server.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, srv2)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxConnsBackpressure fills every connection slot and checks an
// extra client parks in the accept backlog (not rejected) until a slot
// frees.
func TestMaxConnsBackpressure(t *testing.T) {
	db := testDB(t, 2000)
	defer db.Close()
	srv := startServer(t, db, server.Options{MaxConns: 2})

	c1, c2 := dial(t, srv), dial(t, srv)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	// The third connection dials fine (kernel backlog) but is not
	// serviced while both slots are held.
	c3, err := client.Dial(srv.Addr().String(), client.Options{Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.Ping(); err == nil {
		t.Fatal("third connection serviced despite MaxConns=2")
	}
	// Free a slot. c3 is first in the backlog and its socket is already
	// closed client-side, so the server accepts it, sees EOF, and frees
	// the slot again for a fresh connection.
	c3.Close()
	c1.Close()
	c4, err := client.Dial(srv.Addr().String(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	if err := c4.Ping(); err != nil {
		t.Fatalf("connection not serviced after slot freed: %v", err)
	}
}

// TestTimingBreakdown proves the wire-level timing contract: a request
// that asks for timing gets a breakdown whose phases sum to no more than
// the total, whose trace ID tags the engine-side trace, and a request
// that doesn't ask gets none.
func TestTimingBreakdown(t *testing.T) {
	db := adskip.Open(adskip.Options{Policy: adskip.Adaptive, TraceRingSize: 32})
	defer db.Close()
	tbl, err := db.CreateTable("data", adskip.Col("v", adskip.Int64), adskip.Col("seq", adskip.Int64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := tbl.Append((i/1000)*1000+i%7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.EnableSkipping("v"); err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, db, server.Options{})

	tc, err := client.Dial(srv.Addr().String(), client.Options{Timeout: 30 * time.Second, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	const q = "SELECT COUNT(*) FROM data WHERE v BETWEEN 3000 AND 3006"
	t0 := time.Now()
	res, err := tc.QueryTraced(q, "test-trace-1")
	if err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(t0)

	tm := res.Timing
	if tm == nil {
		t.Fatal("timing requested but response carried none")
	}
	if tm.TraceID != "test-trace-1" {
		t.Fatalf("breakdown echoes trace %q, want test-trace-1", tm.TraceID)
	}
	if tm.TotalUS <= 0 {
		t.Fatalf("TotalUS = %d, want > 0", tm.TotalUS)
	}
	if sum := tm.PhaseSumUS(); sum > tm.TotalUS {
		t.Fatalf("phase sum %dus exceeds total %dus: %+v", sum, tm.TotalUS, tm)
	}
	if serverTotal := time.Duration(tm.TotalUS) * time.Microsecond; serverTotal > rtt {
		t.Fatalf("server total %v exceeds client round-trip %v", serverTotal, rtt)
	}
	if tm.RowsSkipped != int64(res.Stats.RowsSkipped) {
		t.Fatalf("breakdown says %d rows skipped, stats say %d", tm.RowsSkipped, res.Stats.RowsSkipped)
	}

	// The trace ID must tag the engine-side trace for /traces correlation.
	var found bool
	for _, tr := range db.Traces() {
		if tr.TraceID == "test-trace-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("trace ID missing from the engine trace ring")
	}

	// A fresh query with the cached plan: parse/plan legitimately hit 0us,
	// but the invariants must still hold.
	res2, err := tc.QueryTraced(q, "test-trace-2")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timing == nil || res2.Timing.PhaseSumUS() > res2.Timing.TotalUS {
		t.Fatalf("cached-plan breakdown broken: %+v", res2.Timing)
	}

	// No timing asked -> none attached (and no breakdown work done).
	pc := dial(t, srv)
	res3, err := pc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Timing != nil {
		t.Fatalf("unsolicited timing attached: %+v", res3.Timing)
	}
}
