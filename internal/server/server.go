// Package server exposes an adskip.DB as a concurrent SQL-over-TCP query
// service speaking the internal/proto frame protocol.
//
// # Concurrency model
//
// One goroutine pair per connection: a session loop that executes
// requests strictly one at a time (the protocol has no pipelining) and a
// reader that feeds it frames. The reader exists so a dead peer is
// noticed while a query is executing — a read error on the connection
// cancels the in-flight query's context, which the engine honors at its
// cooperative checkpoints. Admission is bounded before Accept: the
// accept loop takes a connection slot first, so once MaxConns sessions
// are open, further clients queue in the kernel's accept backlog instead
// of consuming server memory — the listen queue is the backpressure.
//
// # Shutdown
//
// Close drains: the listener closes, idle sessions are poked awake and
// closed, sessions mid-request finish the request, write the response,
// and then exit. Close returns only after every session and reader
// goroutine has exited, so a clean Close is also a leak check.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adskip"
	"adskip/internal/engine"
	"adskip/internal/obs"
	"adskip/internal/proto"
	sqlpkg "adskip/internal/sql"
	"adskip/internal/storage"
)

// Options configures a Server. Zero values select the defaults noted.
type Options struct {
	Addr          string        // listen address; ":0" picks a free port
	MaxConns      int           // simultaneous connections (default 256)
	MaxFrameBytes int           // per-frame size limit (default proto.MaxFrameDefault)
	IdleTimeout   time.Duration // close connections idle this long (default 5m)
	WriteTimeout  time.Duration // per-response write deadline (default 30s)
	StmtCacheSize int           // prepared-statement LRU capacity (default 256)
	// Logger receives structured server events: lifecycle at info,
	// connection open/close at debug, protocol errors at warn. Nil
	// disables logging.
	Logger *slog.Logger
	// RefuseOnCritical sheds query load while the DB's health monitor
	// reports critical burn: query and exec requests are answered with
	// ErrKindUnavailable instead of executing, so a saturated server stops
	// digging. Ping, catalog, and prepare stay up — load balancers keep
	// probing and clients keep their statements warm for recovery. The
	// gate reads the DB's shed status, which excludes shed-exempt signals
	// (skip_regression — a pruning-quality alert, not overload — never
	// refuses traffic). No-op unless the DB declared health objectives.
	RefuseOnCritical bool
}

// Server serves SQL queries against one adskip.DB over TCP.
type Server struct {
	db    *adskip.DB
	opts  Options
	ln    net.Listener
	m     *srvMetrics
	cache *stmtCache
	log   *slog.Logger

	done chan struct{} // closed when draining begins
	sem  chan struct{} // connection slots, taken before Accept

	mu       sync.Mutex
	sessions map[uint64]*session
	closed   bool
	closeErr error

	wg       sync.WaitGroup // accept loop + 2 goroutines per session
	nextConn atomic.Uint64
	nextStmt atomic.Uint64
}

// Start listens on opts.Addr and begins serving db. Metrics are
// registered on db.Metrics(), so they appear on the DB's telemetry
// /metrics endpoint automatically.
func Start(db *adskip.DB, opts Options) (*Server, error) {
	if opts.MaxConns <= 0 {
		opts.MaxConns = 256
	}
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = proto.MaxFrameDefault
	}
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = 5 * time.Minute
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 30 * time.Second
	}
	if opts.StmtCacheSize <= 0 {
		opts.StmtCacheSize = 256
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		db:       db,
		opts:     opts,
		ln:       ln,
		m:        newSrvMetrics(db.Metrics()),
		cache:    newStmtCache(opts.StmtCacheSize),
		log:      opts.Logger,
		done:     make(chan struct{}),
		sem:      make(chan struct{}, opts.MaxConns),
		sessions: make(map[uint64]*session),
	}
	if s.log != nil {
		s.log.Info("server listening", "addr", ln.Addr().String(), "max_conns", opts.MaxConns)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close drains the server: stop accepting, let requests in flight finish
// and answer, close every connection, and wait for all per-connection
// goroutines to exit. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
		s.closeErr = s.ln.Close()
		if s.log != nil {
			s.log.Info("server draining", "sessions", len(s.sessions))
		}
		// Poke every reader awake so idle sessions notice the drain
		// immediately instead of waiting out IdleTimeout. A session
		// mid-request recognizes the poke as drain-induced (not a dead
		// peer) and does NOT cancel its in-flight query.
		for _, ss := range s.sessions {
			ss.conn.SetReadDeadline(time.Now())
		}
	}
	err := s.closeErr
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) draining() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		// A connection slot is taken before Accept: at MaxConns open
		// sessions this loop parks here and new clients wait in the
		// kernel's listen backlog.
		select {
		case s.sem <- struct{}{}:
		case <-s.done:
			return
		}
		conn, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if errors.Is(err, net.ErrClosed) || s.draining() {
				return
			}
			time.Sleep(10 * time.Millisecond) // transient (e.g. EMFILE)
			continue
		}
		ss := s.newSession(conn)
		if ss == nil { // drain raced the accept
			conn.Close()
			<-s.sem
			continue
		}
		s.wg.Add(2)
		go ss.run()
		go ss.readLoop()
	}
}

// frame is one request frame plus the moment it came off the wire, so
// the handler can attribute read-to-dispatch time (requests parked behind
// an earlier request on the same session) to Timing.QueueUS.
type frame struct {
	payload []byte
	read    time.Time
}

// session is one client connection: its buffered transport, the context
// canceled when the connection dies, and the frame channel its reader
// feeds.
type session struct {
	srv    *Server
	id     uint64
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	ctx    context.Context // carries the session tag; canceled on disconnect
	cancel context.CancelFunc
	frames chan frame // closed by readLoop on exit
	// frameErr, set before frames is closed, carries a protocol error the
	// session loop should report to the client before hanging up.
	frameErr error
}

func (s *Server) newSession(conn net.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	id := s.nextConn.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	ss := &session{
		srv:    s,
		id:     id,
		conn:   conn,
		br:     bufio.NewReader(&countReader{r: conn, n: s.m.bytesRead}),
		bw:     bufio.NewWriter(&countWriter{w: conn, n: s.m.bytesSent}),
		ctx:    obs.WithSession(ctx, fmt.Sprintf("conn-%d", id)),
		cancel: cancel,
		frames: make(chan frame),
	}
	s.sessions[id] = ss
	s.m.connsTotal.Inc()
	s.m.connsActive.Add(1)
	if s.log != nil {
		s.log.Debug("connection open", "conn", id, "remote", conn.RemoteAddr().String())
	}
	return ss
}

// run executes requests one at a time until the connection or the server
// goes away.
func (ss *session) run() {
	s := ss.srv
	defer func() {
		ss.cancel()
		ss.conn.Close()
		s.mu.Lock()
		delete(s.sessions, ss.id)
		s.mu.Unlock()
		s.m.connsActive.Add(-1)
		if s.log != nil {
			s.log.Debug("connection closed", "conn", ss.id)
		}
		<-s.sem
		s.wg.Done()
	}()
	for {
		select {
		case fr, ok := <-ss.frames:
			if !ok {
				if ss.frameErr != nil {
					if s.log != nil {
						s.log.Warn("protocol error", "conn", ss.id, "err", ss.frameErr)
					}
					ss.write(errResp(proto.ErrKindBadOp, ss.frameErr.Error()))
				}
				return
			}
			if !ss.write(ss.handle(fr)) {
				return
			}
		case <-s.done:
			// Draining between requests. If the reader queued one more
			// frame concurrently, answer it with a shutdown error rather
			// than silently resetting the connection.
			select {
			case _, ok := <-ss.frames:
				if ok {
					ss.write(errResp(proto.ErrKindShutdown, "server shutting down"))
				}
			default:
			}
			return
		}
	}
}

// readLoop pulls frames off the wire and feeds them to run. Its real job
// is liveness: it is parked in a read while a query executes, so a peer
// that disappears mid-query surfaces here as a read error, which cancels
// the query's context.
func (ss *session) readLoop() {
	s := ss.srv
	defer s.wg.Done()
	defer close(ss.frames)
	for {
		if s.opts.IdleTimeout > 0 {
			ss.conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		payload, err := proto.ReadFrame(ss.br, s.opts.MaxFrameBytes)
		readAt := time.Now()
		if err != nil {
			var tooBig *proto.ErrFrameTooLarge
			if errors.As(err, &tooBig) {
				ss.frameErr = tooBig
				return
			}
			// Close pokes readers with an immediate deadline to end idle
			// sessions; that drain-induced timeout must not cancel a
			// query still executing in run.
			if errors.Is(err, os.ErrDeadlineExceeded) && s.draining() {
				return
			}
			// EOF, connection reset, or a genuine idle timeout: the peer
			// is gone, so whatever is in flight should stop.
			ss.cancel()
			return
		}
		s.m.framesRead.Inc()
		select {
		case ss.frames <- frame{payload: payload, read: readAt}:
		case <-ss.ctx.Done():
			return
		}
	}
}

// write sends one response frame under the write deadline. A false
// return means the connection is unusable and the session should end.
func (ss *session) write(resp proto.Response) bool {
	ss.conn.SetWriteDeadline(time.Now().Add(ss.srv.opts.WriteTimeout))
	if err := proto.WriteMessage(ss.bw, resp); err != nil {
		return false
	}
	if err := ss.bw.Flush(); err != nil {
		return false
	}
	ss.srv.m.framesSent.Inc()
	return true
}

// handle dispatches one request and produces its response. When the
// request asks for timing, the response carries the server-side latency
// attribution: queue time (frame read to dispatch) is measured here, the
// parse/plan/prune/scan/serialize phases are filled in along the
// execution path, and TotalUS closes over everything just before the
// response goes back.
func (ss *session) handle(fr frame) proto.Response {
	s := ss.srv
	var req proto.Request
	if err := json.Unmarshal(fr.payload, &req); err != nil {
		s.m.failure(proto.ErrKindBadOp)
		if s.log != nil {
			s.log.Warn("bad request frame", "conn", ss.id, "err", err)
		}
		return errResp(proto.ErrKindBadOp, "bad request frame: "+err.Error())
	}
	s.m.request(req.Op)
	s.m.inflight.Add(1)
	t0 := time.Now()
	var tm *proto.Timing
	if req.WantTiming {
		tm = &proto.Timing{TraceID: req.TraceID, QueueUS: t0.Sub(fr.read).Microseconds()}
	}
	ctx := ss.ctx
	if req.TraceID != "" {
		// Tag the query's span tree with the client's trace ID so the
		// client can find "its" queries in /traces.
		ctx = obs.WithTrace(ctx, req.TraceID)
	}
	defer func() {
		s.m.latency.Observe(time.Since(t0).Seconds())
		s.m.inflight.Add(-1)
	}()
	resp := ss.dispatch(ctx, &req, tm)
	if tm != nil {
		tm.TotalUS = time.Since(fr.read).Microseconds()
		resp.Timing = tm
	}
	return resp
}

// dispatch routes one decoded request to its operation.
func (ss *session) dispatch(ctx context.Context, req *proto.Request, tm *proto.Timing) proto.Response {
	s := ss.srv
	switch req.Op {
	case proto.OpPing:
		return proto.Response{OK: true}
	case proto.OpCatalog:
		return proto.Response{OK: true, Tables: s.db.TableNames()}
	case proto.OpQuery:
		if resp, refused := s.gate(); refused {
			return resp
		}
		return ss.query(ctx, req.SQL, tm)
	case proto.OpPrepare:
		return ss.prepare(req.SQL)
	case proto.OpInsert:
		if resp, refused := s.gate(); refused {
			return resp
		}
		return ss.insert(req)
	case proto.OpExec:
		if resp, refused := s.gate(); refused {
			return resp
		}
		ent, ok := s.cache.getID(req.Stmt)
		if !ok {
			s.m.failure(proto.ErrKindNoStmt)
			return errResp(proto.ErrKindNoStmt,
				fmt.Sprintf("unknown prepared statement %d (never prepared, or evicted — prepare again)", req.Stmt))
		}
		s.m.cacheHits.Inc()
		return ss.exec(obs.WithPlanCached(ctx), ent, tm)
	default:
		s.m.failure(proto.ErrKindBadOp)
		return errResp(proto.ErrKindBadOp, "unknown op "+strconv.Quote(req.Op))
	}
}

// gate implements the two admission gates in front of query, exec, and
// insert traffic. While the DB is replaying its write-ahead log the
// store is not yet consistent, so all data-touching ops are answered
// with a retryable "recovering" error — the server accepts connections
// during replay precisely so clients can park in a retry loop instead
// of failing over. After recovery, the load-shedding gate applies: when
// RefuseOnCritical is set and the DB's health monitor is in critical
// burn on a shed-eligible objective, traffic is answered with a
// retryable unavailable error (ShedStatus, not HealthStatus: a
// skip_regression alert means pruning decayed, not overload, and must
// never turn into refused queries). Both checks are one atomic load, so
// the healthy path pays nothing measurable. Ping, catalog, and prepare
// bypass both gates — load balancers keep probing and clients keep
// their statements warm.
func (s *Server) gate() (proto.Response, bool) {
	if s.db.Recovering() {
		s.m.recovering.Inc()
		s.m.failure(proto.ErrKindRecovering)
		return errResp(proto.ErrKindRecovering,
			"server recovering: WAL replay in progress; retry shortly"), true
	}
	if !s.opts.RefuseOnCritical || s.db.ShedStatus() != adskip.HealthCritical {
		return proto.Response{}, false
	}
	s.m.rejected.Inc()
	s.m.failure(proto.ErrKindUnavailable)
	return errResp(proto.ErrKindUnavailable,
		"server refusing queries: health status critical (SLO burn); retry after recovery"), true
}

// insert appends req.Rows to req.Table. Cells are decoded against the
// table schema positionally — json.Number text straight to int64 for
// BIGINT columns (never through float64, so large keys round-trip
// losslessly), null for NULL. The whole batch is one engine append: on a
// durable DB the response is written only after the batch's WAL record
// is fsynced, so an acked insert survives kill -9.
func (ss *session) insert(req *proto.Request) proto.Response {
	s := ss.srv
	tbl, err := s.db.Table(req.Table)
	if err != nil {
		s.m.failure(proto.ErrKindNoTable)
		return errResp(proto.ErrKindNoTable, err.Error())
	}
	if len(req.Rows) == 0 {
		return proto.Response{OK: true}
	}
	schema := tbl.Executor().Table().Schema()
	rows := make([][]storage.Value, len(req.Rows))
	for i, raw := range req.Rows {
		if len(raw) != len(schema) {
			s.m.failure(proto.ErrKindBadInsert)
			return errResp(proto.ErrKindBadInsert,
				fmt.Sprintf("row %d has %d cells, table %q has %d columns", i, len(raw), req.Table, len(schema)))
		}
		vals := make([]storage.Value, len(raw))
		for j, cell := range raw {
			v, err := decodeCell(cell, schema[j].Type)
			if err != nil {
				s.m.failure(proto.ErrKindBadInsert)
				return errResp(proto.ErrKindBadInsert,
					fmt.Sprintf("row %d column %q: %v", i, schema[j].Name, err))
			}
			vals[j] = v
		}
		rows[i] = vals
	}
	if err := tbl.AppendBatch(rows); err != nil {
		s.m.failure(proto.ErrKindInternal)
		return errResp(proto.ErrKindInternal, "append: "+err.Error())
	}
	s.m.rowsInserted.Add(int64(len(rows)))
	return proto.Response{OK: true, Inserted: len(rows)}
}

// decodeCell decodes one JSON scalar against a column type.
func decodeCell(raw json.RawMessage, t storage.Type) (storage.Value, error) {
	if v := string(raw); v == "null" {
		return storage.NullValue(t), nil
	}
	switch t {
	case storage.Int64:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return storage.Value{}, fmt.Errorf("want BIGINT, got %s", raw)
		}
		i, err := n.Int64()
		if err != nil {
			return storage.Value{}, fmt.Errorf("not an int64: %s", raw)
		}
		return storage.IntValue(i), nil
	case storage.Float64:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return storage.Value{}, fmt.Errorf("want DOUBLE, got %s", raw)
		}
		f, err := n.Float64()
		if err != nil {
			return storage.Value{}, fmt.Errorf("not a float64: %s", raw)
		}
		return storage.FloatValue(f), nil
	case storage.String:
		var str string
		if err := json.Unmarshal(raw, &str); err != nil {
			return storage.Value{}, fmt.Errorf("want VARCHAR, got %s", raw)
		}
		return storage.StringValue(str), nil
	default:
		return storage.Value{}, fmt.Errorf("unsupported column type %v", t)
	}
}

// query executes SQL text. Hot statements hit the prepared-statement
// cache even when the client never prepared them: the cache key is the
// SQL text, so repeated templates skip the parser and planner entirely —
// a cache hit legitimately reports parse_us = plan_us = 0.
func (ss *session) query(ctx context.Context, sqlText string, tm *proto.Timing) proto.Response {
	s := ss.srv
	if ent, ok := s.cache.get(sqlText); ok {
		s.m.cacheHits.Inc()
		return ss.exec(obs.WithPlanCached(ctx), ent, tm)
	}
	s.m.cacheMisses.Inc()
	tParse := time.Now()
	stmt, err := sqlpkg.Parse(sqlText)
	if tm != nil {
		tm.ParseUS = time.Since(tParse).Microseconds()
	}
	if err != nil {
		s.m.failure(proto.ErrKindSyntax)
		return errResp(proto.ErrKindSyntax, err.Error())
	}
	tbl, err := s.db.Table(stmt.Table)
	if err != nil {
		s.m.failure(proto.ErrKindNoTable)
		return errResp(proto.ErrKindNoTable, err.Error())
	}
	eng := tbl.Executor()
	if stmt.Explain {
		// EXPLAIN goes through the sql layer (it renders plan text) and
		// is not worth caching.
		res, err := sqlpkg.ExecParsedContext(ctx, eng, stmt)
		if err != nil {
			return ss.execFailure(err)
		}
		return okResult(s.m, res, tm)
	}
	tPlan := time.Now()
	q, err := sqlpkg.Plan(stmt, eng.Table())
	if tm != nil {
		tm.PlanUS = time.Since(tPlan).Microseconds()
	}
	if err != nil {
		s.m.failure(proto.ErrKindSyntax)
		return errResp(proto.ErrKindSyntax, err.Error())
	}
	ent, evicted := s.cache.put(&stmtEntry{sqlText: sqlText, fp: sqlpkg.Fingerprint(stmt), id: s.nextStmt.Add(1), eng: eng, q: q})
	s.cacheAccount(evicted)
	return ss.exec(ctx, ent, tm)
}

// prepare parses and plans once, returning a statement ID for exec.
func (ss *session) prepare(sqlText string) proto.Response {
	s := ss.srv
	if ent, ok := s.cache.get(sqlText); ok {
		s.m.cacheHits.Inc()
		return proto.Response{OK: true, Stmt: ent.id}
	}
	s.m.cacheMisses.Inc()
	stmt, err := sqlpkg.Parse(sqlText)
	if err != nil {
		s.m.failure(proto.ErrKindSyntax)
		return errResp(proto.ErrKindSyntax, err.Error())
	}
	if stmt.Explain {
		s.m.failure(proto.ErrKindSyntax)
		return errResp(proto.ErrKindSyntax, "cannot prepare an EXPLAIN statement")
	}
	tbl, err := s.db.Table(stmt.Table)
	if err != nil {
		s.m.failure(proto.ErrKindNoTable)
		return errResp(proto.ErrKindNoTable, err.Error())
	}
	q, err := sqlpkg.Plan(stmt, tbl.Executor().Table())
	if err != nil {
		s.m.failure(proto.ErrKindSyntax)
		return errResp(proto.ErrKindSyntax, err.Error())
	}
	ent, evicted := s.cache.put(&stmtEntry{sqlText: sqlText, fp: sqlpkg.Fingerprint(stmt), id: s.nextStmt.Add(1), eng: tbl.Executor(), q: q})
	s.cacheAccount(evicted)
	return proto.Response{OK: true, Stmt: ent.id}
}

// exec runs a cached plan under the request context (derived from the
// session context, so disconnects cancel it) and wire-encodes the
// result. The entry's fingerprint is stamped on the context so workload
// analytics attribute the execution to its template — the statement
// cache and the workload table thereby share keys.
func (ss *session) exec(ctx context.Context, ent *stmtEntry, tm *proto.Timing) proto.Response {
	if ent.fp != "" {
		ctx = obs.WithTemplate(ctx, ent.fp)
	}
	res, err := ent.eng.QueryContext(ctx, ent.q)
	if err != nil {
		return ss.execFailure(err)
	}
	return okResult(ss.srv.m, res, tm)
}

// execFailure maps an execution error to its stable wire kind.
func (ss *session) execFailure(err error) proto.Response {
	kind := proto.ErrKindInternal
	switch {
	case errors.Is(err, engine.ErrCanceled):
		kind = proto.ErrKindCanceled
	case errors.Is(err, engine.ErrBudget):
		kind = proto.ErrKindBudget
	}
	ss.srv.m.failure(kind)
	return errResp(kind, err.Error())
}

// cacheAccount charges evictions from one cache insert and refreshes the
// size gauge.
func (s *Server) cacheAccount(evicted int) {
	if evicted > 0 {
		s.m.cacheEvictions.Add(int64(evicted))
	}
	s.m.cacheEntries.Set(int64(s.cache.size()))
}

// okResult wire-encodes a successful result and, when timing was
// requested, fills in the engine-attributed phases from the query's
// trace plus the serialization cost measured here.
func okResult(m *srvMetrics, res *engine.Result, tm *proto.Timing) proto.Response {
	tSer := time.Now()
	raw, err := json.Marshal(res)
	if err != nil {
		m.failure(proto.ErrKindInternal)
		return errResp(proto.ErrKindInternal, "encode result: "+err.Error())
	}
	if tm != nil {
		tm.SerializeUS = time.Since(tSer).Microseconds()
		if tr := res.Trace; tr != nil {
			tm.PlanUS += tr.Plan.Microseconds()
			tm.ShardPruneUS = tr.ShardPrune.Microseconds()
			tm.PruneUS = tr.Probe.Microseconds()
			tm.ScanUS = (tr.Scan + tr.Feedback).Microseconds()
			tm.RowsSkipped = int64(tr.RowsSkipped)
		}
	}
	return proto.Response{OK: true, Result: raw}
}

func errResp(kind, msg string) proto.Response {
	return proto.Response{Error: msg, ErrKind: kind}
}

// countReader / countWriter charge transport bytes to a counter per
// syscall-sized chunk (they sit under the bufio layer, not per byte).
type countReader struct {
	r io.Reader
	n *obs.Counter
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

type countWriter struct {
	w io.Writer
	n *obs.Counter
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
