package server

import (
	"container/list"
	"sync"

	"adskip/internal/engine"
	"adskip/internal/sql"
)

// stmtEntry is one cached prepared statement: the SQL text it was built
// from, the executor it binds to (an engine, or a shard manager on a
// sharded DB), and the planned query. Planning resolves
// columns by name, so a cached plan stays valid across appends; schema
// is immutable per table, so it cannot go stale.
type stmtEntry struct {
	sqlText string
	fp      string // query fingerprint; workload attribution key
	id      uint64
	eng     sql.Executor
	q       engine.Query
}

// stmtCache is the server-wide prepared-statement cache: an LRU keyed by
// SQL text, with a secondary index by statement ID for the exec op. It
// is shared across sessions so a hot query template parsed by one
// connection is a cache hit for every other. Plain "query" requests
// consult it too — the cache is what lets hot point/range templates skip
// the parser entirely, whether or not the client bothered to prepare.
type stmtCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *stmtEntry
	bySQL map[string]*list.Element
	byID  map[uint64]*list.Element
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{
		max:   max,
		order: list.New(),
		bySQL: make(map[string]*list.Element),
		byID:  make(map[uint64]*list.Element),
	}
}

// get returns the entry for sqlText, promoting it to most recently used.
func (c *stmtCache) get(sqlText string) (*stmtEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.bySQL[sqlText]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*stmtEntry), true
}

// getID returns the entry for a prepared-statement ID, promoting it. A
// miss means the ID was never issued or its entry was evicted; the
// client must re-prepare.
func (c *stmtCache) getID(id uint64) (*stmtEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*stmtEntry), true
}

// put inserts an entry, evicting from the LRU tail if the cache is full,
// and reports how many entries were evicted by this insert. If the SQL
// text is already cached (raced by two sessions), the existing entry
// wins and is returned, keeping IDs stable.
func (c *stmtCache) put(ent *stmtEntry) (*stmtEntry, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.bySQL[ent.sqlText]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*stmtEntry), 0
	}
	evicted := 0
	for c.order.Len() >= c.max {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		old := tail.Value.(*stmtEntry)
		c.order.Remove(tail)
		delete(c.bySQL, old.sqlText)
		delete(c.byID, old.id)
		evicted++
	}
	el := c.order.PushFront(ent)
	c.bySQL[ent.sqlText] = el
	c.byID[ent.id] = el
	return ent, evicted
}

// size reports the current entry count.
func (c *stmtCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
