package server

import (
	"sync"

	"adskip/internal/obs"
)

// srvMetrics holds the server's metric handles, resolved once at startup
// against the DB's registry — so they surface on the same /metrics
// endpoint as the engine and telemetry counters, with no extra plumbing.
type srvMetrics struct {
	reg *obs.Registry

	connsTotal  *obs.Counter // connections accepted over the server's life
	connsActive *obs.Gauge   // connections currently open
	framesRead  *obs.Counter
	framesSent  *obs.Counter
	bytesRead   *obs.Counter
	bytesSent   *obs.Counter

	inflight *obs.Gauge     // requests currently executing
	latency  *obs.Histogram // request wall-clock seconds, all ops
	rejected *obs.Counter   // queries refused during critical health burn
	// recovering counts requests refused because the DB was still
	// replaying its WAL; rowsInserted counts rows appended via OpInsert.
	recovering   *obs.Counter
	rowsInserted *obs.Counter

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge

	// Per-op request counters and per-kind error counters are resolved
	// lazily (ops and error kinds form small closed sets, but lazily keeps
	// the table in one place) and cached so the hot path stays a map read
	// under RLock plus an atomic add.
	mu       sync.RWMutex
	requests map[string]*obs.Counter
	errors   map[string]*obs.Counter
}

func newSrvMetrics(reg *obs.Registry) *srvMetrics {
	return &srvMetrics{
		reg:            reg,
		connsTotal:     reg.Counter("adskip_server_connections_total", "Client connections accepted."),
		connsActive:    reg.Gauge("adskip_server_active_connections", "Client connections currently open."),
		framesRead:     reg.Counter("adskip_server_frames_read_total", "Protocol frames read from clients."),
		framesSent:     reg.Counter("adskip_server_frames_written_total", "Protocol frames written to clients."),
		bytesRead:      reg.Counter("adskip_server_bytes_read_total", "Bytes read from client connections."),
		bytesSent:      reg.Counter("adskip_server_bytes_written_total", "Bytes written to client connections."),
		inflight:       reg.Gauge("adskip_server_inflight_requests", "Requests currently executing."),
		latency:        reg.Histogram("adskip_server_request_seconds", "Request wall-clock latency, all ops.", obs.LatencyBuckets()),
		rejected:       reg.Counter("adskip_server_rejected_total", "Queries refused while health status was critical."),
		recovering:     reg.Counter("adskip_server_recovering_rejected_total", "Requests refused while WAL recovery was in progress."),
		rowsInserted:   reg.Counter("adskip_server_rows_inserted_total", "Rows appended via the insert op."),
		cacheHits:      reg.Counter("adskip_server_stmt_cache_hits_total", "Requests served from the prepared-statement cache."),
		cacheMisses:    reg.Counter("adskip_server_stmt_cache_misses_total", "Requests that had to parse and plan."),
		cacheEvictions: reg.Counter("adskip_server_stmt_cache_evictions_total", "Prepared statements evicted by the LRU."),
		cacheEntries:   reg.Gauge("adskip_server_stmt_cache_entries", "Prepared statements currently cached."),
		requests:       make(map[string]*obs.Counter),
		errors:         make(map[string]*obs.Counter),
	}
}

// request bumps the per-op request counter.
func (m *srvMetrics) request(op string) {
	m.lazy(&m.requests, "adskip_server_requests_total", "Requests handled, by op.", "op", op).Inc()
}

// failure bumps the per-kind error counter.
func (m *srvMetrics) failure(kind string) {
	m.lazy(&m.errors, "adskip_server_request_errors_total", "Requests that returned an error, by kind.", "kind", kind).Inc()
}

func (m *srvMetrics) lazy(cache *map[string]*obs.Counter, name, help, key, val string) *obs.Counter {
	m.mu.RLock()
	c, ok := (*cache)[val]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = (*cache)[val]; ok {
		return c
	}
	c = m.reg.Counter(name, help, obs.L(key, val))
	(*cache)[val] = c
	return c
}
