package health

import (
	"testing"

	"adskip/internal/obs"
)

// The skip_regression signal follows the queue-depth shape (instantaneous
// value, max over a window) but is shed-exempt: it may turn /health red
// without ever refusing traffic.

func TestSkipRegressionSignalFires(t *testing.T) {
	obj := Objective{Signal: SignalSkipRegression, Threshold: 0.3}
	m, f := testObjectives(t, []Objective{obj}, testConfig())
	f.tick(nil)
	// Pruning at or above baseline: gap 0, nothing fires.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) { s.SkipRegression = 0 })
	}
	if m.Status() != SevOK {
		t.Fatalf("no regression: status = %v, want ok", m.Status())
	}
	// A template collapses half a skip-rate below its learned baseline —
	// well past the 0.3 objective, so ticks go bad and the signal fires.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) { s.SkipRegression = 0.5 })
	}
	if m.Status() != SevCritical {
		t.Fatalf("sustained regression: status = %v, want critical", m.Status())
	}
	// The window aggregate reports the worst gap seen, not an average.
	snap := m.Snapshot()
	if v := snap.Objectives[0].Windows[2].Value; v != 0.5 {
		t.Fatalf("long-window regression value = %v, want 0.5", v)
	}
}

// Warn-and-back: a shorter regression burst trips warning, then clears
// through ClearTicks hysteresis once pruning recovers.
func TestSkipRegressionWarnsAndClears(t *testing.T) {
	obj := Objective{Signal: SignalSkipRegression, Threshold: 0.3}
	m, f := testObjectives(t, []Objective{obj}, testConfig())
	f.tick(nil)
	for i := 0; i < 12; i++ {
		f.tick(func(s *obs.HistorySample) { s.SkipRegression = 0.01 })
	}
	if m.Status() != SevOK {
		t.Fatalf("tiny gap: status = %v, want ok", m.Status())
	}
	// Burst: climb at least to warning.
	for i := 0; i < 4 && m.Status() == SevOK; i++ {
		f.tick(func(s *obs.HistorySample) { s.SkipRegression = 0.8 })
	}
	if m.Status() == SevOK {
		t.Fatal("regression burst never left ok")
	}
	// Recovery: hysteresis holds the state for ClearTicks before any step
	// down, then the breach ages out of the windows entirely.
	f.tick(func(s *obs.HistorySample) { s.SkipRegression = 0 })
	if m.Status() == SevOK {
		t.Fatal("single good tick cleared the alert — hysteresis missing")
	}
	for i := 0; i < 30 && m.Status() != SevOK; i++ {
		f.tick(func(s *obs.HistorySample) { s.SkipRegression = 0 })
	}
	if m.Status() != SevOK {
		t.Fatalf("regression alert never resolved: %v", m.Status())
	}
	// The alert history recorded the round trip.
	hist := m.Alerts().History
	if len(hist) < 2 {
		t.Fatalf("alert history = %+v, want at least fire + clear", hist)
	}
	if hist[len(hist)-1].To != SevOK {
		t.Fatalf("final transition = %+v, want back to ok", hist[len(hist)-1])
	}
}

// A burning skip_regression objective must never raise the shed status:
// the breach means pruning quality degraded, not overload, so refusing
// traffic would only hide the evidence.
func TestSkipRegressionIsShedExempt(t *testing.T) {
	if !SignalSkipRegression.ShedExempt() {
		t.Fatal("SignalSkipRegression.ShedExempt() = false")
	}
	for _, sig := range []Signal{SignalLatencyP50, SignalLatencyP95, SignalErrorRate,
		SignalQueueDepth, SignalSkipRate, SignalWALLag} {
		if sig.ShedExempt() {
			t.Fatalf("%s.ShedExempt() = true, want false", sig)
		}
	}

	objs := []Objective{
		{Signal: SignalSkipRegression, Threshold: 0.3},
		{Signal: SignalQueueDepth, Threshold: 8},
	}
	m, f := testObjectives(t, objs, testConfig())
	f.tick(nil)
	// Only the exempt objective burns.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) {
			s.SkipRegression = 0.9
			s.QueueDepth = 1
		})
	}
	if m.Status() != SevCritical {
		t.Fatalf("overall status = %v, want critical (regression burning)", m.Status())
	}
	if m.ShedStatus() != SevOK {
		t.Fatalf("ShedStatus = %v, want ok — skip_regression must not shed load", m.ShedStatus())
	}
	// A shed-eligible objective burning must still raise the shed status.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) {
			s.SkipRegression = 0.9
			s.QueueDepth = 40
		})
	}
	if m.ShedStatus() != SevCritical {
		t.Fatalf("ShedStatus = %v, want critical once queue depth burns", m.ShedStatus())
	}
}
