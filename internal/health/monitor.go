package health

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"adskip/internal/obs"
)

// Monitor evaluates a set of Objectives against the adaptation timeline.
// It owns no goroutine: OnSample is meant to run inside an
// obs.Sampler.Subscribe callback, once per tick, and everything else
// (Status, Snapshot, Alerts) is a read. The monitor's clock is the
// sample timestamp, never the wall clock, so tests drive it with
// synthetic ticks and get deterministic transitions.
type Monitor struct {
	cfg      Config
	interval time.Duration
	bounds   []float64 // latency histogram bucket bounds
	shortT   int       // windows in ticks
	midT     int
	longT    int

	mu      sync.Mutex
	ticks   *tickRing
	objs    []*objState
	tickSeq uint64
	overall Severity
	since   time.Time

	alerts       []Transition // transition ring, newest at (alertNext-1)
	alertNext    int
	alertN       int
	alertTotal   uint64
	alertDropped uint64

	latScratch []int64

	// status mirrors overall for lock-free readers: the query server's
	// refuse-on-burn gate reads it per request. shedStatus is the same
	// aggregate restricted to shed-eligible objectives (signals whose
	// ShedExempt() is false) — the gate reads this one, so a metadata-
	// quality alert like skip_regression never refuses queries.
	status     atomic.Int32
	shedStatus atomic.Int32

	log *slog.Logger

	// Registry instrumentation (nil-safe: absent without a registry).
	reg         *obs.Registry
	statusGauge *obs.Gauge
	ticksTotal  *obs.Counter
	evalNanos   *obs.Counter
}

// objState is one objective's evaluation state.
type objState struct {
	obj   Objective
	bad   *badRing
	state Severity
	since time.Time
	clear int
	gauge *obs.Gauge
}

// Transition is one alert state change, retained in the bounded alert
// ring and served by /alerts.
type Transition struct {
	Time      time.Time `json:"time"`
	Objective string    `json:"objective"`
	Signal    Signal    `json:"signal"`
	From      Severity  `json:"from"`
	To        Severity  `json:"to"`
	// Value and Burn capture the short-window signal value and burn rate
	// at the moment of transition.
	Value float64 `json:"value"`
	Burn  float64 `json:"burn"`
}

// WindowStats is one objective's aggregate over one window.
type WindowStats struct {
	Window    string  `json:"window"`
	Value     float64 `json:"value"`
	Burn      float64 `json:"burn"`
	BadTicks  int     `json:"bad_ticks"`
	DataTicks int     `json:"data_ticks"`
}

// ObjectiveStatus is one objective's current state in a Snapshot.
type ObjectiveStatus struct {
	Name      string        `json:"name"`
	Signal    Signal        `json:"signal"`
	Threshold float64       `json:"threshold"`
	Budget    float64       `json:"budget"`
	State     Severity      `json:"state"`
	Since     time.Time     `json:"since"`
	Windows   []WindowStats `json:"windows"`
}

// Snapshot is the full health picture served by /health.
type Snapshot struct {
	Status     Severity          `json:"status"`
	Since      time.Time         `json:"since"`
	Ticks      uint64            `json:"ticks"`
	IntervalNS int64             `json:"interval_ns"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// AlertsSnapshot is the /alerts payload: currently firing objectives
// plus the retained transition history, oldest-first.
type AlertsSnapshot struct {
	Active  []ObjectiveStatus `json:"active"`
	History []Transition      `json:"history"`
	Total   uint64            `json:"total"`
	Dropped uint64            `json:"dropped"`
}

// New builds a monitor for the given objectives over a tick stream of
// the given interval. reg and log are optional (nil disables metric
// gauges and transition logging respectively). Objectives with an
// unknown signal are rejected.
func New(objectives []Objective, interval time.Duration, cfg Config, reg *obs.Registry, log *slog.Logger) (*Monitor, error) {
	if len(objectives) == 0 {
		return nil, fmt.Errorf("health: no objectives")
	}
	if interval <= 0 {
		interval = obs.DefaultSampleInterval
	}
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:      cfg,
		interval: interval,
		bounds:   obs.LatencyBuckets(),
		shortT:   windowTicks(cfg.Short, interval),
		midT:     windowTicks(cfg.Mid, interval),
		longT:    windowTicks(cfg.Long, interval),
		alerts:   make([]Transition, cfg.AlertRingSize),
		log:      log,
		reg:      reg,
	}
	m.ticks = newTickRing(m.longT + 1)
	m.latScratch = make([]int64, len(m.bounds)+1)
	for _, o := range objectives {
		if !o.Signal.valid() {
			return nil, fmt.Errorf("health: objective %q: unknown signal %q", o.Name, o.Signal)
		}
		if o.Name == "" {
			o.Name = string(o.Signal)
		}
		if o.Budget <= 0 {
			o.Budget = DefaultBudget
		}
		os := &objState{obj: o, bad: newBadRing(m.longT)}
		if reg != nil {
			os.gauge = reg.Gauge("adskip_objective_state",
				"Objective alert state: 0 ok, 1 warning, 2 critical.",
				obs.L("objective", o.Name))
		}
		m.objs = append(m.objs, os)
	}
	if reg != nil {
		m.statusGauge = reg.Gauge("adskip_health_status",
			"Overall health: 0 ok, 1 warning, 2 critical (503 on /health).")
		m.ticksTotal = reg.Counter("adskip_health_ticks_total",
			"Health evaluation ticks performed.")
		m.evalNanos = reg.Counter("adskip_health_eval_nanos_total",
			"Cumulative nanoseconds spent evaluating objectives.")
	}
	return m, nil
}

// windowTicks converts a window duration to whole ticks (minimum one).
func windowTicks(w, interval time.Duration) int {
	t := int((w + interval/2) / interval)
	if t < 1 {
		t = 1
	}
	return t
}

// Status returns the overall severity without locking.
func (m *Monitor) Status() Severity { return Severity(m.status.Load()) }

// ShedStatus returns the overall severity over shed-eligible objectives
// only — every objective except those on shed-exempt signals (see
// Signal.ShedExempt). This is the status the query server's
// refuse-on-critical gate should consult: a skip_regression alert means
// pruning got worse, not that the server is drowning, and shedding load
// for it would manufacture an outage out of an efficiency report.
func (m *Monitor) ShedStatus() Severity { return Severity(m.shedStatus.Load()) }

// Interval returns the tick interval the monitor was built for.
func (m *Monitor) Interval() time.Duration { return m.interval }

// OnSample ingests one timeline tick and re-evaluates every objective.
// It is the obs.Sampler.Subscribe callback: it copies what it needs from
// the sample before returning.
func (m *Monitor) OnSample(s *obs.HistorySample) {
	t0 := time.Now()
	m.mu.Lock()
	m.ticks.push(s)
	m.tickSeq++
	if m.tickSeq == 1 {
		// First tick is the baseline: deltas need two points.
		m.since = s.Time
		m.mu.Unlock()
		m.noteEval(t0)
		return
	}
	overall, shed := SevOK, SevOK
	for _, os := range m.objs {
		m.evalObjective(os, s.Time)
		if os.state > overall {
			overall = os.state
		}
		if !os.obj.Signal.ShedExempt() && os.state > shed {
			shed = os.state
		}
	}
	m.shedStatus.Store(int32(shed))
	if overall != m.overall {
		m.overall = overall
		m.since = s.Time
		m.status.Store(int32(overall))
		if m.statusGauge != nil {
			m.statusGauge.Set(int64(overall))
		}
		if m.log != nil {
			m.log.Info("health status changed", "status", overall.String())
		}
	}
	m.mu.Unlock()
	m.noteEval(t0)
}

// noteEval charges the tick's evaluation cost to the registry.
func (m *Monitor) noteEval(t0 time.Time) {
	if m.ticksTotal != nil {
		m.ticksTotal.Inc()
		m.evalNanos.Add(time.Since(t0).Nanoseconds())
	}
}

// evalObjective pushes the newest tick's verdict and runs the burn-rate
// state machine for one objective. Caller holds m.mu.
func (m *Monitor) evalObjective(os *objState, now time.Time) {
	verdict := int8(-1)
	value, ok := m.windowValue(os.obj.Signal, 1)
	if ok {
		verdict = 0
		if breaches(os.obj, value) {
			verdict = 1
		}
	}
	os.bad.push(verdict)

	burnS := m.burn(os, m.shortT)
	burnM := m.burn(os, m.midT)
	burnL := m.burn(os, m.longT)
	raw := SevOK
	switch {
	case burnS >= m.cfg.CritBurn && burnM >= m.cfg.CritBurn:
		raw = SevCritical
	case burnM >= m.cfg.WarnBurn && burnL >= m.cfg.WarnBurn:
		raw = SevWarning
	}

	// Escalation is immediate; de-escalation needs ClearTicks consecutive
	// ticks below the held state (hysteresis against flapping).
	next := os.state
	if raw >= os.state {
		os.clear = 0
		next = raw
	} else {
		os.clear++
		if os.clear >= m.cfg.ClearTicks {
			os.clear = 0
			next = raw
		}
	}
	if next == os.state {
		return
	}
	m.transition(os, next, now, value, burnS)
}

// transition applies a state change: alert ring, metrics, log. Caller
// holds m.mu.
func (m *Monitor) transition(os *objState, next Severity, now time.Time, value, burn float64) {
	tr := Transition{
		Time:      now,
		Objective: os.obj.Name,
		Signal:    os.obj.Signal,
		From:      os.state,
		To:        next,
		Value:     value,
		Burn:      burn,
	}
	m.alerts[m.alertNext] = tr
	m.alertNext = (m.alertNext + 1) % len(m.alerts)
	if m.alertN < len(m.alerts) {
		m.alertN++
	} else {
		m.alertDropped++
	}
	m.alertTotal++

	os.state = next
	os.since = now
	if os.gauge != nil {
		os.gauge.Set(int64(next))
	}
	if m.reg != nil {
		m.reg.Counter("adskip_health_transitions_total",
			"Objective alert transitions by target state.",
			obs.L("objective", os.obj.Name), obs.L("to", next.String())).Inc()
	}
	if m.log != nil {
		lvl, msg := slog.LevelInfo, "alert resolved"
		switch {
		case next == SevCritical:
			lvl, msg = slog.LevelError, "alert firing"
		case next > tr.From:
			lvl, msg = slog.LevelWarn, "alert firing"
		}
		m.log.Log(context.Background(), lvl, msg,
			"objective", os.obj.Name, "signal", string(os.obj.Signal),
			"from", tr.From.String(), "to", next.String(),
			"value", value, "burn", burn, "threshold", os.obj.Threshold)
	}
}

// breaches reports whether value violates the objective's threshold.
func breaches(o Objective, value float64) bool {
	if o.Signal.LowerIsBad() {
		return value < o.Threshold
	}
	return value > o.Threshold
}

// burn returns the objective's burn rate over the last w ticks: the
// fraction of bad ticks divided by the error budget. The denominator is
// the full window even before it has filled, so a cold monitor (or an
// idle stretch, whose no-data ticks are not bad) burns conservatively.
func (m *Monitor) burn(os *objState, w int) float64 {
	bad, _ := os.bad.counts(w)
	return float64(bad) / (float64(w) * os.obj.Budget)
}

// windowValue computes one signal aggregated over the last w ticks.
// Caller holds m.mu. ok is false when the window carries no data for the
// signal (no queries completed, no rows probed).
func (m *Monitor) windowValue(sig Signal, w int) (value float64, ok bool) {
	now, then, have := m.ticks.span(w)
	if !have {
		return 0, false
	}
	switch sig {
	case SignalLatencyP50, SignalLatencyP95:
		if len(now.buckets) != len(m.latScratch) {
			return 0, false
		}
		// A shorter (or absent) baseline histogram means those counters
		// were still zero at that tick — cumulative counts start at 0.
		var total int64
		for i := range m.latScratch {
			d := now.buckets[i]
			if i < len(then.buckets) {
				d -= then.buckets[i]
			}
			m.latScratch[i] = d
			total += d
		}
		if total <= 0 {
			return 0, false
		}
		q := 0.50
		if sig == SignalLatencyP95 {
			q = 0.95
		}
		return obs.QuantileFromBuckets(m.bounds, m.latScratch, q), true
	case SignalErrorRate:
		errs := now.errors - then.errors
		attempts := (now.queries - then.queries) + errs
		if attempts <= 0 {
			return 0, false
		}
		return float64(errs) / float64(attempts), true
	case SignalSkipRate:
		skipped := now.skipped - then.skipped
		probed := skipped + (now.scanned - then.scanned)
		if probed <= 0 {
			return 0, false
		}
		return float64(skipped) / float64(probed), true
	case SignalQueueDepth:
		// Instantaneous for the per-tick verdict; the window aggregate is
		// the maximum depth seen, which is what an operator wants to know.
		if w <= 1 {
			return float64(now.queue), true
		}
		if w > m.ticks.n-1 {
			w = m.ticks.n - 1
		}
		max := int64(0)
		for back := 0; back < w; back++ {
			if q := m.ticks.at(back).queue; q > max {
				max = q
			}
		}
		return float64(max), true
	case SignalWALLag:
		// Like queue depth: instantaneous per-tick verdict, max over the
		// window for the aggregate an operator reads.
		if w <= 1 {
			return now.walLag, true
		}
		if w > m.ticks.n-1 {
			w = m.ticks.n - 1
		}
		max := 0.0
		for back := 0; back < w; back++ {
			if lag := m.ticks.at(back).walLag; lag > max {
				max = lag
			}
		}
		return max, true
	case SignalSkipRegression:
		// Instantaneous like queue depth: the stats layer already smooths
		// the series (fast vs slow EWMA), so the per-tick verdict reads the
		// tick's value and the window aggregate is the worst gap seen.
		if w <= 1 {
			return now.skipReg, true
		}
		if w > m.ticks.n-1 {
			w = m.ticks.n - 1
		}
		max := 0.0
		for back := 0; back < w; back++ {
			if g := m.ticks.at(back).skipReg; g > max {
				max = g
			}
		}
		return max, true
	}
	return 0, false
}

// Snapshot returns the full health picture.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

func (m *Monitor) snapshotLocked() Snapshot {
	snap := Snapshot{
		Status:     m.overall,
		Since:      m.since,
		Ticks:      m.tickSeq,
		IntervalNS: int64(m.interval),
		Objectives: make([]ObjectiveStatus, 0, len(m.objs)),
	}
	for _, os := range m.objs {
		snap.Objectives = append(snap.Objectives, m.objectiveStatusLocked(os))
	}
	return snap
}

func (m *Monitor) objectiveStatusLocked(os *objState) ObjectiveStatus {
	st := ObjectiveStatus{
		Name:      os.obj.Name,
		Signal:    os.obj.Signal,
		Threshold: os.obj.Threshold,
		Budget:    os.obj.Budget,
		State:     os.state,
		Since:     os.since,
	}
	for _, w := range []struct {
		label string
		ticks int
	}{
		{m.cfg.Short.String(), m.shortT},
		{m.cfg.Mid.String(), m.midT},
		{m.cfg.Long.String(), m.longT},
	} {
		value, _ := m.windowValue(os.obj.Signal, w.ticks)
		bad, data := os.bad.counts(w.ticks)
		st.Windows = append(st.Windows, WindowStats{
			Window:    w.label,
			Value:     value,
			Burn:      m.burn(os, w.ticks),
			BadTicks:  bad,
			DataTicks: data,
		})
	}
	return st
}

// Alerts returns the currently firing objectives and the retained
// transition history, oldest-first.
func (m *Monitor) Alerts() AlertsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := AlertsSnapshot{
		Active:  []ObjectiveStatus{},
		History: make([]Transition, 0, m.alertN),
		Total:   m.alertTotal,
		Dropped: m.alertDropped,
	}
	for _, os := range m.objs {
		if os.state > SevOK {
			out.Active = append(out.Active, m.objectiveStatusLocked(os))
		}
	}
	for back := m.alertN - 1; back >= 0; back-- {
		idx := m.alertNext - 1 - back
		if idx < 0 {
			idx += len(m.alerts)
		}
		out.History = append(out.History, m.alerts[idx])
	}
	return out
}
