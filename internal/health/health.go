// Package health is the engine's SLO layer: it turns the raw adaptation
// timeline (obs.Sampler ticks) into service-level judgments an operator
// or load balancer can act on. Declarative Objectives ("p95 ≤ 5ms",
// "skip-rate ≥ 60%", "error rate ≤ 0.1%") are evaluated over
// multi-resolution rolling windows using Google-SRE-style multi-window
// burn rates, producing a per-objective alert state machine
// (ok → warning → critical) with hysteresis on the way back down.
//
// The package is stdlib-only and goroutine-free: a Monitor updates
// synchronously inside the sampler's Subscribe callback and uses the
// sample's own timestamp as its clock, so evaluation is deterministic
// under injected tick times and costs the query hot path nothing.
package health

import (
	"fmt"
	"strings"
	"time"
)

// Signal names one measurable series an Objective can target. Signals are
// derived per tick from the sampler's cumulative counters (deltas between
// consecutive ticks), except queue depth, which is instantaneous.
type Signal string

// The supported signals.
const (
	// SignalLatencyP50 is the median query latency (seconds) estimated
	// from the per-tick latency-histogram delta.
	SignalLatencyP50 Signal = "latency_p50"
	// SignalLatencyP95 is the tail query latency (seconds) estimated from
	// the per-tick latency-histogram delta.
	SignalLatencyP95 Signal = "latency_p95"
	// SignalErrorRate is failed queries / queries per tick (canceled,
	// over-budget, and recovered-panic queries count as failed).
	SignalErrorRate Signal = "error_rate"
	// SignalSkipRate is rows skipped / rows probed per tick — the paper's
	// core effectiveness measure; an Objective on it alerts when the
	// adaptive zonemaps stop pruning (higher is better).
	SignalSkipRate Signal = "skip_rate"
	// SignalQueueDepth is the number of queries waiting for admission at
	// tick time.
	SignalQueueDepth Signal = "queue_depth"
	// SignalWALLag is the age in seconds of the oldest write-ahead-log
	// record not yet fsynced, at tick time. A healthy group commit keeps
	// it under the commit window; sustained growth means the disk cannot
	// keep up and acknowledged-write latency is climbing.
	SignalWALLag Signal = "wal_lag"
	// SignalSkipRegression is the worst per-template skip-rate regression
	// at tick time: max over templates of (learned baseline − fast EWMA)
	// of the template's skip rate. Where skip_rate alerts on the absolute
	// level, skip_regression alerts on *decay relative to the template's
	// own history* — it fires when pruning that used to work stops
	// working (stale metadata after appends, merged-away zones,
	// arbitration flips), even on workloads whose natural skip rate would
	// never trip an absolute threshold. Instantaneous, like queue depth.
	// Requires workload stats (the signal reads per-template EWMAs).
	SignalSkipRegression Signal = "skip_regression"
)

// LowerIsBad reports the breach direction: skip rate breaches when it
// falls below its threshold, every other signal (including
// skip_regression, which measures a gap that grows as pruning decays)
// when it rises above.
func (s Signal) LowerIsBad() bool { return s == SignalSkipRate }

// ShedExempt reports whether the signal is exempt from load shedding.
// A skip_regression breach means pruning quality degraded, not that the
// server is overloaded — refusing queries would not relieve it (and
// would turn an efficiency alert into an availability incident). The
// query server's refuse-on-critical gate reads Monitor.ShedStatus,
// which skips exempt signals.
func (s Signal) ShedExempt() bool { return s == SignalSkipRegression }

// valid reports whether s is one of the supported signals.
func (s Signal) valid() bool {
	switch s {
	case SignalLatencyP50, SignalLatencyP95, SignalErrorRate, SignalSkipRate,
		SignalQueueDepth, SignalWALLag, SignalSkipRegression:
		return true
	}
	return false
}

// Objective is one declarative service-level objective. A tick is "bad"
// for the objective when its signal breaches Threshold; the objective
// burns error budget at the rate bad-ticks accrue.
type Objective struct {
	// Name identifies the objective in alerts, logs, and metrics.
	// Defaults to the signal name.
	Name string `json:"name"`
	// Signal selects the measured series.
	Signal Signal `json:"signal"`
	// Threshold is the breach boundary in the signal's native unit:
	// seconds for latency signals, a fraction in [0,1] for error and skip
	// rates, a count for queue depth. Skip rate breaches below the
	// threshold; everything else breaches above it.
	Threshold float64 `json:"threshold"`
	// Budget is the tolerated fraction of bad ticks per window (the SRE
	// error budget). Defaults to DefaultBudget.
	Budget float64 `json:"budget"`
}

// Severity is an objective's (or the whole service's) alert state.
type Severity int

// The alert states, in escalation order.
const (
	SevOK Severity = iota
	SevWarning
	SevCritical
)

// String returns the lowercase state name.
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return "ok"
	}
}

// MarshalJSON renders the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch strings.Trim(string(b), `"`) {
	case "ok":
		*s = SevOK
	case "warning":
		*s = SevWarning
	case "critical":
		*s = SevCritical
	default:
		return fmt.Errorf("health: unknown severity %s", b)
	}
	return nil
}

// Defaults for Config and Objective.
const (
	DefaultShortWindow = 10 * time.Second
	DefaultMidWindow   = time.Minute
	DefaultLongWindow  = 5 * time.Minute
	DefaultBudget      = 0.01
	// DefaultCritBurn and DefaultWarnBurn follow the SRE workbook's
	// multiwindow alert table: a 14.4× burn exhausts a 30-day budget in
	// ~2 days (page), a 6× burn in ~5 days (ticket).
	DefaultCritBurn   = 14.4
	DefaultWarnBurn   = 6.0
	DefaultClearTicks = 5
	DefaultAlertRing  = 128
)

// Config tunes the monitor; the zero value uses the defaults above.
type Config struct {
	// Short, Mid, and Long are the three rolling evaluation windows.
	// Critical requires the burn rate to exceed CritBurn on both the
	// short and mid windows (fast burn); warning requires WarnBurn on
	// both the mid and long windows (slow burn). Windows are converted to
	// whole ticks of the sampler interval (minimum one) and clamped to be
	// non-decreasing.
	Short, Mid, Long time.Duration
	// CritBurn and WarnBurn are the burn-rate thresholds described above.
	CritBurn, WarnBurn float64
	// ClearTicks is the hysteresis: an objective steps down only after
	// this many consecutive ticks at the lower raw severity, so a state
	// flap needs sustained recovery to resolve.
	ClearTicks int
	// AlertRingSize bounds the retained alert-transition history.
	AlertRingSize int
}

// withDefaults fills unset fields and clamps window ordering.
func (c Config) withDefaults() Config {
	if c.Short <= 0 {
		c.Short = DefaultShortWindow
	}
	if c.Mid <= 0 {
		c.Mid = DefaultMidWindow
	}
	if c.Long <= 0 {
		c.Long = DefaultLongWindow
	}
	if c.Mid < c.Short {
		c.Mid = c.Short
	}
	if c.Long < c.Mid {
		c.Long = c.Mid
	}
	if c.CritBurn <= 0 {
		c.CritBurn = DefaultCritBurn
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = DefaultWarnBurn
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = DefaultClearTicks
	}
	if c.AlertRingSize <= 0 {
		c.AlertRingSize = DefaultAlertRing
	}
	return c
}

// ParseWindows parses a "short,mid,long" duration triple (e.g.
// "10s,1m,5m") into the three Config windows. Used by command-line
// wiring; an empty string returns zero durations (defaults apply).
func ParseWindows(s string) (short, mid, long time.Duration, err error) {
	if s == "" {
		return 0, 0, 0, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("health: windows %q: want short,mid,long", s)
	}
	out := make([]time.Duration, 3)
	for i, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil || d <= 0 {
			return 0, 0, 0, fmt.Errorf("health: windows %q: bad duration %q", s, p)
		}
		out[i] = d
	}
	if out[0] > out[1] || out[1] > out[2] {
		return 0, 0, 0, fmt.Errorf("health: windows %q must be non-decreasing", s)
	}
	return out[0], out[1], out[2], nil
}
