package health

import (
	"time"

	"adskip/internal/obs"
)

// Window bookkeeping. The monitor retains one cumulative tickPoint per
// sampler tick in a bounded ring sized to the long window plus one, so
// any window's aggregate is the delta between the newest point and the
// point w ticks back — no per-window accumulators to keep in sync.

// tickPoint is the cumulative counter state at one sampler tick, plus
// the instantaneous queue depth.
type tickPoint struct {
	time    time.Time
	queries int64
	errors  int64
	skipped int64
	scanned int64
	queue   int64
	walLag  float64
	skipReg float64
	buckets []int64 // cumulative latency histogram; slot slice is reused
}

// tickRing is a bounded ring of tickPoints, newest-last.
type tickRing struct {
	buf  []tickPoint
	next int
	n    int
}

func newTickRing(capacity int) *tickRing {
	return &tickRing{buf: make([]tickPoint, capacity)}
}

// push copies s into the next ring slot, reusing the slot's bucket
// backing array so a warm ring allocates nothing per tick.
func (r *tickRing) push(s *obs.HistorySample) {
	slot := &r.buf[r.next]
	slot.time = s.Time
	slot.queries = s.Queries
	slot.errors = s.Errors
	slot.skipped = s.RowsSkipped
	slot.scanned = s.RowsScanned
	slot.queue = s.QueueDepth
	slot.walLag = s.WALLagSeconds
	slot.skipReg = s.SkipRegression
	slot.buckets = append(slot.buckets[:0], s.LatencyBuckets...)
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// at returns the point back ticks behind the newest (at(0) = newest).
// back must be < r.n.
func (r *tickRing) at(back int) *tickPoint {
	idx := r.next - 1 - back
	if idx < 0 {
		idx += len(r.buf)
	}
	return &r.buf[idx]
}

// span returns the newest point and the point w ticks behind it (clamped
// to the oldest retained), so the pair's deltas aggregate the last
// min(w, n-1) ticks. Returns false until two points exist.
func (r *tickRing) span(w int) (now, then *tickPoint, ok bool) {
	if r.n < 2 {
		return nil, nil, false
	}
	if w > r.n-1 {
		w = r.n - 1
	}
	return r.at(0), r.at(w), true
}

// badRing tracks one objective's per-tick verdicts: +1 bad, 0 good,
// -1 no data. Capacity is the long window.
type badRing struct {
	buf  []int8
	next int
	n    int
}

func newBadRing(capacity int) *badRing {
	return &badRing{buf: make([]int8, capacity)}
}

func (r *badRing) push(v int8) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// counts tallies bad and with-data ticks over the last w verdicts.
func (r *badRing) counts(w int) (bad, data int) {
	if w > r.n {
		w = r.n
	}
	for back := 0; back < w; back++ {
		idx := r.next - 1 - back
		if idx < 0 {
			idx += len(r.buf)
		}
		switch r.buf[idx] {
		case 1:
			bad++
			data++
		case 0:
			data++
		}
	}
	return bad, data
}
