package health

import (
	"encoding/json"
	"testing"
	"time"

	"adskip/internal/obs"
)

// The tests drive the monitor with synthetic ticks whose timestamps are
// injected, so every transition below is deterministic: no wall clock,
// no sampler goroutine.

const testInterval = time.Second

// testConfig uses small windows so burns move within a few ticks:
// short=2, mid=6, long=12 ticks at a 5% budget. With those numbers a
// tick pattern's burn rates are:
//
//	burn_short = bad(2)  / (2·0.05)  = 10.00 · bad(2)
//	burn_mid   = bad(6)  / (6·0.05)  =  3.33 · bad(6)
//	burn_long  = bad(12) / (12·0.05) =  1.67 · bad(12)
//
// so critical (burn ≥ 14.4 on short AND mid) needs ≥2 bad of the last 2
// and ≥5 of the last 6, while warning (burn ≥ 6 on mid AND long) needs
// ≥2 of the last 6 and ≥4 of the last 12.
func testConfig() Config {
	return Config{
		Short: 2 * time.Second, Mid: 6 * time.Second, Long: 12 * time.Second,
		ClearTicks: 3,
	}
}

func testObjectives(t *testing.T, objs []Objective, cfg Config) (*Monitor, *feeder) {
	t.Helper()
	for i := range objs {
		if objs[i].Budget == 0 {
			objs[i].Budget = 0.05
		}
	}
	m, err := New(objs, testInterval, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, &feeder{m: m, t: time.Unix(1700000000, 0)}
}

// feeder maintains the cumulative counter state and pushes one tick per
// call, advancing the injected clock by the tick interval.
type feeder struct {
	m *Monitor
	t time.Time
	s obs.HistorySample
}

// tick applies mut to the cumulative state and delivers one sample.
func (f *feeder) tick(mut func(*obs.HistorySample)) {
	if mut != nil {
		mut(&f.s)
	}
	f.t = f.t.Add(testInterval)
	s := f.s
	s.Time = f.t
	s.LatencyBuckets = append([]int64(nil), f.s.LatencyBuckets...)
	f.m.OnSample(&s)
}

// latBucket records n queries at the given latency into the cumulative
// histogram (bounds are obs.LatencyBuckets: 1µs…10s).
func latBucket(s *obs.HistorySample, seconds float64, n int64) {
	bounds := obs.LatencyBuckets()
	if len(s.LatencyBuckets) == 0 {
		s.LatencyBuckets = make([]int64, len(bounds)+1)
	}
	i := 0
	for i < len(bounds) && bounds[i] < seconds {
		i++
	}
	s.LatencyBuckets[i] += n
	s.Queries += n
}

func fastQueries(n int64) func(*obs.HistorySample) {
	return func(s *obs.HistorySample) { latBucket(s, 500e-6, n) } // ~0.5ms
}

func slowQueries(n int64) func(*obs.HistorySample) {
	return func(s *obs.HistorySample) { latBucket(s, 50e-3, n) } // ~50ms
}

// p95Objective: p95 ≤ 5ms.
func p95Objective() Objective {
	return Objective{Signal: SignalLatencyP95, Threshold: 5e-3}
}

func TestBurnRateEscalation(t *testing.T) {
	m, f := testObjectives(t, []Objective{p95Objective()}, testConfig())
	f.tick(nil) // baseline
	// Healthy traffic never leaves ok.
	for i := 0; i < 12; i++ {
		f.tick(fastQueries(10))
		if got := m.Status(); got != SevOK {
			t.Fatalf("tick %d healthy: status = %v, want ok", i, got)
		}
	}
	// Sustained breach: expect ok → warning (slow burn trips first: 4 bad
	// ticks satisfy mid+long at warn level) → critical (5th bad tick
	// lifts the mid burn past 14.4 with the short window saturated).
	states := []Severity{SevOK, SevOK, SevOK, SevWarning, SevCritical}
	for i, want := range states {
		f.tick(slowQueries(10))
		if got := m.Status(); got != want {
			t.Fatalf("bad tick %d: status = %v, want %v", i+1, got, want)
		}
	}
	snap := m.Snapshot()
	if snap.Status != SevCritical {
		t.Fatalf("snapshot status = %v, want critical", snap.Status)
	}
	obj := snap.Objectives[0]
	if obj.State != SevCritical || obj.Name != "latency_p95" {
		t.Fatalf("objective = %+v", obj)
	}
	if obj.Windows[0].Burn < 14.4 || obj.Windows[1].Burn < 14.4 {
		t.Fatalf("short/mid burns below critical: %+v", obj.Windows)
	}
}

func TestHysteresisClears(t *testing.T) {
	m, f := testObjectives(t, []Objective{p95Objective()}, testConfig())
	f.tick(nil)
	for i := 0; i < 5; i++ {
		f.tick(slowQueries(10))
	}
	if m.Status() != SevCritical {
		t.Fatalf("setup: status = %v, want critical", m.Status())
	}
	// One good tick drops the raw severity, but hysteresis holds the
	// state for ClearTicks(=3) consecutive clear ticks.
	f.tick(fastQueries(10))
	if m.Status() != SevCritical {
		t.Fatal("single good tick cleared critical — hysteresis missing")
	}
	f.tick(fastQueries(10))
	if m.Status() != SevCritical {
		t.Fatal("second good tick cleared critical — ClearTicks ignored")
	}
	f.tick(fastQueries(10)) // third consecutive clear tick: step down
	if m.Status() != SevWarning {
		t.Fatalf("after ClearTicks: status = %v, want warning", m.Status())
	}
	// Keep the traffic healthy until the bad ticks age out of the mid and
	// long windows and the warning clears too.
	for i := 0; i < 20 && m.Status() != SevOK; i++ {
		f.tick(fastQueries(10))
	}
	if m.Status() != SevOK {
		t.Fatalf("warning never resolved: %v", m.Status())
	}
	// The alert history must show the full round trip in order.
	hist := m.Alerts().History
	var seq []Severity
	for _, tr := range hist {
		seq = append(seq, tr.To)
	}
	want := []Severity{SevWarning, SevCritical, SevWarning, SevOK}
	if len(seq) != len(want) {
		t.Fatalf("history = %+v, want transitions to %v", hist, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (history %+v)", i, seq[i], want[i], hist)
		}
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Time.Before(hist[i-1].Time) {
			t.Fatal("history not oldest-first")
		}
	}
}

func TestIdleTicksAreNotBad(t *testing.T) {
	m, f := testObjectives(t, []Objective{p95Objective()}, testConfig())
	f.tick(nil)
	for i := 0; i < 30; i++ {
		f.tick(nil) // no queries at all
	}
	if m.Status() != SevOK {
		t.Fatalf("idle feed: status = %v, want ok", m.Status())
	}
	snap := m.Snapshot()
	if w := snap.Objectives[0].Windows[2]; w.DataTicks != 0 || w.BadTicks != 0 {
		t.Fatalf("idle ticks counted as data: %+v", w)
	}
}

func TestSkipRateLowerIsBad(t *testing.T) {
	obj := Objective{Signal: SignalSkipRate, Threshold: 0.6}
	m, f := testObjectives(t, []Objective{obj}, testConfig())
	f.tick(nil)
	// Healthy skipping: 90% of probed rows pruned.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) {
			s.RowsSkipped += 9000
			s.RowsScanned += 1000
		})
	}
	if m.Status() != SevOK {
		t.Fatalf("high skip rate: status = %v, want ok", m.Status())
	}
	// Skipping collapses: 10% pruned — below the 60% floor, so ticks go
	// bad and the objective must fire.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) {
			s.RowsSkipped += 1000
			s.RowsScanned += 9000
		})
	}
	if m.Status() != SevCritical {
		t.Fatalf("collapsed skip rate: status = %v, want critical", m.Status())
	}
}

func TestErrorRateSignal(t *testing.T) {
	obj := Objective{Signal: SignalErrorRate, Threshold: 0.01}
	m, f := testObjectives(t, []Objective{obj}, testConfig())
	f.tick(nil)
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) { s.Queries += 100 })
	}
	if m.Status() != SevOK {
		t.Fatalf("error-free: status = %v, want ok", m.Status())
	}
	// Half of all attempts failing blows a 1% error objective instantly.
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) {
			s.Queries += 50
			s.Errors += 50
		})
	}
	if m.Status() != SevCritical {
		t.Fatalf("50%% errors: status = %v, want critical", m.Status())
	}
	v, ok := m.windowValueForTest(SignalErrorRate, 1)
	if !ok || v != 0.5 {
		t.Fatalf("error rate = %v/%v, want 0.5", v, ok)
	}
}

func TestQueueDepthSignal(t *testing.T) {
	obj := Objective{Signal: SignalQueueDepth, Threshold: 8}
	m, f := testObjectives(t, []Objective{obj}, testConfig())
	f.tick(nil)
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) { s.QueueDepth = 2 })
	}
	if m.Status() != SevOK {
		t.Fatalf("shallow queue: status = %v, want ok", m.Status())
	}
	for i := 0; i < 6; i++ {
		f.tick(func(s *obs.HistorySample) { s.QueueDepth = 40 })
	}
	if m.Status() != SevCritical {
		t.Fatalf("deep queue: status = %v, want critical", m.Status())
	}
	// The window aggregate reports the max depth seen.
	snap := m.Snapshot()
	if v := snap.Objectives[0].Windows[2].Value; v != 40 {
		t.Fatalf("long-window queue value = %v, want 40", v)
	}
}

func TestUnknownSignalRejected(t *testing.T) {
	_, err := New([]Objective{{Signal: "nope", Threshold: 1}}, testInterval, Config{}, nil, nil)
	if err == nil {
		t.Fatal("unknown signal accepted")
	}
	if _, err := New(nil, testInterval, Config{}, nil, nil); err == nil {
		t.Fatal("empty objective list accepted")
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{SevOK, SevWarning, SevCritical} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Fatalf("round trip %v -> %s -> %v (%v)", s, b, back, err)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Fatal("bogus severity accepted")
	}
}

func TestParseWindows(t *testing.T) {
	short, mid, long, err := ParseWindows("2s,6s,20s")
	if err != nil || short != 2*time.Second || mid != 6*time.Second || long != 20*time.Second {
		t.Fatalf("ParseWindows = %v,%v,%v (%v)", short, mid, long, err)
	}
	if _, _, _, err := ParseWindows(""); err != nil {
		t.Fatalf("empty spec should be accepted: %v", err)
	}
	for _, bad := range []string{"1s", "1s,2s", "5s,2s,10s", "x,y,z", "1s,2s,3s,4s"} {
		if _, _, _, err := ParseWindows(bad); err == nil {
			t.Fatalf("ParseWindows(%q) accepted", bad)
		}
	}
}

// windowValueForTest exposes windowValue under the monitor lock.
func (m *Monitor) windowValueForTest(sig Signal, w int) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowValue(sig, w)
}

// BenchmarkMonitorTick measures the per-tick evaluation cost with three
// objectives — the number DESIGN §10 quotes. It runs entirely on the
// sampler goroutine in production, so this cost never touches a query.
func BenchmarkMonitorTick(b *testing.B) {
	objs := []Objective{
		{Signal: SignalLatencyP95, Threshold: 5e-3},
		{Signal: SignalErrorRate, Threshold: 0.01},
		{Signal: SignalSkipRate, Threshold: 0.5},
	}
	m, err := New(objs, time.Second, Config{}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	s := obs.HistorySample{
		Time:           time.Unix(1700000000, 0),
		LatencyBuckets: make([]int64, len(obs.LatencyBuckets())+1),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Time = s.Time.Add(time.Second)
		s.Queries += 100
		s.LatencyBuckets[3] += 100
		s.RowsSkipped += 90000
		s.RowsScanned += 10000
		m.OnSample(&s)
	}
}
