// Package proto defines the adskip wire protocol: the frame format and
// the request/response message shapes spoken between internal/server and
// internal/client. It is standard-library only and deliberately tiny —
// the protocol is a transport for SQL text and JSON results, not an RPC
// framework.
//
// # Framing
//
// Every message is one frame: a 4-byte big-endian unsigned length
// followed by that many bytes of JSON payload. The length covers the
// payload only. Both sides enforce a maximum frame size (server default
// 4 MiB); an over-limit length is a protocol error and the connection is
// torn down, so a corrupt or malicious peer cannot make the other side
// allocate unbounded memory.
//
// # Conversation
//
// The protocol is strict request/response: the client sends one request
// frame and reads exactly one response frame before sending the next.
// There is no pipelining. Closing the connection cancels whatever
// request is in flight on the server.
//
// # Requests
//
//	{"op":"query","sql":"SELECT ..."}   execute SQL, response carries a result
//	{"op":"prepare","sql":"SELECT ..."} parse+plan once, response carries a stmt id
//	{"op":"exec","stmt":7}              execute a prepared statement by id
//	{"op":"ping"}                       liveness probe
//	{"op":"catalog"}                    list tables (sorted)
//	{"op":"insert","table":"t","rows":[[...]]}  append rows, response carries "inserted"
//
// Any request may additionally carry "trace" (a client-generated trace
// ID the server tags the query's span tree with) and "timing" (true to
// request a server-side latency breakdown on the response). Both are
// optional: old clients omit them, old servers ignore them.
//
// # Responses
//
// Every response has "ok". Failures carry "error" (human-readable) and
// "error_kind" (stable machine tag, see ErrKind*). Successes carry the
// op-specific payload: "result" (a wire-encoded engine.Result, see
// engine.Result.MarshalJSON), "stmt", or "tables" — plus "timing" (a
// Timing breakdown) when the request asked for one.
package proto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Operations.
const (
	OpQuery   = "query"
	OpPrepare = "prepare"
	OpExec    = "exec"
	OpPing    = "ping"
	OpCatalog = "catalog"
	// OpInsert appends rows to a table: {"op":"insert","table":"t",
	// "rows":[[1,2.5,"x"],...]}. Cells are JSON scalars matched to the
	// table schema positionally (null for NULL). The response's "inserted"
	// carries the appended row count; on a durable server the response is
	// only sent after the rows are fsynced.
	OpInsert = "insert"
)

// Stable machine-readable error kinds carried in Response.ErrKind, so
// clients can classify failures without string matching.
const (
	ErrKindSyntax   = "syntax"   // SQL failed to parse or plan
	ErrKindCanceled = "canceled" // query canceled (context/connection)
	ErrKindBudget   = "budget"   // query exceeded a resource limit
	ErrKindNoTable  = "no_table" // unknown table
	ErrKindNoStmt   = "no_stmt"  // unknown or evicted prepared statement
	ErrKindBadOp    = "bad_op"   // unknown request op
	ErrKindInternal = "internal" // anything else
	ErrKindShutdown = "shutdown" // server is draining
	// ErrKindUnavailable means the server is alive but refusing query
	// traffic because a health objective is in critical burn (load
	// shedding). Retryable: back off and try again, or fail over.
	ErrKindUnavailable = "unavailable"
	// ErrKindRecovering means the server is alive but still replaying its
	// write-ahead log; queries and mutations are refused until the store
	// is consistent. Retryable: recovery completes on its own.
	ErrKindRecovering = "recovering"
	// ErrKindBadInsert means an insert payload did not match the table
	// schema (arity, type, or unparsable cell). Not retryable.
	ErrKindBadInsert = "bad_insert"
)

// MaxFrameDefault is the default maximum frame size (4 MiB): generous for
// result sets, small enough that a hostile length prefix cannot cause a
// damaging allocation.
const MaxFrameDefault = 4 << 20

// Request is one client request frame.
//
// TraceID and WantTiming are optional observability fields added after
// the first protocol release. Both sides tolerate their absence — an old
// client's frames simply carry neither, and an old server ignores them
// (unknown JSON fields are dropped on decode) — so mixed-version
// deployments keep working.
type Request struct {
	Op   string `json:"op"`
	SQL  string `json:"sql,omitempty"`
	Stmt uint64 `json:"stmt,omitempty"`
	// TraceID is an optional client-generated trace ID. The server tags
	// the query's span tree with it, so the client can find "its" query
	// in the server's /traces endpoint.
	TraceID string `json:"trace,omitempty"`
	// WantTiming asks the server to return a Timing breakdown on the
	// response. Off by default: the breakdown costs a few clock reads
	// and ~200 response bytes per request.
	WantTiming bool `json:"timing,omitempty"`
	// Table and Rows are the OpInsert payload: rows of JSON scalar cells
	// matched positionally to Table's schema. Raw messages so the server
	// can decode numbers losslessly against the column type instead of
	// through float64.
	Table string              `json:"table,omitempty"`
	Rows  [][]json.RawMessage `json:"rows,omitempty"`
}

// Response is one server response frame.
type Response struct {
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	ErrKind string          `json:"error_kind,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Stmt    uint64          `json:"stmt,omitempty"`
	Tables  []string        `json:"tables,omitempty"`
	// Inserted is the row count appended by a successful OpInsert.
	Inserted int `json:"inserted,omitempty"`
	// Timing is the server-side latency breakdown, present only when the
	// request set WantTiming and the server understands it (old servers
	// leave it nil — clients must treat absence as "not supported").
	Timing *Timing `json:"timing,omitempty"`
}

// Timing is the server-side latency attribution for one request, in
// microseconds. Phases are disjoint and sum to at most TotalUS (the
// remainder is dispatch overhead); TotalUS is measured from the moment
// the request frame was read off the wire to the moment the response was
// ready to write, so client_rtt - TotalUS is network plus client-side
// time. All fields are additive over the strict request/response
// conversation — there is no pipelining to double-charge.
type Timing struct {
	// TraceID echoes the request's trace ID (or is empty), so a client
	// aggregating many in-flight requests can match breakdowns without
	// relying on response ordering.
	TraceID string `json:"trace_id,omitempty"`
	// QueueUS is time the request spent parked behind earlier requests
	// on the same session (read-to-dispatch).
	QueueUS int64 `json:"queue_us"`
	// ParseUS and PlanUS are SQL text costs; both are zero on a
	// statement-cache hit — that is the cache paying off, visibly.
	ParseUS int64 `json:"parse_us"`
	PlanUS  int64 `json:"plan_us"`
	// ShardPruneUS is shard-elimination time on sharded tables (shards
	// whose key bounds cannot match are dropped before zone probes);
	// always zero for unsharded tables and old servers.
	ShardPruneUS int64 `json:"shardprune_us,omitempty"`
	// PruneUS is metadata probe time (the skipping decision), ScanUS
	// kernel execution plus adaptive feedback.
	PruneUS int64 `json:"prune_us"`
	ScanUS  int64 `json:"scan_us"`
	// SerializeUS is result wire-encoding time.
	SerializeUS int64 `json:"serialize_us"`
	TotalUS     int64 `json:"total_us"`
	// RowsSkipped is the rows pruned by skipping metadata for this
	// query, so remote clients see skipping effectiveness per request.
	RowsSkipped int64 `json:"rows_skipped"`
}

// PhaseSumUS returns the sum of the attributed phases (everything but
// TotalUS); always <= TotalUS up to clock granularity.
func (t *Timing) PhaseSumUS() int64 {
	return t.QueueUS + t.ParseUS + t.PlanUS + t.ShardPruneUS + t.PruneUS + t.ScanUS + t.SerializeUS
}

// Column is one result column on the decode side: name plus SQL-ish type
// (BIGINT, DOUBLE, VARCHAR). Mirrors engine.WireColumn.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Stats mirrors engine.ExecStats on the decode side.
type Stats struct {
	RowsScanned  int `json:"rows_scanned"`
	RowsSkipped  int `json:"rows_skipped"`
	RowsCovered  int `json:"rows_covered"`
	ZonesProbed  int `json:"zones_probed"`
	SkippersUsed int `json:"skippers_used"`
	// Shard scatter-gather totals (zero on unsharded tables/old servers).
	ShardsScanned int `json:"shards_scanned,omitempty"`
	ShardsPruned  int `json:"shards_pruned,omitempty"`
}

// Result is the client-side decoding of a wire-encoded engine.Result.
// Cells decode as json.Number (lossless for BIGINT), string, or nil for
// NULL when parsed with a UseNumber decoder (the client library does).
type Result struct {
	Count   int      `json:"count"`
	Columns []Column `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	Aggs    []any    `json:"aggs,omitempty"`
	Stats   Stats    `json:"stats"`
	// Timing is attached by the client library from the response frame
	// when the connection requested server timing; it is not part of the
	// wire-encoded result itself (hence the "-" tag). Nil when the
	// server predates timing or timing was not requested.
	Timing *Timing `json:"-"`
}

// ErrFrameTooLarge reports a frame whose declared length exceeds the
// reader's limit.
type ErrFrameTooLarge struct {
	Size, Max int
}

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("proto: frame of %d bytes exceeds limit %d", e.Size, e.Max)
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting any longer than max bytes before
// allocating. io.EOF is returned unwrapped when the connection closes
// cleanly between frames; a close mid-frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, err
		}
		return nil, err // io.EOF passes through for clean close detection
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > max {
		return nil, &ErrFrameTooLarge{Size: n, Max: max}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// WriteMessage marshals v and writes it as one frame.
func WriteMessage(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(r io.Reader, max int) (Request, error) {
	var req Request
	payload, err := ReadFrame(r, max)
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(payload, &req); err != nil {
		return req, fmt.Errorf("proto: bad request frame: %w", err)
	}
	return req, nil
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader, max int) (Response, error) {
	var resp Response
	payload, err := ReadFrame(r, max)
	if err != nil {
		return resp, err
	}
	if err := json.Unmarshal(payload, &resp); err != nil {
		return resp, fmt.Errorf("proto: bad response frame: %w", err)
	}
	return resp, nil
}
