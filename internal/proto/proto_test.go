package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{
		[]byte(`{"op":"ping"}`),
		{}, // empty frame is legal at the framing layer
		[]byte(strings.Repeat("x", 70000)),
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf, MaxFrameDefault)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, MaxFrameDefault); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	buf.Write(hdr[:])
	_, err := ReadFrame(&buf, 1<<20)
	var tooBig *ErrFrameTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if tooBig.Size != 1<<30 || tooBig.Max != 1<<20 {
		t.Fatalf("bad error payload: %+v", tooBig)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	// Header torn mid-way.
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:2]), 1024); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header: got %v, want ErrUnexpectedEOF", err)
	}
	// Payload torn mid-way.
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()[:7]), 1024); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn payload: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Op: OpQuery, SQL: "SELECT COUNT(*) FROM data"}
	if err := WriteMessage(&buf, req); err != nil {
		t.Fatal(err)
	}
	gotReq, err := ReadRequest(&buf, MaxFrameDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("request round-trip: %+v != %+v", gotReq, req)
	}

	resp := Response{OK: true, Result: json.RawMessage(`{"count":3,"stats":{}}`), Tables: []string{"a", "b"}}
	if err := WriteMessage(&buf, resp); err != nil {
		t.Fatal(err)
	}
	gotResp, err := ReadResponse(&buf, MaxFrameDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !gotResp.OK || string(gotResp.Result) != string(resp.Result) || len(gotResp.Tables) != 2 {
		t.Fatalf("response round-trip: %+v", gotResp)
	}
}

func TestBadJSONFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(&buf, MaxFrameDefault); err == nil {
		t.Fatal("bad JSON accepted as request")
	}
}

// TestResultDecodesEngineShape checks proto.Result against the exact
// strings pinned by the engine's golden wire-encoding test, so the two
// sides of the protocol cannot drift apart silently.
func TestResultDecodesEngineShape(t *testing.T) {
	wire := `{"count":3,"columns":[{"name":"id","type":"BIGINT"},{"name":"price","type":"DOUBLE"}],` +
		`"rows":[[1,9.5],[2,null],[3,12.25]],"aggs":[6],` +
		`"stats":{"rows_scanned":3,"rows_skipped":0,"rows_covered":0,"zones_probed":1,"skippers_used":1}}`
	dec := json.NewDecoder(strings.NewReader(wire))
	dec.UseNumber()
	var res Result
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || len(res.Columns) != 2 || len(res.Rows) != 3 {
		t.Fatalf("decoded %+v", res)
	}
	if res.Columns[0] != (Column{Name: "id", Type: "BIGINT"}) {
		t.Fatalf("column 0: %+v", res.Columns[0])
	}
	if n, ok := res.Rows[0][0].(json.Number); !ok || n.String() != "1" {
		t.Fatalf("cell (0,0): %#v", res.Rows[0][0])
	}
	if res.Rows[1][1] != nil {
		t.Fatalf("NULL cell decoded as %#v", res.Rows[1][1])
	}
	if res.Stats.ZonesProbed != 1 || res.Stats.RowsScanned != 3 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

// TestTimingFieldCompat proves the trace/timing fields are optional in
// both directions: an old client's request (no trace/timing keys) decodes
// on a new server with zero values, and an old server's response (no
// timing key) decodes on a new client with a nil Timing — so mixed
// deployments keep working.
func TestTimingFieldCompat(t *testing.T) {
	// Old client -> new server: bare request frame.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte(`{"op":"query","sql":"SELECT COUNT(*) FROM data"}`)); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(&buf, MaxFrameDefault)
	if err != nil {
		t.Fatalf("old-style request rejected: %v", err)
	}
	if req.TraceID != "" || req.WantTiming {
		t.Fatalf("absent fields decoded non-zero: %+v", req)
	}

	// New client -> old server: the old server's strict decoder is
	// mirrored by ReadRequest; unknown-to-it fields are simply dropped by
	// encoding/json, so the new frame must still parse as a Request.
	buf.Reset()
	if err := WriteMessage(&buf, Request{Op: OpQuery, SQL: "SELECT 1", TraceID: "t-1", WantTiming: true}); err != nil {
		t.Fatal(err)
	}
	req2, err := ReadRequest(&buf, MaxFrameDefault)
	if err != nil {
		t.Fatal(err)
	}
	if req2.TraceID != "t-1" || !req2.WantTiming {
		t.Fatalf("timing fields lost in round-trip: %+v", req2)
	}

	// Old server -> new client: response without a timing key.
	buf.Reset()
	if err := WriteFrame(&buf, []byte(`{"ok":true,"result":{"count":1,"stats":{}}}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(&buf, MaxFrameDefault)
	if err != nil {
		t.Fatalf("old-style response rejected: %v", err)
	}
	if resp.Timing != nil {
		t.Fatalf("absent timing decoded non-nil: %+v", resp.Timing)
	}

	// New server -> new client: full breakdown round-trips.
	buf.Reset()
	tm := &Timing{TraceID: "t-1", QueueUS: 1, ParseUS: 2, PlanUS: 3, PruneUS: 4,
		ScanUS: 5, SerializeUS: 6, TotalUS: 30, RowsSkipped: 7}
	if err := WriteMessage(&buf, Response{OK: true, Timing: tm}); err != nil {
		t.Fatal(err)
	}
	resp2, err := ReadResponse(&buf, MaxFrameDefault)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Timing == nil || *resp2.Timing != *tm {
		t.Fatalf("timing round-trip: %+v, want %+v", resp2.Timing, tm)
	}
	if got := resp2.Timing.PhaseSumUS(); got != 21 {
		t.Fatalf("PhaseSumUS = %d, want 21", got)
	}
	if resp2.Timing.PhaseSumUS() > resp2.Timing.TotalUS {
		t.Fatal("phase sum exceeds total")
	}
}
