package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/stats"
)

// Query executes q with a background context.
func (m *Manager) Query(q engine.Query) (*engine.Result, error) {
	return m.QueryContext(context.Background(), q)
}

// QueryContext executes q across the shards: shard-prune by key bounds,
// scatter to the survivors, merge. Per-phase accounting mirrors a plain
// engine — plan covers validation and the per-shard query rewrite,
// shardprune is the new phase, and scan is the scatter+merge wall clock
// (per-shard probe/scan/feedback detail lives in each shard's own
// trace, summarized as child spans here).
func (m *Manager) QueryContext(ctx context.Context, q engine.Query) (*engine.Result, error) {
	if q.Limit < 0 {
		return nil, engine.ErrBadLimit
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if m.stats != nil {
		if fp := obs.TemplateFromContext(ctx); fp != "" {
			start := time.Now()
			var (
				res *engine.Result
				err error
			)
			pprof.Do(ctx, pprof.Labels(
				"query_template", fp,
				"session", obs.SessionFromContext(ctx),
			), func(ctx context.Context) {
				res, err = m.queryAdmitted(ctx, q)
			})
			if err != nil {
				m.stats.Record(stats.Sample{
					Fingerprint: fp,
					Table:       m.name,
					Err:         true,
					CacheHit:    obs.PlanCachedFromContext(ctx),
					Latency:     time.Since(start),
				})
			}
			return res, err
		}
	}
	return m.queryAdmitted(ctx, q)
}

// queryAdmitted takes one catalog-wide admission slot for the whole
// logical query — the per-shard engines run admission-free — then
// executes the scatter-gather.
func (m *Manager) queryAdmitted(ctx context.Context, q engine.Query) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		m.errQueries.Add(1)
		return nil, fmt.Errorf("%w: %v", engine.ErrCanceled, context.Cause(ctx))
	}
	if err := m.admission.Acquire(ctx); err != nil {
		m.errQueries.Add(1)
		return nil, err
	}
	defer m.admission.Release()
	res, err := m.queryOnce(ctx, q)
	if err != nil {
		m.errQueries.Add(1)
	}
	return res, err
}

func (m *Manager) queryOnce(ctx context.Context, q engine.Query) (*engine.Result, error) {
	root := obs.NewSpan("query")
	tr := &obs.QueryTrace{Table: m.name, Start: root.Start, Root: root,
		Session:     obs.SessionFromContext(ctx),
		TraceID:     obs.TraceFromContext(ctx),
		Fingerprint: obs.TemplateFromContext(ctx),
		PlanCached:  obs.PlanCachedFromContext(ctx)}

	total := m.NumRows()
	spPlan := root.StartChild("plan")
	if err := q.Where.Validate(); err != nil {
		return nil, err
	}
	rw := rewriteQuery(q)
	tr.Plan = time.Since(tr.Start)
	spPlan.FinishRows(total, 0, 0)

	tPrune := time.Now()
	spPrune := root.StartChild("shardprune")
	targets, pruned := m.pruneShards(q.Where)
	tr.ShardPrune = time.Since(tPrune)
	tr.ShardsScanned, tr.ShardsPruned = len(targets), pruned
	for _, ti := range targets {
		tr.Shards = append(tr.Shards, m.shards[ti].id)
	}
	spPrune.FinishRows(len(m.shards), len(targets), pruned)
	m.mPruned.Add(int64(pruned))
	m.mQueries.Inc()

	tScan := time.Now()
	spScan := root.StartChild("scatter")
	partials, err := m.scatter(ctx, targets, rw.q)
	if err != nil {
		return nil, err
	}
	res, err := m.mergeResults(q, rw, targets, partials)
	if err != nil {
		return nil, err
	}
	tr.Scan = time.Since(tScan)
	res.Stats.ShardsScanned, res.Stats.ShardsPruned = len(targets), pruned
	for i, p := range partials {
		if p.Trace == nil {
			continue
		}
		spScan.Attach(&obs.Span{
			Name:     fmt.Sprintf("shard %d", m.shards[targets[i]].id),
			Start:    p.Trace.Start,
			Duration: p.Trace.Total,
		})
	}
	spScan.FinishDuration(tr.Scan)
	spScan.FinishRows(res.Stats.RowsScanned+res.Stats.RowsCovered, res.Count, res.Stats.RowsSkipped)

	m.finishTrace(ctx, res, tr, partials, targets, total)
	return res, nil
}

// finishTrace closes the merged trace, publishes it, and records the
// workload sample — the Manager-level mirror of the engine's bookkeeping
// (shard engines run with Stats nil so the logical query is sampled
// exactly once).
func (m *Manager) finishTrace(ctx context.Context, res *engine.Result, tr *obs.QueryTrace, partials []*engine.Result, targets []int, total int) {
	tr.Total = time.Since(tr.Start)
	tr.Root.FinishDuration(tr.Total)
	tr.Root.FinishRows(total, res.Count, res.Stats.RowsSkipped)
	tr.RowsScanned = res.Stats.RowsScanned
	tr.RowsSkipped = res.Stats.RowsSkipped
	tr.RowsCovered = res.Stats.RowsCovered
	tr.ZonesProbed = res.Stats.ZonesProbed
	tr.RowsTotal = total
	tr.Matched = res.Count
	tr.Predicates = mergePredicates(partials)
	res.Trace = tr

	m.mLatency.Observe(tr.Total.Seconds())
	if m.slowThr > 0 && tr.Total >= m.slowThr {
		tr.Slow = true
		m.mSlow.Inc()
		m.slow.Append(tr)
		if m.log != nil {
			m.log.Warn("slow query",
				"table", tr.Table, "total", tr.Total,
				"rows_scanned", tr.RowsScanned, "rows_skipped", tr.RowsSkipped,
				"shards_scanned", tr.ShardsScanned, "shards_pruned", tr.ShardsPruned,
				"session", tr.Session, "trace_id", tr.TraceID,
				"fingerprint", tr.Fingerprint)
		}
	}
	m.traces.Append(tr)

	if m.stats != nil && tr.Fingerprint != "" {
		zonesRead := int64(0)
		for i := range tr.Predicates {
			if tr.Predicates[i].Active {
				zonesRead += int64(tr.Predicates[i].Windows)
			}
		}
		zonesPruned := int64(tr.ZonesProbed) - zonesRead
		if zonesPruned < 0 {
			zonesPruned = 0
		}
		shardIDs := make([]int, 0, len(targets))
		for _, si := range targets {
			shardIDs = append(shardIDs, m.shards[si].id)
		}
		m.stats.Record(stats.Sample{
			Fingerprint:   tr.Fingerprint,
			Table:         m.name,
			CacheHit:      obs.PlanCachedFromContext(ctx),
			Latency:       tr.Total,
			RowsRead:      int64(res.Stats.RowsScanned),
			RowsReturned:  int64(res.Count),
			RowsSkipped:   int64(res.Stats.RowsSkipped),
			ZonesRead:     zonesRead,
			ZonesPruned:   zonesPruned,
			BytesScanned:  int64(res.Stats.RowsScanned) * 8,
			ShardsScanned: int64(tr.ShardsScanned),
			ShardsPruned:  int64(tr.ShardsPruned),
			Shards:        shardIDs,
		})
	}
}

// pruneShards eliminates shards whose observed key bounds cannot
// intersect the predicate's key-column intervals: the same lowering the
// engine uses for zone pruning, applied to one giant zone per shard.
// When every shard is prunable, one shard is kept (the engines'
// unsatisfiable-predicate shortcut produces the correct empty result
// shape, including aggregate NULL/zero semantics, at negligible cost).
// Returned targets are ascending shard indices (0-based).
func (m *Manager) pruneShards(where expr.Conj) (targets []int, pruned int) {
	keyCol, err := m.proto.Column(m.key)
	var cp expr.ColPred
	prune := false
	if err == nil {
		if cp, err = expr.LowerColumn(where, keyCol); err == nil {
			prune = true
		}
	}
	for si, s := range m.shards {
		if !prune {
			targets = append(targets, si)
			continue
		}
		s.mu.Lock()
		seen, lo, hi, nulls := s.seen, s.lo, s.hi, s.nulls
		s.mu.Unlock()
		keep := false
		if cp.NullOnly {
			keep = nulls > 0
		} else {
			keep = seen && cp.R.Overlaps(lo, hi)
		}
		if keep {
			targets = append(targets, si)
		} else {
			pruned++
		}
	}
	if len(targets) == 0 && len(m.shards) > 0 {
		targets = append(targets, 0)
		pruned--
	}
	return targets, pruned
}

// scatter fans the per-shard query out to the target shards on parallel
// workers. Cancellation is cooperative and bidirectional: the caller's
// context cancels every worker (each shard engine checks at its scan
// checkpoints), and the first worker error cancels the rest. The
// shard-scanned counter is incremented per COMPLETED shard scan, so a
// cancelled gather reports exactly the partial work that ran.
func (m *Manager) scatter(ctx context.Context, targets []int, q engine.Query) ([]*engine.Result, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*engine.Result, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, si := range targets {
		wg.Add(1)
		go func(i, si int) {
			defer wg.Done()
			res, err := m.shards[si].eng.QueryContext(cctx, q)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = res
			m.mScanned.Inc()
		}(i, si)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		// Prefer the real failure over the cancellations it caused in the
		// other workers.
		if !errors.Is(err, engine.ErrCanceled) {
			return nil, err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}

// mergePredicates folds the per-shard predicate traces into one section
// per predicate column: summed probe/window counters, with the lowered
// interval string taken from the first shard (identical across shards —
// all lower the same conjunction).
func mergePredicates(partials []*engine.Result) []obs.PredicateTrace {
	var order []string
	byCol := make(map[string]*obs.PredicateTrace)
	for _, p := range partials {
		if p.Trace == nil {
			continue
		}
		for i := range p.Trace.Predicates {
			pt := &p.Trace.Predicates[i]
			mt, ok := byCol[pt.Column]
			if !ok {
				cp := *pt
				cp.Matched = -1
				byCol[pt.Column] = &cp
				order = append(order, pt.Column)
				continue
			}
			mt.ZonesProbed += pt.ZonesProbed
			mt.Windows += pt.Windows
			mt.CoveredWindows += pt.CoveredWindows
			mt.CandidateRows += pt.CandidateRows
			mt.EstRowsSkipped += pt.EstRowsSkipped
			mt.Active = mt.Active || pt.Active
			if mt.Skipper == "" {
				mt.Skipper = pt.Skipper
			}
		}
	}
	out := make([]obs.PredicateTrace, 0, len(order))
	for _, col := range order {
		out = append(out, *byCol[col])
	}
	return out
}

// Explain renders the sharded plan: the shard-prune outcome followed by
// each surviving shard's own plan (real metadata probes, like a plain
// engine's EXPLAIN).
func (m *Manager) Explain(q engine.Query) ([]string, error) {
	if q.Limit < 0 {
		return nil, engine.ErrBadLimit
	}
	if err := q.Where.Validate(); err != nil {
		return nil, err
	}
	targets, pruned := m.pruneShards(q.Where)
	out := []string{
		fmt.Sprintf("sharded table %q: %d shards (key %q, %s partitioning), %d rows",
			m.name, len(m.shards), m.key, m.mode, m.NumRows()),
		fmt.Sprintf("shard prune: %d of %d shards eliminated by key bounds, %d to scan",
			pruned, len(m.shards), len(targets)),
	}
	for _, si := range targets {
		s := m.shards[si]
		lines, err := s.eng.Explain(q)
		if err != nil {
			return nil, err
		}
		out = append(out, fmt.Sprintf("shard %d (%d rows):", s.id, s.eng.NumRows()))
		for _, l := range lines {
			out = append(out, "  "+l)
		}
	}
	return out, nil
}

// ExplainAnalyze is ExplainAnalyzeContext with a background context.
func (m *Manager) ExplainAnalyze(q engine.Query) ([]string, *engine.Result, error) {
	return m.ExplainAnalyzeContext(context.Background(), q)
}

// ExplainAnalyzeContext executes q through the scatter-gather and
// renders the observed plan; the merged trace's shardprune phase shows
// shard elimination alongside the familiar plan/probe/scan phases.
func (m *Manager) ExplainAnalyzeContext(ctx context.Context, q engine.Query) ([]string, *engine.Result, error) {
	res, err := m.QueryContext(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	lines := engine.AnalyzeLines(res, true)
	if m.stats != nil && res.Trace != nil && res.Trace.Fingerprint != "" {
		if ts, ok := m.stats.Template(res.Trace.Fingerprint); ok {
			lines = append(lines, fmt.Sprintf(
				"workload: template %q — %d calls (%d errors, %d cache hits), mean %.0fµs, p95 %.0fµs, %.1f%% rows skipped",
				ts.Fingerprint, ts.Calls, ts.Errors, ts.CacheHits, ts.MeanUS, ts.P95US, 100*ts.SkipRatio))
		}
	}
	return lines, res, nil
}
