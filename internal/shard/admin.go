package shard

import (
	"errors"
	"fmt"
	"io"

	"adskip/internal/core"
	"adskip/internal/obs"
)

// Administrative surface: the facade drives skipping lifecycle,
// introspection, and history sampling through the same methods a plain
// engine exposes; the Manager fans each out across its shards.

// EnableSkipping builds skipping metadata on every shard for the named
// columns (all when none given).
func (m *Manager) EnableSkipping(cols ...string) error {
	var errs error
	for _, s := range m.shards {
		if err := s.eng.EnableSkipping(cols...); err != nil {
			errs = errors.Join(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errs
}

// RebuildSkipping reconstructs skipping metadata on every shard.
func (m *Manager) RebuildSkipping(cols ...string) error {
	var errs error
	for _, s := range m.shards {
		if err := s.eng.RebuildSkipping(cols...); err != nil {
			errs = errors.Join(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errs
}

// VerifySkipping revalidates every shard's skipping metadata.
func (m *Manager) VerifySkipping(cols ...string) error {
	var errs error
	for _, s := range m.shards {
		if err := s.eng.VerifySkipping(cols...); err != nil {
			errs = errors.Join(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errs
}

// SkipperMetadata merges per-shard metadata per column: zone and byte
// totals sum; a column counts as enabled while any shard's arbitration
// keeps it enabled.
func (m *Manager) SkipperMetadata() map[string]core.Metadata {
	out := make(map[string]core.Metadata)
	for _, s := range m.shards {
		for col, md := range s.eng.SkipperMetadata() {
			agg, ok := out[col]
			if !ok {
				out[col] = md
				continue
			}
			agg.Zones += md.Zones
			agg.Bytes += md.Bytes
			agg.Enabled = agg.Enabled || md.Enabled
			out[col] = agg
		}
	}
	return out
}

// Quarantined reports columns benched on any shard, the per-shard causes
// joined per column.
func (m *Manager) Quarantined() map[string]error {
	out := make(map[string]error)
	for _, s := range m.shards {
		for col, err := range s.eng.Quarantined() {
			out[col] = errors.Join(out[col], fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return out
}

// SaveSkipper is unsupported on sharded tables: each shard refines its
// own zonemap against its own slice of the data, so a single snapshot
// has no meaning across a reshard.
func (m *Manager) SaveSkipper(col string, w io.Writer) error {
	return fmt.Errorf("shard: skipping metadata snapshots are per-shard; not supported on sharded tables (column %q)", col)
}

// LoadSkipper is unsupported on sharded tables (see SaveSkipper).
func (m *Manager) LoadSkipper(col string, r io.Reader) error {
	return fmt.Errorf("shard: skipping metadata snapshots are per-shard; not supported on sharded tables (column %q)", col)
}

// Skipmaps returns one skipping-effectiveness snapshot per shard, each
// stamped with its 1-based shard number and the total shard count — the
// per-shard dimension behind /skipmap?shard=N.
func (m *Manager) Skipmaps(maxZones int) []obs.SkipmapTable {
	out := make([]obs.SkipmapTable, 0, len(m.shards))
	for _, s := range m.shards {
		t := s.eng.Skipmap(maxZones)
		t.Shard = s.id
		t.Shards = len(m.shards)
		out = append(out, t)
	}
	return out
}

// FillHistory folds the sharded table into one adaptation-timeline
// sample. Row totals sum across shards; query, slow-query, and error
// counts come from the Manager's logical counters (each logical query
// runs up to Shards shard scans — counting those would inflate the
// timeline); per-column state stays per shard (each engine stamps its
// 1-based shard number into its HistoryColumns), so the timeline — and
// the /history?shard=N filter — can tell one shard's structure from
// another's. The sampler sorts the merged columns.
func (m *Manager) FillHistory(s *obs.HistorySample) {
	var scratch obs.HistorySample
	for _, sh := range m.shards {
		sh.eng.FillHistory(&scratch)
	}
	s.RowsScanned += scratch.RowsScanned
	s.RowsSkipped += scratch.RowsSkipped
	s.RowsCovered += scratch.RowsCovered
	s.Queries += m.mQueries.Load()
	s.SlowQueries += m.mSlow.Load()
	s.Errors += m.errQueries.Load()
	s.Columns = append(s.Columns, scratch.Columns...)
}

// AdaptationROI returns every shard's per-column adaptation ROI rows
// (each engine stamps its own 1-based shard number). maxDead caps the
// per-column dead-zone detail.
func (m *Manager) AdaptationROI(maxDead int) []obs.ColumnROI {
	var out []obs.ColumnROI
	for _, s := range m.shards {
		out = append(out, s.eng.AdaptationROI(maxDead)...)
	}
	return out
}

// LatencyBounds returns the logical latency histogram's bucket bounds.
func (m *Manager) LatencyBounds() []float64 { return m.mLatency.Bounds() }

// AccumulateLatency adds the LOGICAL query latency buckets into dst.
// Per-shard scan latencies stay out: they would count one query up to
// Shards times at per-shard durations and drag the quantiles down.
func (m *Manager) AccumulateLatency(dst []int64) { m.mLatency.AccumulateBuckets(dst) }
