package shard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// bigManager builds a Manager whose shards are large enough that a scan
// crosses several cooperative checkpoints (the engine checks its context
// at least once per 65536 rows).
func bigManager(t *testing.T, shards, rowsPerShard int) *Manager {
	t.Helper()
	m, err := New("big", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "v", Type: storage.Float64},
	}, Options{Shards: shards, Key: "id",
		Engine: engine.Options{Policy: engine.PolicyNone}})
	if err != nil {
		t.Fatal(err)
	}
	n := shards * rowsPerShard
	batch := make([][]storage.Value, 0, 65536)
	for i := 0; i < n; i++ {
		batch = append(batch, []storage.Value{
			storage.IntValue(int64(i)),
			storage.FloatValue(float64(i % 997)),
		})
		if len(batch) == cap(batch) || i == n-1 {
			if err := m.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	return m
}

// fullScanQuery forces every surviving shard into a full scan (predicate
// on the non-key column, no skipping metadata under PolicyNone).
func fullScanQuery() engine.Query {
	return engine.Query{Where: expr.And(
		expr.MustPred("v", expr.LT, storage.FloatValue(500)))}
}

// TestScatterCancellation covers satellite behavior: a context cancelled
// mid-gather stops all shard workers, leaks no goroutines, and the
// partial-scan counters report exactly the work that completed.
func TestScatterCancellation(t *testing.T) {
	m := bigManager(t, 4, 200_000)
	before := runtime.NumGoroutine()

	// Pre-cancelled context: rejected before any shard work, zero scans.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.QueryContext(pre, fullScanQuery()); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("pre-cancelled: err = %v, want ErrCanceled", err)
	}
	if n := m.mScanned.Load(); n != 0 {
		t.Errorf("pre-cancelled: %d shard scans recorded, want 0", n)
	}

	// Cancel mid-gather, repeatedly: the workers must stop at their next
	// checkpoint and the counter must only ever count completed scans.
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(50+100*i) * time.Microsecond)
			cancel()
		}()
		_, err := m.QueryContext(ctx, fullScanQuery())
		cancel()
		if err != nil && !errors.Is(err, engine.ErrCanceled) {
			t.Fatalf("run %d: err = %v, want nil or ErrCanceled", i, err)
		}
	}

	// Counter invariant: completed-scan count never exceeds what the
	// queries could have run (queries × shards), and a successful control
	// query afterwards adds exactly Shards.
	base := m.mScanned.Load()
	if max := int64(8 * m.Shards()); base > max {
		t.Errorf("scanned counter %d exceeds %d possible shard scans", base, max)
	}
	if _, err := m.Query(fullScanQuery()); err != nil {
		t.Fatal(err)
	}
	if got := m.mScanned.Load() - base; got != int64(m.Shards()) {
		t.Errorf("control query recorded %d shard scans, want %d", got, m.Shards())
	}

	// No leaked workers: goroutines return to (near) baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d after, %d before — scatter workers leaked", after, before)
	}
}

// TestScatterErrorCancelsSiblings checks the other cancellation
// direction: one shard failing (over budget) stops the rest, and the
// reported error is the real failure, not the cancellations it caused.
func TestScatterErrorCancelsSiblings(t *testing.T) {
	m, err := New("lim", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "v", Type: storage.Float64},
	}, Options{Shards: 4, Key: "id",
		Engine: engine.Options{
			Policy: engine.PolicyNone,
			// Low row budget: every full-scanning shard blows it.
			Limits: engine.Limits{MaxRowsScanned: 1000},
		}})
	if err != nil {
		t.Fatal(err)
	}
	// Budget enforcement happens at cooperative checkpoints (one per
	// 65536 rows scanned), so each shard must hold more than a checkpoint
	// interval for the limit to trip mid-scan.
	const total = 4 * 100_000
	rows := make([][]storage.Value, 0, 65536)
	for i := 0; i < total; i++ {
		rows = append(rows, []storage.Value{
			storage.IntValue(int64(i)), storage.FloatValue(float64(i))})
		if len(rows) == cap(rows) || i == total-1 {
			if err := m.AppendRows(rows); err != nil {
				t.Fatal(err)
			}
			rows = rows[:0]
		}
	}
	_, qerr := m.Query(fullScanQuery())
	if !errors.Is(qerr, engine.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", qerr)
	}
}

// TestConcurrentAppendQuery races appends against queries across shards
// (run with -race). Row counts must be exact and every query result
// internally consistent.
func TestConcurrentAppendQuery(t *testing.T) {
	m, err := New("conc", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "v", Type: storage.Float64},
	}, Options{Shards: 4, Key: "id",
		Engine: engine.Options{Policy: engine.PolicyAdaptive}})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([][]storage.Value, 0, 1000)
	for i := 0; i < 1000; i++ {
		seed = append(seed, []storage.Value{
			storage.IntValue(int64(i)), storage.FloatValue(float64(i))})
	}
	if err := m.AppendRows(seed); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableSkipping("id"); err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		batchesEach   = 25
		rowsPerBatch  = 40
		readers       = 4
		queriesEach   = 50
		expectedTotal = 1000 + writers*batchesEach*rowsPerBatch
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesEach; b++ {
				batch := make([][]storage.Value, 0, rowsPerBatch)
				for r := 0; r < rowsPerBatch; r++ {
					id := int64(1000 + w*batchesEach*rowsPerBatch + b*rowsPerBatch + r)
					batch = append(batch, []storage.Value{
						storage.IntValue(id), storage.FloatValue(float64(id))})
				}
				if err := m.AppendRows(batch); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				res, err := m.Query(engine.Query{Where: expr.And(
					expr.MustPred("id", expr.Between, storage.IntValue(0), storage.IntValue(1<<40)))})
				if err != nil {
					errCh <- err
					return
				}
				if res.Count < 1000 || res.Count > expectedTotal {
					errCh <- errors.New("count outside [seed, total] window")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if m.NumRows() != expectedTotal {
		t.Fatalf("NumRows = %d, want %d", m.NumRows(), expectedTotal)
	}
	res, err := m.Query(engine.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != expectedTotal {
		t.Fatalf("final count = %d, want %d", res.Count, expectedTotal)
	}
}
