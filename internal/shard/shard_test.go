package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
)

func testSchema() table.Schema {
	return table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
		{Name: "city", Type: storage.String},
	}
}

// testRows generates a deterministic mixed dataset: sequential-ish ids,
// clustered prices, a few cities, and NULLs sprinkled into every column.
func testRows(n int) [][]storage.Value {
	rng := rand.New(rand.NewSource(42))
	cities := []string{"oslo", "bergen", "tromso", "trondheim"}
	rows := make([][]storage.Value, 0, n)
	for i := 0; i < n; i++ {
		id := storage.IntValue(int64(i))
		if rng.Intn(37) == 0 {
			id = storage.NullValue(storage.Int64)
		}
		price := storage.FloatValue(float64(rng.Intn(1000)) / 10)
		if rng.Intn(23) == 0 {
			price = storage.NullValue(storage.Float64)
		}
		city := storage.StringValue(cities[rng.Intn(len(cities))])
		if rng.Intn(41) == 0 {
			city = storage.NullValue(storage.String)
		}
		rows = append(rows, []storage.Value{id, price, city})
	}
	return rows
}

// pair builds an unsharded reference engine and a Manager over the same
// rows, both with skipping enabled.
func pair(t *testing.T, mode Mode, shards, n int) (*engine.Engine, *Manager) {
	t.Helper()
	rows := testRows(n)

	tbl, err := table.New("sales", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	ref := engine.New(tbl, engine.Options{Policy: engine.PolicyAdaptive})
	if err := ref.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	if err := ref.EnableSkipping("id", "price"); err != nil {
		t.Fatal(err)
	}

	m, err := New("sales", testSchema(), Options{
		Shards: shards,
		Key:    "id",
		Mode:   mode,
		Engine: engine.Options{Policy: engine.PolicyAdaptive},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableSkipping("id", "price"); err != nil {
		t.Fatal(err)
	}
	return ref, m
}

// renderRow formats a row for comparison. Float64 cells round to 6
// significant digits: SUM/AVG accumulate in per-shard order, so the
// merged value may differ from the single-engine value in the last few
// ULPs — floating-point associativity, not a merge bug.
func renderRow(row []storage.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		switch {
		case v.IsNull():
			parts[i] = "NULL"
		case v.Type() == storage.Float64:
			parts[i] = fmt.Sprintf("%.6g", v.Float())
		default:
			parts[i] = v.String()
		}
	}
	return strings.Join(parts, "|")
}

func renderRows(rows [][]storage.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = renderRow(r)
	}
	return out
}

// valuesClose is Value equality with a relative epsilon on floats (the
// merged SUM/AVG adds partials in shard order; see renderRow).
func valuesClose(a, b storage.Value) bool {
	if a.Type() == storage.Float64 && b.Type() == storage.Float64 &&
		!a.IsNull() && !b.IsNull() {
		av, bv := a.Float(), b.Float()
		diff := av - bv
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if s := av; s < 0 {
			s = -s
			if s > scale {
				scale = s
			}
		} else if av > scale {
			scale = av
		}
		return diff <= 1e-9*scale
	}
	return a.Equal(b)
}

// checkEqual compares a sharded result against the unsharded reference.
// ordered demands identical row order; otherwise rows compare as
// multisets (shard concat order is a different, equally valid order).
func checkEqual(t *testing.T, name string, want, got *engine.Result, ordered bool) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("%s: Count = %d, want %d", name, got.Count, want.Count)
	}
	if len(got.Aggs) != len(want.Aggs) {
		t.Fatalf("%s: %d aggs, want %d", name, len(got.Aggs), len(want.Aggs))
	}
	for i := range want.Aggs {
		if !valuesClose(got.Aggs[i], want.Aggs[i]) {
			t.Errorf("%s: agg[%d] = %v, want %v", name, i, got.Aggs[i], want.Aggs[i])
		}
	}
	if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
		t.Errorf("%s: Columns = %v, want %v", name, got.Columns, want.Columns)
	}
	if fmt.Sprint(got.Types) != fmt.Sprint(want.Types) {
		t.Errorf("%s: Types = %v, want %v", name, got.Types, want.Types)
	}
	wr, gr := renderRows(want.Rows), renderRows(got.Rows)
	if !ordered {
		sort.Strings(wr)
		sort.Strings(gr)
	}
	if len(wr) != len(gr) {
		t.Fatalf("%s: %d rows, want %d", name, len(gr), len(wr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Errorf("%s: row %d = %q, want %q", name, i, gr[i], wr[i])
			break
		}
	}
}

// equivalenceQueries is the battery both modes must match the reference
// on. ordered marks queries whose row order is pinned (ORDER BY).
var equivalenceQueries = []struct {
	name    string
	q       engine.Query
	ordered bool
}{
	{"count_range", engine.Query{Where: expr.And(expr.MustPred("id", expr.Between, storage.IntValue(100), storage.IntValue(400)))}, true},
	{"count_all", engine.Query{}, true},
	{"count_point", engine.Query{Where: expr.And(expr.MustPred("id", expr.EQ, storage.IntValue(77)))}, true},
	{"count_unsat", engine.Query{Where: expr.And(expr.MustPred("id", expr.GT, storage.IntValue(1 << 40)))}, true},
	{"count_null_key", engine.Query{Where: expr.And(expr.MustPred("id", expr.IsNull))}, true},
	{"count_other_col", engine.Query{Where: expr.And(expr.MustPred("price", expr.LT, storage.FloatValue(25)))}, true},
	{"count_conj", engine.Query{Where: expr.And(
		expr.MustPred("id", expr.GE, storage.IntValue(200)),
		expr.MustPred("price", expr.LT, storage.FloatValue(50)))}, true},
	{"project", engine.Query{Select: []string{"id", "city"},
		Where: expr.And(expr.MustPred("id", expr.Between, storage.IntValue(50), storage.IntValue(250)))}, false},
	{"project_star_nopred", engine.Query{Select: []string{"id", "price", "city"}}, false},
	{"order_asc", engine.Query{Select: []string{"id", "price"}, OrderBy: "id",
		Where: expr.And(expr.MustPred("price", expr.GE, storage.FloatValue(10)))}, true},
	{"order_desc_limit", engine.Query{Select: []string{"id"}, OrderBy: "id", OrderDesc: true, Limit: 25,
		Where: expr.And(expr.MustPred("price", expr.LT, storage.FloatValue(80)))}, true},
	{"order_injected_col", engine.Query{Select: []string{"city"}, OrderBy: "id", Limit: 40}, true},
	// No limit here: a limit cutting inside a run of equal string keys
	// selects different (equally valid) rows than one engine would; the
	// golden merge-order test pins the sharded tie-break instead.
	{"order_string", engine.Query{Select: []string{"city", "id"}, OrderBy: "city",
		Where: expr.And(expr.MustPred("id", expr.LT, storage.IntValue(500)))},
		false}, // equal string keys: order within ties differs, compare as multiset
	{"aggs_global", engine.Query{Aggs: []engine.Agg{
		{Kind: engine.CountStar}, {Kind: engine.CountCol, Col: "price"},
		{Kind: engine.Sum, Col: "price"}, {Kind: engine.Min, Col: "id"},
		{Kind: engine.Max, Col: "price"}, {Kind: engine.Avg, Col: "price"}},
		Where: expr.And(expr.MustPred("id", expr.Between, storage.IntValue(100), storage.IntValue(700)))}, true},
	{"aggs_int_sum_avg", engine.Query{Aggs: []engine.Agg{
		{Kind: engine.Sum, Col: "id"}, {Kind: engine.Avg, Col: "id"}}}, true},
	{"aggs_empty_match", engine.Query{Aggs: []engine.Agg{
		{Kind: engine.CountStar}, {Kind: engine.Sum, Col: "price"},
		{Kind: engine.Min, Col: "price"}, {Kind: engine.Avg, Col: "price"}},
		Where: expr.And(expr.MustPred("id", expr.GT, storage.IntValue(1 << 40)))}, true},
	{"group_by", engine.Query{GroupBy: "city", Aggs: []engine.Agg{
		{Kind: engine.CountStar}, {Kind: engine.Sum, Col: "price"}, {Kind: engine.Avg, Col: "price"},
		{Kind: engine.Min, Col: "id"}, {Kind: engine.Max, Col: "id"}}}, true},
	{"group_by_pred_limit", engine.Query{GroupBy: "city", Limit: 2, Aggs: []engine.Agg{
		{Kind: engine.CountStar}, {Kind: engine.Avg, Col: "price"}},
		Where: expr.And(expr.MustPred("id", expr.LT, storage.IntValue(600)))}, true},
	{"project_with_aggs", engine.Query{Select: []string{"id"}, Aggs: []engine.Agg{
		{Kind: engine.CountStar}, {Kind: engine.Sum, Col: "price"}},
		Where: expr.And(expr.MustPred("id", expr.Between, storage.IntValue(10), storage.IntValue(90)))}, false},
	{"order_with_aggs_limit", engine.Query{Select: []string{"id"}, OrderBy: "id", Limit: 7,
		Aggs: []engine.Agg{{Kind: engine.CountStar}, {Kind: engine.Avg, Col: "price"}},
		Where: expr.And(expr.MustPred("id", expr.Between, storage.IntValue(10), storage.IntValue(90)))}, true},
	{"in_pred", engine.Query{Where: expr.And(expr.MustPred("id", expr.In,
		storage.IntValue(3), storage.IntValue(333), storage.IntValue(777)))}, true},
}

func TestShardedMatchesUnsharded(t *testing.T) {
	for _, mode := range []Mode{ModeRange, ModeHash} {
		t.Run(mode.String(), func(t *testing.T) {
			ref, m := pair(t, mode, 4, 1000)
			for _, tc := range equivalenceQueries {
				want, err := ref.Query(tc.q)
				if err != nil {
					t.Fatalf("%s: reference: %v", tc.name, err)
				}
				got, err := m.Query(tc.q)
				if err != nil {
					t.Fatalf("%s: sharded: %v", tc.name, err)
				}
				checkEqual(t, tc.name, want, got, tc.ordered)
			}
		})
	}
}

// TestShardedMatchesUnshardedFromTable covers the NewFromTable path
// (bounds learned from the full data up front).
func TestShardedMatchesUnshardedFromTable(t *testing.T) {
	rows := testRows(600)
	tbl, err := table.New("sales", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	ref := engine.New(tbl, engine.Options{Policy: engine.PolicyAdaptive})
	if err := ref.AppendRows(rows); err != nil {
		t.Fatal(err)
	}

	src, err := table.New("sales", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := src.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewFromTable(src, Options{Shards: 3, Key: "id",
		Engine: engine.Options{Policy: engine.PolicyAdaptive}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != ref.Table().NumRows() {
		t.Fatalf("NumRows = %d, want %d", m.NumRows(), ref.Table().NumRows())
	}
	for _, tc := range equivalenceQueries {
		want, err := ref.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		got, err := m.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: sharded: %v", tc.name, err)
		}
		checkEqual(t, tc.name, want, got, tc.ordered)
	}
}

// TestShardPruning checks that range partitioning actually eliminates
// shards on key-range predicates and keeps the scanned+pruned invariant.
func TestShardPruning(t *testing.T) {
	_, m := pair(t, ModeRange, 4, 1000)
	res, err := m.Query(engine.Query{Where: expr.And(
		expr.MustPred("id", expr.Between, storage.IntValue(0), storage.IntValue(120)))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardsPruned == 0 {
		t.Error("range predicate on the shard key pruned no shards")
	}
	if res.Stats.ShardsScanned+res.Stats.ShardsPruned != m.Shards() {
		t.Errorf("scanned %d + pruned %d != %d shards",
			res.Stats.ShardsScanned, res.Stats.ShardsPruned, m.Shards())
	}
	if res.Trace == nil || res.Trace.ShardsPruned != res.Stats.ShardsPruned {
		t.Error("trace shard-prune totals missing or inconsistent with stats")
	}

	// Unsatisfiable predicate: every shard prunable, one kept for the
	// correct empty-result shape.
	res, err = m.Query(engine.Query{Where: expr.And(
		expr.MustPred("id", expr.GT, storage.IntValue(1 << 40)))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardsScanned != 1 || res.Stats.ShardsPruned != m.Shards()-1 {
		t.Errorf("unsat: scanned %d pruned %d, want 1 and %d",
			res.Stats.ShardsScanned, res.Stats.ShardsPruned, m.Shards()-1)
	}
	if res.Count != 0 {
		t.Errorf("unsat: Count = %d, want 0", res.Count)
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := New("t", testSchema(), Options{Shards: 1}); err == nil {
		t.Error("Shards=1 accepted; want error")
	}
	if _, err := New("t", testSchema(), Options{Shards: 2, Key: "city"}); err == nil {
		t.Error("string shard key accepted; want error")
	}
	if _, err := New("t", testSchema(), Options{Shards: 2, Key: "nope"}); err == nil {
		t.Error("unknown shard key accepted; want error")
	}
	// Default key resolution picks the first numeric column.
	m, err := New("t", testSchema(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Key() != "id" {
		t.Errorf("default key = %q, want id", m.Key())
	}
	if err := m.Update("price", 0, storage.FloatValue(1)); err == nil {
		t.Error("Update accepted on sharded table; want error")
	}
	if err := m.SaveSkipper("id", nil); err == nil {
		t.Error("SaveSkipper accepted on sharded table; want error")
	}
}

func TestExplainShowsShardPrune(t *testing.T) {
	_, m := pair(t, ModeRange, 4, 1000)
	lines, err := m.Explain(engine.Query{Where: expr.And(
		expr.MustPred("id", expr.LT, storage.IntValue(100)))})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "shard prune:") {
		t.Errorf("EXPLAIN missing shard-prune line:\n%s", joined)
	}
	if !strings.Contains(joined, "range partitioning") {
		t.Errorf("EXPLAIN missing partitioning summary:\n%s", joined)
	}
}

func TestExplainAnalyzeShardPhase(t *testing.T) {
	_, m := pair(t, ModeRange, 4, 1000)
	lines, res, err := m.ExplainAnalyze(engine.Query{Where: expr.And(
		expr.MustPred("id", expr.LT, storage.IntValue(100)))})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Trace == nil {
		t.Fatal("no trace on EXPLAIN ANALYZE result")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "shardprune") {
		t.Errorf("EXPLAIN ANALYZE missing shardprune phase:\n%s", joined)
	}
}

// TestSkipmapsPerShard checks the per-shard snapshot dimension.
func TestSkipmapsPerShard(t *testing.T) {
	_, m := pair(t, ModeRange, 4, 1000)
	maps := m.Skipmaps(0)
	if len(maps) != 4 {
		t.Fatalf("%d skipmaps, want 4", len(maps))
	}
	for i, sm := range maps {
		if sm.Shard != i+1 || sm.Shards != 4 {
			t.Errorf("skipmap %d: Shard=%d Shards=%d, want %d and 4", i, sm.Shard, sm.Shards, i+1)
		}
		if sm.Table != "sales" {
			t.Errorf("skipmap %d: Table=%q", i, sm.Table)
		}
	}
}

// TestMergedRoundTrip checks Merged preserves every row (as a multiset).
func TestMergedRoundTrip(t *testing.T) {
	rows := testRows(300)
	m, err := New("sales", testSchema(), Options{Shards: 3,
		Engine: engine.Options{Policy: engine.PolicyStatic}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendRows(rows); err != nil {
		t.Fatal(err)
	}
	merged, err := m.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != len(rows) {
		t.Fatalf("merged %d rows, want %d", merged.NumRows(), len(rows))
	}
	want := renderRows(rows)
	got := make([]string, 0, merged.NumRows())
	for i := 0; i < merged.NumRows(); i++ {
		row, err := merged.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, renderRow(row))
	}
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row multiset mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
}
