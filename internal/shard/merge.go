package shard

import (
	"fmt"
	"sort"

	"adskip/internal/engine"
	"adskip/internal/storage"
)

// rewrite captures how the logical query was transformed into the
// per-shard query and how to undo it at merge time.
type rewrite struct {
	q engine.Query // per-shard query

	// aggPos[i] is the position of logical aggregate i in the per-shard
	// aggregate list; AVG aggregates occupy two slots there (SUM at
	// aggPos[i], COUNT at aggPos[i]+1) since averages of averages are
	// wrong — only sums and counts recombine.
	aggPos []int

	// orderIdx is the position of the ORDER BY column in the per-shard
	// select list; orderAdded marks it as injected (absent from the
	// logical projection, stripped after the merge).
	orderIdx   int
	orderAdded bool
}

// rewriteQuery derives the per-shard query: AVG → SUM+COUNT, the ORDER
// BY column injected into the projection when absent, and the row limit
// pushed down where it cannot change merged results — ORDER BY keeps
// per-shard top-L sufficient for the global top-L, GROUP BY returns
// groups in key order so a group in the global first L has per-shard
// rank <= L, and plain projections concatenate. The one shape where a
// pushed limit could stop per-shard aggregate accumulation early
// (projection + aggregates, unordered) keeps the full scan.
func rewriteQuery(q engine.Query) *rewrite {
	rw := &rewrite{q: q, orderIdx: -1}

	if len(q.Aggs) > 0 {
		rw.aggPos = make([]int, len(q.Aggs))
		var sub []engine.Agg
		for i, a := range q.Aggs {
			rw.aggPos[i] = len(sub)
			if a.Kind == engine.Avg {
				sub = append(sub,
					engine.Agg{Kind: engine.Sum, Col: a.Col},
					engine.Agg{Kind: engine.CountCol, Col: a.Col})
			} else {
				sub = append(sub, a)
			}
		}
		rw.q.Aggs = sub
	}

	if q.OrderBy != "" {
		for i, name := range q.Select {
			if name == q.OrderBy {
				rw.orderIdx = i
				break
			}
		}
		if rw.orderIdx < 0 {
			sel := make([]string, len(q.Select), len(q.Select)+1)
			copy(sel, q.Select)
			rw.q.Select = append(sel, q.OrderBy)
			rw.orderIdx = len(q.Select)
			rw.orderAdded = true
		}
	}

	if q.Limit > 0 && len(q.Select) > 0 && len(q.Aggs) > 0 && q.OrderBy == "" {
		rw.q.Limit = 0
	}
	return rw
}

// mergeResults combines the per-shard partial results into the logical
// result. partials[i] corresponds to targets[i]; both are in ascending
// shard order, which pins the deterministic output order (concatenation
// and equal-key tie-breaks follow shard number).
func (m *Manager) mergeResults(q engine.Query, rw *rewrite, targets []int, partials []*engine.Result) (*engine.Result, error) {
	out := &engine.Result{}
	for _, p := range partials {
		out.Stats.RowsScanned += p.Stats.RowsScanned
		out.Stats.RowsSkipped += p.Stats.RowsSkipped
		out.Stats.RowsCovered += p.Stats.RowsCovered
		out.Stats.ZonesProbed += p.Stats.ZonesProbed
		out.Stats.SkippersUsed += p.Stats.SkippersUsed
	}

	switch {
	case q.GroupBy != "":
		if err := m.mergeGroups(q, rw, partials, out); err != nil {
			return nil, err
		}
		// Grouped Count is the matching-row count (not groups), limit or
		// not — same as one engine. The limit applies only to Rows.
		for _, p := range partials {
			out.Count += p.Count
		}
	case len(q.Select) > 0:
		if err := mergeRows(q, rw, targets, partials, out); err != nil {
			return nil, err
		}
		out.Count = len(out.Rows)
		if err := m.mergeAggs(q, rw, partials, out); err != nil {
			return nil, err
		}
	default:
		for _, p := range partials {
			out.Count += p.Count
		}
		if err := m.mergeAggs(q, rw, partials, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeAggs recombines global (ungrouped) aggregates from the per-shard
// partial values.
func (m *Manager) mergeAggs(q engine.Query, rw *rewrite, partials []*engine.Result, out *engine.Result) error {
	if len(q.Aggs) == 0 {
		return nil
	}
	cells := make([][]storage.Value, len(partials))
	for i, p := range partials {
		if len(p.Aggs) != len(rw.q.Aggs) {
			return fmt.Errorf("shard: partial carried %d aggregates, want %d", len(p.Aggs), len(rw.q.Aggs))
		}
		cells[i] = p.Aggs
	}
	merged, err := combineAggCells(q.Aggs, rw.aggPos, cells)
	if err != nil {
		return err
	}
	out.Aggs = merged
	return nil
}

// combineAggCells merges per-shard aggregate cell slices (laid out per
// the rewrite) into the logical aggregate values.
func combineAggCells(aggs []engine.Agg, aggPos []int, cells [][]storage.Value) ([]storage.Value, error) {
	out := make([]storage.Value, len(aggs))
	for i, a := range aggs {
		pos := aggPos[i]
		switch a.Kind {
		case engine.CountStar, engine.CountCol:
			var n int64
			for _, c := range cells {
				n += c[pos].Int()
			}
			out[i] = storage.IntValue(n)
		case engine.Sum:
			out[i] = combineSum(cells, pos)
		case engine.Min:
			out[i] = combineExtreme(cells, pos, true)
		case engine.Max:
			out[i] = combineExtreme(cells, pos, false)
		case engine.Avg:
			var n int64
			var sumF float64
			var sumI int64
			isFloat := false
			for _, c := range cells {
				cnt := c[pos+1].Int()
				if cnt == 0 {
					continue
				}
				n += cnt
				sv := c[pos]
				if sv.Type() == storage.Float64 {
					isFloat = true
					sumF += sv.Float()
				} else {
					sumI += sv.Int()
				}
			}
			if n == 0 {
				out[i] = storage.NullValue(storage.Float64)
			} else if isFloat {
				out[i] = storage.FloatValue(sumF / float64(n))
			} else {
				out[i] = storage.FloatValue(float64(sumI) / float64(n))
			}
		default:
			return nil, fmt.Errorf("shard: cannot merge aggregate %v", a.Kind)
		}
	}
	return out, nil
}

// combineSum adds the non-NULL partial sums; NULL iff every shard's
// partial is NULL (no qualifying non-null row anywhere), following SQL.
func combineSum(cells [][]storage.Value, pos int) storage.Value {
	var sumI int64
	var sumF float64
	typ := storage.Int64
	seen := false
	for _, c := range cells {
		v := c[pos]
		if v.IsNull() {
			typ = v.Type()
			continue
		}
		seen = true
		typ = v.Type()
		if v.Type() == storage.Float64 {
			sumF += v.Float()
		} else {
			sumI += v.Int()
		}
	}
	if !seen {
		return storage.NullValue(typ)
	}
	if typ == storage.Float64 {
		return storage.FloatValue(sumF)
	}
	return storage.IntValue(sumI)
}

// combineExtreme folds MIN (wantMin) or MAX over the non-NULL partials.
func combineExtreme(cells [][]storage.Value, pos int, wantMin bool) storage.Value {
	var best storage.Value
	seen := false
	for _, c := range cells {
		v := c[pos]
		if v.IsNull() {
			if !seen {
				best = v
			}
			continue
		}
		if !seen {
			best, seen = v, true
			continue
		}
		if less := valueLess(v, best); (wantMin && less) || (!wantMin && valueLess(best, v)) {
			best = v
		}
	}
	return best
}

// valueLess compares two non-NULL values of the same logical type.
func valueLess(a, b storage.Value) bool {
	switch a.Type() {
	case storage.Int64:
		return a.Int() < b.Int()
	case storage.Float64:
		return a.Float() < b.Float()
	case storage.String:
		return a.Str() < b.Str()
	}
	return false
}

// groupKey is a comparable form of a GROUP BY key value.
type groupKey struct {
	null bool
	i    int64
	f    float64
	s    string
}

func keyOf(v storage.Value) groupKey {
	if v.IsNull() {
		return groupKey{null: true}
	}
	switch v.Type() {
	case storage.Int64:
		return groupKey{i: v.Int()}
	case storage.Float64:
		return groupKey{f: v.Float()}
	default:
		return groupKey{s: v.Str()}
	}
}

// mergeGroups hash-merges per-shard GROUP BY rows by key value, combines
// each group's partial aggregates, and emits groups in key order (NULL
// group last) — the same order one engine produces — truncated to the
// limit.
func (m *Manager) mergeGroups(q engine.Query, rw *rewrite, partials []*engine.Result, out *engine.Result) error {
	type group struct {
		key   storage.Value
		cells [][]storage.Value
	}
	groups := make(map[groupKey]*group)
	for _, p := range partials {
		for _, row := range p.Rows {
			if len(row) != 1+len(rw.q.Aggs) {
				return fmt.Errorf("shard: grouped row arity %d, want %d", len(row), 1+len(rw.q.Aggs))
			}
			k := keyOf(row[0])
			g, ok := groups[k]
			if !ok {
				g = &group{key: row[0]}
				groups[k] = g
			}
			g.cells = append(g.cells, row[1:])
		}
	}

	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.null || kb.null {
			return !ka.null && kb.null // NULL group last
		}
		return valueLess(groups[ka].key, groups[kb].key)
	})
	if q.Limit > 0 && len(keys) > q.Limit {
		keys = keys[:q.Limit]
	}

	gcol, err := m.proto.Column(q.GroupBy)
	if err != nil {
		return err
	}
	out.Columns = make([]string, 1+len(q.Aggs))
	out.Types = make([]storage.Type, 1+len(q.Aggs))
	out.Columns[0] = q.GroupBy
	out.Types[0] = gcol.Type()
	for i, a := range q.Aggs {
		out.Columns[i+1] = a.String()
		out.Types[i+1] = m.aggResultType(a)
	}

	out.Rows = make([][]storage.Value, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		merged, err := combineAggCells(q.Aggs, rw.aggPos, g.cells)
		if err != nil {
			return err
		}
		row := make([]storage.Value, 1+len(merged))
		row[0] = g.key
		copy(row[1:], merged)
		out.Rows = append(out.Rows, row)
	}
	return nil
}

// aggResultType mirrors the engine's result typing: COUNT is BIGINT,
// AVG is DOUBLE, SUM/MIN/MAX follow the aggregated column.
func (m *Manager) aggResultType(a engine.Agg) storage.Type {
	switch a.Kind {
	case engine.CountStar, engine.CountCol:
		return storage.Int64
	case engine.Avg:
		return storage.Float64
	}
	if col, err := m.proto.Column(a.Col); err == nil {
		return col.Type()
	}
	return storage.Int64
}

// mergeRows merges projection rows. With ORDER BY it is a streaming
// k-way merge over the already-sorted per-shard slices, mirroring the
// engine's comparator (value order, NULLs last in both directions, desc
// reverses the non-NULL comparison only) with a deterministic tie-break:
// equal keys come out in ascending shard number, then per-shard row
// order (ascending row index, since each shard's sort is stable over
// ascending ids). Without ORDER BY, rows concatenate in shard order.
func mergeRows(q engine.Query, rw *rewrite, targets []int, partials []*engine.Result, out *engine.Result) error {
	// Result column shape comes from the logical projection: take the
	// first partial's columns, minus the injected order column.
	for _, p := range partials {
		keep := len(p.Columns)
		if rw.orderAdded {
			keep--
		}
		out.Columns = append([]string(nil), p.Columns[:keep]...)
		out.Types = append([]storage.Type(nil), p.Types[:keep]...)
		break
	}

	if q.OrderBy == "" {
		for _, p := range partials {
			out.Rows = append(out.Rows, p.Rows...)
		}
		if q.Limit > 0 && len(out.Rows) > q.Limit {
			out.Rows = out.Rows[:q.Limit]
		}
		return nil
	}

	oi := rw.orderIdx
	cursors := make([]int, len(partials))
	for {
		if q.Limit > 0 && len(out.Rows) >= q.Limit {
			break
		}
		best := -1
		for i, p := range partials {
			if cursors[i] >= len(p.Rows) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a := p.Rows[cursors[i]][oi]
			b := partials[best].Rows[cursors[best]][oi]
			if orderedBefore(a, b, q.OrderDesc) {
				best = i
			}
			// Ties keep the earlier cursor (lower shard number): targets
			// and partials are in ascending shard order.
		}
		if best < 0 {
			break
		}
		row := partials[best].Rows[cursors[best]]
		cursors[best]++
		if rw.orderAdded {
			row = row[:len(row)-1]
		}
		out.Rows = append(out.Rows, row)
	}
	return nil
}

// orderedBefore reports whether a strictly precedes b under the
// engine's ORDER BY comparator: NULLs last regardless of direction,
// descending reverses only the non-NULL comparison.
func orderedBefore(a, b storage.Value, desc bool) bool {
	an, bn := a.IsNull(), b.IsNull()
	if an || bn {
		return !an && bn
	}
	if desc {
		return valueLess(b, a)
	}
	return valueLess(a, b)
}
