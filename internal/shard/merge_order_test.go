package shard

import (
	"testing"

	"adskip/internal/engine"
	"adskip/internal/storage"
	"adskip/internal/table"
)

// TestMergeOrderGolden locks the cross-shard ORDER BY merge order for
// equal keys: ties come out by ascending shard number, then per-shard
// row order (ascending row index — per-shard sorts are stable). This is
// the wire-visible contract; a change here is a breaking change.
func TestMergeOrderGolden(t *testing.T) {
	schema := table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "price", Type: storage.Float64},
	}
	src, err := table.New("g", schema)
	if err != nil {
		t.Fatal(err)
	}
	// Nine rows, ids 0..8. NewFromTable learns equi-depth bounds over the
	// full id column: cuts at sorted[3]=3 and sorted[6]=6, so shard 1
	// holds ids 0-3, shard 2 ids 4-6, shard 3 ids 7-8. Prices tie across
	// shards on 1.0 and 2.0.
	type r struct {
		id    int64
		price float64
	}
	rows := []r{
		{0, 2.0}, {1, 1.0}, {2, 2.0}, {3, 1.0}, // shard 1
		{4, 1.0}, {5, 2.0}, {6, 1.0}, // shard 2
		{7, 1.0}, {8, 2.0}, // shard 3
	}
	for _, row := range rows {
		if err := src.AppendRow(storage.IntValue(row.id), storage.FloatValue(row.price)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewFromTable(src, Options{Shards: 3, Key: "id",
		Engine: engine.Options{Policy: engine.PolicyStatic}})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, q engine.Query, golden []int64) {
		t.Helper()
		res, err := m.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rows) != len(golden) {
			t.Fatalf("%s: %d rows, want %d", name, len(res.Rows), len(golden))
		}
		for i, row := range res.Rows {
			if row[0].Int() != golden[i] {
				got := make([]int64, len(res.Rows))
				for j, rr := range res.Rows {
					got[j] = rr[0].Int()
				}
				t.Fatalf("%s: merged id order = %v, want %v", name, got, golden)
			}
		}
	}

	// Ascending by price: the 1.0 tie group in shard order (shard 1 rows
	// 1,3 → shard 2 rows 4,6 → shard 3 row 7), then the 2.0 group.
	check("asc", engine.Query{Select: []string{"id"}, OrderBy: "price"},
		[]int64{1, 3, 4, 6, 7, 0, 2, 5, 8})

	// Descending: tie groups swap as groups, but WITHIN a tie group the
	// order is still shard 1 first — descending reverses the key
	// comparison only, never the tie-break.
	check("desc", engine.Query{Select: []string{"id"}, OrderBy: "price", OrderDesc: true},
		[]int64{0, 2, 5, 8, 1, 3, 4, 6, 7})

	// A limit cuts inside the first tie group deterministically.
	check("asc_limit", engine.Query{Select: []string{"id"}, OrderBy: "price", Limit: 3},
		[]int64{1, 3, 4})

	// Repeatability: ten runs, identical order every time.
	for i := 0; i < 10; i++ {
		check("repeat", engine.Query{Select: []string{"id"}, OrderBy: "price"},
			[]int64{1, 3, 4, 6, 7, 0, 2, 5, 8})
	}
}
