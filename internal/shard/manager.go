// Package shard implements the sharded scatter-gather engine: a Manager
// partitions one logical table into per-core shards, each backed by its
// own engine.Engine with private adaptive zonemap state, and executes
// queries by (1) pruning shards whose observed key bounds cannot
// intersect the predicate — data skipping one level above zones — then
// (2) fanning the scan out to the surviving shards on parallel workers
// with cooperative cancellation, and (3) merging the partial results
// with a deterministic output order.
//
// Shard pruning is correct independently of routing quality: each shard
// tracks the observed min/max key codes (and NULL-key count) of the rows
// it actually holds, widen-only, so a shard is eliminated only when no
// row in it can satisfy the predicate — exactly the zone-pruning
// argument applied to one giant zone per shard. Routing (range by
// learned equi-depth bounds, or hash) only decides how WELL pruning
// works, never whether results are right.
package shard

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adskip/internal/engine"
	"adskip/internal/obs"
	"adskip/internal/stats"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/wal"
)

// Mode selects how rows are routed to shards.
type Mode uint8

const (
	// ModeRange routes by learned equi-depth split bounds on the key
	// column: the first sizable batch (or the full data when partitioning
	// an existing table) fixes the bounds, and range predicates on the
	// key then prune most shards. The default.
	ModeRange Mode = iota
	// ModeHash routes by a multiplicative hash of the key code: uniform
	// placement, parallel appends, but range predicates touch all shards
	// (point predicates still prune via observed bounds when lucky).
	ModeHash
)

// String names the mode ("range", "hash").
func (m Mode) String() string {
	switch m {
	case ModeRange:
		return "range"
	case ModeHash:
		return "hash"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode parses "range" or "hash".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "range":
		return ModeRange, nil
	case "hash":
		return ModeHash, nil
	}
	return 0, fmt.Errorf("shard: unknown mode %q (want range or hash)", s)
}

// learnRowsPerShard is the minimum batch size (rows per shard) before
// range bounds are learned from a batch; smaller batches round-robin
// until a sizable one arrives.
const learnRowsPerShard = 8

// Options configures a Manager.
type Options struct {
	// Shards is the shard count; must be >= 2 (a 1-shard table is a
	// plain engine — use that directly).
	Shards int
	// Key names the shard key column. It must be an Int64 or Float64
	// column (string dictionary codes are not comparable across shards).
	// "" picks the first numeric column of the schema.
	Key string
	// Mode is the routing mode (default ModeRange).
	Mode Mode
	// Engine is the per-shard engine configuration. The Manager overrides
	// per-shard fields: Shard is stamped 1..Shards, Stats and Admission
	// are held at the Manager (one workload sample and one admission slot
	// per logical query), and Traces/SlowTraces become private per-shard
	// rings — the Manager appends the merged trace to the rings given
	// here.
	Engine engine.Options
}

// shardState is one shard: its engine plus the observed key bounds used
// for pruning. Bounds only widen, and are widened BEFORE rows are
// applied, so pruning can never eliminate a shard holding a matching row.
type shardState struct {
	id  int // 1-based
	eng *engine.Engine

	mu    sync.Mutex
	seen  bool  // any non-NULL key observed
	lo    int64 // observed min key code
	hi    int64 // observed max key code
	nulls int64 // rows observed with a NULL key

	mRows *obs.Gauge
}

// widen folds a batch's observed key stats into the shard's bounds.
func (s *shardState) widen(lo, hi int64, seen bool, nulls int64) {
	s.mu.Lock()
	if seen {
		if !s.seen {
			s.seen, s.lo, s.hi = true, lo, hi
		} else {
			if lo < s.lo {
				s.lo = lo
			}
			if hi > s.hi {
				s.hi = hi
			}
		}
	}
	s.nulls += nulls
	s.mu.Unlock()
}

// Manager is a sharded table: a fixed set of per-shard engines behind
// the same query surface as one engine (it implements sql.Executor).
// All methods are safe for concurrent use; appends to distinct shards
// and queries against distinct shards proceed in parallel.
type Manager struct {
	name   string
	proto  *table.Table // schema-only prototype for planning
	shards []*shardState
	key    string
	keyIdx int
	mode   Mode

	admission *engine.Admission
	traces    *obs.TraceRing
	slow      *obs.TraceRing
	slowThr   time.Duration
	log       *slog.Logger
	stats     *stats.Table
	reg       *obs.Registry

	// Range routing state: nil bounds means not yet learned (round-robin
	// fallback via rr). bounds[i] is the inclusive upper key code of
	// shard i+1; the last shard takes the rest.
	routeMu sync.Mutex
	bounds  []int64
	rr      int

	mPruned  *obs.Counter
	mScanned *obs.Counter
	mQueries *obs.Counter
	mSlow    *obs.Counter
	// mLatency is the LOGICAL query latency (admission to merged result),
	// registered under the same identity an unsharded table would use.
	// The per-shard engines record their own scan latencies under
	// shard="N" labels; mixing those into history quantiles would count
	// one query N times at per-shard durations.
	mLatency *obs.Histogram
	// errQueries counts failed logical queries for the history sampler
	// (per-shard engines would over-count: one cancellation fails every
	// in-flight shard scan).
	errQueries atomic.Int64
}

// New creates an empty sharded table with the given schema.
func New(name string, schema table.Schema, opts Options) (*Manager, error) {
	if opts.Shards < 2 {
		return nil, fmt.Errorf("shard: %d shards (need >= 2; use a plain engine for 1)", opts.Shards)
	}
	proto, err := table.New(name, schema)
	if err != nil {
		return nil, err
	}
	keyIdx := -1
	if opts.Key == "" {
		for i, cs := range schema {
			if cs.Type == storage.Int64 || cs.Type == storage.Float64 {
				opts.Key = cs.Name
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("shard: table %q has no numeric column to shard on", name)
		}
	} else {
		for i, cs := range schema {
			if cs.Name == opts.Key {
				if cs.Type != storage.Int64 && cs.Type != storage.Float64 {
					return nil, fmt.Errorf("shard: key column %q is %s (need BIGINT or DOUBLE)", opts.Key, cs.Type)
				}
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("shard: key column %q not in schema of %q", opts.Key, name)
		}
	}

	m := &Manager{
		name:      name,
		proto:     proto,
		key:       opts.Key,
		keyIdx:    keyIdx,
		mode:      opts.Mode,
		admission: opts.Engine.Admission,
		slowThr:   opts.Engine.SlowQueryThreshold,
		log:       opts.Engine.Logger,
		stats:     opts.Engine.Stats,
	}
	m.reg = opts.Engine.Metrics
	if m.reg == nil {
		m.reg = obs.NewRegistry()
	}
	m.traces = opts.Engine.Traces
	if m.traces == nil {
		m.traces = obs.NewTraceRing(0)
	}
	m.slow = opts.Engine.SlowTraces
	if m.slow == nil {
		m.slow = obs.NewTraceRing(0)
	}
	tl := obs.L("table", name)
	m.mPruned = m.reg.Counter("adskip_shard_pruned_total",
		"Shards eliminated by key-bound pruning before any zone metadata was consulted.", tl)
	m.mScanned = m.reg.Counter("adskip_shard_scanned_total",
		"Shard scans completed by the scatter-gather executor.", tl)
	m.mQueries = m.reg.Counter("adskip_shard_queries_total",
		"Logical queries executed through the scatter-gather executor.", tl)
	m.mSlow = m.reg.Counter("adskip_slow_queries_total",
		"Queries exceeding the slow-query threshold.", tl)
	m.mLatency = m.reg.Histogram("adskip_query_seconds",
		"Query wall-clock latency.", obs.LatencyBuckets(), tl)
	m.reg.Gauge("adskip_shard_count",
		"Number of shards the table is partitioned into.", tl).Set(int64(opts.Shards))

	for i := 0; i < opts.Shards; i++ {
		stbl, err := table.New(name, schema)
		if err != nil {
			return nil, err
		}
		eo := opts.Engine
		eo.Shard = i + 1
		eo.Metrics = m.reg
		eo.Stats = nil             // the Manager records the one logical sample
		eo.Admission = nil         // the Manager admits once per logical query
		eo.Traces = nil            // private per-shard ring (engine-created)
		eo.SlowTraces = nil        // merged trace carries slow detection
		eo.SlowQueryThreshold = 0  // per-shard partials are not "queries"
		s := &shardState{id: i + 1, eng: engine.New(stbl, eo)}
		s.mRows = m.reg.Gauge("adskip_shard_rows",
			"Rows currently held by this shard.", tl, obs.L("shard", strconv.Itoa(s.id)))
		m.shards = append(m.shards, s)
	}
	return m, nil
}

// NewFromTable partitions an existing table's rows across shards. Range
// mode learns equi-depth bounds from the full key column up front, so
// the placement (and therefore pruning) is as good as it gets. Row order
// changes: rows are grouped by shard (a later merged snapshot writes
// them back in shard order).
func NewFromTable(tbl *table.Table, opts Options) (*Manager, error) {
	m, err := New(tbl.Name(), tbl.Schema(), opts)
	if err != nil {
		return nil, err
	}
	n := tbl.NumRows()
	if n > 0 {
		if m.mode == ModeRange {
			key, err := tbl.Column(m.key)
			if err != nil {
				return nil, err
			}
			codes := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				if !key.IsNull(i) {
					codes = append(codes, key.Codes()[i])
				}
			}
			if len(codes) > 0 {
				m.bounds = equidepthBounds(codes, opts.Shards)
			}
		}
		rows := make([][]storage.Value, 0, n)
		for i := 0; i < n; i++ {
			row, err := tbl.Row(i)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		if err := m.AppendRows(rows); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Table returns the schema prototype (no data; per-shard engines hold
// the rows). The SQL planner binds against it.
func (m *Manager) Table() *table.Table { return m.proto }

// NumRows is the logical row count: the sum over shards. Each shard is
// read under its engine mutex, so the sum is safe against concurrent
// appends (though appends landing mid-sum may or may not be counted).
func (m *Manager) NumRows() int {
	n := 0
	for _, s := range m.shards {
		n += s.eng.NumRows()
	}
	return n
}

// Shards returns the shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// Key returns the shard key column name.
func (m *Manager) Key() string { return m.key }

// Mode returns the routing mode.
func (m *Manager) Mode() Mode { return m.mode }

// ShardEngine returns the 1-based shard's engine (nil when out of
// range). Exposed for tests and per-shard introspection.
func (m *Manager) ShardEngine(id int) *engine.Engine {
	if id < 1 || id > len(m.shards) {
		return nil
	}
	return m.shards[id-1].eng
}

// WorkloadStats returns the per-template workload table, or nil.
func (m *Manager) WorkloadStats() *stats.Table { return m.stats }

// keyCode extracts the routing code of one row: (code, isNull).
func (m *Manager) keyCode(row []storage.Value) (int64, bool, error) {
	if m.keyIdx >= len(row) {
		return 0, false, fmt.Errorf("shard: row arity %d misses key column %q (index %d)", len(row), m.key, m.keyIdx)
	}
	v := row[m.keyIdx]
	if v.IsNull() {
		return 0, true, nil
	}
	switch v.Type() {
	case storage.Int64:
		return v.Int(), false, nil
	case storage.Float64:
		f := v.Float()
		if math.IsNaN(f) {
			return 0, false, fmt.Errorf("shard: NaN key value in column %q", m.key)
		}
		return storage.EncodeFloat64(f), false, nil
	}
	return 0, false, fmt.Errorf("shard: key column %q got %s value", m.key, v.Type())
}

// equidepthBounds computes shards-1 inclusive upper bounds dividing the
// observed codes into (approximately) equal-count runs.
func equidepthBounds(codes []int64, shards int) []int64 {
	sorted := make([]int64, len(codes))
	copy(sorted, codes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := make([]int64, shards-1)
	for i := 0; i < shards-1; i++ {
		cut := (i + 1) * len(sorted) / shards
		if cut >= len(sorted) {
			cut = len(sorted) - 1
		}
		bounds[i] = sorted[cut]
	}
	return bounds
}

// hashCode is a multiplicative (Fibonacci) hash of a key code.
func hashCode(code int64) uint64 {
	return uint64(code) * 0x9E3779B97F4A7C15
}

// routeShard picks the shard index (0-based) for one key code under the
// given learned bounds (nil = caller handles fallback).
func (m *Manager) routeShard(code int64, null bool, bounds []int64) int {
	n := len(m.shards)
	if null {
		return 0
	}
	if m.mode == ModeHash {
		return int(hashCode(code) % uint64(n))
	}
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= code })
	return i // i == len(bounds) means the last shard
}

// route partitions a batch of rows into per-shard groups. In range mode
// before bounds are learned, a batch carrying at least
// shards*learnRowsPerShard rows fixes the bounds (equi-depth over the
// batch); smaller early batches round-robin whole to one shard, which
// pruning tolerates because it consults observed bounds, not placement
// intent.
func (m *Manager) route(rows [][]storage.Value) ([][][]storage.Value, error) {
	n := len(m.shards)
	groups := make([][][]storage.Value, n)

	m.routeMu.Lock()
	bounds := m.bounds
	if m.mode == ModeRange && bounds == nil {
		if len(rows) >= n*learnRowsPerShard {
			codes := make([]int64, 0, len(rows))
			for _, r := range rows {
				code, null, err := m.keyCode(r)
				if err != nil {
					m.routeMu.Unlock()
					return nil, err
				}
				if !null {
					codes = append(codes, code)
				}
			}
			if len(codes) > 0 {
				m.bounds = equidepthBounds(codes, n)
				bounds = m.bounds
			}
		}
		if bounds == nil {
			si := m.rr % n
			m.rr++
			m.routeMu.Unlock()
			// Validate key extraction even on the fallback path so bad rows
			// are rejected identically regardless of timing.
			for _, r := range rows {
				if _, _, err := m.keyCode(r); err != nil {
					return nil, err
				}
			}
			groups[si] = rows
			return groups, nil
		}
	}
	m.routeMu.Unlock()

	for _, r := range rows {
		code, null, err := m.keyCode(r)
		if err != nil {
			return nil, err
		}
		si := m.routeShard(code, null, bounds)
		groups[si] = append(groups[si], r)
	}
	return groups, nil
}

// AppendRow appends one row (routed to its shard).
func (m *Manager) AppendRow(vals ...storage.Value) error {
	return m.AppendRows([][]storage.Value{vals})
}

// AppendRows routes a batch to its shards and appends the per-shard
// groups in parallel — each shard engine serializes its own appends, so
// concurrent AppendRows callers writing to different shards no longer
// contend on one table lock. With a WAL armed the per-shard records are
// group-committed and the call returns only when every group is durable.
// Observed key bounds widen BEFORE any row is applied: an over-wide
// bound only costs pruning opportunity, while a late one would cost
// correctness.
func (m *Manager) AppendRows(rows [][]storage.Value) error {
	if len(rows) == 0 {
		return nil
	}
	groups, err := m.route(rows)
	if err != nil {
		return err
	}

	type part struct {
		s    *shardState
		rows [][]storage.Value
	}
	var parts []part
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		s := m.shards[si]
		var lo, hi int64
		seen := false
		var nulls int64
		for _, r := range g {
			code, null, _ := m.keyCode(r)
			if null {
				nulls++
				continue
			}
			if !seen {
				lo, hi, seen = code, code, true
			} else {
				if code < lo {
					lo = code
				}
				if code > hi {
					hi = code
				}
			}
		}
		s.widen(lo, hi, seen, nulls)
		parts = append(parts, part{s: s, rows: g})
	}

	commits := make([]wal.Commit, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			commits[i], errs[i] = parts[i].s.eng.AppendRowsAsync(parts[i].rows)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// All groups logged and applied; wait for durability together so one
	// fsync can absorb every shard's record.
	for i := range parts {
		if err := commits[i].Wait(); err != nil {
			return err
		}
		parts[i].s.mRows.Set(int64(parts[i].s.eng.NumRows()))
	}
	return nil
}

// Update is unsupported on sharded tables: the global-row-to-shard
// mapping depends on append interleaving and is not stable across
// restarts, so a global row index cannot be routed reliably.
func (m *Manager) Update(colName string, row int, v storage.Value) error {
	return fmt.Errorf("shard: UPDATE by global row index is unsupported on sharded tables (query by key and rewrite instead)")
}

// SetWAL arms every shard engine with the same log; each shard stamps
// its shard number into the records it writes, so recovery can route
// them back (see ReplayRecord).
func (m *Manager) SetWAL(l *wal.Log) {
	for _, s := range m.shards {
		s.eng.SetWAL(l)
	}
}

// ReplayRecord routes a recovered WAL record to the shard that logged
// it. Records with no shard number were written unsharded; records with
// a shard number beyond the current count were written at a different
// shard count — both are configuration mismatches, not data corruption,
// so the error says how to reopen.
func (m *Manager) ReplayRecord(rec *wal.Record) error {
	if rec.Shard == 0 {
		return fmt.Errorf("shard: WAL record for table %q carries no shard number (log written unsharded; reopen with Shards=1)", rec.Table)
	}
	if int(rec.Shard) > len(m.shards) {
		return fmt.Errorf("shard: WAL record for table %q routed to shard %d but only %d shards exist (reopen with the shard count the log was written at)",
			rec.Table, rec.Shard, len(m.shards))
	}
	s := m.shards[rec.Shard-1]
	if rec.Kind == wal.KindRows {
		// Widen observed bounds from the replayed rows before applying,
		// mirroring the live append path (replay is idempotent; widening
		// twice is harmless).
		var lo, hi int64
		seen := false
		var nulls int64
		for _, r := range rec.Rows {
			code, null, err := m.keyCode(r)
			if err != nil {
				return err
			}
			if null {
				nulls++
				continue
			}
			if !seen {
				lo, hi, seen = code, code, true
			} else {
				if code < lo {
					lo = code
				}
				if code > hi {
					hi = code
				}
			}
		}
		s.widen(lo, hi, seen, nulls)
	}
	if err := s.eng.ReplayRecord(rec); err != nil {
		return err
	}
	s.mRows.Set(int64(s.eng.NumRows()))
	return nil
}

// Merged materializes the logical table: every shard's rows concatenated
// in shard order. Used by snapshot/CSV export.
func (m *Manager) Merged() (*table.Table, error) {
	out, err := table.New(m.name, m.proto.Schema())
	if err != nil {
		return nil, err
	}
	for _, s := range m.shards {
		st := s.eng.Table()
		for i := 0; i < st.NumRows(); i++ {
			row, err := st.Row(i)
			if err != nil {
				return nil, err
			}
			if err := out.AppendRow(row...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
