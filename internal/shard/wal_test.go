package shard

import (
	"strings"
	"testing"

	"adskip/internal/engine"
	"adskip/internal/expr"
	"adskip/internal/storage"
	"adskip/internal/table"
	"adskip/internal/wal"
)

func walManager(t *testing.T, shards int) *Manager {
	t.Helper()
	m, err := New("w", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "v", Type: storage.Float64},
	}, Options{Shards: shards, Key: "id",
		Engine: engine.Options{Policy: engine.PolicyStatic}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWALRoutesPerShard checks the durability loop: sharded appends log
// per-shard records, and recovery replays each record into the shard
// that wrote it — same placement, same bounds, same query results.
func TestWALRoutesPerShard(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, 3)

	l, _, err := wal.Open(wal.Options{Dir: dir}, func(rec *wal.Record) error {
		t.Fatal("fresh directory replayed a record")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(l)

	rows := make([][]storage.Value, 0, 600)
	for i := 0; i < 600; i++ {
		rows = append(rows, []storage.Value{
			storage.IntValue(int64(i)), storage.FloatValue(float64(i))})
	}
	// Several batches so multiple per-shard records land in the log.
	for lo := 0; lo < len(rows); lo += 100 {
		if err := m.AppendRows(rows[lo : lo+100]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover into a fresh Manager with the same shard count.
	m2 := walManager(t, 3)
	l2, stats, err := wal.Open(wal.Options{Dir: dir}, m2.ReplayRecord)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if stats.Records == 0 {
		t.Fatal("recovery replayed no records")
	}
	if m2.NumRows() != 600 {
		t.Fatalf("recovered %d rows, want 600", m2.NumRows())
	}
	// Placement is preserved shard by shard, not just in total.
	for id := 1; id <= 3; id++ {
		want := m.ShardEngine(id).Table().NumRows()
		got := m2.ShardEngine(id).Table().NumRows()
		if want != got {
			t.Errorf("shard %d: recovered %d rows, want %d", id, got, want)
		}
	}
	// Recovered bounds still prune: a narrow key range must not scan
	// every shard.
	if err := m2.EnableSkipping("id"); err != nil {
		t.Fatal(err)
	}
	res, err := m2.Query(fullRangeCount(0, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 51 {
		t.Errorf("recovered count = %d, want 51", res.Count)
	}
	if res.Stats.ShardsPruned == 0 {
		t.Error("recovered bounds pruned no shards on a narrow key range")
	}
}

func fullRangeCount(lo, hi int64) engine.Query {
	return engine.Query{Where: expr.And(
		expr.MustPred("id", expr.Between, storage.IntValue(lo), storage.IntValue(hi)))}
}

// TestWALShardCountMismatch checks the two configuration-mismatch paths:
// records from a different shard count, and unsharded records replayed
// into a sharded table, both fail with reopen guidance.
func TestWALShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	m := walManager(t, 3)
	l, _, err := wal.Open(wal.Options{Dir: dir}, func(*wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(l)
	// Enough rows to learn range bounds and land records on every shard —
	// a shard-3 record is what the 2-shard replay must choke on.
	batch := make([][]storage.Value, 0, 100)
	for i := 0; i < 100; i++ {
		batch = append(batch, []storage.Value{
			storage.IntValue(int64(i * 10)), storage.FloatValue(float64(i))})
	}
	if err := m.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Fewer shards than the log was written at: replay must refuse with
	// guidance, not drop or misroute rows.
	m2 := walManager(t, 2)
	if _, _, err := wal.Open(wal.Options{Dir: dir}, m2.ReplayRecord); err == nil ||
		!strings.Contains(err.Error(), "shard count") {
		t.Errorf("replay at wrong shard count: err = %v, want shard-count guidance", err)
	}

	// Unsharded log replayed into a sharded table.
	dir2 := t.TempDir()
	tbl, err := table.New("w", table.Schema{
		{Name: "id", Type: storage.Int64},
		{Name: "v", Type: storage.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(tbl, engine.Options{})
	l2, _, err := wal.Open(wal.Options{Dir: dir2}, func(*wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	e.SetWAL(l2)
	if err := e.AppendRows([][]storage.Value{{storage.IntValue(1), storage.FloatValue(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	m3 := walManager(t, 2)
	if _, _, err := wal.Open(wal.Options{Dir: dir2}, m3.ReplayRecord); err == nil ||
		!strings.Contains(err.Error(), "unsharded") {
		t.Errorf("unsharded log into sharded table: err = %v, want unsharded guidance", err)
	}
}
