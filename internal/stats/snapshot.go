package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"adskip/internal/obs"
)

// Sort keys accepted by Snapshot and WriteCSV.
const (
	SortTime  = "time"  // total execution time, descending (default)
	SortCalls = "calls" // call count, descending
	SortBytes = "bytes" // bytes scanned, descending
)

// ValidSort reports whether key names a supported sort order ("" means
// the default, SortTime).
func ValidSort(key string) bool {
	switch key {
	case "", SortTime, SortCalls, SortBytes:
		return true
	}
	return false
}

// TemplateSnapshot is the exported aggregate for one query template.
// The JSON field set is the /workload wire schema — golden-locked by
// telemetry tests; additions are fine, renames and removals are not.
type TemplateSnapshot struct {
	Fingerprint string `json:"fingerprint"`
	Table       string `json:"table"`
	Calls       int64  `json:"calls"`
	Errors      int64  `json:"errors"`
	CacheHits   int64  `json:"cache_hits"`

	TotalSeconds float64 `json:"total_seconds"`
	MeanUS       float64 `json:"mean_us"`
	P50US        float64 `json:"p50_us"`
	P95US        float64 `json:"p95_us"`

	RowsRead     int64   `json:"rows_read"`
	RowsReturned int64   `json:"rows_returned"`
	RowsSkipped  int64   `json:"rows_skipped"`
	SkipRatio    float64 `json:"skip_ratio"`
	ZonesRead    int64   `json:"zones_read"`
	ZonesPruned  int64   `json:"zones_pruned"`
	BytesScanned int64   `json:"bytes_scanned"`

	// Skip-regression detector view: the fast EWMA and slow learned
	// baseline of this template's per-query skip rate, and their positive
	// gap (0 when the template prunes at or above its own history).
	SkipFast       float64 `json:"skip_fast"`
	SkipBase       float64 `json:"skip_base"`
	SkipRegression float64 `json:"skip_regression"`

	// ZoneTouch is the bounded zone-touch sketch: per column, the sorted
	// IDs of zones this template has read. ZoneTouchDropped counts IDs
	// that did not fit the sketch bound.
	ZoneTouch        map[string][]int `json:"zone_touch,omitempty"`
	ZoneTouchDropped int64            `json:"zone_touch_dropped,omitempty"`

	// Shard scatter-gather attribution (sharded tables only, all omitted
	// otherwise): cumulative shards scanned vs pruned, and the sorted
	// 1-based shard numbers this template has ever scanned.
	ShardsScanned int64 `json:"shards_scanned,omitempty"`
	ShardsPruned  int64 `json:"shards_pruned,omitempty"`
	Shards        []int `json:"shards,omitempty"`

	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
}

// WorkloadSnapshot is a point-in-time view of the whole table, sorted
// and truncated for exposition.
type WorkloadSnapshot struct {
	Templates      []TemplateSnapshot `json:"templates"`
	TotalTemplates int                `json:"total_templates"` // tracked, before top-K truncation
	Evicted        int64              `json:"evicted_templates"`
	Recorded       int64              `json:"recorded_calls"`
	SortedBy       string             `json:"sorted_by"`
	// MaxShard is the highest 1-based shard number seen across all tracked
	// templates (0 when the workload is unsharded). The telemetry server
	// uses it to validate ?shard=N filters.
	MaxShard int `json:"max_shard,omitempty"`
}

// Snapshot copies the top-k templates under the given sort order
// ("" = SortTime; k <= 0 = all). Unknown sort keys fall back to SortTime
// — callers that must reject them use ValidSort first.
func (t *Table) Snapshot(sortBy string, k int) WorkloadSnapshot {
	if t == nil {
		return WorkloadSnapshot{Templates: []TemplateSnapshot{}, SortedBy: SortTime}
	}
	if sortBy == "" || !ValidSort(sortBy) {
		sortBy = SortTime
	}

	t.mu.Lock()
	snap := WorkloadSnapshot{
		Templates:      make([]TemplateSnapshot, 0, len(t.byFP)),
		TotalTemplates: len(t.byFP),
		Evicted:        t.evicted,
		Recorded:       t.recorded,
		SortedBy:       sortBy,
	}
	for _, e := range t.byFP {
		ts := t.snapshotEntryLocked(e)
		if n := len(ts.Shards); n > 0 && ts.Shards[n-1] > snap.MaxShard {
			snap.MaxShard = ts.Shards[n-1]
		}
		snap.Templates = append(snap.Templates, ts)
	}
	t.mu.Unlock()

	less := func(a, b TemplateSnapshot) bool { return a.TotalSeconds > b.TotalSeconds }
	switch sortBy {
	case SortCalls:
		less = func(a, b TemplateSnapshot) bool { return a.Calls > b.Calls }
	case SortBytes:
		less = func(a, b TemplateSnapshot) bool { return a.BytesScanned > b.BytesScanned }
	}
	// Fingerprint is the deterministic tiebreak so equal-weight templates
	// (common in tests and fresh tables) snapshot in a stable order.
	sort.Slice(snap.Templates, func(i, j int) bool {
		a, b := snap.Templates[i], snap.Templates[j]
		if less(a, b) != less(b, a) {
			return less(a, b)
		}
		return a.Fingerprint < b.Fingerprint
	})
	if k > 0 && len(snap.Templates) > k {
		snap.Templates = snap.Templates[:k]
	}
	return snap
}

// snapshotEntryLocked copies one live entry into its exported form.
// Caller holds t.mu.
func (t *Table) snapshotEntryLocked(e *entry) TemplateSnapshot {
	ts := TemplateSnapshot{
		Fingerprint:      e.fp,
		Table:            e.table,
		Calls:            e.calls,
		Errors:           e.errors,
		CacheHits:        e.cacheHits,
		TotalSeconds:     e.totalSeconds,
		P50US:            1e6 * obs.QuantileFromBuckets(t.bounds, e.latBuckets, 0.50),
		P95US:            1e6 * obs.QuantileFromBuckets(t.bounds, e.latBuckets, 0.95),
		RowsRead:         e.rowsRead,
		RowsReturned:     e.rowsReturned,
		RowsSkipped:      e.rowsSkipped,
		ZonesRead:        e.zonesRead,
		ZonesPruned:      e.zonesPruned,
		BytesScanned:     e.bytesScanned,
		ZoneTouchDropped: e.zoneDropped,
		ShardsScanned:    e.shardsScanned,
		ShardsPruned:     e.shardsPruned,
		FirstSeen:        e.firstSeen,
		LastSeen:         e.lastSeen,
	}
	if len(e.shards) > 0 {
		ts.Shards = make([]int, 0, len(e.shards))
		for sh := range e.shards {
			ts.Shards = append(ts.Shards, sh)
		}
		sort.Ints(ts.Shards)
	}
	if ts.Calls > 0 {
		ts.MeanUS = 1e6 * ts.TotalSeconds / float64(ts.Calls)
	}
	if denom := e.rowsSkipped + e.rowsRead; denom > 0 {
		ts.SkipRatio = float64(e.rowsSkipped) / float64(denom)
	}
	ts.SkipFast, ts.SkipBase = e.skipFast, e.skipBase
	if gap := e.skipBase - e.skipFast; gap > 0 {
		ts.SkipRegression = gap
	}
	if len(e.zones) > 0 {
		ts.ZoneTouch = make(map[string][]int, len(e.zones))
		for col, ids := range e.zones {
			out := make([]int, 0, len(ids))
			for id := range ids {
				out = append(out, id)
			}
			sort.Ints(out)
			ts.ZoneTouch[col] = out
		}
	}
	return ts
}

// Template returns the snapshot of one template by fingerprint (without
// refreshing its LRU position).
func (t *Table) Template(fingerprint string) (TemplateSnapshot, bool) {
	if t == nil {
		return TemplateSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byFP[fingerprint]
	if !ok {
		return TemplateSnapshot{}, false
	}
	return t.snapshotEntryLocked(e), true
}

// WriteCSV writes the snapshot as CSV: one header row, one row per
// template, zone-touch sketch flattened to "col:id col:id ...".
func (t *Table) WriteCSV(w io.Writer, sortBy string, k int) error {
	return WriteSnapshotCSV(w, t.Snapshot(sortBy, k))
}

// WriteSnapshotCSV writes an already-taken snapshot as CSV — the
// filter-then-export path (e.g. the telemetry server's ?shard=N view).
func WriteSnapshotCSV(w io.Writer, snap WorkloadSnapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"fingerprint", "table", "calls", "errors", "cache_hits",
		"total_seconds", "mean_us", "p50_us", "p95_us",
		"rows_read", "rows_returned", "rows_skipped", "skip_ratio",
		"zones_read", "zones_pruned", "bytes_scanned",
		"zone_touch", "zone_touch_dropped",
		"shards_scanned", "shards_pruned", "shards",
	}); err != nil {
		return err
	}
	for _, ts := range snap.Templates {
		var zt []string
		cols := make([]string, 0, len(ts.ZoneTouch))
		for col := range ts.ZoneTouch {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			for _, id := range ts.ZoneTouch[col] {
				zt = append(zt, fmt.Sprintf("%s:%d", col, id))
			}
		}
		rec := []string{
			ts.Fingerprint, ts.Table,
			strconv.FormatInt(ts.Calls, 10),
			strconv.FormatInt(ts.Errors, 10),
			strconv.FormatInt(ts.CacheHits, 10),
			strconv.FormatFloat(ts.TotalSeconds, 'f', 6, 64),
			strconv.FormatFloat(ts.MeanUS, 'f', 1, 64),
			strconv.FormatFloat(ts.P50US, 'f', 1, 64),
			strconv.FormatFloat(ts.P95US, 'f', 1, 64),
			strconv.FormatInt(ts.RowsRead, 10),
			strconv.FormatInt(ts.RowsReturned, 10),
			strconv.FormatInt(ts.RowsSkipped, 10),
			strconv.FormatFloat(ts.SkipRatio, 'f', 4, 64),
			strconv.FormatInt(ts.ZonesRead, 10),
			strconv.FormatInt(ts.ZonesPruned, 10),
			strconv.FormatInt(ts.BytesScanned, 10),
			strings.Join(zt, " "),
			strconv.FormatInt(ts.ZoneTouchDropped, 10),
			strconv.FormatInt(ts.ShardsScanned, 10),
			strconv.FormatInt(ts.ShardsPruned, 10),
			strings.Join(shardList(ts.Shards), " "),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func shardList(shards []int) []string {
	out := make([]string, len(shards))
	for i, sh := range shards {
		out[i] = strconv.Itoa(sh)
	}
	return out
}
