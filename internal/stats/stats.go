// Package stats is the workload-analytics layer: a bounded, concurrency-
// safe table of per-query-template statistics, in the spirit of
// pg_stat_statements. The engine records one Sample per query under the
// query's fingerprint (the literal-stripped template rendered by
// internal/sql); this package aggregates calls, errors, latency
// histograms, row/zone/byte counts, and a bounded zone-touch sketch —
// the set of zone IDs each template actually reads, the seed of a
// provenance-based skipping profile.
//
// The table is LRU-bounded: when a workload carries more distinct
// templates than MaxTemplates, the least-recently-called template is
// evicted (its history is lost and counted in EvictedTemplates). The
// zone-touch sketch is bounded separately per template; IDs beyond the
// cap are dropped and counted, never sampled-in, so the sketch is an
// exact subset of the touched zones.
package stats

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"adskip/internal/obs"
)

// Defaults for Options zero values.
const (
	DefaultMaxTemplates   = 256
	DefaultZoneSketchSize = 512
)

// Options configures a stats table.
type Options struct {
	// MaxTemplates bounds the number of distinct templates tracked;
	// the least-recently-called template is evicted beyond it.
	// 0 means DefaultMaxTemplates.
	MaxTemplates int
	// ZoneSketchSize bounds the zone-touch sketch per template (distinct
	// zone IDs across all columns). 0 means DefaultZoneSketchSize;
	// negative disables the sketch entirely.
	ZoneSketchSize int
	// Registry, when non-nil, receives adskip_stats_* metrics.
	Registry *obs.Registry
}

// Skip-regression EWMA steps. The fast average converges in a few
// queries (α=0.3 → ~5-query window) so a genuine regression is visible
// quickly; the baseline moves two orders slower (α=0.02 → ~100-query
// window) so it remembers what the template achieved before the drop
// instead of chasing it down.
const (
	skipFastAlpha = 0.3
	skipBaseAlpha = 0.02
)

// Sample is one executed (or failed) query, already attributed to a
// template by the caller.
type Sample struct {
	Fingerprint string
	Table       string
	Err         bool // the query failed; only Latency is aggregated
	CacheHit    bool // served from a prepared-statement / plan cache
	Latency     time.Duration
	RowsRead     int64 // rows actually examined after pruning
	RowsReturned int64 // rows (or groups) in the result
	RowsSkipped  int64 // rows pruned by skipping metadata
	ZonesRead    int64 // candidate zones scanned
	ZonesPruned  int64 // zones eliminated by metadata probes
	BytesScanned int64
	// ZoneIDs lists the candidate zone IDs read, per column. Synthetic
	// IDs (< 0) are ignored.
	ZoneIDs map[string][]int
	// Shard scatter-gather attribution (sharded tables only; all zero on
	// unsharded engines). Shards lists the 1-based shard numbers this
	// query actually scanned, for the /workload?shard=N filter.
	ShardsScanned int64
	ShardsPruned  int64
	Shards        []int
}

// entry is the live aggregate for one template. Guarded by Table.mu.
type entry struct {
	fp    string
	table string
	elem  *list.Element

	calls, errors, cacheHits int64
	totalSeconds             float64
	latBuckets               []int64 // on the shared obs latency bounds

	rowsRead, rowsReturned, rowsSkipped int64
	zonesRead, zonesPruned              int64
	bytesScanned                        int64
	shardsScanned, shardsPruned         int64
	shards                              map[int]struct{} // 1-based shard numbers ever scanned

	// Skip-regression detector state: two EWMAs of the template's
	// per-query skip rate. skipFast tracks recent behavior; skipBase is
	// the slow learned baseline of what the template used to achieve.
	// A positive (base − fast) gap means pruning has degraded — stale
	// metadata after appends, merged-away zones, or arbitration flips —
	// and feeds the skip_regression health signal via RegressionGap.
	skipFast, skipBase float64
	skipSeen           bool

	zones       map[string]map[int]struct{} // column -> touched zone IDs
	zoneCount   int                         // total IDs across columns
	zoneDropped int64                       // IDs dropped at the sketch cap

	firstSeen, lastSeen time.Time
}

// Table is the bounded per-template statistics table. All methods are
// safe for concurrent use.
type Table struct {
	mu     sync.Mutex
	opts   Options
	byFP   map[string]*entry
	order  *list.List // front = most recently called
	bounds []float64  // shared latency bucket bounds

	recorded int64 // samples accepted (lifetime)
	evicted  int64 // templates evicted (lifetime)

	mTemplates   *obs.Gauge
	mRecorded    *obs.Counter
	mErrors      *obs.Counter
	mEvicted     *obs.Counter
	mZoneDropped *obs.Counter
	mSkipReg     *obs.Gauge
}

// New builds a stats table. Options zero values take the defaults above.
func New(opts Options) *Table {
	if opts.MaxTemplates <= 0 {
		opts.MaxTemplates = DefaultMaxTemplates
	}
	if opts.ZoneSketchSize == 0 {
		opts.ZoneSketchSize = DefaultZoneSketchSize
	}
	t := &Table{
		opts:   opts,
		byFP:   make(map[string]*entry),
		order:  list.New(),
		bounds: obs.LatencyBuckets(),
	}
	if reg := opts.Registry; reg != nil {
		t.mTemplates = reg.Gauge("adskip_stats_templates",
			"Distinct query templates currently tracked by the workload stats table.")
		t.mRecorded = reg.Counter("adskip_stats_recorded_total",
			"Query samples recorded into the workload stats table.")
		t.mErrors = reg.Counter("adskip_stats_errors_total",
			"Failed queries recorded into the workload stats table.")
		t.mEvicted = reg.Counter("adskip_stats_evicted_total",
			"Templates evicted from the workload stats table (LRU bound).")
		t.mZoneDropped = reg.Counter("adskip_stats_zone_ids_dropped_total",
			"Zone IDs dropped from zone-touch sketches at the per-template cap.")
		t.mSkipReg = reg.Gauge("adskip_adapt_skip_regression_ppm",
			"Worst per-template skip-rate regression (baseline minus fast EWMA), parts per million.")
	}
	return t
}

// Record folds one sample into its template's aggregate, creating the
// template (and evicting the LRU one past the bound) as needed. Samples
// without a fingerprint are ignored.
func (t *Table) Record(s Sample) {
	if t == nil || s.Fingerprint == "" {
		return
	}
	t.mu.Lock()
	var evictedNow int64
	e, ok := t.byFP[s.Fingerprint]
	if !ok {
		e = &entry{
			fp:         s.Fingerprint,
			table:      s.Table,
			latBuckets: make([]int64, len(t.bounds)+1),
			firstSeen:  time.Now(),
		}
		e.elem = t.order.PushFront(e)
		t.byFP[s.Fingerprint] = e
		for t.order.Len() > t.opts.MaxTemplates {
			lru := t.order.Back()
			t.order.Remove(lru)
			delete(t.byFP, lru.Value.(*entry).fp)
			t.evicted++
			evictedNow++
		}
	} else {
		t.order.MoveToFront(e.elem)
	}
	if e.table == "" {
		e.table = s.Table
	}
	e.lastSeen = time.Now()
	e.calls++
	sec := s.Latency.Seconds()
	e.totalSeconds += sec
	e.latBuckets[sort.SearchFloat64s(t.bounds, sec)]++
	if s.Err {
		e.errors++
	} else {
		if s.CacheHit {
			e.cacheHits++
		}
		e.rowsRead += s.RowsRead
		e.rowsReturned += s.RowsReturned
		e.rowsSkipped += s.RowsSkipped
		e.zonesRead += s.ZonesRead
		e.zonesPruned += s.ZonesPruned
		e.bytesScanned += s.BytesScanned
		e.shardsScanned += s.ShardsScanned
		e.shardsPruned += s.ShardsPruned
		if denom := s.RowsSkipped + s.RowsRead; denom > 0 {
			rate := float64(s.RowsSkipped) / float64(denom)
			if !e.skipSeen {
				// Warm start: the first observation seeds both averages so
				// a fresh template never reports a spurious gap.
				e.skipFast, e.skipBase, e.skipSeen = rate, rate, true
			} else {
				e.skipFast += skipFastAlpha * (rate - e.skipFast)
				e.skipBase += skipBaseAlpha * (rate - e.skipBase)
			}
		}
		for _, sh := range s.Shards {
			if sh <= 0 {
				continue
			}
			if e.shards == nil {
				e.shards = make(map[int]struct{})
			}
			e.shards[sh] = struct{}{}
		}
		t.sketchLocked(e, s.ZoneIDs)
	}
	t.recorded++
	templates := t.order.Len()
	t.mu.Unlock()

	if t.mRecorded != nil {
		t.mRecorded.Inc()
		if s.Err {
			t.mErrors.Inc()
		}
		t.mTemplates.Set(int64(templates))
		if evictedNow > 0 {
			t.mEvicted.Add(evictedNow)
		}
	}
}

// sketchLocked folds this query's touched zone IDs into the template's
// bounded sketch. Negative IDs (synthetic zones) never enter the sketch.
func (t *Table) sketchLocked(e *entry, zoneIDs map[string][]int) {
	if t.opts.ZoneSketchSize < 0 || len(zoneIDs) == 0 {
		return
	}
	for col, ids := range zoneIDs {
		m := e.zones[col]
		for _, id := range ids {
			if id < 0 {
				continue
			}
			if m != nil {
				if _, dup := m[id]; dup {
					continue
				}
			}
			if e.zoneCount >= t.opts.ZoneSketchSize {
				e.zoneDropped++
				if t.mZoneDropped != nil {
					t.mZoneDropped.Inc()
				}
				continue
			}
			if m == nil {
				m = make(map[int]struct{})
				if e.zones == nil {
					e.zones = make(map[string]map[int]struct{})
				}
				e.zones[col] = m
			}
			m[id] = struct{}{}
			e.zoneCount++
		}
	}
}

// RegressionGap returns the worst per-template skip-rate regression
// currently tracked: max over templates of (learned baseline − fast
// EWMA), clamped at 0. Zero means no template prunes worse than its own
// history. The health monitor samples this once per tick as the
// skip_regression signal; the call also refreshes the
// adskip_adapt_skip_regression_ppm gauge.
func (t *Table) RegressionGap() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	worst := 0.0
	for _, e := range t.byFP {
		if !e.skipSeen {
			continue
		}
		if gap := e.skipBase - e.skipFast; gap > worst {
			worst = gap
		}
	}
	t.mu.Unlock()
	if t.mSkipReg != nil {
		t.mSkipReg.Set(int64(worst * 1e6))
	}
	return worst
}

// Len reports how many templates are currently tracked.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}
