package stats

import (
	"math"
	"testing"
	"time"

	"adskip/internal/obs"
)

func skipSample(fp string, read, skipped int64) Sample {
	return Sample{Fingerprint: fp, Table: "data", Latency: time.Millisecond,
		RowsRead: read, RowsSkipped: skipped}
}

// A fresh template's first observation seeds both EWMAs, so it must not
// report a gap no matter how bad its first skip rate is.
func TestSkipRegressionWarmStart(t *testing.T) {
	tb := New(Options{})
	tb.Record(skipSample("q1", 1000, 0)) // 0% skip, first sample
	if gap := tb.RegressionGap(); gap != 0 {
		t.Fatalf("RegressionGap after warm start = %v, want 0", gap)
	}
	snap := tb.Snapshot("", 0)
	ts := snap.Templates[0]
	if ts.SkipFast != 0 || ts.SkipBase != 0 || ts.SkipRegression != 0 {
		t.Fatalf("warm start EWMAs = fast %v base %v gap %v, want all 0", ts.SkipFast, ts.SkipBase, ts.SkipRegression)
	}
}

// A template that prunes well, then abruptly stops pruning, must open a
// gap: the fast EWMA chases the collapse while the slow baseline
// remembers what the template used to achieve.
func TestSkipRegressionDetectsCollapse(t *testing.T) {
	tb := New(Options{})
	for i := 0; i < 50; i++ {
		tb.Record(skipSample("q1", 100, 900)) // steady 90% skip
	}
	if gap := tb.RegressionGap(); gap != 0 {
		t.Fatalf("steady workload opened a gap: %v", gap)
	}
	for i := 0; i < 10; i++ {
		tb.Record(skipSample("q1", 1000, 0)) // pruning collapses to 0%
	}
	gap := tb.RegressionGap()
	if gap < 0.5 {
		t.Fatalf("RegressionGap after collapse = %v, want > 0.5 (base ~0.9, fast near 0)", gap)
	}
	ts := tb.Snapshot("", 0).Templates[0]
	// After 10 zero-skip samples the baseline has decayed by (1−0.02)^10
	// ≈ 0.82 of its 0.9 steady state — still ~0.73 while the fast EWMA
	// has all but reached zero.
	if ts.SkipBase < 0.7 {
		t.Fatalf("baseline forgot too fast: %v", ts.SkipBase)
	}
	if ts.SkipFast > 0.1 {
		t.Fatalf("fast EWMA chased too slowly: %v", ts.SkipFast)
	}
	if math.Abs(ts.SkipRegression-gap) > 1e-9 {
		t.Fatalf("snapshot gap %v != table gap %v", ts.SkipRegression, gap)
	}
}

// The gap must close again once pruning recovers — the detector is a
// hysteresis input, not a latch.
func TestSkipRegressionRecovers(t *testing.T) {
	tb := New(Options{})
	for i := 0; i < 50; i++ {
		tb.Record(skipSample("q1", 100, 900))
	}
	for i := 0; i < 10; i++ {
		tb.Record(skipSample("q1", 1000, 0))
	}
	if gap := tb.RegressionGap(); gap < 0.5 {
		t.Fatalf("collapse not detected: %v", gap)
	}
	for i := 0; i < 50; i++ {
		tb.Record(skipSample("q1", 100, 900))
	}
	if gap := tb.RegressionGap(); gap > 0.05 {
		t.Fatalf("gap did not close after recovery: %v", gap)
	}
}

// A template that improves (fast above baseline) must not register as a
// regression, and the worst template wins across the table.
func TestSkipRegressionWorstTemplateWins(t *testing.T) {
	tb := New(Options{})
	// q-up starts poor and improves: fast > base, gap clamped to 0.
	tb.Record(skipSample("q-up", 1000, 0))
	for i := 0; i < 20; i++ {
		tb.Record(skipSample("q-up", 100, 900))
	}
	// q-down regresses mildly, q-worse regresses hard.
	for i := 0; i < 50; i++ {
		tb.Record(skipSample("q-down", 100, 900))
		tb.Record(skipSample("q-worse", 50, 950))
	}
	for i := 0; i < 3; i++ {
		tb.Record(skipSample("q-down", 300, 700)) // 70%: small dip
	}
	for i := 0; i < 10; i++ {
		tb.Record(skipSample("q-worse", 1000, 0)) // total collapse
	}
	gap := tb.RegressionGap()
	if gap < 0.5 {
		t.Fatalf("worst gap = %v, want the q-worse collapse (> 0.5)", gap)
	}
	var worst float64
	for _, ts := range tb.Snapshot("", 0).Templates {
		if ts.SkipRegression > worst {
			worst = ts.SkipRegression
		}
	}
	if math.Abs(worst-gap) > 1e-9 {
		t.Fatalf("RegressionGap %v != worst snapshot gap %v", gap, worst)
	}
}

// RegressionGap refreshes the ppm gauge as a side effect.
func TestSkipRegressionGauge(t *testing.T) {
	reg := obs.NewRegistry()
	tb := New(Options{Registry: reg})
	for i := 0; i < 50; i++ {
		tb.Record(skipSample("q1", 100, 900))
	}
	for i := 0; i < 10; i++ {
		tb.Record(skipSample("q1", 1000, 0))
	}
	gap := tb.RegressionGap()
	got := reg.Gauge("adskip_adapt_skip_regression_ppm", "").Load()
	if want := int64(gap * 1e6); got != want {
		t.Fatalf("gauge = %d ppm, want %d", got, want)
	}
	// Queries with nothing to scan must not move the EWMAs.
	tb.Record(Sample{Fingerprint: "q1", Table: "data", Latency: time.Millisecond})
	if after := tb.RegressionGap(); math.Abs(after-gap) > 1e-9 {
		t.Fatalf("zero-row sample moved the gap: %v -> %v", gap, after)
	}
}
