package stats

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"adskip/internal/obs"
)

func sample(fp string, lat time.Duration) Sample {
	return Sample{
		Fingerprint: fp, Table: "data", Latency: lat,
		RowsRead: 100, RowsReturned: 1, RowsSkipped: 900,
		ZonesRead: 2, ZonesPruned: 18, BytesScanned: 800,
		ZoneIDs: map[string][]int{"v": {0, 3}},
	}
}

func TestRecordAggregates(t *testing.T) {
	tb := New(Options{})
	tb.Record(sample("SELECT COUNT(*) FROM data WHERE v < ?", time.Millisecond))
	tb.Record(sample("SELECT COUNT(*) FROM data WHERE v < ?", 3*time.Millisecond))
	s := Sample{Fingerprint: "SELECT COUNT(*) FROM data WHERE v < ?", Table: "data",
		Err: true, Latency: time.Millisecond}
	tb.Record(s)

	snap := tb.Snapshot("", 0)
	if len(snap.Templates) != 1 {
		t.Fatalf("want 1 template, got %d", len(snap.Templates))
	}
	ts := snap.Templates[0]
	if ts.Calls != 3 || ts.Errors != 1 {
		t.Fatalf("calls=%d errors=%d, want 3/1", ts.Calls, ts.Errors)
	}
	if ts.RowsRead != 200 || ts.RowsSkipped != 1800 || ts.ZonesRead != 4 || ts.ZonesPruned != 36 {
		t.Fatalf("row/zone totals wrong: %+v", ts)
	}
	if ts.BytesScanned != 1600 {
		t.Fatalf("bytes_scanned=%d, want 1600", ts.BytesScanned)
	}
	if got := ts.ZoneTouch["v"]; len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("zone touch = %v, want [0 3]", got)
	}
	if ts.SkipRatio < 0.89 || ts.SkipRatio > 0.91 {
		t.Fatalf("skip ratio = %f, want 0.9", ts.SkipRatio)
	}
	if ts.P95US <= 0 || ts.TotalSeconds <= 0 || ts.MeanUS <= 0 {
		t.Fatalf("latency aggregates missing: %+v", ts)
	}
	if snap.Recorded != 3 || snap.TotalTemplates != 1 {
		t.Fatalf("snapshot totals wrong: %+v", snap)
	}
}

func TestRecordIgnoresEmptyFingerprint(t *testing.T) {
	tb := New(Options{})
	tb.Record(Sample{Latency: time.Millisecond})
	if tb.Len() != 0 {
		t.Fatalf("unfingerprinted sample created a template")
	}
	var nilTable *Table
	nilTable.Record(sample("x", time.Millisecond)) // must not panic
	if got := nilTable.Snapshot("", 0); len(got.Templates) != 0 {
		t.Fatalf("nil table snapshot not empty")
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New(Options{MaxTemplates: 4})
	for i := 0; i < 8; i++ {
		tb.Record(sample(fmt.Sprintf("T%d", i), time.Millisecond))
	}
	// Re-touch T5 so it is MRU, then add one more: T4 is the LRU victim.
	tb.Record(sample("T5", time.Millisecond))
	tb.Record(sample("T8", time.Millisecond))
	snap := tb.Snapshot(SortCalls, 0)
	if snap.TotalTemplates != 4 {
		t.Fatalf("want 4 tracked templates, got %d", snap.TotalTemplates)
	}
	if snap.Evicted != 5 {
		t.Fatalf("want 5 evictions, got %d", snap.Evicted)
	}
	have := make(map[string]bool)
	for _, ts := range snap.Templates {
		have[ts.Fingerprint] = true
	}
	if !have["T5"] || !have["T8"] || have["T4"] {
		t.Fatalf("LRU order wrong, tracked: %v", have)
	}
}

func TestZoneSketchBound(t *testing.T) {
	tb := New(Options{ZoneSketchSize: 4})
	ids := []int{0, 1, 2, 3, 4, 5, -1} // -1 is a synthetic zone: never sketched
	tb.Record(Sample{Fingerprint: "T", Table: "data", Latency: time.Millisecond,
		ZoneIDs: map[string][]int{"v": ids}})
	// Duplicates of already-sketched IDs never count as drops.
	tb.Record(Sample{Fingerprint: "T", Table: "data", Latency: time.Millisecond,
		ZoneIDs: map[string][]int{"v": {0, 1, 6}}})
	ts := tb.Snapshot("", 0).Templates[0]
	if got := len(ts.ZoneTouch["v"]); got != 4 {
		t.Fatalf("sketch size = %d, want 4", got)
	}
	if ts.ZoneTouchDropped != 3 { // 4, 5 from the first call, 6 from the second
		t.Fatalf("dropped = %d, want 3", ts.ZoneTouchDropped)
	}
	for _, id := range ts.ZoneTouch["v"] {
		if id < 0 {
			t.Fatalf("synthetic zone id %d entered the sketch", id)
		}
	}
}

func TestSnapshotSortOrders(t *testing.T) {
	tb := New(Options{})
	for i := 0; i < 3; i++ {
		tb.Record(Sample{Fingerprint: "hot", Latency: time.Millisecond, BytesScanned: 10})
	}
	tb.Record(Sample{Fingerprint: "slow", Latency: time.Second, BytesScanned: 5})
	tb.Record(Sample{Fingerprint: "big", Latency: time.Microsecond, BytesScanned: 1 << 20})

	if top := tb.Snapshot(SortTime, 1).Templates[0].Fingerprint; top != "slow" {
		t.Fatalf("sort=time top = %q, want slow", top)
	}
	if top := tb.Snapshot(SortCalls, 1).Templates[0].Fingerprint; top != "hot" {
		t.Fatalf("sort=calls top = %q, want hot", top)
	}
	if top := tb.Snapshot(SortBytes, 1).Templates[0].Fingerprint; top != "big" {
		t.Fatalf("sort=bytes top = %q, want big", top)
	}
	if got := tb.Snapshot("nonsense", 0).SortedBy; got != SortTime {
		t.Fatalf("unknown sort fell back to %q, want %q", got, SortTime)
	}
	if !ValidSort("") || !ValidSort(SortBytes) || ValidSort("nonsense") {
		t.Fatalf("ValidSort misclassifies")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New(Options{})
	tb.Record(sample("SELECT COUNT(*) FROM data WHERE v < ?", time.Millisecond))
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf, "", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"fingerprint,table,calls", "SELECT COUNT(*) FROM data WHERE v < ?", "v:0 v:3"} {
		if !bytes.Contains(buf.Bytes(), []byte(needle)) {
			t.Fatalf("CSV missing %q:\n%s", needle, out)
		}
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	tb := New(Options{Registry: reg, MaxTemplates: 2})
	for i := 0; i < 4; i++ {
		tb.Record(sample(fmt.Sprintf("T%d", i), time.Millisecond))
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{
		"adskip_stats_templates 2",
		"adskip_stats_recorded_total 4",
		"adskip_stats_evicted_total 2",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(needle)) {
			t.Fatalf("metrics missing %q:\n%s", needle, out)
		}
	}
}

// TestConcurrentChurn hammers one table from parallel "sessions" with a
// template pool larger than the LRU bound, so recording, snapshotting,
// and eviction churn race. Run under -race in CI.
func TestConcurrentChurn(t *testing.T) {
	tb := New(Options{MaxTemplates: 8, ZoneSketchSize: 16, Registry: obs.NewRegistry()})
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				fp := fmt.Sprintf("T%d", (w*7+i)%32)
				s := sample(fp, time.Duration(i%5)*time.Millisecond)
				s.ZoneIDs = map[string][]int{"v": {i % 64, (i + 1) % 64}}
				s.Err = i%17 == 0
				tb.Record(s)
				if i%50 == 0 {
					_ = tb.Snapshot(SortCalls, 5)
				}
				if i%101 == 0 {
					_ = tb.WriteCSV(&bytes.Buffer{}, SortBytes, 3)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := tb.Snapshot("", 0)
	if snap.Recorded != workers*perW {
		t.Fatalf("recorded %d samples, want %d", snap.Recorded, workers*perW)
	}
	if snap.TotalTemplates != 8 {
		t.Fatalf("tracked %d templates, want 8 (LRU bound)", snap.TotalTemplates)
	}
	var calls int64
	for _, ts := range snap.Templates {
		calls += ts.Calls
		if len(ts.ZoneTouch["v"]) > 16 {
			t.Fatalf("sketch exceeded bound: %d ids", len(ts.ZoneTouch["v"]))
		}
	}
	if calls <= 0 || calls > int64(workers*perW) {
		t.Fatalf("surviving call total %d out of range", calls)
	}
}

// BenchmarkRecord is the overhead figure quoted in DESIGN §12: the cost
// of attributing one query to its template.
func BenchmarkRecord(b *testing.B) {
	tb := New(Options{})
	s := sample("SELECT COUNT(*) FROM data WHERE v BETWEEN ? AND ?", 120*time.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Record(s)
	}
}
