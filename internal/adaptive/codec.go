package adaptive

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"adskip/internal/faultinject"
)

// Binary snapshot of a learned adaptive zonemap (little-endian):
//
//	magic "ADSKAZM1" (8 bytes)
//	rows u64, tailLo u64, enabled u8
//	netBenefit f64, queries u64
//	splits u64, merges u64, disables u64, enables u64
//	zone count u32, then per zone:
//	  lo u64, hi u64, min i64, max i64, nonNull u64, heat f64,
//	  statSkip u16, statFail u8
//	crc32 (IEEE) of everything above: u32
//
// The snapshot captures learned structure, not configuration: Read takes a
// Config so deployments can retune knobs while keeping refinement state.

var (
	azmMagic = [8]byte{'A', 'D', 'S', 'K', 'A', 'Z', 'M', '1'}

	// ErrBadSnapshot indicates the stream is not an adaptive zonemap
	// snapshot or is corrupt.
	ErrBadSnapshot = errors.New("adaptive: bad or corrupt snapshot")
)

// WriteTo serializes the zonemap's learned state.
func (z *Zonemap) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.Write(azmMagic[:])
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		bw.Write(b[:])
	}
	putU64(uint64(z.rows))
	putU64(uint64(z.tailLo))
	if z.enabled {
		bw.WriteByte(1)
	} else {
		bw.WriteByte(0)
	}
	putU64(math.Float64bits(z.netBenefit))
	putU64(uint64(z.queries))
	putU64(uint64(z.splits))
	putU64(uint64(z.merges))
	putU64(uint64(z.disables))
	putU64(uint64(z.enables))
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(z.zones)))
	bw.Write(cnt[:])
	for i := range z.zones {
		zn := &z.zones[i]
		putU64(uint64(zn.lo))
		putU64(uint64(zn.hi))
		putU64(uint64(zn.min))
		putU64(uint64(zn.max))
		putU64(uint64(zn.nonNull))
		putU64(math.Float64bits(zn.heat))
		var sk [2]byte
		binary.LittleEndian.PutUint16(sk[:], zn.statSkip)
		bw.Write(sk[:])
		bw.WriteByte(zn.statFail)
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	payload := buf.Bytes()
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	// Chaos hook: a flipped payload byte makes the checksum fail on Read,
	// exercising the ErrBadSnapshot failure-atomic load path.
	faultinject.Corrupt(faultinject.CodecCorrupt, payload)
	n, err := w.Write(payload)
	if err != nil {
		return int64(n), err
	}
	n2, err := w.Write(sum[:])
	return int64(n + n2), err
}

// Read deserializes a snapshot written by WriteTo, applying cfg's knobs to
// the restored structure. The caller must validate the result against the
// column it will serve (see Validate / engine.LoadSkipper): a snapshot
// taken before later mutations would prune unsoundly.
func Read(r io.Reader, cfg Config) (*Zonemap, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if len(raw) < len(azmMagic)+4 || [8]byte(raw[:8]) != azmMagic {
		return nil, ErrBadSnapshot
	}
	payload, sumBytes := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sumBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	br := bytes.NewReader(payload[8:])
	getU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	z := &Zonemap{cfg: cfg.withDefaults()}
	fields := []*int{&z.rows, &z.tailLo}
	for _, f := range fields {
		v, err := getU64()
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	eb, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
	}
	z.enabled = eb == 1
	nb, err := getU64()
	if err != nil {
		return nil, err
	}
	z.netBenefit = math.Float64frombits(nb)
	counters := []*int{&z.queries, &z.splits, &z.merges, &z.disables, &z.enables}
	for _, c := range counters {
		v, err := getU64()
		if err != nil {
			return nil, err
		}
		*c = int(v)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
	}
	nz := binary.LittleEndian.Uint32(cnt[:])
	if nz > 1<<26 {
		return nil, fmt.Errorf("%w: implausible zone count %d", ErrBadSnapshot, nz)
	}
	z.zones = make([]zone, nz)
	for i := range z.zones {
		zn := &z.zones[i]
		vals := make([]uint64, 6)
		for k := range vals {
			v, err := getU64()
			if err != nil {
				return nil, err
			}
			vals[k] = v
		}
		zn.lo, zn.hi = int(vals[0]), int(vals[1])
		zn.min, zn.max = int64(vals[2]), int64(vals[3])
		zn.nonNull = int(vals[4])
		zn.heat = math.Float64frombits(vals[5])
		var sk [2]byte
		if _, err := io.ReadFull(br, sk[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		zn.statSkip = binary.LittleEndian.Uint16(sk[:])
		sf, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated", ErrBadSnapshot)
		}
		zn.statFail = sf
	}
	// Structural sanity before anyone trusts this metadata.
	prev := 0
	for i, zn := range z.zones {
		if zn.lo != prev || zn.hi <= zn.lo || zn.nonNull < 0 || zn.nonNull > zn.hi-zn.lo {
			return nil, fmt.Errorf("%w: zone %d malformed", ErrBadSnapshot, i)
		}
		prev = zn.hi
	}
	if prev != z.tailLo || z.tailLo > z.rows {
		return nil, fmt.Errorf("%w: zones end at %d, tailLo %d, rows %d", ErrBadSnapshot, prev, z.tailLo, z.rows)
	}
	z.rebuildBlocks()
	return z, nil
}
