package adaptive

import (
	"errors"
	"testing"
)

// gapRow finds the row left uncovered by corruptLayout's tiling break.
func gapRow(t *testing.T, z *Zonemap) int {
	t.Helper()
	prev := 0
	for _, zn := range z.zones {
		if zn.lo != prev {
			return prev
		}
		prev = zn.hi
	}
	if prev != z.tailLo {
		return prev
	}
	t.Fatal("layout not corrupted")
	return -1
}

// TestZoneIndexCorruptionNoPanic is the regression test for the old
// behavior where a row outside every zone panicked inside zoneIndex and
// took down the whole process mid-query. Now the zonemap must record the
// corruption, return -1, and keep every entry point panic-free.
func TestZoneIndexCorruptionNoPanic(t *testing.T) {
	codes := seqCodes(1024, func(i int) int64 { return int64(i) })
	z := New(codes, nil, smallCfg())
	if err := z.Health(); err != nil {
		t.Fatalf("fresh zonemap unhealthy: %v", err)
	}
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatalf("fresh zonemap fails invariants: %v", err)
	}

	z.corruptLayout()
	gap := gapRow(t, z)

	// The explicit checker sees the tiling gap immediately.
	if err := z.CheckInvariants(codes, nil, true); err == nil {
		t.Fatal("CheckInvariants missed the tiling gap")
	}

	// Mutation entry points that hit zoneIndex must degrade, not panic.
	z.NoteNonNull(gap)
	z.Widen(gap, -1)
	if err := z.Health(); err == nil {
		t.Fatal("zoneIndex miss did not latch health")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("health=%v, want ErrCorrupt", err)
	}

	// Once unhealthy, the zonemap declines to prune: a full scan is the
	// only sound answer.
	res := z.Prune(oneRange(0, 100))
	if res.Enabled {
		t.Fatal("unhealthy zonemap still claims pruning")
	}
	// CheckInvariants keeps reporting the latched corruption.
	if err := z.CheckInvariants(codes, nil, true); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want latched ErrCorrupt", err)
	}
}

// TestPruneDetectsTilingGap verifies the probe-side defense: even before
// any mutation touches the gap row, Prune's tiling walk notices the
// broken layout, declines, and latches health.
func TestPruneDetectsTilingGap(t *testing.T) {
	codes := seqCodes(2048, func(i int) int64 { return int64(i % 97) })
	z := New(codes, nil, smallCfg())
	z.corruptLayout()

	res := z.Prune(oneRange(0, 96))
	if res.Enabled {
		t.Fatal("Prune emitted candidates from a corrupted layout")
	}
	if !errors.Is(z.Health(), ErrCorrupt) {
		t.Fatalf("health=%v, want ErrCorrupt", z.Health())
	}
	// Subsequent probes stay declined without re-walking.
	if z.Prune(oneRange(0, 96)).Enabled || z.PruneNulls().Enabled {
		t.Fatal("unhealthy zonemap re-enabled itself")
	}
}
