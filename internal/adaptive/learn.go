package adaptive

import (
	"adskip/internal/core"
	"adskip/internal/expr"
	"adskip/internal/faultinject"
	"adskip/internal/obs"
)

// Observe implements core.Skipper: it consumes per-zone execution feedback
// and performs the three adaptive mechanisms — split, merge, arbitration.
func (z *Zonemap) Observe(res core.PruneResult, zobs []core.ZoneObservation) {
	z.queries++
	if z.health != nil {
		return // corrupt structure is frozen until rebuilt
	}
	if faultinject.Enabled() && faultinject.Fire(faultinject.InvariantFlip) {
		// Corrupt and return: the broken tiling must survive untouched to
		// the next probe, which is where detection is supposed to happen.
		z.corruptLayout()
		return
	}
	if !res.Enabled {
		return
	}

	// ---- Arbitration: did this query's probing pay for itself? ----
	net := float64(res.RowsSkipped)*z.cfg.RowCost - float64(res.ZonesProbed)*z.cfg.ProbeCost
	alpha := 2.0 / (float64(z.cfg.Window) + 1)
	z.netBenefit += alpha * (net - z.netBenefit)
	if !z.cfg.DisableArbitration && z.queries > z.cfg.Window && z.netBenefit < 0 {
		z.enabled = false
		z.disabledQueries = 0
		z.disables++
		z.emit(obs.EventDisable, 0)
		z.ledgerEmit(obs.LedgerRecord{
			Kind: obs.EventDisable, Cause: "net-benefit",
			ZonesBefore: len(z.zones), ZonesAfter: len(z.zones),
			RowLo: 0, RowHi: z.tailLo,
		})
		return // structure frozen while disabled
	}

	// ---- Per-zone feedback: heat updates and split planning. ----
	var plans []splitPlan
	budget := z.cfg.MaxZones - len(z.zones)
	for _, ob := range zobs {
		if ob.ID == core.NoZoneID || ob.ID < 0 || ob.ID >= len(z.zones) {
			continue
		}
		zn := &z.zones[ob.ID]
		if zn.lo != ob.Lo || zn.hi != ob.Hi {
			continue // stale identity; should not happen within one query
		}
		// Heat is maintained at probe time (Prune); Observe only drives
		// structural refinement from the piggybacked statistics.
		if ob.Covered || z.cfg.DisableSplit || ob.Partial || len(ob.Stats) < 2 {
			continue
		}
		subs := z.planSplit(ob, budget)
		if subs != nil {
			budget -= len(subs) - 1
			plans = append(plans, splitPlan{idx: ob.ID, subs: subs})
			continue
		}
		// The gathered statistics could not justify a split: back off
		// exponentially before paying for stats on this zone again.
		if zn.statFail < 5 {
			zn.statFail++
		}
		zn.statSkip = uint16(4) << zn.statFail
	}

	structural := false
	if len(plans) > 0 {
		before := len(z.zones)
		z.applySplits(plans)
		z.emit(obs.EventSplit, len(z.zones)-before)
		structural = true
	}
	if !z.cfg.DisableMerge && z.queries%z.cfg.MergeSweepEvery == 0 {
		before := len(z.zones)
		z.mergeSweep()
		if removed := before - len(z.zones); removed > 0 {
			z.emit(obs.EventMerge, removed)
		}
		structural = structural || len(z.zones) != before
	}
	if structural {
		z.rebuildBlocks()
	}
}

// planSplit decides whether the piggybacked statistics justify refining
// the zone and, if so, returns the replacement sub-zones. A split is
// justified when at least one sub-zone's bounds would have let this query
// skip or cover it — evidence that finer metadata has pruning power here.
func (z *Zonemap) planSplit(ob core.ZoneObservation, budget int) []zone {
	if budget < len(ob.Stats)-1 {
		return nil
	}
	r := z.lastRanges
	usefulPart := make([]bool, len(ob.Stats))
	anyUseful := false
	for i, s := range ob.Stats {
		switch {
		case s.NonNull == 0 || !r.Overlaps(s.Min, s.Max):
			usefulPart[i] = true
		case s.NonNull == s.Hi-s.Lo && r.Covers(s.Min, s.Max):
			usefulPart[i] = true
		}
		anyUseful = anyUseful || usefulPart[i]
	}
	if !anyUseful {
		return nil
	}
	subs := make([]zone, len(ob.Stats))
	for i, s := range ob.Stats {
		subs[i] = zone{lo: s.Lo, hi: s.Hi, min: s.Min, max: s.Max, nonNull: s.NonNull, heat: 0.5}
		if s.NonNull == 0 {
			subs[i].min, subs[i].max = 0, 0
		}
	}
	// Coalesce adjacent parts when BOTH were useless for this query AND
	// their bounds are similar: the new zone boundaries then align to the
	// value discontinuities the statistics revealed rather than to
	// arbitrary equal-width offsets (crack-like boundary placement).
	// Parts that pruned for this query always stay separate — that is the
	// evidence the split exists to preserve — and coalesced zones larger
	// than the floor re-split at finer resolution later, so boundary
	// precision improves per generation.
	out := subs[:1]
	lastUseful := usefulPart[0]
	for i, sub := range subs[1:] {
		last := &out[len(out)-1]
		if !lastUseful && !usefulPart[i+1] && boundsCompatible(last, &sub) {
			*last = mergeZones(*last, sub)
			last.heat = 0.5
			continue
		}
		out = append(out, sub)
		lastUseful = usefulPart[i+1]
	}
	if len(out) < 2 {
		return nil // no boundary worth materializing
	}
	return out
}

// applySplits rebuilds the zone slice with all planned splits spliced in,
// in one pass. Plans reference pre-rebuild indices and are disjoint by
// construction (one observation per zone).
func (z *Zonemap) applySplits(plans []splitPlan) {
	z.flushBlockHits()
	byIdx := make(map[int][]zone, len(plans))
	added := 0
	for _, p := range plans {
		byIdx[p.idx] = p.subs
		added += len(p.subs) - 1
	}
	need := len(z.zones) + added
	if cap(z.scratch) < need {
		z.scratch = make([]zone, 0, need*2)
	}
	out := z.scratch[:0]
	for i := range z.zones {
		if subs, ok := byIdx[i]; ok {
			// One ledger record per refined zone: the parent's window and
			// (possibly loosened) hull before, the children's exact hull
			// after — the journal shows each split re-tightening metadata.
			parent := &z.zones[i]
			rec := obs.LedgerRecord{
				Kind: obs.EventSplit, Cause: "split-gain",
				ZonesBefore: 1, ZonesAfter: len(subs),
				RowLo: parent.lo, RowHi: parent.hi,
				MinBefore: parent.min, MaxBefore: parent.max,
			}
			hullSet := false
			for k := range subs {
				if subs[k].nonNull == 0 {
					continue
				}
				if !hullSet {
					rec.MinAfter, rec.MaxAfter = subs[k].min, subs[k].max
					hullSet = true
					continue
				}
				if subs[k].min < rec.MinAfter {
					rec.MinAfter = subs[k].min
				}
				if subs[k].max > rec.MaxAfter {
					rec.MaxAfter = subs[k].max
				}
			}
			z.ledgerEmit(rec)
			out = append(out, subs...)
			z.splits += len(subs) - 1
			z.maintZones += int64(len(subs))
		} else {
			out = append(out, z.zones[i])
		}
	}
	z.scratch = z.zones[:0] // recycle the old backing array next time
	z.zones = out
}

// splitPlan records one planned zone refinement: the pre-rebuild zone
// index and its replacement sub-zones.
type splitPlan struct {
	idx  int
	subs []zone
}

// mergeSweep coalesces runs of adjacent cold zones (heat below MergeHeat)
// whose union stays within MaxZoneRows. Merging a run of k zones removes
// k−1 probes per future query and (k−1)·zoneBytes of metadata; the union
// bounds remain sound.
func (z *Zonemap) mergeSweep() {
	z.flushBlockHits()
	before := len(z.zones)
	out := z.zones[:0]
	i := 0
	// One summary ledger record per sweep covering every coalesced run:
	// the affected row span and the union hull of the merged zones.
	spanLo, spanHi := -1, 0
	var hullMin, hullMax int64
	hullSet := false
	for i < len(z.zones) {
		cur := z.zones[i]
		j := i + 1
		for j < len(z.zones) &&
			cur.heat < z.cfg.MergeHeat &&
			z.zones[j].heat < z.cfg.MergeHeat &&
			z.zones[j].hi-cur.lo <= z.cfg.MaxZoneRows &&
			boundsCompatible(&cur, &z.zones[j]) {
			nxt := z.zones[j]
			cur = mergeZones(cur, nxt)
			j++
		}
		if j-i > 1 {
			if spanLo < 0 {
				spanLo = cur.lo
			}
			spanHi = cur.hi
			if cur.nonNull > 0 {
				if !hullSet {
					hullMin, hullMax, hullSet = cur.min, cur.max, true
				} else {
					if cur.min < hullMin {
						hullMin = cur.min
					}
					if cur.max > hullMax {
						hullMax = cur.max
					}
				}
			}
		}
		z.merges += j - i - 1
		out = append(out, cur)
		i = j
	}
	z.zones = out
	if removed := before - len(out); removed > 0 {
		z.maintZones += int64(removed)
		z.ledgerEmit(obs.LedgerRecord{
			Kind: obs.EventMerge, Cause: "merge-cold",
			ZonesBefore: before, ZonesAfter: len(out),
			RowLo: spanLo, RowHi: spanHi,
			MinBefore: hullMin, MaxBefore: hullMax,
			MinAfter: hullMin, MaxAfter: hullMax,
		})
	}
}

// boundsCompatible reports whether merging a and b loses little pruning
// power: the union's value span must not exceed 1.5x the wider of the two.
// Without this gate, a narrow zone that keeps being scanned because its
// rows genuinely match (hot-region zones) would go cold and merge with a
// differently-valued neighbor, destroying exactly the metadata that made
// it informative and triggering split/merge churn.
func boundsCompatible(a, b *zone) bool {
	if a.nonNull == 0 || b.nonNull == 0 {
		return true // an all-null side adds no bounds
	}
	lo, hi := a.min, a.max
	if b.min < lo {
		lo = b.min
	}
	if b.max > hi {
		hi = b.max
	}
	union := uint64(hi - lo)
	wa, wb := uint64(a.max-a.min), uint64(b.max-b.min)
	w := wa
	if wb > w {
		w = wb
	}
	return union <= w+w/2
}

// mergeZones returns the sound union of two adjacent zones. Lifetime
// prune counters sum: the union inherits both sides' history.
func mergeZones(a, b zone) zone {
	m := zone{lo: a.lo, hi: b.hi, nonNull: a.nonNull + b.nonNull,
		hits: a.hits + b.hits, misses: a.misses + b.misses,
		widened: a.widened || b.widened}
	switch {
	case a.nonNull == 0:
		m.min, m.max = b.min, b.max
	case b.nonNull == 0:
		m.min, m.max = a.min, a.max
	default:
		m.min, m.max = a.min, a.max
		if b.min < m.min {
			m.min = b.min
		}
		if b.max > m.max {
			m.max = b.max
		}
	}
	// The merged zone inherits the warmer heat so a recently useful
	// neighbor is not dragged straight back into another merge cycle. Its
	// bounds changed, so statistics gathering restarts immediately.
	m.heat = a.heat
	if b.heat > m.heat {
		m.heat = b.heat
	}
	return m
}

// shadowProbe, run every ReprobeEvery-th query while disabled, measures
// what skipping would have achieved for the current query without doing
// any scan work, and re-enables the structure when the cost model turns
// positive (data or workload drift).
func (z *Zonemap) shadowProbe(r expr.Ranges) {
	skipped := 0
	for i := range z.zones {
		zn := &z.zones[i]
		if zn.nonNull == 0 || !r.Overlaps(zn.min, zn.max) {
			skipped += zn.hi - zn.lo
		}
	}
	net := float64(skipped)*z.cfg.RowCost - float64(len(z.zones))*z.cfg.ProbeCost
	alpha := 2.0 / (float64(z.cfg.Window) + 1)
	z.netBenefit += alpha * (net - z.netBenefit)
	if z.netBenefit > 0 {
		z.enabled = true
		z.enables++
		z.emit(obs.EventEnable, 0)
		z.ledgerEmit(obs.LedgerRecord{
			Kind: obs.EventEnable, Cause: "shadow-probe",
			ZonesBefore: len(z.zones), ZonesAfter: len(z.zones),
			RowLo: 0, RowHi: z.tailLo,
		})
	}
}
