// Package adaptive implements adaptive zonemaps — the paper's primary
// contribution. An adaptive zonemap is a variable-granularity partition of
// a column's row space into zones carrying (min, max, non-null count)
// metadata, continuously reshaped by per-query feedback:
//
//   - Split: a zone that keeps being scanned with low qualifying fractions
//     is refined into sub-zones whose bounds were computed during a scan
//     the query already had to perform (pay-as-you-go, in the spirit of
//     database cracking).
//   - Merge: adjacent zones whose metadata never prunes anything are
//     coalesced, shedding probe cost and memory.
//   - Arbitration: a per-column cost model tracks whether probing pays for
//     itself; when it persistently loses (arbitrary data distributions),
//     skipping is disabled outright and only cheap periodic shadow probes
//     remain, so adaptive skipping never durably underperforms a plain
//     scan — the failure mode of static zonemaps the abstract calls out.
package adaptive

import (
	"errors"
	"fmt"
	"sort"

	"adskip/internal/bitvec"
	"adskip/internal/core"
	"adskip/internal/expr"
	"adskip/internal/obs"
	"adskip/internal/scan"
)

// ErrCorrupt marks detected metadata corruption: a violated structural
// invariant noticed during a probe or bounds-maintenance call. A corrupt
// zonemap permanently declines to prune (fail open to full scans, which
// are always sound) and reports the cause via Health so the engine can
// quarantine and rebuild it.
var ErrCorrupt = errors.New("adaptive: metadata corrupt")

// Config tunes an adaptive zonemap. The zero value selects defaults
// suitable for multi-million-row columns.
type Config struct {
	// InitialZoneRows is the granularity of the initial coarse build and
	// of folded append tails. Default 65536.
	InitialZoneRows int
	// MinZoneRows is the refinement floor: splits never produce zones
	// smaller than this. Default 1024.
	MinZoneRows int
	// MaxZones caps metadata size; splits stop at the cap until merges
	// reclaim space. Default 65536.
	MaxZones int
	// SplitParts is the maximum number of sub-zones a single split
	// produces (bounded below by MinZoneRows). Default 8.
	SplitParts int
	// HeatAlpha is the EWMA step for per-zone usefulness. Default 0.25.
	HeatAlpha float64
	// MergeHeat merges adjacent zones when both have usefulness below this
	// threshold. Default 0.05.
	MergeHeat float64
	// MaxZoneRows caps how large merges may grow a zone. Default 1<<20.
	MaxZoneRows int
	// MergeSweepEvery runs the merge sweep every this many queries.
	// Default 8.
	MergeSweepEvery int
	// Window is the effective query window of the arbitration EWMA.
	// Default 32.
	Window int
	// ProbeCost and RowCost are the relative cost-model constants: one
	// zone probe vs one row of scan work avoided. Defaults 4 and 1 —
	// probing metadata touches scattered cache lines, scanning is
	// sequential, so a probe must save several rows to break even.
	ProbeCost float64
	RowCost   float64
	// ReprobeEvery is the shadow-probe period while disabled. Default 32.
	ReprobeEvery int
	// TailFoldRows folds the unindexed append tail into zones once it
	// reaches this many rows. Default InitialZoneRows.
	TailFoldRows int
	// DisableSplit, DisableMerge, and DisableArbitration switch off the
	// corresponding adaptive mechanism. They exist for the ablation
	// experiments; production use keeps all three on.
	DisableSplit       bool
	DisableMerge       bool
	DisableArbitration bool
}

func (c Config) withDefaults() Config {
	if c.InitialZoneRows <= 0 {
		c.InitialZoneRows = 65536
	}
	if c.MinZoneRows <= 0 {
		c.MinZoneRows = 1024
	}
	if c.MaxZones <= 0 {
		c.MaxZones = 65536
	}
	if c.SplitParts <= 0 {
		c.SplitParts = 8
	}
	if c.HeatAlpha <= 0 || c.HeatAlpha > 1 {
		c.HeatAlpha = 0.25
	}
	if c.MergeHeat <= 0 {
		c.MergeHeat = 0.05
	}
	if c.MaxZoneRows <= 0 {
		c.MaxZoneRows = 1 << 20
	}
	if c.MergeSweepEvery <= 0 {
		c.MergeSweepEvery = 8
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.ProbeCost <= 0 {
		c.ProbeCost = 4
	}
	if c.RowCost <= 0 {
		c.RowCost = 1
	}
	if c.ReprobeEvery <= 0 {
		c.ReprobeEvery = 32
	}
	if c.TailFoldRows <= 0 {
		c.TailFoldRows = c.InitialZoneRows
	}
	return c
}

// zone is one variable-width zone. Bounds are sound (enclose every
// non-null value in the window) but may be loose after updates; they are
// re-tightened by splits, which recompute exact sub-bounds.
type zone struct {
	lo, hi   int
	min, max int64
	nonNull  int
	heat     float64 // EWMA of probe usefulness in [0,1]
	// statSkip/statFail implement exponential backoff on statistics
	// gathering: a zone whose stats failed to justify a split stops
	// paying the (cheap but nonzero) piggyback cost for a while, so a
	// converged structure scans at plain-kernel speed.
	statSkip uint16
	statFail uint8
	// hits/misses are lifetime prune counters for introspection: hits
	// count probes where this zone's metadata was useful (skipped or
	// proven covered), misses count probes that left it a candidate the
	// scan had to read. Zones pruned at the block level are credited
	// lazily via block.hits (see flushBlockHits), so the two-level probe
	// stays O(blocks + overlapping zones). Split children start at zero;
	// merges sum both sides.
	hits, misses uint64
	// widened marks a zone whose value hull was loosened by an in-place
	// update since it was last (re)built, so a prune miss on it may be
	// stale metadata rather than data distribution. Cleared when a split
	// or fold recomputes exact bounds; merges inherit either side's flag.
	widened bool
}

const zoneBytes = 8 + 8 + 8 + 8 + 8 + 8 + 16 // struct footprint estimate

// Stats exposes lifetime counters for experiments and introspection.
type Stats struct {
	Queries    int
	Splits     int // zones created by splitting (net additions)
	Merges     int // zones removed by merging
	Disables   int
	Enables    int
	NetBenefit float64 // EWMA of (rows-skipped·RowCost − probes·ProbeCost)
	TailRows   int
}

// blockZones is the fan-in of the coarse probe level: one block summarizes
// up to this many consecutive zones. Probing is two-level — block bounds
// first, member zones only inside overlapping blocks — so a finely refined
// structure (tens of thousands of zones) still probes O(zones/64 + hits)
// per query instead of O(zones).
const blockZones = 64

// block is the coarse-level summary of a run of consecutive zones.
type block struct {
	min, max int64
	hasData  bool // any member zone holds a value
	// hits counts probes that pruned this whole block with one
	// comparison. Each such probe effectively pruned every member zone;
	// the credit is attributed to the members lazily (flushBlockHits)
	// so the block-skip fast path stays a single increment.
	hits uint64
}

// Zonemap is an adaptive zonemap over one column. It implements
// core.Skipper. Not safe for concurrent mutation.
type Zonemap struct {
	cfg    Config
	zones  []zone
	blocks []block // coarse level; block i covers zones [i*blockZones, ...)
	rows   int     // total rows, including unindexed tail
	tailLo int     // zones tile [0, tailLo); tail is [tailLo, rows)

	enabled         bool
	netBenefit      float64
	queries         int
	disabledQueries int

	splits, merges, disables, enables int

	lastRanges expr.Ranges // predicate of the in-flight query (Prune→Observe)
	scratch    []zone      // reusable buffer for structural rebuilds

	// Why-not-skipped classification of the most recent Prune (see
	// core.PruneReasoner): zones left as candidates because of genuine
	// bounds overlap, loosened (widened) bounds, or a NULL-blocked
	// coverage proof.
	lastOverlap, lastWidened, lastNullStraddle int

	// Cumulative probe accounting for ROI reporting: lifetime rows
	// skipped and zone probes across all Prune/PruneNulls calls. Two adds
	// per query, far below the probe work itself.
	cumRowsSkipped int64
	cumZoneProbes  int64
	// maintEvents counts structural/arbitration events (the ledger
	// debits); maintZones counts the zones those events touched.
	maintEvents int64
	maintZones  int64

	// health is non-nil once corruption has been detected; the zonemap
	// then declines every probe and ignores maintenance calls.
	health error

	events func(obs.Event)        // adaptation-event sink; nil = no reporting
	ledger func(obs.LedgerRecord) // adaptation-ledger sink; nil = no journal
}

// Health implements core.HealthChecker: non-nil once the zonemap has
// detected internal corruption and stopped pruning.
func (z *Zonemap) Health() error { return z.health }

// setHealth records the first detected corruption.
func (z *Zonemap) setHealth(err error) {
	if z.health == nil {
		z.health = err
	}
}

// SetEventSink implements core.EventEmitter: structural and arbitration
// changes are reported through sink. Events fire only on adaptation
// (splits, merges, arbitration flips, tail folds) — never per probe — so
// the sink is far off the scan path.
func (z *Zonemap) SetEventSink(sink func(obs.Event)) { z.events = sink }

// emit reports one adaptation event if a sink is installed, and counts
// it as a maintenance debit for ROI accounting.
func (z *Zonemap) emit(kind obs.EventKind, delta int) {
	z.maintEvents++
	if z.events != nil {
		z.events(obs.Event{Kind: kind, Zones: len(z.zones), Delta: delta})
	}
}

// SetLedgerSink implements core.LedgerEmitter: zone-lifecycle records
// with cause and before/after bounds are journaled through sink. Like
// the event sink, it fires only on structural change, never per probe.
func (z *Zonemap) SetLedgerSink(sink func(obs.LedgerRecord)) { z.ledger = sink }

// ledgerEmit journals one lifecycle record if a sink is installed.
func (z *Zonemap) ledgerEmit(rec obs.LedgerRecord) {
	if z.ledger != nil {
		z.ledger(rec)
	}
}

// LastPruneReasons implements core.PruneReasoner: the miss
// classification of the most recent Prune call.
func (z *Zonemap) LastPruneReasons() (overlap, widened, nullStraddle int) {
	return z.lastOverlap, z.lastWidened, z.lastNullStraddle
}

// New builds an adaptive zonemap over the column's current physical state.
func New(codes []int64, nulls *bitvec.BitVec, cfg Config) *Zonemap {
	z := &Zonemap{cfg: cfg.withDefaults(), enabled: true}
	z.rows = len(codes)
	z.appendZones(codes, nulls, 0, len(codes))
	z.tailLo = len(codes)
	z.rebuildBlocks()
	return z
}

// rebuildBlocks recomputes the coarse probe level from the zone slice.
// Called after any structural change (splits, merges, tail folds); O(zones).
func (z *Zonemap) rebuildBlocks() {
	n := (len(z.zones) + blockZones - 1) / blockZones
	if cap(z.blocks) < n {
		z.blocks = make([]block, n)
	} else {
		z.blocks = z.blocks[:n]
	}
	for bi := 0; bi < n; bi++ {
		b := block{}
		lo, hi := bi*blockZones, (bi+1)*blockZones
		if hi > len(z.zones) {
			hi = len(z.zones)
		}
		for i := lo; i < hi; i++ {
			zn := &z.zones[i]
			if zn.nonNull == 0 {
				continue
			}
			if !b.hasData {
				b.min, b.max = zn.min, zn.max
				b.hasData = true
				continue
			}
			if zn.min < b.min {
				b.min = zn.min
			}
			if zn.max > b.max {
				b.max = zn.max
			}
		}
		z.blocks[bi] = b
	}
}

// flushBlockHits folds deferred block-level prune credits into the member
// zones' hit counters and zeroes the block counters. Must run before any
// structural change to z.zones (splits, merges, tail folds) — afterwards
// the block→zone mapping is stale — and before per-zone counters are read
// (SnapshotZones). O(zones), the same order as the structural operations
// that require it.
func (z *Zonemap) flushBlockHits() {
	for bi := range z.blocks {
		h := z.blocks[bi].hits
		if h == 0 {
			continue
		}
		z.blocks[bi].hits = 0
		lo, hi := bi*blockZones, (bi+1)*blockZones
		if hi > len(z.zones) {
			hi = len(z.zones)
		}
		for i := lo; i < hi; i++ {
			z.zones[i].hits += h
		}
	}
}

// SnapshotZones implements core.ZoneIntrospector: a copy of up to max
// zones' introspection state (all zones when max <= 0), oldest row range
// first. Lifetime hit/miss counters include block-level prune credits.
func (z *Zonemap) SnapshotZones(max int) []obs.SkipmapZone {
	z.flushBlockHits()
	n := len(z.zones)
	if max > 0 && n > max {
		n = max
	}
	out := make([]obs.SkipmapZone, n)
	for i := 0; i < n; i++ {
		zn := &z.zones[i]
		out[i] = obs.SkipmapZone{
			Lo: zn.lo, Hi: zn.hi, Min: zn.min, Max: zn.max,
			NonNull: zn.nonNull, Heat: zn.heat,
			Hits: zn.hits, Misses: zn.misses,
		}
	}
	return out
}

// maintCostRows is the assumed cost of one zone's worth of maintenance
// work (split bound computation, merge bookkeeping, fold recompute) in
// row-equivalents. Splits piggyback on scans the query already paid for,
// so the residual cost is small but not free: copying zone structs,
// rebuilding the coarse level, and the cache pollution of touching the
// metadata all land near the cost of scanning ~64 rows. ROI accounting
// debits this per maintenance-touched zone.
const maintCostRows = 64

// SnapshotROI implements core.ROIReporter: the column's lifetime
// adaptation return-on-investment. Credit is rows the metadata pruned;
// debit is probe work plus maintenance work in row-equivalents under the
// configured cost model. Dead zones — probed but never once useful — are
// counted and detailed up to maxDead, so operators can see which row
// ranges carry metadata that earns nothing.
func (z *Zonemap) SnapshotROI(maxDead int) obs.ColumnROI {
	z.flushBlockHits()
	md := z.Metadata()
	roi := obs.ColumnROI{
		Kind: md.Kind, Zones: md.Zones, Bytes: md.Bytes,
		RowsSkipped: z.cumRowsSkipped,
		ZoneProbes:  z.cumZoneProbes,
		MaintEvents: z.maintEvents,
		MaintZones:  z.maintZones,
		NetRows: z.cfg.RowCost*float64(z.cumRowsSkipped) -
			z.cfg.ProbeCost*float64(z.cumZoneProbes) -
			maintCostRows*float64(z.maintZones),
	}
	for i := range z.zones {
		zn := &z.zones[i]
		if zn.hits == 0 && zn.misses > 0 {
			roi.DeadZones++
			if maxDead > 0 && len(roi.DeadZoneDetail) < maxDead {
				roi.DeadZoneDetail = append(roi.DeadZoneDetail, obs.ROIZone{
					Lo: zn.lo, Hi: zn.hi, Min: zn.min, Max: zn.max,
					Hits: zn.hits, Misses: zn.misses,
				})
			}
		}
	}
	return roi
}

// widenBlock loosens the block containing zone index i to admit code.
func (z *Zonemap) widenBlock(i int, code int64) {
	b := &z.blocks[i/blockZones]
	if !b.hasData {
		b.min, b.max, b.hasData = code, code, true
		return
	}
	if code < b.min {
		b.min = code
	}
	if code > b.max {
		b.max = code
	}
}

// appendZones builds InitialZoneRows-wide zones over rows [from, to) and
// appends them.
func (z *Zonemap) appendZones(codes []int64, nulls *bitvec.BitVec, from, to int) {
	for lo := from; lo < to; lo += z.cfg.InitialZoneRows {
		hi := lo + z.cfg.InitialZoneRows
		if hi > to {
			hi = to
		}
		nz := zone{lo: lo, hi: hi, heat: 0.5}
		min, max, ok := scan.MinMaxRange(codes, lo, hi, nulls, 0)
		if ok {
			nz.min, nz.max = min, max
			nz.nonNull = hi - lo
			if nulls != nil {
				nz.nonNull -= nulls.CountRange(lo, hi)
			}
		}
		z.zones = append(z.zones, nz)
	}
}

// Rows returns the rows covered (including the unindexed tail).
func (z *Zonemap) Rows() int { return z.rows }

// NumZones returns the current zone count.
func (z *Zonemap) NumZones() int { return len(z.zones) }

// Enabled reports whether arbitration currently allows skipping.
func (z *Zonemap) Enabled() bool { return z.enabled }

// Stats returns lifetime counters.
func (z *Zonemap) Stats() Stats {
	return Stats{
		Queries: z.queries, Splits: z.splits, Merges: z.merges,
		Disables: z.disables, Enables: z.enables,
		NetBenefit: z.netBenefit, TailRows: z.rows - z.tailLo,
	}
}

// Metadata implements core.Skipper. Bytes includes both probe levels.
func (z *Zonemap) Metadata() core.Metadata {
	bytes := len(z.zones)*zoneBytes + len(z.blocks)*(8+8+1)
	return core.Metadata{Kind: "adaptive", Zones: len(z.zones), Bytes: bytes, Enabled: z.enabled}
}

// Prune implements core.Skipper. While disabled it costs nothing except a
// periodic shadow probe that re-evaluates whether skipping would pay.
//
// The probe walk doubles as a cheap corruption check: zones must tile
// the indexed row space exactly, and the walk already visits every block
// (and every zone of overlapping blocks), so verifying contiguity costs
// one comparison per step. On a violation the zonemap declines — a full
// scan is always sound — and records the fault for quarantine, rather
// than emitting a candidate set with silent row gaps.
func (z *Zonemap) Prune(r expr.Ranges) core.PruneResult {
	if z.health != nil {
		return core.PruneResult{Enabled: false}
	}
	z.lastRanges = r
	z.lastOverlap, z.lastWidened, z.lastNullStraddle = 0, 0, 0
	if !z.enabled {
		z.disabledQueries++
		if z.disabledQueries%z.cfg.ReprobeEvery == 0 {
			z.shadowProbe(r)
		}
		if !z.enabled {
			return core.PruneResult{Enabled: false}
		}
	}
	res := core.PruneResult{Enabled: true}
	single := r.Len() == 1
	var rlo, rhi int64
	if single {
		rlo, rhi = r.Lo[0], r.Hi[0]
	}
	prev := 0 // row where the next zone must start (tiling check)
	for bi := range z.blocks {
		b := &z.blocks[bi]
		zLo, zHi := bi*blockZones, (bi+1)*blockZones
		if zHi > len(z.zones) {
			zHi = len(z.zones)
		}
		res.ZonesProbed++ // the block probe
		var blockOverlaps bool
		if single {
			blockOverlaps = b.hasData && b.min <= rhi && b.max >= rlo
		} else {
			blockOverlaps = b.hasData && r.Overlaps(b.min, b.max)
		}
		if !blockOverlaps {
			// One comparison skipped the whole run of zones. Gaps inside
			// a skipped block are still sound to skip: its value bounds
			// enclose every member row, wherever zone boundaries drifted.
			if z.zones[zLo].lo != prev {
				return z.corruptPrune(zLo, z.zones[zLo].lo, prev)
			}
			prev = z.zones[zHi-1].hi
			res.RowsSkipped += prev - z.zones[zLo].lo
			b.hits++ // whole-block prune; member zones credited lazily
			continue
		}
		res.ZonesProbed += zHi - zLo
		for i := zLo; i < zHi; i++ {
			zn := &z.zones[i]
			if zn.lo != prev || zn.hi <= zn.lo {
				return z.corruptPrune(i, zn.lo, prev)
			}
			prev = zn.hi
			var overlaps bool
			if single {
				overlaps = zn.nonNull > 0 && zn.min <= rhi && zn.max >= rlo
			} else {
				overlaps = zn.nonNull > 0 && r.Overlaps(zn.min, zn.max)
			}
			if !overlaps {
				res.RowsSkipped += zn.hi - zn.lo
				// The probe was useful right now; credit the zone.
				zn.heat += z.cfg.HeatAlpha * (1 - zn.heat)
				zn.hits++
				continue
			}
			cand := core.CandidateZone{ID: i, Lo: zn.lo, Hi: zn.hi}
			if zn.nonNull == zn.hi-zn.lo && r.Covers(zn.min, zn.max) {
				// The probe proved the whole zone qualifies: useful.
				zn.heat += z.cfg.HeatAlpha * (1 - zn.heat)
				zn.hits++
				cand.Covered = true
			} else {
				// The zone will be scanned; this probe bought nothing.
				// (Heat is maintained here, at probe time, so candidate
				// runs can merge below without losing the merge signal.)
				zn.heat -= z.cfg.HeatAlpha * zn.heat
				zn.misses++
				// Classify the miss for the why-not-skipped trace: a hull
				// the predicate fully covers means only NULL rows blocked
				// the coverage proof; a loosened hull means the miss may be
				// stale metadata; otherwise the bounds genuinely straddle.
				var coversHull bool
				if single {
					coversHull = rlo <= zn.min && zn.max <= rhi
				} else {
					coversHull = r.Covers(zn.min, zn.max)
				}
				switch {
				case coversHull:
					z.lastNullStraddle++
				case zn.widened:
					z.lastWidened++
				default:
					z.lastOverlap++
				}
				if zn.statSkip > 0 {
					zn.statSkip--
				} else if parts := z.statParts(zn); parts >= 2 {
					cand.WantStats = true
					cand.StatParts = parts
				}
			}
			// Adjacent candidates with the same coverage state merge into
			// one window unless either side wants split statistics: the
			// executor treats them identically, so per-zone identity buys
			// only bookkeeping. A converged structure thus emits a handful
			// of candidate windows regardless of zone count.
			if k := len(res.Zones); k > 0 && !cand.WantStats && !res.Zones[k-1].WantStats &&
				res.Zones[k-1].Covered == cand.Covered && res.Zones[k-1].Hi == zn.lo {
				res.Zones[k-1].Hi = zn.hi
				res.Zones[k-1].ID = core.NoZoneID
				continue
			}
			res.Zones = append(res.Zones, cand)
		}
	}
	if prev != z.tailLo {
		z.setHealth(fmt.Errorf("%w: zones end at %d, tailLo=%d", ErrCorrupt, prev, z.tailLo))
		return core.PruneResult{Enabled: false}
	}
	if z.rows > z.tailLo {
		res.Zones = append(res.Zones, core.CandidateZone{ID: core.NoZoneID, Lo: z.tailLo, Hi: z.rows})
	}
	z.cumRowsSkipped += int64(res.RowsSkipped)
	z.cumZoneProbes += int64(res.ZonesProbed)
	return res
}

// corruptPrune records a tiling violation found mid-probe and declines.
func (z *Zonemap) corruptPrune(idx, got, want int) core.PruneResult {
	z.setHealth(fmt.Errorf("%w: zone %d starts at %d, want %d (layout gap or overlap)", ErrCorrupt, idx, got, want))
	return core.PruneResult{Enabled: false}
}

// PruneNulls implements core.Skipper for IS NULL predicates: zones with no
// NULL rows skip, all-NULL zones are covered. Null-seeking queries carry
// no zone identity (the structure does not refine on them) and include the
// unindexed tail as a candidate.
func (z *Zonemap) PruneNulls() core.PruneResult {
	if z.health != nil {
		return core.PruneResult{Enabled: false}
	}
	res := core.PruneResult{Enabled: true, ZonesProbed: len(z.zones)}
	prev := 0
	for i := range z.zones {
		zn := &z.zones[i]
		if zn.lo != prev || zn.hi <= zn.lo {
			return z.corruptPrune(i, zn.lo, prev)
		}
		prev = zn.hi
		rows := zn.hi - zn.lo
		if zn.nonNull == rows {
			res.RowsSkipped += rows
			zn.hits++
			continue
		}
		covered := zn.nonNull == 0
		if covered {
			zn.hits++
		} else {
			zn.misses++
		}
		if k := len(res.Zones); k > 0 && res.Zones[k-1].Hi == zn.lo && res.Zones[k-1].Covered == covered {
			res.Zones[k-1].Hi = zn.hi
		} else {
			res.Zones = append(res.Zones, core.CandidateZone{ID: core.NoZoneID, Lo: zn.lo, Hi: zn.hi, Covered: covered})
		}
	}
	if prev != z.tailLo {
		z.setHealth(fmt.Errorf("%w: zones end at %d, tailLo=%d", ErrCorrupt, prev, z.tailLo))
		return core.PruneResult{Enabled: false}
	}
	if z.rows > z.tailLo {
		res.Zones = append(res.Zones, core.CandidateZone{ID: core.NoZoneID, Lo: z.tailLo, Hi: z.rows})
	}
	z.cumRowsSkipped += int64(res.RowsSkipped)
	z.cumZoneProbes += int64(res.ZonesProbed)
	return res
}

// statParts computes how many sub-partitions a scan of zn should report,
// respecting the split floor. Returns <2 when the zone cannot be split.
func (z *Zonemap) statParts(zn *zone) int {
	parts := (zn.hi - zn.lo) / z.cfg.MinZoneRows
	if parts > z.cfg.SplitParts {
		parts = z.cfg.SplitParts
	}
	return parts
}

// Extend implements core.Skipper: appended rows enter the unindexed tail,
// which is folded into coarse zones once it exceeds TailFoldRows.
func (z *Zonemap) Extend(codes []int64, nulls *bitvec.BitVec) {
	z.rows = len(codes)
	if z.rows-z.tailLo >= z.cfg.TailFoldRows {
		z.FoldTail(codes, nulls)
	}
}

// FoldTail immediately folds the append tail into zones regardless of its
// size. Exposed for bulk-load epilogues and tests.
func (z *Zonemap) FoldTail(codes []int64, nulls *bitvec.BitVec) {
	if z.rows <= z.tailLo {
		return
	}
	z.flushBlockHits()
	before := len(z.zones)
	foldLo := z.tailLo
	z.appendZones(codes, nulls, z.tailLo, z.rows)
	z.tailLo = z.rows
	z.rebuildBlocks()
	z.maintZones += int64(len(z.zones) - before)
	z.emit(obs.EventTailFold, len(z.zones)-before)
	rec := obs.LedgerRecord{
		Kind: obs.EventTailFold, Cause: "append-fold",
		ZonesBefore: before, ZonesAfter: len(z.zones),
		RowLo: foldLo, RowHi: z.rows,
	}
	// The folded region's hull: the tail had no metadata before.
	for i := before; i < len(z.zones); i++ {
		zn := &z.zones[i]
		if zn.nonNull == 0 {
			continue
		}
		if rec.MinAfter == 0 && rec.MaxAfter == 0 && i == before {
			rec.MinAfter, rec.MaxAfter = zn.min, zn.max
			continue
		}
		if zn.min < rec.MinAfter {
			rec.MinAfter = zn.min
		}
		if zn.max > rec.MaxAfter {
			rec.MaxAfter = zn.max
		}
	}
	z.ledgerEmit(rec)
}

// Widen implements core.Skipper: loosen the enclosing zone's bounds so an
// in-place update can never be wrongly skipped. Rows in the tail need no
// metadata maintenance. A row no zone covers marks the structure corrupt
// (see zoneIndex) instead of widening anything; the zonemap then declines
// all probes, so the missed widening can never cause a wrong skip.
func (z *Zonemap) Widen(row int, code int64) {
	if row >= z.tailLo {
		return
	}
	i := z.zoneIndex(row)
	if i < 0 {
		return
	}
	zn := &z.zones[i]
	z.widenBlock(i, code)
	if zn.nonNull == 0 {
		zn.min, zn.max = code, code
		return
	}
	if code >= zn.min && code <= zn.max {
		return // inside the hull; nothing loosened
	}
	minBefore, maxBefore := zn.min, zn.max
	if code < zn.min {
		zn.min = code
	}
	if code > zn.max {
		zn.max = code
	}
	// Journal only the first loosening since the zone's last rebuild:
	// the flag is what the why-not-skipped classifier reads, and one
	// record per zone generation bounds ledger churn under update floods.
	if !zn.widened {
		zn.widened = true
		z.ledgerEmit(obs.LedgerRecord{
			Kind: obs.EventWiden, Cause: "update-widen",
			ZonesBefore: len(z.zones), ZonesAfter: len(z.zones),
			RowLo: zn.lo, RowHi: zn.hi,
			MinBefore: minBefore, MaxBefore: maxBefore,
			MinAfter: zn.min, MaxAfter: zn.max,
		})
	}
}

// NoteNonNull implements core.Skipper.
func (z *Zonemap) NoteNonNull(row int) {
	if row >= z.tailLo {
		return
	}
	if i := z.zoneIndex(row); i >= 0 {
		z.zones[i].nonNull++
	}
}

// zoneIndex locates the zone containing row by binary search. A row the
// zones do not cover means the layout invariant is violated; rather than
// panic (which used to crash the whole process mid-query), the zonemap
// records the corruption — permanently declining to prune — and returns
// -1 so callers degrade to a no-op.
func (z *Zonemap) zoneIndex(row int) int {
	i := sort.Search(len(z.zones), func(i int) bool { return z.zones[i].hi > row })
	if i == len(z.zones) || z.zones[i].lo > row {
		z.setHealth(fmt.Errorf("%w: row %d not covered by zones (tailLo=%d)", ErrCorrupt, row, z.tailLo))
		return -1
	}
	return i
}

// CheckInvariants verifies the structural invariants against the column's
// physical state: zones are sorted, non-empty, tile [0, tailLo) exactly,
// bounds enclose every non-null value, and non-null counts are exact or
// conservative (Widen may leave counts stale low only via NoteNonNull
// omission, which is a caller bug — here they must match exactly when
// exact==true).
func (z *Zonemap) CheckInvariants(codes []int64, nulls *bitvec.BitVec, exact bool) error {
	if z.health != nil {
		return z.health
	}
	prev := 0
	for i, zn := range z.zones {
		if zn.lo != prev {
			return fmt.Errorf("adaptive: zone %d starts at %d, want %d (gap or overlap)", i, zn.lo, prev)
		}
		if zn.hi <= zn.lo {
			return fmt.Errorf("adaptive: zone %d empty [%d,%d)", i, zn.lo, zn.hi)
		}
		prev = zn.hi
		nonNull := 0
		for r := zn.lo; r < zn.hi; r++ {
			if nulls != nil && nulls.Get(r) {
				continue
			}
			nonNull++
			if codes[r] < zn.min || codes[r] > zn.max {
				return fmt.Errorf("adaptive: zone %d bounds [%d,%d] exclude row %d code %d", i, zn.min, zn.max, r, codes[r])
			}
		}
		if exact && nonNull != zn.nonNull {
			return fmt.Errorf("adaptive: zone %d nonNull=%d, actual %d", i, zn.nonNull, nonNull)
		}
		if !exact && zn.nonNull > nonNull {
			return fmt.Errorf("adaptive: zone %d nonNull=%d exceeds actual %d", i, zn.nonNull, nonNull)
		}
	}
	if prev != z.tailLo {
		return fmt.Errorf("adaptive: zones end at %d, tailLo=%d", prev, z.tailLo)
	}
	if z.tailLo > z.rows {
		return fmt.Errorf("adaptive: tailLo %d beyond rows %d", z.tailLo, z.rows)
	}
	// Coarse level must enclose its member zones.
	if want := (len(z.zones) + blockZones - 1) / blockZones; len(z.blocks) != want {
		return fmt.Errorf("adaptive: %d blocks for %d zones, want %d", len(z.blocks), len(z.zones), want)
	}
	for i, zn := range z.zones {
		if zn.nonNull == 0 {
			continue
		}
		b := z.blocks[i/blockZones]
		if !b.hasData || zn.min < b.min || zn.max > b.max {
			return fmt.Errorf("adaptive: block %d bounds [%d,%d] exclude zone %d [%d,%d]",
				i/blockZones, b.min, b.max, i, zn.min, zn.max)
		}
	}
	return nil
}

// corruptLayout deterministically breaks the zone tiling invariant — the
// last multi-row zone's upper bound shrinks by one, leaving a row gap.
// It exists only as the faultinject.InvariantFlip chaos hook: the next
// probe must detect the gap, decline, and get the zonemap quarantined.
func (z *Zonemap) corruptLayout() {
	for i := len(z.zones) - 1; i >= 0; i-- {
		if z.zones[i].hi-z.zones[i].lo > 1 {
			z.zones[i].hi--
			return
		}
	}
}

// DescribeZones renders up to max zones for the demo REPL.
func (z *Zonemap) DescribeZones(max int) string {
	s := fmt.Sprintf("adaptive zonemap: %d zones over %d rows (tail %d), enabled=%v\n",
		len(z.zones), z.rows, z.rows-z.tailLo, z.enabled)
	for i, zn := range z.zones {
		if i >= max {
			s += fmt.Sprintf("  ... %d more zones\n", len(z.zones)-max)
			break
		}
		s += fmt.Sprintf("  zone %4d rows [%9d,%9d) bounds [%d,%d] nonNull=%d heat=%.2f\n",
			i, zn.lo, zn.hi, zn.min, zn.max, zn.nonNull, zn.heat)
	}
	return s
}

var (
	_ core.Skipper          = (*Zonemap)(nil)
	_ core.EventEmitter     = (*Zonemap)(nil)
	_ core.HealthChecker    = (*Zonemap)(nil)
	_ core.InvariantChecker = (*Zonemap)(nil)
	_ core.ZoneIntrospector = (*Zonemap)(nil)
	_ core.LedgerEmitter    = (*Zonemap)(nil)
	_ core.PruneReasoner    = (*Zonemap)(nil)
	_ core.ROIReporter      = (*Zonemap)(nil)
)
