package adaptive

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// trainedZonemap builds a zonemap and runs queries so it has learned
// structure worth persisting.
func trainedZonemap(t *testing.T) (*Zonemap, []int64) {
	t.Helper()
	codes := seqCodes(2000, func(i int) int64 { return int64((i / 20) * 100) })
	z := New(codes, nil, smallCfg())
	rng := rand.New(rand.NewSource(11))
	for q := 0; q < 100; q++ {
		lo := rng.Int63n(10000)
		execute(z, codes, nil, oneRange(lo, lo+500))
	}
	return z, codes
}

func TestSnapshotRoundTrip(t *testing.T) {
	z, codes := trainedZonemap(t)
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumZones() != z.NumZones() || back.Rows() != z.Rows() || back.Enabled() != z.Enabled() {
		t.Fatalf("shape: %d/%d zones, %d/%d rows", back.NumZones(), z.NumZones(), back.Rows(), z.Rows())
	}
	if back.Stats() != z.Stats() {
		t.Fatalf("stats: %+v vs %+v", back.Stats(), z.Stats())
	}
	if err := back.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
	// The restored structure prunes identically.
	for _, lo := range []int64{0, 500, 5000, 9000} {
		a := z.Prune(oneRange(lo, lo+300))
		b := back.Prune(oneRange(lo, lo+300))
		if a.RowsSkipped != b.RowsSkipped || len(a.Zones) != len(b.Zones) {
			t.Fatalf("prune diverged at %d: %d/%d skipped", lo, a.RowsSkipped, b.RowsSkipped)
		}
	}
	// And keeps returning exact counts afterwards.
	rng := rand.New(rand.NewSource(12))
	for q := 0; q < 50; q++ {
		lo := rng.Int63n(10000)
		r := oneRange(lo, lo+400)
		got := execute(back, codes, nil, r)
		want := execute(z, codes, nil, r)
		if got != want {
			t.Fatalf("q%d: %d vs %d", q, got, want)
		}
	}
}

func TestSnapshotCorruption(t *testing.T) {
	z, _ := trainedZonemap(t)
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0x55
	if _, err := Read(bytes.NewReader(flip), smallCfg()); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("flipped byte: %v", err)
	}

	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad), smallCfg()); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: %v", err)
	}

	for _, cut := range []int{0, 7, len(raw) / 3, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut]), smallCfg()); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

func TestSnapshotDisabledState(t *testing.T) {
	cfg := smallCfg()
	cfg.ProbeCost = 100
	rng := rand.New(rand.NewSource(5))
	codes := seqCodes(1000, func(i int) int64 { return rng.Int63n(100) })
	z := New(codes, nil, cfg)
	for q := 0; q < 50; q++ {
		execute(z, codes, nil, oneRange(40, 60))
	}
	if z.Enabled() {
		t.Fatal("precondition: should be disabled")
	}
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Enabled() {
		t.Fatal("disabled state not preserved")
	}
	res := back.Prune(oneRange(40, 60))
	if res.Enabled {
		t.Fatal("restored disabled zonemap should decline")
	}
}
