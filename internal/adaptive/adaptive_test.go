package adaptive

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adskip/internal/bitvec"
	"adskip/internal/core"
	"adskip/internal/expr"
	"adskip/internal/scan"
)

func oneRange(lo, hi int64) expr.Ranges {
	return expr.Ranges{Lo: []int64{lo}, Hi: []int64{hi}}
}

// execute simulates the engine's scan loop over a prune result: it scans
// candidate windows with the kernels, honors covered short-circuits,
// gathers requested statistics, and feeds the observations back. It
// returns the matching row count.
func execute(z *Zonemap, codes []int64, nulls *bitvec.BitVec, r expr.Ranges) int {
	res := z.Prune(r)
	if !res.Enabled {
		count := scan.CountRanges(codes, 0, len(codes), r, nulls, 0)
		z.Observe(res, nil)
		return count
	}
	count := 0
	var obs []core.ZoneObservation
	for _, c := range res.Zones {
		ob := core.ZoneObservation{ID: c.ID, Lo: c.Lo, Hi: c.Hi, Covered: c.Covered}
		if c.Covered {
			count += c.Hi - c.Lo
		} else if c.WantStats {
			m, stats := scan.CountWithStats(codes, c.Lo, c.Hi, r, nulls, 0, c.StatParts)
			count += m
			ob.Matched = m
			ob.Stats = stats
		} else {
			m := scan.CountRanges(codes, c.Lo, c.Hi, r, nulls, 0)
			count += m
			ob.Matched = m
		}
		obs = append(obs, ob)
	}
	z.Observe(res, obs)
	return count
}

func seqCodes(n int, f func(i int) int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func smallCfg() Config {
	return Config{
		InitialZoneRows: 100,
		MinZoneRows:     10,
		SplitParts:      5,
		MaxZones:        1000,
		Window:          8,
		MergeSweepEvery: 4,
		ReprobeEvery:    4,
	}
}

func TestNewBuildsCoarseZones(t *testing.T) {
	codes := seqCodes(250, func(i int) int64 { return int64(i) })
	z := New(codes, nil, smallCfg())
	if z.NumZones() != 3 || z.Rows() != 250 || !z.Enabled() {
		t.Fatalf("zones=%d rows=%d", z.NumZones(), z.Rows())
	}
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
	md := z.Metadata()
	if md.Kind != "adaptive" || md.Zones != 3 || !md.Enabled || md.Bytes == 0 {
		t.Fatalf("metadata=%+v", md)
	}
}

func TestPruneSkipsAndCovers(t *testing.T) {
	// Three zones with values 0..99, 100..199, 200..249 (sorted data).
	codes := seqCodes(250, func(i int) int64 { return int64(i) })
	z := New(codes, nil, smallCfg())
	res := z.Prune(oneRange(120, 180))
	// 1 block probe + 3 member zones (all zones fit in one block).
	if !res.Enabled || res.ZonesProbed != 4 {
		t.Fatalf("res=%+v", res)
	}
	if len(res.Zones) != 1 || res.Zones[0].Lo != 100 || res.Zones[0].Hi != 200 {
		t.Fatalf("zones=%v", res.Zones)
	}
	if res.RowsSkipped != 150 {
		t.Fatalf("RowsSkipped=%d", res.RowsSkipped)
	}
	// Fully covering predicate -> covered candidate, no stats wanted.
	res = z.Prune(oneRange(100, 199))
	if len(res.Zones) != 1 || !res.Zones[0].Covered || res.Zones[0].WantStats {
		t.Fatalf("covered prune: %v", res.Zones)
	}
	// Partially overlapping zone asks for stats.
	res = z.Prune(oneRange(150, 260))
	var want []core.CandidateZone
	for _, c := range res.Zones {
		want = append(want, c)
	}
	if len(want) != 2 || !want[0].WantStats || want[0].StatParts != 5 {
		t.Fatalf("stats request: %+v", want)
	}
	if !want[1].Covered {
		t.Fatalf("third zone should be covered: %+v", want[1])
	}
}

func TestCountsMatchNaiveOnEveryDistribution(t *testing.T) {
	distros := map[string]func(i int) int64{
		"sorted":    func(i int) int64 { return int64(i) },
		"clustered": func(i int) int64 { return int64((i / 50) * 1000) },
		"random":    func(i int) int64 { return int64((i*2654435761 + 17) % 5000) },
	}
	for name, f := range distros {
		codes := seqCodes(1000, f)
		z := New(codes, nil, smallCfg())
		rng := rand.New(rand.NewSource(7))
		for q := 0; q < 200; q++ {
			lo := rng.Int63n(5200) - 100
			r := oneRange(lo, lo+rng.Int63n(500))
			got := execute(z, codes, nil, r)
			want := scan.CountRanges(codes, 0, 1000, r, nil, 0)
			if got != want {
				t.Fatalf("%s q%d: got %d want %d", name, q, got, want)
			}
			if err := z.CheckInvariants(codes, nil, true); err != nil {
				t.Fatalf("%s q%d: %v", name, q, err)
			}
		}
	}
}

func TestSplitRefinesClusteredZone(t *testing.T) {
	// One initial zone of 100 rows, values = i (sorted inside the zone):
	// a narrow predicate should trigger a split that later prunes.
	cfg := smallCfg()
	cfg.InitialZoneRows = 1000
	codes := seqCodes(1000, func(i int) int64 { return int64(i) })
	z := New(codes, nil, cfg)
	if z.NumZones() != 1 {
		t.Fatalf("zones=%d", z.NumZones())
	}
	execute(z, codes, nil, oneRange(0, 49)) // scans, piggybacks stats, splits
	if z.NumZones() <= 1 {
		t.Fatal("no split happened")
	}
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
	if z.Stats().Splits == 0 {
		t.Fatal("split counter not incremented")
	}
	// The same query now skips most rows.
	res := z.Prune(oneRange(0, 49))
	if res.RowsSkipped == 0 {
		t.Fatalf("refined metadata should skip rows: %+v", res)
	}
}

func TestSplitRespectsMinZoneAndBudget(t *testing.T) {
	cfg := smallCfg()
	cfg.InitialZoneRows = 40
	cfg.MinZoneRows = 25 // 40/25 < 2 -> no stats wanted, no splits possible
	codes := seqCodes(40, func(i int) int64 { return int64(i) })
	z := New(codes, nil, cfg)
	res := z.Prune(oneRange(0, 5))
	if res.Zones[0].WantStats {
		t.Fatal("should not want stats below split floor")
	}
	// Budget: MaxZones equal to current count forbids splits.
	cfg2 := smallCfg()
	cfg2.InitialZoneRows = 100
	cfg2.MaxZones = 10 // 10 zones of 100 over 1000 rows; no headroom
	codes2 := seqCodes(1000, func(i int) int64 { return int64(i) })
	z2 := New(codes2, nil, cfg2)
	before := z2.NumZones()
	execute(z2, codes2, nil, oneRange(0, 10))
	if z2.NumZones() != before {
		t.Fatalf("split exceeded budget: %d -> %d", before, z2.NumZones())
	}
}

func TestMergeCoalescesUselessZones(t *testing.T) {
	// Random data: zones never skip, heat decays, merge sweep coalesces.
	cfg := smallCfg()
	cfg.Window = 1 << 30 // keep arbitration from disabling during this test
	rng := rand.New(rand.NewSource(3))
	codes := seqCodes(1000, func(i int) int64 { return rng.Int63n(1000) })
	z := New(codes, nil, cfg)
	before := z.NumZones() // 10
	for q := 0; q < 100; q++ {
		execute(z, codes, nil, oneRange(400, 600))
	}
	if z.NumZones() >= before {
		t.Fatalf("no merge: %d -> %d", before, z.NumZones())
	}
	if z.Stats().Merges == 0 {
		t.Fatal("merge counter not incremented")
	}
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRespectsMaxZoneRows(t *testing.T) {
	cfg := smallCfg()
	cfg.Window = 1 << 30
	cfg.MaxZoneRows = 250
	rng := rand.New(rand.NewSource(3))
	codes := seqCodes(1000, func(i int) int64 { return rng.Int63n(1000) })
	z := New(codes, nil, cfg)
	for q := 0; q < 200; q++ {
		execute(z, codes, nil, oneRange(0, 999))
	}
	// All zones cold -> merged, but never beyond 250 rows: at least 4 remain.
	if z.NumZones() < 4 {
		t.Fatalf("merge exceeded MaxZoneRows: %d zones", z.NumZones())
	}
}

func TestArbitrationDisablesOnAdversarialData(t *testing.T) {
	// Uniform random data: no zone ever skips; probing is pure overhead.
	cfg := smallCfg()
	cfg.ProbeCost = 100 // make the loss decisive quickly
	rng := rand.New(rand.NewSource(5))
	codes := seqCodes(1000, func(i int) int64 { return rng.Int63n(100) })
	z := New(codes, nil, cfg)
	for q := 0; q < 50; q++ {
		execute(z, codes, nil, oneRange(40, 60))
	}
	if z.Enabled() {
		t.Fatal("arbitration failed to disable on adversarial data")
	}
	if z.Stats().Disables == 0 {
		t.Fatal("disable counter not incremented")
	}
	// Disabled prune declines with no probe cost.
	res := z.Prune(oneRange(40, 60))
	if res.Enabled || res.ZonesProbed != 0 {
		t.Fatalf("disabled prune: %+v", res)
	}
	// Counts remain correct while disabled.
	got := execute(z, codes, nil, oneRange(40, 60))
	want := scan.CountRanges(codes, 0, 1000, oneRange(40, 60), nil, 0)
	if got != want {
		t.Fatalf("disabled count %d want %d", got, want)
	}
}

func TestShadowProbeReenables(t *testing.T) {
	cfg := smallCfg()
	cfg.ProbeCost = 50 // loses badly on unskippable queries, wins on skippable
	cfg.ReprobeEvery = 2
	cfg.Window = 4
	rng := rand.New(rand.NewSource(5))
	codes := seqCodes(1000, func(i int) int64 { return rng.Int63n(100) })
	z := New(codes, nil, cfg)
	// Disable with an unskippable workload.
	for q := 0; q < 60; q++ {
		execute(z, codes, nil, oneRange(40, 60))
	}
	if z.Enabled() {
		t.Fatal("precondition: should be disabled")
	}
	// Workload drifts to a predicate entirely outside the data domain:
	// every zone would skip; shadow probes should re-enable.
	for q := 0; q < 60 && !z.Enabled(); q++ {
		execute(z, codes, nil, oneRange(10_000, 20_000))
	}
	if !z.Enabled() {
		t.Fatal("shadow probe never re-enabled")
	}
	if z.Stats().Enables == 0 {
		t.Fatal("enable counter not incremented")
	}
}

func TestExtendAndTailFold(t *testing.T) {
	cfg := smallCfg()
	cfg.TailFoldRows = 150
	codes := seqCodes(100, func(i int) int64 { return int64(i) })
	z := New(codes, nil, cfg)
	// Small append: goes to tail, still scanned, counts correct.
	codes = append(codes, seqCodes(50, func(i int) int64 { return int64(1000 + i) })...)
	z.Extend(codes, nil)
	if z.Stats().TailRows != 50 {
		t.Fatalf("tail=%d", z.Stats().TailRows)
	}
	got := execute(z, codes, nil, oneRange(1000, 2000))
	if got != 50 {
		t.Fatalf("tail rows not scanned: %d", got)
	}
	// Larger append crosses the fold threshold.
	codes = append(codes, seqCodes(120, func(i int) int64 { return int64(2000 + i) })...)
	z.Extend(codes, nil)
	if z.Stats().TailRows != 0 {
		t.Fatalf("tail not folded: %d", z.Stats().TailRows)
	}
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
	// Folded zones participate in pruning.
	res := z.Prune(oneRange(0, 10))
	if res.RowsSkipped == 0 {
		t.Fatal("folded zones should prune")
	}
	// FoldTail on empty tail is a no-op.
	z.FoldTail(codes, nil)
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
}

func TestWidenKeepsPruningSound(t *testing.T) {
	codes := seqCodes(200, func(i int) int64 { return int64(i) })
	z := New(codes, nil, smallCfg())
	// Update row 5 to a huge value; widen metadata accordingly.
	codes[5] = 99999
	z.Widen(5, 99999)
	got := execute(z, codes, nil, oneRange(99999, 99999))
	if got != 1 {
		t.Fatalf("updated row lost: count=%d", got)
	}
	if err := z.CheckInvariants(codes, nil, true); err != nil {
		t.Fatal(err)
	}
	// Widen in the tail region is a no-op and must not panic.
	codes = append(codes, 7)
	z.Extend(codes, nil)
	z.Widen(200, 7)
}

func TestNoteNonNull(t *testing.T) {
	codes := seqCodes(100, func(i int) int64 { return int64(i) })
	nulls := bitvec.New(100)
	nulls.Set(10)
	z := New(codes, nulls, smallCfg())
	// Row 10 gains value 42.
	nulls.Clear(10)
	codes[10] = 42
	z.Widen(10, 42)
	z.NoteNonNull(10)
	if err := z.CheckInvariants(codes, nulls, true); err != nil {
		t.Fatal(err)
	}
}

func TestAllNullZone(t *testing.T) {
	codes := make([]int64, 200)
	nulls := bitvec.New(200)
	for i := 0; i < 100; i++ {
		nulls.Set(i) // first zone all null
	}
	for i := 100; i < 200; i++ {
		codes[i] = int64(i)
	}
	z := New(codes, nulls, smallCfg())
	res := z.Prune(oneRange(-1_000_000, 1_000_000))
	// All-null zone must be skipped even for an all-matching predicate.
	if len(res.Zones) != 1 || res.Zones[0].Lo != 100 {
		t.Fatalf("zones=%v", res.Zones)
	}
	got := execute(z, codes, nulls, oneRange(-1_000_000, 1_000_000))
	if got != 100 {
		t.Fatalf("count=%d want 100", got)
	}
}

// Property: under random interleavings of queries, appends, and updates,
// the adaptive zonemap stays structurally sound and always returns exact
// counts.
func TestQuickAdaptiveSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			InitialZoneRows: 20 + rng.Intn(100),
			MinZoneRows:     2 + rng.Intn(10),
			SplitParts:      2 + rng.Intn(6),
			MaxZones:        50 + rng.Intn(500),
			Window:          4 + rng.Intn(16),
			MergeSweepEvery: 1 + rng.Intn(8),
			ReprobeEvery:    1 + rng.Intn(8),
			MaxZoneRows:     50 + rng.Intn(500),
		}
		n := 50 + rng.Intn(400)
		codes := make([]int64, n)
		for i := range codes {
			codes[i] = rng.Int63n(300)
		}
		var nulls *bitvec.BitVec
		z := New(codes, nulls, cfg)
		for step := 0; step < 120; step++ {
			switch rng.Intn(10) {
			case 0: // append
				for k := 0; k < 1+rng.Intn(30); k++ {
					codes = append(codes, rng.Int63n(300))
				}
				z.Extend(codes, nulls)
			case 1: // in-place update
				row := rng.Intn(len(codes))
				v := rng.Int63n(600) - 150
				codes[row] = v
				z.Widen(row, v)
			default: // query
				lo := rng.Int63n(400) - 50
				r := oneRange(lo, lo+rng.Int63n(150))
				got := execute(z, codes, nulls, r)
				want := scan.CountRanges(codes, 0, len(codes), r, nulls, 0)
				if got != want {
					return false
				}
			}
			if err := z.CheckInvariants(codes, nulls, false); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.InitialZoneRows != 65536 || c.MinZoneRows != 1024 || c.SplitParts != 8 ||
		c.Window != 32 || c.ProbeCost != 4 || c.RowCost != 1 || c.TailFoldRows != 65536 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// TailFoldRows follows a custom InitialZoneRows.
	c = Config{InitialZoneRows: 100}.withDefaults()
	if c.TailFoldRows != 100 {
		t.Fatalf("TailFoldRows=%d", c.TailFoldRows)
	}
}

func TestDescribeZones(t *testing.T) {
	codes := seqCodes(250, func(i int) int64 { return int64(i) })
	z := New(codes, nil, smallCfg())
	s := z.DescribeZones(2)
	if s == "" || len(s) < 20 {
		t.Fatalf("DescribeZones: %q", s)
	}
}
