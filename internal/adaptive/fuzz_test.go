package adaptive

import (
	"bytes"
	"testing"
)

// FuzzSnapshotRead feeds arbitrary bytes to the zonemap snapshot decoder:
// garbage must error, never panic, and anything accepted must satisfy the
// structural invariants the engine relies on before trusting metadata.
func FuzzSnapshotRead(f *testing.F) {
	z, _ := trainedSeed()
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ADSKAZM1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data), smallCfg())
		if err != nil {
			return
		}
		// Structural invariants only (no column to validate against):
		// zones must tile [0, tailLo) — Read itself enforces this, so a
		// success here means the checks held.
		if got.Rows() < 0 || got.NumZones() < 0 {
			t.Fatal("nonsense shape accepted")
		}
	})
}

// trainedSeed builds a small learned zonemap for the fuzz corpus without
// requiring a *testing.T.
func trainedSeed() (*Zonemap, []int64) {
	codes := seqCodes(500, func(i int) int64 { return int64((i / 10) * 7) })
	z := New(codes, nil, smallCfg())
	for q := 0; q < 30; q++ {
		execute(z, codes, nil, oneRange(int64(q*11), int64(q*11+40)))
	}
	return z, codes
}
