package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLenAndZero(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len=%d want %d", v.Len(), n)
		}
		if v.Count() != 0 {
			t.Fatalf("new vector of %d bits has Count=%d", n, v.Count())
		}
		if v.Any() {
			t.Fatalf("new vector of %d bits reports Any", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	idxs := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idxs {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Count() != len(idxs) {
		t.Fatalf("Count=%d want %d", v.Count(), len(idxs))
	}
	for _, i := range idxs {
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
	if v.Any() {
		t.Fatal("vector not empty after clearing all")
	}
}

func TestSetBool(t *testing.T) {
	v := New(10)
	v.SetBool(3, true)
	v.SetBool(4, false)
	if !v.Get(3) || v.Get(4) {
		t.Fatalf("SetBool wrong: %s", v)
	}
	v.SetBool(3, false)
	if v.Get(3) {
		t.Fatal("SetBool(3,false) left bit set")
	}
}

func TestSetAllAndNotRespectTail(t *testing.T) {
	v := New(70)
	v.SetAll()
	if v.Count() != 70 {
		t.Fatalf("SetAll Count=%d want 70", v.Count())
	}
	v.Not()
	if v.Count() != 0 {
		t.Fatalf("Not after SetAll Count=%d want 0", v.Count())
	}
	v.Not()
	if v.Count() != 70 {
		t.Fatalf("double Not Count=%d want 70", v.Count())
	}
}

func TestSetRange(t *testing.T) {
	cases := []struct{ n, lo, hi int }{
		{100, 0, 0},
		{100, 0, 100},
		{100, 5, 60},
		{100, 63, 65},
		{100, 64, 64},
		{128, 1, 127},
		{64, 0, 64},
		{65, 64, 65},
	}
	for _, c := range cases {
		v := New(c.n)
		v.SetRange(c.lo, c.hi)
		for i := 0; i < c.n; i++ {
			want := i >= c.lo && i < c.hi
			if v.Get(i) != want {
				t.Fatalf("n=%d SetRange(%d,%d): bit %d = %v want %v", c.n, c.lo, c.hi, i, v.Get(i), want)
			}
		}
		if v.Count() != c.hi-c.lo {
			t.Fatalf("n=%d SetRange(%d,%d): Count=%d want %d", c.n, c.lo, c.hi, v.Count(), c.hi-c.lo)
		}
	}
}

func TestSetRangeOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetRange out of bounds did not panic")
		}
	}()
	New(10).SetRange(5, 11)
}

func TestCountRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(300)
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 {
			v.Set(i)
		}
	}
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(301)
		hi := lo + rng.Intn(301-lo)
		want := 0
		for i := lo; i < hi; i++ {
			if v.Get(i) {
				want++
			}
		}
		if got := v.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d)=%d want %d", lo, hi, got, want)
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(130)
	b := New(130)
	a.SetRange(0, 100)
	b.SetRange(50, 130)

	and := a.Clone()
	and.And(b)
	if and.Count() != 50 || !and.Get(50) || !and.Get(99) || and.Get(49) || and.Get(100) {
		t.Fatalf("And wrong: count=%d", and.Count())
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 130 {
		t.Fatalf("Or count=%d want 130", or.Count())
	}

	andnot := a.Clone()
	andnot.AndNot(b)
	if andnot.Count() != 50 || !andnot.Get(0) || andnot.Get(50) {
		t.Fatalf("AndNot wrong: count=%d", andnot.Count())
	}
}

func TestOpsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestNextSet(t *testing.T) {
	v := New(200)
	v.Set(5)
	v.Set(64)
	v.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d)=%d want %d", c.from, got, c.want)
		}
	}
	if got := v.NextSet(200); got != -1 {
		t.Fatalf("NextSet past end = %d want -1", got)
	}
	empty := New(64)
	if got := empty.NextSet(0); got != -1 {
		t.Fatalf("NextSet on empty = %d want -1", got)
	}
}

func TestForEachSetAndAppendSetTo(t *testing.T) {
	v := New(150)
	want := []int{0, 7, 63, 64, 100, 149}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEachSet visited %d bits want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet order: got %v want %v", got, want)
		}
	}
	appended := v.AppendSetTo(nil)
	for i := range want {
		if appended[i] != want[i] {
			t.Fatalf("AppendSetTo: got %v want %v", appended, want)
		}
	}
}

func TestCloneEqualCopyFrom(t *testing.T) {
	a := New(99)
	a.SetRange(10, 40)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(50)
	if a.Equal(b) {
		t.Fatal("mutating clone affected equality unexpectedly")
	}
	if a.Get(50) {
		t.Fatal("clone shares storage with original")
	}
	c := New(99)
	c.CopyFrom(b)
	if !c.Equal(b) {
		t.Fatal("CopyFrom did not copy")
	}
	if a.Equal(New(100)) {
		t.Fatal("Equal ignored length")
	}
}

func TestString(t *testing.T) {
	v := New(5)
	v.Set(1)
	v.Set(4)
	if s := v.String(); s != "01001" {
		t.Fatalf("String=%q want 01001", s)
	}
}

// Property: SetRange followed by CountRange over any window agrees with a
// naive bit loop.
func TestQuickRangeOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		v := New(n)
		ref := make([]bool, n)
		for k := 0; k < 20; k++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			v.SetRange(lo, hi)
			for i := lo; i < hi; i++ {
				ref[i] = true
			}
		}
		for k := 0; k < 20; k++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			want := 0
			for i := lo; i < hi; i++ {
				if ref[i] {
					want++
				}
			}
			if v.CountRange(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — Not(a And b) == Not(a) Or Not(b).
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		lhs := a.Clone()
		lhs.And(b)
		lhs.Not()
		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		na.Or(nb)
		return lhs.Equal(na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSelVecBasics(t *testing.T) {
	s := NewSelVec(4)
	s.Append(3)
	s.Append(7)
	s.AppendRange(10, 13)
	if s.Len() != 5 {
		t.Fatalf("Len=%d want 5", s.Len())
	}
	want := []uint32{3, 7, 10, 11, 12}
	for i, r := range s.Rows() {
		if r != want[i] {
			t.Fatalf("Rows=%v want %v", s.Rows(), want)
		}
	}
	bv := s.ToBitVec(20)
	if bv.Count() != 5 || !bv.Get(3) || !bv.Get(12) {
		t.Fatalf("ToBitVec wrong: %s", bv)
	}
	s2 := NewSelVec(0)
	s2.FromBitVec(bv)
	if s2.Len() != 5 || s2.Rows()[0] != 3 {
		t.Fatalf("FromBitVec wrong: %v", s2.Rows())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
}

func BenchmarkCount(b *testing.B) {
	v := NewSet(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v.Count() != 1<<20 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkAnd(b *testing.B) {
	x := NewSet(1 << 20)
	y := NewSet(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}
