// Package bitvec provides dense bit vectors and selection vectors used by
// the scan kernels and the pruning machinery.
//
// A BitVec is a fixed-length sequence of bits stored 64 per word. It is the
// unit of scan output (one bit per row: does the row qualify?) and of zone
// candidate sets (one bit per zone: must the zone be scanned?). All bulk
// operations work word-at-a-time so that combining predicate results across
// columns costs ~N/64 operations.
package bitvec

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// BitVec is a fixed-size bit vector. The zero value is an empty vector of
// length 0; use New to create one with a given length.
type BitVec struct {
	words []uint64
	n     int
}

// New returns a BitVec of n bits, all zero.
func New(n int) *BitVec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &BitVec{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewSet returns a BitVec of n bits, all one.
func NewSet(n int) *BitVec {
	v := New(n)
	v.SetAll()
	return v
}

// Len returns the number of bits in the vector.
func (v *BitVec) Len() int { return v.n }

// Grow extends the vector to n bits (no-op when already that long). New
// bits are zero. Growth amortizes through the backing slice's capacity.
func (v *BitVec) Grow(n int) {
	if n <= v.n {
		return
	}
	words := (n + wordBits - 1) / wordBits
	for len(v.words) < words {
		v.words = append(v.words, 0)
	}
	v.n = n
}

// Words exposes the backing words for word-at-a-time consumers. The final
// word's bits beyond Len are always zero.
func (v *BitVec) Words() []uint64 { return v.words }

// Get reports whether bit i is set.
func (v *BitVec) Get(i int) bool {
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i.
func (v *BitVec) Set(i int) {
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (v *BitVec) Clear(i int) {
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// SetBool sets bit i to b without branching on b at the call site.
func (v *BitVec) SetBool(i int, b bool) {
	w := &v.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	if b {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// SetAll sets every bit.
func (v *BitVec) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trimTail()
}

// ClearAll clears every bit.
func (v *BitVec) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// SetRange sets bits [lo, hi).
func (v *BitVec) SetRange(lo, hi int) {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: SetRange [%d,%d) out of bounds for length %d", lo, hi, v.n))
	}
	if lo == hi {
		return
	}
	first, last := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if first == last {
		v.words[first] |= loMask & hiMask
		return
	}
	v.words[first] |= loMask
	for i := first + 1; i < last; i++ {
		v.words[i] = ^uint64(0)
	}
	v.words[last] |= hiMask
}

// CountRange returns the number of set bits in [lo, hi).
func (v *BitVec) CountRange(lo, hi int) int {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: CountRange [%d,%d) out of bounds for length %d", lo, hi, v.n))
	}
	if lo == hi {
		return 0
	}
	first, last := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if first == last {
		return bits.OnesCount64(v.words[first] & loMask & hiMask)
	}
	c := bits.OnesCount64(v.words[first] & loMask)
	for i := first + 1; i < last; i++ {
		c += bits.OnesCount64(v.words[i])
	}
	c += bits.OnesCount64(v.words[last] & hiMask)
	return c
}

// Count returns the number of set bits.
func (v *BitVec) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And sets v = v & o. Panics if lengths differ.
func (v *BitVec) And(o *BitVec) {
	v.checkLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or sets v = v | o. Panics if lengths differ.
func (v *BitVec) Or(o *BitVec) {
	v.checkLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// AndNot sets v = v &^ o. Panics if lengths differ.
func (v *BitVec) AndNot(o *BitVec) {
	v.checkLen(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// Not inverts every bit.
func (v *BitVec) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trimTail()
}

// Clone returns a deep copy of v.
func (v *BitVec) Clone() *BitVec {
	c := &BitVec{words: make([]uint64, len(v.words)), n: v.n}
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v's bits with o's. Panics if lengths differ.
func (v *BitVec) CopyFrom(o *BitVec) {
	v.checkLen(o)
	copy(v.words, o.words)
}

// Any reports whether any bit is set.
func (v *BitVec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// none exists.
func (v *BitVec) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// ForEachSet calls f for every set bit index, in ascending order.
func (v *BitVec) ForEachSet(f func(i int)) {
	for wi, w := range v.words {
		base := wi * wordBits
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendSetTo appends the indices of all set bits to dst and returns it.
func (v *BitVec) AppendSetTo(dst []int) []int {
	for wi, w := range v.words {
		base := wi * wordBits
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Equal reports whether v and o have identical length and bits.
func (v *BitVec) Equal(o *BitVec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector as a 0/1 string, bit 0 first. Intended for
// tests and debugging of short vectors.
func (v *BitVec) String() string {
	b := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func (v *BitVec) checkLen(o *BitVec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// trimTail zeroes the unused bits of the final word so that Count and
// word-level comparisons remain exact.
func (v *BitVec) trimTail() {
	if tail := v.n % wordBits; tail != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= ^uint64(0) >> uint(wordBits-tail)
	}
}
