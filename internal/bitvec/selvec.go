package bitvec

// SelVec is a selection vector: an ordered list of qualifying row indices.
// Scan kernels can emit either a BitVec or a SelVec; SelVec is preferred for
// low selectivities where materializing positions is cheaper than walking a
// mostly-zero bitmap.
type SelVec struct {
	rows []uint32
}

// NewSelVec returns a selection vector with capacity for capHint rows.
func NewSelVec(capHint int) *SelVec {
	return &SelVec{rows: make([]uint32, 0, capHint)}
}

// Append adds a row index. Indices must be appended in ascending order for
// Rows to be a valid ordered selection; kernels guarantee this.
func (s *SelVec) Append(row uint32) { s.rows = append(s.rows, row) }

// AppendRange adds all rows in [lo, hi).
func (s *SelVec) AppendRange(lo, hi uint32) {
	for r := lo; r < hi; r++ {
		s.rows = append(s.rows, r)
	}
}

// Len returns the number of selected rows.
func (s *SelVec) Len() int { return len(s.rows) }

// Rows returns the selected row indices in ascending order. The returned
// slice aliases internal storage and is valid until the next Append/Reset.
func (s *SelVec) Rows() []uint32 { return s.rows }

// Reset empties the vector, retaining capacity.
func (s *SelVec) Reset() { s.rows = s.rows[:0] }

// Truncate shortens the selection to its first n rows. Used by in-place
// refinement: callers that filtered Rows() in place keep the surviving
// prefix.
func (s *SelVec) Truncate(n int) { s.rows = s.rows[:n] }

// ToBitVec converts the selection into a bit vector of n bits.
func (s *SelVec) ToBitVec(n int) *BitVec {
	v := New(n)
	for _, r := range s.rows {
		v.Set(int(r))
	}
	return v
}

// FromBitVec replaces the selection with the set bits of v.
func (s *SelVec) FromBitVec(v *BitVec) {
	s.rows = s.rows[:0]
	v.ForEachSet(func(i int) { s.rows = append(s.rows, uint32(i)) })
}
