// Package telemetry hosts the engine's embedded observability server: an
// opt-in net/http endpoint exposing Prometheus metrics, pprof profiles,
// recent query traces (browsable as JSON or downloadable as Chrome
// trace_event files), the per-zone skipping-effectiveness heatmap, the
// adaptation-event log, and sampled Go runtime statistics.
//
// The server is strictly read-only and pull-based: it snapshots state the
// engine already maintains (metric registries, trace rings, skipper
// introspection) and never blocks the query path beyond the mutex those
// snapshots take. It depends only on obs plus closures supplied by the
// caller, so it stays decoupled from the engine's types.
package telemetry

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"adskip/internal/health"
	"adskip/internal/obs"
	"adskip/internal/stats"
)

// Source supplies the server's data. Registry and Traces must be set;
// everything else is optional (its endpoint then serves an empty set).
type Source struct {
	// Registry is the metrics registry behind /metrics and /metrics.json.
	Registry *obs.Registry
	// Traces is the ring of recent query traces behind /traces.
	Traces *obs.TraceRing
	// SlowTraces is the slow-query log behind /slow.
	SlowTraces *obs.TraceRing
	// Events returns the retained adaptation events (chronological).
	Events func() []obs.Event
	// Skipmap returns per-table skipping-effectiveness snapshots with at
	// most maxZones of per-zone detail per column.
	Skipmap func(maxZones int) []obs.SkipmapTable
	// History is the adaptation-timeline sampler behind /history and the
	// /dash convergence chart. Optional: /history serves an empty series
	// and /dash degrades gracefully when nil.
	History *obs.Sampler
	// Health returns the current SLO snapshot behind /health. When nil
	// (or when it reports ok=false), /health serves a 200 "disabled"
	// body; otherwise /health is a readiness probe: 503 while any
	// objective is critical, 200 otherwise.
	Health func() (health.Snapshot, bool)
	// Alerts returns the firing objectives and alert-transition history
	// behind /alerts. Optional.
	Alerts func() health.AlertsSnapshot
	// Workload is the per-template workload stats table behind /workload.
	// Optional: when nil, /workload serves an empty snapshot.
	Workload *stats.Table
	// Adaptation returns the adaptation-ledger snapshot (zone-lifecycle
	// records plus per-column ROI rows) behind /adaptation, with at most
	// maxDead dead zones of per-column detail. Optional: when nil,
	// /adaptation serves an empty snapshot.
	Adaptation func(maxDead int) obs.AdaptationSnapshot
}

// Options tunes the server.
type Options struct {
	// Addr is the listen address. Use ":0" (or "127.0.0.1:0") for an
	// ephemeral port; Server.Addr reports what was bound.
	Addr string
	// SampleInterval is the runtime collector's period (default 5s).
	SampleInterval time.Duration
	// SampleCapacity is the runtime sample ring size (default 256).
	SampleCapacity int
}

// Server is a running telemetry endpoint. Close shuts down the listener
// and the runtime collector; both are fully torn down when it returns.
type Server struct {
	src  Source
	ln   net.Listener
	http *http.Server
	coll *Collector
	done chan struct{}
}

// Start binds opts.Addr and serves in a background goroutine. The runtime
// collector starts alongside and stops on Close.
func Start(opts Options, src Source) (*Server, error) {
	if src.Registry == nil || src.Traces == nil {
		return nil, fmt.Errorf("telemetry: Source.Registry and Source.Traces are required")
	}
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		src:  src,
		ln:   ln,
		coll: NewCollector(opts.SampleInterval, opts.SampleCapacity),
		done: make(chan struct{}),
	}
	s.http = &http.Server{Handler: s.mux()}
	go func() {
		defer close(s.done)
		_ = s.http.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down: in-flight requests get up to five seconds
// to drain, the listener closes, and the runtime collector goroutine is
// stopped and joined. Safe to call once.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.http.Shutdown(ctx)
	<-s.done
	s.coll.Stop()
	return err
}

// mux wires the endpoint table.
func (s *Server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/", s.handleIndex)
	m.HandleFunc("/metrics", s.handleMetrics)
	m.HandleFunc("/metrics.json", s.handleMetricsJSON)
	m.HandleFunc("/traces", s.handleTraces)
	m.HandleFunc("/slow", s.handleSlow)
	m.HandleFunc("/skipmap", s.handleSkipmap)
	m.HandleFunc("/events", s.handleEvents)
	m.HandleFunc("/runtime", s.handleRuntime)
	m.HandleFunc("/history", s.handleHistory)
	m.HandleFunc("/health", s.handleHealth)
	m.HandleFunc("/alerts", s.handleAlerts)
	m.HandleFunc("/workload", s.handleWorkload)
	m.HandleFunc("/adaptation", s.handleAdaptation)
	m.HandleFunc("/dash", s.handleDash)
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return m
}

// handleIndex lists the endpoints.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><html><head><title>adskip telemetry</title></head><body>
<h1>adskip telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/metrics.json">/metrics.json</a> — metrics as JSON</li>
<li><a href="/traces">/traces</a> — recent query traces (add <code>?format=chrome</code> for a chrome://tracing file)</li>
<li><a href="/slow">/slow</a> — slow-query log</li>
<li><a href="/skipmap">/skipmap</a> — per-zone skipping-effectiveness heatmap (add <code>?zones=N</code>)</li>
<li><a href="/events">/events</a> — adaptation-event log</li>
<li><a href="/runtime">/runtime</a> — sampled Go runtime statistics</li>
<li><a href="/history">/history</a> — adaptation timeline (sampled skip ratio, latency quantiles, per-column series)</li>
<li><a href="/health">/health</a> — SLO snapshot / readiness probe (503 while any objective is critical)</li>
<li><a href="/alerts">/alerts</a> — firing objectives + alert-transition history</li>
<li><a href="/workload">/workload</a> — per-template workload stats (add <code>?sort=time|calls|bytes</code>, <code>?k=N</code>, <code>?format=csv</code>)</li>
<li><a href="/adaptation">/adaptation</a> — adaptation ledger: zone-lifecycle provenance + per-column skip ROI (add <code>?table=</code>, <code>?shard=N</code>, <code>?dead=N</code>, <code>?format=csv</code>)</li>
<li><a href="/dash">/dash</a> — live dashboard (convergence curve + zone heatmap)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — pprof profiles</li>
</ul></body></html>`)
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.src.Registry.WritePrometheus(w)
}

// handleMetricsJSON serves the metrics as JSON.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.src.Registry.WriteJSON(w)
}

// traceListing is the /traces and /slow JSON shape.
type traceListing struct {
	Total   uint64            `json:"total"`
	Dropped uint64            `json:"dropped"`
	Traces  []*obs.QueryTrace `json:"traces"`
}

// handleTraces serves the trace ring: JSON by default, Chrome trace_event
// format (downloadable, loads in chrome://tracing) with ?format=chrome.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	ring := s.src.Traces
	serveTraces(w, r, ring, ring.Snapshot(), "adskip-trace.json")
}

// handleSlow serves the slow-query log in the same formats as /traces.
// ?shard=N keeps only traces served by that 1-based shard — a per-shard
// trace's own shard stamp, or membership in a merged logical trace's
// scanned-shard list. Out-of-range shards are a 400.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	ring := s.src.SlowTraces
	if ring == nil {
		writeJSON(w, traceListing{Traces: []*obs.QueryTrace{}})
		return
	}
	shard, hasShard, err := parseShard(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	traces := ring.Snapshot()
	if hasShard {
		maxShard := 0
		for _, t := range traces {
			if t.Shard > maxShard {
				maxShard = t.Shard
			}
			for _, sh := range t.Shards {
				if sh > maxShard {
					maxShard = sh
				}
			}
		}
		if shard < 1 || shard > maxShard {
			http.Error(w, fmt.Sprintf("shard %d out of range (slow log has shards 1..%d)", shard, maxShard),
				http.StatusBadRequest)
			return
		}
		kept := make([]*obs.QueryTrace, 0, len(traces))
		for _, t := range traces {
			if traceTouchesShard(t, shard) {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	serveTraces(w, r, ring, traces, "adskip-slow-trace.json")
}

// traceTouchesShard reports whether a trace was served by the given
// 1-based shard.
func traceTouchesShard(t *obs.QueryTrace, shard int) bool {
	if t.Shard == shard {
		return true
	}
	for _, sh := range t.Shards {
		if sh == shard {
			return true
		}
	}
	return false
}

// serveTraces renders an already-filtered trace list in the requested
// format. Total/Dropped report the ring, not the filtered view.
func serveTraces(w http.ResponseWriter, r *http.Request, ring *obs.TraceRing, traces []*obs.QueryTrace, filename string) {
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="`+filename+`"`)
		_ = obs.WriteChromeTrace(w, traces)
		return
	}
	writeJSON(w, traceListing{Total: ring.Total(), Dropped: ring.Dropped(), Traces: traces})
}

// parseShard reads an optional ?shard=N filter: a 1-based shard number.
// Returns (0, false, nil) when the parameter is absent. Non-numeric
// values are a client error — callers answer 400, never 500 or a
// silently empty set.
func parseShard(r *http.Request) (int, bool, error) {
	v := r.URL.Query().Get("shard")
	if v == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false, fmt.Errorf("bad shard parameter %q (want a 1-based shard number)", v)
	}
	return n, true, nil
}

// handleSkipmap serves the per-table skipping heatmap. ?zones=N caps the
// per-column zone detail (default 1024; zones=0 omits detail entirely,
// zones=-1 returns every zone). ?shard=N narrows a sharded catalog to
// one shard's snapshots; out-of-range shards are a 400.
func (s *Server) handleSkipmap(w http.ResponseWriter, r *http.Request) {
	if s.src.Skipmap == nil {
		writeJSON(w, []obs.SkipmapTable{})
		return
	}
	maxZones := 1024
	if v := r.URL.Query().Get("zones"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &maxZones); err != nil {
			http.Error(w, "bad zones parameter", http.StatusBadRequest)
			return
		}
	}
	shard, hasShard, err := parseShard(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tables := s.src.Skipmap(maxZones)
	if tables == nil {
		tables = []obs.SkipmapTable{}
	}
	if hasShard {
		maxShard := 0
		for _, t := range tables {
			if t.Shards > maxShard {
				maxShard = t.Shards
			}
		}
		if shard < 1 || shard > maxShard {
			http.Error(w, fmt.Sprintf("shard %d out of range (catalog has shards 1..%d)", shard, maxShard),
				http.StatusBadRequest)
			return
		}
		kept := tables[:0]
		for _, t := range tables {
			if t.Shard == shard {
				kept = append(kept, t)
			}
		}
		tables = kept
	}
	if maxZones == 0 {
		for ti := range tables {
			for ci := range tables[ti].Columns {
				c := &tables[ti].Columns[ci]
				c.ZonesTruncated = c.Zones
				c.ZoneDetail = nil
			}
		}
	}
	writeJSON(w, tables)
}

// handleEvents serves the adaptation-event log.
func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	var evs []obs.Event
	if s.src.Events != nil {
		evs = s.src.Events()
	}
	if evs == nil {
		evs = []obs.Event{}
	}
	writeJSON(w, evs)
}

// handleRuntime serves the sampled runtime statistics oldest-first.
func (s *Server) handleRuntime(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.coll.Snapshot())
}

// historyListing is the /history JSON shape. Samples are oldest-first;
// per-sample column series are sorted by (table, column), so the
// serialization is deterministic for a given state.
type historyListing struct {
	IntervalNS int64               `json:"interval_ns"`
	Total      uint64              `json:"total"`
	Samples    []obs.HistorySample `json:"samples"`
}

// handleHistory serves the adaptation timeline oldest-first. ?shard=N
// narrows each sample's per-column series to one 1-based shard
// (engine-wide totals stay catalog-wide); out-of-range shards are a 400.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.src.History == nil {
		writeJSON(w, historyListing{Samples: []obs.HistorySample{}})
		return
	}
	shard, hasShard, err := parseShard(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	samples := s.src.History.Snapshot()
	if hasShard {
		maxShard := 0
		for i := range samples {
			for _, c := range samples[i].Columns {
				if c.Shard > maxShard {
					maxShard = c.Shard
				}
			}
		}
		if shard < 1 || shard > maxShard {
			http.Error(w, fmt.Sprintf("shard %d out of range (timeline has shards 1..%d)", shard, maxShard),
				http.StatusBadRequest)
			return
		}
		// Filter into fresh slices: the snapshot's column slices are never
		// mutated in place.
		for i := range samples {
			var cols []obs.HistoryColumn
			for _, c := range samples[i].Columns {
				if c.Shard == shard {
					cols = append(cols, c)
				}
			}
			samples[i].Columns = cols
		}
	}
	writeJSON(w, historyListing{
		IntervalNS: int64(s.src.History.Interval()),
		Total:      s.src.History.Total(),
		Samples:    samples,
	})
}

// healthListing is the /health JSON shape: an enabled flag wrapping the
// monitor's snapshot (zero-valued when SLO tracking is off).
type healthListing struct {
	Enabled bool `json:"enabled"`
	health.Snapshot
}

// handleHealth serves the SLO snapshot with readiness-probe semantics:
// HTTP 503 while any objective burns at critical, 200 otherwise (also
// 200 when no objectives are configured — a probe must not fail a
// deployment that never declared SLOs).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.src.Health == nil {
		writeJSON(w, healthListing{})
		return
	}
	snap, ok := s.src.Health()
	if !ok {
		writeJSON(w, healthListing{})
		return
	}
	if snap.Status == health.SevCritical {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, healthListing{Enabled: true, Snapshot: snap})
}

// handleAlerts serves the firing objectives and the retained alert
// transitions, oldest-first.
func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	out := health.AlertsSnapshot{Active: []health.ObjectiveStatus{}, History: []health.Transition{}}
	if s.src.Alerts != nil {
		out = s.src.Alerts()
	}
	writeJSON(w, out)
}

// handleWorkload serves the per-template workload stats, top-K by the
// requested sort order. ?sort=time|calls|bytes (default time),
// ?k=N caps the template list (default 50; k=0 returns every template),
// ?format=csv switches to a downloadable CSV, ?shard=N keeps only
// templates that have scanned that shard (400 when out of range).
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sortBy := q.Get("sort")
	if !stats.ValidSort(sortBy) {
		http.Error(w, "bad sort parameter (want time, calls, or bytes)", http.StatusBadRequest)
		return
	}
	k := 50
	if v := q.Get("k"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &k); err != nil || k < 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
	}
	shard, hasShard, err := parseShard(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := s.src.Workload.Snapshot(sortBy, k)
	if hasShard {
		// MaxShard is computed over every tracked template before top-K
		// truncation, so the range check is stable across k values.
		if shard < 1 || shard > snap.MaxShard {
			http.Error(w, fmt.Sprintf("shard %d out of range (workload has shards 1..%d)", shard, snap.MaxShard),
				http.StatusBadRequest)
			return
		}
		kept := snap.Templates[:0]
		for _, ts := range snap.Templates {
			for _, sh := range ts.Shards {
				if sh == shard {
					kept = append(kept, ts)
					break
				}
			}
		}
		snap.Templates = kept
	}
	if q.Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="adskip-workload.csv"`)
		_ = stats.WriteSnapshotCSV(w, snap)
		return
	}
	writeJSON(w, snap)
}

// handleAdaptation serves the adaptation ledger: the retained
// zone-lifecycle records with provenance plus per-column skip-ROI rows.
// ?table= narrows to one table (unknown tables are a 400), ?shard=N to
// one 1-based shard (out of range is a 400), ?dead=N caps per-column
// dead-zone detail (default 16; dead=0 keeps the counts but omits the
// detail), ?format=csv downloads the ROI rows as CSV. Total/Dropped
// always report the whole ledger, not the filtered view.
func (s *Server) handleAdaptation(w http.ResponseWriter, r *http.Request) {
	if s.src.Adaptation == nil {
		writeJSON(w, obs.AdaptationSnapshot{Events: []obs.LedgerRecord{}, ROI: []obs.ColumnROI{}})
		return
	}
	q := r.URL.Query()
	maxDead := 16
	if v := q.Get("dead"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad dead parameter (want a non-negative count)", http.StatusBadRequest)
			return
		}
		maxDead = n
	}
	shard, hasShard, err := parseShard(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := s.src.Adaptation(maxDead)
	if snap.Events == nil {
		snap.Events = []obs.LedgerRecord{}
	}
	if snap.ROI == nil {
		snap.ROI = []obs.ColumnROI{}
	}
	if table := q.Get("table"); table != "" {
		known := false
		for i := range snap.ROI {
			if snap.ROI[i].Table == table {
				known = true
				break
			}
		}
		if !known {
			for i := range snap.Events {
				if snap.Events[i].Table == table {
					known = true
					break
				}
			}
		}
		if !known {
			http.Error(w, fmt.Sprintf("unknown table %q", table), http.StatusBadRequest)
			return
		}
		events := snap.Events[:0]
		for _, ev := range snap.Events {
			if ev.Table == table {
				events = append(events, ev)
			}
		}
		snap.Events = events
		roi := snap.ROI[:0]
		for _, row := range snap.ROI {
			if row.Table == table {
				roi = append(roi, row)
			}
		}
		snap.ROI = roi
	}
	if hasShard {
		maxShard := 0
		for i := range snap.ROI {
			if snap.ROI[i].Shard > maxShard {
				maxShard = snap.ROI[i].Shard
			}
		}
		for i := range snap.Events {
			if snap.Events[i].Shard > maxShard {
				maxShard = snap.Events[i].Shard
			}
		}
		if shard < 1 || shard > maxShard {
			http.Error(w, fmt.Sprintf("shard %d out of range (ledger has shards 1..%d)", shard, maxShard),
				http.StatusBadRequest)
			return
		}
		events := snap.Events[:0]
		for _, ev := range snap.Events {
			if ev.Shard == shard {
				events = append(events, ev)
			}
		}
		snap.Events = events
		roi := snap.ROI[:0]
		for _, row := range snap.ROI {
			if row.Shard == shard {
				roi = append(roi, row)
			}
		}
		snap.ROI = roi
	}
	if q.Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="adskip-adaptation.csv"`)
		_ = writeAdaptationCSV(w, snap)
		return
	}
	writeJSON(w, snap)
}

// writeAdaptationCSV writes the snapshot's ROI rows as CSV — the tabular
// half of /adaptation (the event journal stays JSON-only). The header is
// golden-locked by telemetry tests; appending columns is fine, renaming
// or removing them is not.
func writeAdaptationCSV(w io.Writer, snap obs.AdaptationSnapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"table", "shard", "column", "kind", "zones", "bytes",
		"rows_skipped", "rows_covered", "bytes_skipped", "candidate_rows",
		"zone_probes", "maintenance_events", "maintenance_zones",
		"net_benefit_rows", "dead_zones",
	}); err != nil {
		return err
	}
	for _, row := range snap.ROI {
		rec := []string{
			row.Table,
			strconv.Itoa(row.Shard),
			row.Column,
			row.Kind,
			strconv.Itoa(row.Zones),
			strconv.Itoa(row.Bytes),
			strconv.FormatInt(row.RowsSkipped, 10),
			strconv.FormatInt(row.RowsCovered, 10),
			strconv.FormatInt(row.BytesSkipped, 10),
			strconv.FormatInt(row.CandidateRows, 10),
			strconv.FormatInt(row.ZoneProbes, 10),
			strconv.FormatInt(row.MaintEvents, 10),
			strconv.FormatInt(row.MaintZones, 10),
			strconv.FormatFloat(row.NetRows, 'f', 1, 64),
			strconv.Itoa(row.DeadZones),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
