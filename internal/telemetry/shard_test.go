package telemetry

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"adskip/internal/obs"
	"adskip/internal/stats"
)

// shardedSource builds a server source for a 3-shard table: one skipmap
// snapshot per shard, and a workload whose two templates touched
// different shard sets.
func shardedSource() Source {
	src := testSource()
	src.Skipmap = func(maxZones int) []obs.SkipmapTable {
		out := make([]obs.SkipmapTable, 0, 3)
		for i := 1; i <= 3; i++ {
			out = append(out, obs.SkipmapTable{
				Table: "t", Shard: i, Shards: 3, Rows: 64,
				Columns: []obs.SkipmapColumn{{Column: "v", Kind: "adaptive", Zones: 1, Enabled: true}},
			})
		}
		return out
	}
	tbl := stats.New(stats.Options{})
	tbl.Record(stats.Sample{
		Fingerprint: "SELECT COUNT(*) FROM t WHERE id < ?", Table: "t",
		Latency: time.Millisecond, RowsRead: 100,
		ShardsScanned: 1, ShardsPruned: 2, Shards: []int{1},
	})
	tbl.Record(stats.Sample{
		Fingerprint: "SELECT COUNT(*) FROM t", Table: "t",
		Latency: time.Millisecond, RowsRead: 300,
		ShardsScanned: 3, Shards: []int{1, 2, 3},
	})
	src.Workload = tbl
	return src
}

// TestSkipmapShardFilter: ?shard=N narrows the heatmap to one shard's
// snapshots; bad and out-of-range values are 400s, never 500s or a
// silently empty list.
func TestSkipmapShardFilter(t *testing.T) {
	srv, err := Start(Options{}, shardedSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, srv.URL()+"/skipmap?shard=2")
	if code != http.StatusOK {
		t.Fatalf("/skipmap?shard=2 = %d\n%s", code, body)
	}
	var tables []obs.SkipmapTable
	if err := json.Unmarshal([]byte(body), &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Shard != 2 || tables[0].Shards != 3 {
		t.Fatalf("shard=2 returned %+v, want exactly shard 2 of 3", tables)
	}

	for _, q := range []string{"?shard=abc", "?shard=0", "?shard=-1", "?shard=99", "?shard=1.5"} {
		if code, body := get(t, srv.URL()+"/skipmap"+q); code != http.StatusBadRequest {
			t.Errorf("/skipmap%s = %d, want 400\n%s", q, code, body)
		}
	}
}

// TestSkipmapShardFilterUnsharded: on an unsharded catalog every shard
// number is out of range — a 400, not an empty 200.
func TestSkipmapShardFilterUnsharded(t *testing.T) {
	srv, err := Start(Options{}, testSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := get(t, srv.URL()+"/skipmap?shard=1"); code != http.StatusBadRequest {
		t.Fatalf("/skipmap?shard=1 on unsharded catalog = %d, want 400\n%s", code, body)
	}
}

// TestWorkloadShardFilter: ?shard=N keeps only templates that scanned
// that shard; validation mirrors /skipmap.
func TestWorkloadShardFilter(t *testing.T) {
	srv, err := Start(Options{}, shardedSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	decode := func(query string) stats.WorkloadSnapshot {
		t.Helper()
		code, body := get(t, srv.URL()+"/workload"+query)
		if code != http.StatusOK {
			t.Fatalf("/workload%s = %d\n%s", query, code, body)
		}
		var snap stats.WorkloadSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	all := decode("")
	if len(all.Templates) != 2 || all.MaxShard != 3 {
		t.Fatalf("unfiltered: %d templates, max_shard=%d", len(all.Templates), all.MaxShard)
	}
	// Shard 2 was only scanned by the full-table template.
	two := decode("?shard=2")
	if len(two.Templates) != 1 || two.Templates[0].Fingerprint != "SELECT COUNT(*) FROM t" {
		t.Fatalf("shard=2 templates = %+v", two.Templates)
	}
	// Shard 1 was scanned by both.
	if one := decode("?shard=1"); len(one.Templates) != 2 {
		t.Fatalf("shard=1 returned %d templates, want 2", len(one.Templates))
	}

	for _, q := range []string{"?shard=abc", "?shard=0", "?shard=4"} {
		if code, body := get(t, srv.URL()+"/workload"+q); code != http.StatusBadRequest {
			t.Errorf("/workload%s = %d, want 400\n%s", q, code, body)
		}
	}

	// The filter composes with CSV export.
	code, body := get(t, srv.URL()+"/workload?shard=2&format=csv")
	if code != http.StatusOK {
		t.Fatalf("shard CSV = %d\n%s", code, body)
	}
}

// TestWorkloadShardFilterUnsharded: no shard has been recorded, so any
// ?shard is out of range.
func TestWorkloadShardFilterUnsharded(t *testing.T) {
	srv, err := Start(Options{}, workloadSource())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := get(t, srv.URL()+"/workload?shard=1"); code != http.StatusBadRequest {
		t.Fatalf("/workload?shard=1 on unsharded workload = %d, want 400\n%s", code, body)
	}
}
